package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/serve"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// buildTestService generates a warehouse, trains and saves an artifact, and
// assembles the service exactly like churnd's main does.
func buildTestService(t *testing.T) (*service, *core.Predictions) {
	t.Helper()
	dir := t.TempDir()
	whDir := filepath.Join(dir, "wh")
	artifact := filepath.Join(dir, "model.tcpa")

	cfg := synth.DefaultConfig()
	cfg.Customers = 400
	cfg.Months = 4
	cfg.Seed = 5
	wh, err := store.Open(whDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.GenerateToWarehouse(cfg, wh); err != nil {
		t.Fatal(err)
	}
	src := core.NewWarehouseSource(wh, cfg.DaysPerMonth)
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 10, MinLeafSamples: 10, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.SaveFile(artifact); err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Predict(src, features.MonthWindow(4, cfg.DaysPerMonth))
	if err != nil {
		t.Fatal(err)
	}

	svc, err := buildService(artifact, whDir, 0, serve.Config{}, time.Minute, 0)
	if err != nil {
		t.Fatalf("buildService: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc, want
}

func postScore(t *testing.T, ts *httptest.Server, body string) (int, scoreResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var sr scoreResponse
	json.Unmarshal(buf.Bytes(), &sr)
	return resp.StatusCode, sr, buf.String()
}

// TestServedScoresMatchBatchPredict is the serving contract: scores over
// HTTP are bit-identical to Pipeline.Predict for the same artifact/month.
func TestServedScoresMatchBatchPredict(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Batch request over every customer.
	body, _ := json.Marshal(scoreRequest{IDs: want.IDs})
	status, sr, raw := postScore(t, ts, string(body))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if len(sr.Scores) != len(want.IDs) {
		t.Fatalf("got %d scores, want %d", len(sr.Scores), len(want.IDs))
	}
	for i := range want.IDs {
		if sr.Scores[i] != want.Scores[i] {
			t.Fatalf("customer %d: served %v, batch %v", want.IDs[i], sr.Scores[i], want.Scores[i])
		}
	}
	if sr.Model != "RF" || sr.Month != 4 {
		t.Errorf("model/month = %s/%d, want RF/4", sr.Model, sr.Month)
	}

	// Single-customer form.
	id := want.IDs[7]
	status, sr, raw = postScore(t, ts, `{"id":`+int64String(id)+`}`)
	if status != http.StatusOK {
		t.Fatalf("single status %d: %s", status, raw)
	}
	if sr.Score == nil || *sr.Score != want.Scores[7] {
		t.Fatalf("single score %v, want %v", sr.Score, want.Scores[7])
	}
}

func int64String(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestScoreEndpointErrors(t *testing.T) {
	svc, _ := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, _, _ := postScore(t, ts, `{"id":99999999}`)
	if status != http.StatusNotFound {
		t.Errorf("unknown customer: status %d, want 404", status)
	}
	status, _, _ = postScore(t, ts, `{}`)
	if status != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", status)
	}
	status, _, _ = postScore(t, ts, `not json`)
	if status != http.StatusBadRequest {
		t.Errorf("bad json: status %d, want 400", status)
	}
	status, _, _ = postScore(t, ts, `{"id":1,"ids":[2]}`)
	if status != http.StatusBadRequest {
		t.Errorf("both id and ids: status %d, want 400", status)
	}
	resp, err := http.Get(ts.URL + "/v1/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET score: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" || health["model"] != "RF" {
		t.Errorf("healthz = %v", health)
	}
	if int(health["customers"].(float64)) != len(want.IDs) {
		t.Errorf("customers = %v, want %d", health["customers"], len(want.IDs))
	}

	// Score twice so the cache registers a hit, then check the counters.
	body, _ := json.Marshal(scoreRequest{IDs: want.IDs[:3]})
	postScore(t, ts, string(body))
	postScore(t, ts, string(body))

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if metrics["requests"].(float64) != 2 {
		t.Errorf("requests = %v, want 2", metrics["requests"])
	}
	if metrics["scored"].(float64) != 6 {
		t.Errorf("scored = %v, want 6", metrics["scored"])
	}
	if metrics["cache_hits"].(float64) != 3 || metrics["cache_misses"].(float64) != 3 {
		t.Errorf("cache hits/misses = %v/%v, want 3/3", metrics["cache_hits"], metrics["cache_misses"])
	}
	if _, ok := metrics["latency_ns"].(map[string]any); !ok {
		t.Errorf("latency_ns missing: %v", metrics["latency_ns"])
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// makeWorld generates a warehouse, trains and saves an artifact, and
// returns healthy batch predictions for the latest month.
func makeWorld(t *testing.T) (whDir, artifact string, want *core.Predictions) {
	t.Helper()
	dir := t.TempDir()
	whDir = filepath.Join(dir, "wh")
	artifact = filepath.Join(dir, "model.tcpa")

	cfg := synth.DefaultConfig()
	cfg.Customers = 400
	cfg.Months = 4
	cfg.Seed = 5
	wh, err := store.Open(whDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.GenerateToWarehouse(cfg, wh); err != nil {
		t.Fatal(err)
	}
	src := core.NewWarehouseSource(wh, cfg.DaysPerMonth)
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 10, MinLeafSamples: 10, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.SaveFile(artifact); err != nil {
		t.Fatal(err)
	}
	want, err = pipe.Predict(src, features.MonthWindow(4, cfg.DaysPerMonth))
	if err != nil {
		t.Fatal(err)
	}
	return whDir, artifact, want
}

// buildTestService assembles the service exactly like churnd's main does.
func buildTestService(t *testing.T) (*service, *core.Predictions) {
	t.Helper()
	whDir, artifact, want := makeWorld(t)
	svc, err := buildService(serviceOpts{
		artifact:  artifact,
		warehouse: whDir,
		cacheTTL:  time.Minute,
	})
	if err != nil {
		t.Fatalf("buildService: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc, want
}

func postScore(t *testing.T, ts *httptest.Server, body string) (int, scoreResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var sr scoreResponse
	json.Unmarshal(buf.Bytes(), &sr)
	return resp.StatusCode, sr, buf.String()
}

// TestServedScoresMatchBatchPredict is the serving contract: scores over
// HTTP are bit-identical to Pipeline.Predict for the same artifact/month.
func TestServedScoresMatchBatchPredict(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Batch request over every customer.
	body, _ := json.Marshal(scoreRequest{IDs: want.IDs})
	status, sr, raw := postScore(t, ts, string(body))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if len(sr.Scores) != len(want.IDs) {
		t.Fatalf("got %d scores, want %d", len(sr.Scores), len(want.IDs))
	}
	for i := range want.IDs {
		if sr.Scores[i] != want.Scores[i] {
			t.Fatalf("customer %d: served %v, batch %v", want.IDs[i], sr.Scores[i], want.Scores[i])
		}
	}
	if sr.Model != "RF" || sr.Month != 4 {
		t.Errorf("model/month = %s/%d, want RF/4", sr.Model, sr.Month)
	}

	// Single-customer form.
	id := want.IDs[7]
	status, sr, raw = postScore(t, ts, `{"id":`+int64String(id)+`}`)
	if status != http.StatusOK {
		t.Fatalf("single status %d: %s", status, raw)
	}
	if sr.Score == nil || *sr.Score != want.Scores[7] {
		t.Fatalf("single score %v, want %v", sr.Score, want.Scores[7])
	}
}

func int64String(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestScoreEndpointErrors(t *testing.T) {
	svc, _ := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, _, _ := postScore(t, ts, `{"id":99999999}`)
	if status != http.StatusNotFound {
		t.Errorf("unknown customer: status %d, want 404", status)
	}
	status, _, _ = postScore(t, ts, `{}`)
	if status != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", status)
	}
	status, _, _ = postScore(t, ts, `not json`)
	if status != http.StatusBadRequest {
		t.Errorf("bad json: status %d, want 400", status)
	}
	status, _, _ = postScore(t, ts, `{"id":1,"ids":[2]}`)
	if status != http.StatusBadRequest {
		t.Errorf("both id and ids: status %d, want 400", status)
	}
	resp, err := http.Get(ts.URL + "/v1/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET score: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" || health["model"] != "RF" {
		t.Errorf("healthz = %v", health)
	}
	if int(health["customers"].(float64)) != len(want.IDs) {
		t.Errorf("customers = %v, want %d", health["customers"], len(want.IDs))
	}

	// Score twice so the cache registers a hit, then check the counters.
	body, _ := json.Marshal(scoreRequest{IDs: want.IDs[:3]})
	postScore(t, ts, string(body))
	postScore(t, ts, string(body))

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if metrics["requests"].(float64) != 2 {
		t.Errorf("requests = %v, want 2", metrics["requests"])
	}
	if metrics["scored"].(float64) != 6 {
		t.Errorf("scored = %v, want 6", metrics["scored"])
	}
	if metrics["cache_hits"].(float64) != 3 || metrics["cache_misses"].(float64) != 3 {
		t.Errorf("cache hits/misses = %v/%v, want 3/3", metrics["cache_hits"], metrics["cache_misses"])
	}
	if _, ok := metrics["latency_ns"].(map[string]any); !ok {
		t.Errorf("latency_ns missing: %v", metrics["latency_ns"])
	}
}

func getJSON(t *testing.T, url string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body, resp.Header
}

// TestReadyzAndRetryAfter: readiness tracks the engine's ability to score,
// and every 503 carries a Retry-After hint.
func TestReadyzAndRetryAfter(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, body, _ := getJSON(t, ts.URL+"/readyz")
	if status != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v, want 200 ready", status, body)
	}
	if body["degraded"] != "none" {
		t.Errorf("healthy readyz degraded = %v, want none", body["degraded"])
	}

	// A closed scorer (mid-swap window, or shutdown) flips readiness but
	// not liveness, and sheds scores with Retry-After.
	svc.Close()
	status, _, hdr := getJSON(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close = %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("unready readyz missing Retry-After")
	}
	if status, _, _ := getJSON(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("healthz after close = %d, want 200 (liveness is process-level)", status)
	}
	body2, _ := json.Marshal(scoreRequest{IDs: want.IDs[:1]})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("score on closed scorer = %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestHotReload: a good reload swaps engines without dropping the service;
// a bad artifact is rejected and the previous engine keeps serving.
func TestHotReload(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	scoreOK := func(label string) {
		body, _ := json.Marshal(scoreRequest{IDs: want.IDs[:3]})
		status, sr, raw := postScore(t, ts, string(body))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, status, raw)
		}
		for i := range sr.Scores {
			if sr.Scores[i] != want.Scores[i] {
				t.Fatalf("%s: score[%d] = %v, want %v", label, i, sr.Scores[i], want.Scores[i])
			}
		}
	}
	scoreOK("before reload")
	if err := svc.reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	scoreOK("after reload")

	// Corrupt the artifact on disk: validate-then-swap must reject it and
	// keep the old engine.
	if err := os.WriteFile(svc.opts.artifact, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := svc.reload(); err == nil {
		t.Fatal("reload of corrupt artifact succeeded")
	}
	scoreOK("after rejected reload")

	_, metrics, _ := getJSON(t, ts.URL+"/metrics")
	if metrics["reloads"].(float64) != 1 || metrics["reload_failures"].(float64) != 1 {
		t.Errorf("reloads/failures = %v/%v, want 1/1", metrics["reloads"], metrics["reload_failures"])
	}
}

// TestDegradedServing: with -degraded, a warehouse missing a raw table
// still serves, reporting the imputed groups everywhere a caller can look.
func TestDegradedServing(t *testing.T) {
	whDir, artifact, want := makeWorld(t)
	if err := os.RemoveAll(filepath.Join(whDir, synth.TableWeb)); err != nil {
		t.Fatal(err)
	}

	// Strict mode refuses the window.
	if _, err := buildService(serviceOpts{artifact: artifact, warehouse: whDir, cacheTTL: time.Minute}); err == nil {
		t.Fatal("strict buildService served a warehouse with a missing table")
	}

	svc, err := buildService(serviceOpts{artifact: artifact, warehouse: whDir, cacheTTL: time.Minute, degraded: true})
	if err != nil {
		t.Fatalf("degraded buildService: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, ready, _ := getJSON(t, ts.URL+"/readyz")
	if status != http.StatusOK || ready["degraded"] != "F1" {
		t.Errorf("readyz = %d degraded=%v, want 200 F1", status, ready["degraded"])
	}
	body, _ := json.Marshal(scoreRequest{IDs: want.IDs})
	status, sr, raw := postScore(t, ts, string(body))
	if status != http.StatusOK {
		t.Fatalf("degraded score: %d: %s", status, raw)
	}
	if sr.Degraded != "F1" {
		t.Errorf("score response degraded = %q, want F1", sr.Degraded)
	}
	if len(sr.Scores) != len(want.IDs) {
		t.Fatalf("scored %d, want %d", len(sr.Scores), len(want.IDs))
	}
	for _, s := range sr.Scores {
		if s < 0 || s > 1 {
			t.Fatalf("degraded score out of range: %v", s)
		}
	}
	_, metrics, _ := getJSON(t, ts.URL+"/metrics")
	if metrics["degraded_groups"] != "F1" {
		t.Errorf("metrics degraded_groups = %v, want F1", metrics["degraded_groups"])
	}
	if metrics["degraded_mask"].(float64) == 0 {
		t.Error("metrics degraded_mask = 0, want non-zero")
	}
}

// errEnvelope mirrors the one error shape every endpoint must render.
type errEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		Retryable bool   `json:"retryable"`
	} `json:"error"`
}

func doRequest(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// TestErrorEnvelope pins the API's single error shape across endpoints and
// status codes: {"error":{"code","message","retryable"}}, with Retry-After
// on every retryable response.
func TestErrorEnvelope(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
		retryable                bool
	}{
		{"score bad json", "POST", "/v1/score", `not json`, 400, "invalid_request", false},
		{"score empty", "POST", "/v1/score", `{}`, 400, "invalid_request", false},
		{"score both forms", "POST", "/v1/score", `{"id":1,"ids":[2]}`, 400, "invalid_request", false},
		{"score unknown customer", "POST", "/v1/score", `{"id":99999999}`, 404, "unknown_customer", false},
		{"score wrong method", "GET", "/v1/score", ``, 405, "method_not_allowed", false},
		{"events wrong method", "GET", "/v1/events", ``, 405, "method_not_allowed", false},
		{"events bad json", "POST", "/v1/events", `not json`, 400, "invalid_request", false},
		{"events empty batch", "POST", "/v1/events", `{"events":[]}`, 400, "invalid_request", false},
		{"events unknown table", "POST", "/v1/events", `{"events":[{"table":"billing","imsi":1,"month":4,"day":1}]}`, 400, "invalid_request", false},
		{"events unknown column", "POST", "/v1/events", `{"events":[{"table":"recharges","imsi":1,"month":4,"day":1,"fields":{"amonut":3}}]}`, 400, "invalid_request", false},
		{"refresh wrong method", "GET", "/v1/refresh", ``, 405, "method_not_allowed", false},
		{"customers wrong method", "POST", "/v1/customers", ``, 405, "method_not_allowed", false},
		{"customers bad limit", "GET", "/v1/customers?limit=-1", ``, 400, "invalid_request", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, hdr := doRequest(t, ts, tc.method, tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, body)
			}
			var env errEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("not an envelope: %s", body)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Error("empty message")
			}
			if env.Error.Retryable != tc.retryable {
				t.Errorf("retryable %v, want %v", env.Error.Retryable, tc.retryable)
			}
			if tc.retryable && hdr.Get("Retry-After") == "" {
				t.Error("retryable without Retry-After")
			}
		})
	}

	// A refresh already in flight sheds further refreshes with 429.
	svc.refreshing.Store(true)
	status, body, hdr := doRequest(t, ts, "POST", "/v1/refresh", ``)
	svc.refreshing.Store(false)
	var env errEnvelope
	json.Unmarshal(body, &env)
	if status != 429 || env.Error.Code != "refresh_in_progress" || !env.Error.Retryable || hdr.Get("Retry-After") == "" {
		t.Errorf("busy refresh = %d %s (Retry-After %q), want 429 refresh_in_progress retryable", status, body, hdr.Get("Retry-After"))
	}

	// Queue overload sheds with 429 overloaded; a closed scorer is a 503.
	svc.Close()
	status, body, hdr = doRequest(t, ts, "POST", "/v1/score", `{"id":`+int64String(want.IDs[0])+`}`)
	json.Unmarshal(body, &env)
	if status != 503 || env.Error.Code != "unavailable" || !env.Error.Retryable || hdr.Get("Retry-After") == "" {
		t.Errorf("closed scorer = %d %s, want 503 unavailable retryable with Retry-After", status, body)
	}
}

// TestIngestFreshnessAndRefresh is the streaming contract end to end at the
// HTTP layer: a posted event changes the customer's served vector within
// the same call, and the incrementally refreshed score is bit-identical to
// the one a full rebuild over the event log produces (/v1/refresh).
func TestIngestFreshnessAndRefresh(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	id := want.IDs[3]
	other := want.IDs[5]

	// Two recharges for the served month (4) — they move the F1 recharge
	// aggregates with certainty.
	batch := `{"events":[
		{"table":"recharges","imsi":` + int64String(id) + `,"month":4,"day":9,"fields":{"amount":500}},
		{"table":"recharges","imsi":` + int64String(id) + `,"month":4,"day":21,"fields":{"amount":250}}]}`
	status, body, _ := doRequest(t, ts, "POST", "/v1/events", batch)
	if status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	var ev eventsResponse
	json.Unmarshal(body, &ev)
	if ev.Seq != 1 || ev.Received != 2 || ev.Applied != 2 || ev.Affected != 1 || ev.StaleVectors != 1 || ev.Month != 4 {
		t.Fatalf("ingest response = %+v, want seq 1, 2 received, 2 applied, 1 affected, 1 stale, month 4", ev)
	}

	// The served vector moved off the frame's within the ingest call.
	e := svc.cur.Load()
	served, _ := e.overlay.Vector(id)
	base, _ := e.overlay.Base(id)
	changed := false
	for i := range served {
		if served[i] != base[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ingest did not change the served vector")
	}

	status, sr, raw := postScore(t, ts, `{"id":`+int64String(id)+`}`)
	if status != http.StatusOK {
		t.Fatalf("post-ingest score: %d %s", status, raw)
	}
	fresh := *sr.Score
	if status, srOther, _ := postScore(t, ts, `{"id":`+int64String(other)+`}`); status != 200 || *srOther.Score != want.Scores[5] {
		t.Errorf("unaffected customer moved: %v, want %v", *srOther.Score, want.Scores[5])
	}

	_, metrics, _ := getJSON(t, ts.URL+"/metrics")
	if metrics["events_ingested"].(float64) != 2 || metrics["stale_vectors"].(float64) != 1 {
		t.Errorf("metrics ingested/stale = %v/%v, want 2/1", metrics["events_ingested"], metrics["stale_vectors"])
	}

	// Full rebuild over the event log: overrides retire, scores must not
	// move — the incremental fold already equals the rebuilt frame.
	status, body, _ = doRequest(t, ts, "POST", "/v1/refresh", ``)
	if status != http.StatusOK {
		t.Fatalf("refresh: %d %s", status, body)
	}
	var rr refreshResponse
	json.Unmarshal(body, &rr)
	if rr.Rows != len(want.IDs) || rr.StaleVectors != 0 || rr.Seq != 1 {
		t.Fatalf("refresh response = %+v, want %d rows, 0 stale, seq 1", rr, len(want.IDs))
	}
	if svc.cur.Load().overlay.Overridden() != 0 {
		t.Error("overrides survived the refresh")
	}
	status, sr, raw = postScore(t, ts, `{"id":`+int64String(id)+`}`)
	if status != http.StatusOK {
		t.Fatalf("post-refresh score: %d %s", status, raw)
	}
	if *sr.Score != fresh {
		t.Fatalf("incremental score %v != rebuilt score %v (bit-identity broken)", fresh, *sr.Score)
	}

	_, metrics, _ = getJSON(t, ts.URL+"/metrics")
	if metrics["refreshes"].(float64) != 1 || metrics["stale_vectors"].(float64) != 0 {
		t.Errorf("metrics refreshes/stale = %v/%v, want 1/0", metrics["refreshes"], metrics["stale_vectors"])
	}
	if age := metrics["refresh_age_seconds"].(float64); age < 0 || age > 60 {
		t.Errorf("refresh_age_seconds = %v", age)
	}

	// Ingest keeps working after the swap (sequence numbers stay monotone
	// across the rebuild).
	batch2 := `{"events":[{"table":"recharges","imsi":` + int64String(id) + `,"month":4,"day":25,"fields":{"amount":10}}]}`
	status, body, _ = doRequest(t, ts, "POST", "/v1/events", batch2)
	if status != http.StatusOK {
		t.Fatalf("second ingest: %d %s", status, body)
	}
	json.Unmarshal(body, &ev)
	if ev.Seq != 2 || ev.Applied != 1 || ev.StaleVectors != 1 {
		t.Fatalf("second ingest = %+v, want seq 2, 1 applied, 1 stale", ev)
	}
}

// TestRestartReplaysEventLog: a service restarted over a warehouse with
// unmerged logged events serves them immediately — the frame builds over
// the event overlay and the maintainer resumes from the log.
func TestRestartReplaysEventLog(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	id := want.IDs[3]
	batch := `{"events":[{"table":"recharges","imsi":` + int64String(id) + `,"month":4,"day":9,"fields":{"amount":500}}]}`
	if status, body, _ := doRequest(t, ts, "POST", "/v1/events", batch); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	status, sr, _ := postScore(t, ts, `{"id":`+int64String(id)+`}`)
	if status != http.StatusOK {
		t.Fatal("post-ingest score failed")
	}
	fresh := *sr.Score
	ts.Close()
	svc.Close()

	// "Restart": a brand-new service over the same warehouse and artifact.
	svc2, err := buildService(svc.opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	status, sr, raw := postScore(t, ts2, `{"id":`+int64String(id)+`}`)
	if status != http.StatusOK {
		t.Fatalf("post-restart score: %d %s", status, raw)
	}
	if *sr.Score != fresh {
		t.Fatalf("restart lost the event: %v, want %v", *sr.Score, fresh)
	}
}

// TestPanicRecovery: a handler panic becomes a 500 envelope plus a
// panics_recovered count — except http.ErrAbortHandler, which the
// middleware re-raises, and panics after the response started, which only
// get counted (the envelope never corrupts a half-written body).
func TestPanicRecovery(t *testing.T) {
	svc, _ := buildTestService(t)

	boom := svc.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/score", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	var env errEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "internal" {
		t.Fatalf("panic response not the internal envelope: %s", rec.Body.Bytes())
	}
	if got := svc.metrics.PanicsRecovered.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}

	// A panic after the handler wrote: the status and body it sent stand.
	late := svc.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("after write")
	}))
	rec = httptest.NewRecorder()
	late.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/score", nil))
	if rec.Code != http.StatusAccepted {
		t.Errorf("post-write panic rewrote the response: %d, want 202", rec.Code)
	}
	if got := svc.metrics.PanicsRecovered.Load(); got != 2 {
		t.Errorf("panics_recovered = %d, want 2", got)
	}

	// http.ErrAbortHandler is net/http's sanctioned abort: re-panic.
	abort := svc.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Error("ErrAbortHandler was swallowed instead of re-raised")
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/score", nil))
	}()
	if got := svc.metrics.PanicsRecovered.Load(); got != 2 {
		t.Errorf("panics_recovered counted the abort: %d, want 2", got)
	}
}

// TestRequestDeadline: with -request-timeout, an expired context renders
// the 504 timeout envelope on both the score path (via scoreStatus) and
// the ingest commit point — never a half-applied write.
func TestRequestDeadline(t *testing.T) {
	whDir, artifact, want := makeWorld(t)
	svc, err := buildService(serviceOpts{
		artifact:   artifact,
		warehouse:  whDir,
		cacheTTL:   time.Minute,
		reqTimeout: time.Nanosecond, // expired before any handler runs
	})
	if err != nil {
		t.Fatalf("buildService: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, body, hdr := doRequest(t, ts, "POST", "/v1/score", `{"id":`+int64String(want.IDs[0])+`}`)
	var env errEnvelope
	json.Unmarshal(body, &env)
	if status != http.StatusGatewayTimeout || env.Error.Code != "timeout" || !env.Error.Retryable {
		t.Fatalf("expired score = %d %s, want 504 timeout retryable", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("504 missing Retry-After")
	}

	batch := `{"events":[{"table":"recharges","imsi":` + int64String(want.IDs[0]) + `,"month":4,"day":9,"fields":{"amount":500}}]}`
	status, body, _ = doRequest(t, ts, "POST", "/v1/events", batch)
	json.Unmarshal(body, &env)
	if status != http.StatusGatewayTimeout || env.Error.Code != "timeout" {
		t.Fatalf("expired ingest = %d %s, want 504 timeout", status, body)
	}
	// The deadline fired before the commit point: nothing reached the log.
	if e := svc.cur.Load(); e.log.LastSeq() != 0 {
		t.Errorf("timed-out ingest committed seq %d, want nothing logged", e.log.LastSeq())
	}
}

// TestDrainingLifecycle: once draining flips, readiness reports it (so
// balancers route away) and new refreshes are refused, while in-flight
// scoring keeps working until the listener closes.
func TestDrainingLifecycle(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	svc.draining.Store(true)
	status, body, hdr := getJSON(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v, want 503 draining", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining readyz missing Retry-After")
	}
	rstatus, rbody, _ := doRequest(t, ts, "POST", "/v1/refresh", ``)
	var env errEnvelope
	json.Unmarshal(rbody, &env)
	if rstatus != http.StatusServiceUnavailable || env.Error.Message != "draining" || !env.Error.Retryable {
		t.Fatalf("draining refresh = %d %s, want 503 draining retryable", rstatus, rbody)
	}
	// Scores still serve: draining drains, it does not drop.
	if status, _, raw := postScore(t, ts, `{"id":`+int64String(want.IDs[0])+`}`); status != http.StatusOK {
		t.Fatalf("score while draining = %d %s, want 200", status, raw)
	}

	svc.draining.Store(false)
	if status, body, _ := getJSON(t, ts.URL+"/readyz"); status != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after drain cleared = %d %v, want 200 ready", status, body)
	}
}

// TestRestartQuarantinesCorruptTail: the churnd half of the quarantine
// contract. Two ingested batches, the tail segment's CRC ruined on disk, a
// restart: the survivor batch still serves its fresh score, the corrupt
// tail is sidecar-quarantined (events_quarantined metric, .quarantine
// file), the lost batch's customer falls back to the base score, and the
// next ingest takes a fresh sequence number.
func TestRestartQuarantinesCorruptTail(t *testing.T) {
	svc, want := buildTestService(t)
	ts := httptest.NewServer(svc.Handler())
	idA, idB := want.IDs[3], want.IDs[5]
	for i, id := range []int64{idA, idB} {
		batch := `{"events":[{"table":"recharges","imsi":` + int64String(id) + `,"month":4,"day":9,"fields":{"amount":500}}]}`
		if status, body, _ := doRequest(t, ts, "POST", "/v1/events", batch); status != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i+1, status, body)
		}
	}
	status, sr, _ := postScore(t, ts, `{"id":`+int64String(idA)+`}`)
	if status != http.StatusOK {
		t.Fatal("post-ingest score failed")
	}
	freshA := *sr.Score
	ts.Close()
	svc.Close()

	// Flip the tail segment's last byte: that is the CRC trailer.
	seg := filepath.Join(svc.opts.warehouse, ".events", "seq=00000002.tev")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := buildService(svc.opts)
	if err != nil {
		t.Fatalf("restart over corrupt tail: %v", err)
	}
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()

	if got := svc2.metrics.EventsQuarantined.Load(); got != 1 {
		t.Errorf("events_quarantined = %d, want 1", got)
	}
	_, metrics, _ := getJSON(t, ts2.URL+"/metrics")
	if metrics["events_quarantined"].(float64) != 1 {
		t.Errorf("/metrics events_quarantined = %v, want 1", metrics["events_quarantined"])
	}
	if _, err := os.Stat(seg + ".quarantine"); err != nil {
		t.Errorf("quarantine sidecar missing: %v", err)
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Errorf("corrupt segment still in the replay path: %v", err)
	}

	// Batch 1 survived the quarantine; batch 2's customer is back at base.
	status, sr, raw := postScore(t, ts2, `{"id":`+int64String(idA)+`}`)
	if status != http.StatusOK {
		t.Fatalf("post-restart score: %d %s", status, raw)
	}
	if *sr.Score != freshA {
		t.Errorf("surviving batch lost: %v, want %v", *sr.Score, freshA)
	}
	status, sr, _ = postScore(t, ts2, `{"id":`+int64String(idB)+`}`)
	if status != http.StatusOK {
		t.Fatal("score for quarantined customer failed")
	}
	if *sr.Score != want.Scores[5] {
		t.Errorf("quarantined batch still serving: %v, want base %v", *sr.Score, want.Scores[5])
	}

	// Sequence numbers never rewind past a quarantined segment.
	batch := `{"events":[{"table":"recharges","imsi":` + int64String(idB) + `,"month":4,"day":21,"fields":{"amount":100}}]}`
	status, body, _ := doRequest(t, ts2, "POST", "/v1/events", batch)
	if status != http.StatusOK {
		t.Fatalf("post-quarantine ingest: %d %s", status, body)
	}
	var ev eventsResponse
	json.Unmarshal(body, &ev)
	if ev.Seq != 3 {
		t.Errorf("post-quarantine seq = %d, want 3 (no reuse of the quarantined 2)", ev.Seq)
	}
}

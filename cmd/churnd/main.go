// Command churnd serves a trained pipeline artifact over HTTP — the online
// half of the paper's system, where the monthly batch scorer becomes a
// long-lived scoring service:
//
//	churnctl train -warehouse ./warehouse -out churn-model.tcpa
//	churnd -artifact churn-model.tcpa -warehouse ./warehouse
//	curl -d '{"ids":[12,99]}' localhost:8080/v1/score
//
// Endpoints:
//
//	POST /v1/score   {"id":N} or {"ids":[N,...]} -> churn scores
//	GET  /healthz    liveness + model identity
//	GET  /metrics    request/batch/latency/cache counters (JSON)
//
// Requests are micro-batched into the vectorized scoring path; scores are
// bit-identical to `churnctl score` over the same artifact and month.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/serve"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
)

func main() {
	fs := flag.NewFlagSet("churnd", flag.ExitOnError)
	artifact := fs.String("artifact", "churn-model.tcpa", "pipeline artifact from churnctl train")
	warehouse := fs.String("warehouse", "./warehouse", "warehouse directory")
	month := fs.Int("month", 0, "feature month to serve (0 = latest)")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 0, "largest micro-batch (0 = default 256)")
	maxDelay := fs.Duration("max-delay", 0, "micro-batch linger (0 = default 2ms)")
	queue := fs.Int("queue", 0, "pending-score queue bound (0 = default 4096)")
	cacheTTL := fs.Duration("cache-ttl", 10*time.Minute, "feature-vector cache TTL (0 disables)")
	workers := fs.Int("workers", 0, "parallelism for the feature build (0 = all cores)")
	fs.Parse(os.Args[1:])

	svc, err := buildService(*artifact, *warehouse, *month,
		serve.Config{MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueSize: *queue},
		*cacheTTL, *workers)
	if err != nil {
		log.Fatal("churnd: ", err)
	}
	defer svc.Close()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("churnd: serving %s (month %d, %d customers, schema %08x) on %s",
		svc.model, svc.month, svc.prov.NumRows(), svc.pipe.SchemaChecksum(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("churnd: ", err)
	}
}

// service wires artifact, feature provider, cache and scorer into handlers.
type service struct {
	pipe    *core.Pipeline
	prov    *serve.FrameProvider
	scorer  *serve.Scorer
	metrics *serve.Metrics
	model   string
	month   int
}

// buildService loads the artifact and builds the serving frame for one
// warehouse month. The frame is the batch feature path reused verbatim, so
// every served vector is the exact row churnctl score would build.
func buildService(artifact, warehouse string, month int, cfg serve.Config, cacheTTL time.Duration, workers int) (*service, error) {
	pipe, err := core.LoadFile(artifact)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", artifact, err)
	}
	pipe.SetWorkers(workers)

	wh, err := store.Open(warehouse)
	if err != nil {
		return nil, err
	}
	monthsAvail, err := wh.Months(synth.TableTruth)
	if err != nil || len(monthsAvail) == 0 {
		return nil, fmt.Errorf("empty warehouse %s (run churnctl generate)", warehouse)
	}
	days := synth.DefaultConfig().DaysPerMonth
	if month == 0 {
		month = monthsAvail[len(monthsAvail)-1]
	}
	src := core.NewWarehouseSource(wh, days)

	prov, err := serve.NewFrameProvider(pipe, src, features.MonthWindow(month, days))
	if err != nil {
		return nil, fmt.Errorf("build serving frame for month %d: %w", month, err)
	}
	metrics := &serve.Metrics{}
	return &service{
		pipe:    pipe,
		prov:    prov,
		scorer:  serve.NewScorer(pipe.Classifier(), serve.NewCache(prov, cacheTTL, metrics), cfg, metrics),
		metrics: metrics,
		model:   pipe.Classifier().Name(),
		month:   month,
	}, nil
}

// Close stops the scorer's batching loop.
func (s *service) Close() { s.scorer.Close() }

// Handler returns the HTTP mux for the service.
func (s *service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", s.handleScore)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// scoreRequest accepts either a single customer or a batch.
type scoreRequest struct {
	ID  *int64  `json:"id,omitempty"`
	IDs []int64 `json:"ids,omitempty"`
}

type scoreResponse struct {
	Model  string    `json:"model"`
	Month  int       `json:"month"`
	Score  *float64  `json:"score,omitempty"`
	Scores []float64 `json:"scores,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *service) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	single := req.ID != nil
	ids := req.IDs
	if single {
		if len(ids) > 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{`give "id" or "ids", not both`})
			return
		}
		ids = []int64{*req.ID}
	} else if len(ids) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{`need "id" or a non-empty "ids"`})
		return
	}

	scores, err := s.scorer.Score(r.Context(), ids)
	if err != nil {
		writeJSON(w, statusOf(err), errorResponse{err.Error()})
		return
	}
	resp := scoreResponse{Model: s.model, Month: s.month}
	if single {
		resp.Score = &scores[0]
	} else {
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusOf maps scoring failures onto HTTP: shed load reads as 503 (retry
// later), an unknown customer as 404, a dead deadline as 504.
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrUnknownCustomer):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"model":     s.model,
		"month":     s.month,
		"customers": s.prov.NumRows(),
		"features":  len(s.pipe.FeatureNames()),
		"schema":    fmt.Sprintf("%08x", s.pipe.SchemaChecksum()),
	})
}

func (s *service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Command churnd serves a trained pipeline artifact over HTTP — the online
// half of the paper's system, where the monthly batch scorer becomes a
// long-lived scoring service:
//
//	churnctl train -warehouse ./warehouse -out churn-model.tcpa
//	churnd -artifact churn-model.tcpa -warehouse ./warehouse
//	curl -d '{"ids":[12,99]}' localhost:8080/v1/score
//
// Endpoints:
//
//	POST /v1/score      {"id":N} or {"ids":[N,...]} -> churn scores
//	GET  /v1/customers  scorable customer ids (?limit=N caps the list)
//	GET  /healthz       liveness + model identity (200 while the process is up)
//	GET  /readyz        readiness (503 + Retry-After until scores are servable)
//	GET  /metrics       request/latency (p50/p95/p99)/cache/retry/degradation
//
// Serving path: artifacts carrying a precomputed feature-vector snapshot
// (churnctl train -precompute) serve single scores synchronously — index
// lookup plus a compiled-forest walk, zero allocations — with the warehouse
// frame as fallback for customers outside the snapshot; batch requests
// micro-batch onto per-core shards. Without a snapshot every vector comes
// from the frame path. Either way scores are bit-identical to `churnctl
// score` over the same artifact and month.
//
// Resilience: source reads retry with seeded-jitter backoff (-retries);
// with -degraded the serving frame builds even when raw tables are missing
// (their feature groups are imputed and reported in /healthz, /readyz,
// /metrics and each score response). SIGHUP hot-reloads the artifact and
// warehouse window with validate-then-swap semantics: a reload that fails
// to build leaves the previous engine serving untouched.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/serve"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
)

func main() {
	fs := flag.NewFlagSet("churnd", flag.ExitOnError)
	artifact := fs.String("artifact", "churn-model.tcpa", "pipeline artifact from churnctl train")
	warehouse := fs.String("warehouse", "./warehouse", "warehouse directory")
	month := fs.Int("month", 0, "feature month to serve (0 = latest)")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 0, "largest micro-batch (0 = default 256)")
	maxDelay := fs.Duration("max-delay", 0, "micro-batch linger (0 = default 2ms)")
	queue := fs.Int("queue", 0, "pending-score queue bound (0 = default 4096)")
	shards := fs.Int("shards", 0, "batching shards (0 = one per core)")
	cacheTTL := fs.Duration("cache-ttl", 10*time.Minute, "feature-vector cache TTL (0 disables)")
	workers := fs.Int("workers", 0, "parallelism for the feature build (0 = all cores)")
	degraded := fs.Bool("degraded", false, "serve even when raw tables are unavailable (impute their feature groups, report the mask)")
	retries := fs.Int("retries", 0, "read attempts per source operation (0 = default 4, 1 = no retries)")
	pprofAddr := fs.String("pprof", "", "mount net/http/pprof on this side address (empty = off)")
	fs.Parse(os.Args[1:])

	svc, err := buildService(serviceOpts{
		artifact:  *artifact,
		warehouse: *warehouse,
		month:     *month,
		cfg:       serve.Config{MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueSize: *queue, Shards: *shards},
		cacheTTL:  *cacheTTL,
		workers:   *workers,
		degraded:  *degraded,
		retries:   *retries,
	})
	if err != nil {
		log.Fatal("churnd: ", err)
	}
	defer svc.Close()

	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serving that mux on a
		// side listener keeps profiling off the scoring port.
		go func() {
			log.Printf("churnd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("churnd: pprof listener: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := svc.reload(); err != nil {
				log.Printf("churnd: reload rejected, previous engine keeps serving: %v", err)
			} else {
				e := svc.cur.Load()
				log.Printf("churnd: reloaded %s (month %d, %d customers, %s path, degraded: %s)",
					*artifact, e.month, e.rows, e.source, e.deg)
			}
		}
	}()

	e := svc.cur.Load()
	log.Printf("churnd: serving %s (month %d, %d customers, %s path, schema %08x, degraded: %s) on %s",
		e.model, e.month, e.rows, e.source, e.pipe.SchemaChecksum(), e.deg, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("churnd: ", err)
	}
}

// serviceOpts is everything needed to build — and rebuild, on SIGHUP — the
// serving engine.
type serviceOpts struct {
	artifact  string
	warehouse string
	month     int // 0 = latest available at (re)build time
	cfg       serve.Config
	cacheTTL  time.Duration
	workers   int
	degraded  bool
	retries   int
}

// engine is the hot-swappable serving unit: one artifact serving one month.
// Reloads build a whole new engine and atomically replace the pointer;
// in-flight requests finish on whichever engine they started.
type engine struct {
	pipe   *core.Pipeline
	scorer *serve.Scorer
	model  string
	month  int
	// source names the vector path in play: "vectors" (precomputed snapshot
	// only), "frame" (warehouse build only), or "vectors+frame" (snapshot
	// first, frame fallback for customers outside it).
	source string
	deg    features.Degradation
	ids    []int64
	rows   int
}

// service wires the current engine, the reload machinery and the metrics
// (which survive reloads) into HTTP handlers.
type service struct {
	opts    serviceOpts
	metrics *serve.Metrics
	cur     atomic.Pointer[engine]
}

// buildService loads the artifact and builds the serving frame for one
// warehouse month. The frame is the batch feature path reused verbatim, so
// every served vector is the exact row churnctl score would build.
func buildService(opts serviceOpts) (*service, error) {
	s := &service{opts: opts, metrics: &serve.Metrics{}}
	e, err := s.buildEngine()
	if err != nil {
		return nil, err
	}
	s.cur.Store(e)
	return s, nil
}

// buildEngine assembles a fully validated engine from the current opts:
// artifact loaded and decoded, vector source chosen, serving frame built
// when the warehouse allows it. Any failure leaves no side effects, which is
// what makes reload rollback free.
func (s *service) buildEngine() (*engine, error) {
	opts := s.opts
	pipe, err := core.LoadFile(opts.artifact)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", opts.artifact, err)
	}
	pipe.SetWorkers(opts.workers)

	// The artifact may carry a precomputed feature-vector snapshot (churnctl
	// train -precompute); when it does, the warehouse becomes optional.
	vp, _ := serve.NewVectorsProvider(pipe)

	days := synth.DefaultConfig().DaysPerMonth
	var monthsAvail []int
	wh, whErr := store.Open(opts.warehouse)
	if whErr == nil {
		// The customer snapshot anchors month discovery: it is the one table
		// serving cannot impute around, so its months are the servable months.
		monthsAvail, whErr = wh.Months(synth.TableCustomers)
		if whErr == nil && len(monthsAvail) == 0 {
			whErr = fmt.Errorf("empty warehouse %s (run churnctl generate)", opts.warehouse)
		}
	}

	// Month cascade: explicit flag, else the warehouse's latest customer
	// snapshot, else the month the artifact's vectors were precomputed from.
	month := opts.month
	if month == 0 {
		switch {
		case whErr == nil:
			month = monthsAvail[len(monthsAvail)-1]
		case vp != nil:
			month = vp.Month()
		default:
			return nil, whErr
		}
	}
	useVectors := vp != nil && vp.Month() == month

	var frameProv *serve.FrameProvider
	if whErr == nil {
		rs := core.NewRetrySource(core.NewWarehouseSource(wh, days), core.RetryConfig{
			MaxAttempts: opts.retries,
			OnRetry: func(op string, attempt int, delay time.Duration, err error) {
				s.metrics.Retries.Add(1)
				log.Printf("churnd: retrying %s (attempt %d, backoff %v): %v", op, attempt, delay, err)
			},
		})
		win := features.MonthWindow(month, days)
		if opts.degraded {
			frameProv, err = serve.NewFrameProviderDegraded(pipe, rs, win)
		} else {
			frameProv, err = serve.NewFrameProvider(pipe, rs, win)
		}
		s.metrics.RetriesExhausted.Add(rs.Exhausted())
		if err != nil {
			if !useVectors {
				return nil, fmt.Errorf("build serving frame for month %d: %w", month, err)
			}
			log.Printf("churnd: frame path unavailable, serving the precomputed snapshot alone: %v", err)
			frameProv = nil
		}
	} else if !useVectors {
		return nil, whErr
	} else {
		log.Printf("churnd: warehouse unavailable, serving the precomputed snapshot alone: %v", whErr)
	}

	var (
		prov   serve.VectorProvider
		source string
		deg    features.Degradation
		ids    []int64
	)
	switch {
	case useVectors && frameProv != nil:
		// Snapshot first — an index lookup, zero allocations — with the frame
		// answering for customers outside it; the frame keeps its TTL cache
		// since its lookups cost a map probe plus a row copy.
		fb, err := serve.NewFallbackProvider(vp, serve.NewCache(frameProv, opts.cacheTTL, s.metrics))
		if err != nil {
			return nil, err
		}
		prov, source, deg, ids = fb, "vectors+frame", frameProv.Degradation(), frameProv.IDs()
	case useVectors:
		prov, source, ids = vp, "vectors", vp.IDs()
	default:
		prov, source, deg, ids = serve.NewCache(frameProv, opts.cacheTTL, s.metrics), "frame", frameProv.Degradation(), frameProv.IDs()
	}
	s.metrics.DegradedMask.Store(uint64(deg))
	return &engine{
		pipe:   pipe,
		scorer: serve.NewScorer(pipe.Classifier(), prov, opts.cfg, s.metrics),
		model:  pipe.Classifier().Name(),
		month:  month,
		source: source,
		deg:    deg,
		ids:    ids,
		rows:   len(ids),
	}, nil
}

// reload builds a fresh engine from the same options (re-reading artifact
// and warehouse) and swaps it in only if the build fully succeeds; a failed
// build counts a reload_failure and leaves the old engine serving. The old
// scorer is closed after the swap: requests already queued on it complete,
// and any that race the closure shed with 503 + Retry-After like any other
// transient overload.
func (s *service) reload() error {
	e, err := s.buildEngine()
	if err != nil {
		s.metrics.ReloadFailures.Add(1)
		return err
	}
	old := s.cur.Swap(e)
	if old != nil {
		old.scorer.Close()
	}
	s.metrics.Reloads.Add(1)
	return nil
}

// Close stops the current engine's batching loop.
func (s *service) Close() {
	if e := s.cur.Load(); e != nil {
		e.scorer.Close()
	}
}

// Handler returns the HTTP mux for the service.
func (s *service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", s.handleScore)
	mux.HandleFunc("/v1/customers", s.handleCustomers)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// scoreRequest accepts either a single customer or a batch.
type scoreRequest struct {
	ID  *int64  `json:"id,omitempty"`
	IDs []int64 `json:"ids,omitempty"`
}

type scoreResponse struct {
	Model  string    `json:"model"`
	Month  int       `json:"month"`
	Score  *float64  `json:"score,omitempty"`
	Scores []float64 `json:"scores,omitempty"`
	// Degraded lists the feature groups imputed in the served window
	// ("F3,F6"); omitted when the window is healthy.
	Degraded string `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *service) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	single := req.ID != nil
	ids := req.IDs
	if single {
		if len(ids) > 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{`give "id" or "ids", not both`})
			return
		}
		ids = []int64{*req.ID}
	} else if len(ids) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{`need "id" or a non-empty "ids"`})
		return
	}

	e := s.cur.Load()
	scores, err := e.scorer.Score(r.Context(), ids)
	if err != nil {
		status := statusOf(err)
		if status == http.StatusServiceUnavailable {
			// Shed load is transient: full queues drain within a batch
			// linger, closed scorers mean a reload just swapped engines.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	resp := scoreResponse{Model: e.model, Month: e.month}
	if !e.deg.Empty() {
		resp.Degraded = e.deg.String()
	}
	if single {
		resp.Score = &scores[0]
	} else {
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusOf maps scoring failures onto HTTP: shed load reads as 503 (retry
// later), an unknown customer as 404, a dead deadline as 504.
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, serve.ErrUnknownCustomer):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// handleHealthz is the liveness probe: 200 whenever the process can answer,
// regardless of engine state — restarts are for hangs, not for degraded
// windows or mid-reload gaps.
func (s *service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if e := s.cur.Load(); e != nil {
		body["model"] = e.model
		body["month"] = e.month
		body["customers"] = e.rows
		body["features"] = len(e.pipe.FeatureNames())
		body["schema"] = fmt.Sprintf("%08x", e.pipe.SchemaChecksum())
		body["source"] = e.source
		body["degraded"] = e.deg.String()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the readiness probe: 200 only while an engine is loaded
// and accepting scores. A degraded window is still ready (it serves, with
// the mask reported); a closed or absent engine is not.
func (s *service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	e := s.cur.Load()
	if e == nil || e.scorer.Closed() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"month":    e.month,
		"source":   e.source,
		"degraded": e.deg.String(),
		"schema":   fmt.Sprintf("%08x", e.pipe.SchemaChecksum()),
	})
}

// handleCustomers lists the scorable customer ids — the discovery endpoint
// load generators (churnload) and smoke checks use to pick real targets.
func (s *service) handleCustomers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	e := s.cur.Load()
	if e == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no engine loaded"})
		return
	}
	ids := e.ids
	if lim := r.URL.Query().Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"limit must be a non-negative integer"})
			return
		}
		if n < len(ids) {
			ids = ids[:n]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"month":  e.month,
		"count":  e.rows,
		"source": e.source,
		"ids":    ids,
	})
}

func (s *service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Command churnd serves a trained pipeline artifact over HTTP — the online
// half of the paper's system, where the monthly batch scorer becomes a
// long-lived scoring service that also takes writes:
//
//	churnctl train -warehouse ./warehouse -out churn-model.tcpa
//	churnd -artifact churn-model.tcpa -warehouse ./warehouse
//	curl -d '{"ids":[12,99]}' localhost:8080/v1/score
//	curl -d '{"events":[{"table":"recharges","imsi":12,"month":2,"day":9,"fields":{"amount":30}}]}' localhost:8080/v1/events
//
// Endpoints:
//
//	POST /v1/score      {"id":N} or {"ids":[N,...]} -> churn scores
//	POST /v1/events     append raw BSS/OSS event records; affected customers'
//	                    serving vectors refresh incrementally within the call
//	POST /v1/refresh    rebuild the serving base over the event log and
//	                    hot-swap vectors atomically (graph/topic groups catch up)
//	GET  /v1/customers  scorable customer ids (?limit=N caps the list)
//	GET  /healthz       liveness + model identity (200 while the process is up)
//	GET  /readyz        readiness (503 + Retry-After until scores are servable)
//	GET  /metrics       request/latency (p50/p95/p99)/cache/retry/ingest/degradation
//
// Every error renders one envelope: {"error":{"code","message","retryable"}}
// with 400 invalid_request, 404 unknown_customer, 405 method_not_allowed,
// 429 overloaded / refresh_in_progress, 503 unavailable, 504 timeout.
//
// Serving path: vectors resolve through a single provider chain — live event
// overlay, then the artifact's precomputed snapshot (churnctl train
// -precompute), then the warehouse frame — reported uniformly by /healthz,
// /readyz and /metrics. Scores stay bit-identical to `churnctl score` over
// the same artifact, month and merged events.
//
// Streaming ingest: events append durably to the warehouse event log first,
// then fold into the incremental feature maintainer; each affected
// customer's full serving row is recomputed (per-customer groups exactly,
// graph groups at their snapshot values) and installed as an overlay
// override, so the next score reflects the event within the same second.
// POST /v1/refresh rebuilds the whole frame with the logged events overlaid
// (graph groups included) and swaps it under the overlay without dropping
// requests; `churnctl ingest -merge` folds the log into the monthly
// partitions for the batch path.
//
// Resilience: source reads retry with seeded-jitter backoff (-retries);
// with -degraded the serving frame builds even when raw tables are missing
// (their feature groups are imputed and reported). SIGHUP hot-reloads the
// artifact and warehouse window with validate-then-swap semantics: a reload
// that fails to build leaves the previous engine serving untouched.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/serve"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

func main() {
	fs := flag.NewFlagSet("churnd", flag.ExitOnError)
	artifact := fs.String("artifact", "churn-model.tcpa", "pipeline artifact from churnctl train")
	warehouse := fs.String("warehouse", "./warehouse", "warehouse directory")
	month := fs.Int("month", 0, "feature month to serve (0 = latest)")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 0, "largest micro-batch (0 = default 256)")
	maxDelay := fs.Duration("max-delay", 0, "micro-batch linger (0 = default 2ms)")
	queue := fs.Int("queue", 0, "pending-score queue bound (0 = default 4096)")
	shards := fs.Int("shards", 0, "batching shards (0 = one per core)")
	cacheTTL := fs.Duration("cache-ttl", 10*time.Minute, "feature-vector cache TTL (0 disables)")
	workers := fs.Int("workers", 0, "parallelism for the feature build (0 = all cores)")
	degraded := fs.Bool("degraded", false, "serve even when raw tables are unavailable (impute their feature groups, report the mask)")
	retries := fs.Int("retries", 0, "read attempts per source operation (0 = default 4, 1 = no retries)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget for in-flight requests")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline, 504 on expiry (0 disables; /v1/refresh gets 6x)")
	fsyncMode := fs.String("fsync", "always", "warehouse/event-log durability: always, off, or a flush interval like 500ms")
	pprofAddr := fs.String("pprof", "", "mount net/http/pprof on this side address (empty = off)")
	fs.Parse(os.Args[1:])

	fsync, err := store.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal("churnd: ", err)
	}
	svc, err := buildService(serviceOpts{
		artifact:   *artifact,
		warehouse:  *warehouse,
		month:      *month,
		cfg:        serve.Config{MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueSize: *queue, Shards: *shards},
		cacheTTL:   *cacheTTL,
		workers:    *workers,
		degraded:   *degraded,
		retries:    *retries,
		reqTimeout: *reqTimeout,
		fsync:      fsync,
	})
	if err != nil {
		log.Fatal("churnd: ", err)
	}
	defer svc.Close()

	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serving that mux on a
		// side listener keeps profiling off the scoring port.
		go func() {
			log.Printf("churnd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("churnd: pprof listener: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Drain sequence on SIGINT/SIGTERM: mark draining (new readiness probes
	// get 503, new refreshes are refused), stop accepting and let in-flight
	// requests finish within -drain-timeout, then force-close whatever is
	// left. main waits on drained before svc.Close() flushes the event log.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("churnd: draining (budget %v)", *drainTimeout)
		svc.draining.Store(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("churnd: drain incomplete after %v (%v); closing remaining connections", *drainTimeout, err)
			srv.Close()
		}
	}()

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := svc.reload(); err != nil {
				log.Printf("churnd: reload rejected, previous engine keeps serving: %v", err)
			} else {
				e := svc.cur.Load()
				info := e.overlay.Info()
				log.Printf("churnd: reloaded %s (month %d, %d customers, %s path, degraded: %s)",
					*artifact, e.month, info.Rows, info.Source, info.Degradation)
			}
		}
	}()

	e := svc.cur.Load()
	info := e.overlay.Info()
	log.Printf("churnd: serving %s (month %d, %d customers, %s path, schema %08x, degraded: %s, ingest: %v) on %s",
		e.model, e.month, info.Rows, info.Source, e.pipe.SchemaChecksum(), info.Degradation, e.ingestReady(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("churnd: ", err)
	}
	// ErrServerClosed means the drain goroutine is mid-shutdown; wait for it
	// so the deferred svc.Close() (scorer stop + event-log flush) runs after
	// the last in-flight request, not during it.
	<-drained
	log.Print("churnd: drained")
}

// serviceOpts is everything needed to build — and rebuild, on SIGHUP — the
// serving engine.
type serviceOpts struct {
	artifact  string
	warehouse string
	month     int // 0 = latest available at (re)build time
	cfg       serve.Config
	cacheTTL  time.Duration
	workers   int
	degraded  bool
	retries   int
	// reqTimeout is the per-request deadline (0 = none); expired requests
	// render the 504 envelope. fsync is the warehouse durability policy
	// (zero value = always, the safe default).
	reqTimeout time.Duration
	fsync      store.SyncPolicy
}

// engine is the hot-swappable serving unit: one artifact serving one month.
// Reloads build a whole new engine and atomically replace the pointer;
// in-flight requests finish on whichever engine they started. A /v1/refresh
// swaps only the overlay's inner provider and the frame pointer — the
// scorer and overlay survive, so refreshes never drop requests.
type engine struct {
	pipe   *core.Pipeline
	scorer *serve.Scorer
	// overlay tops the provider chain; every handler reports through its
	// Info() so the active path and degradation read uniformly everywhere.
	overlay *serve.Overlay
	// vp is the artifact's precomputed snapshot (nil without -precompute);
	// useVectors records whether it matches the served month.
	vp         *serve.VectorsProvider
	useVectors bool
	// frame is the warehouse-built provider behind the overlay; refresh
	// replaces it. Nil when serving the snapshot alone.
	frame atomic.Pointer[serve.FrameProvider]
	// Ingest state: the durable event log, the incremental maintainer, and
	// the retry-wrapped warehouse source refresh rebuilds from. All nil
	// when the warehouse is unavailable.
	log *store.EventLog
	inc *core.Incremental
	src core.Source
	win features.Window
	// buildSeq is the event-log sequence the engine's frame was built
	// through (events <= buildSeq are already in the frame).
	buildSeq uint64
	model    string
	month    int
}

// ingestReady reports whether the engine can take POST /v1/events.
func (e *engine) ingestReady() bool {
	return e.log != nil && e.inc != nil && e.frame.Load() != nil
}

// service wires the current engine, the reload machinery and the metrics
// (which survive reloads) into HTTP handlers.
type service struct {
	opts    serviceOpts
	metrics *serve.Metrics
	cur     atomic.Pointer[engine]
	// ingestMu serializes event folding and provider swaps; appliedSeq is
	// the log sequence folded into the current engine's maintainer and
	// quarantined the count of its log's quarantine records already
	// surfaced (both guarded by ingestMu).
	ingestMu    sync.Mutex
	appliedSeq  uint64
	quarantined int
	refreshing  atomic.Bool
	// draining flips once at shutdown: readiness goes 503 and new
	// refreshes are refused while in-flight work finishes.
	draining atomic.Bool
}

// buildService loads the artifact, builds the serving base for one
// warehouse month and folds any unmerged event log through the maintainer,
// so a restart resumes exactly where the log left off.
func buildService(opts serviceOpts) (*service, error) {
	s := &service{opts: opts, metrics: &serve.Metrics{}}
	e, err := s.buildEngine()
	if err != nil {
		return nil, err
	}
	s.cur.Store(e)
	s.ingestMu.Lock()
	s.appliedSeq = 0
	if _, _, err := s.foldLocked(); err != nil && !errors.Is(err, errIngestUnavailable) {
		log.Printf("churnd: event log replay: %v", err)
	}
	s.ingestMu.Unlock()
	return s, nil
}

// buildEngine assembles a fully validated engine from the current opts:
// artifact loaded and decoded, vector source chosen, serving frame built
// over the unmerged event log when the warehouse allows it. Any failure
// leaves no side effects, which is what makes reload rollback free.
func (s *service) buildEngine() (*engine, error) {
	opts := s.opts
	pipe, err := core.LoadFile(opts.artifact)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", opts.artifact, err)
	}
	pipe.SetWorkers(opts.workers)

	// The artifact may carry a precomputed feature-vector snapshot (churnctl
	// train -precompute); when it does, the warehouse becomes optional.
	vp, _ := serve.NewVectorsProvider(pipe)

	days := synth.DefaultConfig().DaysPerMonth
	var monthsAvail []int
	wh, whErr := store.Open(opts.warehouse)
	if whErr == nil {
		// The customer snapshot anchors month discovery: it is the one table
		// serving cannot impute around, so its months are the servable months.
		wh.SetSync(opts.fsync)
		monthsAvail, whErr = wh.Months(synth.TableCustomers)
		if whErr == nil && len(monthsAvail) == 0 {
			whErr = fmt.Errorf("empty warehouse %s (run churnctl generate)", opts.warehouse)
		}
	}

	// Month cascade: explicit flag, else the warehouse's latest customer
	// snapshot, else the month the artifact's vectors were precomputed from.
	month := opts.month
	if month == 0 {
		switch {
		case whErr == nil:
			month = monthsAvail[len(monthsAvail)-1]
		case vp != nil:
			month = vp.Month()
		default:
			return nil, whErr
		}
	}
	e := &engine{
		pipe:       pipe,
		vp:         vp,
		useVectors: vp != nil && vp.Month() == month,
		model:      pipe.Classifier().Name(),
		month:      month,
		win:        features.MonthWindow(month, days),
	}

	var frameProv *serve.FrameProvider
	if whErr == nil {
		rs := core.NewRetrySource(core.NewWarehouseSource(wh, days), core.RetryConfig{
			MaxAttempts: opts.retries,
			OnRetry: func(op string, attempt int, delay time.Duration, err error) {
				s.metrics.Retries.Add(1)
				log.Printf("churnd: retrying %s (attempt %d, backoff %v): %v", op, attempt, delay, err)
			},
		})
		e.src = rs
		// The durable event log rides inside the warehouse; the serving
		// frame builds over it (base partitions + unmerged events, the
		// exact post-merge layout), so a restart loses nothing.
		var buildSrc core.Source = rs
		if elog, logErr := wh.EventLog(); logErr != nil {
			log.Printf("churnd: event log unavailable, ingest disabled: %v", logErr)
		} else {
			e.log = elog
			if ov, ovErr := core.NewEventOverlaySource(rs, elog); ovErr != nil {
				log.Printf("churnd: event overlay unavailable, serving base partitions only: %v", ovErr)
			} else {
				buildSrc = ov
				e.buildSeq = ov.Seq()
			}
		}
		if opts.degraded {
			frameProv, err = serve.NewFrameProviderDegraded(pipe, buildSrc, e.win)
		} else {
			frameProv, err = serve.NewFrameProvider(pipe, buildSrc, e.win)
		}
		s.metrics.RetriesExhausted.Add(rs.Exhausted())
		if err != nil {
			if !e.useVectors {
				return nil, fmt.Errorf("build serving frame for month %d: %w", month, err)
			}
			log.Printf("churnd: frame path unavailable, serving the precomputed snapshot alone: %v", err)
			frameProv = nil
		}
		if frameProv != nil && e.log != nil {
			// The maintainer folds streamed events between full builds; its
			// tables start at the base partitions and the fold (foldLocked)
			// replays the log over them.
			inc, incErr := core.NewIncremental(pipe, rs, e.win)
			if incErr != nil {
				log.Printf("churnd: incremental maintenance unavailable, ingest disabled: %v", incErr)
			} else {
				e.inc = inc
			}
		}
	} else if !e.useVectors {
		return nil, whErr
	} else {
		log.Printf("churnd: warehouse unavailable, serving the precomputed snapshot alone: %v", whErr)
	}
	e.frame.Store(frameProv)

	inner, err := s.chainFor(e, frameProv)
	if err != nil {
		return nil, err
	}
	e.overlay = serve.NewOverlay(inner, s.metrics)
	e.scorer = serve.NewScorer(pipe.Classifier(), e.overlay, opts.cfg, s.metrics)
	s.metrics.DegradedMask.Store(uint64(e.overlay.Info().Degradation))
	s.metrics.RefreshUnixNano.Store(time.Now().UnixNano())
	return e, nil
}

// chainFor composes the immutable provider chain under the overlay from
// the available leaves: precomputed snapshot first (an index lookup, zero
// allocations) with the TTL-cached frame answering for customers outside
// it; either leaf alone when the other is unavailable.
func (s *service) chainFor(e *engine, frameProv *serve.FrameProvider) (serve.Provider, error) {
	switch {
	case e.useVectors && frameProv != nil:
		return serve.NewFallbackProvider(e.vp, serve.NewCache(frameProv, s.opts.cacheTTL, s.metrics))
	case e.useVectors:
		return e.vp, nil
	case frameProv != nil:
		return serve.NewCache(frameProv, s.opts.cacheTTL, s.metrics), nil
	default:
		return nil, errors.New("no serving path: neither warehouse frame nor precomputed vectors")
	}
}

// errIngestUnavailable marks an engine that cannot take writes (no
// warehouse, no event log, or no maintainer).
var errIngestUnavailable = errors.New("ingest unavailable: serving without a warehouse event log")

// foldLocked replays every event-log segment after appliedSeq through the
// maintainer and installs refreshed serving rows for the affected
// customers as overlay overrides. Callers hold ingestMu. Returns the
// number of event rows applied and customers refreshed.
func (s *service) foldLocked() (int, int, error) {
	e := s.cur.Load()
	if e == nil || !e.ingestReady() {
		return 0, 0, errIngestUnavailable
	}
	before := e.inc.Maintainer().Applied()
	affected := map[int64]struct{}{}
	err := e.log.Replay(s.appliedSeq, func(seq uint64, name string, t *table.Table) error {
		ids, _, ierr := e.inc.Ingest(name, t)
		if ierr != nil {
			// A malformed or non-streamable logged table cannot stall the
			// fold forever; it is skipped here and surfaces at merge time.
			log.Printf("churnd: skipping logged %s events at seq %d: %v", name, seq, ierr)
		}
		for _, id := range ids {
			affected[id] = struct{}{}
		}
		if seq > s.appliedSeq {
			s.appliedSeq = seq
		}
		return nil
	})
	frame := e.frame.Load()
	for id := range affected {
		base, ok := frame.Vector(id)
		if !ok {
			continue
		}
		row, rerr := e.inc.Refresh(id, base)
		if rerr != nil {
			log.Printf("churnd: refresh imsi %d: %v", id, rerr)
			continue
		}
		e.overlay.Override(id, row)
	}
	// Surface any tail segments the replay quarantined instead of failing.
	if qs := e.log.Quarantines(); len(qs) > s.quarantined {
		for _, q := range qs[s.quarantined:] {
			s.metrics.EventsQuarantined.Add(1)
			log.Printf("churnd: quarantined corrupt event-log tail segment %d -> %s (%s)", q.Seq, q.Path, q.Err)
		}
		s.quarantined = len(qs)
	}
	return e.inc.Maintainer().Applied() - before, len(affected), err
}

// reload builds a fresh engine from the same options (re-reading artifact,
// warehouse and event log) and swaps it in only if the build fully
// succeeds; a failed build counts a reload_failure and leaves the old
// engine serving. The old scorer is closed after the swap: requests
// already queued on it complete, and any that race the closure shed with
// 503 + Retry-After like any other transient overload.
func (s *service) reload() error {
	e, err := s.buildEngine()
	if err != nil {
		s.metrics.ReloadFailures.Add(1)
		return err
	}
	s.ingestMu.Lock()
	old := s.cur.Swap(e)
	s.appliedSeq = 0
	s.quarantined = 0 // the new engine opened a fresh EventLog instance
	if _, _, ferr := s.foldLocked(); ferr != nil && !errors.Is(ferr, errIngestUnavailable) {
		log.Printf("churnd: event log replay after reload: %v", ferr)
	}
	s.ingestMu.Unlock()
	if old != nil {
		old.scorer.Close()
	}
	s.metrics.Reloads.Add(1)
	return nil
}

// Close stops the current engine's batching loop and flushes any event-log
// commits the durability policy is still holding, so an interval-mode
// daemon exits with its accepted batches on stable storage.
func (s *service) Close() {
	if e := s.cur.Load(); e != nil {
		e.scorer.Close()
		if e.log != nil {
			if err := e.log.Sync(); err != nil {
				log.Printf("churnd: event log sync on close: %v", err)
			}
		}
	}
}

// Handler returns the HTTP mux for the service, wrapped in the lifecycle
// middleware: panics become 500 envelopes (outermost, so it also covers
// the deadline layer), and every request carries the -request-timeout
// deadline.
func (s *service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", s.handleScore)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/v1/refresh", s.handleRefresh)
	mux.HandleFunc("/v1/customers", s.handleCustomers)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.recoverPanics(s.withDeadline(mux))
}

// trackedWriter remembers whether a response has started, so the panic
// middleware only writes its envelope onto an untouched response.
type trackedWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackedWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackedWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// recoverPanics converts a handler panic into a 500 envelope (when the
// response hasn't started) plus a panics_recovered count and a stack in the
// log — one bad request must not take down the daemon. http.ErrAbortHandler
// re-panics: it is net/http's sanctioned way to abort a response.
func (s *service) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackedWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.metrics.PanicsRecovered.Add(1)
			log.Printf("churnd: recovered panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !tw.wrote {
				writeError(tw, http.StatusInternalServerError, "internal", "internal server error", false)
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// withDeadline attaches the -request-timeout deadline to every request
// context. The scoring path observes it inside Score (504 via scoreStatus);
// the slow handlers check it at their commit points. /v1/refresh rebuilds
// the whole frame, so it gets six budgets.
func (s *service) withDeadline(next http.Handler) http.Handler {
	if s.opts.reqTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := s.opts.reqTimeout
		if r.URL.Path == "/v1/refresh" {
			d *= 6
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ---- error envelope ----

// apiError is the one error shape every endpoint renders:
// {"error":{"code":"...","message":"...","retryable":bool}}.
type apiError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// writeError renders the envelope; retryable errors carry Retry-After so
// well-behaved clients back off instead of hammering.
func writeError(w http.ResponseWriter, status int, code, msg string, retryable bool) {
	if retryable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: msg, Retryable: retryable}})
}

// scoreStatus maps scoring failures onto the envelope: a full queue is
// load-shed the client should retry (429), a closed scorer means a reload
// is mid-swap (503), a dead deadline is a timeout (504), an unknown
// customer is the caller's data (404).
func scoreStatus(err error) (int, string, bool) {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests, "overloaded", true
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable, "unavailable", true
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout", true
	case errors.Is(err, serve.ErrUnknownCustomer):
		return http.StatusNotFound, "unknown_customer", false
	default:
		return http.StatusInternalServerError, "internal", false
	}
}

// ---- handlers ----

// scoreRequest accepts either a single customer or a batch.
type scoreRequest struct {
	ID  *int64  `json:"id,omitempty"`
	IDs []int64 `json:"ids,omitempty"`
}

type scoreResponse struct {
	Model  string    `json:"model"`
	Month  int       `json:"month"`
	Score  *float64  `json:"score,omitempty"`
	Scores []float64 `json:"scores,omitempty"`
	// Degraded lists the feature groups imputed in the served window
	// ("F3,F6"); omitted when the window is healthy.
	Degraded string `json:"degraded,omitempty"`
}

func (s *service) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", false)
		return
	}
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", "bad request body: "+err.Error(), false)
		return
	}
	single := req.ID != nil
	ids := req.IDs
	if single {
		if len(ids) > 0 {
			writeError(w, http.StatusBadRequest, "invalid_request", `give "id" or "ids", not both`, false)
			return
		}
		ids = []int64{*req.ID}
	} else if len(ids) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", `need "id" or a non-empty "ids"`, false)
		return
	}

	e := s.cur.Load()
	scores, err := e.scorer.Score(r.Context(), ids)
	if err != nil {
		status, code, retryable := scoreStatus(err)
		writeError(w, status, code, err.Error(), retryable)
		return
	}
	resp := scoreResponse{Model: e.model, Month: e.month}
	if deg := e.overlay.Info().Degradation; !deg.Empty() {
		resp.Degraded = deg.String()
	}
	if single {
		resp.Score = &scores[0]
	} else {
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

// eventsResponse reports one accepted ingest batch: the durable log
// sequence it landed at, how many rows folded into the serving month, and
// how many customers' vectors were refreshed in place.
type eventsResponse struct {
	Seq      uint64 `json:"seq"`
	Received int    `json:"received"`
	Applied  int    `json:"applied"`
	Affected int    `json:"affected"`
	// StaleVectors is the live-override count after the fold — customers
	// served ahead of the last full build (gauge, also in /metrics).
	StaleVectors int `json:"stale_vectors"`
	Month        int `json:"month"`
}

func (s *service) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", false)
		return
	}
	var req serve.EventBatch
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.metrics.EventsRejected.Add(1)
		writeError(w, http.StatusBadRequest, "invalid_request", "bad request body: "+err.Error(), false)
		return
	}
	tables, err := serve.BuildEventTables(req.Events)
	if err != nil {
		s.metrics.EventsRejected.Add(uint64(len(req.Events)))
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error(), false)
		return
	}
	e := s.cur.Load()
	if e == nil || !e.ingestReady() {
		writeError(w, http.StatusServiceUnavailable, "unavailable", errIngestUnavailable.Error(), true)
		return
	}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	// Commit point: the deadline is only honored before the durable append —
	// once the batch is in the log it will be folded, not half-applied.
	if r.Context().Err() != nil {
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired before commit", true)
		return
	}
	// Durability first: the batch is committed to the log before anything
	// folds, so a crash between the two replays it on restart.
	seq, err := e.log.Append(tables)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", "event log append: "+err.Error(), true)
		return
	}
	// Fold from the log (not the parsed batch): this also catches segments
	// appended directly by churnctl ingest since the last fold.
	applied, affected, err := s.foldLocked()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", "event fold: "+err.Error(), true)
		return
	}
	s.metrics.EventsIngested.Add(uint64(applied))
	writeJSON(w, http.StatusOK, eventsResponse{
		Seq:          seq,
		Received:     len(req.Events),
		Applied:      applied,
		Affected:     affected,
		StaleVectors: e.overlay.Overridden(),
		Month:        e.month,
	})
}

// refreshResponse reports one completed serving-base rebuild.
type refreshResponse struct {
	Seq          uint64 `json:"seq"`
	Rows         int    `json:"rows"`
	StaleVectors int    `json:"stale_vectors"`
	Degraded     string `json:"degraded,omitempty"`
	TookMs       int64  `json:"took_ms"`
}

// handleRefresh rebuilds the serving frame with the unmerged event log
// overlaid — the full build, graph and topic groups included — and swaps
// it under the overlay atomically. The build runs without locks (scoring
// and ingest continue); only the final swap serializes with ingest.
func (s *service) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", false)
		return
	}
	if s.draining.Load() {
		// A refresh is a multi-second rebuild; don't start one the drain
		// budget would abort.
		writeError(w, http.StatusServiceUnavailable, "unavailable", "draining", true)
		return
	}
	e := s.cur.Load()
	if e == nil || !e.ingestReady() || e.src == nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", errIngestUnavailable.Error(), true)
		return
	}
	if !s.refreshing.CompareAndSwap(false, true) {
		writeError(w, http.StatusTooManyRequests, "refresh_in_progress", "a refresh is already running", true)
		return
	}
	defer s.refreshing.Store(false)
	start := time.Now()

	// Fold anything pending so the maintainer covers the snapshot the
	// rebuild is about to take, then snapshot the log.
	s.ingestMu.Lock()
	if _, _, err := s.foldLocked(); err != nil {
		s.ingestMu.Unlock()
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", "pre-refresh fold: "+err.Error(), true)
		return
	}
	ovSrc, err := core.NewEventOverlaySource(e.src, e.log)
	snapSeq := s.appliedSeq
	s.ingestMu.Unlock()
	if err != nil {
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", "event overlay: "+err.Error(), true)
		return
	}

	var newFrame *serve.FrameProvider
	if s.opts.degraded {
		newFrame, err = serve.NewFrameProviderDegraded(e.pipe, ovSrc, e.win)
	} else {
		newFrame, err = serve.NewFrameProvider(e.pipe, ovSrc, e.win)
	}
	if err != nil {
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", "rebuild serving frame: "+err.Error(), true)
		return
	}

	// The swap is cheap, but a client whose deadline has already expired
	// gets the 504 now rather than a success it will never read.
	if r.Context().Err() != nil {
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline expired during rebuild", true)
		return
	}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.cur.Load() != e {
		// A SIGHUP reload swapped engines mid-build; its frame is at least
		// as fresh as ours, so this refresh simply yields.
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", "engine reloaded during refresh, retry", true)
		return
	}
	inner, err := s.chainFor(e, newFrame)
	if err != nil {
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error(), true)
		return
	}
	// Overrides for events the new base already covers retire; events that
	// arrived while the build ran (appliedSeq moved past the snapshot)
	// recompute against the new base.
	var recompute func(id int64, base []float64) ([]float64, error)
	if s.appliedSeq > snapSeq {
		recompute = func(id int64, base []float64) ([]float64, error) {
			return e.inc.Refresh(id, base)
		}
	}
	if err := e.overlay.Swap(inner, recompute); err != nil {
		s.metrics.RefreshFailures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "unavailable", "swap: "+err.Error(), true)
		return
	}
	e.frame.Store(newFrame)
	e.buildSeq = snapSeq
	s.metrics.DegradedMask.Store(uint64(newFrame.Degradation()))
	s.metrics.Refreshes.Add(1)
	s.metrics.RefreshUnixNano.Store(time.Now().UnixNano())
	resp := refreshResponse{
		Seq:          snapSeq,
		Rows:         newFrame.NumRows(),
		StaleVectors: e.overlay.Overridden(),
		TookMs:       time.Since(start).Milliseconds(),
	}
	if deg := newFrame.Degradation(); !deg.Empty() {
		resp.Degraded = deg.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness probe: 200 whenever the process can answer,
// regardless of engine state — restarts are for hangs, not for degraded
// windows or mid-reload gaps.
func (s *service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if e := s.cur.Load(); e != nil {
		info := e.overlay.Info()
		body["model"] = e.model
		body["month"] = e.month
		body["customers"] = info.Rows
		body["features"] = len(e.pipe.FeatureNames())
		body["schema"] = fmt.Sprintf("%08x", e.pipe.SchemaChecksum())
		body["provider"] = info.Source
		body["degraded"] = info.Degradation.String()
		body["stale_vectors"] = info.Overridden
		body["ingest"] = e.ingestReady()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the readiness probe: 200 only while an engine is loaded
// and accepting scores. A degraded window is still ready (it serves, with
// the mask reported); a closed or absent engine is not.
func (s *service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Shutdown in progress: tell balancers to route elsewhere while
		// in-flight requests finish.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	e := s.cur.Load()
	if e == nil || e.scorer.Closed() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unready"})
		return
	}
	info := e.overlay.Info()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"month":         e.month,
		"provider":      info.Source,
		"degraded":      info.Degradation.String(),
		"stale_vectors": info.Overridden,
		"ingest":        e.ingestReady(),
		"schema":        fmt.Sprintf("%08x", e.pipe.SchemaChecksum()),
	})
}

// handleCustomers lists the scorable customer ids — the discovery endpoint
// load generators (churnload) and smoke checks use to pick real targets.
func (s *service) handleCustomers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", false)
		return
	}
	e := s.cur.Load()
	if e == nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", "no engine loaded", true)
		return
	}
	info := e.overlay.Info()
	ids := e.overlay.IDs()
	if lim := r.URL.Query().Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid_request", "limit must be a non-negative integer", false)
			return
		}
		if n < len(ids) {
			ids = ids[:n]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"month":  e.month,
		"count":  info.Rows,
		"source": info.Source,
		"ids":    ids,
	})
}

func (s *service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	if e := s.cur.Load(); e != nil {
		// The provider chain reports itself the same way here as in
		// /healthz and /readyz.
		info := e.overlay.Info()
		snap["provider"] = info.Source
		snap["provider_rows"] = info.Rows
	}
	writeJSON(w, http.StatusOK, snap)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

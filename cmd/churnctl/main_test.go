package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wh")
	if err := cmdGenerate([]string{"-out", dir, "-customers", "400", "-months", "2"}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Errorf("warehouse has %d tables, want 10", len(entries))
	}
	if err := cmdInspect([]string{"-warehouse", dir}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestGenerateDailyMatchesMonthly(t *testing.T) {
	dir := t.TempDir()
	monthly := filepath.Join(dir, "monthly")
	daily := filepath.Join(dir, "daily")
	if err := cmdGenerate([]string{"-out", monthly, "-customers", "300", "-months", "2"}); err != nil {
		t.Fatalf("monthly generate: %v", err)
	}
	if err := cmdGenerate([]string{"-out", daily, "-customers", "300", "-months", "2", "-daily"}); err != nil {
		t.Fatalf("daily generate: %v", err)
	}
	// Same seed, same world: both paths must land identical row counts.
	for _, whdir := range []string{monthly, daily} {
		if err := cmdInspect([]string{"-warehouse", whdir}); err != nil {
			t.Fatalf("inspect %s: %v", whdir, err)
		}
	}
	mo, err := os.ReadDir(filepath.Join(monthly, "calls"))
	if err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadDir(filepath.Join(daily, "calls"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mo) != len(da) {
		t.Errorf("partition counts differ: %d vs %d", len(mo), len(da))
	}
}

func TestEvalCheapExperiment(t *testing.T) {
	if err := cmdEval([]string{"tab1", "-customers", "500"}); err != nil {
		t.Fatalf("eval tab1: %v", err)
	}
}

func TestTrainScoreWorkflow(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "wh")
	model := filepath.Join(dir, "model.tcpa")
	if err := cmdGenerate([]string{"-out", wh, "-customers", "800", "-months", "4"}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := cmdTrain([]string{"-warehouse", wh, "-out", model, "-trees", "30", "-groups", "F1,F2"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model file missing: %v", err)
	}
	if err := cmdScore([]string{"-warehouse", wh, "-model", model, "-top", "5"}); err != nil {
		t.Fatalf("score: %v", err)
	}
	if err := cmdScore([]string{"-warehouse", wh, "-model", model, "-top", "5", "-full"}); err != nil {
		t.Fatalf("score -full: %v", err)
	}
	// A non-artifact file must be rejected, not silently mis-scored.
	if err := cmdScore([]string{"-warehouse", wh, "-model", filepath.Join(wh, "truth", "month=1.tct")}); err == nil {
		t.Error("want error loading a non-artifact file")
	}

	// Degraded mode: with the web feed gone, strict scoring fails but
	// -degraded still produces the ranked list (F1 imputed, mask on stderr).
	if err := os.RemoveAll(filepath.Join(wh, "web")); err != nil {
		t.Fatal(err)
	}
	if err := cmdScore([]string{"-warehouse", wh, "-model", model, "-top", "5"}); err == nil {
		t.Error("strict score survived a missing raw table")
	}
	if err := cmdScore([]string{"-warehouse", wh, "-model", model, "-top", "5", "-degraded"}); err != nil {
		t.Fatalf("score -degraded: %v", err)
	}
}

func TestParseGroups(t *testing.T) {
	gs, err := parseGroups("F1, f3")
	if err != nil || len(gs) != 2 {
		t.Fatalf("parseGroups: %v %v", gs, err)
	}
	// Fitted-feature-model groups persist in the artifact, so every group
	// is trainable from the CLI.
	if gs, err := parseGroups("F7,F9"); err != nil || len(gs) != 2 {
		t.Errorf("parseGroups F7,F9: %v %v", gs, err)
	}
	if _, err := parseGroups("F42"); err == nil {
		t.Error("want error for unknown group")
	}
	if gs, _ := parseGroups("default"); len(gs) != 6 {
		t.Errorf("default groups = %d, want 6", len(gs))
	}
	if gs, _ := parseGroups("all"); len(gs) != 9 {
		t.Errorf("all groups = %d, want 9", len(gs))
	}
}

func TestRunAliasForwardsToEval(t *testing.T) {
	if err := cmdRun([]string{"nope", "-customers", "500"}); err == nil {
		t.Error("want error for unknown experiment id")
	}
	if err := cmdRun(nil); err == nil {
		t.Error("want error for missing experiment id")
	}
}

package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
)

// sourceFlags are the warehouse-access knobs shared by every subcommand
// that opens a warehouse (inspect, build, train, score, ingest): the
// resilience and parallelism flags spell and behave the same everywhere,
// and match churnd's serving flags.
type sourceFlags struct {
	dir      *string
	workers  *int
	shards   *int
	retries  *int
	degraded *bool
	fsync    *string
}

// addSourceFlags registers the shared warehouse flags on fs.
func addSourceFlags(fs *flag.FlagSet) *sourceFlags {
	return &sourceFlags{
		dir:      fs.String("warehouse", "./warehouse", "warehouse directory"),
		workers:  fs.Int("workers", 0, "parallelism for feature builds (0 = all cores)"),
		shards:   fs.Int("shards", 0, "shard count for sharded reads (0 = detect from layout)"),
		retries:  fs.Int("retries", 0, "read attempts per source operation (0 = default 4, 1 = no retries)"),
		degraded: fs.Bool("degraded", false, "tolerate unavailable raw tables where the subcommand supports imputation"),
		fsync:    fs.String("fsync", "always", "write durability: always, off, or a flush interval like 500ms"),
	}
}

// open opens the warehouse directory under the -fsync durability policy.
func (f *sourceFlags) open() (*store.Warehouse, error) {
	policy, err := store.ParseSyncPolicy(*f.fsync)
	if err != nil {
		return nil, err
	}
	wh, err := store.Open(*f.dir)
	if err != nil {
		return nil, err
	}
	wh.SetSync(policy)
	return wh, nil
}

// detectShards resolves the effective shard count: the -shards override,
// or the customers table's on-disk layout.
func (f *sourceFlags) detectShards(wh *store.Warehouse) (int, error) {
	if *f.shards != 0 {
		return *f.shards, nil
	}
	return wh.DetectShards(synth.TableCustomers)
}

// source opens the warehouse as a retrying, shard-aware pipeline source:
// reads retry with seeded backoff per -retries, and AsSharded callers get
// the bounded-memory sharded path at the layout's (or -shards') count.
// Whole-window reads stay bit-identical for any shard count.
func (f *sourceFlags) source(label string) (*core.RetrySource, *store.Warehouse, int, error) {
	wh, err := f.open()
	if err != nil {
		return nil, nil, 0, err
	}
	days := synth.DefaultConfig().DaysPerMonth
	shards, err := f.detectShards(wh)
	if err != nil {
		return nil, nil, 0, err
	}
	if shards < 1 {
		shards = 1
	}
	sw, err := wh.Sharded(shards)
	if err != nil {
		return nil, nil, 0, err
	}
	rs := core.NewRetrySource(core.NewShardedWarehouseSource(sw, days), core.RetryConfig{
		MaxAttempts: *f.retries,
		OnRetry: func(op string, attempt int, delay time.Duration, err error) {
			fmt.Fprintf(os.Stderr, "%s: retrying %s (attempt %d, backoff %v): %v\n", label, op, attempt, delay, err)
		},
	})
	return rs, wh, days, nil
}

// Command churnctl drives the telco churn reproduction from the shell:
//
//	churnctl generate -out ./warehouse -customers 5000 -months 9
//	    simulate the synthetic telco world and land the raw BSS/OSS tables
//	    in a partitioned on-disk warehouse (the HDFS layer of Figure 2)
//
//	churnctl eval <experiment-id> [flags]
//	    run one of the paper's experiments (fig1 fig5 fig7 fig8 fig9
//	    tab1 tab2 tab3 tab4 tab5 tab6 tab7) and print the paper-style table
//	    ("eval all" runs every experiment in order; "run" is a deprecated
//	    alias)
//
//	churnctl train -warehouse DIR -out FILE
//	    fit the full pipeline on the warehouse and save a versioned
//	    artifact (models + fitted feature state + schema)
//
//	churnctl score -warehouse DIR -model FILE
//	    load an artifact and rank a month's churners; churnd serves the
//	    same artifact over HTTP
//
//	churnctl inspect -warehouse ./warehouse
//	    list warehouse tables, partitions and row counts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"telcochurn/internal/experiments"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "features":
		err = cmdFeatures(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "score":
		err = cmdScore(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "churnctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  churnctl generate -out DIR [-customers N] [-months N] [-seed N] [-shards N] [-burnin N]
  churnctl eval EXPERIMENT|all [-customers N] [-trees N] [-repeats N] [-seed N] [-workers N] [-bins N] [-cpuprofile F] [-memprofile F]
  churnctl inspect -warehouse DIR
  churnctl build -warehouse DIR [-month N] [-groups F1,..] [-shards N] [-workers N] [-rss-limit-mb N] [-checksum]
                                             out-of-core wide-table build with memory reporting
  churnctl explain [-customers N] [-top N]   root causes of predicted churners
  churnctl features                          wide-table feature dictionary (paper Fig. 4)
  churnctl train -warehouse DIR -out FILE    fit the pipeline and save a versioned artifact
  churnctl score -warehouse DIR -model FILE  ranked churner list from a saved artifact
  churnctl ingest -warehouse DIR [-events F|-synth N] [-addr URL] [-merge]
                                             append raw events to the event log (or POST to churnd);
                                             -merge folds the log into the monthly partitions
  churnctl run ...                           deprecated alias for eval

every warehouse-opening subcommand also takes -workers, -shards, -retries, -degraded

experiments: %v
`, experiments.IDs())
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "./warehouse", "warehouse output directory")
	customers := fs.Int("customers", 5000, "customers per month")
	months := fs.Int("months", 9, "months to simulate")
	seed := fs.Int64("seed", 1, "generator seed")
	daily := fs.Bool("daily", false, "land event tables day by day and compact (the platform's daily ETL flow)")
	shards := fs.Int("shards", 1, "hash-shard each month partition N ways (1 = plain layout)")
	burnin := fs.Int("burnin", 0, "unrecorded burn-in months before month 1 (0 = generator default)")
	fsyncMode := fs.String("fsync", "always", "write durability: always, off, or a flush interval like 500ms (synthetic data is rebuildable — off is safe here)")
	fs.Parse(args)

	cfg := synth.DefaultConfig()
	cfg.Customers = *customers
	cfg.Months = *months
	cfg.Seed = *seed
	cfg.BurnInMonths = *burnin

	policy, err := store.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}
	wh, err := store.Open(*out)
	if err != nil {
		return err
	}
	wh.SetSync(policy)
	start := time.Now()
	switch {
	case *daily && *shards > 1:
		return fmt.Errorf("-daily and -shards are mutually exclusive")
	case *daily:
		err = generateDaily(cfg, wh)
	case *shards > 1:
		var sw *store.ShardedWarehouse
		if sw, err = wh.Sharded(*shards); err == nil {
			err = synth.GenerateToShardedWarehouse(cfg, sw)
		}
	default:
		err = synth.GenerateToWarehouse(cfg, wh)
	}
	if err != nil {
		return err
	}
	fmt.Printf("generated %d months x %d customers into %s in %v\n",
		*months, *customers, *out, time.Since(start).Round(time.Millisecond))
	return nil
}

// generateDaily lands each event table via the store's daily staging path
// (split by the day column, staged, compacted), exercising the same flow
// the paper's platform runs against its 2.3 TB/day feed. Monthly snapshot
// tables are written directly.
func generateDaily(cfg synth.Config, wh *store.Warehouse) error {
	w := synth.NewWorld(cfg)
	dailyTables := map[string]bool{
		synth.TableCalls: true, synth.TableMessages: true, synth.TableRecharges: true,
		synth.TableComplaints: true, synth.TableWeb: true, synth.TableSearch: true,
		synth.TableLocations: true,
	}
	for i := 0; i < cfg.Months; i++ {
		md := w.SimulateMonth()
		for name, t := range md.Tables() {
			if !dailyTables[name] {
				if err := wh.WritePartition(name, md.Month, t); err != nil {
					return err
				}
				continue
			}
			dayCol := t.MustCol("day").Ints
			staged := false
			for day := 1; day <= cfg.DaysPerMonth; day++ {
				d := int64(day)
				slice := t.Filter(func(r int) bool { return dayCol[r] == d })
				if slice.NumRows() == 0 {
					continue
				}
				if err := wh.StageDay(name, md.Month, day, slice); err != nil {
					return err
				}
				staged = true
			}
			if !staged {
				// A month with no events still needs an (empty) partition so
				// ReadMonths can concatenate the table.
				if err := wh.WritePartition(name, md.Month, t); err != nil {
					return err
				}
				continue
			}
			if err := wh.CompactMonth(name, md.Month); err != nil {
				return err
			}
		}
	}
	return nil
}

// cmdRun is the deprecated alias for eval, kept so existing scripts keep
// working while the note steers them to the new command split.
func cmdRun(args []string) error {
	fmt.Fprintln(os.Stderr, "churnctl: `run` is deprecated — use `churnctl eval` (same behavior);"+
		" `train` and `score` now work on the versioned pipeline artifact")
	return cmdEval(args)
}

func cmdEval(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("eval: need an experiment id or 'all'")
	}
	id := args[0]
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	customers := fs.Int("customers", 4000, "customers per month")
	trees := fs.Int("trees", 150, "forest/boosting ensemble size")
	repeats := fs.Int("repeats", 2, "sliding-window anchors to average")
	seed := fs.Int64("seed", 1, "seed")
	minLeaf := fs.Int("minleaf", 25, "minimum samples per tree leaf")
	workers := fs.Int("workers", 0, "parallelism across the pipeline (0 = all cores); results are identical for any value")
	bins := fs.Int("bins", 0, "histogram bins for forest split search (0 = exact splits, max 255)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args[1:])

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("eval: -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("eval: -cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "churnctl: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "churnctl: -memprofile:", err)
			}
		}()
	}

	opts := experiments.Options{
		Customers: *customers,
		Trees:     *trees,
		Repeats:   *repeats,
		Seed:      *seed,
		MinLeaf:   *minLeaf,
		Workers:   *workers,
		Bins:      *bins,
	}

	ids := []string{id}
	if id == "all" {
		ids = experiments.IDs()
	}
	for _, xid := range ids {
		start := time.Now()
		res, err := experiments.Run(xid, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", xid, err)
		}
		fmt.Printf("== %s (%v) ==\n", xid, time.Since(start).Round(time.Millisecond))
		res.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	sf := addSourceFlags(fs)
	fs.Parse(args)

	wh, err := sf.open()
	if err != nil {
		return err
	}
	tables, err := wh.Tables()
	if err != nil {
		return err
	}
	for _, name := range tables {
		months, err := wh.Months(name)
		if err != nil {
			return err
		}
		shards, err := wh.DetectShards(name)
		if err != nil {
			return err
		}
		// Count rows block by block so inspecting a sharded out-of-core
		// warehouse never loads a whole month at once. With -degraded an
		// unreadable table is reported instead of aborting the walk.
		total, err := countRows(wh, name, months)
		if err != nil {
			if !*sf.degraded {
				return err
			}
			fmt.Printf("%-12s partitions=%d UNAVAILABLE (%v)\n", name, len(months), err)
			continue
		}
		if shards > 1 {
			fmt.Printf("%-12s partitions=%d rows=%d shards=%d\n", name, len(months), total, shards)
		} else {
			fmt.Printf("%-12s partitions=%d rows=%d\n", name, len(months), total)
		}
	}
	if elog, err := wh.EventLog(); err == nil {
		if seq := elog.LastSeq(); seq > 0 {
			pending := 0
			elog.Replay(0, func(_ uint64, _ string, t *table.Table) error {
				pending += t.NumRows()
				return nil
			})
			fmt.Printf("%-12s segments=%d pending_rows=%d (churnctl ingest -merge folds them in)\n", "events", seq, pending)
		}
	}
	return nil
}

// countRows streams a table's blocks and sums row counts.
func countRows(wh *store.Warehouse, name string, months []int) (int, error) {
	br, err := wh.OpenBlocks(name, months)
	if err != nil {
		return 0, err
	}
	total := 0
	for {
		b, err := br.Next()
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return 0, err
		}
		total += b.Table.NumRows()
	}
}

package main

import (
	"flag"
	"fmt"
	"os"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/insight"
	"telcochurn/internal/rootcause"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// cmdExplain runs the root-cause extension: trains the full-variety
// pipeline on a simulated world, explains the top predicted churners via
// decision-path attribution, prints the operator-level cause mix and the
// network-insight cell report.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	customers := fs.Int("customers", 3000, "customers per month")
	top := fs.Int("top", 8, "individual customers to detail")
	trees := fs.Int("trees", 150, "forest size")
	seed := fs.Int64("seed", 1, "seed")
	fs.Parse(args)

	cfg := synth.DefaultConfig()
	cfg.Customers = *customers
	cfg.Months = 5
	cfg.Seed = *seed
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)

	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(3, cfg.DaysPerMonth)}, core.Config{
		Groups: features.AllGroups(),
		Forest: tree.ForestConfig{NumTrees: *trees, MinLeafSamples: 25, Seed: *seed},
		Seed:   *seed,
	})
	if err != nil {
		return err
	}
	rf, ok := pipe.Classifier().(*core.RFClassifier)
	if !ok {
		return fmt.Errorf("explain: classifier is not a random forest")
	}
	explainer := rootcause.NewExplainer(rf.Forest())

	win := features.MonthWindow(4, cfg.DaysPerMonth)
	frame, err := pipe.BuildFrame(src, win, false, nil)
	if err != nil {
		return err
	}
	var preds []eval.Prediction
	rows := make(map[int64][]float64, frame.NumRows())
	for _, id := range frame.IDs() {
		row, _ := frame.Row(id)
		rows[id] = row
		preds = append(preds, eval.Prediction{ID: id, Score: rf.Forest().Score(row)})
	}
	eval.ByScoreDesc(preds)

	u := synth.ScaleU(50000, cfg.Customers)
	var explanations []*rootcause.Explanation
	for i := 0; i < u && i < len(preds); i++ {
		explanations = append(explanations, explainer.Explain(preds[i].ID, rows[preds[i].ID], 3))
	}

	fmt.Printf("top %d predicted churners (detailing %d):\n", u, *top)
	for i, e := range explanations {
		if i >= *top {
			break
		}
		fmt.Printf("  %s |", e)
		for _, c := range e.Top {
			fmt.Printf(" %s(%+.3f)", c.Feature, c.Score)
		}
		fmt.Println()
	}

	fmt.Println("\ncause mix across the target list:")
	share := rootcause.CauseShare(explanations)
	for _, c := range rootcause.RankedCauses(share) {
		fmt.Printf("  %-18s %5.1f%%\n", c, 100*share[c])
	}

	tbl, err := src.Tables(win)
	if err != nil {
		return err
	}
	report, err := insight.BuildNetworkReport(tbl, win, cfg.DaysPerMonth, core.LabelsOf(months[4].Truth))
	if err != nil {
		return err
	}
	fmt.Println()
	report.Render(os.Stdout, 8)
	return nil
}

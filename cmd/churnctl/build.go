package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/procstat"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
)

// cmdBuild runs the out-of-core wide-table build over a warehouse and
// reports throughput and peak memory — the scale smoke test's workhorse.
func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dir := fs.String("warehouse", "./warehouse", "warehouse directory")
	month := fs.Int("month", 0, "feature month (0 = latest customers partition)")
	groupsFlag := fs.String("groups", "default", "feature groups to build (default = F1-F6; F7-F9 need a fitted model)")
	workers := fs.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "shard count to build with (0 = detect from layout)")
	rssLimitMB := fs.Int("rss-limit-mb", 0, "fail if peak RSS exceeds this many MB (0 = no limit)")
	checksum := fs.Bool("checksum", false, "print a frame checksum (bit-exact across shard counts and workers)")
	fs.Parse(args)

	groups, err := parseGroups(*groupsFlag)
	if err != nil {
		return err
	}
	wh, err := store.Open(*dir)
	if err != nil {
		return err
	}
	if *month == 0 {
		months, err := wh.Months(synth.TableCustomers)
		if err != nil {
			return err
		}
		if len(months) == 0 {
			return fmt.Errorf("no customers partitions in %s", *dir)
		}
		*month = months[len(months)-1]
	}
	if *shards == 0 {
		if *shards, err = wh.DetectShards(synth.TableCustomers); err != nil {
			return err
		}
	}
	sw, err := wh.Sharded(*shards)
	if err != nil {
		return err
	}
	days := synth.DefaultConfig().DaysPerMonth
	src := core.NewShardedWarehouseSource(sw, days)
	win := features.MonthWindow(*month, days)
	p := core.NewFrameBuilder(core.Config{Groups: groups, Workers: *workers})

	start := time.Now()
	frame, stats, err := p.BuildFrameSharded(src, win)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("built month=%d customers=%d features=%d shards=%d raw_rows=%d in %v (%.0f raw rows/sec)\n",
		*month, frame.NumRows(), frame.NumColumns(), stats.Shards, stats.RawRows,
		elapsed.Round(time.Millisecond), float64(stats.RawRows)/elapsed.Seconds())
	peak, ok := procstat.PeakRSSBytes()
	if ok {
		fmt.Printf("peak_rss_mb=%d\n", peak/(1<<20))
	}
	if *checksum {
		fmt.Printf("frame_checksum=%016x\n", frameChecksum(frame))
	}
	if *rssLimitMB > 0 {
		if !ok {
			return fmt.Errorf("-rss-limit-mb set but peak RSS is unavailable on this OS")
		}
		if peak > int64(*rssLimitMB)<<20 {
			return fmt.Errorf("peak RSS %d MB exceeds limit %d MB", peak/(1<<20), *rssLimitMB)
		}
	}
	return nil
}

// frameChecksum digests ids, column names and every cell's exact bits, so
// two builds print the same checksum iff their frames are bit-identical.
func frameChecksum(f *features.Frame) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, name := range f.Names() {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	for _, id := range f.IDs() {
		writeU64(uint64(id))
		row, _ := f.Row(id)
		for _, v := range row {
			writeU64(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/procstat"
	"telcochurn/internal/synth"
)

// cmdBuild runs the out-of-core wide-table build over a warehouse and
// reports throughput and peak memory — the scale smoke test's workhorse.
func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	sf := addSourceFlags(fs)
	month := fs.Int("month", 0, "feature month (0 = latest customers partition)")
	groupsFlag := fs.String("groups", "default", "feature groups to build (default = F1-F6; F7-F9 need a fitted model)")
	rssLimitMB := fs.Int("rss-limit-mb", 0, "fail if peak RSS exceeds this many MB (0 = no limit)")
	checksum := fs.Bool("checksum", false, "print a frame checksum (bit-exact across shard counts and workers)")
	fs.Parse(args)

	groups, err := parseGroups(*groupsFlag)
	if err != nil {
		return err
	}
	src, wh, days, err := sf.source("build")
	if err != nil {
		return err
	}
	if *month == 0 {
		months, err := wh.Months(synth.TableCustomers)
		if err != nil {
			return err
		}
		if len(months) == 0 {
			return fmt.Errorf("no customers partitions in %s", *sf.dir)
		}
		*month = months[len(months)-1]
	}
	win := features.MonthWindow(*month, days)
	p := core.NewFrameBuilder(core.Config{Groups: groups, Workers: *sf.workers})

	start := time.Now()
	var frame *features.Frame
	var stats features.ShardStats
	if *sf.degraded {
		// The degraded assembler is whole-window: missing tables are imputed
		// around instead of failing the build.
		var deg features.Degradation
		frame, deg, err = p.BuildFrameDegraded(src, win)
		if err == nil {
			fmt.Fprintf(os.Stderr, "degraded groups: %s\n", deg)
		}
	} else {
		ss, _ := core.AsSharded(src)
		frame, stats, err = p.BuildFrameSharded(ss, win)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("built month=%d customers=%d features=%d shards=%d raw_rows=%d in %v (%.0f raw rows/sec)\n",
		*month, frame.NumRows(), frame.NumColumns(), stats.Shards, stats.RawRows,
		elapsed.Round(time.Millisecond), float64(stats.RawRows)/elapsed.Seconds())
	peak, ok := procstat.PeakRSSBytes()
	if ok {
		fmt.Printf("peak_rss_mb=%d\n", peak/(1<<20))
	}
	if *checksum {
		fmt.Printf("frame_checksum=%016x\n", frameChecksum(frame))
	}
	if *rssLimitMB > 0 {
		if !ok {
			return fmt.Errorf("-rss-limit-mb set but peak RSS is unavailable on this OS")
		}
		if peak > int64(*rssLimitMB)<<20 {
			return fmt.Errorf("peak RSS %d MB exceeds limit %d MB", peak/(1<<20), *rssLimitMB)
		}
	}
	return nil
}

// frameChecksum digests ids, column names and every cell's exact bits, so
// two builds print the same checksum iff their frames are bit-identical.
func frameChecksum(f *features.Frame) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, name := range f.Names() {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	for _, id := range f.IDs() {
		writeU64(uint64(id))
		row, _ := f.Row(id)
		for _, v := range row {
			writeU64(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

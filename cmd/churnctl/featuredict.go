package main

import (
	"flag"
	"fmt"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// cmdFeatures prints the wide-table feature dictionary — the repository's
// equivalent of the paper's Figure 4, extended with the group (F1..F9) of
// every column.
func cmdFeatures(args []string) error {
	fs := flag.NewFlagSet("features", flag.ExitOnError)
	customers := fs.Int("customers", 600, "customers in the throwaway world used to materialize the schema")
	fs.Parse(args)

	cfg := synth.DefaultConfig()
	cfg.Customers = *customers
	cfg.Months = 4
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)

	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, cfg.DaysPerMonth)}, core.Config{
		Groups: features.AllGroups(),
		Forest: tree.ForestConfig{NumTrees: 5, MinLeafSamples: 10, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		return err
	}
	frame, err := pipe.BuildFrame(src, features.MonthWindow(3, cfg.DaysPerMonth), false, nil)
	if err != nil {
		return err
	}
	names := frame.Names()
	groups := frame.Groups()
	counts := map[features.Group]int{}
	fmt.Printf("wide table: %d features\n\n", len(names))
	fmt.Println("  #  group  feature")
	for i, name := range names {
		fmt.Printf("%3d  %-5v  %s\n", i+1, groups[i], name)
		counts[groups[i]]++
	}
	fmt.Println()
	for _, g := range features.AllGroups() {
		fmt.Printf("%v: %d features\n", g, counts[g])
	}
	return nil
}

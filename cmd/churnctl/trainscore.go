package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/sampling"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// persistableGroups are the feature groups a saved model can be scored with:
// they need no fitted feature models (LDA/FM), only raw tables and truth
// labels, so a fresh process can rebuild identical frames.
var persistableGroups = []features.Group{
	features.F1Baseline, features.F2CS, features.F3PS,
	features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph,
}

func parseGroups(spec string) ([]features.Group, error) {
	if spec == "" || spec == "default" {
		return persistableGroups, nil
	}
	byName := map[string]features.Group{}
	for _, g := range persistableGroups {
		byName[strings.ToLower(g.String())] = g
	}
	var out []features.Group
	for _, tok := range strings.Split(spec, ",") {
		g, ok := byName[strings.ToLower(strings.TrimSpace(tok))]
		if !ok {
			return nil, fmt.Errorf("unknown or non-persistable group %q (have F1..F6)", tok)
		}
		out = append(out, g)
	}
	return out, nil
}

// cmdTrain fits the churn forest on a warehouse per Figure 6 and saves it.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dir := fs.String("warehouse", "./warehouse", "warehouse directory")
	out := fs.String("out", "churn-model.bin", "model output path")
	featureMonth := fs.Int("feature-month", 0, "newest training feature month (0 = auto: last-2)")
	volume := fs.Int("volume", 1, "training months to accumulate")
	trees := fs.Int("trees", 300, "forest size")
	minLeaf := fs.Int("minleaf", 25, "minimum samples per leaf")
	groupSpec := fs.String("groups", "default", "comma-separated feature groups (F1..F6)")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "parallelism for feature build and training (0 = all cores)")
	bins := fs.Int("bins", 0, "histogram bins for forest split search (0 = exact splits, max 255)")
	fs.Parse(args)

	groups, err := parseGroups(*groupSpec)
	if err != nil {
		return err
	}
	wh, err := store.Open(*dir)
	if err != nil {
		return err
	}
	monthsAvail, err := wh.Months(synth.TableTruth)
	if err != nil || len(monthsAvail) < 3 {
		return fmt.Errorf("train: warehouse needs >= 3 months of data (have %v)", monthsAvail)
	}
	days := synth.DefaultConfig().DaysPerMonth
	src := core.NewWarehouseSource(wh, days)

	newest := *featureMonth
	if newest == 0 {
		newest = monthsAvail[len(monthsAvail)-1] - 2
	}
	var specs []core.WindowSpec
	for m := newest - *volume + 1; m <= newest; m++ {
		specs = append(specs, core.MonthSpec(m, days))
	}

	pipe, err := core.Fit(src, specs, core.Config{
		Groups:    groups,
		Forest:    tree.ForestConfig{NumTrees: *trees, MinLeafSamples: *minLeaf, Seed: *seed, MaxBins: *bins},
		Imbalance: sampling.WeightedInstance,
		Seed:      *seed,
		Workers:   *workers,
	})
	if err != nil {
		return err
	}
	rf, ok := pipe.Classifier().(*core.RFClassifier)
	if !ok {
		return fmt.Errorf("train: classifier is not a forest")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := rf.Forest().WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("trained on feature months %d..%d (%d features, %d trees), wrote %s (%d bytes)\n",
		newest-*volume+1, newest, len(pipe.FeatureNames()), rf.Forest().NumTrees(), *out, n)
	return nil
}

// cmdScore loads a saved model and produces the ranked churner list for a
// warehouse month — the artifact the retention team receives.
func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	dir := fs.String("warehouse", "./warehouse", "warehouse directory")
	model := fs.String("model", "churn-model.bin", "model path")
	month := fs.Int("month", 0, "feature month to score (0 = latest)")
	top := fs.Int("top", 50, "list length")
	groupSpec := fs.String("groups", "default", "feature groups the model was trained with")
	fs.Parse(args)

	groups, err := parseGroups(*groupSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	forest, err := tree.ReadForest(f)
	f.Close()
	if err != nil {
		return err
	}

	wh, err := store.Open(*dir)
	if err != nil {
		return err
	}
	monthsAvail, err := wh.Months(synth.TableTruth)
	if err != nil || len(monthsAvail) == 0 {
		return fmt.Errorf("score: empty warehouse")
	}
	days := synth.DefaultConfig().DaysPerMonth
	src := core.NewWarehouseSource(wh, days)
	m := *month
	if m == 0 {
		m = monthsAvail[len(monthsAvail)-1]
	}

	builder := core.NewFrameBuilder(core.Config{Groups: groups})
	frame, err := builder.BuildFrame(src, features.MonthWindow(m, days), false, nil)
	if err != nil {
		return err
	}
	// The frame must line up with the model's training schema.
	names := frame.Names()
	want := forest.FeatureNames()
	if len(names) != len(want) {
		return fmt.Errorf("score: frame has %d features, model wants %d (check -groups)", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			return fmt.Errorf("score: feature %d is %q, model wants %q", i, names[i], want[i])
		}
	}

	var preds []eval.Prediction
	for _, id := range frame.IDs() {
		row, _ := frame.Row(id)
		preds = append(preds, eval.Prediction{ID: id, Score: forest.Score(row)})
	}
	eval.ByScoreDesc(preds)
	if *top > len(preds) {
		*top = len(preds)
	}
	fmt.Printf("rank,imsi,score\n")
	for i := 0; i < *top; i++ {
		fmt.Printf("%d,%d,%.6f\n", i+1, preds[i].ID, preds[i].Score)
	}
	return nil
}

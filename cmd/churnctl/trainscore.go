package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/experiments"
	"telcochurn/internal/features"
	"telcochurn/internal/sampling"
	"telcochurn/internal/synth"
)

// defaultGroups is what -groups=default trains with: the raw-table groups,
// cheap to build and the historical default. The artifact persists fitted
// feature models too, so any of F1..F9 (or "all") may be requested.
var defaultGroups = []features.Group{
	features.F1Baseline, features.F2CS, features.F3PS,
	features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph,
}

func parseGroups(spec string) ([]features.Group, error) {
	switch spec {
	case "", "default":
		return defaultGroups, nil
	case "all":
		return features.AllGroups(), nil
	}
	byName := map[string]features.Group{}
	for _, g := range features.AllGroups() {
		byName[strings.ToLower(g.String())] = g
	}
	var out []features.Group
	for _, tok := range strings.Split(spec, ",") {
		g, ok := byName[strings.ToLower(strings.TrimSpace(tok))]
		if !ok {
			return nil, fmt.Errorf("unknown group %q (have F1..F9, default, all)", tok)
		}
		out = append(out, g)
	}
	return out, nil
}

// cmdTrain fits the full pipeline on a warehouse per Figure 6 and saves a
// versioned artifact: config, schema, fitted feature models, classifier.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	sf := addSourceFlags(fs)
	out := fs.String("out", "churn-model.tcpa", "artifact output path")
	featureMonth := fs.Int("feature-month", 0, "newest training feature month (0 = auto: last-2)")
	volume := fs.Int("volume", 1, "training months to accumulate")
	trees := fs.Int("trees", 300, "forest size")
	minLeaf := fs.Int("minleaf", 25, "minimum samples per leaf")
	groupSpec := fs.String("groups", "default", "comma-separated feature groups (F1..F9, default, all)")
	seed := fs.Int64("seed", 1, "seed")
	bins := fs.Int("bins", 0, "histogram bins for forest split search (0 = exact splits, max 255)")
	precompute := fs.Bool("precompute", false, "embed the latest month's feature vectors in the artifact (serve without a warehouse)")
	fs.Parse(args)

	if *sf.degraded {
		fmt.Fprintln(os.Stderr, "train: -degraded has no effect here — training needs healthy raw tables (labels cannot be imputed)")
	}
	groups, err := parseGroups(*groupSpec)
	if err != nil {
		return err
	}
	src, wh, days, err := sf.source("train")
	if err != nil {
		return err
	}
	monthsAvail, err := wh.Months(synth.TableTruth)
	if err != nil || len(monthsAvail) == 0 {
		return fmt.Errorf("empty warehouse %s (run churnctl generate)", *sf.dir)
	}
	if len(monthsAvail) < 3 {
		return fmt.Errorf("train: warehouse needs >= 3 months of data (have %v)", monthsAvail)
	}

	newest := *featureMonth
	if newest == 0 {
		newest = monthsAvail[len(monthsAvail)-1] - 2
	}
	var specs []core.WindowSpec
	for m := newest - *volume + 1; m <= newest; m++ {
		specs = append(specs, core.MonthSpec(m, days))
	}

	// The knob-to-config mapping is the experiments package's, so CLI
	// training and experiment runs agree on every derived setting.
	cfg := experiments.Options{
		Trees: *trees, MinLeaf: *minLeaf, Seed: *seed,
		Workers: *sf.workers, Bins: *bins,
	}.CoreConfig()
	cfg.Groups = groups
	cfg.Imbalance = sampling.WeightedInstance

	pipe, err := core.Fit(src, specs, cfg)
	if err != nil {
		return err
	}
	if *precompute {
		// The snapshot serves the same month scoring would pick by default:
		// the latest customer snapshot, not the label-lagged training month.
		custMonths, err := wh.Months(synth.TableCustomers)
		if err != nil || len(custMonths) == 0 {
			return fmt.Errorf("precompute: no customer snapshots in %s", *sf.dir)
		}
		serveMonth := custMonths[len(custMonths)-1]
		if err := pipe.Precompute(src, features.MonthWindow(serveMonth, days), serveMonth); err != nil {
			return fmt.Errorf("precompute month %d: %w", serveMonth, err)
		}
		fmt.Printf("precomputed %d serving vectors for month %d\n", pipe.Vectors().NumRows(), serveMonth)
	}
	if err := pipe.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("trained %s on feature months %d..%d (%d features), wrote %s (schema %08x)\n",
		pipe.Classifier().Name(), newest-*volume+1, newest,
		len(pipe.FeatureNames()), *out, pipe.SchemaChecksum())
	return nil
}

// cmdScore loads a saved artifact and produces the ranked churner list for
// a warehouse month — the list the retention team receives. The same
// artifact served by churnd yields bit-identical scores. Reads retry with
// backoff; with -degraded, tables that stay unavailable are imputed around
// and the degradation mask is reported on stderr (the CSV stays on stdout).
func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	sf := addSourceFlags(fs)
	model := fs.String("model", "churn-model.tcpa", "artifact path")
	month := fs.Int("month", 0, "feature month to score (0 = latest)")
	top := fs.Int("top", 50, "list length (0 = every customer)")
	full := fs.Bool("full", false, "print scores at full precision (exact parity with churnd)")
	fs.Parse(args)

	pipe, err := core.LoadFile(*model)
	if err != nil {
		return err
	}
	pipe.SetWorkers(*sf.workers)
	vecs := pipe.Vectors()

	// The warehouse is optional when the artifact carries a precomputed
	// snapshot, so open it tolerantly and remember why it is unusable.
	var monthsAvail []int
	src, wh, days, whErr := sf.source("score")
	if whErr == nil {
		// Scoring needs no labels, so the customer snapshot — the one table
		// degraded mode cannot impute — anchors month discovery.
		monthsAvail, whErr = wh.Months(synth.TableCustomers)
		if whErr == nil && len(monthsAvail) == 0 {
			whErr = fmt.Errorf("empty warehouse %s (run churnctl generate)", *sf.dir)
		}
	}
	m := *month
	if m == 0 {
		switch {
		case whErr == nil:
			m = monthsAvail[len(monthsAvail)-1]
		case vecs != nil:
			m = vecs.Month()
		default:
			return whErr
		}
	}

	var res *core.Predictions
	if vecs != nil && vecs.Month() == m && !*sf.degraded {
		// The snapshot holds the strict frame rows for this month, so
		// scoring it skips the warehouse entirely and stays bit-identical
		// to the frame path (and to churnd over the same artifact).
		res, err = pipe.PredictVectors()
	} else {
		if whErr != nil {
			return whErr
		}
		// Always the whole-window build: it is the path precompute, churnd
		// and the parity contract are anchored on. The sharded build
		// (churnctl build, PredictSharded) is bit-stable across shard
		// counts but canonicalizes graph features differently, so scoring
		// through it would break serving parity for F4-F6.
		win := features.MonthWindow(m, days)
		if *sf.degraded {
			res, err = pipe.PredictDegraded(src, win)
		} else {
			res, err = pipe.Predict(src, win)
		}
	}
	if err != nil {
		return err
	}
	if *sf.degraded {
		fmt.Fprintf(os.Stderr, "degraded groups: %s\n", res.Degraded)
	}
	preds := make([]eval.Prediction, len(res.IDs))
	for i, id := range res.IDs {
		preds[i] = eval.Prediction{ID: id, Score: res.Scores[i]}
	}
	eval.ByScoreDesc(preds)
	n := *top
	if n == 0 || n > len(preds) {
		n = len(preds)
	}
	fmt.Printf("rank,imsi,score\n")
	for i := 0; i < n; i++ {
		if *full {
			fmt.Printf("%d,%d,%s\n", i+1, preds[i].ID, strconv.FormatFloat(preds[i].Score, 'g', -1, 64))
		} else {
			fmt.Printf("%d,%d,%.6f\n", i+1, preds[i].ID, preds[i].Score)
		}
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"

	"telcochurn/internal/serve"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// cmdIngest is the batch loader for the streaming path: it appends raw
// BSS/OSS event rows to a warehouse's durable event log (or POSTs them to
// a running churnd), and with -merge folds the log into the monthly
// partitions so the batch pipeline sees the same rows. A churnd serving
// the same warehouse picks up directly-appended events at its next fold
// (ingest, refresh or restart).
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	sf := addSourceFlags(fs)
	eventsPath := fs.String("events", "", `JSON events file in the POST /v1/events shape ("-" = stdin)`)
	synthN := fs.Int("synth", 0, "generate N synthetic events instead of reading -events")
	month := fs.Int("month", 0, "month for -synth events (0 = latest customers partition)")
	seed := fs.Int64("seed", 1, "seed for -synth events")
	addr := fs.String("addr", "", "POST the batch to a running churnd (http://host:port) instead of appending to the log")
	merge := fs.Bool("merge", false, "fold the event log into the monthly partitions after appending")
	fs.Parse(args)

	if *eventsPath != "" && *synthN > 0 {
		return fmt.Errorf("ingest: -events and -synth are mutually exclusive")
	}
	if *eventsPath == "" && *synthN == 0 && !*merge {
		return fmt.Errorf("ingest: nothing to do (need -events, -synth or -merge)")
	}

	// Assemble the batch: decoded from JSON, or synthesized against the
	// serving universe.
	var batch serve.EventBatch
	switch {
	case *eventsPath != "":
		r := io.Reader(os.Stdin)
		if *eventsPath != "-" {
			f, err := os.Open(*eventsPath)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		if err := json.NewDecoder(r).Decode(&batch); err != nil {
			return fmt.Errorf("ingest: decode %s: %w", *eventsPath, err)
		}
	case *synthN > 0:
		ids, m, days, err := ingestUniverse(sf, *addr, *month)
		if err != nil {
			return err
		}
		tables := synth.GenerateEvents(ids, m, days, *synthN, *seed)
		batch.Events, err = eventsFromTables(tables)
		if err != nil {
			return err
		}
	}

	if len(batch.Events) > 0 {
		if *addr != "" {
			if err := postEvents(*addr, batch); err != nil {
				return err
			}
		} else {
			tables, err := serve.BuildEventTables(batch.Events)
			if err != nil {
				return err
			}
			wh, err := sf.open()
			if err != nil {
				return err
			}
			elog, err := wh.EventLog()
			if err != nil {
				return err
			}
			seq, err := elog.Append(tables)
			if err != nil {
				return err
			}
			fmt.Printf("appended %d events to %s at seq %d\n", len(batch.Events), elog.Dir(), seq)
		}
	}

	if *merge {
		if *addr != "" {
			return fmt.Errorf("ingest: -merge works on the warehouse directly, not over -addr")
		}
		wh, err := sf.open()
		if err != nil {
			return err
		}
		elog, err := wh.EventLog()
		if err != nil {
			return err
		}
		n, err := elog.MergeInto()
		if err != nil {
			return err
		}
		fmt.Printf("merged %d logged event rows into monthly partitions\n", n)
	}
	return nil
}

// ingestUniverse resolves the customers and month to synthesize events
// for: from the running churnd when -addr is set, from the warehouse's
// latest customers partition otherwise.
func ingestUniverse(sf *sourceFlags, addr string, month int) (ids []int64, m, days int, err error) {
	days = synth.DefaultConfig().DaysPerMonth
	if addr != "" {
		resp, err := http.Get(addr + "/v1/customers?limit=1024")
		if err != nil {
			return nil, 0, 0, err
		}
		defer resp.Body.Close()
		var body struct {
			Month int     `json:"month"`
			IDs   []int64 `json:"ids"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
			return nil, 0, 0, fmt.Errorf("ingest: %s/v1/customers: status %d, %v", addr, resp.StatusCode, err)
		}
		if month == 0 {
			month = body.Month
		}
		return body.IDs, month, days, nil
	}
	wh, err := sf.open()
	if err != nil {
		return nil, 0, 0, err
	}
	months, err := wh.Months(synth.TableCustomers)
	if err != nil || len(months) == 0 {
		return nil, 0, 0, fmt.Errorf("ingest: no customers partitions in %s (run churnctl generate)", *sf.dir)
	}
	if month == 0 {
		month = months[len(months)-1]
	}
	cust, err := wh.ReadMonths(synth.TableCustomers, []int{month})
	if err != nil {
		return nil, 0, 0, err
	}
	return cust.MustCol("imsi").Ints, month, days, nil
}

// eventsFromTables flattens typed event tables back into wire records, in
// table-name order — the inverse of serve.BuildEventTables, used so the
// synthetic generator can feed both the direct-append and HTTP paths.
func eventsFromTables(tables map[string]*table.Table) ([]serve.Event, error) {
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []serve.Event
	for _, name := range names {
		t := tables[name]
		imsi := t.MustCol("imsi").Ints
		month := t.MustCol("month").Ints
		day := t.MustCol("day").Ints
		for i := 0; i < t.NumRows(); i++ {
			ev := serve.Event{Table: name, IMSI: imsi[i], Month: month[i], Day: day[i], Fields: map[string]any{}}
			for _, f := range t.Schema.Fields {
				switch f.Name {
				case "imsi", "month", "day":
					continue
				}
				col := t.MustCol(f.Name)
				switch f.Type {
				case table.Int64:
					ev.Fields[f.Name] = col.Ints[i]
				case table.Float64:
					ev.Fields[f.Name] = col.Floats[i]
				default:
					ev.Fields[f.Name] = col.Strings[i]
				}
			}
			out = append(out, ev)
		}
	}
	return out, nil
}

// postEvents ships the batch to a running churnd and prints its response.
func postEvents(addr string, batch serve.EventBatch) error {
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: %s/v1/events: status %d: %s", addr, resp.StatusCode, buf.String())
	}
	var er struct {
		Seq      uint64 `json:"seq"`
		Applied  int    `json:"applied"`
		Affected int    `json:"affected"`
		Month    int    `json:"month"`
	}
	json.Unmarshal(buf.Bytes(), &er)
	fmt.Printf("ingested %d events via %s: seq %d, %d applied to month %d, %d customers refreshed\n",
		len(batch.Events), addr, er.Seq, er.Applied, er.Month, er.Affected)
	return nil
}

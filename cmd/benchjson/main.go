// Command benchjson runs the repo's Go benchmarks and emits a
// machine-readable JSON report (ns/op, B/op, allocs/op per benchmark), so CI
// and PRs can diff performance numbers without scraping `go test` text:
//
//	benchjson -bench 'BenchmarkTable.*' -benchtime 2s -out BENCH.json
//
// It shells out to `go test -run ^$ -bench ... -benchmem` in the target
// package and parses the standard benchmark output format.
//
// It also gates regressions between two of its own reports:
//
//	benchjson -compare -tolerance 1.5x old.json new.json
//
// which exits non-zero if any benchmark present in the baseline is missing
// from the new report or slowed past baseline x tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Custom b.ReportMetric units (e.g. the serve
// benchmarks' p50-ns/req) land in Extra keyed by their unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"package,omitempty"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "per-benchmark time passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output JSON file (default stdout)")
	compareMode := flag.Bool("compare", false, "compare two reports (old.json new.json) instead of running benchmarks")
	tolerance := flag.String("tolerance", "1.5x", "allowed ns/op slowdown factor in -compare mode (e.g. 1.5 or 1.5x)")
	gateAllocs := flag.String("gate-allocs", "", "in -compare mode, fail benchmarks matching this regex whose allocs/op exceed the baseline")
	flag.Parse()

	if *compareMode {
		if err := compare(flag.Args(), *tolerance, *gateAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	report, err := run(*bench, *benchtime, *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
}

// compare loads a baseline and a fresh report and fails on regressions:
// every baseline benchmark must still exist, and none may exceed
// baseline ns/op x tolerance. New benchmarks absent from the baseline warn
// but pass — they gate once the baseline is refreshed, and the warning is
// the reminder to refresh it. With -gate-allocs, benchmarks matching the
// regex additionally fail when allocs/op exceed the baseline (timing has
// runner noise; allocation counts are deterministic, so they gate exactly).
func compare(paths []string, tolerance, gateAllocs string) error {
	if len(paths) != 2 {
		return fmt.Errorf("-compare needs exactly two arguments: old.json new.json")
	}
	tol, err := strconv.ParseFloat(strings.TrimSuffix(tolerance, "x"), 64)
	if err != nil || tol <= 0 {
		return fmt.Errorf("bad -tolerance %q (want e.g. 1.5 or 1.5x)", tolerance)
	}
	var allocRe *regexp.Regexp
	if gateAllocs != "" {
		if allocRe, err = regexp.Compile(gateAllocs); err != nil {
			return fmt.Errorf("bad -gate-allocs %q: %w", gateAllocs, err)
		}
	}
	load := func(path string) (map[string]Result, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep Report
		if err := json.Unmarshal(buf, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out := make(map[string]Result, len(rep.Benchmarks))
		for _, r := range rep.Benchmarks {
			out[r.Name] = r
		}
		return out, nil
	}
	oldRes, err := load(paths[0])
	if err != nil {
		return err
	}
	newRes, err := load(paths[1])
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		base := oldRes[name]
		cur, ok := newRes[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from new report", name))
			continue
		}
		limit := base.NsPerOp * tol
		verdict := "ok"
		if cur.NsPerOp > limit {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (limit %.0f at %gx)",
				name, cur.NsPerOp, base.NsPerOp, limit, tol))
		}
		if allocRe != nil && allocRe.MatchString(name) && cur.AllocsPerOp > base.AllocsPerOp {
			verdict = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d",
				name, cur.AllocsPerOp, base.AllocsPerOp))
		}
		fmt.Printf("%-60s %12.0f -> %12.0f ns/op (%+.1f%%) %s\n",
			name, base.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp-base.NsPerOp)/base.NsPerOp, verdict)
	}
	var fresh []string
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Printf("warning: %s missing from baseline — passes ungated until the baseline is refreshed\n", name)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %gx:\n  %s",
			len(failures), tol, strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchjson: %d benchmarks within %gx of baseline\n", len(names), tol)
	return nil
}

func run(bench, benchtime, pkg string) (*Report, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	report := &Report{Package: pkg, Bench: bench, Benchtime: benchtime}
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the human-readable stream visible
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q", bench)
	}
	return report, nil
}

// parseLine parses one standard benchmark result line, e.g.
//
//	BenchmarkTableGroupBy  26955  89036 ns/op  86456 B/op  47 allocs/op
//
// Unit-bearing fields beyond the three standard ones are collected as Extra.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}

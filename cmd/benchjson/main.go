// Command benchjson runs the repo's Go benchmarks and emits a
// machine-readable JSON report (ns/op, B/op, allocs/op per benchmark), so CI
// and PRs can diff performance numbers without scraping `go test` text:
//
//	benchjson -bench 'BenchmarkTable.*' -benchtime 2s -out BENCH.json
//
// It shells out to `go test -run ^$ -bench ... -benchmem` in the target
// package and parses the standard benchmark output format.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark line. Custom b.ReportMetric units (e.g. the serve
// benchmarks' p50-ns/req) land in Extra keyed by their unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"package,omitempty"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "per-benchmark time passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()

	report, err := run(*bench, *benchtime, *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
}

func run(bench, benchtime, pkg string) (*Report, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	report := &Report{Package: pkg, Bench: bench, Benchtime: benchtime}
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the human-readable stream visible
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q", bench)
	}
	return report, nil
}

// parseLine parses one standard benchmark result line, e.g.
//
//	BenchmarkTableGroupBy  26955  89036 ns/op  86456 B/op  47 allocs/op
//
// Unit-bearing fields beyond the three standard ones are collected as Extra.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}

// Command netproxy runs the deterministic seeded TCP fault proxy from
// internal/faults in front of an upstream address — the network half of the
// chaos harness:
//
//	netproxy -listen 127.0.0.1:18080 -upstream 127.0.0.1:8080 \
//	  -seed 42 -reset 0.05 -read-latency 20ms -stall 0.02 -stall-duration 500ms
//
// Every fault decision is a pure function of (seed, site, connection index,
// attempt), so rerunning the same client sequence against the same seed
// reproduces the same resets at the same byte offsets. scripts/chaos_net.sh
// places churnd behind it and drives churnload through it; the fired-fault
// counters print to stderr on SIGINT/SIGTERM so the harness can assert the
// faults actually happened.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"telcochurn/internal/faults"
)

func main() {
	fs := flag.NewFlagSet("netproxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:18080", "address to accept client connections on")
	upstream := fs.String("upstream", "127.0.0.1:8080", "address to forward to")
	seed := fs.Int64("seed", 1, "fault-schedule seed")
	site := fs.String("site", "netproxy", "site name in the decision key")
	reset := fs.Float64("reset", 0, "per-connection reset probability")
	resetWindow := fs.Int("reset-window", 8<<10, "byte window for reset/stall offsets")
	stall := fs.Float64("stall", 0, "per-connection mid-stream stall probability")
	stallDur := fs.Duration("stall-duration", 500*time.Millisecond, "duration of a firing stall")
	acceptLat := fs.Duration("accept-latency", 0, "max delay between accept and upstream dial")
	readLat := fs.Duration("read-latency", 0, "max per-chunk client→upstream delay")
	writeLat := fs.Duration("write-latency", 0, "max per-chunk upstream→client delay")
	partial := fs.Float64("partial", 0, "per-chunk partial-write probability")
	bandwidth := fs.Int("bandwidth", 0, "per-direction bytes/sec cap (0 = unlimited)")
	fs.Parse(os.Args[1:])

	p, err := faults.NewProxy(*listen, *upstream, faults.NetConfig{
		Seed:          *seed,
		Site:          *site,
		Reset:         *reset,
		ResetWindow:   *resetWindow,
		Stall:         *stall,
		StallDuration: *stallDur,
		AcceptLatency: *acceptLat,
		ReadLatency:   *readLat,
		WriteLatency:  *writeLat,
		PartialWrite:  *partial,
		Bandwidth:     *bandwidth,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "netproxy: %s -> %s (seed=%d site=%s)\n", p.Addr(), *upstream, *seed, *site)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	p.Close()
	c := p.Counts()
	fmt.Fprintf(os.Stderr,
		"netproxy: conns=%d resets=%d stalls=%d partials=%d delays=%d bytes_in=%d bytes_out=%d\n",
		c.Conns, c.Resets, c.Stalls, c.Partials, c.Delays, c.BytesIn, c.BytesOut)
}

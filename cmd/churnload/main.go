// Command churnload is an open-loop load generator for churnd — the harness
// behind the serving-latency numbers in DESIGN.md §13:
//
//	churnd -artifact churn-model.tcpa -warehouse ./warehouse &
//	churnload -addr http://127.0.0.1:8080 -rps 500 -duration 10s -out LOAD.json
//
// Open loop means requests fire on a fixed schedule (one every 1/rps) no
// matter how slowly the server answers, and each latency is measured from
// the request's *scheduled* send time. A server that stalls therefore shows
// the stall in every queued request's latency instead of silently slowing
// the generator down — the coordinated-omission mistake closed-loop tools
// make.
//
// Target ids come from churnd's GET /v1/customers unless -ids pins them.
// Latencies land in the same log-2 histogram churnd's /metrics uses; the
// report is a benchjson-compatible JSON document, so two runs diff with:
//
//	benchjson -compare -tolerance 1.5x LOAD_BASE.json LOAD.json
//
// With -max-p99 and/or -max-non2xx the run self-gates (non-zero exit on
// violation), which is how CI's loadtest job turns a 10-second run into a
// latency regression guard.
//
// -ingest-mix F turns the run into a mixed read/write workload: fraction F
// of the scheduled requests POST a one-event recharge batch to /v1/events
// instead of scoring, on the same open-loop schedule. Writes share the
// histogram and the non-2xx budget, so the existing gates also bound the
// latency cost of ingest-while-scoring.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"telcochurn/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("churnload", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "churnd base URL (scheme optional)")
	rps := fs.Float64("rps", 200, "target request rate (open loop)")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	conns := fs.Int("conns", 16, "concurrent senders (also the connection-pool size)")
	batch := fs.Int("batch", 1, "ids per request (1 = single-score path)")
	idSpec := fs.String("ids", "", "comma-separated target ids (default: discover via /v1/customers)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request timeout")
	out := fs.String("out", "", "benchjson-compatible report path (default stdout)")
	name := fs.String("name", "BenchmarkChurnload", "benchmark name in the report")
	seed := fs.Int64("seed", 1, "target-selection seed")
	ingestMix := fs.Float64("ingest-mix", 0, "fraction of requests that POST a one-event batch to /v1/events (0 = read-only)")
	maxP99 := fs.Duration("max-p99", 0, "fail when p99 exceeds this (0 = no gate)")
	maxNon2xx := fs.Float64("max-non2xx", -1, "fail when the non-2xx fraction exceeds this (-1 = no gate)")
	fs.Parse(os.Args[1:])

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	if *rps <= 0 || *duration <= 0 || *conns <= 0 || *batch <= 0 {
		fatal("rps, duration, conns and batch must all be positive")
	}
	if *ingestMix < 0 || *ingestMix > 1 {
		fatal("-ingest-mix must be in [0, 1]")
	}
	ids, month, err := targetIDs(base, *idSpec, *timeout)
	if err != nil {
		fatal(err)
	}
	if *ingestMix > 0 && month == 0 {
		// Pinned -ids skip discovery, but events need the serving month.
		if _, month, err = discoverCustomers(base, *timeout); err != nil {
			fatal(err)
		}
	}

	r := newRun(base, ids, *conns, *batch, *timeout, *seed)
	r.mix = *ingestMix
	r.month = month
	total := int64(*rps * duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / *rps)
	elapsed := r.fire(total, interval)

	rep := r.report(*name, *rps, *batch, *ingestMix, total, elapsed, *duration)
	buf, _ := json.MarshalIndent(rep, "", "  ")
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	r.summarize(os.Stderr, total, elapsed)

	if bad := r.gate(*maxP99, *maxNon2xx, total); bad != "" {
		fatal("gate failed: " + bad)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "churnload:", v)
	os.Exit(1)
}

// targetIDs resolves the id pool: an explicit -ids list (month reported as
// 0 — unknown), or discovery against the server's /v1/customers endpoint.
func targetIDs(base, spec string, timeout time.Duration) ([]int64, int, error) {
	if spec != "" {
		var ids []int64
		for _, tok := range strings.Split(spec, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("bad id %q in -ids", tok)
			}
			ids = append(ids, id)
		}
		return ids, 0, nil
	}
	return discoverCustomers(base, timeout)
}

// discoverCustomers fetches the serving universe — ids and month — from
// churnd's GET /v1/customers.
func discoverCustomers(base string, timeout time.Duration) ([]int64, int, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/v1/customers")
	if err != nil {
		return nil, 0, fmt.Errorf("discover targets: %w (is churnd up? or pass -ids)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("discover targets: %s from %s/v1/customers", resp.Status, base)
	}
	var body struct {
		Month int     `json:"month"`
		IDs   []int64 `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, fmt.Errorf("discover targets: %w", err)
	}
	if len(body.IDs) == 0 {
		return nil, 0, fmt.Errorf("server reports no scorable customers")
	}
	return body.IDs, body.Month, nil
}

// run holds the shared state of one load run.
type run struct {
	url       string
	eventsURL string
	ids       []int64
	conns     int
	batch     int
	seed      int64
	mix       float64 // fraction of requests that are event writes
	month     int     // serving month events land in (when mix > 0)
	client    *http.Client

	latency serve.Histogram // ns from scheduled send to response fully read
	ok      atomic.Int64    // 2xx responses
	non2xx  atomic.Int64    // responses with any other status
	errs    atomic.Int64    // transport-level failures (timeout, refused)
	late    atomic.Int64    // requests that started >= 1 interval behind schedule
	writes  atomic.Int64    // requests that were event posts, not scores
}

func newRun(base string, ids []int64, conns, batch int, timeout time.Duration, seed int64) *run {
	return &run{
		url:       base + "/v1/score",
		eventsURL: base + "/v1/events",
		ids:       ids,
		conns:     conns,
		batch:     batch,
		seed:      seed,
		client: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        conns * 2,
				MaxIdleConnsPerHost: conns * 2,
			},
		},
	}
}

// fire sends `total` requests on the open-loop schedule: request k is due at
// start + k*interval, and worker w owns every k ≡ w (mod conns). A worker
// that falls behind does not re-space its schedule — it fires late and the
// lateness lands in the latency measurement. Returns wall time for the run.
func (r *run) fire(total int64, interval time.Duration) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < r.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.seed + int64(w)))
			body := make([]byte, 0, 64)
			for k := int64(w); k < total; k += int64(r.conns) {
				sched := start.Add(time.Duration(k) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				} else if -d >= interval {
					r.late.Add(1)
				}
				r.one(rng, body[:0], sched)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// one sends a single request — a score, or (with probability mix) a
// one-event ingest — and records its outcome. Latency runs from the
// scheduled send time through draining the response body.
func (r *run) one(rng *rand.Rand, body []byte, sched time.Time) {
	url := r.url
	if r.mix > 0 && rng.Float64() < r.mix {
		url = r.eventsURL
		body = r.eventBody(rng, body)
		r.writes.Add(1)
	} else if r.batch == 1 {
		body = append(body, `{"id":`...)
		body = strconv.AppendInt(body, r.ids[rng.Intn(len(r.ids))], 10)
		body = append(body, '}')
	} else {
		body = append(body, `{"ids":[`...)
		for i := 0; i < r.batch; i++ {
			if i > 0 {
				body = append(body, ',')
			}
			body = strconv.AppendInt(body, r.ids[rng.Intn(len(r.ids))], 10)
		}
		body = append(body, `]}`...)
	}
	resp, err := r.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		r.errs.Add(1)
		r.latency.Observe(uint64(time.Since(sched)))
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	r.latency.Observe(uint64(time.Since(sched)))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		r.ok.Add(1)
	} else {
		r.non2xx.Add(1)
	}
}

// eventBody renders a one-event recharge batch for the write side of the
// mix: a random target tops up a random amount on a random day of the
// serving month. Recharges are the cheapest streamable table and always
// move F1's recharge aggregates, so every write forces real invalidation.
func (r *run) eventBody(rng *rand.Rand, body []byte) []byte {
	body = append(body, `{"events":[{"table":"recharges","imsi":`...)
	body = strconv.AppendInt(body, r.ids[rng.Intn(len(r.ids))], 10)
	body = append(body, `,"month":`...)
	body = strconv.AppendInt(body, int64(r.month), 10)
	body = append(body, `,"day":`...)
	body = strconv.AppendInt(body, int64(rng.Intn(28)+1), 10)
	body = append(body, `,"fields":{"amount":`...)
	body = strconv.AppendFloat(body, 5+rng.Float64()*95, 'f', 2, 64)
	body = append(body, `}}]}`...)
	return body
}

// report renders the run in benchjson's document shape, so a saved run
// works as a `benchjson -compare` baseline for later runs.
func (r *run) report(name string, rps float64, batch int, mix float64, total int64, elapsed, want time.Duration) map[string]any {
	full := fmt.Sprintf("%s/rps=%g/batch=%d", name, rps, batch)
	if mix > 0 {
		full += fmt.Sprintf("/mix=%g", mix)
	}
	mean := 0.0
	if snap := r.latency.Snapshot(); snap["count"].(uint64) > 0 {
		mean = snap["mean"].(float64)
	}
	bench := map[string]any{
		"name":          full,
		"iterations":    total,
		"ns_per_op":     mean,
		"bytes_per_op":  0,
		"allocs_per_op": 0,
		"extra": map[string]float64{
			"p50-ns":       r.latency.Quantile(0.50),
			"p95-ns":       r.latency.Quantile(0.95),
			"p99-ns":       r.latency.Quantile(0.99),
			"achieved-rps": float64(total) / elapsed.Seconds(),
			"non2xx":       float64(r.non2xx.Load()),
			"errors":       float64(r.errs.Load()),
			"late":         float64(r.late.Load()),
			"writes":       float64(r.writes.Load()),
		},
	}
	return map[string]any{
		"package":    "cmd/churnload",
		"bench":      full,
		"benchtime":  want.String(),
		"benchmarks": []any{bench},
	}
}

// summarize prints the human-readable digest on stderr (the JSON report owns
// stdout).
func (r *run) summarize(w io.Writer, total int64, elapsed time.Duration) {
	fmt.Fprintf(w, "churnload: %d requests in %v (%.1f req/s achieved)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Fprintf(w, "churnload: latency p50 %v  p95 %v  p99 %v\n",
		time.Duration(r.latency.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(r.latency.Quantile(0.95)).Round(time.Microsecond),
		time.Duration(r.latency.Quantile(0.99)).Round(time.Microsecond))
	fmt.Fprintf(w, "churnload: 2xx %d  non-2xx %d  transport errors %d  late sends %d\n",
		r.ok.Load(), r.non2xx.Load(), r.errs.Load(), r.late.Load())
	if n := r.writes.Load(); n > 0 {
		fmt.Fprintf(w, "churnload: %d event posts (month %d) interleaved with the scores\n", n, r.month)
	}
}

// gate applies the self-check thresholds; a non-empty return is the failure
// message.
func (r *run) gate(maxP99 time.Duration, maxNon2xx float64, total int64) string {
	if maxP99 > 0 {
		if p99 := time.Duration(r.latency.Quantile(0.99)); p99 > maxP99 {
			return fmt.Sprintf("p99 %v exceeds -max-p99 %v", p99.Round(time.Microsecond), maxP99)
		}
	}
	if maxNon2xx >= 0 {
		// Transport errors count against the non-2xx budget: a connection
		// the server dropped is worse than a clean 503.
		bad := float64(r.non2xx.Load()+r.errs.Load()) / float64(total)
		if bad > maxNon2xx {
			return fmt.Sprintf("non-2xx fraction %.4f exceeds -max-non2xx %.4f", bad, maxNon2xx)
		}
	}
	return ""
}

// Volume study: Figure 7 at example scale — how much does accumulating more
// months of labeled training data improve churn prediction, and where do
// returns diminish?
//
//	go run ./examples/volume_study
package main

import (
	"log"
	"os"

	"telcochurn/internal/experiments"
)

func main() {
	res, err := experiments.Fig7Volume(experiments.Options{
		Customers: 2500,
		Trees:     100,
		Repeats:   1,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)
}

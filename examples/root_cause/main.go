// Root cause: the paper's stated extension (Section 6) — decompose each
// predicted churner's score into actionable cause categories (network
// quality, price, social contagion, competitor pull, disengagement) via
// decision-path attribution over the deployed random forest, and print the
// operator-level cause mix plus the network-insight report that closes the
// loop with network optimization.
//
//	go run ./examples/root_cause
package main

import (
	"fmt"
	"log"
	"os"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/insight"
	"telcochurn/internal/rootcause"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

func main() {
	cfg := synth.DefaultConfig()
	cfg.Customers = 3000
	cfg.Months = 5
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)

	// Train on all feature groups so every cause category has features.
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(3, cfg.DaysPerMonth)}, core.Config{
		Groups: features.AllGroups(),
		Forest: tree.ForestConfig{NumTrees: 150, MinLeafSamples: 25, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rf := pipe.Classifier().(*core.RFClassifier)
	explainer := rootcause.NewExplainer(rf.Forest())

	// Score month 4 and explain the top-U predicted churners.
	win := features.MonthWindow(4, cfg.DaysPerMonth)
	frame, err := pipe.BuildFrame(src, win, false, nil)
	if err != nil {
		log.Fatal(err)
	}
	var preds []eval.Prediction
	rows := map[int64][]float64{}
	for _, id := range frame.IDs() {
		row, _ := frame.Row(id)
		rows[id] = row
		preds = append(preds, eval.Prediction{ID: id, Score: rf.Forest().Score(row)})
	}
	eval.ByScoreDesc(preds)
	u := synth.ScaleU(50000, cfg.Customers)

	fmt.Printf("top %d predicted churners with root causes:\n", u)
	var explanations []*rootcause.Explanation
	for i := 0; i < u && i < len(preds); i++ {
		e := explainer.Explain(preds[i].ID, rows[preds[i].ID], 3)
		explanations = append(explanations, e)
		if i < 8 {
			fmt.Printf("  %s | top features:", e)
			for _, c := range e.Top {
				fmt.Printf(" %s(%+.3f)", c.Feature, c.Score)
			}
			fmt.Println()
		}
	}

	fmt.Println("\ncause mix across the target list:")
	share := rootcause.CauseShare(explanations)
	for _, c := range rootcause.RankedCauses(share) {
		fmt.Printf("  %-18s %5.1f%%\n", c, 100*share[c])
	}

	// Close the loop with the network: which cells drive quality churn?
	tbl, err := src.Tables(win)
	if err != nil {
		log.Fatal(err)
	}
	labels := core.LabelsOf(months[4].Truth)
	report, err := insight.BuildNetworkReport(tbl, win, cfg.DaysPerMonth, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.Render(os.Stdout, 8)
}

// Velocity study: Table 5 at example scale — does refreshing features and
// classifiers every 5/10/20 days instead of monthly pay off?
//
//	go run ./examples/velocity_study
package main

import (
	"log"
	"os"

	"telcochurn/internal/experiments"
)

func main() {
	res, err := experiments.Tab5Velocity(experiments.Options{
		Customers: 2500,
		Trees:     100,
		Repeats:   2,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)
}

// Retention campaign: the Table 6 closed loop at example scale. Month 8
// sends random offers to an A/B-split list of predicted churners; the
// feedback trains a multi-class offer classifier; month 9's matched offers
// retain more customers.
//
//	go run ./examples/retention_campaign
package main

import (
	"fmt"
	"log"

	"telcochurn/internal/core"
	"telcochurn/internal/retention"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

func main() {
	cfg := synth.DefaultConfig()
	cfg.Customers = 4000
	cfg.Months = 9
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)

	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(6, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 150, MinLeafSamples: 25, Seed: 7},
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	runner := retention.NewRunner(src, pipe, retention.Config{
		TopTier:    synth.ScaleU(50000, cfg.Customers),
		SecondTier: synth.ScaleU(100000, cfg.Customers),
		Seed:       7,
	})

	show := func(label string, res *retention.CampaignResult) {
		fmt.Printf("\n%s (campaign month %d):\n", label, res.Month)
		for _, s := range res.Stats {
			fmt.Printf("  tier %d group %c: %3d/%3d recharged = %.1f%%\n",
				s.Tier, s.Group, s.Recharged, s.Total, 100*s.Rate())
		}
	}

	pilot, err := runner.RunPilotCampaign(7)
	if err != nil {
		log.Fatal(err)
	}
	first, err := runner.RunFirstCampaign(8)
	if err != nil {
		log.Fatal(err)
	}
	show("random offers", first)

	// The paper's closed loop: accumulate campaign feedback, then match.
	clf, err := runner.FitOfferClassifier(pilot, first)
	if err != nil {
		log.Fatal(err)
	}
	second, err := runner.RunMatchedCampaign(9, clf)
	if err != nil {
		log.Fatal(err)
	}
	show("classifier-matched offers", second)
}

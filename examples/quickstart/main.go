// Quickstart: simulate a small telco world, train the paper's churn
// pipeline (random forest over baseline BSS features), and print the ranked
// churner list with its quality metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

func main() {
	// 1. Simulate 5 months of raw BSS/OSS data for 3 000 prepaid customers.
	cfg := synth.DefaultConfig()
	cfg.Customers = 3000
	cfg.Months = 5
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)
	fmt.Printf("simulated %d months x %d customers\n", cfg.Months, cfg.Customers)

	// 2. Train per Figure 6: features from month 3, churn labels from month 4.
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(3, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 150, MinLeafSamples: 25, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict churners for month 5 from month-4 features; evaluate with
	// the paper's metrics at a top-U scaled from their 50 000.
	u := synth.ScaleU(50000, cfg.Customers)
	preds, report, err := pipe.Evaluate(src, core.MonthSpec(4, cfg.DaysPerMonth), u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("month-5 churn prediction: %v\n", report)

	eval.ByScoreDesc(preds)
	fmt.Printf("\ntop %d predicted churners:\n", u)
	fmt.Println("rank  imsi      score   churned?")
	for i := 0; i < u && i < len(preds); i++ {
		p := preds[i]
		mark := ""
		if p.Label == 1 {
			mark = "yes"
		}
		fmt.Printf("%4d  %-8d  %.4f  %s\n", i+1, p.ID, p.Score, mark)
	}
}

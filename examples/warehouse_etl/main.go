// Warehouse ETL: land the raw BSS/OSS tables in the partitioned on-disk
// columnar store (the repository's HDFS substitute), inspect them, and run
// the full-variety churn pipeline straight off disk — the Figure 2 data
// layer end to end.
//
//	go run ./examples/warehouse_etl
package main

import (
	"fmt"
	"log"
	"os"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

func main() {
	dir, err := os.MkdirTemp("", "telco-warehouse-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. ETL: simulate and persist month partitions.
	cfg := synth.DefaultConfig()
	cfg.Customers = 2000
	cfg.Months = 5
	wh, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := synth.GenerateToWarehouse(cfg, wh); err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the landed tables.
	tables, err := wh.Tables()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("warehouse contents:")
	for _, name := range tables {
		months, _ := wh.Months(name)
		tb, err := wh.ReadPartition(name, months[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s partitions=%d schema=%s\n", name, len(months), tb.Schema)
	}

	// 3. Train the deployed configuration (all 150 features) from disk.
	src := core.NewWarehouseSource(wh, cfg.DaysPerMonth)
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(3, cfg.DaysPerMonth)}, core.Config{
		Groups: features.AllGroups(),
		Forest: tree.ForestConfig{NumTrees: 120, MinLeafSamples: 20, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwide table: %d features (paper: 150)\n", len(pipe.FeatureNames()))

	u := synth.ScaleU(100000, cfg.Customers)
	_, report, err := pipe.Evaluate(src, core.MonthSpec(4, cfg.DaysPerMonth), u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-variety prediction from disk: %v\n", report)
}

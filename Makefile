# Development entry points for the telcochurn reproduction.

GO ?= go

.PHONY: all build vet test test-short cover bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./internal/...

# One benchmark per paper table/figure plus substrate micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table and figure at reference scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/churnctl run all -customers 4000 -trees 150 -repeats 2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/warehouse_etl
	$(GO) run ./examples/volume_study
	$(GO) run ./examples/retention_campaign
	$(GO) run ./examples/velocity_study
	$(GO) run ./examples/root_cause

clean:
	rm -rf warehouse churn-model.bin

# Development entry points for the telcochurn reproduction.

GO ?= go

.PHONY: all build vet fmt-check test test-short test-race cover bench bench-smoke bench-json bench-compare bench-profile chaos chaos-net e2e loadtest scale-smoke ci experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run; the parallel substrate guarantees bit-identical results
# for any worker count, and this gate keeps that claim honest.
test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# One benchmark per paper table/figure plus substrate micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Single-iteration benchmark pass: proves every benchmark still runs without
# paying for stable timings (mirrors the CI smoke job).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# Machine-readable benchmark report (ns/op, B/op, allocs/op as JSON), for
# committing alongside perf PRs and diffing in CI. BENCH ?= regex, OUT ?= file.
# The set always includes the serve-path benches next to the table-engine
# ones, so every report from BENCH_7.json onward is a superset of the old
# table-only reports.
BENCH ?= BenchmarkTableGroupBy|BenchmarkTableHashJoin|BenchmarkWideTableBuild|BenchmarkShardedWideTableBuild|BenchmarkServeScore
OUT ?= BENCH.json
bench-json:
	$(GO) run ./cmd/benchjson -bench '$(BENCH)' -benchtime 2s -pkg ./... -out $(OUT)

# Regression gate: fail if any benchmark tracked by the committed baseline
# got slower than BASELINE x TOLERANCE, or if a serve-path benchmark starts
# allocating more than the baseline (the single-score path is pinned at 0
# allocs/op). Refresh the baseline deliberately (make bench-json
# OUT=BENCH_7.json on a quiet machine) when perf changes are intentional.
BASELINE ?= BENCH_7.json
TOLERANCE ?= 1.5x
bench-compare:
	$(GO) run ./cmd/benchjson -compare -tolerance $(TOLERANCE) \
		-gate-allocs 'BenchmarkServeScore' $(BASELINE) $(OUT)

# CPU + heap profiles of the tree-training benchmarks; inspect with
# `go tool pprof cpu.out` / `go tool pprof mem.out` (see DESIGN.md §8).
bench-profile:
	$(GO) test -run='^$$' -bench='BenchmarkRandomForestFit|BenchmarkTreeFit' \
		-benchtime=5x -benchmem -cpuprofile=cpu.out -memprofile=mem.out .

# Fault-schedule property tests under the race detector: seeded chaos over
# the storage/source/assembly/serving resilience stack (see DESIGN.md §11).
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Crash|Atomic|Retry|Degraded|Partial|Cache|Reload|Readyz' \
		./internal/faults/ ./internal/store/ ./internal/features/ \
		./internal/core/ ./internal/serve/ ./cmd/churnd/

# Network chaos: the seeded TCP fault proxy's property tests under -race,
# then the full proxied harness — churnd behind cmd/netproxy under a mixed
# churnload run with relaxed gates, a fault-schedule determinism check, and
# the kill-and-restart e2e (SIGKILL mid-ingest, torn event-log tail,
# quarantined restart, served scores bit-identical to the merged rebuild).
# See scripts/chaos_net.sh and DESIGN.md §15.
chaos-net:
	$(GO) test -race -count=1 -run 'Proxy|Quarantine|Sync|Drain|Deadline|Panic' \
		./internal/faults/ ./internal/store/ ./cmd/churnd/
	bash scripts/chaos_net.sh

# Serving smoke test: train a tiny artifact, start churnd, score a batch
# over HTTP, assert bit-identical parity with `churnctl score`, then knock
# out a raw table and assert degraded-mode serving reports its mask.
# E2E_PORT ?= listen port (default 18080).
e2e:
	bash scripts/e2e.sh

# Serving load smoke: train a tiny precomputed artifact, start churnd, drive
# an open-loop churnload run and self-gate on p99 latency and non-2xx rate.
# LOAD_RPS / LOAD_DURATION / LOAD_MAX_P99 override the defaults.
loadtest:
	bash scripts/loadtest.sh

# Out-of-core scale smoke: generate a runner-budget sharded warehouse, run
# the F1-F6 wide-table build shard by shard in a fresh process, and fail if
# peak RSS exceeds the declared ceiling. SCALE_CUSTOMERS / SCALE_SHARDS /
# SCALE_RSS_MB override the defaults (see scripts/scale_smoke.sh).
scale-smoke:
	bash scripts/scale_smoke.sh

# Everything the CI workflow checks, in the same order.
ci: build vet fmt-check test-race chaos chaos-net bench-smoke scale-smoke e2e loadtest

# Regenerate every table and figure at reference scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/churnctl eval all -customers 4000 -trees 150 -repeats 2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/warehouse_etl
	$(GO) run ./examples/volume_study
	$(GO) run ./examples/retention_campaign
	$(GO) run ./examples/velocity_study
	$(GO) run ./examples/root_cause

clean:
	rm -rf warehouse churn-model.bin churn-model.tcpa cpu.out mem.out telcochurn.test \
		BENCH_CI.json LOAD.json

module telcochurn

go 1.22

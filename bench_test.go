// Package telcochurn's root benchmark harness regenerates every table and
// figure of the paper's evaluation (one Benchmark per artifact — run with
// `go test -bench=. -benchmem`) and micro-benchmarks the substrates the
// pipeline is built on (table engine, store, graph algorithms, LDA, random
// forest).
//
// The experiment benchmarks print their paper-style table once per run via
// b.Logf-free stdout so `-bench` output doubles as the reproduction record;
// absolute numbers are population-scaled (see DESIGN.md §2), the shape is
// what reproduces.
package telcochurn

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"telcochurn/internal/core"
	"telcochurn/internal/dataset"
	"telcochurn/internal/experiments"
	"telcochurn/internal/features"
	"telcochurn/internal/graph"
	"telcochurn/internal/procstat"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
	"telcochurn/internal/topic"
	"telcochurn/internal/tree"
)

// benchOpts keeps each experiment benchmark to a few seconds per iteration
// while preserving the qualitative shape.
func benchOpts() experiments.Options {
	return experiments.Options{Customers: 1500, Seed: 3, Trees: 60, MinLeaf: 15, Repeats: 1}
}

var (
	printedMu sync.Mutex
	printed   = map[string]bool{}
)

// runExperiment executes an experiment id once per b.N iteration, printing
// its table the first time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			var sb strings.Builder
			res.Render(&sb)
			fmt.Fprintf(os.Stderr, "\n%s\n", sb.String())
		}
		printedMu.Unlock()
	}
}

// ---- one benchmark per paper table/figure ----

func BenchmarkFig1ChurnRates(b *testing.B)     { runExperiment(b, "fig1") }
func BenchmarkTab1DatasetStats(b *testing.B)   { runExperiment(b, "tab1") }
func BenchmarkFig5RechargePeriod(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig7Volume(b *testing.B)         { runExperiment(b, "fig7") }
func BenchmarkTab2Variety(b *testing.B)        { runExperiment(b, "tab2") }
func BenchmarkTab3Overall(b *testing.B)        { runExperiment(b, "tab3") }
func BenchmarkTab4Importance(b *testing.B)     { runExperiment(b, "tab4") }
func BenchmarkTab5Velocity(b *testing.B)       { runExperiment(b, "tab5") }
func BenchmarkTab6BusinessValue(b *testing.B)  { runExperiment(b, "tab6") }
func BenchmarkTab7Imbalance(b *testing.B)      { runExperiment(b, "tab7") }
func BenchmarkFig8EarlySignals(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9Classifiers(b *testing.B)    { runExperiment(b, "fig9") }

// ---- substrate micro-benchmarks ----

func benchWorld(b *testing.B) []*synth.MonthData {
	b.Helper()
	cfg := synth.DefaultConfig()
	cfg.Customers = 1500
	cfg.Months = 4
	return synth.Simulate(cfg)
}

func BenchmarkSimulateMonth(b *testing.B) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 2000
	w := synth.NewWorld(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SimulateMonth()
	}
}

func BenchmarkTableGroupBy(b *testing.B) {
	months := benchWorld(b)
	calls := months[0].Calls
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.GroupBy(calls, "imsi",
			table.Agg{Col: "dur", Func: table.Sum, As: "dur"},
			table.Agg{Func: table.Count, As: "cnt"},
		); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableHashJoin(b *testing.B) {
	months := benchWorld(b)
	billing := months[0].Billing
	customers := months[0].Customers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.HashJoin(billing, customers, "imsi", table.InnerJoin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreWriteRead(b *testing.B) {
	months := benchWorld(b)
	wh, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	calls := months[0].Calls
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wh.WritePartition("calls", 1, calls); err != nil {
			b.Fatal(err)
		}
		if _, err := wh.ReadPartition("calls", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerCounts parameterizes the parallel substrate benchmarks; outputs
// are bit-identical across the sweep (see internal/parallel), only wall-clock
// changes.
var benchWorkerCounts = []int{1, 2, 4, 8}

func BenchmarkWideTableBuild(b *testing.B) {
	months := benchWorld(b)
	tbl, err := features.FromMonthData(months[:1])
	if err != nil {
		b.Fatal(err)
	}
	win := features.MonthWindow(1, 30)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := features.BuildBaseFeatures(tbl, win, 30, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedWideTableBuild measures the out-of-core F1-F6 build over
// an on-disk sharded warehouse across shard counts. SCALE_CUSTOMERS scales
// the population (default 4000; the scale smoke test runs this path at
// 50k+, see scripts/scale_smoke.sh). Reported raw-rows/sec and peak-RSS-MB
// land in the JSON report's extra fields.
func BenchmarkShardedWideTableBuild(b *testing.B) {
	customers := 4000
	if env := os.Getenv("SCALE_CUSTOMERS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			b.Fatalf("bad SCALE_CUSTOMERS %q", env)
		}
		customers = n
	}
	cfg := synth.DefaultConfig()
	cfg.Customers = customers
	cfg.Months = 2
	cfg.Seed = 17
	cfg.BurnInMonths = 1
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			wh, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			sw, err := wh.Sharded(shards)
			if err != nil {
				b.Fatal(err)
			}
			if err := synth.GenerateToShardedWarehouse(cfg, sw); err != nil {
				b.Fatal(err)
			}
			src := core.NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
			p := core.NewFrameBuilder(core.Config{Groups: []features.Group{
				features.F1Baseline, features.F2CS, features.F3PS,
				features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph,
			}})
			win := features.MonthWindow(2, cfg.DaysPerMonth)
			var rawRows int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := p.BuildFrameSharded(src, win)
				if err != nil {
					b.Fatal(err)
				}
				rawRows = stats.RawRows
			}
			b.StopTimer()
			b.ReportMetric(float64(rawRows)*float64(b.N)/b.Elapsed().Seconds(), "raw-rows/sec")
			if peak, ok := procstat.PeakRSSBytes(); ok {
				b.ReportMetric(float64(peak)/(1<<20), "peak-RSS-MB")
			}
		})
	}
}

func BenchmarkPageRank(b *testing.B) {
	months := benchWorld(b)
	tbl, _ := features.FromMonthData(months[:1])
	g := features.BuildCallGraph(tbl, features.MonthWindow(1, 30), 30, synth.IsCustomerID)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.PageRank(graph.PageRankOptions{Workers: w})
			}
		})
	}
}

func BenchmarkLabelPropagation(b *testing.B) {
	months := benchWorld(b)
	tbl, _ := features.FromMonthData(months[:1])
	g := features.BuildCallGraph(tbl, features.MonthWindow(1, 30), 30, synth.IsCustomerID)
	seeds := map[int64]int{}
	for i, id := range g.IDs() {
		if i%10 == 0 {
			seeds[id] = i % 2
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LabelPropagation(seeds, 2, graph.LabelPropOptions{})
	}
}

func BenchmarkLDAFit(b *testing.B) {
	months := benchWorld(b)
	search := months[0].Search
	imsi := search.MustCol("imsi").Ints
	text := search.MustCol("text").Strings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := topic.NewCorpus()
		for j := range imsi {
			if j%4 == 0 {
				c.AddDoc(imsi[j], text[j])
			}
		}
		if _, err := topic.Fit(c, topic.Config{K: 10, Iters: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForestData builds the shared tree-benchmark dataset: 3000 rows × 40
// continuous features with a two-feature signal.
func benchForestData() *dataset.Dataset {
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(make([]string, 40))
	for j := range d.FeatureNames {
		d.FeatureNames[j] = fmt.Sprintf("f%d", j)
	}
	for i := 0; i < 3000; i++ {
		row := make([]float64, 40)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y := 0
		if row[0]+row[1] > 0.5 {
			y = 1
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	return d
}

// BenchmarkTreeFit measures one deep CART tree (all features per split) over
// the columnar backend — the per-tree cost without forest-level sharing.
func BenchmarkTreeFit(b *testing.B) {
	d := benchForestData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.FitTree(d, tree.Config{MinLeafSamples: 25, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomForestFit sweeps split-search modes: bins=0 is the exact
// presorted scan (bit-identical to the legacy grower), bins>0 the quantile
// histogram scan.
func BenchmarkRandomForestFit(b *testing.B) {
	d := benchForestData()
	for _, bins := range []int{0, 32, 255} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := tree.ForestConfig{NumTrees: 50, MinLeafSamples: 25, Seed: 1, MaxBins: bins}
				if _, err := tree.FitForest(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkForestScore(b *testing.B) {
	months := benchWorld(b)
	src := core.NewMemorySource(months, 30)
	p, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, 30)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 60, MinLeafSamples: 15, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(src, features.MonthWindow(3, 30)); err != nil {
			b.Fatal(err)
		}
	}
}

package fm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestForwardMatchesBruteForce: the O(K·n) sum-of-squares identity must
// equal the O(n²) direct pairwise expansion of Eq. (3).
func TestForwardMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := 2 + rng.Intn(10)
		k := 1 + rng.Intn(5)
		m := &Model{
			W0: rng.NormFloat64(),
			W:  make([]float64, nf),
			V:  make([][]float64, nf),
		}
		for j := range m.W {
			m.W[j] = rng.NormFloat64()
			m.V[j] = make([]float64, k)
			for kk := range m.V[j] {
				m.V[j][kk] = rng.NormFloat64()
			}
		}
		x := make([]float64, nf)
		for j := range x {
			if rng.Float64() < 0.3 {
				continue // keep some zeros to exercise sparsity handling
			}
			x[j] = rng.NormFloat64()
		}

		sum := make([]float64, k)
		fast := m.forward(x, sum)

		slow := m.W0
		for j, xj := range x {
			slow += m.W[j] * xj
		}
		for i := 0; i < nf; i++ {
			for j := i + 1; j < nf; j++ {
				slow += m.PairWeight(i, j) * x[i] * x[j]
			}
		}
		return math.Abs(fast-slow) < 1e-9*math.Max(1, math.Abs(slow))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	d := xorData(200, 9)
	m, err := Fit(d, Config{Seed: 1, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.ScoreAll(d.X[:50])
	for i := 0; i < 50; i++ {
		if batch[i] != m.Score(d.X[i]) {
			t.Fatal("ScoreAll disagrees with Score")
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	d := xorData(300, 10)
	a, err := Fit(d, Config{Seed: 4, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(d, Config{Seed: 4, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("same-seed FM fits differ")
		}
	}
}

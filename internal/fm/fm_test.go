package fm

import (
	"math"
	"math/rand"
	"testing"

	"telcochurn/internal/dataset"
)

// xorData builds a dataset whose label depends ONLY on the interaction
// x0*x1 (XOR-like): no linear model can fit it, a factorization machine can.
func xorData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"x0", "x1", "noise"})
	for i := 0; i < n; i++ {
		a := float64(rng.Intn(2))*2 - 1 // ±1
		b := float64(rng.Intn(2))*2 - 1
		y := 0
		if a*b > 0 {
			y = 1
		}
		d.Add([]float64{a, b, rng.NormFloat64()}, y)
	}
	return d
}

func TestFMLearnsInteraction(t *testing.T) {
	d := xorData(1500, 1)
	m, err := Fit(d, Config{Seed: 1, Epochs: 40, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	test := xorData(500, 2)
	correct := 0
	for i, x := range test.X {
		pred := 0
		if m.Score(x) > 0.5 {
			pred = 1
		}
		if pred == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 500; acc < 0.9 {
		t.Errorf("FM accuracy on XOR %.3f, want >= 0.9", acc)
	}
}

func TestTopPairsFindsInteraction(t *testing.T) {
	d := xorData(1500, 3)
	m, err := Fit(d, Config{Seed: 1, Epochs: 40, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopPairs(1)
	if len(top) != 1 {
		t.Fatalf("TopPairs(1) returned %d", len(top))
	}
	if !(top[0].I == 0 && top[0].J == 1) {
		t.Errorf("top pair = (%d,%d), want (0,1)", top[0].I, top[0].J)
	}
	if top[0].Weight <= 0 {
		t.Errorf("interaction weight = %g, want positive (x0*x1>0 => class 1)", top[0].Weight)
	}
}

func TestTopPairsCountAndOrdering(t *testing.T) {
	d := xorData(300, 4)
	m, err := Fit(d, Config{Seed: 2, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	pairs := m.TopPairs(100) // more than 3 features allow (3 pairs)
	if len(pairs) != 3 {
		t.Fatalf("TopPairs = %d pairs, want 3", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if math.Abs(pairs[i].Weight) > math.Abs(pairs[i-1].Weight) {
			t.Error("pairs not sorted by |weight| descending")
		}
	}
}

func TestPairWeightMatchesDot(t *testing.T) {
	m := &Model{V: [][]float64{{1, 2}, {3, -1}}}
	if got := m.PairWeight(0, 1); got != 1 {
		t.Errorf("PairWeight = %g, want 1", got)
	}
}

func TestFMStableOnDenseData(t *testing.T) {
	// Dense heavy-tailed standardized-ish inputs previously diverged to NaN;
	// gradient clipping must keep everything finite.
	rng := rand.New(rand.NewSource(5))
	d := dataset.New([]string{"a", "b", "c", "d", "e"})
	for i := 0; i < 800; i++ {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.NormFloat64() * 5
		}
		d.Add(row, rng.Intn(2))
	}
	m, err := Fit(d, Config{Seed: 1, Epochs: 25, LearningRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if math.IsNaN(m.PairWeight(i, j)) || math.IsInf(m.PairWeight(i, j), 0) {
				t.Fatalf("pair weight (%d,%d) not finite", i, j)
			}
		}
	}
	for _, s := range m.ScoreAll(d.X[:50]) {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("score %g invalid", s)
		}
	}
}

func TestFMErrors(t *testing.T) {
	if _, err := Fit(dataset.New([]string{"x"}), Config{}); err == nil {
		t.Error("want error for empty dataset")
	}
	d := dataset.New([]string{"x"})
	d.Add([]float64{1}, 5)
	if _, err := Fit(d, Config{}); err == nil {
		t.Error("want error for non-binary labels")
	}
}

func TestInstanceWeightsShiftFM(t *testing.T) {
	d := dataset.New([]string{"x"})
	for i := 0; i < 60; i++ {
		d.Add([]float64{1}, i%2)
	}
	d.W = make([]float64, 60)
	for i := range d.W {
		if d.Y[i] == 1 {
			d.W[i] = 5
		} else {
			d.W[i] = 1
		}
	}
	m, err := Fit(d, Config{Seed: 1, Epochs: 60, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Score([]float64{1}); s < 0.6 {
		t.Errorf("weighted FM score = %g, want > 0.6", s)
	}
}

package fm

import (
	"telcochurn/internal/codec"
)

// Encode appends the trained FM parameters (w0, w, latent factors V) to an
// open codec stream.
func (m *Model) Encode(w *codec.Writer) {
	w.Float(m.W0)
	w.Floats(m.W)
	w.Uvarint(uint64(len(m.V)))
	for _, v := range m.V {
		w.Floats(v)
	}
}

// DecodeModel reads a model written by (*Model).Encode.
func DecodeModel(r *codec.Reader) (*Model, error) {
	m := &Model{W0: r.Float(), W: r.Floats()}
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	m.V = make([][]float64, n)
	for i := range m.V {
		m.V[i] = r.Floats()
	}
	if len(m.V) > 0 && len(m.V[0]) == 0 {
		r.Fail("fm model with zero-width latent factors")
	}
	return m, r.Err()
}

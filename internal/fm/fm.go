// Package fm implements factorization machines (Rendle's LIBFM), used by the
// paper in two roles: as one of the Figure 9 classifiers, and as the
// second-order feature selector of Section 4.1.4 — Eq. (3)'s pairwise weight
// ⟨v_i, v_j⟩ ranks feature pairs, and the top-K pairs become the F9 features
// x_i·x_j of the wide table.
package fm

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"telcochurn/internal/dataset"
)

// Config holds FM hyperparameters.
type Config struct {
	// K is the latent factor dimensionality of v_i (default 8).
	K int
	// LearningRate is the SGD step (paper: 0.1).
	LearningRate float64
	// Lambda is the L2 regularization (default 1e-4).
	Lambda float64
	// Epochs is the number of SGD passes (default 20).
	Epochs int
	// Seed drives initialization and shuffling.
	Seed int64
	// InitStd is the latent-factor initialization scale (default 0.05).
	InitStd float64
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 8
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.InitStd == 0 {
		c.InitStd = 0.05
	}
	return c
}

// Model is a trained factorization machine for binary classification:
//
//	y = σ( w0 + Σ w_i x_i + Σ_{i<j} ⟨v_i, v_j⟩ x_i x_j )
type Model struct {
	W0 float64
	W  []float64
	// V[i] is the K-length latent vector of feature i (Eq. 3).
	V [][]float64
}

// Fit trains the FM with SGD on logistic loss. Labels must be 0/1; instance
// weights scale gradients.
func Fit(d *dataset.Dataset, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumInstances()
	if n == 0 {
		return nil, errors.New("fm: empty dataset")
	}
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			return nil, errors.New("fm: labels must be 0/1")
		}
	}
	nf := d.NumFeatures()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		W: make([]float64, nf),
		V: make([][]float64, nf),
	}
	for i := range m.V {
		m.V[i] = make([]float64, cfg.K)
		for k := range m.V[i] {
			m.V[i][k] = rng.NormFloat64() * cfg.InitStd
		}
	}

	// AdaGrad per-coordinate steps: instance weights (the Weighted Instance
	// imbalance method multiplies gradients by ~n/2·n_pos) and one-hot
	// sparsity make plain SGD oscillate; adaptive steps keep FM competitive
	// with the batched logistic-regression optimizer (Section 5.8's "most
	// scalable classifiers achieve almost the same accuracy").
	const adaEps = 1e-8
	hW0 := adaEps
	hW := make([]float64, nf)
	hV := make([][]float64, nf)
	for i := range hV {
		hV[i] = make([]float64, cfg.K)
	}

	order := rng.Perm(n)
	sum := make([]float64, cfg.K) // Σ_i v_ik x_i, reused per instance
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate
		for _, i := range order {
			x := d.X[i]
			pred := m.forward(x, sum)
			g := (sigmoid(pred) - float64(d.Y[i])) * d.Weight(i)

			hW0 += g * g
			m.W0 -= lr * g / math.Sqrt(hW0)
			for j, xj := range x {
				if xj == 0 {
					continue
				}
				gw := clip(g*xj) + cfg.Lambda*m.W[j]
				hW[j] += gw * gw
				m.W[j] -= lr * gw / math.Sqrt(hW[j]+adaEps)
				vj := m.V[j]
				hj := hV[j]
				for k := 0; k < cfg.K; k++ {
					gv := clip(g*xj*(sum[k]-vj[k]*xj)) + cfg.Lambda*vj[k]
					hj[k] += gv * gv
					vj[k] -= lr * gv / math.Sqrt(hj[k]+adaEps)
				}
			}
		}
	}
	return m, nil
}

// forward computes the raw FM output using the O(K·nnz) identity
// Σ_{i<j}⟨v_i,v_j⟩x_i x_j = ½ Σ_k [ (Σ_i v_ik x_i)² - Σ_i v_ik² x_i² ].
// sum is scratch of length K and holds Σ_i v_ik x_i on return.
func (m *Model) forward(x []float64, sum []float64) float64 {
	pred := m.W0
	for k := range sum {
		sum[k] = 0
	}
	sumSq := 0.0
	for j, xj := range x {
		if xj == 0 {
			continue
		}
		pred += m.W[j] * xj
		vj := m.V[j]
		for k := range sum {
			s := vj[k] * xj
			sum[k] += s
			sumSq += s * s
		}
	}
	pair := 0.0
	for k := range sum {
		pair += sum[k] * sum[k]
	}
	pred += 0.5 * (pair - sumSq)
	return pred
}

// Score returns P(y=1 | x).
func (m *Model) Score(x []float64) float64 {
	sum := make([]float64, len(m.V[0]))
	return sigmoid(m.forward(x, sum))
}

// ScoreAll scores many instances.
func (m *Model) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	sum := make([]float64, len(m.V[0]))
	for i, xi := range x {
		out[i] = sigmoid(m.forward(xi, sum))
	}
	return out
}

// PairWeight returns Eq. (3)'s interaction weight ⟨v_i, v_j⟩.
func (m *Model) PairWeight(i, j int) float64 {
	s := 0.0
	for k := range m.V[i] {
		s += m.V[i][k] * m.V[j][k]
	}
	return s
}

// Pair identifies one second-order feature x_i·x_j with its learned weight.
type Pair struct {
	I, J   int
	Weight float64
}

// TopPairs ranks all feature pairs by |⟨v_i, v_j⟩| descending and returns
// the top K — the paper's selection of the 20 most useful second-order
// features (Section 4.1.4).
func (m *Model) TopPairs(k int) []Pair {
	nf := len(m.V)
	pairs := make([]Pair, 0, nf*(nf-1)/2)
	for i := 0; i < nf; i++ {
		for j := i + 1; j < nf; j++ {
			pairs = append(pairs, Pair{I: i, J: j, Weight: m.PairWeight(i, j)})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		wa, wb := math.Abs(pairs[a].Weight), math.Abs(pairs[b].Weight)
		if wa != wb {
			return wa > wb
		}
		if pairs[a].I != pairs[b].I {
			return pairs[a].I < pairs[b].I
		}
		return pairs[a].J < pairs[b].J
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	return pairs[:k]
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// clip bounds a gradient term so dense standardized inputs cannot blow the
// latent factors up (the classic FM-on-dense-data divergence).
func clip(g float64) float64 {
	const bound = 10
	if g > bound {
		return bound
	}
	if g < -bound {
		return -bound
	}
	return g
}

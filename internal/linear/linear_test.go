package linear

import (
	"math/rand"
	"testing"
	"testing/quick"

	"telcochurn/internal/dataset"
)

func separable(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"x0", "x1"})
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		y := 0
		if a+b > 0 {
			y = 1
		}
		d.Add([]float64{a, b}, y)
	}
	return d
}

func TestLogisticLearnsLinearBoundary(t *testing.T) {
	d := separable(800, 1)
	m, err := Fit(d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test := separable(400, 2)
	correct := 0
	for i, x := range test.X {
		pred := 0
		if m.Score(x) > 0.5 {
			pred = 1
		}
		if pred == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 400; acc < 0.95 {
		t.Errorf("accuracy %.3f, want >= 0.95", acc)
	}
	// Both weights should be positive (boundary a+b>0).
	if m.Weights[0] <= 0 || m.Weights[1] <= 0 {
		t.Errorf("weights = %v, want positive", m.Weights)
	}
}

func TestLogisticRespectInstanceWeights(t *testing.T) {
	// Conflicting labels at the same point; weights decide the probability.
	d := dataset.New([]string{"x"})
	for i := 0; i < 40; i++ {
		d.Add([]float64{1}, i%2)
	}
	d.W = make([]float64, 40)
	for i := range d.W {
		if d.Y[i] == 1 {
			d.W[i] = 4
		} else {
			d.W[i] = 1
		}
	}
	m, err := Fit(d, Config{Seed: 1, Epochs: 120})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Score([]float64{1}); s < 0.65 {
		t.Errorf("weighted score = %g, want > 0.65 (class 1 weighted 4x)", s)
	}
}

func TestLogisticErrors(t *testing.T) {
	if _, err := Fit(dataset.New([]string{"x"}), Config{}); err == nil {
		t.Error("want error for empty dataset")
	}
	d := dataset.New([]string{"x"})
	d.Add([]float64{1}, 3)
	if _, err := Fit(d, Config{}); err == nil {
		t.Error("want error for non-binary labels")
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	d := separable(100, 3)
	m, err := Fit(d, Config{Seed: 1, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.ScoreAll(d.X)
	for i := range d.X {
		if batch[i] != m.Score(d.X[i]) {
			t.Fatal("ScoreAll disagrees")
		}
	}
}

func TestBinarizerOneHotProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dataset.New([]string{"a", "b"})
		n := 10 + rng.Intn(200)
		for i := 0; i < n; i++ {
			d.Add([]float64{rng.NormFloat64(), float64(rng.Intn(3))}, rng.Intn(2))
		}
		bin := FitBinarizer(d, 4)
		out := bin.Transform(d)
		if out.NumFeatures() != bin.NumOutputs() {
			return false
		}
		// Every row is a concatenation of one-hot blocks: exactly one 1 per
		// source feature.
		for _, row := range out.X {
			ones := 0
			for _, v := range row {
				if v != 0 && v != 1 {
					return false
				}
				if v == 1 {
					ones++
				}
			}
			if ones != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinarizerConstantColumn(t *testing.T) {
	d := dataset.New([]string{"c"})
	for i := 0; i < 20; i++ {
		d.Add([]float64{7}, 0)
	}
	bin := FitBinarizer(d, 8)
	// Duplicate quantile boundaries collapse to one cut: two buckets, all
	// mass in the lower one.
	if bin.NumOutputs() != 2 {
		t.Errorf("constant column produced %d outputs, want 2", bin.NumOutputs())
	}
	row := bin.TransformRow([]float64{7})
	if len(row) != 2 || row[0] != 1 || row[1] != 0 {
		t.Errorf("TransformRow = %v", row)
	}
}

func TestBinarizerMonotoneBuckets(t *testing.T) {
	d := dataset.New([]string{"x"})
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, 0)
	}
	bin := FitBinarizer(d, 4)
	bucketOf := func(v float64) int {
		row := bin.TransformRow([]float64{v})
		for i, b := range row {
			if b == 1 {
				return i
			}
		}
		return -1
	}
	prev := -1
	for v := 0.0; v <= 99; v += 7 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket not monotone at %g: %d < %d", v, b, prev)
		}
		prev = b
	}
	if bucketOf(0) == bucketOf(99) {
		t.Error("extreme values share a bucket")
	}
}

func TestBinarizerNamesAligned(t *testing.T) {
	d := dataset.New([]string{"a"})
	for i := 0; i < 50; i++ {
		d.Add([]float64{float64(i % 10)}, 0)
	}
	bin := FitBinarizer(d, 3)
	if len(bin.Names()) != bin.NumOutputs() {
		t.Errorf("names %d != outputs %d", len(bin.Names()), bin.NumOutputs())
	}
	out := bin.Transform(d)
	if len(out.FeatureNames) != out.NumFeatures() {
		t.Error("transformed dataset names misaligned")
	}
}

// Package linear implements L2-regularized logistic regression — the
// repository's LIBLINEAR substitute for the Figure 9 classifier comparison
// and a building block for downstream users. Training uses mini-batch
// stochastic gradient descent with the paper's fixed 0.1 learning rate by
// default; features should be standardized or binarized first (the paper
// discretizes continuous features into binary indicators for linear models —
// see Binarizer).
package linear

import (
	"errors"
	"math"
	"math/rand"

	"telcochurn/internal/dataset"
)

// Config holds logistic-regression hyperparameters.
type Config struct {
	// LearningRate is the SGD step size (paper: 0.1).
	LearningRate float64
	// Lambda is the L2 regularization strength (LIBLINEAR's 1/C per
	// instance). Default 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data. Default 30.
	Epochs int
	// BatchSize is the mini-batch size. Default 32.
	BatchSize int
	// Seed drives shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	return c
}

// Model is a trained binary logistic-regression classifier.
type Model struct {
	Bias    float64
	Weights []float64
}

// Fit trains on 0/1 labels, honoring instance weights.
func Fit(d *dataset.Dataset, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumInstances()
	if n == 0 {
		return nil, errors.New("linear: empty dataset")
	}
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			return nil, errors.New("linear: labels must be 0/1")
		}
	}
	nf := d.NumFeatures()
	m := &Model{Weights: make([]float64, nf)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Decaying step size keeps late epochs from oscillating.
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			gradW := make([]float64, nf)
			gradB := 0.0
			for _, i := range order[start:end] {
				x := d.X[i]
				err := (sigmoid(m.Bias+dot(m.Weights, x)) - float64(d.Y[i])) * d.Weight(i)
				for j, v := range x {
					gradW[j] += err * v
				}
				gradB += err
			}
			scale := lr / float64(end-start)
			for j := range m.Weights {
				m.Weights[j] -= scale*gradW[j] + lr*cfg.Lambda*m.Weights[j]
			}
			m.Bias -= scale * gradB
		}
	}
	return m, nil
}

// Score returns P(y=1 | x).
func (m *Model) Score(x []float64) float64 {
	return sigmoid(m.Bias + dot(m.Weights, x))
}

// ScoreAll scores many instances.
func (m *Model) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, xi := range x {
		out[i] = m.Score(xi)
	}
	return out
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i, v := range w {
		s += v * x[i]
	}
	return s
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

package linear

import (
	"telcochurn/internal/codec"
)

// Encode appends the trained weights to an open codec stream.
func (m *Model) Encode(w *codec.Writer) {
	w.Float(m.Bias)
	w.Floats(m.Weights)
}

// DecodeModel reads a model written by (*Model).Encode.
func DecodeModel(r *codec.Reader) (*Model, error) {
	m := &Model{Bias: r.Float(), Weights: r.Floats()}
	return m, r.Err()
}

// Encode appends the fitted quantile boundaries and output names to an open
// codec stream, so a loaded binarizer reproduces TransformRow bit for bit.
func (b *Binarizer) Encode(w *codec.Writer) {
	w.Uvarint(uint64(len(b.cuts)))
	for _, cuts := range b.cuts {
		w.Floats(cuts)
	}
	w.Strs(b.names)
}

// DecodeBinarizer reads a binarizer written by (*Binarizer).Encode.
func DecodeBinarizer(r *codec.Reader) (*Binarizer, error) {
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	b := &Binarizer{cuts: make([][]float64, n)}
	for j := range b.cuts {
		b.cuts[j] = r.Floats()
	}
	b.names = r.Strs()
	return b, r.Err()
}

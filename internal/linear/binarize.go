package linear

import (
	"fmt"
	"sort"

	"telcochurn/internal/dataset"
)

// Binarizer discretizes continuous features into quantile-bucket indicator
// features. The paper preprocesses continuous values into "discrete binary
// features" for LIBFM and LIBLINEAR because "linear models are more suitable
// for sparse binary features" (Section 5.8).
type Binarizer struct {
	// cuts[j] holds the ascending bucket boundaries for source feature j.
	cuts  [][]float64
	names []string
}

// FitBinarizer learns per-feature quantile boundaries producing up to
// buckets indicator features per source feature (duplicate boundaries
// collapse, so constant features produce a single always-on indicator).
func FitBinarizer(d *dataset.Dataset, buckets int) *Binarizer {
	if buckets < 2 {
		buckets = 2
	}
	nf := d.NumFeatures()
	b := &Binarizer{cuts: make([][]float64, nf)}
	for j := 0; j < nf; j++ {
		col := d.Column(j)
		sort.Float64s(col)
		var cuts []float64
		for q := 1; q < buckets; q++ {
			v := col[len(col)*q/buckets]
			if len(cuts) == 0 || v > cuts[len(cuts)-1] {
				cuts = append(cuts, v)
			}
		}
		b.cuts[j] = cuts
	}
	for j := 0; j < nf; j++ {
		for k := 0; k <= len(b.cuts[j]); k++ {
			b.names = append(b.names, fmt.Sprintf("%s_q%d", d.FeatureNames[j], k))
		}
	}
	return b
}

// NumOutputs returns the binarized feature count.
func (b *Binarizer) NumOutputs() int { return len(b.names) }

// Names returns the binarized feature names.
func (b *Binarizer) Names() []string { return b.names }

// TransformRow maps one source row to its indicator representation.
func (b *Binarizer) TransformRow(x []float64) []float64 {
	out := make([]float64, 0, b.NumOutputs())
	for j, v := range x {
		// SearchFloat64s returns the first i with cuts[i] >= v, so values
		// equal to a boundary land in the lower bucket.
		bucket := sort.SearchFloat64s(b.cuts[j], v)
		k := len(b.cuts[j]) + 1
		for q := 0; q < k; q++ {
			if q == bucket {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// Transform maps a whole dataset, preserving labels and weights.
func (b *Binarizer) Transform(d *dataset.Dataset) *dataset.Dataset {
	out := &dataset.Dataset{
		FeatureNames: b.names,
		X:            make([][]float64, d.NumInstances()),
		Y:            append([]int(nil), d.Y...),
	}
	if d.W != nil {
		out.W = append([]float64(nil), d.W...)
	}
	for i, row := range d.X {
		out.X[i] = b.TransformRow(row)
	}
	return out
}

// Package serve is the online scoring layer over a fitted core.Pipeline:
// concurrent requests coalesce into micro-batches that feed the vectorized
// ScoreAll path, behind a bounded queue with per-request cancellation and a
// TTL feature-vector cache. The paper's system applies the trained model to
// the full prepaid base monthly (§5-6); this package is the same scorer
// turned into a long-lived service (cf. Diaz-Aviles et al., "Towards
// Real-time Customer Experience Prediction for Telecommunication
// Operators").
//
// Determinism: every built-in classifier scores rows independently, so the
// batch a request happens to land in cannot change its scores — served
// outputs are bit-identical to batch Pipeline.Predict over the same window.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"telcochurn/internal/core"
)

var (
	// ErrQueueFull is returned when the bounded request queue cannot accept
	// more work — shed load instead of buffering unboundedly.
	ErrQueueFull = errors.New("serve: scoring queue full")
	// ErrClosed is returned by Score after Close.
	ErrClosed = errors.New("serve: scorer closed")
	// ErrUnknownCustomer is wrapped into Score errors for ids outside the
	// provider's universe.
	ErrUnknownCustomer = errors.New("serve: unknown customer")
)

// Config tunes the micro-batching scorer. Zero values mean defaults.
type Config struct {
	// MaxBatch is the largest micro-batch handed to the classifier
	// (default 256). Larger batches amortize dispatch; smaller bound
	// worst-case queueing delay.
	MaxBatch int
	// MaxDelay is how long the batcher waits for more items after the
	// first before flushing a partial batch (default 2ms). This is the
	// latency the slowest request in a quiet period pays for batching.
	MaxDelay time.Duration
	// QueueSize bounds the number of pending customer scores (default
	// 4096). Enqueueing past it fails fast with ErrQueueFull.
	QueueSize int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueSize == 0 {
		c.QueueSize = 4096
	}
	return c
}

// Scorer coalesces concurrent score requests into micro-batches.
type Scorer struct {
	clf     core.Classifier
	prov    VectorProvider
	cfg     Config
	metrics *Metrics

	mu     sync.RWMutex // guards queue sends against Close
	closed bool
	queue  chan *item
	wg     sync.WaitGroup
}

// item is one customer score pending in the queue.
type item struct {
	vec []float64
	pos int
	req *request
}

// request is the shared state of one Score call's items.
type request struct {
	out       []float64
	remaining int64
	mu        sync.Mutex
	canceled  bool
	done      chan struct{}
}

// NewScorer starts the batching loop. metrics may be nil (a private one is
// created); retrieve it with Metrics for the /metrics endpoint.
func NewScorer(clf core.Classifier, prov VectorProvider, cfg Config, m *Metrics) *Scorer {
	if m == nil {
		m = &Metrics{}
	}
	s := &Scorer{
		clf:     clf,
		prov:    prov,
		cfg:     cfg.withDefaults(),
		metrics: m,
		queue:   make(chan *item, cfg.withDefaults().QueueSize),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Metrics returns the scorer's instrumentation.
func (s *Scorer) Metrics() *Metrics { return s.metrics }

// Score resolves the customers' feature vectors (through the provider,
// typically cache-fronted), enqueues them for micro-batched scoring, and
// waits for the scores or the context. Scores are positionally aligned with
// ids and bit-identical to the batch Pipeline.Predict output for the same
// window. A full queue fails fast with ErrQueueFull; an expired context
// abandons the request (its items are skipped if not yet scored).
func (s *Scorer) Score(ctx context.Context, ids []int64) ([]float64, error) {
	start := time.Now()
	s.metrics.Requests.Add(1)
	if len(ids) == 0 {
		return nil, nil
	}
	if len(ids) > s.cfg.QueueSize {
		s.metrics.Errors.Add(1)
		return nil, fmt.Errorf("serve: request of %d customers exceeds queue capacity %d", len(ids), s.cfg.QueueSize)
	}
	vecs := make([][]float64, len(ids))
	for i, id := range ids {
		vec, ok := s.prov.Vector(id)
		if !ok {
			s.metrics.Errors.Add(1)
			return nil, fmt.Errorf("%w %d", ErrUnknownCustomer, id)
		}
		vecs[i] = vec
	}

	req := &request{out: make([]float64, len(ids)), remaining: int64(len(ids)), done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.metrics.Errors.Add(1)
		return nil, ErrClosed
	}
	for i := range ids {
		select {
		case s.queue <- &item{vec: vecs[i], pos: i, req: req}:
		default:
			s.mu.RUnlock()
			req.cancel()
			s.metrics.QueueFull.Add(1)
			s.metrics.Errors.Add(1)
			return nil, ErrQueueFull
		}
	}
	s.mu.RUnlock()

	select {
	case <-req.done:
		s.metrics.LatencyNs.Observe(uint64(time.Since(start)))
		return req.out, nil
	case <-ctx.Done():
		req.cancel()
		s.metrics.Canceled.Add(1)
		return nil, ctx.Err()
	}
}

// ScoreOne scores a single customer.
func (s *Scorer) ScoreOne(ctx context.Context, id int64) (float64, error) {
	out, err := s.Score(ctx, []int64{id})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Close drains the queue, stops the batching loop and waits for it. Score
// calls concurrent with Close either complete or return ErrClosed.
func (s *Scorer) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Closed reports whether Close has been called (readiness probes use it).
func (s *Scorer) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// loop is the batching goroutine: it blocks for the first item, then
// collects until MaxBatch or MaxDelay, then flushes — so an idle service
// adds no latency beyond one queue hop, and a busy one amortizes dispatch
// over whole batches.
func (s *Scorer) loop() {
	defer s.wg.Done()
	var batch []*item
	timer := time.NewTimer(s.cfg.MaxDelay)
	defer timer.Stop()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.MaxDelay)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case it, ok := <-s.queue:
				if !ok {
					break collect
				}
				batch = append(batch, it)
			case <-timer.C:
				break collect
			}
		}
		s.flush(batch)
	}
}

// flush scores one micro-batch and distributes results. Items whose
// request was canceled are dropped before scoring (their waiter is gone).
func (s *Scorer) flush(batch []*item) {
	live := batch[:0]
	for _, it := range batch {
		if !it.req.isCanceled() {
			live = append(live, it)
		}
	}
	if len(live) == 0 {
		return
	}
	vecs := make([][]float64, len(live))
	for i, it := range live {
		vecs[i] = it.vec
	}
	scores := s.clf.ScoreAll(vecs)
	for i, it := range live {
		it.req.deliver(it.pos, scores[i])
	}
	s.metrics.Batches.Add(1)
	s.metrics.Scored.Add(uint64(len(live)))
	s.metrics.BatchSize.Observe(uint64(len(live)))
}

func (r *request) cancel() {
	r.mu.Lock()
	r.canceled = true
	r.mu.Unlock()
}

func (r *request) isCanceled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.canceled
}

// deliver stores one positional score; the last delivery completes the
// request.
func (r *request) deliver(pos int, score float64) {
	r.out[pos] = score
	r.mu.Lock()
	r.remaining--
	last := r.remaining == 0
	r.mu.Unlock()
	if last {
		close(r.done)
	}
}

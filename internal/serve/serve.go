// Package serve is the online scoring layer over a fitted core.Pipeline.
// Single-customer requests take a synchronous fast path — feature-vector
// lookup plus a compiled-ensemble walk, zero allocations steady-state — when
// the classifier implements core.SingleScorer. Multi-customer requests
// coalesce into micro-batches on per-core shards (customer-hash affinity via
// table.ShardOf) that feed the vectorized ScoreAll path, behind a globally
// bounded queue with per-request cancellation and pooled request/item
// buffers. The paper's system applies the trained model to the full prepaid
// base monthly (§5-6); this package is the same scorer turned into a
// long-lived service (cf. Diaz-Aviles et al., "Towards Real-time Customer
// Experience Prediction for Telecommunication Operators").
//
// Determinism: every built-in classifier scores rows independently, so
// neither the batch a request lands in nor the path it takes (sync vs
// sharded queue) can change its scores — served outputs are bit-identical to
// batch Pipeline.Predict over the same window.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/table"
)

var (
	// ErrQueueFull is returned when the bounded request queue cannot accept
	// more work — shed load instead of buffering unboundedly.
	ErrQueueFull = errors.New("serve: scoring queue full")
	// ErrClosed is returned by Score after Close.
	ErrClosed = errors.New("serve: scorer closed")
	// ErrUnknownCustomer is wrapped into Score errors for ids outside the
	// provider's universe.
	ErrUnknownCustomer = errors.New("serve: unknown customer")
)

// Config tunes the scorer. Zero values mean defaults.
type Config struct {
	// MaxBatch is the largest micro-batch handed to the classifier
	// (default 256). Larger batches amortize dispatch; smaller bound
	// worst-case queueing delay.
	MaxBatch int
	// MaxDelay is how long a shard's batcher waits for more items after
	// the first before flushing a partial batch (default 2ms). This is the
	// latency the slowest request in a quiet period pays for batching.
	MaxDelay time.Duration
	// QueueSize bounds the number of customer scores pending across all
	// shards (default 4096). Enqueueing past it fails fast with
	// ErrQueueFull.
	QueueSize int
	// Shards is the number of batching shards, each with its own queue and
	// goroutine (default GOMAXPROCS). Items route to shards by customer
	// hash (table.ShardOf), so a hot customer's scores serialize on one
	// shard while the rest of the id space stays unaffected.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueSize == 0 {
		c.QueueSize = 4096
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	return c
}

// Scorer scores customers against a fitted classifier: synchronously for
// single lookups when the classifier supports it, micro-batched on sharded
// queues otherwise.
type Scorer struct {
	clf     core.Classifier
	single  core.SingleScorer // non-nil: the zero-alloc sync fast path
	prov    Provider
	cfg     Config
	metrics *Metrics

	mu     sync.RWMutex // guards shard sends against Close
	closed bool
	shards []chan *item
	// pending counts items sitting in shard queues (not yet picked up by a
	// batcher); the admission check bounds it by QueueSize, which also
	// guarantees shard channel sends never block.
	pending atomic.Int64
	wg      sync.WaitGroup

	itemPool sync.Pool // *item
	reqPool  sync.Pool // *request; canceled requests are never pooled
}

// item is one customer score pending in a shard queue.
type item struct {
	vec []float64
	pos int
	req *request
}

// request is the shared state of one Score call's items.
type request struct {
	out       []float64
	remaining atomic.Int64
	canceled  atomic.Bool
	// done is buffered (cap 1) and signaled — not closed — by the last
	// delivery, so the request struct can be pooled and reused.
	done chan struct{}
}

// NewScorer starts the shard batching loops. metrics may be nil (a private
// one is created); retrieve it with Metrics for the /metrics endpoint.
func NewScorer(clf core.Classifier, prov Provider, cfg Config, m *Metrics) *Scorer {
	if m == nil {
		m = &Metrics{}
	}
	cfg = cfg.withDefaults()
	s := &Scorer{
		clf:     clf,
		prov:    prov,
		cfg:     cfg,
		metrics: m,
		shards:  make([]chan *item, cfg.Shards),
	}
	s.single, _ = clf.(core.SingleScorer)
	s.itemPool.New = func() any { return new(item) }
	s.reqPool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for i := range s.shards {
		// Capacity QueueSize per shard: the global pending bound admits at
		// most QueueSize items total, so sends never block even if every
		// admitted item hashes to one shard.
		s.shards[i] = make(chan *item, cfg.QueueSize)
		s.wg.Add(1)
		go s.loop(s.shards[i])
	}
	return s
}

// Metrics returns the scorer's instrumentation.
func (s *Scorer) Metrics() *Metrics { return s.metrics }

// ScoreOne scores a single customer. With a SingleScorer classifier this is
// the synchronous fast path — vector lookup plus one compiled-ensemble walk,
// no queue hop, zero allocations — and bit-identical to the batched path.
func (s *Scorer) ScoreOne(ctx context.Context, id int64) (float64, error) {
	if s.single != nil {
		start := time.Now()
		s.metrics.Requests.Add(1)
		if err := ctx.Err(); err != nil {
			s.metrics.Canceled.Add(1)
			return 0, err
		}
		vec, ok := s.prov.Vector(id)
		if !ok {
			s.metrics.Errors.Add(1)
			return 0, unknownCustomer(id)
		}
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			s.metrics.Errors.Add(1)
			return 0, ErrClosed
		}
		score := s.single.Score(vec)
		s.mu.RUnlock()
		s.metrics.Scored.Add(1)
		s.metrics.SyncScored.Add(1)
		s.metrics.LatencyNs.Observe(uint64(time.Since(start)))
		return score, nil
	}
	out, err := s.Score(ctx, []int64{id})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// unknownCustomer is split out so the fast path's happy case stays free of
// the error allocation.
func unknownCustomer(id int64) error {
	return fmt.Errorf("%w %d", ErrUnknownCustomer, id)
}

// Score resolves the customers' feature vectors (through the provider,
// typically cache- or precomputed-matrix-backed), enqueues them for
// micro-batched scoring on their hash shards, and waits for the scores or
// the context. Scores are positionally aligned with ids and bit-identical to
// the batch Pipeline.Predict output for the same window. A full queue fails
// fast with ErrQueueFull; an expired context abandons the request (its items
// are skipped if not yet scored).
func (s *Scorer) Score(ctx context.Context, ids []int64) ([]float64, error) {
	if len(ids) == 1 && s.single != nil {
		// The sync fast path (which counts its own request metric); one
		// result allocation for the API shape.
		score, err := s.ScoreOne(ctx, ids[0])
		if err != nil {
			return nil, err
		}
		return []float64{score}, nil
	}
	start := time.Now()
	s.metrics.Requests.Add(1)
	if len(ids) == 0 {
		return nil, nil
	}
	if len(ids) > s.cfg.QueueSize {
		s.metrics.Errors.Add(1)
		return nil, fmt.Errorf("serve: request of %d customers exceeds queue capacity %d", len(ids), s.cfg.QueueSize)
	}
	vecs := make([][]float64, len(ids))
	for i, id := range ids {
		vec, ok := s.prov.Vector(id)
		if !ok {
			s.metrics.Errors.Add(1)
			return nil, unknownCustomer(id)
		}
		vecs[i] = vec
	}

	req := s.newRequest(len(ids))
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.metrics.Errors.Add(1)
		return nil, ErrClosed
	}
	nshards := len(s.shards)
	for i, id := range ids {
		if s.pending.Add(1) > int64(s.cfg.QueueSize) {
			s.pending.Add(-1)
			s.mu.RUnlock()
			// Items already enqueued score into a canceled request and are
			// dropped at flush; the request struct is abandoned to GC.
			req.canceled.Store(true)
			s.metrics.QueueFull.Add(1)
			s.metrics.Errors.Add(1)
			return nil, ErrQueueFull
		}
		it := s.itemPool.Get().(*item)
		it.vec, it.pos, it.req = vecs[i], i, req
		s.shards[table.ShardOf(id, nshards)] <- it
	}
	s.mu.RUnlock()

	select {
	case <-req.done:
		out := req.out
		req.out = nil // the result belongs to the caller, not the pool
		s.reqPool.Put(req)
		s.metrics.LatencyNs.Observe(uint64(time.Since(start)))
		return out, nil
	case <-ctx.Done():
		req.canceled.Store(true)
		s.metrics.Canceled.Add(1)
		return nil, ctx.Err()
	}
}

// newRequest takes a pooled request and resets it for n items. Pooled
// requests have always fully delivered (canceled ones are never returned),
// so done is empty. The result slice is always fresh — it is handed to the
// caller on completion, so it cannot be pooled.
func (s *Scorer) newRequest(n int) *request {
	req := s.reqPool.Get().(*request)
	req.out = make([]float64, n)
	req.remaining.Store(int64(n))
	req.canceled.Store(false)
	return req
}

// Close drains the shard queues, stops the batching loops and waits for
// them. Score calls concurrent with Close either complete or return
// ErrClosed.
func (s *Scorer) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, q := range s.shards {
			close(q)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Closed reports whether Close has been called (readiness probes use it).
func (s *Scorer) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// loop is one shard's batching goroutine: it blocks for the first item,
// then collects until MaxBatch or MaxDelay, then flushes — so an idle
// service adds no latency beyond one queue hop, and a busy one amortizes
// dispatch over whole batches. The batch and vector buffers live for the
// goroutine's lifetime, so steady-state batching allocates only what the
// classifier itself allocates.
func (s *Scorer) loop(queue chan *item) {
	defer s.wg.Done()
	batch := make([]*item, 0, s.cfg.MaxBatch)
	vecs := make([][]float64, 0, s.cfg.MaxBatch)
	timer := time.NewTimer(s.cfg.MaxDelay)
	defer timer.Stop()
	for {
		first, ok := <-queue
		if !ok {
			return
		}
		s.pending.Add(-1)
		batch = append(batch[:0], first)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.cfg.MaxDelay)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case it, ok := <-queue:
				if !ok {
					break collect
				}
				s.pending.Add(-1)
				batch = append(batch, it)
			case <-timer.C:
				break collect
			}
		}
		s.flush(batch, vecs)
	}
}

// flush scores one micro-batch and distributes results. Items whose
// request was canceled are dropped before scoring (their waiter is gone).
func (s *Scorer) flush(batch []*item, vecs [][]float64) {
	live := batch[:0]
	for _, it := range batch {
		if it.req.canceled.Load() {
			it.vec, it.req = nil, nil
			s.itemPool.Put(it)
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	vecs = vecs[:0]
	for _, it := range live {
		vecs = append(vecs, it.vec)
	}
	scores := s.clf.ScoreAll(vecs)
	for i, it := range live {
		it.req.deliver(it.pos, scores[i])
		it.vec, it.req = nil, nil
		s.itemPool.Put(it)
	}
	s.metrics.Batches.Add(1)
	s.metrics.Scored.Add(uint64(len(live)))
	s.metrics.BatchSize.Observe(uint64(len(live)))
}

// deliver stores one positional score; the last delivery signals the
// waiter. The signal is a buffered send, not a close, so the request can be
// pooled.
func (r *request) deliver(pos int, score float64) {
	r.out[pos] = score
	if r.remaining.Add(-1) == 0 {
		r.done <- struct{}{}
	}
}

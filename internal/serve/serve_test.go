package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/dataset"
	"telcochurn/internal/features"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// mapProvider is a deterministic in-memory Provider.
type mapProvider struct {
	vecs  map[int64][]float64
	calls atomic.Int64
}

func newMapProvider(n int) *mapProvider {
	p := &mapProvider{vecs: make(map[int64][]float64, n)}
	for i := 0; i < n; i++ {
		p.vecs[int64(i)] = []float64{float64(i), float64(i) * 0.5}
	}
	return p
}

func (p *mapProvider) Vector(id int64) ([]float64, bool) {
	p.calls.Add(1)
	v, ok := p.vecs[id]
	return v, ok
}

func (p *mapProvider) FeatureNames() []string { return []string{"a", "b"} }

func (p *mapProvider) IDs() []int64 {
	ids := make([]int64, 0, len(p.vecs))
	for id := range p.vecs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (p *mapProvider) Info() ProviderInfo { return ProviderInfo{Source: "map", Rows: len(p.vecs)} }

func (p *mapProvider) Invalidate(int64) {}

// sumClassifier scores each row as a pure per-row function, like every
// real classifier in the repo.
type sumClassifier struct {
	batches atomic.Int64
	entered chan struct{} // when non-nil, signals each ScoreAll entry
	gate    chan struct{} // when non-nil, ScoreAll blocks until the gate closes
}

func (c *sumClassifier) Fit(*dataset.Dataset) error { return nil }
func (c *sumClassifier) Name() string               { return "sum" }
func (c *sumClassifier) ScoreAll(x [][]float64) []float64 {
	if c.entered != nil {
		c.entered <- struct{}{}
	}
	if c.gate != nil {
		<-c.gate
	}
	c.batches.Add(1)
	out := make([]float64, len(x))
	for i, row := range x {
		s := 0.0
		for _, v := range row {
			s += v
		}
		out[i] = s
	}
	return out
}

func TestScorerParityAndBatching(t *testing.T) {
	prov := newMapProvider(500)
	clf := &sumClassifier{}
	s := NewScorer(clf, prov, Config{MaxBatch: 64, MaxDelay: time.Millisecond, QueueSize: 2048}, nil)
	defer s.Close()

	// Many concurrent requests with overlapping ids.
	var wg sync.WaitGroup
	errs := make([]error, 20)
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]int64, 25)
			for i := range ids {
				ids[i] = int64((g*13 + i*7) % 500)
			}
			out, err := s.Score(context.Background(), ids)
			if err != nil {
				errs[g] = err
				return
			}
			for i, id := range ids {
				want := float64(id) + float64(id)*0.5
				if out[i] != want {
					errs[g] = fmt.Errorf("id %d: got %v want %v", id, out[i], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if got := m.Scored.Load(); got != 20*25 {
		t.Errorf("scored = %d, want %d", got, 20*25)
	}
	// Coalescing must have happened: far fewer classifier calls than items.
	if b := clf.batches.Load(); b >= 20*25 {
		t.Errorf("no batching: %d classifier calls for %d items", b, 20*25)
	}
	if m.BatchSize.Quantile(1) < 2 {
		t.Error("max batch size < 2: requests never coalesced")
	}
}

func TestScorerUnknownCustomer(t *testing.T) {
	s := NewScorer(&sumClassifier{}, newMapProvider(3), Config{}, nil)
	defer s.Close()
	if _, err := s.Score(context.Background(), []int64{0, 99}); err == nil {
		t.Fatal("want error for unknown customer")
	}
	if got := s.Metrics().Errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}

func TestScorerContextCancel(t *testing.T) {
	gate := make(chan struct{})
	clf := &sumClassifier{entered: make(chan struct{}, 8), gate: gate}
	// One shard, so the gated first request deterministically blocks the
	// batcher the second request's item lands on.
	s := NewScorer(clf, newMapProvider(10), Config{MaxBatch: 1, MaxDelay: time.Microsecond, Shards: 1}, nil)

	// First request occupies the classifier at the gate, so the second
	// cannot be scored before its context is seen as canceled.
	go s.Score(context.Background(), []int64{0})
	<-clf.entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Score(ctx, []int64{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Metrics().Canceled.Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	close(gate)
	s.Close()
	// The canceled item must have been dropped, not scored.
	if got := s.Metrics().Scored.Load(); got != 1 {
		t.Errorf("scored = %d, want 1 (canceled item dropped)", got)
	}
}

func TestScorerQueueFull(t *testing.T) {
	gate := make(chan struct{})
	clf := &sumClassifier{entered: make(chan struct{}, 8), gate: gate}
	s := NewScorer(clf, newMapProvider(100), Config{MaxBatch: 1, MaxDelay: time.Hour, QueueSize: 1, Shards: 1}, nil)

	// First request is pulled by the batcher and parks at the gate.
	done1 := make(chan error, 1)
	go func() {
		_, err := s.Score(context.Background(), []int64{1})
		done1 <- err
	}()
	<-clf.entered
	// Second request fills the one admission slot.
	done2 := make(chan error, 1)
	go func() {
		_, err := s.Score(context.Background(), []int64{2})
		done2 <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// Third request must shed immediately.
	if _, err := s.Score(context.Background(), []int64{3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Requests larger than the queue are rejected up front.
	if _, err := s.Score(context.Background(), []int64{4, 5}); err == nil || errors.Is(err, ErrQueueFull) {
		t.Errorf("oversized request err = %v, want a capacity error", err)
	}
	close(gate)
	if err := <-done1; err != nil {
		t.Errorf("request 1: %v", err)
	}
	if err := <-done2; err != nil {
		t.Errorf("request 2: %v", err)
	}
	s.Close()
	if got := s.Metrics().QueueFull.Load(); got != 1 {
		t.Errorf("queue_full = %d, want 1", got)
	}
}

func TestScorerClosed(t *testing.T) {
	s := NewScorer(&sumClassifier{}, newMapProvider(10), Config{}, nil)
	out, err := s.Score(context.Background(), []int64{1, 2})
	if err != nil || len(out) != 2 {
		t.Fatalf("score before close: %v %v", out, err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Score(context.Background(), []int64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCacheTTL(t *testing.T) {
	prov := newMapProvider(10)
	m := &Metrics{}
	c := NewCache(prov, time.Minute, m)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	v1, ok := c.Vector(3)
	if !ok || v1[0] != 3 {
		t.Fatalf("miss fetch: %v %v", v1, ok)
	}
	if _, ok := c.Vector(3); !ok {
		t.Fatal("hit fetch failed")
	}
	if prov.calls.Load() != 1 {
		t.Errorf("provider calls = %d, want 1 (second read cached)", prov.calls.Load())
	}
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", m.CacheHits.Load(), m.CacheMisses.Load())
	}

	// Past the TTL the entry is refetched.
	now = now.Add(2 * time.Minute)
	if _, ok := c.Vector(3); !ok {
		t.Fatal("post-expiry fetch failed")
	}
	if prov.calls.Load() != 2 {
		t.Errorf("provider calls = %d, want 2 after expiry", prov.calls.Load())
	}

	// Unknown customers are not cached.
	if _, ok := c.Vector(404); ok {
		t.Fatal("unknown customer resolved")
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("cache len after purge = %d", c.Len())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if got := h.count.Load(); got != 5 {
		t.Errorf("count = %d", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Errorf("p50 = %v, want within bucket of 3", p50)
	}
	if max := h.Quantile(1); max < 512 || max > 1024 {
		t.Errorf("p100 = %v, want within bucket of 1000", max)
	}
	snap := h.Snapshot()
	if snap["max"].(uint64) != 1000 {
		t.Errorf("max = %v", snap["max"])
	}
}

// TestServeMatchesPipelinePredict is the determinism contract end to end:
// a real pipeline, served through the cache + micro-batcher in many small
// concurrent requests, must emit bit-identical scores to one batch
// Pipeline.Predict call over the same window.
func TestServeMatchesPipelinePredict(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 300
	cfg.Months = 4
	cfg.Seed = 11
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 10, MinLeafSamples: 10, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := features.MonthWindow(3, cfg.DaysPerMonth)
	want, err := pipe.Predict(src, win)
	if err != nil {
		t.Fatal(err)
	}
	wantByID := make(map[int64]float64, len(want.IDs))
	for i, id := range want.IDs {
		wantByID[id] = want.Scores[i]
	}

	prov, err := NewFrameProvider(pipe, src, win)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(pipe.Classifier(), NewCache(prov, time.Minute, nil), Config{MaxBatch: 32, MaxDelay: time.Millisecond}, nil)
	defer s.Close()

	ids := prov.IDs()
	var wg sync.WaitGroup
	var failed atomic.Int64
	const chunk = 17
	for start := 0; start < len(ids); start += chunk {
		end := start + chunk
		if end > len(ids) {
			end = len(ids)
		}
		wg.Add(1)
		go func(part []int64) {
			defer wg.Done()
			out, err := s.Score(context.Background(), part)
			if err != nil {
				failed.Add(1)
				return
			}
			for i, id := range part {
				if out[i] != wantByID[id] {
					failed.Add(1)
					return
				}
			}
		}(ids[start:end])
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatal("served scores diverged from batch Pipeline.Predict")
	}
}

// servingFixture fits a pipeline, precomputes its serving vectors, and
// returns the vectors-backed provider — the production churnd configuration.
func servingFixture(tb testing.TB, trees int) (*core.Pipeline, *VectorsProvider) {
	tb.Helper()
	cfg := synth.DefaultConfig()
	cfg.Customers = 400
	cfg.Months = 4
	cfg.Seed = 11
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: trees, MinLeafSamples: 10, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := pipe.Precompute(src, features.MonthWindow(3, cfg.DaysPerMonth), 3); err != nil {
		tb.Fatal(err)
	}
	prov, err := NewVectorsProvider(pipe)
	if err != nil {
		tb.Fatal(err)
	}
	return pipe, prov
}

// TestScoreOneFastPath: the sync fast path (SingleScorer over precomputed
// vectors) returns bit-identical scores to the batched queue path and to
// PredictVectors, and allocates nothing per call.
func TestScoreOneFastPath(t *testing.T) {
	pipe, prov := servingFixture(t, 10)
	want, err := pipe.PredictVectors()
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(pipe.Classifier(), prov, Config{}, nil)
	defer s.Close()
	ctx := context.Background()
	for i, id := range want.IDs {
		got, err := s.ScoreOne(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Scores[i] {
			t.Fatalf("ScoreOne(%d) = %v, want %v", id, got, want.Scores[i])
		}
	}
	// Batched requests agree with the fast path.
	out, err := s.Score(ctx, want.IDs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.IDs {
		if out[i] != want.Scores[i] {
			t.Fatalf("batched score %d diverged from PredictVectors", i)
		}
	}
	if s.Metrics().SyncScored.Load() == 0 {
		t.Error("fast path never taken for single-id requests")
	}
	if _, err := s.ScoreOne(ctx, -999); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatalf("unknown customer err = %v", err)
	}

	id := want.IDs[0]
	if n := testing.AllocsPerRun(300, func() {
		if _, err := s.ScoreOne(ctx, id); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ScoreOne allocates %.1f/op, want 0", n)
	}
}

// TestFallbackProvider: the precomputed matrix wins when it knows the
// customer; everyone else falls through to the secondary.
func TestFallbackProvider(t *testing.T) {
	primary := newMapProvider(3) // ids 0..2
	secondary := &mapProvider{vecs: map[int64][]float64{
		1:  {9, 9}, // shadowed by primary
		50: {5, 5},
	}}
	fp, err := NewFallbackProvider(primary, secondary)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fp.Vector(1); !ok || v[0] != 1 {
		t.Fatalf("primary not preferred: %v %v", v, ok)
	}
	if v, ok := fp.Vector(50); !ok || v[0] != 5 {
		t.Fatalf("fallback failed: %v %v", v, ok)
	}
	if _, ok := fp.Vector(404); ok {
		t.Fatal("unknown customer resolved")
	}
	if _, err := NewFallbackProvider(primary, nil); err == nil {
		t.Fatal("nil secondary accepted")
	}
}

// TestScorerShardedParity hammers a multi-shard scorer from many goroutines
// with mixed single and batch requests; every score must stay bit-identical
// to PredictVectors.
func TestScorerShardedParity(t *testing.T) {
	pipe, prov := servingFixture(t, 10)
	want, err := pipe.PredictVectors()
	if err != nil {
		t.Fatal(err)
	}
	wantByID := make(map[int64]float64, len(want.IDs))
	for i, id := range want.IDs {
		wantByID[id] = want.Scores[i]
	}
	s := NewScorer(pipe.Classifier(), prov, Config{Shards: 4, MaxBatch: 16, MaxDelay: 100 * time.Microsecond}, nil)
	defer s.Close()

	ids := prov.IDs()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for rep := 0; rep < 20; rep++ {
				if g%2 == 0 {
					id := ids[(g*31+rep*7)%len(ids)]
					got, err := s.ScoreOne(ctx, id)
					if err != nil || got != wantByID[id] {
						failed.Add(1)
						return
					}
				} else {
					part := make([]int64, 9)
					for i := range part {
						part[i] = ids[(g*17+rep*5+i)%len(ids)]
					}
					out, err := s.Score(ctx, part)
					if err != nil {
						failed.Add(1)
						return
					}
					for i, id := range part {
						if out[i] != wantByID[id] {
							failed.Add(1)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatal("sharded serving diverged from PredictVectors")
	}
}

// BenchmarkServeScore reports serving latency in the production churnd
// configuration — precomputed feature vectors plus compiled forests:
// "single" issues one-customer requests on the sync fast path (the 0
// allocs/op contract lives here), "batch64" issues 64-customer requests
// through the sharded micro-batch path. p50-ns/req is read off the latency
// histogram at the end of each run.
func BenchmarkServeScore(b *testing.B) {
	pipe, prov := servingFixture(b, 50)
	ids := prov.IDs()

	b.Run("single", func(b *testing.B) {
		s := NewScorer(pipe.Classifier(), prov, Config{}, nil)
		defer s.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.ScoreOne(ctx, ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(s.Metrics().LatencyNs.Quantile(0.5), "p50-ns/req")
		b.ReportMetric(1, "req-size")
	})
	b.Run("batch64", func(b *testing.B) {
		s := NewScorer(pipe.Classifier(), prov, Config{MaxBatch: 256, MaxDelay: 200 * time.Microsecond}, nil)
		defer s.Close()
		ctx := context.Background()
		req := make([]int64, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range req {
				req[j] = ids[(i*64+j)%len(ids)]
			}
			if _, err := s.Score(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(s.Metrics().LatencyNs.Quantile(0.5), "p50-ns/req")
		b.ReportMetric(64, "req-size")
	})
}

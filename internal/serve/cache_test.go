package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSweepEvictsExpired drives the cache past its sweep threshold
// with expired entries and checks the sweep actually reclaims them.
func TestCacheSweepEvictsExpired(t *testing.T) {
	prov := newMapProvider(3000)
	c := NewCache(prov, time.Minute, nil)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	// Fill to just under the sweep threshold, then expire everything.
	for id := int64(0); id < 1023; id++ {
		if _, ok := c.Vector(id); !ok {
			t.Fatal("fill fetch failed")
		}
	}
	if c.Len() != 1023 {
		t.Fatalf("len = %d, want 1023", c.Len())
	}
	now = now.Add(2 * time.Minute)

	// The insert that crosses the threshold sweeps the 1023 expired
	// entries; only itself (fresh) survives.
	if _, ok := c.Vector(2000); !ok {
		t.Fatal("threshold fetch failed")
	}
	if c.Len() != 1 {
		t.Errorf("len after sweep = %d, want 1", c.Len())
	}

	// Fresh entries survive a sweep.
	for id := int64(0); id < 1100; id++ {
		c.Vector(id)
	}
	if got := c.Len(); got < 1100 {
		t.Errorf("len = %d, want >= 1100 fresh entries retained", got)
	}
}

// TestCacheConcurrentReadersWriters hammers one cache from many goroutines
// while the clock advances (expiring entries mid-flight) and purges race
// lookups. Run under -race this is the cache's thread-safety contract; the
// value assertions catch torn or cross-wired entries.
func TestCacheConcurrentReadersWriters(t *testing.T) {
	const (
		workers = 8
		ops     = 4000
		ids     = 256
	)
	prov := newMapProvider(ids)
	m := &Metrics{}
	c := NewCache(prov, 10*time.Second, m)
	var tick atomic.Int64
	tick.Store(1_000_000)
	c.now = func() time.Time { return time.Unix(tick.Load(), 0) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				id := int64(rng.Intn(ids))
				v, ok := c.Vector(id)
				if !ok {
					t.Errorf("worker %d: known id %d missed", w, id)
					return
				}
				if v[0] != float64(id) || v[1] != float64(id)*0.5 {
					t.Errorf("worker %d: id %d got vector %v — cross-wired entry", w, id, v)
					return
				}
				switch i % 500 {
				case 13:
					tick.Add(11) // expire everything cached so far
				case 251:
					c.Purge()
				case 377:
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()

	if hits, misses := m.CacheHits.Load(), m.CacheMisses.Load(); hits+misses != workers*ops {
		t.Errorf("hits+misses = %d, want %d", hits+misses, workers*ops)
	} else if hits == 0 || misses == 0 {
		t.Errorf("degenerate mix: hits=%d misses=%d — expiry/purge never exercised", hits, misses)
	}
	if c.Len() > ids {
		t.Errorf("len = %d exceeds universe %d", c.Len(), ids)
	}
}

package serve

import (
	"errors"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
)

// Provider is the one serving-vector interface: every vector source — the
// precomputed artifact snapshot, the warehouse frame, the TTL cache, the
// snapshot+frame fallback chain, and the mutable event overlay — implements
// it, so the daemon composes them freely and reports them uniformly.
// Returned slices are read-only and must not be mutated by callers.
type Provider interface {
	// Vector returns the feature vector for a customer, or false if the
	// customer is not in the provider's universe.
	Vector(id int64) ([]float64, bool)
	// FeatureNames returns the vector schema, aligned with Vector output.
	FeatureNames() []string
	// IDs returns every scorable customer, in serving order.
	IDs() []int64
	// Info describes the provider chain for /healthz, /readyz and /metrics.
	Info() ProviderInfo
	// Invalidate drops any derived state held for the customer (cache
	// entries, event overrides) so the next Vector resolves fresh. A no-op
	// on immutable providers.
	Invalidate(id int64)
}

// ProviderInfo is the uniform self-description every provider reports.
type ProviderInfo struct {
	// Source names the vector path: "vectors", "frame", "vectors+frame" —
	// leaf names joined by the chain that composes them.
	Source string
	// Rows is the scorable-universe size.
	Rows int
	// Degradation is the served window's imputed-group mask (zero when
	// healthy or when the provider never touches the warehouse).
	Degradation features.Degradation
	// Overridden counts customers currently served from live event
	// overrides rather than the underlying snapshot (see Overlay).
	Overridden int
}

// VectorsProvider serves feature vectors straight out of a pipeline's
// precomputed matrix (core.FeatureVectors, persisted in v2 artifacts) —
// a binary search plus a slice view per lookup, zero allocations, no
// warehouse access. This is the serving-path ideal: the vectors are the
// exact strict-build frame rows from precompute time, so scores off them
// are bit-identical to the frame path over the same window.
type VectorsProvider struct {
	vecs  *core.FeatureVectors
	names []string
}

// ErrNoVectors mirrors core.ErrNoVectors for callers probing whether a
// loaded artifact can serve without a warehouse.
var ErrNoVectors = core.ErrNoVectors

// NewVectorsProvider wraps the pipeline's precomputed matrix; it fails with
// ErrNoVectors when the artifact carries none (pre-v2, or trained without
// -precompute).
func NewVectorsProvider(p *core.Pipeline) (*VectorsProvider, error) {
	v := p.Vectors()
	if v == nil {
		return nil, ErrNoVectors
	}
	return &VectorsProvider{vecs: v, names: p.FeatureNames()}, nil
}

// Vector implements Provider without allocating.
func (vp *VectorsProvider) Vector(id int64) ([]float64, bool) { return vp.vecs.Vector(id) }

// FeatureNames implements Provider.
func (vp *VectorsProvider) FeatureNames() []string { return vp.names }

// IDs returns every customer in the snapshot, ascending.
func (vp *VectorsProvider) IDs() []int64 { return vp.vecs.IDs() }

// NumRows returns the snapshot size.
func (vp *VectorsProvider) NumRows() int { return vp.vecs.NumRows() }

// Month returns the feature month the snapshot was precomputed from.
func (vp *VectorsProvider) Month() int { return vp.vecs.Month() }

// Info implements Provider.
func (vp *VectorsProvider) Info() ProviderInfo {
	return ProviderInfo{Source: "vectors", Rows: vp.vecs.NumRows()}
}

// Invalidate implements Provider; the snapshot is immutable, so there is
// nothing to drop.
func (vp *VectorsProvider) Invalidate(int64) {}

// FallbackProvider resolves vectors from a primary provider (typically the
// precomputed matrix) and falls back to a secondary (typically the frame
// path) for customers the primary does not know — e.g. customers who joined
// after the artifact was trained, or a degraded-mode frame widened beyond
// the snapshot.
type FallbackProvider struct {
	primary   Provider
	secondary Provider
	ids       []int64
}

// NewFallbackProvider chains two providers. Their schemas must agree; the
// caller is expected to have checked (churnd compares checksums at load).
func NewFallbackProvider(primary, secondary Provider) (*FallbackProvider, error) {
	if primary == nil || secondary == nil {
		return nil, errors.New("serve: fallback provider needs both providers")
	}
	// The scorable universe is the union: secondary (the frame, the served
	// window's truth) first in its order, then primary-only ids (snapshot
	// customers the window no longer carries).
	ids := append([]int64(nil), secondary.IDs()...)
	seen := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		seen[id] = struct{}{}
	}
	for _, id := range primary.IDs() {
		if _, ok := seen[id]; !ok {
			ids = append(ids, id)
		}
	}
	return &FallbackProvider{primary: primary, secondary: secondary, ids: ids}, nil
}

// Vector implements Provider: primary first, then secondary.
func (f *FallbackProvider) Vector(id int64) ([]float64, bool) {
	if vec, ok := f.primary.Vector(id); ok {
		return vec, true
	}
	return f.secondary.Vector(id)
}

// FeatureNames implements Provider.
func (f *FallbackProvider) FeatureNames() []string { return f.primary.FeatureNames() }

// IDs implements Provider.
func (f *FallbackProvider) IDs() []int64 { return f.ids }

// Info implements Provider, joining the leaf sources.
func (f *FallbackProvider) Info() ProviderInfo {
	pi, si := f.primary.Info(), f.secondary.Info()
	return ProviderInfo{
		Source:      pi.Source + "+" + si.Source,
		Rows:        len(f.ids),
		Degradation: pi.Degradation | si.Degradation,
		Overridden:  pi.Overridden + si.Overridden,
	}
}

// Invalidate implements Provider, propagating to both branches.
func (f *FallbackProvider) Invalidate(id int64) {
	f.primary.Invalidate(id)
	f.secondary.Invalidate(id)
}

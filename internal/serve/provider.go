package serve

import (
	"errors"

	"telcochurn/internal/core"
)

// VectorsProvider serves feature vectors straight out of a pipeline's
// precomputed matrix (core.FeatureVectors, persisted in v2 artifacts) —
// a binary search plus a slice view per lookup, zero allocations, no
// warehouse access. This is the serving-path ideal: the vectors are the
// exact strict-build frame rows from precompute time, so scores off them
// are bit-identical to the frame path over the same window.
type VectorsProvider struct {
	vecs  *core.FeatureVectors
	names []string
}

// ErrNoVectors mirrors core.ErrNoVectors for callers probing whether a
// loaded artifact can serve without a warehouse.
var ErrNoVectors = core.ErrNoVectors

// NewVectorsProvider wraps the pipeline's precomputed matrix; it fails with
// ErrNoVectors when the artifact carries none (pre-v2, or trained without
// -precompute).
func NewVectorsProvider(p *core.Pipeline) (*VectorsProvider, error) {
	v := p.Vectors()
	if v == nil {
		return nil, ErrNoVectors
	}
	return &VectorsProvider{vecs: v, names: p.FeatureNames()}, nil
}

// Vector implements VectorProvider without allocating.
func (vp *VectorsProvider) Vector(id int64) ([]float64, bool) { return vp.vecs.Vector(id) }

// FeatureNames implements VectorProvider.
func (vp *VectorsProvider) FeatureNames() []string { return vp.names }

// IDs returns every customer in the snapshot, ascending.
func (vp *VectorsProvider) IDs() []int64 { return vp.vecs.IDs() }

// NumRows returns the snapshot size.
func (vp *VectorsProvider) NumRows() int { return vp.vecs.NumRows() }

// Month returns the feature month the snapshot was precomputed from.
func (vp *VectorsProvider) Month() int { return vp.vecs.Month() }

// FallbackProvider resolves vectors from a primary provider (typically the
// precomputed matrix) and falls back to a secondary (typically the frame
// path) for customers the primary does not know — e.g. customers who joined
// after the artifact was trained, or a degraded-mode frame widened beyond
// the snapshot.
type FallbackProvider struct {
	primary   VectorProvider
	secondary VectorProvider
}

// NewFallbackProvider chains two providers. Their schemas must agree; the
// caller is expected to have checked (churnd compares checksums at load).
func NewFallbackProvider(primary, secondary VectorProvider) (*FallbackProvider, error) {
	if primary == nil || secondary == nil {
		return nil, errors.New("serve: fallback provider needs both providers")
	}
	return &FallbackProvider{primary: primary, secondary: secondary}, nil
}

// Vector implements VectorProvider: primary first, then secondary.
func (f *FallbackProvider) Vector(id int64) ([]float64, bool) {
	if vec, ok := f.primary.Vector(id); ok {
		return vec, true
	}
	return f.secondary.Vector(id)
}

// FeatureNames implements VectorProvider.
func (f *FallbackProvider) FeatureNames() []string { return f.primary.FeatureNames() }

package serve

import (
	"errors"
	"sync"
)

// Overlay is the mutable top of the provider chain: a per-customer
// override map on an immutable inner provider. Streamed events refresh one
// customer's vector by installing an override (Override); a full refresh
// rebuilds the inner provider off-line and swaps it in atomically (Swap),
// recomputing or retiring the overrides against the new base. The scorer
// holds the Overlay for the engine's lifetime, so neither path disturbs
// in-flight scoring — lookups take a read lock, mutations a write lock.
type Overlay struct {
	metrics *Metrics

	mu    sync.RWMutex
	inner Provider
	over  map[int64][]float64
}

// NewOverlay wraps inner; metrics may be nil (the stale_vectors gauge is
// skipped).
func NewOverlay(inner Provider, m *Metrics) *Overlay {
	return &Overlay{metrics: m, inner: inner, over: map[int64][]float64{}}
}

// Vector implements Provider: the customer's live override when one is
// installed, the inner provider otherwise.
func (o *Overlay) Vector(id int64) ([]float64, bool) {
	o.mu.RLock()
	if vec, ok := o.over[id]; ok {
		o.mu.RUnlock()
		return vec, true
	}
	inner := o.inner
	o.mu.RUnlock()
	return inner.Vector(id)
}

// Base resolves the customer's vector from the inner provider only,
// bypassing overrides — the snapshot row incremental refresh starts from.
func (o *Overlay) Base(id int64) ([]float64, bool) {
	o.mu.RLock()
	inner := o.inner
	o.mu.RUnlock()
	return inner.Vector(id)
}

// FeatureNames implements Provider.
func (o *Overlay) FeatureNames() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.inner.FeatureNames()
}

// IDs implements Provider. Overrides never widen the universe (events for
// unknown customers maintain nothing), so the inner universe stands.
func (o *Overlay) IDs() []int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.inner.IDs()
}

// Info implements Provider: the inner chain's info plus the live override
// count.
func (o *Overlay) Info() ProviderInfo {
	o.mu.RLock()
	defer o.mu.RUnlock()
	info := o.inner.Info()
	info.Overridden += len(o.over)
	return info
}

// Override installs (or replaces) one customer's serving vector. The slice
// is retained; the caller must not mutate it afterwards.
func (o *Overlay) Override(id int64, vec []float64) {
	o.mu.Lock()
	o.over[id] = vec
	o.gauge()
	o.mu.Unlock()
}

// Invalidate implements Provider: drops the customer's override and
// propagates down the chain.
func (o *Overlay) Invalidate(id int64) {
	o.mu.Lock()
	delete(o.over, id)
	o.gauge()
	inner := o.inner
	o.mu.Unlock()
	inner.Invalidate(id)
}

// Overridden returns the number of live overrides.
func (o *Overlay) Overridden() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.over)
}

// OverriddenIDs returns the customers currently served from overrides, in
// no particular order.
func (o *Overlay) OverriddenIDs() []int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ids := make([]int64, 0, len(o.over))
	for id := range o.over {
		ids = append(ids, id)
	}
	return ids
}

// Swap atomically replaces the inner provider with a freshly built one.
// When recompute is nil every override is retired — the new base fully
// covers the events that produced them. Otherwise each overridden customer
// is re-derived against the new base (events kept arriving while the new
// base was building): recompute returns the replacement vector, or nil to
// retire the override; an error aborts the swap with the old provider and
// overrides untouched. Lookups block only for the recompute loop, which is
// O(overridden), not O(universe).
func (o *Overlay) Swap(inner Provider, recompute func(id int64, base []float64) ([]float64, error)) error {
	if inner == nil {
		return errors.New("serve: overlay swap needs a provider")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	next := map[int64][]float64{}
	if recompute != nil {
		for id := range o.over {
			base, ok := inner.Vector(id)
			if !ok {
				continue // fell out of the rebuilt universe
			}
			vec, err := recompute(id, base)
			if err != nil {
				return err
			}
			if vec != nil {
				next[id] = vec
			}
		}
	}
	o.inner = inner
	o.over = next
	o.gauge()
	return nil
}

// gauge publishes the override count; callers hold o.mu.
func (o *Overlay) gauge() {
	if o.metrics != nil {
		o.metrics.StaleVectors.Store(uint64(len(o.over)))
	}
}

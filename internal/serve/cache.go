package serve

import (
	"sync"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
)

// FrameProvider serves vectors out of a wide-table frame built once from a
// pipeline over one observation window — the batch feature path reused
// verbatim, so served vectors are the exact rows Pipeline.Predict scores.
type FrameProvider struct {
	frame *features.Frame
	deg   features.Degradation
}

// NewFrameProvider builds the window's frame with the pipeline's fitted
// feature models (no refitting — test-month semantics).
func NewFrameProvider(p *core.Pipeline, src core.Source, win features.Window) (*FrameProvider, error) {
	frame, err := p.BuildFrame(src, win, false, nil)
	if err != nil {
		return nil, err
	}
	return &FrameProvider{frame: frame}, nil
}

// NewFrameProviderDegraded builds the window's frame in degraded mode:
// unavailable raw tables are imputed around instead of failing the build,
// and the provider remembers the degradation mask so the daemon can report
// it (Degradation, /metrics). With everything available the frame is
// bit-identical to NewFrameProvider's.
func NewFrameProviderDegraded(p *core.Pipeline, src core.Source, win features.Window) (*FrameProvider, error) {
	frame, deg, err := p.BuildFrameDegraded(src, win)
	if err != nil {
		return nil, err
	}
	return &FrameProvider{frame: frame, deg: deg}, nil
}

// Degradation reports which feature groups of the served window were built
// from imputed data (zero for a healthy build).
func (fp *FrameProvider) Degradation() features.Degradation { return fp.deg }

// Vector implements Provider.
func (fp *FrameProvider) Vector(id int64) ([]float64, bool) { return fp.frame.Row(id) }

// FeatureNames implements Provider.
func (fp *FrameProvider) FeatureNames() []string { return fp.frame.Names() }

// IDs returns every scorable customer in the window, in frame row order.
func (fp *FrameProvider) IDs() []int64 { return fp.frame.IDs() }

// NumRows returns the number of scorable customers.
func (fp *FrameProvider) NumRows() int { return fp.frame.NumRows() }

// Info implements Provider.
func (fp *FrameProvider) Info() ProviderInfo {
	return ProviderInfo{Source: "frame", Rows: fp.frame.NumRows(), Degradation: fp.deg}
}

// Invalidate implements Provider; the frame is a fixed snapshot.
func (fp *FrameProvider) Invalidate(int64) {}

// Cache is an in-memory per-customer feature-vector cache with TTL,
// fronting a Provider. Entries expire CacheTTL after they were fetched, so
// a provider refreshed behind the cache (e.g. a new warehouse window) is
// picked up within one TTL; Invalidate drops one customer immediately (the
// streaming-ingest path). Negative lookups are not cached.
type Cache struct {
	base    Provider
	ttl     time.Duration
	now     func() time.Time // test hook; time.Now in production
	metrics *Metrics

	mu      sync.Mutex
	entries map[int64]cacheEntry
	sweepAt int // purge expired entries when the map grows past this
}

type cacheEntry struct {
	vec     []float64
	expires time.Time
}

// NewCache wraps base with a TTL cache. A nil metrics is allowed (counters
// are skipped); ttl <= 0 disables caching entirely and passes through.
func NewCache(base Provider, ttl time.Duration, m *Metrics) *Cache {
	return &Cache{
		base:    base,
		ttl:     ttl,
		now:     time.Now,
		metrics: m,
		entries: make(map[int64]cacheEntry),
		sweepAt: 1024,
	}
}

// Vector implements Provider, serving from cache when fresh.
func (c *Cache) Vector(id int64) ([]float64, bool) {
	if c.ttl <= 0 {
		return c.base.Vector(id)
	}
	now := c.now()
	c.mu.Lock()
	if e, ok := c.entries[id]; ok && now.Before(e.expires) {
		c.mu.Unlock()
		if c.metrics != nil {
			c.metrics.CacheHits.Add(1)
		}
		return e.vec, true
	}
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.CacheMisses.Add(1)
	}
	vec, ok := c.base.Vector(id)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.entries[id] = cacheEntry{vec: vec, expires: now.Add(c.ttl)}
	if len(c.entries) >= c.sweepAt {
		for k, e := range c.entries {
			if !now.Before(e.expires) {
				delete(c.entries, k)
			}
		}
		c.sweepAt = 2*len(c.entries) + 1024
	}
	c.mu.Unlock()
	return vec, true
}

// FeatureNames implements Provider.
func (c *Cache) FeatureNames() []string { return c.base.FeatureNames() }

// IDs implements Provider.
func (c *Cache) IDs() []int64 { return c.base.IDs() }

// Info implements Provider, passing the base through — the cache changes
// latency, not the universe.
func (c *Cache) Info() ProviderInfo { return c.base.Info() }

// Invalidate drops the customer's cached entry (and propagates down the
// chain), so the next lookup re-resolves through the base provider.
func (c *Cache) Invalidate(id int64) {
	c.mu.Lock()
	delete(c.entries, id)
	c.mu.Unlock()
	c.base.Invalidate(id)
}

// Len returns the number of cached entries (fresh or expired-but-unswept).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[int64]cacheEntry)
}

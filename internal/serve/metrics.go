package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"telcochurn/internal/features"
)

// Metrics is the scoring service's instrumentation: lock-free counters and
// log-scale histograms, snapshotted as a flat JSON-friendly map in the
// expvar style (stdlib only, scraped via GET /metrics).
type Metrics struct {
	// Requests counts Score calls; Scored counts individual customer
	// scores produced; SyncScored counts the subset served on the
	// synchronous single-score fast path (no queue hop); Batches counts
	// classifier invocations on the micro-batch path.
	Requests   atomic.Uint64
	Scored     atomic.Uint64
	SyncScored atomic.Uint64
	Batches    atomic.Uint64
	// Errors counts failed Score calls (unknown customer, closed scorer);
	// QueueFull and Canceled break out the two load-shedding paths.
	Errors    atomic.Uint64
	QueueFull atomic.Uint64
	Canceled  atomic.Uint64
	// CacheHits/CacheMisses are fed by the vector cache in front of the
	// feature provider.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64
	// Retries counts source-layer read retries absorbed while assembling
	// the served window; RetriesExhausted counts operations that kept
	// failing after their last attempt (each one degraded or failed a
	// window).
	Retries          atomic.Uint64
	RetriesExhausted atomic.Uint64
	// DegradedMask is a gauge holding the degradation bitmask of the
	// currently served window (bit i-1 = feature group Fi; 0 = healthy).
	DegradedMask atomic.Uint64
	// Reloads counts successful artifact hot-swaps; ReloadFailures counts
	// rejected ones (the previous engine kept serving).
	Reloads        atomic.Uint64
	ReloadFailures atomic.Uint64
	// EventsIngested counts streamed event rows durably logged and folded
	// into serving state; EventsRejected counts rows refused at validation.
	// EventsQuarantined counts corrupt event-log tail segments moved to
	// .quarantine sidecars during replay instead of failing the boot.
	EventsIngested    atomic.Uint64
	EventsRejected    atomic.Uint64
	EventsQuarantined atomic.Uint64
	// PanicsRecovered counts handler panics converted to 500 responses by
	// the recovery middleware.
	PanicsRecovered atomic.Uint64
	// StaleVectors is a gauge: customers currently served from live event
	// overrides, i.e. vectors ahead of the last full build.
	StaleVectors atomic.Uint64
	// Refreshes counts successful /v1/refresh vector swaps;
	// RefreshFailures counts rejected ones. RefreshUnixNano is a gauge
	// holding when the serving base was last (re)built.
	Refreshes       atomic.Uint64
	RefreshFailures atomic.Uint64
	RefreshUnixNano atomic.Int64
	// BatchSize observes items per flushed micro-batch; LatencyNs observes
	// end-to-end per-request latency.
	BatchSize Histogram
	LatencyNs Histogram
}

// Snapshot renders every counter and histogram into one flat map.
func (m *Metrics) Snapshot() map[string]any {
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	mask := m.DegradedMask.Load()
	return map[string]any{
		"requests":           m.Requests.Load(),
		"scored":             m.Scored.Load(),
		"sync_scored":        m.SyncScored.Load(),
		"batches":            m.Batches.Load(),
		"errors":             m.Errors.Load(),
		"queue_full":         m.QueueFull.Load(),
		"canceled":           m.Canceled.Load(),
		"cache_hits":         hits,
		"cache_misses":       misses,
		"cache_hit_rate":     hitRate,
		"retries":            m.Retries.Load(),
		"retries_exhausted":  m.RetriesExhausted.Load(),
		"degraded_mask":      mask,
		"degraded_groups":    features.Degradation(mask).String(),
		"reloads":            m.Reloads.Load(),
		"reload_failures":    m.ReloadFailures.Load(),
		"events_ingested":    m.EventsIngested.Load(),
		"events_rejected":    m.EventsRejected.Load(),
		"events_quarantined": m.EventsQuarantined.Load(),
		"panics_recovered":   m.PanicsRecovered.Load(),
		"stale_vectors":      m.StaleVectors.Load(),
		"refreshes":          m.Refreshes.Load(),
		"refresh_failures":   m.RefreshFailures.Load(),
		"refresh_age_seconds": func() float64 {
			ns := m.RefreshUnixNano.Load()
			if ns == 0 {
				return -1 // never built
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		}(),
		"batch_size": m.BatchSize.Snapshot(),
		"latency_ns": m.LatencyNs.Snapshot(),
	}
}

// Histogram is a lock-free base-2 exponential histogram: observation v
// lands in bucket floor(log2(v))+1 (bucket 0 holds v==0), so 64 buckets
// cover the full uint64 range. Good enough to read p50/p90/p99 off a
// latency or batch-size distribution without any dependency.
type Histogram struct {
	buckets [65]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the
// geometric midpoint of the bucket holding the q-th observation. Exact for
// the bucket, approximate within it.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum >= rank {
			if b == 0 {
				return 0
			}
			lo := float64(uint64(1) << (b - 1)) // bucket b holds [2^(b-1), 2^b)
			return lo * math.Sqrt2
		}
	}
	return float64(h.max.Load())
}

// Snapshot renders count/mean/max, the standard serving quantiles, and the
// non-empty raw buckets (lower bound → count), so scrapers can merge or
// re-quantile distributions across instances.
func (h *Histogram) Snapshot() map[string]any {
	count := h.count.Load()
	mean := 0.0
	if count > 0 {
		mean = float64(h.sum.Load()) / float64(count)
	}
	var buckets []map[string]uint64
	for b := range h.buckets {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if b > 0 {
			lo = uint64(1) << (b - 1) // bucket b holds [2^(b-1), 2^b)
		}
		buckets = append(buckets, map[string]uint64{"ge": lo, "count": n})
	}
	return map[string]any{
		"count":   count,
		"mean":    mean,
		"max":     h.max.Load(),
		"p50":     h.Quantile(0.50),
		"p90":     h.Quantile(0.90),
		"p95":     h.Quantile(0.95),
		"p99":     h.Quantile(0.99),
		"buckets": buckets,
	}
}

package serve

import (
	"fmt"

	"telcochurn/internal/features"
	"telcochurn/internal/table"
)

// Wire format for streamed raw events — the POST /v1/events request body
// and the churnctl ingest file format. One record names its raw table and
// carries the row's fields; imsi, month and day are first-class because
// every streamable table keys on them.

// Event is one raw BSS/OSS record on the wire.
type Event struct {
	// Table is the raw table the record belongs to (calls, messages,
	// recharges, complaints, web, search, locations).
	Table string `json:"table"`
	IMSI  int64  `json:"imsi"`
	Month int64  `json:"month"`
	Day   int64  `json:"day"`
	// Fields holds the remaining schema columns by name. Omitted numeric
	// columns default to zero, text columns to ""; unknown names are
	// rejected (they are always typos, never extensions).
	Fields map[string]any `json:"fields,omitempty"`
}

// EventBatch is the POST /v1/events request body.
type EventBatch struct {
	Events []Event `json:"events"`
}

// BuildEventTables validates a batch and assembles it into typed tables
// keyed by raw table name, rows in batch order — the shape the event log
// appends and the incremental maintainer folds.
func BuildEventTables(events []Event) (map[string]*table.Table, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("empty event batch")
	}
	streamable := map[string]bool{}
	for _, name := range features.StreamableTables {
		streamable[name] = true
	}
	out := map[string]*table.Table{}
	for i, ev := range events {
		if !streamable[ev.Table] {
			return nil, fmt.Errorf("event %d: table %q does not accept streamed events (streamable: %v)", i, ev.Table, features.StreamableTables)
		}
		schema, ok := features.RawSchema(ev.Table)
		if !ok {
			return nil, fmt.Errorf("event %d: unknown table %q", i, ev.Table)
		}
		if ev.IMSI <= 0 {
			return nil, fmt.Errorf("event %d: imsi must be positive, got %d", i, ev.IMSI)
		}
		if ev.Month <= 0 {
			return nil, fmt.Errorf("event %d: month must be positive, got %d", i, ev.Month)
		}
		if ev.Day <= 0 {
			return nil, fmt.Errorf("event %d: day must be positive, got %d", i, ev.Day)
		}
		known := map[string]bool{"imsi": true, "month": true, "day": true}
		for _, f := range schema.Fields {
			known[f.Name] = true
		}
		for name := range ev.Fields {
			if !known[name] {
				return nil, fmt.Errorf("event %d: table %q has no column %q", i, ev.Table, name)
			}
		}
		t := out[ev.Table]
		if t == nil {
			t = table.NewTable(schema)
			out[ev.Table] = t
		}
		vals := make([]any, 0, len(schema.Fields))
		for _, f := range schema.Fields {
			var raw any
			switch f.Name {
			case "imsi":
				raw = ev.IMSI
			case "month":
				raw = ev.Month
			case "day":
				raw = ev.Day
			default:
				raw = ev.Fields[f.Name]
			}
			v, err := coerce(raw, f.Type)
			if err != nil {
				return nil, fmt.Errorf("event %d: column %q: %w", i, f.Name, err)
			}
			vals = append(vals, v)
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return out, nil
}

// coerce turns a decoded JSON value (float64, string, int64 from the
// first-class keys, or nil when omitted) into the column's Go type.
func coerce(raw any, typ table.ColType) (any, error) {
	switch typ {
	case table.Int64:
		switch v := raw.(type) {
		case nil:
			return int64(0), nil
		case int64:
			return v, nil
		case float64:
			n := int64(v)
			if float64(n) != v {
				return nil, fmt.Errorf("want an integer, got %v", v)
			}
			return n, nil
		default:
			return nil, fmt.Errorf("want an integer, got %T", raw)
		}
	case table.Float64:
		switch v := raw.(type) {
		case nil:
			return float64(0), nil
		case float64:
			return v, nil
		case int64:
			return float64(v), nil
		default:
			return nil, fmt.Errorf("want a number, got %T", raw)
		}
	default:
		switch v := raw.(type) {
		case nil:
			return "", nil
		case string:
			return v, nil
		default:
			return nil, fmt.Errorf("want a string, got %T", raw)
		}
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestOverlayOverrideAndInvalidate: overrides win lookups, Base bypasses
// them, Invalidate retires them and propagates down the chain.
func TestOverlayOverrideAndInvalidate(t *testing.T) {
	inner := newMapProvider(3) // ids 0..2, vectors {i, i*0.5}
	m := &Metrics{}
	o := NewOverlay(inner, m)

	if v, ok := o.Vector(1); !ok || v[0] != 1 {
		t.Fatalf("pre-override Vector(1) = %v %v", v, ok)
	}
	o.Override(1, []float64{42, 43})
	if v, _ := o.Vector(1); v[0] != 42 {
		t.Errorf("override ignored: %v", v)
	}
	if v, _ := o.Base(1); v[0] != 1 {
		t.Errorf("Base must bypass overrides: %v", v)
	}
	if got := o.Info().Overridden; got != 1 {
		t.Errorf("Info().Overridden = %d, want 1", got)
	}
	if m.StaleVectors.Load() != 1 {
		t.Errorf("stale_vectors gauge = %d, want 1", m.StaleVectors.Load())
	}
	// The universe is the inner's: overrides never widen it.
	if n := len(o.IDs()); n != 3 {
		t.Errorf("IDs() = %d ids, want 3", n)
	}

	o.Invalidate(1)
	if v, _ := o.Vector(1); v[0] != 1 {
		t.Errorf("Invalidate left the override: %v", v)
	}
	if m.StaleVectors.Load() != 0 {
		t.Errorf("gauge after invalidate = %d, want 0", m.StaleVectors.Load())
	}
}

// TestOverlaySwap pins the three swap modes: nil recompute retires every
// override; a recompute replaces or retires per customer; a recompute
// error aborts with the old state intact.
func TestOverlaySwap(t *testing.T) {
	o := NewOverlay(newMapProvider(3), &Metrics{})
	o.Override(0, []float64{100, 100})
	o.Override(2, []float64{200, 200})

	// recompute: keep 0 (doubling its new base), retire 2.
	next := newMapProvider(3)
	err := o.Swap(next, func(id int64, base []float64) ([]float64, error) {
		if id == 2 {
			return nil, nil
		}
		return []float64{base[0] * 2, base[1] * 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Vector(0); v[0] != 0 { // base[0]=0, doubled is still 0
		t.Errorf("recomputed override = %v", v)
	}
	if v, _ := o.Vector(2); v[0] != 2 {
		t.Errorf("retired override still serving: %v", v)
	}
	if o.Overridden() != 1 {
		t.Errorf("overridden after swap = %d, want 1", o.Overridden())
	}

	// An erroring recompute aborts: provider and overrides untouched.
	bad := errors.New("boom")
	if err := o.Swap(newMapProvider(3), func(int64, []float64) ([]float64, error) { return nil, bad }); !errors.Is(err, bad) {
		t.Fatalf("swap error = %v, want boom", err)
	}
	if o.Overridden() != 1 {
		t.Errorf("aborted swap mutated overrides: %d", o.Overridden())
	}

	// nil recompute: the new base covers everything, all overrides retire.
	if err := o.Swap(newMapProvider(3), nil); err != nil {
		t.Fatal(err)
	}
	if o.Overridden() != 0 {
		t.Errorf("overridden after full swap = %d, want 0", o.Overridden())
	}
	if err := o.Swap(nil, nil); err == nil {
		t.Error("swap to nil provider accepted")
	}
}

// TestOverlayConcurrentIngestWhileScoring races the write side (Override,
// Invalidate, Swap — churnd's ingest and refresh paths) against scoring
// readers, under -race. Scores must stay well-formed throughout: every
// vector observed is either the inner's {i, i/2} or an override {i, i},
// so sumClassifier yields 1.5i or 2i and anything else is a torn read.
func TestOverlayConcurrentIngestWhileScoring(t *testing.T) {
	const n = 64
	o := NewOverlay(newMapProvider(n), &Metrics{})
	scorer := NewScorer(&sumClassifier{}, o, Config{}, &Metrics{})
	defer scorer.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 1)

	// Writer: streams overrides, occasionally invalidates or swaps the base.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4000; i++ {
			id := int64(i % n)
			switch {
			case i%97 == 0:
				o.Swap(newMapProvider(n), nil)
			case i%13 == 0:
				o.Invalidate(id)
			default:
				o.Override(id, []float64{float64(id), float64(id)})
			}
		}
		close(stop)
	}()

	// Readers: batch scores while the writer churns.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ids := make([]int64, 8)
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range ids {
					ids[j] = int64((seed + round + j) % n)
				}
				scores, err := scorer.Score(context.Background(), ids)
				if err != nil {
					select {
					case fail <- fmt.Sprintf("score: %v", err):
					default:
					}
					return
				}
				for j, s := range scores {
					i := float64(ids[j])
					if s != 1.5*i && s != 2*i {
						select {
						case fail <- fmt.Sprintf("torn score for %d: %v", ids[j], s):
						default:
						}
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

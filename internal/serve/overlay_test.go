package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestOverlayOverrideAndInvalidate: overrides win lookups, Base bypasses
// them, Invalidate retires them and propagates down the chain.
func TestOverlayOverrideAndInvalidate(t *testing.T) {
	inner := newMapProvider(3) // ids 0..2, vectors {i, i*0.5}
	m := &Metrics{}
	o := NewOverlay(inner, m)

	if v, ok := o.Vector(1); !ok || v[0] != 1 {
		t.Fatalf("pre-override Vector(1) = %v %v", v, ok)
	}
	o.Override(1, []float64{42, 43})
	if v, _ := o.Vector(1); v[0] != 42 {
		t.Errorf("override ignored: %v", v)
	}
	if v, _ := o.Base(1); v[0] != 1 {
		t.Errorf("Base must bypass overrides: %v", v)
	}
	if got := o.Info().Overridden; got != 1 {
		t.Errorf("Info().Overridden = %d, want 1", got)
	}
	if m.StaleVectors.Load() != 1 {
		t.Errorf("stale_vectors gauge = %d, want 1", m.StaleVectors.Load())
	}
	// The universe is the inner's: overrides never widen it.
	if n := len(o.IDs()); n != 3 {
		t.Errorf("IDs() = %d ids, want 3", n)
	}

	o.Invalidate(1)
	if v, _ := o.Vector(1); v[0] != 1 {
		t.Errorf("Invalidate left the override: %v", v)
	}
	if m.StaleVectors.Load() != 0 {
		t.Errorf("gauge after invalidate = %d, want 0", m.StaleVectors.Load())
	}
}

// TestOverlaySwap pins the three swap modes: nil recompute retires every
// override; a recompute replaces or retires per customer; a recompute
// error aborts with the old state intact.
func TestOverlaySwap(t *testing.T) {
	o := NewOverlay(newMapProvider(3), &Metrics{})
	o.Override(0, []float64{100, 100})
	o.Override(2, []float64{200, 200})

	// recompute: keep 0 (doubling its new base), retire 2.
	next := newMapProvider(3)
	err := o.Swap(next, func(id int64, base []float64) ([]float64, error) {
		if id == 2 {
			return nil, nil
		}
		return []float64{base[0] * 2, base[1] * 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Vector(0); v[0] != 0 { // base[0]=0, doubled is still 0
		t.Errorf("recomputed override = %v", v)
	}
	if v, _ := o.Vector(2); v[0] != 2 {
		t.Errorf("retired override still serving: %v", v)
	}
	if o.Overridden() != 1 {
		t.Errorf("overridden after swap = %d, want 1", o.Overridden())
	}

	// An erroring recompute aborts: provider and overrides untouched.
	bad := errors.New("boom")
	if err := o.Swap(newMapProvider(3), func(int64, []float64) ([]float64, error) { return nil, bad }); !errors.Is(err, bad) {
		t.Fatalf("swap error = %v, want boom", err)
	}
	if o.Overridden() != 1 {
		t.Errorf("aborted swap mutated overrides: %d", o.Overridden())
	}

	// nil recompute: the new base covers everything, all overrides retire.
	if err := o.Swap(newMapProvider(3), nil); err != nil {
		t.Fatal(err)
	}
	if o.Overridden() != 0 {
		t.Errorf("overridden after full swap = %d, want 0", o.Overridden())
	}
	if err := o.Swap(nil, nil); err == nil {
		t.Error("swap to nil provider accepted")
	}
}

// genProvider tags every vector with its generation: {gen, gen} for each
// id. Any observed vector with vec[0] != vec[1] is a torn mix of bases.
type genProvider struct {
	gen float64
	n   int
}

func (p *genProvider) Vector(id int64) ([]float64, bool) {
	if id < 0 || id >= int64(p.n) {
		return nil, false
	}
	return []float64{p.gen, p.gen}, true
}
func (p *genProvider) FeatureNames() []string { return []string{"a", "b"} }
func (p *genProvider) IDs() []int64 {
	ids := make([]int64, p.n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}
func (p *genProvider) Info() ProviderInfo { return ProviderInfo{Source: "gen", Rows: p.n} }
func (p *genProvider) Invalidate(int64)   {}

// TestOverlayInvalidateRacesSwap pins churnd's shutdown-free consistency
// contract under -race: POST /v1/events invalidation (Invalidate +
// Override) racing a /v1/refresh vector swap (Swap with recompute). Every
// vector is generation-tagged {g, g}; the recompute derives overrides from
// the *new* base, so any reader observing vec[0] != vec[1] caught an old
// base mixed with a new overlay (or vice versa) — exactly the bug the
// overlay's locking must rule out.
func TestOverlayInvalidateRacesSwap(t *testing.T) {
	const n = 32
	o := NewOverlay(&genProvider{gen: 0, n: n}, &Metrics{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 1)
	// ingestMu mirrors churnd's: the fold's Base→Override pair and the
	// refresh swap serialize against each other; Invalidate and every read
	// stay fully concurrent.
	var ingestMu sync.Mutex

	// Refresher: swaps generation g in, recomputing surviving overrides
	// against the new base (as handleRefresh does when events raced the
	// rebuild).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for g := 1; g <= 300; g++ {
			ingestMu.Lock()
			err := o.Swap(&genProvider{gen: float64(g), n: n}, func(id int64, base []float64) ([]float64, error) {
				return []float64{base[0], base[1]}, nil
			})
			ingestMu.Unlock()
			if err != nil {
				select {
				case fail <- fmt.Sprintf("swap gen %d: %v", g, err):
				default:
				}
				return
			}
		}
	}()

	// Ingester: installs overrides derived from the current base (the fold
	// path: read Base, recompute, Override) and invalidates others.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := int64(i % n)
			if i%3 == 0 {
				o.Invalidate(id)
				continue
			}
			ingestMu.Lock()
			if base, ok := o.Base(id); ok {
				o.Override(id, []float64{base[0], base[1]})
			}
			ingestMu.Unlock()
		}
	}()

	// Readers: every observed vector must be internally consistent.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int64((seed + i) % n)
				vec, ok := o.Vector(id)
				if !ok {
					select {
					case fail <- fmt.Sprintf("id %d fell out of the universe", id):
					default:
					}
					return
				}
				if vec[0] != vec[1] {
					select {
					case fail <- fmt.Sprintf("torn vector for %d: %v mixes generations", id, vec):
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	// Settled state: every id serves the final generation, overrides
	// included (they were recomputed from it or invalidated).
	for id := int64(0); id < n; id++ {
		vec, ok := o.Vector(id)
		if !ok || vec[0] != 300 || vec[1] != 300 {
			t.Fatalf("settled vector for %d = %v %v, want [300 300]", id, vec, ok)
		}
	}
}

// TestOverlayConcurrentIngestWhileScoring races the write side (Override,
// Invalidate, Swap — churnd's ingest and refresh paths) against scoring
// readers, under -race. Scores must stay well-formed throughout: every
// vector observed is either the inner's {i, i/2} or an override {i, i},
// so sumClassifier yields 1.5i or 2i and anything else is a torn read.
func TestOverlayConcurrentIngestWhileScoring(t *testing.T) {
	const n = 64
	o := NewOverlay(newMapProvider(n), &Metrics{})
	scorer := NewScorer(&sumClassifier{}, o, Config{}, &Metrics{})
	defer scorer.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 1)

	// Writer: streams overrides, occasionally invalidates or swaps the base.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4000; i++ {
			id := int64(i % n)
			switch {
			case i%97 == 0:
				o.Swap(newMapProvider(n), nil)
			case i%13 == 0:
				o.Invalidate(id)
			default:
				o.Override(id, []float64{float64(id), float64(id)})
			}
		}
		close(stop)
	}()

	// Readers: batch scores while the writer churns.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ids := make([]int64, 8)
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range ids {
					ids[j] = int64((seed + round + j) % n)
				}
				scores, err := scorer.Score(context.Background(), ids)
				if err != nil {
					select {
					case fail <- fmt.Sprintf("score: %v", err):
					default:
					}
					return
				}
				for j, s := range scores {
					i := float64(ids[j])
					if s != 1.5*i && s != 2*i {
						select {
						case fail <- fmt.Sprintf("torn score for %d: %v", ids[j], s):
						default:
						}
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLiftCurvePerfectRanking(t *testing.T) {
	// 2 positives ranked on top of 8 negatives: targeting the top 20%
	// captures everything (lift 5), the full list has lift 1.
	p := preds(
		[]float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		[]int{1, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	)
	curve := LiftCurve(p, 10)
	if len(curve) != 10 {
		t.Fatalf("curve points = %d", len(curve))
	}
	if curve[0].Frac != 0.1 || curve[0].Gain != 0.5 || math.Abs(curve[0].Lift-5) > 1e-12 {
		t.Errorf("first point = %+v", curve[0])
	}
	if curve[1].Gain != 1 || math.Abs(curve[1].Lift-5) > 1e-12 {
		t.Errorf("second point = %+v", curve[1])
	}
	last := curve[len(curve)-1]
	if last.Gain != 1 || math.Abs(last.Lift-1) > 1e-12 {
		t.Errorf("last point = %+v", last)
	}
}

func TestLiftCurveProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		p := make([]Prediction, n)
		anyPos := false
		for i := range p {
			p[i] = Prediction{ID: int64(i), Score: rng.Float64(), Label: rng.Intn(2)}
			anyPos = anyPos || p[i].Label == 1
		}
		if !anyPos {
			return LiftCurve(p, 10) == nil
		}
		curve := LiftCurve(p, 20)
		prevGain := 0.0
		for _, pt := range curve {
			if pt.Gain < prevGain-1e-12 { // gains are cumulative
				return false
			}
			prevGain = pt.Gain
			if pt.Lift < 0 {
				return false
			}
		}
		// Full-list point: gain 1, lift 1.
		last := curve[len(curve)-1]
		return math.Abs(last.Gain-1) < 1e-12 && math.Abs(last.Lift-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLiftAt(t *testing.T) {
	p := preds(
		[]float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		[]int{1, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	)
	if got := LiftAt(p, 0.2); math.Abs(got-5) > 1e-12 {
		t.Errorf("LiftAt(0.2) = %g, want 5", got)
	}
	if got := LiftAt(p, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("LiftAt(1) = %g, want 1", got)
	}
	if !math.IsNaN(LiftAt(p, 0)) || !math.IsNaN(LiftAt(p, 1.5)) {
		t.Error("out-of-range frac should be NaN")
	}
	if !math.IsNaN(LiftAt(nil, 0.5)) {
		t.Error("empty predictions should be NaN")
	}
}

package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapCICoversPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := make([]Prediction, 500)
	for i := range p {
		label := 0
		score := rng.Float64()
		if rng.Float64() < 0.3+0.5*score {
			label = 1
		}
		p[i] = Prediction{ID: int64(i), Score: score, Label: label}
	}
	ci := BootstrapCI(p, AUC, 200, 0.95, 7)
	if math.IsNaN(ci.Lo) || math.IsNaN(ci.Hi) {
		t.Fatal("CI undefined")
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("CI [%.3f, %.3f] does not cover point %.3f", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Width() <= 0 || ci.Width() > 0.3 {
		t.Errorf("CI width %.3f implausible for n=500", ci.Width())
	}
}

func TestBootstrapCIShrinksWithN(t *testing.T) {
	mk := func(n int) []Prediction {
		rng := rand.New(rand.NewSource(2))
		p := make([]Prediction, n)
		for i := range p {
			score := rng.Float64()
			label := 0
			if rng.Float64() < score {
				label = 1
			}
			p[i] = Prediction{ID: int64(i), Score: score, Label: label}
		}
		return p
	}
	small := BootstrapCI(mk(100), AUC, 200, 0.95, 3)
	large := BootstrapCI(mk(2000), AUC, 200, 0.95, 3)
	if large.Width() >= small.Width() {
		t.Errorf("CI width did not shrink: n=100 %.3f vs n=2000 %.3f", small.Width(), large.Width())
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	p := preds([]float64{0.9, 0.7, 0.4, 0.2}, []int{1, 1, 0, 0})
	a := BootstrapCI(p, PRAUC, 100, 0.9, 5)
	b := BootstrapCI(p, PRAUC, 100, 0.9, 5)
	if a != b {
		t.Error("same-seed bootstrap differs")
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	ci := BootstrapCI(nil, AUC, 50, 0.95, 1)
	if !math.IsNaN(ci.Lo) || !math.IsNaN(ci.Hi) {
		t.Errorf("empty CI = %+v", ci)
	}
}

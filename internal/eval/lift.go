package eval

import "math"

// LiftPoint is one point of the cumulative lift/gain chart telco campaign
// teams plan against: after targeting the top Frac of the ranked list, the
// campaign has reached Gain of all churners, a lift of Lift over random
// targeting.
type LiftPoint struct {
	// Frac is the fraction of the population targeted (0..1].
	Frac float64
	// Gain is the fraction of all positives captured (cumulative recall).
	Gain float64
	// Lift is Gain/Frac: how many times better than random targeting.
	Lift float64
}

// LiftCurve computes the cumulative gains curve at numPoints evenly spaced
// population fractions. Returns nil when there are no positives.
func LiftCurve(preds []Prediction, numPoints int) []LiftPoint {
	pos, _ := Counts(preds)
	if pos == 0 || len(preds) == 0 {
		return nil
	}
	if numPoints <= 0 {
		numPoints = 10
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	ByScoreDesc(sorted)

	// Cumulative positives at every rank.
	cum := make([]int, len(sorted)+1)
	for i, p := range sorted {
		cum[i+1] = cum[i]
		if p.Label == 1 {
			cum[i+1]++
		}
	}

	points := make([]LiftPoint, 0, numPoints)
	for k := 1; k <= numPoints; k++ {
		frac := float64(k) / float64(numPoints)
		n := int(math.Round(frac * float64(len(sorted))))
		if n < 1 {
			n = 1
		}
		gain := float64(cum[n]) / float64(pos)
		points = append(points, LiftPoint{
			Frac: frac,
			Gain: gain,
			Lift: gain / frac,
		})
	}
	return points
}

// LiftAt returns the lift of the top frac of the ranked list (NaN when
// undefined).
func LiftAt(preds []Prediction, frac float64) float64 {
	if frac <= 0 || frac > 1 {
		return math.NaN()
	}
	pos, _ := Counts(preds)
	if pos == 0 || len(preds) == 0 {
		return math.NaN()
	}
	n := int(math.Round(frac * float64(len(preds))))
	if n < 1 {
		n = 1
	}
	return (RecallAtU(preds, n)) / frac
}

// Package eval implements the predictive-performance metrics used throughout
// the paper's evaluation (Section 5.1): AUC via the rank formula (Eq. 10),
// the area under the precision-recall curve (PR-AUC), and recall@U /
// precision@U over the top-U ranked customers (Eqs. 8-9).
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Prediction pairs a churn-likelihood score with the true binary label.
type Prediction struct {
	// Score is the predicted likelihood of the positive class (churner).
	Score float64
	// Label is the true class: 1 for churner, 0 for non-churner.
	Label int
	// ID optionally identifies the customer the prediction is for.
	ID int64
}

// ByScoreDesc sorts predictions by descending score, breaking ties by ID so
// results are deterministic.
func ByScoreDesc(preds []Prediction) {
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Score != preds[j].Score {
			return preds[i].Score > preds[j].Score
		}
		return preds[i].ID < preds[j].ID
	})
}

// Counts returns the number of positive and negative labels.
func Counts(preds []Prediction) (pos, neg int) {
	for _, p := range preds {
		if p.Label == 1 {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

// AUC computes the area under the ROC curve using the rank-sum formula of
// Eq. (10): (sum of ranks of positives - P(P+1)/2) / (P*N), with average
// ranks for tied scores so the result equals the probability that a random
// positive outranks a random negative (ties counting 1/2).
//
// Returns NaN when there are no positives or no negatives.
func AUC(preds []Prediction) float64 {
	pos, neg := Counts(preds)
	if pos == 0 || neg == 0 {
		return math.NaN()
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })

	// Assign average ranks within tied groups (1-based, ascending score).
	rankSumPos := 0.0
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			j++
		}
		// ranks i+1 .. j, average (i+1+j)/2
		avgRank := float64(i+1+j) / 2.0
		for k := i; k < j; k++ {
			if sorted[k].Label == 1 {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	p := float64(pos)
	n := float64(neg)
	return (rankSumPos - p*(p+1)/2) / (p * n)
}

// PRAUC computes the area under the precision-recall curve by interpolating
// precision between distinct score thresholds (average-precision style:
// sum over positives, in rank order, of precision-at-that-rank). With the
// heavy class imbalance of churn data this is the paper's preferred overall
// metric (Section 5.1, citing Davis & Goadrich).
//
// Returns NaN when there are no positives.
func PRAUC(preds []Prediction) float64 {
	pos, _ := Counts(preds)
	if pos == 0 {
		return math.NaN()
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	ByScoreDesc(sorted)

	// Average precision with tie handling: within a tied-score block, assume
	// positives are uniformly distributed and use the block-average
	// precision for each positive in the block.
	ap := 0.0
	tp := 0.0
	seen := 0.0
	i := 0
	for i < len(sorted) {
		j := i
		blockPos := 0
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Label == 1 {
				blockPos++
			}
			j++
		}
		blockLen := float64(j - i)
		if blockPos > 0 {
			// All positives in a tied block see the precision at the end of
			// the block: ties cannot be ordered, so the whole block is
			// admitted or rejected together.
			precEnd := (tp + float64(blockPos)) / (seen + blockLen)
			ap += float64(blockPos) * precEnd
		}
		tp += float64(blockPos)
		seen += blockLen
		i = j
	}
	return ap / float64(pos)
}

// RecallAtU computes Eq. (8): the fraction of all true churners captured in
// the top U predictions ranked by descending score.
func RecallAtU(preds []Prediction, u int) float64 {
	pos, _ := Counts(preds)
	if pos == 0 {
		return math.NaN()
	}
	return float64(truePositivesInTopU(preds, u)) / float64(pos)
}

// PrecisionAtU computes Eq. (9): the fraction of the top U predictions that
// are true churners.
func PrecisionAtU(preds []Prediction, u int) float64 {
	if u <= 0 {
		return math.NaN()
	}
	if u > len(preds) {
		u = len(preds)
	}
	return float64(truePositivesInTopU(preds, u)) / float64(u)
}

func truePositivesInTopU(preds []Prediction, u int) int {
	if u > len(preds) {
		u = len(preds)
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	ByScoreDesc(sorted)
	tp := 0
	for _, p := range sorted[:u] {
		if p.Label == 1 {
			tp++
		}
	}
	return tp
}

// Report bundles the four headline metrics the paper reports for every
// experiment (AUC, PR-AUC, R@U, P@U at a single U).
type Report struct {
	AUC    float64
	PRAUC  float64
	U      int
	RAtU   float64
	PAtU   float64
	NumPos int
	NumNeg int
}

// Evaluate computes a Report at the given U.
func Evaluate(preds []Prediction, u int) Report {
	pos, neg := Counts(preds)
	return Report{
		AUC:    AUC(preds),
		PRAUC:  PRAUC(preds),
		U:      u,
		RAtU:   RecallAtU(preds, u),
		PAtU:   PrecisionAtU(preds, u),
		NumPos: pos,
		NumNeg: neg,
	}
}

// String formats the report in the paper's table style.
func (r Report) String() string {
	return fmt.Sprintf("AUC=%.5f PR-AUC=%.5f R@%d=%.5f P@%d=%.5f (pos=%d neg=%d)",
		r.AUC, r.PRAUC, r.U, r.RAtU, r.U, r.PAtU, r.NumPos, r.NumNeg)
}

// MeanReport averages a slice of reports element-wise (used when an
// experiment is repeated over several sliding-window positions and the paper
// reports the average).
func MeanReport(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	var m Report
	m.U = reports[0].U
	for _, r := range reports {
		m.AUC += r.AUC
		m.PRAUC += r.PRAUC
		m.RAtU += r.RAtU
		m.PAtU += r.PAtU
		m.NumPos += r.NumPos
		m.NumNeg += r.NumNeg
	}
	n := float64(len(reports))
	m.AUC /= n
	m.PRAUC /= n
	m.RAtU /= n
	m.PAtU /= n
	m.NumPos /= len(reports)
	m.NumNeg /= len(reports)
	return m
}

// ROCPoint is one (FPR, TPR) point of the ROC curve.
type ROCPoint struct{ FPR, TPR float64 }

// ROCCurve returns the ROC curve points at every distinct threshold,
// beginning at (0,0) and ending at (1,1).
func ROCCurve(preds []Prediction) []ROCPoint {
	pos, neg := Counts(preds)
	if pos == 0 || neg == 0 {
		return nil
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	ByScoreDesc(sorted)
	points := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Label == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, ROCPoint{float64(fp) / float64(neg), float64(tp) / float64(pos)})
		i = j
	}
	return points
}

// TrapezoidAUC integrates the ROC curve with the trapezoid rule. It must
// agree with AUC (rank formula) up to floating-point error; the property test
// in metrics_test.go checks this identity.
func TrapezoidAUC(preds []Prediction) float64 {
	points := ROCCurve(preds)
	if points == nil {
		return math.NaN()
	}
	area := 0.0
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// PRPoint is one (recall, precision) point of the PR curve.
type PRPoint struct{ Recall, Precision float64 }

// PRCurve returns the precision-recall curve at every distinct threshold.
func PRCurve(preds []Prediction) []PRPoint {
	pos, _ := Counts(preds)
	if pos == 0 {
		return nil
	}
	sorted := make([]Prediction, len(preds))
	copy(sorted, preds)
	ByScoreDesc(sorted)
	var points []PRPoint
	tp, seen := 0, 0
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Label == 1 {
				tp++
			}
			seen++
			j++
		}
		points = append(points, PRPoint{
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(seen),
		})
		i = j
	}
	return points
}

package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestBrierScoreExtremes(t *testing.T) {
	perfect := preds([]float64{1, 1, 0, 0}, []int{1, 1, 0, 0})
	if got := BrierScore(perfect); got != 0 {
		t.Errorf("perfect Brier = %g", got)
	}
	worst := preds([]float64{0, 0, 1, 1}, []int{1, 1, 0, 0})
	if got := BrierScore(worst); got != 1 {
		t.Errorf("worst Brier = %g", got)
	}
	if !math.IsNaN(BrierScore(nil)) {
		t.Error("empty Brier should be NaN")
	}
}

func TestCalibrationCurveWellCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var p []Prediction
	for i := 0; i < 20000; i++ {
		score := rng.Float64()
		label := 0
		if rng.Float64() < score {
			label = 1
		}
		p = append(p, Prediction{ID: int64(i), Score: score, Label: label})
	}
	bins := CalibrationCurve(p, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	for _, b := range bins {
		if d := math.Abs(b.MeanScore - b.Observed); d > 0.05 {
			t.Errorf("bin (mean %.2f) observed %.2f — drift %g", b.MeanScore, b.Observed, d)
		}
	}
	if ece := ExpectedCalibrationError(p, 10); ece > 0.03 {
		t.Errorf("ECE %.4f for a calibrated source", ece)
	}
}

func TestCalibrationCurveMiscalibrated(t *testing.T) {
	// Scores all 0.9 but base rate 0.5: ECE ~ 0.4.
	var p []Prediction
	for i := 0; i < 1000; i++ {
		p = append(p, Prediction{ID: int64(i), Score: 0.9, Label: i % 2})
	}
	ece := ExpectedCalibrationError(p, 10)
	if ece < 0.3 {
		t.Errorf("ECE %.3f, want ~0.4 for a badly calibrated source", ece)
	}
	bins := CalibrationCurve(p, 10)
	if len(bins) != 1 {
		t.Errorf("bins = %d, want 1 non-empty", len(bins))
	}
}

func TestCalibrationCurveEdgeScores(t *testing.T) {
	p := preds([]float64{0, 1, 1.2, -0.3}, []int{0, 1, 1, 0}) // clamped into end bins
	bins := CalibrationCurve(p, 5)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("binned %d of 4 predictions", total)
	}
}

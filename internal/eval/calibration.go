package eval

import "math"

// BrierScore is the mean squared error between predicted probabilities and
// binary outcomes — the standard check that churn likelihoods are usable as
// probabilities (campaign sizing multiplies them by customer value).
// Lower is better; predicting the base rate everywhere scores p(1-p).
func BrierScore(preds []Prediction) float64 {
	if len(preds) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, p := range preds {
		d := p.Score - float64(p.Label)
		s += d * d
	}
	return s / float64(len(preds))
}

// CalibrationBin is one bin of the reliability diagram.
type CalibrationBin struct {
	// MeanScore is the average predicted probability in the bin.
	MeanScore float64
	// Observed is the empirical positive rate in the bin.
	Observed float64
	// Count is the number of predictions in the bin.
	Count int
}

// CalibrationCurve bins predictions by score into numBins equal-width bins
// over [0,1] and reports predicted-vs-observed rates. Empty bins are
// omitted.
func CalibrationCurve(preds []Prediction, numBins int) []CalibrationBin {
	if numBins <= 0 {
		numBins = 10
	}
	sums := make([]float64, numBins)
	pos := make([]int, numBins)
	counts := make([]int, numBins)
	for _, p := range preds {
		b := int(p.Score * float64(numBins))
		if b < 0 {
			b = 0
		}
		if b >= numBins {
			b = numBins - 1
		}
		sums[b] += p.Score
		counts[b]++
		if p.Label == 1 {
			pos[b]++
		}
	}
	var out []CalibrationBin
	for b := 0; b < numBins; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, CalibrationBin{
			MeanScore: sums[b] / float64(counts[b]),
			Observed:  float64(pos[b]) / float64(counts[b]),
			Count:     counts[b],
		})
	}
	return out
}

// ExpectedCalibrationError is the count-weighted mean |predicted - observed|
// over the reliability bins — one number summarizing the curve.
func ExpectedCalibrationError(preds []Prediction, numBins int) float64 {
	bins := CalibrationCurve(preds, numBins)
	if len(bins) == 0 {
		return math.NaN()
	}
	total, weighted := 0, 0.0
	for _, b := range bins {
		total += b.Count
		weighted += float64(b.Count) * math.Abs(b.MeanScore-b.Observed)
	}
	return weighted / float64(total)
}

package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func preds(scores []float64, labels []int) []Prediction {
	out := make([]Prediction, len(scores))
	for i := range scores {
		out[i] = Prediction{ID: int64(i), Score: scores[i], Label: labels[i]}
	}
	return out
}

func TestAUCPerfectAndWorst(t *testing.T) {
	perfect := preds([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0})
	if got := AUC(perfect); got != 1 {
		t.Errorf("perfect AUC = %g, want 1", got)
	}
	worst := preds([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1})
	if got := AUC(worst); got != 0 {
		t.Errorf("worst AUC = %g, want 0", got)
	}
}

func TestAUCHandComputed(t *testing.T) {
	// scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs: (0.8>0.6),(0.8>0.2),
	// (0.4<0.6),(0.4>0.2) => 3/4 concordant.
	p := preds([]float64{0.8, 0.4, 0.6, 0.2}, []int{1, 1, 0, 0})
	if got := AUC(p); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %g, want 0.75", got)
	}
}

func TestAUCTiesCountHalf(t *testing.T) {
	p := preds([]float64{0.5, 0.5}, []int{1, 0})
	if got := AUC(p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %g, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if !math.IsNaN(AUC(preds([]float64{1, 2}, []int{1, 1}))) {
		t.Error("AUC with no negatives should be NaN")
	}
	if !math.IsNaN(AUC(nil)) {
		t.Error("AUC of empty should be NaN")
	}
}

// TestAUCMatchesTrapezoid: the rank formula (Eq. 10) and the geometric ROC
// integration must agree.
func TestAUCMatchesTrapezoid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		p := make([]Prediction, n)
		pos := false
		neg := false
		for i := range p {
			// Coarse scores force plenty of ties.
			p[i] = Prediction{ID: int64(i), Score: float64(rng.Intn(10)) / 10, Label: rng.Intn(2)}
			if p[i].Label == 1 {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			return true
		}
		return math.Abs(AUC(p)-TrapezoidAUC(p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPRAUCPerfect(t *testing.T) {
	p := preds([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0})
	if got := PRAUC(p); got != 1 {
		t.Errorf("perfect PR-AUC = %g, want 1", got)
	}
}

func TestPRAUCHandComputed(t *testing.T) {
	// Ranked: pos, neg, pos, neg. AP = (1/1 + 2/3)/2 = 5/6.
	p := preds([]float64{0.9, 0.8, 0.7, 0.6}, []int{1, 0, 1, 0})
	if got := PRAUC(p); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("PR-AUC = %g, want %g", got, 5.0/6)
	}
}

func TestPRAUCBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		p := make([]Prediction, n)
		anyPos := false
		for i := range p {
			p[i] = Prediction{ID: int64(i), Score: rng.Float64(), Label: rng.Intn(2)}
			anyPos = anyPos || p[i].Label == 1
		}
		if !anyPos {
			return true
		}
		v := PRAUC(p)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecallPrecisionAtU(t *testing.T) {
	p := preds([]float64{0.9, 0.8, 0.7, 0.6, 0.5}, []int{1, 0, 1, 0, 1})
	if got := RecallAtU(p, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("R@2 = %g, want 1/3", got)
	}
	if got := PrecisionAtU(p, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P@2 = %g, want 0.5", got)
	}
	// U beyond length clamps.
	if got := RecallAtU(p, 100); got != 1 {
		t.Errorf("R@100 = %g, want 1", got)
	}
	if got := PrecisionAtU(p, 100); math.Abs(got-3.0/5) > 1e-12 {
		t.Errorf("P@100 = %g, want 0.6", got)
	}
	if !math.IsNaN(PrecisionAtU(p, 0)) {
		t.Error("P@0 should be NaN")
	}
}

func TestRecallMonotoneInU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		p := make([]Prediction, n)
		anyPos := false
		for i := range p {
			p[i] = Prediction{ID: int64(i), Score: rng.Float64(), Label: rng.Intn(2)}
			anyPos = anyPos || p[i].Label == 1
		}
		if !anyPos {
			return true
		}
		prev := 0.0
		for u := 1; u <= n; u += 3 {
			r := RecallAtU(p, u)
			if r < prev-1e-12 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateAndString(t *testing.T) {
	p := preds([]float64{0.9, 0.1}, []int{1, 0})
	rep := Evaluate(p, 1)
	if rep.NumPos != 1 || rep.NumNeg != 1 {
		t.Errorf("counts = %d/%d", rep.NumPos, rep.NumNeg)
	}
	if rep.PAtU != 1 {
		t.Errorf("P@1 = %g, want 1", rep.PAtU)
	}
	if rep.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeanReport(t *testing.T) {
	a := Report{AUC: 0.8, PRAUC: 0.6, U: 10, RAtU: 0.4, PAtU: 0.2, NumPos: 10, NumNeg: 90}
	b := Report{AUC: 0.6, PRAUC: 0.4, U: 10, RAtU: 0.2, PAtU: 0.4, NumPos: 20, NumNeg: 80}
	m := MeanReport([]Report{a, b})
	if math.Abs(m.AUC-0.7) > 1e-12 || math.Abs(m.PRAUC-0.5) > 1e-12 {
		t.Errorf("mean = %+v", m)
	}
	if m.NumPos != 15 {
		t.Errorf("mean NumPos = %d, want 15", m.NumPos)
	}
	if got := MeanReport(nil); got.AUC != 0 {
		t.Errorf("MeanReport(nil) = %+v", got)
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	p := preds([]float64{0.9, 0.5, 0.1}, []int{1, 0, 1})
	pts := ROCCurve(p)
	if pts[0] != (ROCPoint{0, 0}) {
		t.Errorf("first ROC point = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("last ROC point = %+v", last)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	p := preds([]float64{0.9, 0.7, 0.5, 0.3}, []int{1, 0, 1, 0})
	pts := PRCurve(p)
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall {
			t.Fatalf("recall not monotone: %+v", pts)
		}
	}
	if pts[len(pts)-1].Recall != 1 {
		t.Errorf("final recall = %g, want 1", pts[len(pts)-1].Recall)
	}
}

func TestByScoreDescDeterministicTies(t *testing.T) {
	p := []Prediction{{ID: 3, Score: 0.5}, {ID: 1, Score: 0.5}, {ID: 2, Score: 0.7}}
	ByScoreDesc(p)
	if p[0].ID != 2 || p[1].ID != 1 || p[2].ID != 3 {
		t.Errorf("tie order: %+v", p)
	}
}

package eval

import (
	"math"
	"math/rand"
	"sort"
)

// CI is a two-sided bootstrap confidence interval for one metric.
type CI struct {
	Point, Lo, Hi float64
}

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// BootstrapCI estimates a percentile-bootstrap confidence interval for any
// metric over the prediction set (the paper reports averages with "variance
// is too small to be shown" — this makes that checkable). level is the
// coverage (e.g. 0.95); rounds is the number of resamples (default 200 when
// <= 0). Resamples that leave the metric undefined (e.g. no positives) are
// skipped.
func BootstrapCI(preds []Prediction, metric func([]Prediction) float64, rounds int, level float64, seed int64) CI {
	if rounds <= 0 {
		rounds = 200
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	point := metric(preds)
	if len(preds) == 0 {
		return CI{Point: point, Lo: math.NaN(), Hi: math.NaN()}
	}
	rng := rand.New(rand.NewSource(seed))
	sample := make([]Prediction, len(preds))
	values := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		for i := range sample {
			sample[i] = preds[rng.Intn(len(preds))]
		}
		v := metric(sample)
		if !math.IsNaN(v) {
			values = append(values, v)
		}
	}
	if len(values) == 0 {
		return CI{Point: point, Lo: math.NaN(), Hi: math.NaN()}
	}
	sort.Float64s(values)
	alpha := (1 - level) / 2
	lo := values[int(alpha*float64(len(values)))]
	hiIdx := int((1 - alpha) * float64(len(values)))
	if hiIdx >= len(values) {
		hiIdx = len(values) - 1
	}
	return CI{Point: point, Lo: lo, Hi: values[hiIdx]}
}

package topic

import (
	"testing"
)

func TestFitDeterministic(t *testing.T) {
	build := func() *Model {
		c, _ := twoTopicCorpus(30, 11)
		m, err := Fit(c, Config{K: 2, Iters: 15, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	for d := range a.Theta {
		for k := range a.Theta[d] {
			if a.Theta[d][k] != b.Theta[d][k] {
				t.Fatal("same-seed LDA fits differ")
			}
		}
	}
}

func TestSingleWordDocuments(t *testing.T) {
	c := NewCorpus()
	c.AddDoc(1, "alpha")
	c.AddDoc(2, "beta")
	c.AddDoc(3, "alpha")
	m, err := Fit(c, Config{K: 2, Iters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Theta) != 3 {
		t.Fatalf("theta rows = %d", len(m.Theta))
	}
	// Documents 1 and 3 are identical; their topic mixtures must agree
	// closely (same sufficient statistics).
	for k := range m.Theta[0] {
		diff := m.Theta[0][k] - m.Theta[2][k]
		if diff > 0.05 || diff < -0.05 {
			t.Errorf("identical docs diverge: %v vs %v", m.Theta[0], m.Theta[2])
		}
	}
}

func TestEmptyTextDocument(t *testing.T) {
	c := NewCorpus()
	c.AddDoc(1, "word another word")
	c.AddDoc(2, "") // customer with a complaint record but empty text
	m, err := Fit(c, Config{K: 2, Iters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The empty document's theta is the prior: uniform.
	if m.Theta[1][0] != m.Theta[1][1] {
		t.Errorf("empty doc theta = %v, want uniform", m.Theta[1])
	}
}

// Package topic implements latent Dirichlet allocation trained by the
// synchronous belief-propagation updates of Zeng et al. (the paper's
// Section 4.1.3 choice), producing the compact K-dimensional document-topic
// features θ the wide table uses for complaint and search texts (F7, F8).
package topic

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
)

// Corpus is a bag-of-words corpus over an integer-indexed vocabulary.
type Corpus struct {
	vocab []string
	index map[string]int
	docs  []doc
	ids   []int64
}

type doc struct {
	words  []int // vocabulary indices
	counts []float64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{index: make(map[string]int)}
}

// AddDoc adds a document (e.g. one customer-month of search text) under the
// given ID; text is whitespace-tokenized. Repeated AddDoc calls with the
// same ID create separate documents — callers should aggregate first.
func (c *Corpus) AddDoc(id int64, text string) {
	tokens := strings.Fields(text)
	counts := make(map[int]float64)
	for _, tok := range tokens {
		w, ok := c.index[tok]
		if !ok {
			w = len(c.vocab)
			c.index[tok] = w
			c.vocab = append(c.vocab, tok)
		}
		counts[w]++
	}
	d := doc{}
	words := make([]int, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Ints(words)
	for _, w := range words {
		d.words = append(d.words, w)
		d.counts = append(d.counts, counts[w])
	}
	c.docs = append(c.docs, d)
	c.ids = append(c.ids, id)
}

// NumDocs returns the document count.
func (c *Corpus) NumDocs() int { return len(c.docs) }

// VocabSize returns the vocabulary size.
func (c *Corpus) VocabSize() int { return len(c.vocab) }

// IDs returns the document IDs in insertion order (shared slice).
func (c *Corpus) IDs() []int64 { return c.ids }

// Vocab returns the vocabulary (shared slice).
func (c *Corpus) Vocab() []string { return c.vocab }

// Config holds LDA hyperparameters. The paper uses K=10 topics with fixed
// symmetric Dirichlet priors.
type Config struct {
	// K is the topic count (paper: 10).
	K int
	// Alpha is the symmetric document-topic prior (default 1/K — customer
	// documents are short, so a sparse prior keeps topic features peaked;
	// the classic 50/K would flatten a 20-word document to near-uniform).
	Alpha float64
	// Beta is the symmetric topic-word prior (default 0.01).
	Beta float64
	// Iters is the number of BP sweeps (default 50).
	Iters int
	// Seed initializes the messages.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 10
	}
	if c.Alpha == 0 {
		c.Alpha = 1.0 / float64(c.K)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iters == 0 {
		c.Iters = 50
	}
	return c
}

// Model is a trained LDA model.
type Model struct {
	cfg Config
	// Theta[d][k] is the document-topic distribution (the feature vector).
	Theta [][]float64
	// Phi[k][w] is the topic-word distribution.
	Phi [][]float64
	// nw[k][w], nk[k]: sufficient statistics kept for fold-in.
	vocabIndex map[string]int
}

// Fit runs synchronous belief propagation (CVB0-style) on the corpus,
// maximizing the posterior of Eq. (2).
func Fit(c *Corpus, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	D, W, K := c.NumDocs(), c.VocabSize(), cfg.K
	if D == 0 || W == 0 {
		return nil, errors.New("topic: empty corpus")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Messages mu[d][j][k] for each nonzero (word j of doc d).
	mu := make([][][]float64, D)
	nd := make([][]float64, D) // per-doc topic mass
	nw := make([][]float64, K) // per-topic word mass
	nk := make([]float64, K)   // per-topic total mass
	for k := 0; k < K; k++ {
		nw[k] = make([]float64, W)
	}
	for d := range c.docs {
		dd := &c.docs[d]
		mu[d] = make([][]float64, len(dd.words))
		nd[d] = make([]float64, K)
		for j := range dd.words {
			msg := make([]float64, K)
			total := 0.0
			for k := range msg {
				msg[k] = 0.5 + rng.Float64()
				total += msg[k]
			}
			for k := range msg {
				msg[k] /= total
			}
			mu[d][j] = msg
			cnt := dd.counts[j]
			w := dd.words[j]
			for k := range msg {
				nd[d][k] += cnt * msg[k]
				nw[k][w] += cnt * msg[k]
				nk[k] += cnt * msg[k]
			}
		}
	}

	alpha, beta := cfg.Alpha, cfg.Beta
	wBeta := float64(W) * beta
	newMsg := make([]float64, K)
	for iter := 0; iter < cfg.Iters; iter++ {
		for d := range c.docs {
			dd := &c.docs[d]
			for j, w := range dd.words {
				cnt := dd.counts[j]
				old := mu[d][j]
				// Exclude this entry's own mass (the "-wd" terms).
				total := 0.0
				for k := 0; k < K; k++ {
					ndk := nd[d][k] - cnt*old[k]
					nwk := nw[k][w] - cnt*old[k]
					nkk := nk[k] - cnt*old[k]
					if ndk < 0 {
						ndk = 0
					}
					if nwk < 0 {
						nwk = 0
					}
					if nkk < 0 {
						nkk = 0
					}
					v := (ndk + alpha) * (nwk + beta) / (nkk + wBeta)
					newMsg[k] = v
					total += v
				}
				for k := 0; k < K; k++ {
					nm := newMsg[k] / total
					delta := cnt * (nm - old[k])
					nd[d][k] += delta
					nw[k][w] += delta
					nk[k] += delta
					old[k] = nm
				}
			}
		}
	}

	m := &Model{cfg: cfg, vocabIndex: c.index}
	m.Theta = make([][]float64, D)
	for d := range c.docs {
		m.Theta[d] = distWithPrior(nd[d], alpha)
	}
	m.Phi = make([][]float64, K)
	for k := 0; k < K; k++ {
		m.Phi[k] = distWithPrior(nw[k], beta)
	}
	return m, nil
}

func distWithPrior(mass []float64, prior float64) []float64 {
	out := make([]float64, len(mass))
	total := 0.0
	for _, v := range mass {
		total += v + prior
	}
	for i, v := range mass {
		out[i] = (v + prior) / total
	}
	return out
}

// FoldIn infers the topic distribution θ for an unseen document given the
// trained Phi (word distributions fixed), used to featurize test-month
// customers without refitting.
func (m *Model) FoldIn(text string, iters int) []float64 {
	if iters <= 0 {
		iters = 20
	}
	K := m.cfg.K
	counts := make(map[int]float64)
	for _, tok := range strings.Fields(text) {
		if w, ok := m.vocabIndex[tok]; ok {
			counts[w]++
		}
	}
	theta := make([]float64, K)
	for k := range theta {
		theta[k] = 1.0 / float64(K)
	}
	if len(counts) == 0 {
		return theta
	}
	words := make([]int, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Ints(words)

	nd := make([]float64, K)
	msg := make([]float64, K)
	post := make(map[int][]float64, len(words))
	for _, w := range words {
		p := make([]float64, K)
		for k := range p {
			p[k] = 1.0 / float64(K)
			nd[k] += counts[w] / float64(K)
		}
		post[w] = p
	}
	for it := 0; it < iters; it++ {
		for _, w := range words {
			cnt := counts[w]
			old := post[w]
			total := 0.0
			for k := 0; k < K; k++ {
				ndk := nd[k] - cnt*old[k]
				if ndk < 0 {
					ndk = 0
				}
				v := (ndk + m.cfg.Alpha) * m.Phi[k][w]
				msg[k] = v
				total += v
			}
			for k := 0; k < K; k++ {
				nm := msg[k] / total
				nd[k] += cnt * (nm - old[k])
				old[k] = nm
			}
		}
	}
	return distWithPrior(nd, m.cfg.Alpha)
}

// TopWords returns the n highest-probability words of topic k, for
// inspection and tests.
func (m *Model) TopWords(c *Corpus, k, n int) []string {
	type wp struct {
		w int
		p float64
	}
	ws := make([]wp, len(m.Phi[k]))
	for w, p := range m.Phi[k] {
		ws[w] = wp{w, p}
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].p > ws[b].p })
	if n > len(ws) {
		n = len(ws)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = c.vocab[ws[i].w]
	}
	return out
}

// K returns the trained topic count.
func (m *Model) K() int { return m.cfg.K }

package topic

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// twoTopicCorpus builds documents drawn purely from one of two disjoint
// vocabularies, so a 2-topic LDA must separate them.
func twoTopicCorpus(docs int, seed int64) (*Corpus, []int) {
	rng := rand.New(rand.NewSource(seed))
	vocabA := []string{"signal", "drop", "slow", "coverage", "outage"}
	vocabB := []string{"bill", "charge", "refund", "fee", "payment"}
	c := NewCorpus()
	truth := make([]int, docs)
	for d := 0; d < docs; d++ {
		src := vocabA
		if d%2 == 1 {
			src = vocabB
			truth[d] = 1
		}
		words := make([]string, 12)
		for i := range words {
			words[i] = src[rng.Intn(len(src))]
		}
		c.AddDoc(int64(d), strings.Join(words, " "))
	}
	return c, truth
}

func TestCorpusBuilding(t *testing.T) {
	c := NewCorpus()
	c.AddDoc(1, "a b a")
	c.AddDoc(2, "b c")
	if c.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", c.NumDocs())
	}
	if c.VocabSize() != 3 {
		t.Errorf("VocabSize = %d", c.VocabSize())
	}
	if ids := c.IDs(); ids[0] != 1 || ids[1] != 2 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestFitEmptyCorpus(t *testing.T) {
	if _, err := Fit(NewCorpus(), Config{K: 2}); err == nil {
		t.Error("want error for empty corpus")
	}
}

func TestThetaPhiAreDistributions(t *testing.T) {
	c, _ := twoTopicCorpus(40, 1)
	m, err := Fit(c, Config{K: 3, Iters: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for d, theta := range m.Theta {
		sum := 0.0
		for _, v := range theta {
			if v < 0 {
				t.Fatalf("negative theta in doc %d", d)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta[%d] sums to %g", d, sum)
		}
	}
	for k, phi := range m.Phi {
		sum := 0.0
		for _, v := range phi {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("phi[%d] sums to %g", k, sum)
		}
	}
}

func TestLDASeparatesDisjointTopics(t *testing.T) {
	c, truth := twoTopicCorpus(80, 2)
	m, err := Fit(c, Config{K: 2, Iters: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Each document should be dominated (>90%) by a single topic, and the
	// dominant topic must agree with the ground-truth split up to label
	// permutation.
	assign := make([]int, len(m.Theta))
	for d, theta := range m.Theta {
		if theta[0] < 0.9 && theta[1] < 0.9 {
			t.Fatalf("doc %d not dominated by a topic: %v", d, theta)
		}
		if theta[1] > theta[0] {
			assign[d] = 1
		}
	}
	agree := 0
	for d := range assign {
		if assign[d] == truth[d] {
			agree++
		}
	}
	acc := float64(agree) / float64(len(assign))
	if acc < 0.5 {
		acc = 1 - acc // label permutation
	}
	if acc < 0.95 {
		t.Errorf("topic assignment accuracy %.3f, want >= 0.95", acc)
	}
}

func TestTopWordsMatchTopics(t *testing.T) {
	c, _ := twoTopicCorpus(80, 4)
	m, err := Fit(c, Config{K: 2, Iters: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	netWords := map[string]bool{"signal": true, "drop": true, "slow": true, "coverage": true, "outage": true}
	for k := 0; k < 2; k++ {
		top := m.TopWords(c, k, 5)
		inNet := 0
		for _, w := range top {
			if netWords[w] {
				inNet++
			}
		}
		if inNet != 0 && inNet != 5 {
			t.Errorf("topic %d top words mix vocabularies: %v", k, top)
		}
	}
}

func TestFoldInMatchesTraining(t *testing.T) {
	c, _ := twoTopicCorpus(80, 6)
	m, err := Fit(c, Config{K: 2, Iters: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.FoldIn("signal drop slow coverage outage signal drop", 30)
	// Must be heavily one topic — the network one.
	if theta[0] < 0.85 && theta[1] < 0.85 {
		t.Errorf("fold-in theta not peaked: %v", theta)
	}
	sum := theta[0] + theta[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fold-in theta sums to %g", sum)
	}
}

func TestFoldInUnknownWordsUniform(t *testing.T) {
	c, _ := twoTopicCorpus(20, 8)
	m, err := Fit(c, Config{K: 2, Iters: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.FoldIn("completely unseen tokens only", 10)
	if math.Abs(theta[0]-0.5) > 1e-9 {
		t.Errorf("unknown-word fold-in = %v, want uniform", theta)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.K != 10 || cfg.Beta != 0.01 || cfg.Iters != 50 {
		t.Errorf("defaults = %+v", cfg)
	}
	if math.Abs(cfg.Alpha-0.1) > 1e-12 {
		t.Errorf("alpha default = %g, want 1/K = 0.1", cfg.Alpha)
	}
}

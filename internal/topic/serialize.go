package topic

import (
	"fmt"

	"telcochurn/internal/codec"
)

// Encode appends the model's scoring state to an open codec stream: the
// hyperparameters, the vocabulary (in index order) and the topic-word
// distributions Phi. Theta — the training documents' features — is not
// persisted: fold-in (the only operation a deployed scorer runs) needs only
// Phi and the vocabulary, and the training corpus stays with the trainer.
func (m *Model) Encode(w *codec.Writer) {
	w.Uvarint(uint64(m.cfg.K))
	w.Float(m.cfg.Alpha)
	w.Float(m.cfg.Beta)
	w.Uvarint(uint64(m.cfg.Iters))
	w.Int(m.cfg.Seed)
	vocab := make([]string, len(m.vocabIndex))
	for word, i := range m.vocabIndex {
		vocab[i] = word
	}
	w.Strs(vocab)
	w.Uvarint(uint64(len(m.Phi)))
	for _, row := range m.Phi {
		w.Floats(row)
	}
}

// Decode reads a model written by Encode. FoldIn on the result is
// bit-identical to the original.
func Decode(r *codec.Reader) (*Model, error) {
	m := &Model{}
	m.cfg.K = int(r.Uvarint())
	m.cfg.Alpha = r.Float()
	m.cfg.Beta = r.Float()
	m.cfg.Iters = int(r.Uvarint())
	m.cfg.Seed = r.Int()
	vocab := r.Strs()
	m.vocabIndex = make(map[string]int, len(vocab))
	for i, word := range vocab {
		m.vocabIndex[word] = i
	}
	k := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if k != m.cfg.K {
		r.Fail(fmt.Sprintf("topic model has %d Phi rows, config says K=%d", k, m.cfg.K))
		return nil, r.Err()
	}
	m.Phi = make([][]float64, k)
	for i := range m.Phi {
		m.Phi[i] = r.Floats()
		if len(m.Phi[i]) != len(vocab) {
			r.Fail("Phi row length does not match vocabulary")
			return nil, r.Err()
		}
	}
	return m, r.Err()
}

package core

import (
	"testing"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

func TestMemorySourceMissingMonth(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	if _, err := src.Tables(features.MonthWindow(99, 30)); err == nil {
		t.Error("want error for missing month")
	}
	if _, err := src.Truth(99); err == nil {
		t.Error("want error for missing truth month")
	}
}

func TestLabelsOf(t *testing.T) {
	months := testMonths(t)
	labels := LabelsOf(months[0].Truth)
	if len(labels) != months[0].Truth.NumRows() {
		t.Errorf("labels = %d, want %d", len(labels), months[0].Truth.NumRows())
	}
	churn := 0
	for _, y := range labels {
		if y == 1 {
			churn++
		} else if y != 0 {
			t.Fatalf("label %d not binary", y)
		}
	}
	if churn == 0 {
		t.Error("no churners in labels")
	}
}

func TestMonthSpec(t *testing.T) {
	spec := MonthSpec(4, 30)
	if spec.LabelMonth != 5 {
		t.Errorf("LabelMonth = %d", spec.LabelMonth)
	}
	if spec.Features.FromAbs != 91 || spec.Features.ToAbs != 120 {
		t.Errorf("Features = %+v", spec.Features)
	}
}

// TestWarehouseSourceMatchesMemory: the same experiment through the on-disk
// warehouse path must reproduce the in-memory path exactly.
func TestWarehouseSourceMatchesMemory(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 800
	cfg.Months = 4
	months := synth.Simulate(cfg)
	mem := NewMemorySource(months, cfg.DaysPerMonth)

	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, md := range months {
		for name, tb := range md.Tables() {
			if err := wh.WritePartition(name, md.Month, tb); err != nil {
				t.Fatal(err)
			}
		}
	}
	disk := NewWarehouseSource(wh, cfg.DaysPerMonth)

	pcfg := Config{Forest: tree.ForestConfig{NumTrees: 25, MinLeafSamples: 15, Seed: 3}, Seed: 3}
	train := []WindowSpec{MonthSpec(2, cfg.DaysPerMonth)}
	test := MonthSpec(3, cfg.DaysPerMonth)
	u := 30

	pm, err := Fit(mem, train, pcfg)
	if err != nil {
		t.Fatalf("memory fit: %v", err)
	}
	_, rm, err := pm.Evaluate(mem, test, u)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Fit(disk, train, pcfg)
	if err != nil {
		t.Fatalf("warehouse fit: %v", err)
	}
	_, rd, err := pd.Evaluate(disk, test, u)
	if err != nil {
		t.Fatal(err)
	}
	if rm.AUC != rd.AUC || rm.PRAUC != rd.PRAUC {
		t.Errorf("warehouse path diverges: mem %v vs disk %v", rm, rd)
	}
}

func TestFitErrors(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	if _, err := Fit(src, nil, Config{}); err == nil {
		t.Error("want error for no training windows")
	}
	if _, err := Fit(src, []WindowSpec{MonthSpec(99, 30)}, Config{}); err == nil {
		t.Error("want error for missing training month")
	}
}

func TestShiftedWindowUsesPriorSnapshot(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	days := src.DaysPerMonth()
	// Velocity-style window: ends 10 days into month 4.
	win := features.Window{FromAbs: features.AbsDay(3, 11, days), ToAbs: features.AbsDay(4, 10, days)}
	if got := win.SnapshotMonth(days); got != 3 {
		t.Fatalf("SnapshotMonth = %d, want 3", got)
	}
	p, err := Fit(src, []WindowSpec{{Features: features.Window{
		FromAbs: win.FromAbs - days, ToAbs: win.ToAbs - days,
	}, LabelMonth: 4}}, Config{
		Forest: tree.ForestConfig{NumTrees: 15, MinLeafSamples: 15, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		t.Fatalf("shifted-window fit: %v", err)
	}
	preds, err := p.Predict(src, win)
	if err != nil {
		t.Fatalf("shifted-window predict: %v", err)
	}
	// Universe = month 3's snapshot.
	if len(preds.IDs) != months[2].Customers.NumRows() {
		t.Errorf("universe = %d customers, want month-3 snapshot %d",
			len(preds.IDs), months[2].Customers.NumRows())
	}
}

func TestClassifierWrappers(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	days := src.DaysPerMonth()
	for _, clf := range []Classifier{
		&RFClassifier{Config: tree.ForestConfig{NumTrees: 10, MinLeafSamples: 20, Seed: 1}},
		&GBDTClassifier{Config: tree.GBDTConfig{NumTrees: 5, MinLeafSamples: 20, Seed: 1}},
		&LinearClassifier{},
		&FMClassifier{},
	} {
		p, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{Classifier: clf, Seed: 1})
		if err != nil {
			t.Fatalf("%s fit: %v", clf.Name(), err)
		}
		_, rep, err := p.Evaluate(src, MonthSpec(4, days), 30)
		if err != nil {
			t.Fatalf("%s evaluate: %v", clf.Name(), err)
		}
		if rep.AUC < 0.55 {
			t.Errorf("%s AUC %.3f suspiciously low", clf.Name(), rep.AUC)
		}
	}
}

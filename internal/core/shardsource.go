package core

import (
	"fmt"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// ShardedSource is a Source whose raw tables can also be read one
// customer-hash shard at a time, enabling the out-of-core wide-table build.
type ShardedSource interface {
	Source
	// NumShards returns the shard count the readers cover.
	NumShards() int
	// ShardReader returns a per-table reader restricted to one shard.
	ShardReader(shard int) features.TableReader
}

// ShardedWarehouseSource serves a sharded view of an on-disk warehouse. The
// embedded WarehouseSource keeps every whole-month path (Truth, Tables,
// degraded loading) working unchanged; the shard readers add the
// out-of-core path.
type ShardedWarehouseSource struct {
	*WarehouseSource
	sw *store.ShardedWarehouse
}

// NewShardedWarehouseSource wraps a sharded warehouse view.
func NewShardedWarehouseSource(sw *store.ShardedWarehouse, daysPerMonth int) *ShardedWarehouseSource {
	return &ShardedWarehouseSource{
		WarehouseSource: NewWarehouseSource(sw.Warehouse(), daysPerMonth),
		sw:              sw,
	}
}

// NumShards implements ShardedSource.
func (s *ShardedWarehouseSource) NumShards() int { return s.sw.Shards() }

// ShardReader implements ShardedSource.
func (s *ShardedWarehouseSource) ShardReader(shard int) features.TableReader {
	return s.sw.ShardReader(shard)
}

// AsSharded reports whether src can serve shard-at-a-time reads, unwrapping
// retry decoration: a RetrySource over a sharded source is itself sharded,
// with every per-shard table read retried under the usual policy.
func AsSharded(src Source) (ShardedSource, bool) {
	switch s := src.(type) {
	case *RetrySource:
		inner, ok := AsSharded(s.inner)
		if !ok {
			return nil, false
		}
		return retryShardedSource{RetrySource: s, sharded: inner}, true
	case *EventOverlaySource:
		inner, ok := AsSharded(s.inner)
		if !ok {
			return nil, false
		}
		return shardedOverlaySource{EventOverlaySource: s, sharded: inner}, true
	case ShardedSource:
		return s, true
	}
	return nil, false
}

// retryShardedSource decorates a sharded source's shard readers with the
// retry source's backoff policy (and inherits its Source methods).
type retryShardedSource struct {
	*RetrySource
	sharded ShardedSource
}

func (r retryShardedSource) NumShards() int { return r.sharded.NumShards() }

func (r retryShardedSource) ShardReader(shard int) features.TableReader {
	return retryingReader{r: r.sharded.ShardReader(shard), rs: r.RetrySource, deadline: r.RetrySource.deadline()}
}

// BuildFrameSharded builds the window's wide table shard by shard with
// bounded peak memory. The frame is bit-identical for any shard count and
// any worker count; see features.BuildShardedFrame for the contract. F7-F9
// need a fitted pipeline (their feature models are trained by Fit on merged
// data); F1-F6 work on an unfitted NewFrameBuilder pipeline.
//
// Label-propagation seeds canonicalize the truth table by customer id
// before sampling, because the stable-seed stride walks rows in order and a
// sharded truth partition concatenates in shard order. The generator emits
// truth sorted by id, so the canonical order matches the plain layout.
func (p *Pipeline) BuildFrameSharded(src ShardedSource, win features.Window) (*features.Frame, features.ShardStats, error) {
	days := src.DaysPerMonth()
	var groups []features.Group
	for _, g := range p.cfg.Groups {
		if g != features.F9SecondOrder {
			groups = append(groups, g)
		}
	}
	spec := features.ShardedBuildSpec{
		Shards:       src.NumShards(),
		Win:          win,
		DaysPerMonth: days,
		Workers:      p.cfg.Workers,
		Groups:       groups,
		Load: func(s int) (features.Tables, error) {
			return features.LoadTablesFrom(src.ShardReader(s), win, days)
		},
		LoadCustomers: func(s int) (*table.Table, error) {
			return src.ShardReader(s).ReadMonths(synth.TableCustomers, win.Months(days))
		},
	}
	wantGraph := p.cfg.hasGroup(features.F4CallGraph) ||
		p.cfg.hasGroup(features.F5MessageGraph) ||
		p.cfg.hasGroup(features.F6CooccurrenceGraph)
	if wantGraph {
		seedMonth := win.SnapshotMonth(days)
		truth, err := src.Truth(seedMonth)
		if err != nil {
			return nil, features.ShardStats{}, fmt.Errorf("core: graph features need truth of month %d: %w", seedMonth, err)
		}
		sorted, err := table.SortByInt(truth, "imsi")
		if err != nil {
			return nil, features.ShardStats{}, fmt.Errorf("core: canonicalize truth: %w", err)
		}
		spec.GraphIn = features.GraphFeatureInput{
			PrevChurners: features.ChurnersOf(sorted),
			StableSample: features.StableOf(sorted, p.cfg.StableSeedStride),
		}
	}
	if p.cfg.hasGroup(features.F7ComplaintTopics) {
		if p.complaints == nil {
			return nil, features.ShardStats{}, fmt.Errorf("core: sharded build of F7 needs a fitted pipeline")
		}
		spec.Complaints = p.complaints
	}
	if p.cfg.hasGroup(features.F8SearchTopics) {
		if p.search == nil {
			return nil, features.ShardStats{}, fmt.Errorf("core: sharded build of F8 needs a fitted pipeline")
		}
		spec.Search = p.search
	}
	frame, stats, err := features.BuildShardedFrame(spec)
	if err != nil {
		return nil, stats, err
	}
	if p.cfg.hasGroup(features.F9SecondOrder) {
		if p.so == nil {
			return nil, stats, fmt.Errorf("core: sharded build of F9 needs a fitted pipeline")
		}
		if err := p.so.Apply(frame); err != nil {
			return nil, stats, err
		}
	}
	return frame, stats, nil
}

// PredictSharded scores every customer of the window through the
// out-of-core build.
func (p *Pipeline) PredictSharded(src ShardedSource, win features.Window) (*Predictions, features.ShardStats, error) {
	frame, stats, err := p.BuildFrameSharded(src, win)
	if err != nil {
		return nil, stats, err
	}
	return p.scoreFrame(frame, 0), stats, nil
}

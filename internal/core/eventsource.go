package core

import (
	"fmt"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/table"
)

// EventOverlaySource is a Source that reads the warehouse as if the event
// log had already been merged: each table's month partition is followed by
// that month's logged-but-unmerged event rows, in log order — exactly the
// row layout store.EventLog.MergeInto commits. A frame built from it is
// therefore Float64bits-identical to a frame built after merge + rebuild,
// which is what lets churnd's /v1/refresh fold streamed events into the
// full wide table (graph groups included) without stopping ingest or
// touching the durable partitions.
//
// The overlay snapshots the log's last sequence at construction: segments
// appended afterwards are invisible, so a refresh sees a consistent
// prefix and can report exactly which events it covers.
type EventOverlaySource struct {
	inner Source
	rd    features.TableReader
	seq   uint64
	// events buckets the snapshot's rows by table name, then month, rows
	// in log order.
	events map[string]map[int]*table.Table
}

// NewEventOverlaySource snapshots the log at its current last sequence and
// overlays its unmerged events on src, which must expose a per-table
// reader (ReaderSource). Wrap in RetrySource *outside* the overlay if
// retries are wanted; the overlay itself adds no policy.
func NewEventOverlaySource(src Source, log *store.EventLog) (*EventOverlaySource, error) {
	rs, ok := src.(ReaderSource)
	if !ok || rs.TableReader() == nil {
		return nil, fmt.Errorf("core: event overlay needs a per-table reader source, got %T", src)
	}
	o := &EventOverlaySource{
		inner:  src,
		rd:     rs.TableReader(),
		seq:    log.LastSeq(),
		events: map[string]map[int]*table.Table{},
	}
	snap := o.seq
	err := log.Replay(0, func(seq uint64, name string, t *table.Table) error {
		if seq > snap {
			return nil
		}
		return o.bucket(name, t)
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

// bucket splits one logged table's rows by month, appending in log order.
func (o *EventOverlaySource) bucket(name string, t *table.Table) error {
	months := t.MustCol("month").Ints
	byMonth := o.events[name]
	if byMonth == nil {
		byMonth = map[int]*table.Table{}
		o.events[name] = byMonth
	}
	seen := map[int]bool{}
	for _, m := range months {
		seen[int(m)] = true
	}
	for m := range seen {
		mm := int64(m)
		part := t.Filter(func(i int) bool { return months[i] == mm })
		dst := byMonth[m]
		if dst == nil {
			byMonth[m] = part
			continue
		}
		if err := dst.AppendTable(part); err != nil {
			return err
		}
	}
	return nil
}

// Seq returns the log sequence the overlay covers through.
func (o *EventOverlaySource) Seq() uint64 { return o.seq }

// PendingEvents returns how many logged rows the overlay adds on top of
// the warehouse partitions.
func (o *EventOverlaySource) PendingEvents() int {
	n := 0
	for _, byMonth := range o.events {
		for _, t := range byMonth {
			n += t.NumRows()
		}
	}
	return n
}

// overlayReader interposes the event buckets on a per-table reader,
// month-by-month so every month's events land right after that month's
// base rows — the merge layout.
type overlayReader struct {
	rd features.TableReader
	// filter restricts events to one shard (nil reads all): a customer's
	// rows all hash to one shard, so the per-shard overlay mirrors what
	// WritePartition's stable split would produce after a merge.
	filter func(imsi int64) bool
	events map[string]map[int]*table.Table
}

func (r overlayReader) ReadMonths(name string, months []int) (*table.Table, error) {
	byMonth := r.events[name]
	if len(byMonth) == 0 {
		return r.rd.ReadMonths(name, months)
	}
	var out *table.Table
	app := func(t *table.Table) error {
		if out == nil {
			out = t
			return nil
		}
		return out.AppendTable(t)
	}
	for _, m := range months {
		base, err := r.rd.ReadMonths(name, []int{m})
		if err != nil {
			return nil, err
		}
		if err := app(base); err != nil {
			return nil, err
		}
		ev := byMonth[m]
		if ev == nil {
			continue
		}
		if r.filter != nil {
			keys := ev.MustCol("imsi").Ints
			ev = ev.Filter(func(i int) bool { return r.filter(keys[i]) })
		}
		if ev.NumRows() == 0 {
			continue
		}
		if err := app(ev); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Tables implements Source over the overlay reader.
func (o *EventOverlaySource) Tables(win features.Window) (features.Tables, error) {
	return features.LoadTablesFrom(o.TableReader(), win, o.inner.DaysPerMonth())
}

// Truth implements Source. Truth is batch-only; events never carry labels.
func (o *EventOverlaySource) Truth(month int) (*table.Table, error) {
	return o.inner.Truth(month)
}

// DaysPerMonth implements Source.
func (o *EventOverlaySource) DaysPerMonth() int { return o.inner.DaysPerMonth() }

// TablesPartial implements PartialSource when the inner source does: a
// table whose base partitions are unavailable degrades as usual and its
// pending events ride along to the next healthy refresh.
func (o *EventOverlaySource) TablesPartial(win features.Window) (features.Tables, []string, error) {
	if _, ok := o.inner.(PartialSource); !ok {
		t, err := o.Tables(win)
		return t, nil, err
	}
	return features.LoadTablesPartial(o.TableReader(), win, o.inner.DaysPerMonth())
}

// TableReader implements ReaderSource.
func (o *EventOverlaySource) TableReader() features.TableReader {
	return overlayReader{rd: o.rd, events: o.events}
}

// shardedOverlaySource is the ShardedSource view of an overlay whose inner
// source is itself sharded; AsSharded constructs it on demand.
type shardedOverlaySource struct {
	*EventOverlaySource
	sharded ShardedSource
}

func (s shardedOverlaySource) NumShards() int { return s.sharded.NumShards() }

// ShardReader returns the shard's base rows followed by the shard's events
// (filtered by the same customer hash the sharded writer splits on, so the
// per-shard overlay mirrors WritePartition's stable post-merge split).
func (s shardedOverlaySource) ShardReader(shard int) features.TableReader {
	n := s.sharded.NumShards()
	return overlayReader{
		rd:     s.sharded.ShardReader(shard),
		filter: func(imsi int64) bool { return table.ShardOf(imsi, n) == shard },
		events: s.events,
	}
}

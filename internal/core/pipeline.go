package core

import (
	"errors"
	"fmt"
	"math/rand"

	"telcochurn/internal/dataset"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/fm"
	"telcochurn/internal/parallel"
	"telcochurn/internal/sampling"
	"telcochurn/internal/topic"
	"telcochurn/internal/tree"
)

// Config parameterizes a churn-prediction pipeline run.
type Config struct {
	// Groups selects the feature groups to build (default: F1 only — the
	// baseline configuration of Figures 7-9 and Tables 5/7).
	Groups []features.Group
	// Classifier scores customers; nil means the paper's random forest with
	// its deployed defaults (overridable via Forest).
	Classifier Classifier
	// Forest configures the default RF classifier when Classifier is nil.
	Forest tree.ForestConfig
	// Imbalance is the class-imbalance treatment applied to the stacked
	// training set (default WeightedInstance, the paper's Table 7 winner).
	Imbalance sampling.Method
	// TopicK is the LDA topic count for F7/F8 (paper: 10).
	TopicK int
	// SecondOrderPairs is the F9 feature count (paper: 20).
	SecondOrderPairs int
	// Seed drives sampling and model RNGs.
	Seed int64
	// Workers caps pipeline parallelism end to end — wide-table build, graph
	// algorithms, forest training and batch scoring (0 = GOMAXPROCS). The
	// pipeline's outputs are bit-identical for any value: all RNG streams
	// are keyed by logical item, and every parallel reduction merges in a
	// fixed order.
	Workers int
	// StableSeedStride downsamples non-churner label-propagation seeds
	// (default 10: every 10th known non-churner anchors class 0).
	StableSeedStride int
}

// WithDefaults returns the config with every zero field replaced by the
// paper's default (F1-only groups, Weighted Instance imbalance, K=10
// topics, 20 second-order pairs, seed stride 10). Fit, NewFrameBuilder and
// Load all apply it, so callers may leave fields zero — but code that needs
// to know the effective values (persistence, serving, logging) should call
// it explicitly rather than re-deriving the defaults.
func (c Config) WithDefaults() Config {
	if len(c.Groups) == 0 {
		c.Groups = []features.Group{features.F1Baseline}
	}
	if c.Imbalance == 0 {
		c.Imbalance = sampling.WeightedInstance
	}
	if c.TopicK == 0 {
		c.TopicK = 10
	}
	if c.SecondOrderPairs == 0 {
		c.SecondOrderPairs = 20
	}
	if c.StableSeedStride == 0 {
		c.StableSeedStride = 10
	}
	return c
}

func (c Config) hasGroup(g features.Group) bool {
	for _, x := range c.Groups {
		if x == g {
			return true
		}
	}
	return false
}

// WindowSpec pairs a feature window with the month whose churn outcomes
// label it (Figure 6: features month N-1, labels month N).
type WindowSpec struct {
	Features   features.Window
	LabelMonth int
	// SampleFrac optionally subsamples this window's labeled instances
	// (0 or 1 = keep all). The Velocity experiment uses it to model update
	// cadence: a system refreshed every c days has, on average, folded in
	// only part of the freshest month's labels.
	SampleFrac float64
}

// MonthSpec is the common whole-month case: features from featureMonth,
// labels from featureMonth+1.
func MonthSpec(featureMonth, daysPerMonth int) WindowSpec {
	return WindowSpec{
		Features:   features.MonthWindow(featureMonth, daysPerMonth),
		LabelMonth: featureMonth + 1,
	}
}

// NewFrameBuilder returns an unfitted pipeline usable only for BuildFrame,
// for feature groups that need no fitted feature models (F1-F6: base
// aggregates and graph features). Topic (F7/F8) and second-order (F9)
// groups require Fit, which trains their LDA/FM models on the first
// training window. Zero-valued cfg fields mean paper defaults — cfg is
// passed through Config.WithDefaults.
func NewFrameBuilder(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg.WithDefaults()}
}

// Pipeline is a fitted churn predictor.
type Pipeline struct {
	cfg        Config
	clf        Classifier
	complaints *features.TopicFeaturizer
	search     *features.TopicFeaturizer
	so         *features.SecondOrderSelector
	featNames  []string
	vectors    *FeatureVectors // optional precomputed serving snapshot
}

// Fit builds training frames for every spec, fits the feature models (LDA on
// the first window's corpus, FM second-order selection on the first labeled
// frame), stacks the labeled datasets, applies the imbalance treatment, and
// trains the classifier. Zero-valued cfg fields mean paper defaults — cfg
// is passed through Config.WithDefaults before anything else reads it.
func Fit(src Source, train []WindowSpec, cfg Config) (*Pipeline, error) {
	cfg = cfg.WithDefaults()
	if len(train) == 0 {
		return nil, errors.New("core: no training windows")
	}
	p := &Pipeline{cfg: cfg}
	if cfg.Classifier != nil {
		p.clf = cfg.Classifier
	} else {
		fc := cfg.Forest
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed + 1
		}
		if fc.Workers == 0 {
			fc.Workers = cfg.Workers
		}
		p.clf = &RFClassifier{Config: fc}
	}

	var stacked *dataset.Dataset
	for i, spec := range train {
		frame, labels, err := p.buildLabeledFrame(src, spec, i == 0)
		if err != nil {
			return nil, fmt.Errorf("core: training window %d: %w", i, err)
		}
		d := frame.ToDataset(labels, -1)
		d = dropUnlabeled(d)
		if spec.SampleFrac > 0 && spec.SampleFrac < 1 {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*31 + 500))
			keep := rng.Perm(d.NumInstances())[:int(spec.SampleFrac*float64(d.NumInstances()))]
			d = d.Subset(keep)
		}
		if d.NumInstances() == 0 {
			return nil, fmt.Errorf("core: training window %d has no labeled rows", i)
		}
		if stacked == nil {
			stacked = d
		} else if err := stacked.Append(d); err != nil {
			return nil, err
		}
	}
	p.featNames = stacked.FeatureNames

	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	balanced, err := sampling.Apply(stacked, cfg.Imbalance, rng)
	if err != nil {
		return nil, fmt.Errorf("core: imbalance treatment: %w", err)
	}
	if err := p.clf.Fit(balanced); err != nil {
		return nil, fmt.Errorf("core: classifier fit: %w", err)
	}
	return p, nil
}

// dropUnlabeled removes rows whose label is negative (customers absent from
// the label month, i.e. already gone).
func dropUnlabeled(d *dataset.Dataset) *dataset.Dataset {
	var keep []int
	for i, y := range d.Y {
		if y >= 0 {
			keep = append(keep, i)
		}
	}
	return d.Subset(keep)
}

// buildLabeledFrame builds the feature frame for a spec and its label map.
func (p *Pipeline) buildLabeledFrame(src Source, spec WindowSpec, fitModels bool) (*features.Frame, map[int64]int, error) {
	truth, err := src.Truth(spec.LabelMonth)
	if err != nil {
		return nil, nil, err
	}
	labels := LabelsOf(truth)
	frame, err := p.BuildFrame(src, spec.Features, fitModels, labels)
	if err != nil {
		return nil, nil, err
	}
	return frame, labels, nil
}

// BuildFrame assembles the wide table for a window with the configured
// feature groups. When fitModels is true the window also fits the LDA topic
// models and the FM second-order selector (trainLabels must then hold the
// window's churn labels); otherwise the previously fitted models are
// applied. trainLabels may be nil when fitModels is false.
func (p *Pipeline) BuildFrame(src Source, win features.Window, fitModels bool, trainLabels map[int64]int) (*features.Frame, error) {
	frame, _, err := p.buildFrame(src, win, fitModels, trainLabels, false)
	return frame, err
}

// BuildFrameDegraded assembles the wide table tolerating unavailable raw
// tables: tables the source cannot produce (after whatever retries it
// performs) are replaced by empty stand-ins, their columns land at the
// schema's imputation defaults, and the returned bitmask names the feature
// groups built from imputed data. The frame's schema is identical to a
// healthy build — a fitted classifier scores it unchanged — and with
// nothing missing the result is bit-identical to BuildFrame. Degraded
// assembly is for scoring only: model fitting on imputed data would bake
// the outage into the artifact, so training paths keep the strict loader.
func (p *Pipeline) BuildFrameDegraded(src Source, win features.Window) (*features.Frame, features.Degradation, error) {
	return p.buildFrame(src, win, false, nil, true)
}

func (p *Pipeline) buildFrame(src Source, win features.Window, fitModels bool, trainLabels map[int64]int, partial bool) (*features.Frame, features.Degradation, error) {
	days := src.DaysPerMonth()
	var (
		tbl     features.Tables
		missing []string
		deg     features.Degradation
		err     error
	)
	if ps, ok := src.(PartialSource); partial && ok {
		tbl, missing, err = ps.TablesPartial(win)
	} else {
		tbl, err = src.Tables(win)
	}
	if err != nil {
		return nil, 0, err
	}
	deg = features.DegradationOf(missing, p.cfg.Groups)
	base, err := features.BuildBaseFeatures(tbl, win, days, p.cfg.Workers)
	if err != nil {
		return nil, 0, err
	}
	// Keep only requested base groups, in canonical order.
	var keep []features.Group
	for _, g := range []features.Group{features.F1Baseline, features.F2CS, features.F3PS} {
		if p.cfg.hasGroup(g) {
			keep = append(keep, g)
		}
	}
	frame := base.SelectGroups(keep...)

	wantGraph := p.cfg.hasGroup(features.F4CallGraph) || p.cfg.hasGroup(features.F5MessageGraph) || p.cfg.hasGroup(features.F6CooccurrenceGraph)
	if wantGraph {
		// Label-propagation seeds are "the churners in the previous month"
		// (Section 4.1.2) — previous relative to the predicted month, i.e.
		// the feature month itself. Its churn outcomes are known by the
		// time the prediction for the next month is made, so this does not
		// leak labels.
		seedMonth := win.SnapshotMonth(days)
		var in features.GraphFeatureInput
		prevTruth, err := src.Truth(seedMonth)
		switch {
		case err == nil:
			in = features.GraphFeatureInput{
				PrevChurners: features.ChurnersOf(prevTruth),
				StableSample: features.StableOf(prevTruth, p.cfg.StableSeedStride),
			}
		case partial:
			// No label-propagation seeds: the graph columns still build (over
			// whatever tables are present) but every propagated probability
			// sits at its uninformative prior, so the graph groups are
			// imputed in all but name — flag them.
			for _, g := range []features.Group{features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph} {
				if p.cfg.hasGroup(g) {
					deg.Add(g)
				}
			}
		default:
			return nil, 0, fmt.Errorf("core: graph features need truth of month %d: %w", seedMonth, err)
		}
		// Graphs are built over the feature window itself — the paper's
		// "accumulated mutual calling time ... in a fixed period (e.g., a
		// month)". Extending the window back a month sounds tempting (a
		// churner's final-month CDRs are sparse) but measurably dilutes
		// label propagation with stale edges; see the abl-graphwin
		// experiment.
		full := frame
		scratch := features.NewFrame(frame.IDs())
		features.AddGraphFeatures(scratch, tbl, win, days, in, p.cfg.Workers)
		// Copy over only the requested graph groups, preserving order.
		for _, g := range []features.Group{features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph} {
			if !p.cfg.hasGroup(g) {
				continue
			}
			sub := scratch.SelectGroups(g)
			if err := appendFrame(full, sub, g); err != nil {
				return nil, 0, err
			}
		}
		frame = full
	}

	if p.cfg.hasGroup(features.F7ComplaintTopics) {
		if fitModels || p.complaints == nil {
			tfz, err := features.FitTopicFeaturizer(tbl.Complaints, win, days, features.F7ComplaintTopics, "complaint",
				topic.Config{K: p.cfg.TopicK, Seed: p.cfg.Seed + 3})
			if err != nil {
				return nil, 0, err
			}
			p.complaints = tfz
		}
		p.complaints.Apply(frame, tbl.Complaints, win, days)
	}
	if p.cfg.hasGroup(features.F8SearchTopics) {
		if fitModels || p.search == nil {
			tfz, err := features.FitTopicFeaturizer(tbl.Search, win, days, features.F8SearchTopics, "search",
				topic.Config{K: p.cfg.TopicK, Seed: p.cfg.Seed + 5})
			if err != nil {
				return nil, 0, err
			}
			p.search = tfz
		}
		p.search.Apply(frame, tbl.Search, win, days)
	}

	if p.cfg.hasGroup(features.F9SecondOrder) {
		if fitModels || p.so == nil {
			if trainLabels == nil {
				return nil, 0, errors.New("core: second-order selection needs training labels")
			}
			sel, err := features.FitSecondOrder(frame, trainLabels, features.SecondOrderConfig{
				NumPairs: p.cfg.SecondOrderPairs,
				FM:       fm.Config{Seed: p.cfg.Seed + 7},
			})
			if err != nil {
				return nil, 0, err
			}
			p.so = sel
		}
		if err := p.so.Apply(frame); err != nil {
			return nil, 0, err
		}
		// Second-order features are products of base columns, so any
		// imputed upstream group degrades them too.
		if !deg.Empty() {
			deg.Add(features.F9SecondOrder)
		}
	}
	return frame, deg, nil
}

// appendFrame copies src's columns (all tagged with group g) onto dst.
func appendFrame(dst, src *features.Frame, g features.Group) error {
	names := src.Names()
	for j, name := range names {
		col := make(map[int64]float64, src.NumRows())
		for _, id := range src.IDs() {
			row, _ := src.Row(id)
			col[id] = row[j]
		}
		dst.AddColumn(g, name, col, 0)
	}
	return nil
}

// Predictions holds scored customers for one window.
type Predictions struct {
	IDs    []int64
	Scores []float64
	// Degraded names the configured feature groups that were built from
	// imputed data because their backing tables were unavailable. Always
	// zero for strict Predict; possibly non-zero for PredictDegraded.
	Degraded features.Degradation
}

// Predict scores every customer of the window (Eq. 4's likelihood).
func (p *Pipeline) Predict(src Source, win features.Window) (*Predictions, error) {
	frame, err := p.BuildFrame(src, win, false, nil)
	if err != nil {
		return nil, err
	}
	return p.scoreFrame(frame, 0), nil
}

// PredictDegraded scores the window even when raw tables are unavailable,
// reporting the degradation mask alongside the scores (zero mask = the run
// was fully healthy and identical to Predict). Only a missing customer
// snapshot still fails, with features.ErrUniverseUnavailable.
func (p *Pipeline) PredictDegraded(src Source, win features.Window) (*Predictions, error) {
	frame, deg, err := p.BuildFrameDegraded(src, win)
	if err != nil {
		return nil, err
	}
	return p.scoreFrame(frame, deg), nil
}

func (p *Pipeline) scoreFrame(frame *features.Frame, deg features.Degradation) *Predictions {
	ids := frame.IDs()
	x := make([][]float64, frame.NumRows())
	parallel.For(p.cfg.Workers, len(ids), func(i int) {
		row, _ := frame.Row(ids[i])
		x[i] = row
	})
	scores := p.clf.ScoreAll(x)
	return &Predictions{IDs: append([]int64(nil), ids...), Scores: scores, Degraded: deg}
}

// Evaluate scores the test window and compares against the label month's
// truth, excluding customers already labeled churners in the feature month
// (the paper ranks "non-churners in the current month"). Returns the
// prediction list for retention use plus the metric report at u.
func (p *Pipeline) Evaluate(src Source, spec WindowSpec, u int) ([]eval.Prediction, eval.Report, error) {
	preds, err := p.Predict(src, spec.Features)
	if err != nil {
		return nil, eval.Report{}, err
	}
	// Exclude customers already labeled churners before the prediction
	// horizon (the paper ranks "non-churners in the current month"). The
	// current month is the one before the label month, which coincides with
	// the feature month for month-aligned windows and stays correct for
	// shifted velocity windows.
	curTruth, err := src.Truth(spec.LabelMonth - 1)
	if err != nil {
		return nil, eval.Report{}, err
	}
	currentChurners := features.ChurnersOf(curTruth)
	labelTruth, err := src.Truth(spec.LabelMonth)
	if err != nil {
		return nil, eval.Report{}, err
	}
	labels := LabelsOf(labelTruth)

	var out []eval.Prediction
	for i, id := range preds.IDs {
		if currentChurners[id] {
			continue
		}
		y, ok := labels[id]
		if !ok {
			continue
		}
		out = append(out, eval.Prediction{ID: id, Score: preds.Scores[i], Label: y})
	}
	return out, eval.Evaluate(out, u), nil
}

// FeatureNames returns the wide table's column names after fitting.
func (p *Pipeline) FeatureNames() []string { return p.featNames }

// Classifier returns the fitted classifier.
func (p *Pipeline) Classifier() Classifier { return p.clf }

package core

import (
	"testing"

	"telcochurn/internal/sampling"
	"telcochurn/internal/tree"
)

// TestImbalanceConfigNotSilentlyUpgraded is a regression test: NotBalanced
// must stay NotBalanced through Config defaulting. An earlier enum layout
// made sampling.NotBalanced the zero value, so "train without balancing"
// silently became the WeightedInstance default and Table 7's first row
// compared a method against itself.
func TestImbalanceConfigNotSilentlyUpgraded(t *testing.T) {
	cfg := Config{Imbalance: sampling.NotBalanced}.WithDefaults()
	if cfg.Imbalance != sampling.NotBalanced {
		t.Fatalf("NotBalanced was upgraded to %v", cfg.Imbalance)
	}
	cfg = Config{}.WithDefaults()
	if cfg.Imbalance != sampling.WeightedInstance {
		t.Fatalf("unset imbalance defaulted to %v, want WeightedInstance", cfg.Imbalance)
	}
}

// TestImbalanceMethodsProduceDifferentModels: the four treatments must
// actually reach the classifier (not collapse into one configuration).
func TestImbalanceMethodsProduceDifferentModels(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	days := src.DaysPerMonth()
	scores := map[sampling.Method]float64{}
	for _, m := range sampling.Methods() {
		p, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{
			Forest:    tree.ForestConfig{NumTrees: 15, MinLeafSamples: 20, Seed: 5},
			Imbalance: m,
			Seed:      5,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		_, rep, err := p.Evaluate(src, MonthSpec(4, days), 30)
		if err != nil {
			t.Fatal(err)
		}
		scores[m] = rep.PRAUC
	}
	// NotBalanced and WeightedInstance must now differ: the weighted
	// bootstrap resamples by weight, changing tree structure.
	if scores[sampling.NotBalanced] == scores[sampling.WeightedInstance] {
		t.Errorf("NotBalanced and WeightedInstance produced identical PR-AUC %.6f — weights not reaching the forest",
			scores[sampling.NotBalanced])
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"
	"time"

	"telcochurn/internal/features"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// flakyTruth fails Truth a set number of times before succeeding.
type flakyTruth struct {
	failures int
	calls    int
	err      error
}

func (s *flakyTruth) Tables(win features.Window) (features.Tables, error) {
	return features.Tables{}, errors.New("not used")
}

func (s *flakyTruth) Truth(month int) (*table.Table, error) {
	s.calls++
	if s.calls <= s.failures {
		return nil, s.err
	}
	return nil, nil
}

func (s *flakyTruth) DaysPerMonth() int { return 30 }

func fakeClock(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func TestRetryRecoversAfterTransients(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		src := &flakyTruth{failures: 2, err: errors.New("transient blip")}
		rs := NewRetrySource(src, RetryConfig{Seed: seed, Sleep: fakeClock(&delays)})
		if _, err := rs.Truth(1); err != nil {
			t.Fatalf("Truth after transients: %v", err)
		}
		if src.calls != 3 {
			t.Errorf("calls = %d, want 3", src.calls)
		}
		if rs.Retries() != 2 || rs.Exhausted() != 0 {
			t.Errorf("retries=%d exhausted=%d, want 2/0", rs.Retries(), rs.Exhausted())
		}
		return delays
	}

	delays := run(11)
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
	// Seeded jitter keeps each step within [0.5, 1.5) of the doubling base.
	if delays[0] < 25*time.Millisecond || delays[0] >= 75*time.Millisecond {
		t.Errorf("first backoff %v outside jittered [25ms,75ms)", delays[0])
	}
	if delays[1] < 50*time.Millisecond || delays[1] >= 150*time.Millisecond {
		t.Errorf("second backoff %v outside jittered [50ms,150ms)", delays[1])
	}
	// Same seed, same failure pattern: identical schedule.
	again := run(11)
	for i := range delays {
		if delays[i] != again[i] {
			t.Errorf("seed 11 rerun: delay[%d] = %v vs %v — backoff not deterministic", i, again[i], delays[i])
		}
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var delays []time.Duration
	boom := errors.New("hard down")
	src := &flakyTruth{failures: 100, err: boom}
	rs := NewRetrySource(src, RetryConfig{MaxAttempts: 3, Sleep: fakeClock(&delays)})
	if _, err := rs.Truth(1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped inner error", err)
	}
	if src.calls != 3 || rs.Retries() != 2 || rs.Exhausted() != 1 {
		t.Errorf("calls=%d retries=%d exhausted=%d, want 3/2/1", src.calls, rs.Retries(), rs.Exhausted())
	}
}

func TestRetryDoesNotRetryDeterministicFailures(t *testing.T) {
	var delays []time.Duration
	src := &flakyTruth{failures: 100, err: fmt.Errorf("read: %w", fs.ErrNotExist)}
	rs := NewRetrySource(src, RetryConfig{Sleep: fakeClock(&delays)})
	if _, err := rs.Truth(1); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if src.calls != 1 || len(delays) != 0 {
		t.Errorf("calls=%d sleeps=%d — a missing partition was retried", src.calls, len(delays))
	}
}

func TestRetryRespectsWindowBudget(t *testing.T) {
	var delays []time.Duration
	src := &flakyTruth{failures: 100, err: errors.New("slow outage")}
	rs := NewRetrySource(src, RetryConfig{
		BaseDelay:    time.Hour,
		MaxDelay:     time.Hour,
		WindowBudget: time.Millisecond,
		Sleep:        fakeClock(&delays),
	})
	_, err := rs.Truth(1)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want retry-budget exhaustion", err)
	}
	if src.calls != 1 || len(delays) != 0 {
		t.Errorf("calls=%d sleeps=%d — budget did not stop the backoff", src.calls, len(delays))
	}
	if rs.Exhausted() != 1 {
		t.Errorf("exhausted = %d, want 1", rs.Exhausted())
	}
}

func TestRetryAbortsOnContextCancel(t *testing.T) {
	var delays []time.Duration
	src := &flakyTruth{failures: 100, err: errors.New("outage")}
	rs := NewRetrySource(src, RetryConfig{Sleep: fakeClock(&delays)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rs.WithContext(ctx).Truth(1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.calls != 1 {
		t.Errorf("calls = %d, want 1 (no retries against a dead context)", src.calls)
	}
	if rs.Retries() != 1 {
		// The retry was counted before the aborted sleep; the parent's
		// counters are shared with the context view.
		t.Errorf("retries = %d, want 1", rs.Retries())
	}
}

// countingReader fails chosen tables a set number of times each.
type countingReader struct {
	inner    features.TableReader
	failLeft map[string]int
}

func (r *countingReader) ReadMonths(name string, months []int) (*table.Table, error) {
	if r.failLeft[name] > 0 {
		r.failLeft[name]--
		return nil, fmt.Errorf("injected outage on %s", name)
	}
	return r.inner.ReadMonths(name, months)
}

// flakyReaderSource is a warehouse source whose per-table reader flakes.
type flakyReaderSource struct {
	*WarehouseSource
	rd features.TableReader
}

func (s *flakyReaderSource) TableReader() features.TableReader { return s.rd }

// TestRetrySourcePerTable: with a ReaderSource inner, only the flaky table
// retries — and a table that stays down past its attempts degrades instead
// of failing the window.
func TestRetrySourcePerTable(t *testing.T) {
	wh, cfg := diskWorld(t)
	src := NewWarehouseSource(wh, cfg.DaysPerMonth)
	win := features.MonthWindow(1, cfg.DaysPerMonth)

	var delays []time.Duration
	flaky := &flakyReaderSource{
		WarehouseSource: src,
		rd:              &countingReader{inner: wh, failLeft: map[string]int{synth.TableWeb: 2}},
	}
	rs := NewRetrySource(flaky, RetryConfig{Sleep: fakeClock(&delays)})
	tbl, err := rs.Tables(win)
	if err != nil {
		t.Fatalf("Tables with transient web outage: %v", err)
	}
	if rs.Retries() != 2 {
		t.Errorf("retries = %d, want 2 (only web retried)", rs.Retries())
	}
	want, err := src.Tables(win)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Web.NumRows() != want.Web.NumRows() || tbl.Calls.NumRows() != want.Calls.NumRows() {
		t.Error("retried load differs from healthy load")
	}

	// A persistent outage exhausts retries, then degrades.
	flaky.rd = &countingReader{inner: wh, failLeft: map[string]int{synth.TableSearch: 1 << 30}}
	rs = NewRetrySource(flaky, RetryConfig{MaxAttempts: 2, Sleep: fakeClock(&delays)})
	tbl, missing, err := rs.TablesPartial(win)
	if err != nil {
		t.Fatalf("TablesPartial: %v", err)
	}
	if len(missing) != 1 || missing[0] != synth.TableSearch {
		t.Errorf("missing = %v, want [search]", missing)
	}
	if tbl.Search.NumRows() != 0 {
		t.Error("search stand-in is not empty")
	}
	if rs.Exhausted() != 1 {
		t.Errorf("exhausted = %d, want 1", rs.Exhausted())
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync/atomic"
	"time"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/table"
)

// RetryConfig tunes RetrySource. Zero values mean defaults.
type RetryConfig struct {
	// MaxAttempts bounds tries per operation, including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); subsequent steps
	// double up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// WindowBudget is the per-window retry deadline: one Tables or
	// TablesPartial call — across every per-table retry it performs — never
	// spends longer than this backing off (default 30s). Zero-delay
	// attempts themselves are not preempted.
	WindowBudget time.Duration
	// Seed keys the jitter stream: the same seed and call sequence yields
	// the same backoff schedule, so failure timelines reproduce in tests.
	Seed int64
	// Retryable classifies errors; nil means the default policy: retry
	// everything except missing partitions (deterministically absent),
	// corrupt files (deterministically broken), and context errors.
	Retryable func(error) bool
	// OnRetry, if set, observes every backoff (for retry counters/logs).
	OnRetry func(op string, attempt int, delay time.Duration, err error)
	// Sleep is the backoff clock (default time.Sleep; tests inject a fake).
	Sleep func(time.Duration)

	// realClock records whether Sleep defaulted to time.Sleep; only the
	// real clock is raced against the context (an injected fake is assumed
	// non-blocking and is called directly).
	realClock bool
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.WindowBudget == 0 {
		c.WindowBudget = 30 * time.Second
	}
	if c.Retryable == nil {
		c.Retryable = DefaultRetryable
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
		c.realClock = true
	}
	return c
}

// DefaultRetryable is the default transient-error policy: a missing
// partition or a corrupt file will not heal by retrying, and a dead context
// must not be retried against; everything else (I/O hiccups, injected
// transients) is worth another attempt.
func DefaultRetryable(err error) bool {
	switch {
	case errors.Is(err, fs.ErrNotExist),
		errors.Is(err, store.ErrCorrupt),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// RetrySource wraps a Source with per-operation retries: seeded-jitter
// exponential backoff, a per-window retry budget, and context awareness via
// WithContext. When the inner source exposes its per-table reader
// (ReaderSource), table loads retry independently — one flaky feed does not
// force re-reading the healthy eight — and degraded assembly
// (TablesPartial) only gives a table up for imputation after its retries
// are exhausted.
type RetrySource struct {
	inner Source
	cfg   RetryConfig
	ctx   context.Context

	retries   *atomic.Uint64
	exhausted *atomic.Uint64
}

// NewRetrySource wraps inner. Zero cfg fields take defaults.
func NewRetrySource(inner Source, cfg RetryConfig) *RetrySource {
	return &RetrySource{
		inner:     inner,
		cfg:       cfg.withDefaults(),
		ctx:       context.Background(),
		retries:   &atomic.Uint64{},
		exhausted: &atomic.Uint64{},
	}
}

// WithContext returns a view of the source whose backoff waits abort when
// ctx is done (counters are shared with the parent).
func (r *RetrySource) WithContext(ctx context.Context) *RetrySource {
	cp := *r
	cp.ctx = ctx
	return &cp
}

// Retries returns the total number of backed-off retries performed.
func (r *RetrySource) Retries() uint64 { return r.retries.Load() }

// Exhausted returns how many operations failed even after their last
// attempt (each of these surfaced an error or a degraded table upstream).
func (r *RetrySource) Exhausted() uint64 { return r.exhausted.Load() }

// jitter derives a deterministic backoff multiplier in [0.5, 1.5) from the
// retry site and attempt, so two runs with the same seed and failure
// pattern sleep identically.
func (r *RetrySource) jitter(op string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", r.cfg.Seed, op, attempt)
	return 0.5 + float64(h.Sum64()%1000)/1000.0
}

// do runs f with retries under the window deadline.
func (r *RetrySource) do(op string, deadline time.Time, f func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = f()
		if err == nil {
			return nil
		}
		if attempt >= r.cfg.MaxAttempts || !r.cfg.Retryable(err) {
			r.exhausted.Add(1)
			return err
		}
		step := r.cfg.BaseDelay << (attempt - 1)
		if step > r.cfg.MaxDelay || step <= 0 {
			step = r.cfg.MaxDelay
		}
		delay := time.Duration(float64(step) * r.jitter(op, attempt))
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			r.exhausted.Add(1)
			return fmt.Errorf("core: retry budget for %s exhausted after %d attempts: %w", op, attempt, err)
		}
		if r.cfg.OnRetry != nil {
			r.cfg.OnRetry(op, attempt, delay, err)
		}
		r.retries.Add(1)
		if !r.sleep(delay) {
			r.exhausted.Add(1)
			return fmt.Errorf("core: retry of %s aborted: %w", op, context.Cause(r.ctx))
		}
	}
}

// sleep waits for d or the context, reporting false on abort.
func (r *RetrySource) sleep(d time.Duration) bool {
	select {
	case <-r.ctx.Done():
		return false
	default:
	}
	if !r.cfg.realClock {
		r.cfg.Sleep(d)
		select {
		case <-r.ctx.Done():
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// deadline computes the window retry deadline from now.
func (r *RetrySource) deadline() time.Time {
	return time.Now().Add(r.cfg.WindowBudget)
}

// DaysPerMonth implements Source.
func (r *RetrySource) DaysPerMonth() int { return r.inner.DaysPerMonth() }

// Truth implements Source with retries.
func (r *RetrySource) Truth(month int) (*table.Table, error) {
	var t *table.Table
	err := r.do(fmt.Sprintf("truth month=%d", month), r.deadline(), func() error {
		var e error
		t, e = r.inner.Truth(month)
		return e
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// retryingReader retries each per-table read under a shared window
// deadline.
type retryingReader struct {
	r        features.TableReader
	rs       *RetrySource
	deadline time.Time
}

func (rr retryingReader) ReadMonths(name string, months []int) (*table.Table, error) {
	var t *table.Table
	err := rr.rs.do("read "+name, rr.deadline, func() error {
		var e error
		t, e = rr.r.ReadMonths(name, months)
		return e
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// TableReader implements ReaderSource when the inner source exposes a
// per-table reader, retrying each read under a shared backoff window; it
// returns nil otherwise. Wrappers that interpose per table (the event
// overlay) compose through it.
func (r *RetrySource) TableReader() features.TableReader {
	rs, ok := r.inner.(ReaderSource)
	if !ok {
		return nil
	}
	return retryingReader{r: rs.TableReader(), rs: r, deadline: r.deadline()}
}

// Tables implements Source. With a ReaderSource inner, each raw table
// retries independently; otherwise the whole window load is retried as one
// operation.
func (r *RetrySource) Tables(win features.Window) (features.Tables, error) {
	if rs, ok := r.inner.(ReaderSource); ok {
		return features.LoadTablesFrom(
			retryingReader{r: rs.TableReader(), rs: r, deadline: r.deadline()},
			win, r.inner.DaysPerMonth())
	}
	var t features.Tables
	err := r.do(fmt.Sprintf("tables [%d,%d]", win.FromAbs, win.ToAbs), r.deadline(), func() error {
		var e error
		t, e = r.inner.Tables(win)
		return e
	})
	return t, err
}

// TablesPartial implements PartialSource: tables whose retries exhaust are
// handed to the degraded assembler instead of failing the window.
func (r *RetrySource) TablesPartial(win features.Window) (features.Tables, []string, error) {
	if rs, ok := r.inner.(ReaderSource); ok {
		return features.LoadTablesPartial(
			retryingReader{r: rs.TableReader(), rs: r, deadline: r.deadline()},
			win, r.inner.DaysPerMonth())
	}
	if ps, ok := r.inner.(PartialSource); ok {
		var t features.Tables
		var missing []string
		err := r.do(fmt.Sprintf("tables-partial [%d,%d]", win.FromAbs, win.ToAbs), r.deadline(), func() error {
			var e error
			t, missing, e = ps.TablesPartial(win)
			return e
		})
		return t, missing, err
	}
	t, err := r.Tables(win)
	return t, nil, err
}

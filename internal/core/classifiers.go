package core

import (
	"telcochurn/internal/dataset"
	"telcochurn/internal/fm"
	"telcochurn/internal/linear"
	"telcochurn/internal/tree"
)

// Classifier is the pluggable scoring model of the pipeline. Fit trains on a
// labeled dataset; ScoreAll returns churn likelihoods for feature rows.
type Classifier interface {
	Fit(d *dataset.Dataset) error
	ScoreAll(x [][]float64) []float64
	Name() string
}

// RFClassifier wraps the random forest — the paper's deployed choice.
type RFClassifier struct {
	Config tree.ForestConfig
	forest *tree.Forest
}

// Fit implements Classifier.
func (c *RFClassifier) Fit(d *dataset.Dataset) error {
	f, err := tree.FitForest(d, c.Config)
	if err != nil {
		return err
	}
	c.forest = f
	return nil
}

// ScoreAll implements Classifier.
func (c *RFClassifier) ScoreAll(x [][]float64) []float64 { return c.forest.ScoreAll(x) }

// Name implements Classifier.
func (c *RFClassifier) Name() string { return "RF" }

// Forest exposes the trained forest (for feature importance, Table 4).
func (c *RFClassifier) Forest() *tree.Forest { return c.forest }

// GBDTClassifier wraps gradient boosted decision trees.
type GBDTClassifier struct {
	Config tree.GBDTConfig
	model  *tree.GBDT
}

// Fit implements Classifier.
func (c *GBDTClassifier) Fit(d *dataset.Dataset) error {
	m, err := tree.FitGBDT(d, c.Config)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ScoreAll implements Classifier.
func (c *GBDTClassifier) ScoreAll(x [][]float64) []float64 { return c.model.ScoreAll(x) }

// Name implements Classifier.
func (c *GBDTClassifier) Name() string { return "GBDT" }

// LinearClassifier wraps L2 logistic regression (LIBLINEAR substitute) with
// the paper's quantile binarization of continuous features.
type LinearClassifier struct {
	Config  linear.Config
	Buckets int // quantile buckets per source feature (default 8)
	bin     *linear.Binarizer
	model   *linear.Model
}

// Fit implements Classifier.
func (c *LinearClassifier) Fit(d *dataset.Dataset) error {
	if c.Buckets == 0 {
		c.Buckets = 8
	}
	c.bin = linear.FitBinarizer(d, c.Buckets)
	m, err := linear.Fit(c.bin.Transform(d), c.Config)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ScoreAll implements Classifier.
func (c *LinearClassifier) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.model.Score(c.bin.TransformRow(row))
	}
	return out
}

// Name implements Classifier.
func (c *LinearClassifier) Name() string { return "LIBLINEAR" }

// FMClassifier wraps a factorization machine (LIBFM substitute), also over
// binarized features per Section 5.8.
type FMClassifier struct {
	Config  fm.Config
	Buckets int
	bin     *linear.Binarizer
	model   *fm.Model
}

// Fit implements Classifier.
func (c *FMClassifier) Fit(d *dataset.Dataset) error {
	if c.Buckets == 0 {
		c.Buckets = 8
	}
	c.bin = linear.FitBinarizer(d, c.Buckets)
	m, err := fm.Fit(c.bin.Transform(d), c.Config)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ScoreAll implements Classifier.
func (c *FMClassifier) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.model.Score(c.bin.TransformRow(row))
	}
	return out
}

// Name implements Classifier.
func (c *FMClassifier) Name() string { return "LIBFM" }

package core

import (
	"telcochurn/internal/dataset"
	"telcochurn/internal/fm"
	"telcochurn/internal/linear"
	"telcochurn/internal/tree"
)

// Classifier is the pluggable scoring model of the pipeline. Fit trains on a
// labeled dataset; ScoreAll returns churn likelihoods for feature rows.
type Classifier interface {
	Fit(d *dataset.Dataset) error
	ScoreAll(x [][]float64) []float64
	Name() string
}

// SingleScorer is the synchronous single-row fast path a serving layer may
// use instead of batching through ScoreAll. Score must be safe for
// concurrent use and bit-identical to ScoreAll([][]float64{x})[0]. The tree
// families (RF, GBDT) score through compiled flat ensembles and allocate
// nothing; the binarizing families (LIBLINEAR, LIBFM) allocate one
// transformed row per call.
type SingleScorer interface {
	Score(x []float64) float64
}

// RFClassifier wraps the random forest — the paper's deployed choice.
type RFClassifier struct {
	Config   tree.ForestConfig
	forest   *tree.Forest
	compiled *tree.CompiledForest // flat SoA ensemble for the serving path
}

// Fit implements Classifier.
func (c *RFClassifier) Fit(d *dataset.Dataset) error {
	f, err := tree.FitForest(d, c.Config)
	if err != nil {
		return err
	}
	c.forest = f
	c.compiled = f.Compile()
	return nil
}

// ScoreAll implements Classifier. It scores through the compiled ensemble
// (bit-identical to the pointer walker, proven by the tree package's
// property tests) when one is available.
func (c *RFClassifier) ScoreAll(x [][]float64) []float64 {
	if c.compiled != nil {
		return c.compiled.ScoreAll(x)
	}
	return c.forest.ScoreAll(x)
}

// Score implements SingleScorer without allocating.
func (c *RFClassifier) Score(x []float64) float64 { return c.compiled.Score(x) }

// Name implements Classifier.
func (c *RFClassifier) Name() string { return "RF" }

// Forest exposes the trained forest (for feature importance, Table 4).
func (c *RFClassifier) Forest() *tree.Forest { return c.forest }

// GBDTClassifier wraps gradient boosted decision trees.
type GBDTClassifier struct {
	Config   tree.GBDTConfig
	model    *tree.GBDT
	compiled *tree.CompiledGBDT
}

// Fit implements Classifier.
func (c *GBDTClassifier) Fit(d *dataset.Dataset) error {
	m, err := tree.FitGBDT(d, c.Config)
	if err != nil {
		return err
	}
	c.model = m
	c.compiled = m.Compile()
	return nil
}

// ScoreAll implements Classifier (compiled when available, like RF).
func (c *GBDTClassifier) ScoreAll(x [][]float64) []float64 {
	if c.compiled != nil {
		return c.compiled.ScoreAll(x)
	}
	return c.model.ScoreAll(x)
}

// Score implements SingleScorer without allocating.
func (c *GBDTClassifier) Score(x []float64) float64 { return c.compiled.Score(x) }

// Name implements Classifier.
func (c *GBDTClassifier) Name() string { return "GBDT" }

// LinearClassifier wraps L2 logistic regression (LIBLINEAR substitute) with
// the paper's quantile binarization of continuous features.
type LinearClassifier struct {
	Config  linear.Config
	Buckets int // quantile buckets per source feature (default 8)
	bin     *linear.Binarizer
	model   *linear.Model
}

// Fit implements Classifier.
func (c *LinearClassifier) Fit(d *dataset.Dataset) error {
	if c.Buckets == 0 {
		c.Buckets = 8
	}
	c.bin = linear.FitBinarizer(d, c.Buckets)
	m, err := linear.Fit(c.bin.Transform(d), c.Config)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ScoreAll implements Classifier.
func (c *LinearClassifier) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.model.Score(c.bin.TransformRow(row))
	}
	return out
}

// Score implements SingleScorer (one binarized row allocated per call).
func (c *LinearClassifier) Score(x []float64) float64 {
	return c.model.Score(c.bin.TransformRow(x))
}

// Name implements Classifier.
func (c *LinearClassifier) Name() string { return "LIBLINEAR" }

// FMClassifier wraps a factorization machine (LIBFM substitute), also over
// binarized features per Section 5.8.
type FMClassifier struct {
	Config  fm.Config
	Buckets int
	bin     *linear.Binarizer
	model   *fm.Model
}

// Fit implements Classifier.
func (c *FMClassifier) Fit(d *dataset.Dataset) error {
	if c.Buckets == 0 {
		c.Buckets = 8
	}
	c.bin = linear.FitBinarizer(d, c.Buckets)
	m, err := fm.Fit(c.bin.Transform(d), c.Config)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ScoreAll implements Classifier.
func (c *FMClassifier) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.model.Score(c.bin.TransformRow(row))
	}
	return out
}

// Score implements SingleScorer (one binarized row allocated per call).
func (c *FMClassifier) Score(x []float64) float64 {
	return c.model.Score(c.bin.TransformRow(x))
}

// Name implements Classifier.
func (c *FMClassifier) Name() string { return "LIBFM" }

package core

import (
	"math"
	"testing"

	"telcochurn/internal/features"
	"telcochurn/internal/synth"
)

// TestIncrementalRefreshMatchesOverlayAndMerge is the pipeline-level
// bit-identity chain for streaming ingest: events folded through
// core.Incremental produce serving rows Float64bits-identical to a full
// rebuild over the event overlay, which in turn is bit-identical to a
// rebuild after store.EventLog.MergeInto folds the log into the
// partitions. Config has no graph groups, so every column — F9 included —
// must match exactly.
func TestIncrementalRefreshMatchesOverlayAndMerge(t *testing.T) {
	cfg := shardWorldCfg()
	sw := shardedWorld(t, cfg, 4)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
	p, err := Fit(src, []WindowSpec{MonthSpec(1, cfg.DaysPerMonth)}, Config{
		Groups: []features.Group{
			features.F1Baseline, features.F2CS, features.F3PS,
			features.F7ComplaintTopics, features.F8SearchTopics, features.F9SecondOrder,
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	base, _, err := p.BuildFrameSharded(src, win)
	if err != nil {
		t.Fatal(err)
	}

	// Land a batch of streamed events in the durable log.
	log, err := sw.Warehouse().EventLog()
	if err != nil {
		t.Fatal(err)
	}
	targets := append([]int64(nil), base.IDs()[:25]...)
	events := synth.GenerateEvents(targets, 2, cfg.DaysPerMonth, 200, 9)
	if _, err := log.Append(events); err != nil {
		t.Fatal(err)
	}

	// Incremental path: the same events through the maintainer.
	inc, err := NewIncremental(p, src, win)
	if err != nil {
		t.Fatal(err)
	}
	affected := map[int64]bool{}
	for _, name := range features.StreamableTables {
		ev := events[name]
		if ev == nil {
			continue
		}
		ids, n, err := inc.Ingest(name, ev)
		if err != nil {
			t.Fatalf("ingest %s: %v", name, err)
		}
		if n != ev.NumRows() {
			t.Fatalf("ingest %s applied %d of %d rows", name, n, ev.NumRows())
		}
		for _, id := range ids {
			affected[id] = true
		}
	}
	if len(affected) == 0 {
		t.Fatal("no customers affected")
	}

	// Control path: full rebuild over the event overlay.
	overlay, err := NewEventOverlaySource(src, log)
	if err != nil {
		t.Fatal(err)
	}
	if overlay.Seq() != log.LastSeq() {
		t.Fatalf("overlay seq %d, log at %d", overlay.Seq(), log.LastSeq())
	}
	if overlay.PendingEvents() == 0 {
		t.Fatal("overlay sees no pending events")
	}
	sharded, ok := AsSharded(overlay)
	if !ok {
		t.Fatal("overlay over a sharded source not recognized as sharded")
	}
	if sharded.NumShards() != 4 {
		t.Fatalf("overlay NumShards = %d, want 4", sharded.NumShards())
	}
	rebuilt, _, err := p.BuildFrameSharded(sharded, win)
	if err != nil {
		t.Fatal(err)
	}

	names := rebuilt.Names()
	for _, id := range base.IDs() {
		row, _ := base.Row(id)
		if affected[id] {
			if row, err = inc.Refresh(id, row); err != nil {
				t.Fatalf("refresh %d: %v", id, err)
			}
		}
		wrow, ok := rebuilt.Row(id)
		if !ok {
			t.Fatalf("imsi %d missing from rebuilt frame", id)
		}
		for j := range names {
			if math.Float64bits(row[j]) != math.Float64bits(wrow[j]) {
				t.Fatalf("imsi %d (affected=%v) col %q: incremental %v vs rebuild %v",
					id, affected[id], names[j], row[j], wrow[j])
			}
		}
	}

	// Merging the log into the partitions and rebuilding from scratch must
	// reproduce the overlay's frame exactly — the overlay IS the merge
	// layout, just not yet committed.
	if _, err := log.MergeInto(); err != nil {
		t.Fatal(err)
	}
	merged, _, err := p.BuildFrameSharded(src, win)
	if err != nil {
		t.Fatal(err)
	}
	coreFramesBitIdentical(t, rebuilt, merged, "overlay vs post-merge rebuild")

	// A fresh overlay over the drained log adds nothing.
	after, err := NewEventOverlaySource(src, log)
	if err != nil {
		t.Fatal(err)
	}
	if after.PendingEvents() != 0 {
		t.Fatalf("post-merge overlay still pending %d events", after.PendingEvents())
	}
}

// TestIncrementalRefreshKeepsGraphSnapshot pins the stale-columns contract:
// with graph groups configured, a refreshed row recomputes its per-customer
// columns (bit-equal to the overlay rebuild) while the cross-customer graph
// columns keep their snapshot values until the next full refresh.
func TestIncrementalRefreshKeepsGraphSnapshot(t *testing.T) {
	cfg := shardWorldCfg()
	sw := shardedWorld(t, cfg, 2)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
	p, err := Fit(src, []WindowSpec{MonthSpec(1, cfg.DaysPerMonth)}, Config{
		Groups: []features.Group{features.F1Baseline, features.F4CallGraph},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	base, _, err := p.BuildFrameSharded(src, win)
	if err != nil {
		t.Fatal(err)
	}

	log, err := sw.Warehouse().EventLog()
	if err != nil {
		t.Fatal(err)
	}
	targets := append([]int64(nil), base.IDs()[:10]...)
	events := synth.GenerateEvents(targets, 2, cfg.DaysPerMonth, 120, 11)
	if _, err := log.Append(events); err != nil {
		t.Fatal(err)
	}

	inc, err := NewIncremental(p, src, win)
	if err != nil {
		t.Fatal(err)
	}
	affected := map[int64]bool{}
	for _, name := range features.StreamableTables {
		if events[name] == nil {
			continue
		}
		ids, _, err := inc.Ingest(name, events[name])
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			affected[id] = true
		}
	}

	overlay, err := NewEventOverlaySource(src, log)
	if err != nil {
		t.Fatal(err)
	}
	sharded, _ := AsSharded(overlay)
	rebuilt, _, err := p.BuildFrameSharded(sharded, win)
	if err != nil {
		t.Fatal(err)
	}

	names, groups := rebuilt.Names(), rebuilt.Groups()
	for id := range affected {
		brow, _ := base.Row(id)
		wrow, _ := rebuilt.Row(id)
		row, err := inc.Refresh(id, brow)
		if err != nil {
			t.Fatal(err)
		}
		for j := range names {
			if groups[j] == features.F4CallGraph {
				if math.Float64bits(row[j]) != math.Float64bits(brow[j]) {
					t.Fatalf("imsi %d graph col %q moved on refresh", id, names[j])
				}
			} else if math.Float64bits(row[j]) != math.Float64bits(wrow[j]) {
				t.Fatalf("imsi %d col %q: refresh %v vs rebuild %v", id, names[j], row[j], wrow[j])
			}
		}
	}
}

func TestIncrementalRejectsUnfittedPipeline(t *testing.T) {
	cfg := shardWorldCfg()
	sw := shardedWorld(t, cfg, 1)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	if _, err := NewIncremental(NewFrameBuilder(Config{Groups: []features.Group{features.F1Baseline}}), src, win); err == nil {
		t.Fatal("unfitted pipeline accepted")
	}
}

package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
)

func shardWorldCfg() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Customers = 300
	cfg.Months = 3
	cfg.Seed = 21
	cfg.BurnInMonths = 1
	return cfg
}

// shardedWorld generates the same world into a warehouse landed at the
// given shard count (1 = plain layout).
func shardedWorld(t *testing.T, cfg synth.Config, shards int) *store.ShardedWarehouse {
	t.Helper()
	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := wh.Sharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.GenerateToShardedWarehouse(cfg, sw); err != nil {
		t.Fatal(err)
	}
	return sw
}

func coreFramesBitIdentical(t *testing.T, a, b *features.Frame, context string) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumColumns() != b.NumColumns() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", context, a.NumRows(), a.NumColumns(), b.NumRows(), b.NumColumns())
	}
	an, bn := a.Names(), b.Names()
	for j := range an {
		if an[j] != bn[j] {
			t.Fatalf("%s: column %d named %q vs %q", context, j, an[j], bn[j])
		}
	}
	for i, id := range a.IDs() {
		if b.IDs()[i] != id {
			t.Fatalf("%s: row %d id %d vs %d", context, i, id, b.IDs()[i])
		}
		ra, _ := a.Row(id)
		rb, _ := b.Row(id)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				t.Fatalf("%s: id %d col %q: %v vs %v (not bit-identical)", context, id, an[j], ra[j], rb[j])
			}
		}
	}
}

func TestBuildFrameShardedInvariantAcrossLayoutsAndWorkers(t *testing.T) {
	cfg := shardWorldCfg()
	pcfg := Config{Groups: []features.Group{
		features.F1Baseline, features.F2CS, features.F3PS,
		features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph,
	}}
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	var ref *features.Frame
	for _, shards := range []int{1, 4, 16} {
		sw := shardedWorld(t, cfg, shards)
		src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
		for _, workers := range []int{1, 8} {
			c := pcfg
			c.Workers = workers
			frame, stats, err := NewFrameBuilder(c).BuildFrameSharded(src, win)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if stats.Shards != shards || stats.RawRows == 0 {
				t.Fatalf("shards=%d: stats = %+v", shards, stats)
			}
			if ref == nil {
				ref = frame
				continue
			}
			coreFramesBitIdentical(t, ref, frame, "layout/worker variation")
		}
	}
}

func TestBuildFrameShardedBaseMatchesInMemoryBuild(t *testing.T) {
	cfg := shardWorldCfg()
	pcfg := Config{Groups: []features.Group{features.F1Baseline, features.F2CS, features.F3PS}}
	win := features.MonthWindow(2, cfg.DaysPerMonth)

	sw := shardedWorld(t, cfg, 4)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
	sharded, _, err := NewFrameBuilder(pcfg).BuildFrameSharded(src, win)
	if err != nil {
		t.Fatal(err)
	}
	// The whole-month path over the same (sharded) warehouse reads every
	// shard concatenated; per-customer aggregates must come out bit-equal.
	legacy, err := NewFrameBuilder(pcfg).BuildFrame(src, win, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	coreFramesBitIdentical(t, legacy, sharded, "sharded vs whole-month build")
}

func TestPredictShardedMatchesPredict(t *testing.T) {
	cfg := shardWorldCfg()
	sw := shardedWorld(t, cfg, 4)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
	p, err := Fit(src, []WindowSpec{MonthSpec(1, cfg.DaysPerMonth)}, Config{
		Groups: []features.Group{features.F1Baseline, features.F3PS},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	want, err := p.Predict(src, win)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := p.PredictSharded(src, win)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 4 {
		t.Fatalf("stats.Shards = %d, want 4", stats.Shards)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("scored %d customers, want %d", len(got.Scores), len(want.Scores))
	}
	for i := range want.Scores {
		if got.IDs[i] != want.IDs[i] || math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("row %d: (%d, %v) vs (%d, %v)", i, got.IDs[i], got.Scores[i], want.IDs[i], want.Scores[i])
		}
	}
}

func TestAsShardedUnwrapsRetrySource(t *testing.T) {
	cfg := shardWorldCfg()
	sw := shardedWorld(t, cfg, 4)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)

	if _, ok := AsSharded(NewWarehouseSource(sw.Warehouse(), cfg.DaysPerMonth)); ok {
		t.Fatal("plain warehouse source claims to be sharded")
	}

	// Fail the first few reads transiently: the retry-wrapped sharded source
	// must heal and produce the same frame.
	var mu sync.Mutex
	failures := 3
	transient := errors.New("transient feed outage")
	sw.Warehouse().SetHook(func(op store.Op, name string, month int) error {
		if op != store.OpReadPartition {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if failures > 0 {
			failures--
			return transient
		}
		return nil
	})
	defer sw.Warehouse().SetHook(nil)

	rs := NewRetrySource(src, RetryConfig{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) {},
	})
	sharded, ok := AsSharded(rs)
	if !ok {
		t.Fatal("retry-wrapped sharded source not recognized as sharded")
	}
	if sharded.NumShards() != 4 {
		t.Fatalf("NumShards through retry wrapper = %d, want 4", sharded.NumShards())
	}
	pcfg := Config{Groups: []features.Group{features.F1Baseline}}
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	frame, _, err := NewFrameBuilder(pcfg).BuildFrameSharded(sharded, win)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Retries() == 0 {
		t.Fatal("no retries recorded despite injected failures")
	}

	sw.Warehouse().SetHook(nil)
	clean, _, err := NewFrameBuilder(pcfg).BuildFrameSharded(src, win)
	if err != nil {
		t.Fatal(err)
	}
	coreFramesBitIdentical(t, clean, frame, "retried vs clean sharded build")
}

func TestBuildFrameShardedUnfittedRejectsTopicGroups(t *testing.T) {
	cfg := shardWorldCfg()
	sw := shardedWorld(t, cfg, 2)
	src := NewShardedWarehouseSource(sw, cfg.DaysPerMonth)
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	for _, g := range []features.Group{features.F7ComplaintTopics, features.F8SearchTopics, features.F9SecondOrder} {
		p := NewFrameBuilder(Config{Groups: []features.Group{features.F1Baseline, g}})
		if _, _, err := p.BuildFrameSharded(src, win); err == nil {
			t.Fatalf("unfitted sharded build of %s accepted", g)
		}
	}
}

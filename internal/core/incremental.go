package core

import (
	"fmt"

	"telcochurn/internal/features"
	"telcochurn/internal/table"
)

// Incremental maintains fresh serving rows between batch rebuilds: it owns
// a features.Maintainer over the serving window's raw tables and knows how
// to reassemble one customer's full wide-table row in the fitted serving
// schema after an event — per-customer groups (F1–F3, F7, F8) recomputed
// from the maintained tables, graph columns (F4–F6) carried over from the
// snapshot row (they are cross-customer and wait for the next refresh),
// and F9 re-derived from the updated row through the fitted second-order
// selector. Every recomputed value is Float64bits-identical to what a
// from-scratch rebuild over the merged data would produce for the same
// columns; see features/incremental.go for the argument and the property
// test.
type Incremental struct {
	pipe  *Pipeline
	maint *features.Maintainer
	// perCust is the subset of the configured groups that refresh per
	// customer, in canonical order.
	perCust []features.Group
	// colOf maps each per-customer column name to its serving-schema index.
	colOf map[string]int
	// f9Start is the index of the first F9 column, -1 when F9 is off.
	f9Start int
}

// NewIncremental loads the window's raw tables from src (cloned, so
// in-memory sources are never mutated) and wires a maintainer against the
// fitted pipeline's serving schema. The window must be one whole month and
// the pipeline must be fitted (its feature names are the schema refreshed
// rows are assembled in).
func NewIncremental(pipe *Pipeline, src Source, win features.Window) (*Incremental, error) {
	names := pipe.FeatureNames()
	if len(names) == 0 {
		return nil, fmt.Errorf("core: incremental maintenance needs a fitted pipeline")
	}
	tbl, err := src.Tables(win)
	if err != nil {
		return nil, err
	}
	if tbl, err = features.CloneTables(tbl); err != nil {
		return nil, err
	}
	maint, err := features.NewMaintainer(tbl, win, src.DaysPerMonth())
	if err != nil {
		return nil, err
	}
	inc := &Incremental{pipe: pipe, maint: maint, colOf: map[string]int{}, f9Start: -1}
	for _, g := range []features.Group{features.F1Baseline, features.F2CS, features.F3PS,
		features.F7ComplaintTopics, features.F8SearchTopics} {
		if pipe.cfg.hasGroup(g) {
			inc.perCust = append(inc.perCust, g)
		}
	}
	idxOf := make(map[string]int, len(names))
	for i, n := range names {
		idxOf[n] = i
	}
	// Probe one customer to resolve (and validate) the recompute columns'
	// schema positions up front, so wiring fails fast on drift.
	probe, err := maint.CustomerFrame(maint.AnyCustomer(), inc.perCust, pipe.complaints, pipe.search)
	if err != nil {
		return nil, err
	}
	for _, n := range probe.Names() {
		i, ok := idxOf[n]
		if !ok {
			return nil, fmt.Errorf("core: recomputed column %q not in serving schema", n)
		}
		inc.colOf[n] = i
	}
	if pipe.cfg.hasGroup(features.F9SecondOrder) {
		if pipe.so == nil {
			return nil, fmt.Errorf("core: F9 configured but no fitted second-order selector")
		}
		inc.f9Start = len(names) - pipe.so.NumPairs()
		if inc.f9Start < 0 {
			return nil, fmt.Errorf("core: serving schema shorter than F9 block")
		}
	}
	return inc, nil
}

// Maintainer exposes the underlying feature maintainer.
func (inc *Incremental) Maintainer() *features.Maintainer { return inc.maint }

// Ingest folds one table's event rows into the maintained state, returning
// the affected universe customers and the number of rows applied.
func (inc *Incremental) Ingest(name string, events *table.Table) ([]int64, int, error) {
	return inc.maint.Apply(name, events)
}

// Refresh reassembles one customer's serving row after events: base is the
// customer's current snapshot row (len = serving schema), whose graph
// columns are kept; every per-customer column is recomputed from the
// maintained tables and F9 is re-derived from the result. base is not
// mutated.
func (inc *Incremental) Refresh(id int64, base []float64) ([]float64, error) {
	names := inc.pipe.FeatureNames()
	if len(base) != len(names) {
		return nil, fmt.Errorf("core: refresh base row has %d columns, schema has %d", len(base), len(names))
	}
	cf, err := inc.maint.CustomerFrame(id, inc.perCust, inc.pipe.complaints, inc.pipe.search)
	if err != nil {
		return nil, err
	}
	row := append([]float64(nil), base...)
	vals, ok := cf.Row(id)
	if !ok {
		return nil, fmt.Errorf("core: imsi %d missing from its own recomputed frame", id)
	}
	for j, n := range cf.Names() {
		i, ok := inc.colOf[n]
		if !ok {
			return nil, fmt.Errorf("core: recomputed column %q not in serving schema", n)
		}
		row[i] = vals[j]
	}
	if inc.f9Start >= 0 {
		f9, err := inc.pipe.so.ApplyRow(row)
		if err != nil {
			return nil, err
		}
		copy(row[inc.f9Start:], f9)
	}
	return row, nil
}

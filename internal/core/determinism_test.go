package core

import (
	"testing"

	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/sampling"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// fitEvalWorkers runs the full pipeline — wide-table build (including graph
// features), forest fit, prediction, evaluation — at a given worker count.
func fitEvalWorkers(t *testing.T, workers int) ([]eval.Prediction, eval.Report, []string) {
	t.Helper()
	months := testMonths(t)
	src := NewMemorySource(months, synth.DefaultConfig().DaysPerMonth)
	days := src.DaysPerMonth()

	p, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{
		Groups: []features.Group{
			features.F1Baseline, features.F2CS, features.F3PS,
			features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph,
		},
		Forest:    tree.ForestConfig{NumTrees: 40, MinLeafSamples: 20, Seed: 42},
		Imbalance: sampling.WeightedInstance,
		Seed:      1,
		Workers:   workers,
	})
	if err != nil {
		t.Fatalf("Fit (workers=%d): %v", workers, err)
	}
	u := synth.ScaleU(200000, 1500)
	preds, report, err := p.Evaluate(src, MonthSpec(4, days), u)
	if err != nil {
		t.Fatalf("Evaluate (workers=%d): %v", workers, err)
	}
	return preds, report, p.FeatureNames()
}

// TestPipelineDeterministicAcrossWorkers is the headline guarantee of the
// parallel substrate: Fit and Evaluate produce bit-identical outputs for any
// Workers value. Scores are compared exactly — no tolerance.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	preds1, rep1, names1 := fitEvalWorkers(t, 1)
	preds8, rep8, names8 := fitEvalWorkers(t, 8)

	if len(names1) != len(names8) {
		t.Fatalf("feature count differs: %d vs %d", len(names1), len(names8))
	}
	for i := range names1 {
		if names1[i] != names8[i] {
			t.Fatalf("feature %d differs: %q vs %q", i, names1[i], names8[i])
		}
	}
	if rep1 != rep8 {
		t.Errorf("reports differ:\n workers=1: %+v\n workers=8: %+v", rep1, rep8)
	}
	if len(preds1) != len(preds8) {
		t.Fatalf("prediction count differs: %d vs %d", len(preds1), len(preds8))
	}
	for i := range preds1 {
		if preds1[i] != preds8[i] {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, preds1[i], preds8[i])
		}
	}
}

// TestBuildFrameDeterministicAcrossWorkers pins the wide table itself: every
// cell of every row — base aggregates and graph features alike — must be
// bit-identical whether built by one worker or eight.
func TestBuildFrameDeterministicAcrossWorkers(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, synth.DefaultConfig().DaysPerMonth)
	days := src.DaysPerMonth()
	win := features.MonthWindow(3, days)
	groups := []features.Group{
		features.F1Baseline, features.F2CS, features.F3PS,
		features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph,
	}

	build := func(workers int) *features.Frame {
		b := NewFrameBuilder(Config{Groups: groups, Workers: workers})
		f, err := b.BuildFrame(src, win, false, nil)
		if err != nil {
			t.Fatalf("BuildFrame (workers=%d): %v", workers, err)
		}
		return f
	}
	f1 := build(1)
	f8 := build(8)

	n1, n8 := f1.Names(), f8.Names()
	if len(n1) != len(n8) {
		t.Fatalf("column count differs: %d vs %d", len(n1), len(n8))
	}
	for i := range n1 {
		if n1[i] != n8[i] {
			t.Fatalf("column %d differs: %q vs %q", i, n1[i], n8[i])
		}
	}
	ids1, ids8 := f1.IDs(), f8.IDs()
	if len(ids1) != len(ids8) {
		t.Fatalf("row count differs: %d vs %d", len(ids1), len(ids8))
	}
	for i, id := range ids1 {
		if id != ids8[i] {
			t.Fatalf("row %d id differs: %d vs %d", i, id, ids8[i])
		}
		r1, _ := f1.Row(id)
		r8, _ := f8.Row(id)
		for j := range r1 {
			if r1[j] != r8[j] {
				t.Fatalf("cell (%d, %s) differs: %v vs %v", id, n1[j], r1[j], r8[j])
			}
		}
	}
}

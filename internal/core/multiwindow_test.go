package core

import (
	"testing"

	"telcochurn/internal/tree"
)

// TestMultiWindowTrainingStacksInstances: Figure 7's volume accumulation —
// training over two windows must feed the classifier both windows' labeled
// instances and remain evaluable.
func TestMultiWindowTrainingStacksInstances(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	days := src.DaysPerMonth()

	one, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{
		Forest: tree.ForestConfig{NumTrees: 20, MinLeafSamples: 20, Seed: 3},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Fit(src, []WindowSpec{MonthSpec(2, days), MonthSpec(3, days)}, Config{
		Forest: tree.ForestConfig{NumTrees: 20, MinLeafSamples: 20, Seed: 3},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, r1, err := one.Evaluate(src, MonthSpec(4, days), 30)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := two.Evaluate(src, MonthSpec(4, days), 30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1-month volume: %v", r1)
	t.Logf("2-month volume: %v", r2)
	// Different training sets must produce different models.
	if r1.AUC == r2.AUC && r1.PRAUC == r2.PRAUC {
		t.Error("2-window training produced a model identical to 1-window training")
	}
	// And the bigger volume should not be dramatically worse.
	if r2.PRAUC < r1.PRAUC*0.8 {
		t.Errorf("2-month volume PR-AUC %.3f far below 1-month %.3f", r2.PRAUC, r1.PRAUC)
	}
}

// TestFrameBuilderMatchesFittedPipeline: NewFrameBuilder (used by the saved-
// model scoring path) must produce the same frame as a fitted pipeline with
// the same groups.
func TestFrameBuilderMatchesFittedPipeline(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, 30)
	days := src.DaysPerMonth()
	fitted, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{
		Forest: tree.ForestConfig{NumTrees: 5, MinLeafSamples: 20, Seed: 1},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	builder := NewFrameBuilder(Config{})
	win := MonthSpec(4, days).Features
	fa, err := fitted.BuildFrame(src, win, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := builder.BuildFrame(src, win, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fa.NumColumns() != fb.NumColumns() || fa.NumRows() != fb.NumRows() {
		t.Fatalf("frame shapes differ: %dx%d vs %dx%d",
			fa.NumRows(), fa.NumColumns(), fb.NumRows(), fb.NumColumns())
	}
	for _, id := range fa.IDs()[:50] {
		ra, _ := fa.Row(id)
		rb, _ := fb.Row(id)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("frame value mismatch for customer %d column %d", id, j)
			}
		}
	}
}

// Package core implements the churn prediction pipeline of Figure 3/6: the
// 15-day labeling rule, the sliding-window protocol (features from month
// N-1, labels from month N, prediction for month N+1), feature-group
// assembly over the features package, imbalance handling, and pluggable
// classifiers (random forest by default).
package core

import (
	"fmt"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// Source provides raw tables for feature windows and truth tables for
// labeling. Implementations: MemorySource over simulator output and
// WarehouseSource over the on-disk store.
type Source interface {
	// Tables returns the raw tables covering the window.
	Tables(win features.Window) (features.Tables, error)
	// Truth returns the hidden ground-truth table of a month (used only for
	// labels and for the retention simulation).
	Truth(month int) (*table.Table, error)
	// DaysPerMonth returns the calendar granularity of the source.
	DaysPerMonth() int
}

// PartialSource is a Source that can assemble a window even when some raw
// tables are unavailable, reporting which tables were replaced by empty
// stand-ins instead of failing the whole window.
type PartialSource interface {
	Source
	// TablesPartial returns the window's tables with unavailable ones
	// substituted by schema-correct empties, plus the names of the missing
	// tables. Only a missing customer snapshot is fatal
	// (features.ErrUniverseUnavailable).
	TablesPartial(win features.Window) (features.Tables, []string, error)
}

// ReaderSource is a Source backed by a per-table reader. Wrappers (retry,
// fault injection) use it to interpose per table instead of per window, so
// one flaky feed retries alone and degrades alone.
type ReaderSource interface {
	Source
	TableReader() features.TableReader
}

// MemorySource serves simulator output held in memory.
type MemorySource struct {
	months map[int]*synth.MonthData
	days   int
}

// NewMemorySource indexes the given months. daysPerMonth should match the
// generator config (synth.DefaultConfig().DaysPerMonth unless overridden).
func NewMemorySource(months []*synth.MonthData, daysPerMonth int) *MemorySource {
	m := make(map[int]*synth.MonthData, len(months))
	for _, md := range months {
		m[md.Month] = md
	}
	return &MemorySource{months: m, days: daysPerMonth}
}

// Tables implements Source by concatenating the window's months.
func (s *MemorySource) Tables(win features.Window) (features.Tables, error) {
	var mds []*synth.MonthData
	for _, m := range win.Months(s.days) {
		md, ok := s.months[m]
		if !ok {
			return features.Tables{}, fmt.Errorf("core: month %d not in memory source", m)
		}
		mds = append(mds, md)
	}
	return features.FromMonthData(mds)
}

// Truth implements Source.
func (s *MemorySource) Truth(month int) (*table.Table, error) {
	md, ok := s.months[month]
	if !ok {
		return nil, fmt.Errorf("core: truth month %d not in memory source", month)
	}
	return md.Truth, nil
}

// DaysPerMonth implements Source.
func (s *MemorySource) DaysPerMonth() int { return s.days }

// TablesPartial implements PartialSource. Memory months are all-or-nothing
// (the simulator emits whole months), so there is no per-table degradation:
// a healthy load reports no missing tables and a missing month fails.
func (s *MemorySource) TablesPartial(win features.Window) (features.Tables, []string, error) {
	t, err := s.Tables(win)
	return t, nil, err
}

// WarehouseSource serves tables from the on-disk store.
type WarehouseSource struct {
	wh   *store.Warehouse
	days int
}

// NewWarehouseSource wraps a warehouse.
func NewWarehouseSource(wh *store.Warehouse, daysPerMonth int) *WarehouseSource {
	return &WarehouseSource{wh: wh, days: daysPerMonth}
}

// Tables implements Source.
func (s *WarehouseSource) Tables(win features.Window) (features.Tables, error) {
	return features.LoadTables(s.wh, win, s.days)
}

// Truth implements Source.
func (s *WarehouseSource) Truth(month int) (*table.Table, error) {
	return s.wh.ReadPartition(synth.TableTruth, month)
}

// DaysPerMonth implements Source.
func (s *WarehouseSource) DaysPerMonth() int { return s.days }

// TablesPartial implements PartialSource via degraded wide-table loading.
func (s *WarehouseSource) TablesPartial(win features.Window) (features.Tables, []string, error) {
	return features.LoadTablesPartial(s.wh, win, s.days)
}

// TableReader implements ReaderSource.
func (s *WarehouseSource) TableReader() features.TableReader { return s.wh }

// LabelsOf converts a truth table into a label map: customer -> 0/1 churn
// per the paper's 15-day recharge rule (already applied by the generator,
// exactly as the operator's BI system applies it upstream of the paper's
// pipeline).
func LabelsOf(truth *table.Table) map[int64]int {
	imsi := truth.MustCol("imsi").Ints
	churn := truth.MustCol("churn").Ints
	out := make(map[int64]int, len(imsi))
	for i, id := range imsi {
		out[id] = int(churn[i])
	}
	return out
}

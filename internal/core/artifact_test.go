package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"telcochurn/internal/features"
	"telcochurn/internal/fm"
	"telcochurn/internal/linear"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// artifactWorld simulates a small world once for all artifact tests.
func artifactWorld(t *testing.T) (*MemorySource, []WindowSpec, features.Window) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Customers = 400
	cfg.Months = 4
	cfg.Seed = 7
	months := synth.Simulate(cfg)
	src := NewMemorySource(months, cfg.DaysPerMonth)
	return src, []WindowSpec{MonthSpec(2, cfg.DaysPerMonth)}, features.MonthWindow(3, cfg.DaysPerMonth)
}

func fitSaveLoadPredict(t *testing.T, src *MemorySource, train []WindowSpec, win features.Window, cfg Config) {
	t.Helper()
	p, err := Fit(src, train, cfg)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	want, err := p.Predict(src, win)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}

	var buf bytes.Buffer
	n, err := p.Save(&buf)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("Save reported %d bytes, wrote %d", n, buf.Len())
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if q.Classifier().Name() != p.Classifier().Name() {
		t.Errorf("classifier %q, want %q", q.Classifier().Name(), p.Classifier().Name())
	}
	gotNames, wantNames := q.FeatureNames(), p.FeatureNames()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("feature names: %d vs %d", len(gotNames), len(wantNames))
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Fatalf("feature %d: %q vs %q", i, gotNames[i], wantNames[i])
		}
	}
	if q.SchemaChecksum() != p.SchemaChecksum() {
		t.Error("schema checksum changed across the round trip")
	}

	got, err := q.Predict(src, win)
	if err != nil {
		t.Fatalf("predict after load: %v", err)
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("prediction count %d, want %d", len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("id %d: %d vs %d", i, got.IDs[i], want.IDs[i])
		}
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("score for customer %d not bit-identical: %v vs %v",
				want.IDs[i], got.Scores[i], want.Scores[i])
		}
	}
}

// TestArtifactRoundTrip checks save -> load -> Predict bit-identity for
// every built-in classifier family.
func TestArtifactRoundTrip(t *testing.T) {
	src, train, win := artifactWorld(t)
	forest := tree.ForestConfig{NumTrees: 12, MinLeafSamples: 10, Seed: 1}
	cases := map[string]Config{
		"RF":        {Forest: forest, Seed: 1},
		"GBDT":      {Classifier: &GBDTClassifier{Config: tree.GBDTConfig{NumTrees: 15, MaxDepth: 3, MinLeafSamples: 10, Seed: 1}}, Seed: 1},
		"LIBLINEAR": {Classifier: &LinearClassifier{Config: linear.Config{Epochs: 5, Seed: 1}}, Seed: 1},
		"LIBFM":     {Classifier: &FMClassifier{Config: fm.Config{Epochs: 5, Seed: 1}}, Seed: 1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			fitSaveLoadPredict(t, src, train, win, cfg)
		})
	}
}

// TestArtifactRoundTripAllGroups exercises the fitted-feature-model
// sections: topic featurizers (F7/F8) and the FM second-order selector (F9)
// must fold in and apply bit-identically after a round trip.
func TestArtifactRoundTripAllGroups(t *testing.T) {
	src, train, win := artifactWorld(t)
	cfg := Config{
		Groups: features.AllGroups(),
		Forest: tree.ForestConfig{NumTrees: 8, MinLeafSamples: 10, Seed: 1},
		TopicK: 4,
		Seed:   1,
	}
	fitSaveLoadPredict(t, src, train, win, cfg)
}

// TestArtifactWorkerInvariance pins the determinism guarantee at the byte
// level: training the same pipeline under different parallelism must yield
// identical artifacts (Workers is runtime-only and is not persisted).
func TestArtifactWorkerInvariance(t *testing.T) {
	src, train, _ := artifactWorld(t)
	var bundles [2][]byte
	for i, workers := range []int{1, 8} {
		p, err := Fit(src, train, Config{
			Forest:  tree.ForestConfig{NumTrees: 8, MinLeafSamples: 10, Seed: 1, Workers: workers},
			Seed:    1,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		bundles[i] = buf.Bytes()
	}
	if !bytes.Equal(bundles[0], bundles[1]) {
		t.Fatal("artifact bytes differ between Workers=1 and Workers=8")
	}
}

func TestArtifactFile(t *testing.T) {
	src, train, win := artifactWorld(t)
	p, err := Fit(src, train, Config{Forest: tree.ForestConfig{NumTrees: 6, MinLeafSamples: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.tcpa")
	if err := p.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	q, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	want, _ := p.Predict(src, win)
	got, err := q.Predict(src, win)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatal("file round trip not bit-identical")
		}
	}
}

func TestArtifactRejectsCorruption(t *testing.T) {
	src, train, _ := artifactWorld(t)
	p, err := Fit(src, train, Config{Forest: tree.ForestConfig{NumTrees: 4, MinLeafSamples: 20, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flipped byte anywhere in the body fails the checksum.
	data := append([]byte(nil), good...)
	data[len(data)/2] ^= 0x20
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("corrupt body: err = %v, want ErrBadArtifact", err)
	}
	// Truncation.
	if _, err := Load(bytes.NewReader(good[:len(good)/3])); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("truncated: err = %v, want ErrBadArtifact", err)
	}
	// Wrong magic.
	if _, err := Load(bytes.NewReader([]byte("NOPE123456789"))); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("bad magic: err = %v, want ErrBadArtifact", err)
	}
	// A bare forest file is not a pipeline artifact.
	var fbuf bytes.Buffer
	rf := p.Classifier().(*RFClassifier)
	if _, err := rf.Forest().WriteTo(&fbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&fbuf); !errors.Is(err, ErrBadArtifact) {
		t.Errorf("forest file: err = %v, want ErrBadArtifact", err)
	}
}

func TestArtifactVersionMismatch(t *testing.T) {
	src, train, _ := artifactWorld(t)
	p, err := Fit(src, train, Config{Forest: tree.ForestConfig{NumTrees: 4, MinLeafSamples: 20, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(artifactMagic)] = ArtifactVersion + 9
	_, err = Load(bytes.NewReader(data))
	if !errors.Is(err, ErrArtifactVersion) {
		t.Errorf("future version: err = %v, want ErrArtifactVersion", err)
	}
	if errors.Is(err, ErrBadArtifact) {
		t.Error("version mismatch should be distinguishable from corruption")
	}
}

func TestSaveUnfittedPipeline(t *testing.T) {
	p := NewFrameBuilder(Config{})
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err == nil {
		t.Error("want error saving a frame-builder pipeline")
	}
}

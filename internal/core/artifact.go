package core

// Versioned pipeline-artifact persistence. A deployed churn system trains
// monthly but scores continuously (paper §5-6: the ranked list feeds the
// retention campaign loop), so the entire fitted pipeline — not just the
// forest — must survive process restarts and ship between the trainer and
// the scoring fleet. One bundle carries everything Predict needs: the
// schema version, the effective Config, the training feature names with
// their checksum, the fitted topic/second-order feature models, and the
// serialized classifier. Round trips are bit-identical: every float is
// stored as its exact IEEE-754 bits, so a loaded pipeline scores exactly
// like the in-memory one that was saved.
//
// Layout: "TCPA" magic, one version byte (both outside the checksum, so a
// future reader can reject a newer version before parsing), then a codec
// body (see internal/codec) with a trailing CRC32.

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"telcochurn/internal/codec"
	"telcochurn/internal/features"
	"telcochurn/internal/fm"
	"telcochurn/internal/linear"
	"telcochurn/internal/sampling"
	"telcochurn/internal/tree"
)

const artifactMagic = "TCPA"

// ArtifactVersion is the schema version this build writes. Version 2 added
// an optional precomputed feature-vector section after the classifier;
// readers accept both 1 and 2 (a v1 bundle simply loads with no vectors)
// and reject anything else with ErrArtifactVersion rather than guessing at
// the layout.
const ArtifactVersion = 2

// artifactVersionMin is the oldest schema version Load still reads.
const artifactVersionMin = 1

var (
	// ErrBadArtifact is returned when a bundle fails structural or checksum
	// validation.
	ErrBadArtifact = errors.New("core: corrupt pipeline artifact")
	// ErrArtifactVersion is returned when a bundle's schema version is not
	// the one this build understands.
	ErrArtifactVersion = errors.New("core: unsupported artifact version")
)

// classifier tags, stored in the bundle to dispatch deserialization. They
// deliberately match Classifier.Name for observability.
const (
	tagRF        = "RF"
	tagGBDT      = "GBDT"
	tagLiblinear = "LIBLINEAR"
	tagLibFM     = "LIBFM"
)

// Save serializes the fitted pipeline as one versioned bundle and returns
// the number of bytes written. It fails for pipelines whose classifier is a
// custom Classifier implementation (only the four built-in families have a
// wire format) and for unfitted frame-builder pipelines.
func (p *Pipeline) Save(w io.Writer) (int64, error) {
	if p.clf == nil {
		return 0, errors.New("core: cannot save an unfitted pipeline (NewFrameBuilder pipelines have no classifier)")
	}
	cw := codec.NewWriter(w, artifactMagic+string([]byte{ArtifactVersion}))

	// Effective config (Fit already applied WithDefaults, so zero values
	// here are real, not placeholders).
	cw.Uvarint(uint64(len(p.cfg.Groups)))
	for _, g := range p.cfg.Groups {
		cw.Uvarint(uint64(g))
	}
	cw.Uvarint(uint64(p.cfg.Imbalance))
	cw.Uvarint(uint64(p.cfg.TopicK))
	cw.Uvarint(uint64(p.cfg.SecondOrderPairs))
	cw.Int(p.cfg.Seed)
	cw.Uvarint(uint64(p.cfg.StableSeedStride))
	// Workers is deliberately not persisted: it is a host-runtime knob with
	// no effect on results, and leaving it out keeps the artifact bytes
	// identical whatever parallelism the trainer ran with.

	// Training schema: names plus their own checksum, so a scorer can
	// compare a freshly built frame against the artifact in O(1) and a
	// mismatch names the column instead of mis-scoring silently.
	cw.Strs(p.featNames)
	cw.Uvarint(uint64(schemaChecksum(p.featNames)))

	// Fitted feature models (presence-flagged: only the groups that were
	// configured have them).
	encodeOptional(cw, p.complaints != nil, func() { p.complaints.Encode(cw) })
	encodeOptional(cw, p.search != nil, func() { p.search.Encode(cw) })
	encodeOptional(cw, p.so != nil, func() { p.so.Encode(cw) })

	// Classifier section, tagged by family.
	switch c := p.clf.(type) {
	case *RFClassifier:
		cw.Str(tagRF)
		var buf bytes.Buffer
		if _, err := c.Forest().WriteTo(&buf); err != nil {
			return 0, err
		}
		cw.Bytes(buf.Bytes())
	case *GBDTClassifier:
		cw.Str(tagGBDT)
		var buf bytes.Buffer
		if _, err := c.model.WriteTo(&buf); err != nil {
			return 0, err
		}
		cw.Bytes(buf.Bytes())
	case *LinearClassifier:
		cw.Str(tagLiblinear)
		cw.Uvarint(uint64(c.Buckets))
		c.bin.Encode(cw)
		c.model.Encode(cw)
	case *FMClassifier:
		cw.Str(tagLibFM)
		cw.Uvarint(uint64(c.Buckets))
		c.bin.Encode(cw)
		c.model.Encode(cw)
	default:
		return 0, fmt.Errorf("core: classifier %T is not persistable", p.clf)
	}

	// v2: optional precomputed feature-vector snapshot (see vectors.go).
	encodeOptional(cw, p.vectors != nil, func() { p.vectors.encode(cw) })
	return cw.Close()
}

// SaveFile writes the bundle atomically: to a temp file in the target
// directory, then rename, so a crashed save never leaves a truncated
// artifact where the scorer expects a valid one.
func (p *Pipeline) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".artifact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := p.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}

// Load deserializes a pipeline bundle written by Save. The result predicts
// bit-identically to the pipeline that was saved.
func Load(r io.Reader) (*Pipeline, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(artifactMagic)+1 || string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadArtifact)
	}
	version := data[len(artifactMagic)]
	if version < artifactVersionMin || version > ArtifactVersion {
		return nil, fmt.Errorf("%w: bundle is version %d, this build reads versions %d-%d",
			ErrArtifactVersion, version, artifactVersionMin, ArtifactVersion)
	}
	rd, err := codec.NewReaderBytes(data, artifactMagic+string([]byte{version}))
	if err != nil {
		return nil, badArtifact(err)
	}

	p := &Pipeline{}
	nGroups := int(rd.Uvarint())
	if nGroups > len(features.AllGroups()) {
		return nil, fmt.Errorf("%w: %d feature groups", ErrBadArtifact, nGroups)
	}
	for i := 0; i < nGroups; i++ {
		g := features.Group(rd.Uvarint())
		if g < features.F1Baseline || g > features.F9SecondOrder {
			return nil, fmt.Errorf("%w: unknown feature group %d", ErrBadArtifact, g)
		}
		p.cfg.Groups = append(p.cfg.Groups, g)
	}
	p.cfg.Imbalance = sampling.Method(rd.Uvarint())
	p.cfg.TopicK = int(rd.Uvarint())
	p.cfg.SecondOrderPairs = int(rd.Uvarint())
	p.cfg.Seed = rd.Int()
	p.cfg.StableSeedStride = int(rd.Uvarint())
	p.cfg = p.cfg.WithDefaults()

	p.featNames = rd.Strs()
	wantSum := uint32(rd.Uvarint())
	if err := rd.Err(); err != nil {
		return nil, badArtifact(err)
	}
	if got := schemaChecksum(p.featNames); got != wantSum {
		return nil, fmt.Errorf("%w: feature-name checksum %08x, bundle says %08x", ErrBadArtifact, got, wantSum)
	}

	if err := decodeOptional(rd, func() error {
		tf, err := features.DecodeTopicFeaturizer(rd)
		p.complaints = tf
		return err
	}); err != nil {
		return nil, badArtifact(err)
	}
	if err := decodeOptional(rd, func() error {
		tf, err := features.DecodeTopicFeaturizer(rd)
		p.search = tf
		return err
	}); err != nil {
		return nil, badArtifact(err)
	}
	if err := decodeOptional(rd, func() error {
		so, err := features.DecodeSecondOrder(rd)
		p.so = so
		return err
	}); err != nil {
		return nil, badArtifact(err)
	}

	tag := rd.Str()
	if err := rd.Err(); err != nil {
		return nil, badArtifact(err)
	}
	switch tag {
	case tagRF:
		f, err := tree.ReadForest(bytes.NewReader(rd.Bytes()))
		if err != nil {
			return nil, badArtifact(err)
		}
		p.clf = &RFClassifier{forest: f, compiled: f.Compile()}
	case tagGBDT:
		g, err := tree.ReadGBDT(bytes.NewReader(rd.Bytes()))
		if err != nil {
			return nil, badArtifact(err)
		}
		p.clf = &GBDTClassifier{model: g, compiled: g.Compile()}
	case tagLiblinear:
		c := &LinearClassifier{Buckets: int(rd.Uvarint())}
		if c.bin, err = linear.DecodeBinarizer(rd); err != nil {
			return nil, badArtifact(err)
		}
		if c.model, err = linear.DecodeModel(rd); err != nil {
			return nil, badArtifact(err)
		}
		p.clf = c
	case tagLibFM:
		c := &FMClassifier{Buckets: int(rd.Uvarint())}
		if c.bin, err = linear.DecodeBinarizer(rd); err != nil {
			return nil, badArtifact(err)
		}
		if c.model, err = fm.DecodeModel(rd); err != nil {
			return nil, badArtifact(err)
		}
		p.clf = c
	default:
		return nil, fmt.Errorf("%w: unknown classifier tag %q", ErrBadArtifact, tag)
	}

	if version >= 2 {
		if err := decodeOptional(rd, func() error {
			v, err := decodeVectors(rd, len(p.featNames))
			p.vectors = v
			return err
		}); err != nil {
			return nil, badArtifact(err)
		}
	}
	if err := rd.Close(); err != nil {
		return nil, badArtifact(err)
	}
	return p, nil
}

// LoadFile reads a pipeline bundle from disk.
func LoadFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Config returns the pipeline's effective configuration (defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }

// SetWorkers sets the pipeline's frame-build/scoring parallelism — the
// artifact does not carry a worker count (a loaded pipeline defaults to all
// cores), so the serving host picks its own. Results are bit-identical for
// any value.
func (p *Pipeline) SetWorkers(n int) { p.cfg.Workers = n }

// SchemaChecksum returns the CRC32 of the training feature names, the quick
// schema-identity check stored in the artifact.
func (p *Pipeline) SchemaChecksum() uint32 { return schemaChecksum(p.featNames) }

// schemaChecksum hashes a feature-name list order-sensitively (names are
// NUL-separated so boundaries cannot alias).
func schemaChecksum(names []string) uint32 {
	h := crc32.NewIEEE()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

func encodeOptional(cw *codec.Writer, present bool, enc func()) {
	if !present {
		cw.Uvarint(0)
		return
	}
	cw.Uvarint(1)
	enc()
}

func decodeOptional(rd *codec.Reader, dec func() error) error {
	switch rd.Uvarint() {
	case 0:
		return rd.Err()
	case 1:
		return dec()
	default:
		rd.Fail("bad presence flag")
		return rd.Err()
	}
}

// badArtifact maps lower-layer corruption sentinels onto the artifact's.
func badArtifact(err error) error {
	if errors.Is(err, codec.ErrCorrupt) || errors.Is(err, tree.ErrBadModel) {
		return fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	return err
}

package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"telcochurn/internal/features"
	"telcochurn/internal/tree"
)

func precomputedPipeline(t *testing.T) (*Pipeline, *MemorySource, features.Window) {
	t.Helper()
	src, train, win := artifactWorld(t)
	p, err := Fit(src, train, Config{
		Groups: []features.Group{features.F1Baseline, features.F2CS},
		Forest: tree.ForestConfig{NumTrees: 10, MinLeafSamples: 10, Seed: 3},
		Seed:   3,
	})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if err := p.Precompute(src, win, 3); err != nil {
		t.Fatalf("precompute: %v", err)
	}
	return p, src, win
}

// TestPredictVectorsMatchesPredict: the precomputed snapshot scores
// bit-identically to the frame path over the same window.
func TestPredictVectorsMatchesPredict(t *testing.T) {
	p, src, win := precomputedPipeline(t)
	want, err := p.Predict(src, win)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	got, err := p.PredictVectors()
	if err != nil {
		t.Fatalf("predict vectors: %v", err)
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("row count %d, want %d", len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("id[%d] = %d, want %d", i, got.IDs[i], want.IDs[i])
		}
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("score for %d not bit-identical: %v vs %v", want.IDs[i], got.Scores[i], want.Scores[i])
		}
	}
	if v := p.Vectors(); v.Month() != 3 || v.NumRows() != len(want.IDs) || v.Width() != len(p.FeatureNames()) {
		t.Fatalf("vectors shape month=%d rows=%d width=%d", v.Month(), v.NumRows(), v.Width())
	}
}

// TestVectorsArtifactRoundTrip: a v2 bundle with vectors loads them back
// bit-identically, and serving from the loaded snapshot matches the saved
// pipeline exactly.
func TestVectorsArtifactRoundTrip(t *testing.T) {
	p, _, _ := precomputedPipeline(t)
	want, err := p.PredictVectors()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	v := q.Vectors()
	if v == nil {
		t.Fatal("loaded pipeline lost its vectors")
	}
	got, err := q.PredictVectors()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] || math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("row %d drifted across the round trip", i)
		}
	}

	// Point lookups come back as the exact persisted rows, alloc-free.
	pv := p.Vectors()
	for _, id := range pv.IDs()[:10] {
		a, ok1 := pv.Vector(id)
		b, ok2 := v.Vector(id)
		if !ok1 || !ok2 {
			t.Fatalf("customer %d missing from a snapshot", id)
		}
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("vector cell (%d,%d) drifted", id, j)
			}
		}
	}
	if _, ok := v.Vector(-12345); ok {
		t.Fatal("lookup of an unknown customer succeeded")
	}
	x := v.IDs()[0]
	if n := testing.AllocsPerRun(200, func() { v.Vector(x) }); n != 0 {
		t.Errorf("Vector allocates %.1f/op, want 0", n)
	}
}

// TestArtifactWithoutVectors: pipelines saved without Precompute stay
// loadable and report ErrNoVectors from the vectors path.
func TestArtifactWithoutVectors(t *testing.T) {
	src, train, _ := artifactWorld(t)
	p, err := Fit(src, train, Config{
		Forest: tree.ForestConfig{NumTrees: 8, MinLeafSamples: 10, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Vectors() != nil {
		t.Fatal("vectors materialized from nowhere")
	}
	if _, err := q.PredictVectors(); !errors.Is(err, ErrNoVectors) {
		t.Fatalf("PredictVectors error = %v, want ErrNoVectors", err)
	}
}

// TestLoadV1Artifact: a hand-downgraded v1 bundle (the pre-vectors layout)
// still loads. The vectors section is the only v2 addition, so a v1 body is
// byte-identical to a v2 body minus the trailing optional section.
func TestLoadV1Artifact(t *testing.T) {
	src, train, win := artifactWorld(t)
	p, err := Fit(src, train, Config{
		Forest: tree.ForestConfig{NumTrees: 8, MinLeafSamples: 10, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Predict(src, win)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := writeAsV1(t, buf.Bytes())
	q, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("load v1: %v", err)
	}
	got, err := q.Predict(src, win)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Scores {
		if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Fatalf("v1 score %d drifted", i)
		}
	}
}

// writeAsV1 rewrites a vectors-free v2 bundle as version 1: flip the version
// byte, drop the trailing `0` presence flag, and restamp the CRC. This is
// exactly the byte stream the previous release wrote.
func writeAsV1(t *testing.T, v2 []byte) []byte {
	t.Helper()
	if len(v2) < 10 {
		t.Fatal("bundle too short")
	}
	body := append([]byte(nil), v2[:len(v2)-5]...) // drop presence flag + CRC32
	body[len(artifactMagic)] = 1
	// Restamp the CRC over the body (everything after magic + version).
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(body[len(artifactMagic)+1:]))
	return append(body, tail[:]...)
}

package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
	"telcochurn/internal/tree"
)

// diskWorld writes a small simulated world into a fresh warehouse.
func diskWorld(t *testing.T) (*store.Warehouse, synth.Config) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Customers = 400
	cfg.Months = 4
	cfg.Seed = 5
	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.GenerateToWarehouse(cfg, wh); err != nil {
		t.Fatal(err)
	}
	return wh, cfg
}

// dropTables makes the named tables unavailable by removing their
// partition directories.
func dropTables(t *testing.T, wh *store.Warehouse, names ...string) {
	t.Helper()
	for _, name := range names {
		if err := os.RemoveAll(filepath.Join(wh.Root(), name)); err != nil {
			t.Fatal(err)
		}
	}
}

// noTruthSource serves tables normally but fails every truth read — the
// label feed being down while the raw feeds are healthy.
type noTruthSource struct{ Source }

func (s noTruthSource) Truth(month int) (*table.Table, error) {
	return nil, errors.New("truth feed down")
}

func samePredictions(t *testing.T, a, b *Predictions) {
	t.Helper()
	if len(a.IDs) != len(b.IDs) {
		t.Fatalf("id counts differ: %d vs %d", len(a.IDs), len(b.IDs))
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatalf("row %d: id %d vs %d", i, a.IDs[i], b.IDs[i])
		}
		if math.Float64bits(a.Scores[i]) != math.Float64bits(b.Scores[i]) {
			t.Fatalf("row %d (id %d): score %v vs %v — degraded path not bit-identical",
				i, a.IDs[i], a.Scores[i], b.Scores[i])
		}
	}
}

// TestPredictDegraded drives one fitted all-groups pipeline through the
// degradation ladder: healthy (bit-identical to strict), truth feed down,
// OSS/text tables gone, everything-but-customers gone (the F1-only floor),
// and finally the customer universe gone (fatal).
func TestPredictDegraded(t *testing.T) {
	wh, cfg := diskWorld(t)
	days := cfg.DaysPerMonth
	src := NewWarehouseSource(wh, days)
	p, err := Fit(src, []WindowSpec{MonthSpec(2, days)}, Config{
		Groups: features.AllGroups(),
		Forest: tree.ForestConfig{NumTrees: 15, MinLeafSamples: 15, Seed: 3},
		Seed:   3,
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	win := features.MonthWindow(3, days)

	strict, err := p.Predict(src, win)
	if err != nil {
		t.Fatalf("strict Predict: %v", err)
	}

	t.Run("healthy run is bit-identical to strict", func(t *testing.T) {
		got, err := p.PredictDegraded(src, win)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Degraded.Empty() {
			t.Errorf("healthy degraded mask = %s, want none", got.Degraded)
		}
		samePredictions(t, strict, got)
	})

	t.Run("truth feed down degrades graph groups", func(t *testing.T) {
		down := noTruthSource{src}
		if _, err := p.Predict(down, win); err == nil {
			t.Error("strict Predict survived a dead truth feed")
		}
		got, err := p.PredictDegraded(down, win)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []features.Group{features.F4CallGraph, features.F5MessageGraph, features.F6CooccurrenceGraph, features.F9SecondOrder} {
			if !got.Degraded.Has(g) {
				t.Errorf("mask %s missing %v", got.Degraded, g)
			}
		}
		if got.Degraded.Has(features.F1Baseline) {
			t.Errorf("mask %s flags F1 with all tables present", got.Degraded)
		}
		if len(got.IDs) != len(strict.IDs) {
			t.Errorf("scored %d customers, want %d", len(got.IDs), len(strict.IDs))
		}
	})

	t.Run("missing OSS and text tables", func(t *testing.T) {
		dropTables(t, wh, synth.TableWeb, synth.TableSearch, synth.TableLocations,
			synth.TableComplaints, synth.TableMessages)
		if _, err := p.Predict(src, win); err == nil {
			t.Error("strict Predict survived missing tables")
		}
		got, err := p.PredictDegraded(src, win)
		if err != nil {
			t.Fatal(err)
		}
		want := "F1,F3,F5,F6,F7,F8,F9"
		if got.Degraded.String() != want {
			t.Errorf("mask = %s, want %s", got.Degraded, want)
		}
		if len(got.IDs) != len(strict.IDs) {
			t.Errorf("scored %d customers, want %d", len(got.IDs), len(strict.IDs))
		}
	})

	t.Run("F1-only floor: every feed but customers gone", func(t *testing.T) {
		dropTables(t, wh, synth.TableCalls, synth.TableRecharges, synth.TableBilling)
		got, err := p.PredictDegraded(src, win)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range features.AllGroups() {
			if !got.Degraded.Has(g) {
				t.Errorf("mask %s missing %v with every feed down", got.Degraded, g)
			}
		}
		if len(got.IDs) != len(strict.IDs) {
			t.Errorf("scored %d customers, want %d", len(got.IDs), len(strict.IDs))
		}
		for _, s := range got.Scores {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("floor score out of range: %v", s)
			}
		}
	})

	t.Run("customer universe gone is fatal", func(t *testing.T) {
		dropTables(t, wh, synth.TableCustomers)
		_, err := p.PredictDegraded(src, win)
		if !errors.Is(err, features.ErrUniverseUnavailable) {
			t.Fatalf("err = %v, want ErrUniverseUnavailable", err)
		}
	})
}

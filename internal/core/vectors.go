package core

// Precomputed per-customer feature vectors. The paper's deployment scores
// the full prepaid base from a feature snapshot built once per cycle — so
// the serving hot path should not rebuild frames per request. Precompute
// flattens the wide table into one contiguous row-major []float64 plus a
// sorted customer index; the matrix persists inside the TCPA artifact
// (schema version 2) and churnd serves lookups straight out of it with zero
// allocations, keeping the frame path as a fallback for customers outside
// the snapshot and for degraded mode.

import (
	"errors"
	"fmt"

	"telcochurn/internal/codec"
	"telcochurn/internal/features"
)

// ErrNoVectors is returned by PredictVectors when the pipeline carries no
// precomputed feature matrix.
var ErrNoVectors = errors.New("core: pipeline has no precomputed feature vectors")

// FeatureVectors is an immutable row-major feature matrix keyed by customer
// id. Rows are the exact frame rows a strict BuildFrame produced at
// precompute time, so scoring them is bit-identical to the frame path.
type FeatureVectors struct {
	ids   []int64   // ascending, deduped (frame order)
	data  []float64 // len(ids)*width, row-major
	width int
	month int // feature (snapshot) month the vectors were built from
}

// vectorsFromFrame flattens a built frame. The frame's ids are already
// sorted ascending (features.NewFrame sorts and dedupes them).
func vectorsFromFrame(frame *features.Frame, month int) *FeatureVectors {
	ids := frame.IDs()
	v := &FeatureVectors{
		ids:   append([]int64(nil), ids...),
		width: frame.NumColumns(),
		month: month,
	}
	v.data = make([]float64, 0, len(ids)*v.width)
	for _, id := range ids {
		row, _ := frame.Row(id)
		v.data = append(v.data, row...)
	}
	return v
}

// Vector returns the feature row for id without allocating (the slice
// aliases the matrix; callers must not write through it). The bool reports
// whether the customer is in the snapshot.
func (v *FeatureVectors) Vector(id int64) ([]float64, bool) {
	// Hand-rolled binary search: sort.Search takes a closure, which would
	// allocate on the serving hot path.
	lo, hi := 0, len(v.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(v.ids) || v.ids[lo] != id {
		return nil, false
	}
	off := lo * v.width
	return v.data[off : off+v.width : off+v.width], true
}

// At returns row i in id order (aliases the matrix, like Vector).
func (v *FeatureVectors) At(i int) []float64 {
	off := i * v.width
	return v.data[off : off+v.width : off+v.width]
}

// IDs returns the snapshot's customer ids, ascending. Callers must not
// mutate the returned slice.
func (v *FeatureVectors) IDs() []int64 { return v.ids }

// NumRows returns the number of customers in the snapshot.
func (v *FeatureVectors) NumRows() int { return len(v.ids) }

// Width returns the feature count per row.
func (v *FeatureVectors) Width() int { return v.width }

// Month returns the feature month the snapshot was built from.
func (v *FeatureVectors) Month() int { return v.month }

// Precompute builds the window's wide table strictly (no degraded
// imputation — a snapshot baked from an outage would silently mis-score
// until the next train) and stores it on the pipeline as the serving
// feature matrix; Save persists it into the artifact. month is recorded so
// loaders can tell which month the snapshot describes.
func (p *Pipeline) Precompute(src Source, win features.Window, month int) error {
	if p.clf == nil {
		return errors.New("core: precompute needs a fitted pipeline")
	}
	frame, err := p.BuildFrame(src, win, false, nil)
	if err != nil {
		return err
	}
	if got := schemaChecksum(frame.Names()); got != schemaChecksum(p.featNames) {
		return fmt.Errorf("core: precompute frame schema %08x does not match training schema %08x",
			got, schemaChecksum(p.featNames))
	}
	p.vectors = vectorsFromFrame(frame, month)
	return nil
}

// Vectors returns the precomputed feature matrix, or nil if the pipeline
// has none (artifact older than v2, or trained without Precompute).
func (p *Pipeline) Vectors() *FeatureVectors { return p.vectors }

// PredictVectors scores every customer of the precomputed snapshot without
// touching the warehouse. Scores are bit-identical to Predict over the same
// window: the rows are the frame's own rows and the classifier sees them in
// the same (ascending id) order.
func (p *Pipeline) PredictVectors() (*Predictions, error) {
	v := p.vectors
	if v == nil {
		return nil, ErrNoVectors
	}
	rows := make([][]float64, v.NumRows())
	for i := range rows {
		rows[i] = v.At(i)
	}
	scores := p.clf.ScoreAll(rows)
	return &Predictions{IDs: append([]int64(nil), v.ids...), Scores: scores}, nil
}

// encode writes the matrix as one artifact section (inside the bundle CRC).
func (v *FeatureVectors) encode(cw *codec.Writer) {
	cw.Uvarint(uint64(v.month))
	cw.Uvarint(uint64(v.width))
	cw.Uvarint(uint64(len(v.ids)))
	prev := int64(0)
	for _, id := range v.ids {
		// Ids are sorted, so deltas stay small varints.
		cw.Int(id - prev)
		prev = id
	}
	cw.Floats(v.data)
}

// decodeVectors reads the matrix section written by encode.
func decodeVectors(rd *codec.Reader, wantWidth int) (*FeatureVectors, error) {
	v := &FeatureVectors{
		month: int(rd.Uvarint()),
		width: int(rd.Uvarint()),
	}
	n := rd.Len()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if v.width != wantWidth {
		return nil, fmt.Errorf("%w: vector width %d, schema has %d features",
			ErrBadArtifact, v.width, wantWidth)
	}
	v.ids = make([]int64, n)
	prev := int64(0)
	for i := range v.ids {
		prev += rd.Int()
		v.ids[i] = prev
		if i > 0 && v.ids[i] <= v.ids[i-1] {
			rd.Fail("vector ids not strictly ascending")
			break
		}
	}
	v.data = rd.Floats()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if len(v.data) != n*v.width {
		return nil, fmt.Errorf("%w: vector matrix %d floats, want %d×%d",
			ErrBadArtifact, len(v.data), n, v.width)
	}
	return v, nil
}

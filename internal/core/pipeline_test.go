package core

import (
	"testing"

	"telcochurn/internal/features"
	"telcochurn/internal/sampling"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// simWorld caches one simulation shared by the package's tests.
var simWorld []*synth.MonthData

func testMonths(t *testing.T) []*synth.MonthData {
	t.Helper()
	if simWorld == nil {
		cfg := synth.DefaultConfig()
		cfg.Customers = 1500
		cfg.Months = 6
		simWorld = synth.Simulate(cfg)
	}
	return simWorld
}

func testForest() tree.ForestConfig {
	return tree.ForestConfig{NumTrees: 60, MinLeafSamples: 20, Seed: 42}
}

func TestPipelineBaselineEndToEnd(t *testing.T) {
	months := testMonths(t)
	src := NewMemorySource(months, synth.DefaultConfig().DaysPerMonth)
	days := src.DaysPerMonth()

	p, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{
		Forest: testForest(),
		Seed:   1,
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	u := synth.ScaleU(200000, 1500)
	preds, report, err := p.Evaluate(src, MonthSpec(4, days), u)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(preds) == 0 {
		t.Fatal("no test predictions")
	}
	t.Logf("baseline F1: %v (U=%d)", report, u)
	if report.AUC < 0.68 {
		t.Errorf("baseline AUC %.3f below sanity floor 0.68", report.AUC)
	}
	if report.PRAUC < 0.30 {
		t.Errorf("baseline PR-AUC %.3f below sanity floor 0.30", report.PRAUC)
	}
}

func TestPipelineAllGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("full feature build is slow")
	}
	months := testMonths(t)
	src := NewMemorySource(months, synth.DefaultConfig().DaysPerMonth)
	days := src.DaysPerMonth()

	p, err := Fit(src, []WindowSpec{MonthSpec(3, days)}, Config{
		Groups:    features.AllGroups(),
		Forest:    testForest(),
		Imbalance: sampling.WeightedInstance,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("Fit all groups: %v", err)
	}
	if got := len(p.FeatureNames()); got != 150 {
		t.Errorf("wide table has %d features, want the paper's 150", got)
	}
	u := synth.ScaleU(200000, 1500)
	_, report, err := p.Evaluate(src, MonthSpec(4, days), u)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	t.Logf("all groups: %v (U=%d)", report, u)
	if report.AUC < 0.75 {
		t.Errorf("all-groups AUC %.3f below sanity floor", report.AUC)
	}
}

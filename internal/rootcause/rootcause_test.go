package rootcause

import (
	"math"
	"testing"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

func TestCauseOfFeatureMapping(t *testing.T) {
	cases := map[string]Cause{
		"voice_quality":                 CauseQuality,
		"page_download_throughput":      CauseQuality,
		"complaint_topic_2":             CauseQuality,
		"call_10010_cnt":                CauseQuality,
		"total_charge":                  CausePrice,
		"product_price":                 CausePrice,
		"innet_dura_x_total_charge":     CausePrice,
		"labelpropagation_cooccurrence": CauseSocial,
		"pagerank_voice":                CauseSocial,
		"search_topic_0":                CauseCompetitor,
		"balance":                       CauseDisengagement,
		"recharge_value":                CauseDisengagement,
		"call_dur_decline":              CauseDisengagement,
		"last_active_day":               CauseDisengagement,
		"age":                           CauseOther,
		"gender":                        CauseOther,
	}
	for name, want := range cases {
		if got := CauseOfFeature(name); got != want {
			t.Errorf("CauseOfFeature(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestCauseStrings(t *testing.T) {
	for _, c := range Causes() {
		if c.String() == "" || c.String()[0] == 'C' && c != CauseOther {
			// Only the fallback formats as Cause(n); all real ones are prose.
		}
	}
	if CauseQuality.String() != "network quality" {
		t.Errorf("CauseQuality = %q", CauseQuality.String())
	}
	if Cause(99).String() != "Cause(99)" {
		t.Errorf("fallback = %q", Cause(99).String())
	}
}

func TestExplainDecomposition(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 1200
	cfg.Months = 4
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)
	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(2, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 40, MinLeafSamples: 15, Seed: 5},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rf := pipe.Classifier().(*core.RFClassifier)
	ex := NewExplainer(rf.Forest())

	frame, err := pipe.BuildFrame(src, features.MonthWindow(3, cfg.DaysPerMonth), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var explanations []*Explanation
	var preds []eval.Prediction
	for _, id := range frame.IDs() {
		row, _ := frame.Row(id)
		e := ex.Explain(id, row, 5)
		// Decomposition identity: bias + sum(causes) == score.
		sum := e.Bias
		for _, v := range e.ByCause {
			sum += v
		}
		if math.Abs(sum-e.Score) > 1e-9 {
			t.Fatalf("decomposition broken: %g vs %g", sum, e.Score)
		}
		if math.Abs(e.Score-rf.Forest().Score(row)) > 1e-9 {
			t.Fatalf("explained score %g != forest score", e.Score)
		}
		if len(e.Top) != 5 {
			t.Fatalf("top = %d", len(e.Top))
		}
		explanations = append(explanations, e)
		preds = append(preds, eval.Prediction{ID: id, Score: e.Score})
	}

	// Operator report: primary causes over the top-scored decile.
	eval.ByScoreDesc(preds)
	var topExp []*Explanation
	byID := map[int64]*Explanation{}
	for _, e := range explanations {
		byID[e.ID] = e
	}
	for _, p := range preds[:len(preds)/10] {
		topExp = append(topExp, byID[p.ID])
	}
	share := CauseShare(topExp)
	total := 0.0
	for _, v := range share {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("cause shares sum to %g", total)
	}
	ranked := RankedCauses(share)
	if len(ranked) != len(Causes()) {
		t.Fatalf("ranked = %d causes", len(ranked))
	}
	if share[ranked[0]] < share[ranked[len(ranked)-1]] {
		t.Error("RankedCauses not descending")
	}
	if topExp[0].String() == "" {
		t.Error("empty explanation string")
	}
}

func TestCauseShareEmpty(t *testing.T) {
	share := CauseShare(nil)
	if len(share) != 0 {
		t.Errorf("empty share = %v", share)
	}
}

// Package rootcause implements the paper's stated extension (Section 6):
// "inferring root causes of churners for actionable and suitable retention
// strategies". It turns the random forest's decision-path attributions into
// an actionable cause taxonomy per predicted churner — is this customer
// leaving over network quality, price, social contagion, or general
// disengagement? — which is exactly what decides the matching retention
// lever (network optimization vs cashback vs community offers).
package rootcause

import (
	"fmt"
	"sort"
	"strings"

	"telcochurn/internal/tree"
)

// Cause is an actionable churn-driver category.
type Cause int

// The cause taxonomy, ordered by the retention lever it maps to.
const (
	// CauseQuality: bad CS/PS experience — hand to network optimization.
	CauseQuality Cause = iota
	// CausePrice: price sensitivity and spend signals — cashback offers.
	CausePrice
	// CauseSocial: graph contagion and community effects — community offers.
	CauseSocial
	// CauseDisengagement: usage collapse, balance drain — win-back bundles.
	CauseDisengagement
	// CauseCompetitor: competitor-oriented search/topic signals — counter-offers.
	CauseCompetitor
	// CauseOther: demographics and everything unmapped.
	CauseOther
	numCauses
)

// String returns the category label.
func (c Cause) String() string {
	switch c {
	case CauseQuality:
		return "network quality"
	case CausePrice:
		return "price"
	case CauseSocial:
		return "social contagion"
	case CauseDisengagement:
		return "disengagement"
	case CauseCompetitor:
		return "competitor pull"
	case CauseOther:
		return "other"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Causes lists the taxonomy in order.
func Causes() []Cause {
	out := make([]Cause, numCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// CauseOfFeature maps a wide-table feature name to its cause category, using
// the feature naming conventions of the features package.
func CauseOfFeature(name string) Cause {
	switch {
	// Quality: the F2 CS KPIs and the F3 PS KPIs.
	case strings.HasPrefix(name, "call_success_rate"), strings.HasPrefix(name, "e2e_"),
		strings.HasPrefix(name, "call_drop_rate"), strings.Contains(name, "mos"),
		strings.HasPrefix(name, "voice_quality"), strings.HasPrefix(name, "oneway_"),
		strings.HasPrefix(name, "noise_"), strings.HasPrefix(name, "echo_"),
		strings.HasPrefix(name, "page_response"), strings.HasPrefix(name, "page_browsing"),
		strings.HasPrefix(name, "page_download"), strings.HasPrefix(name, "upload_"),
		strings.HasPrefix(name, "tcp_"), strings.HasPrefix(name, "complaint_topic_"),
		name == "complaint_cnt", name == "call_10010_cnt", name == "call_10010_manual_cnt":
		return CauseQuality
	// Price: spend, product and charge signals.
	case name == "total_charge", name == "gprs_charge", name == "p2p_sms_mo_charge",
		strings.HasPrefix(name, "product_"), name == "balance_rate",
		strings.Contains(name, "_x_"): // second-order spend interactions
		return CausePrice
	// Social: graph features.
	case strings.HasPrefix(name, "pagerank_"), strings.HasPrefix(name, "labelpropagation_"):
		return CauseSocial
	// Competitor pull: search topics.
	case strings.HasPrefix(name, "search_topic_"):
		return CauseCompetitor
	// Disengagement: balance, recharge and usage-volume/decline signals.
	case name == "balance", strings.HasPrefix(name, "recharge_"),
		strings.HasPrefix(name, "last_"), strings.Contains(name, "decline"),
		strings.Contains(name, "_dur"), strings.Contains(name, "_cnt"),
		strings.Contains(name, "minutes"), strings.Contains(name, "flux"),
		strings.HasPrefix(name, "active_"), strings.HasPrefix(name, "ps_"),
		strings.HasPrefix(name, "page_cnt"), strings.HasPrefix(name, "email_"),
		strings.HasPrefix(name, "streaming_"), strings.HasPrefix(name, "sms_"),
		strings.HasPrefix(name, "mms_"), strings.HasPrefix(name, "gift_"),
		strings.HasPrefix(name, "voice_"), strings.HasPrefix(name, "caller_"):
		return CauseDisengagement
	default:
		return CauseOther
	}
}

// Explanation is one customer's churn-score decomposition.
type Explanation struct {
	ID    int64
	Score float64
	Bias  float64
	// ByCause holds the summed signed contribution of each category.
	ByCause map[Cause]float64
	// Top holds the strongest individual feature attributions.
	Top []tree.Contribution
}

// Primary returns the category with the largest positive contribution — the
// customer's inferred root cause.
func (e *Explanation) Primary() Cause {
	best, bestV := CauseOther, 0.0
	first := true
	for _, c := range Causes() {
		v := e.ByCause[c]
		if first || v > bestV {
			best, bestV = c, v
			first = false
		}
	}
	return best
}

// String renders a one-line summary.
func (e *Explanation) String() string {
	return fmt.Sprintf("customer %d score=%.3f primary=%s", e.ID, e.Score, e.Primary())
}

// Explainer decomposes forest scores.
type Explainer struct {
	forest *tree.Forest
	names  []string
	causes []Cause
}

// NewExplainer prepares an explainer for a trained forest (feature names are
// taken from the forest's training dataset).
func NewExplainer(f *tree.Forest) *Explainer {
	names := f.FeatureNames()
	causes := make([]Cause, len(names))
	for i, n := range names {
		causes[i] = CauseOfFeature(n)
	}
	return &Explainer{forest: f, names: names, causes: causes}
}

// Explain decomposes one customer's churn score (topK strongest individual
// features are included; pass 0 for none).
func (ex *Explainer) Explain(id int64, x []float64, topK int) *Explanation {
	bias, contrib := ex.forest.Contributions(x)
	e := &Explanation{
		ID:      id,
		Bias:    bias,
		ByCause: make(map[Cause]float64, numCauses),
	}
	score := bias
	for i, c := range contrib {
		score += c
		e.ByCause[ex.causes[i]] += c
	}
	e.Score = score
	if topK > 0 {
		e.Top = ex.forest.TopContributions(x, topK)
	}
	return e
}

// CauseShare aggregates primary causes over many explanations — the
// operator-level "why are our customers leaving" report.
func CauseShare(explanations []*Explanation) map[Cause]float64 {
	counts := make(map[Cause]float64, numCauses)
	for _, e := range explanations {
		counts[e.Primary()]++
	}
	if len(explanations) > 0 {
		for c := range counts {
			counts[c] /= float64(len(explanations))
		}
	}
	return counts
}

// RankedCauses returns causes by descending share.
func RankedCauses(share map[Cause]float64) []Cause {
	cs := Causes()
	sort.SliceStable(cs, func(i, j int) bool { return share[cs[i]] > share[cs[j]] })
	return cs
}

package retention

import (
	"testing"

	"telcochurn/internal/core"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// campaignPair holds the two campaigns of the closed-loop experiment.
type campaignPair struct {
	first, second *CampaignResult
}

// runBothCampaigns trains the churn pipeline, runs the random-offer month-8
// campaign and the classifier-matched month-9 campaign.
func runBothCampaigns(t *testing.T, cfg synth.Config) campaignPair {
	t.Helper()
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)

	pipe, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(6, cfg.DaysPerMonth)}, core.Config{
		Forest: tree.ForestConfig{NumTrees: 80, MinLeafSamples: 20, Seed: 7},
		Seed:   7,
	})
	if err != nil {
		t.Fatalf("churn pipeline fit: %v", err)
	}
	runner := NewRunner(src, pipe, Config{
		TopTier:    synth.ScaleU(50000, cfg.Customers),
		SecondTier: synth.ScaleU(100000, cfg.Customers),
		Seed:       7,
	})
	pilot, err := runner.RunPilotCampaign(7)
	if err != nil {
		t.Fatalf("pilot campaign: %v", err)
	}
	first, err := runner.RunFirstCampaign(8)
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	clf, err := runner.FitOfferClassifier(pilot, first)
	if err != nil {
		t.Fatalf("offer classifier: %v", err)
	}
	second, err := runner.RunMatchedCampaign(9, clf)
	if err != nil {
		t.Fatalf("matched campaign: %v", err)
	}
	return campaignPair{first: first, second: second}
}

func TestCampaignClosedLoop(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 2000
	cfg.Months = 9
	pair := runBothCampaigns(t, cfg)
	first, second := pair.first, pair.second
	for _, s := range first.Stats {
		t.Logf("month 8 tier %d group %c: %d/%d = %.2f%%", s.Tier, s.Group, s.Recharged, s.Total, 100*s.Rate())
	}
	for _, s := range second.Stats {
		t.Logf("month 9 tier %d group %c: %d/%d = %.2f%%", s.Tier, s.Group, s.Recharged, s.Total, 100*s.Rate())
	}

	// The paper's Table 6 contrasts: control ≪ random offers ≤ matched
	// offers. Cells hold a handful of acceptances at test scale, so the
	// treatment-vs-control check pools both tiers and the matched-vs-random
	// check allows binomial noise (the profit test and the tab6 experiment
	// assert the stronger claim at campaign scale).
	pooled := func(r *CampaignResult, group byte) float64 {
		total, recharged := 0, 0
		for _, s := range r.Stats {
			if s.Group == group {
				total += s.Total
				recharged += s.Recharged
			}
		}
		if total == 0 {
			return 0
		}
		return float64(recharged) / float64(total)
	}
	if a, b := pooled(first, 'A'), pooled(first, 'B'); b <= a {
		t.Errorf("month 8: treatment rate %.3f should exceed control %.3f", b, a)
	}
	if a, b := pooled(second, 'A'), pooled(second, 'B'); b <= a {
		t.Errorf("month 9: treatment rate %.3f should exceed control %.3f", b, a)
	}
	if m8, m9 := pooled(first, 'B'), pooled(second, 'B'); m9 < m8-0.08 {
		t.Errorf("matched offers (month 9, %.3f) far below random offers (month 8, %.3f)", m9, m8)
	}
}

// Package retention implements the campaign system of Sections 4.3 and 5.5:
// A/B-tested recharge offers for predicted churners, a multi-class random
// forest that learns to match offers to customers from campaign feedback,
// and label-propagation features from campaign labels — the closed loop of
// Figure 3.
//
// Offer acceptance is simulated from the generator's latent per-customer
// state (best offer and retainability), which features can predict only
// through the usage behaviors those latents drive — exactly the learning
// problem the deployed system faces.
package retention

import (
	"errors"
	"fmt"
	"math/rand"

	"telcochurn/internal/core"
	"telcochurn/internal/dataset"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/graph"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
	"telcochurn/internal/tree"
)

// Acceptance multipliers: an offer matching the customer's latent preference
// converts far better than an arbitrary one (calibrated to Table 6's
// month-8 vs month-9 contrast).
const (
	matchedOfferMult = 0.62
	otherOfferMult   = 0.15
)

// Config parameterizes the two-month campaign experiment.
type Config struct {
	// TopTier and SecondTier are the ranked-list cutoffs, the paper's
	// 50 000 and 100 000 scaled to the simulated population.
	TopTier, SecondTier int
	// PilotTier is how deep pilot (learning) campaigns target; default
	// 3 x SecondTier. Pilots trade precision for feedback volume: every
	// extra acceptance is a labeled example for the offer classifier.
	PilotTier int
	// Seed drives A/B splits, offer randomization and acceptance draws.
	Seed int64
	// Retention classifier ensemble size (default 120).
	NumTrees int
	// MinLeafSamples for the retention forest (default 2 — the training
	// set is the handful of accepted offers, every example counts).
	MinLeafSamples int
}

func (c Config) withDefaults() Config {
	if c.NumTrees == 0 {
		c.NumTrees = 120
	}
	if c.MinLeafSamples == 0 {
		c.MinLeafSamples = 2
	}
	if c.PilotTier == 0 {
		c.PilotTier = 3 * c.SecondTier
	}
	return c
}

// Target is one customer selected for a campaign.
type Target struct {
	ID    int64
	Tier  int  // 1 = top tier, 2 = second tier
	Group byte // 'A' control, 'B' treatment
	Offer int  // synth.OfferNone for group A
	// Outcome.
	Recharged bool
	Accepted  bool // accepted the offer (implies Recharged)
}

// TierStats aggregates Table 6's cells.
type TierStats struct {
	Tier      int
	Group     byte
	Total     int
	Recharged int
}

// Rate returns the recharge rate.
func (s TierStats) Rate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Recharged) / float64(s.Total)
}

// CampaignResult is one month's campaign outcome.
type CampaignResult struct {
	Month   int
	Targets []Target
	Stats   []TierStats // 4 rows: tier1/A, tier1/B, tier2/A, tier2/B
}

// statsOf aggregates targets into the four Table 6 cells.
func statsOf(month int, targets []Target) *CampaignResult {
	res := &CampaignResult{Month: month, Targets: targets}
	idx := map[[2]any]*TierStats{}
	order := [][2]any{{1, byte('A')}, {1, byte('B')}, {2, byte('A')}, {2, byte('B')}}
	for _, k := range order {
		idx[k] = &TierStats{Tier: k[0].(int), Group: k[1].(byte)}
	}
	for _, t := range targets {
		s := idx[[2]any{t.Tier, t.Group}]
		s.Total++
		if t.Recharged {
			s.Recharged++
		}
	}
	for _, k := range order {
		res.Stats = append(res.Stats, *idx[k])
	}
	return res
}

// truthInfo is the per-customer hidden state the acceptance simulation uses.
type truthInfo struct {
	decided    bool
	inRecharge bool
	daysToRech int
	bestOffer  int
	retainBase float64
}

func truthMap(t *table.Table) map[int64]truthInfo {
	imsi := t.MustCol("imsi").Ints
	decided := t.MustCol("decided").Ints
	inR := t.MustCol("in_recharge").Ints
	days := t.MustCol("days_to_recharge").Ints
	best := t.MustCol("best_offer").Ints
	base := t.MustCol("retain_base").Floats
	out := make(map[int64]truthInfo, len(imsi))
	for i, id := range imsi {
		out[id] = truthInfo{
			decided:    decided[i] == 1,
			inRecharge: inR[i] == 1,
			daysToRech: int(days[i]),
			bestOffer:  int(best[i]),
			retainBase: base[i],
		}
	}
	return out
}

// acceptProb is the simulated probability that a decided churner accepts the
// offer and recharges.
func acceptProb(offer, bestOffer int, retainBase float64) float64 {
	if offer == synth.OfferNone {
		return 0
	}
	if offer == bestOffer {
		return retainBase * matchedOfferMult
	}
	return retainBase * otherOfferMult
}

// selectTargets ranks predictions descending and assigns tiers and A/B
// groups.
func selectTargets(preds []eval.Prediction, cfg Config, rng *rand.Rand) []Target {
	sorted := make([]eval.Prediction, len(preds))
	copy(sorted, preds)
	eval.ByScoreDesc(sorted)
	var targets []Target
	for rank, p := range sorted {
		if rank >= cfg.SecondTier {
			break
		}
		tier := 1
		if rank >= cfg.TopTier {
			tier = 2
		}
		group := byte('A')
		if rng.Float64() < 0.5 {
			group = 'B'
		}
		targets = append(targets, Target{ID: p.ID, Tier: tier, Group: group})
	}
	return targets
}

// simulateOutcomes draws each target's recharge outcome from the campaign
// month's hidden state.
func simulateOutcomes(targets []Target, truth map[int64]truthInfo, rng *rand.Rand) {
	for i := range targets {
		t := &targets[i]
		info, ok := truth[t.ID]
		if !ok {
			// Left the population before the campaign month; counts as not
			// recharged.
			continue
		}
		if info.decided {
			if rng.Float64() < acceptProb(t.Offer, info.bestOffer, info.retainBase) {
				t.Accepted = true
				t.Recharged = true
			}
			continue
		}
		// False positive: natural recharge behavior.
		t.Recharged = info.inRecharge && info.daysToRech >= 1 && info.daysToRech <= 15
	}
}

// Runner executes the two-campaign experiment against a fitted churn
// pipeline.
type Runner struct {
	cfg  Config
	src  core.Source
	pipe *core.Pipeline
}

// NewRunner builds a campaign runner.
func NewRunner(src core.Source, pipe *core.Pipeline, cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), src: src, pipe: pipe}
}

// RunPilotCampaign runs a pure learning campaign: the top PilotTier
// predicted churners all receive a uniformly random offer (no control
// group) and the outcomes feed FitOfferClassifier. Operators run these
// before committing to matched campaigns — feedback volume is what makes
// the closed loop converge.
func (r *Runner) RunPilotCampaign(campaignMonth int) (*CampaignResult, error) {
	days := r.src.DaysPerMonth()
	preds, _, err := r.pipe.Evaluate(r.src, core.MonthSpec(campaignMonth-1, days), r.cfg.TopTier)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed + 7700 + int64(campaignMonth)))
	sorted := make([]eval.Prediction, len(preds))
	copy(sorted, preds)
	eval.ByScoreDesc(sorted)
	var targets []Target
	for rank, p := range sorted {
		if rank >= r.cfg.PilotTier {
			break
		}
		tier := 1
		if rank >= r.cfg.TopTier {
			tier = 2
		}
		targets = append(targets, Target{
			ID: p.ID, Tier: tier, Group: 'B', Offer: 1 + rng.Intn(synth.NumOffers),
		})
	}
	truthT, err := r.src.Truth(campaignMonth)
	if err != nil {
		return nil, err
	}
	simulateOutcomes(targets, truthMap(truthT), rng)
	return statsOf(campaignMonth, targets), nil
}

// RunFirstCampaign targets the predicted churners of campaign month
// (features from campaignMonth-1), assigns group-B offers uniformly at
// random (the paper's month-8 "domain knowledge" assignment performed no
// better than random), and simulates outcomes.
func (r *Runner) RunFirstCampaign(campaignMonth int) (*CampaignResult, error) {
	days := r.src.DaysPerMonth()
	preds, _, err := r.pipe.Evaluate(r.src, core.MonthSpec(campaignMonth-1, days), r.cfg.TopTier)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(campaignMonth)))
	targets := selectTargets(preds, r.cfg, rng)
	for i := range targets {
		if targets[i].Group == 'B' {
			targets[i].Offer = 1 + rng.Intn(synth.NumOffers)
		}
	}
	truthT, err := r.src.Truth(campaignMonth)
	if err != nil {
		return nil, err
	}
	simulateOutcomes(targets, truthMap(truthT), rng)
	return statsOf(campaignMonth, targets), nil
}

// FitOfferClassifier trains the multi-class retention forest on prior
// campaigns' group-B feedback — the paper's closed loop where "class labels
// (retention results) are accumulated after each retention campaign"
// (Section 4.3). Training uses the accepted offers (classes 1..4): a
// rejection says the customer was hard to retain, not that the offer was a
// bad match, so it carries no best-offer information. Features are the
// churn wide table of each campaign's feature month plus 3×C
// label-propagation features from the newest campaign's labels.
func (r *Runner) FitOfferClassifier(prev ...*CampaignResult) (*OfferClassifier, error) {
	if len(prev) == 0 {
		return nil, errors.New("retention: no campaigns to learn from")
	}
	days := r.src.DaysPerMonth()
	newest := prev[len(prev)-1]
	lp, err := r.campaignLPFeatures(newest)
	if err != nil {
		return nil, err
	}

	var d *dataset.Dataset
	for _, campaign := range prev {
		featMonth := campaign.Month - 1
		frame, err := r.pipe.BuildFrame(r.src, features.MonthWindow(featMonth, days), false, nil)
		if err != nil {
			return nil, err
		}
		if d == nil {
			d = dataset.New(append(frame.Names(), lp.names...))
		}
		for _, t := range campaign.Targets {
			if t.Group != 'B' || !t.Accepted {
				continue
			}
			row, ok := frame.Row(t.ID)
			if !ok {
				continue
			}
			full := append(append([]float64(nil), row...), lp.rowFor(t.ID)...)
			d.X = append(d.X, full)
			d.Y = append(d.Y, t.Offer)
		}
	}
	if d == nil || d.NumInstances() == 0 {
		return nil, errors.New("retention: no accepted offers to learn from")
	}
	forest, err := tree.FitForest(d, tree.ForestConfig{
		NumTrees:       r.cfg.NumTrees,
		MinLeafSamples: r.cfg.MinLeafSamples,
		Seed:           r.cfg.Seed + 1001,
	})
	if err != nil {
		return nil, err
	}
	return &OfferClassifier{forest: forest, lp: lp, numClasses: synth.NumRetentionClass}, nil
}

// RunMatchedCampaign runs the next month's campaign with offers chosen by
// the fitted classifier (the paper's month 9).
func (r *Runner) RunMatchedCampaign(campaignMonth int, clf *OfferClassifier) (*CampaignResult, error) {
	days := r.src.DaysPerMonth()
	preds, _, err := r.pipe.Evaluate(r.src, core.MonthSpec(campaignMonth-1, days), r.cfg.TopTier)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed + int64(campaignMonth)))
	targets := selectTargets(preds, r.cfg, rng)

	frame, err := r.pipe.BuildFrame(r.src, features.MonthWindow(campaignMonth-1, days), false, nil)
	if err != nil {
		return nil, err
	}
	for i := range targets {
		if targets[i].Group != 'B' {
			continue
		}
		row, ok := frame.Row(targets[i].ID)
		if !ok {
			targets[i].Offer = 1 + rng.Intn(synth.NumOffers)
			continue
		}
		targets[i].Offer = clf.BestOffer(targets[i].ID, row)
	}
	truthT, err := r.src.Truth(campaignMonth)
	if err != nil {
		return nil, err
	}
	simulateOutcomes(targets, truthMap(truthT), rng)
	return statsOf(campaignMonth, targets), nil
}

// OfferClassifier matches offers to customers.
type OfferClassifier struct {
	forest     *tree.Forest
	lp         *lpFeatures
	numClasses int
}

// BestOffer returns the offer (1..NumOffers) with the highest predicted
// acceptance probability for the customer.
func (c *OfferClassifier) BestOffer(id int64, churnFeatures []float64) int {
	full := append(append([]float64(nil), churnFeatures...), c.lp.rowFor(id)...)
	probs := c.forest.PredictProba(full)
	best, bestP := synth.OfferCashback50, -1.0
	for offer := 1; offer < len(probs) && offer <= synth.NumOffers; offer++ {
		if probs[offer] > bestP {
			best, bestP = offer, probs[offer]
		}
	}
	return best
}

// Accuracy reports how often BestOffer matches the hidden best offer over
// the given truth table (diagnostic for tests).
func (c *OfferClassifier) Accuracy(frame interface {
	Row(int64) ([]float64, bool)
	IDs() []int64
}, truth *table.Table) float64 {
	tm := truthMap(truth)
	hit, total := 0, 0
	for _, id := range frame.IDs() {
		info, ok := tm[id]
		if !ok {
			continue
		}
		row, ok := frame.Row(id)
		if !ok {
			continue
		}
		total++
		if c.BestOffer(id, row) == info.bestOffer {
			hit++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// lpFeatures holds the 3×C label-propagation features from campaign labels.
type lpFeatures struct {
	names []string
	rows  map[int64][]float64
	width int
}

func (l *lpFeatures) rowFor(id int64) []float64 {
	if r, ok := l.rows[id]; ok {
		return r
	}
	uniform := make([]float64, l.width)
	for i := range uniform {
		uniform[i] = 1.0 / float64(synth.NumRetentionClass)
	}
	return uniform
}

// campaignLPFeatures propagates the campaign result labels over the three
// graphs of the campaign's feature month: "customers with close relationship
// tend to have similar retention offers."
func (r *Runner) campaignLPFeatures(prev *CampaignResult) (*lpFeatures, error) {
	days := r.src.DaysPerMonth()
	win := features.MonthWindow(prev.Month-1, days)
	tbl, err := r.src.Tables(win)
	if err != nil {
		return nil, err
	}
	seeds := make(map[int64]int)
	for _, t := range prev.Targets {
		if t.Group != 'B' {
			continue
		}
		if t.Accepted {
			seeds[t.ID] = t.Offer
		} else {
			seeds[t.ID] = synth.OfferNone
		}
	}
	known := make(map[int64]bool, len(seeds))
	for id := range seeds {
		known[id] = true
	}
	isCustomer := synth.IsCustomerID
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"voice", features.BuildCallGraph(tbl, win, days, isCustomer)},
		{"message", features.BuildMessageGraph(tbl, win, days, isCustomer)},
		{"cooccurrence", features.BuildCooccurrenceGraph(tbl, win, days, isCustomer)},
	}
	C := synth.NumRetentionClass
	out := &lpFeatures{rows: make(map[int64][]float64), width: 3 * C}
	for gi, ng := range graphs {
		for c := 0; c < C; c++ {
			out.names = append(out.names, fmt.Sprintf("retlp_%s_class%d", ng.name, c))
		}
		probs := ng.g.LabelPropagation(seeds, C, graph.LabelPropOptions{})
		for id, p := range probs {
			row, ok := out.rows[id]
			if !ok {
				row = make([]float64, out.width)
				for i := range row {
					row[i] = 1.0 / float64(C)
				}
				out.rows[id] = row
			}
			copy(row[gi*C:(gi+1)*C], p)
		}
	}
	return out, nil
}

package retention

import (
	"fmt"
	"io"

	"telcochurn/internal/synth"
)

// Economic model behind Section 5.5's business-value claim: an accepted
// offer keeps the customer "using the operator's service for the next 5
// months to get the 1/5 offer per month", so a retained churner is worth
// five months of ARPU minus the offer's cost, and matching offers in month
// 9 yields "around 50% more profit than Month 8".
type Economics struct {
	// MonthlyARPU is the average revenue per retained customer per month.
	MonthlyARPU float64
	// RetainedMonths is the commitment window (paper: 5).
	RetainedMonths int
	// OfferCost maps each offer (1..NumOffers) to the operator's cost of
	// honoring it.
	OfferCost map[int]float64
	// ContactCost is the per-target campaign cost (SMS/outbound call).
	ContactCost float64
}

// DefaultEconomics returns a plausible prepaid economics setting: ARPU 40,
// 5-month commitment, offer costs matching the four offers of Section 5.5.
func DefaultEconomics() Economics {
	return Economics{
		MonthlyARPU:    40,
		RetainedMonths: 5,
		OfferCost: map[int]float64{
			// Cashback is granted against the customer's own recharge, so
			// its effective cost is well below face value (the credit is
			// consumed as discounted usage the customer partly pays for).
			synth.OfferCashback100: 45,
			synth.OfferCashback50:  25,
			synth.OfferFlux500MB:   15, // 500 MB wholesale cost
			synth.OfferVoice200Min: 12, // 200 minutes wholesale cost
		},
		ContactCost: 0.5,
	}
}

// ProfitReport values one campaign under an economics model.
type ProfitReport struct {
	Month         int
	Targeted      int
	OffersSent    int
	Accepted      int
	RetainedValue float64 // ARPU x months for accepted churners
	OfferCost     float64
	ContactCost   float64
	Profit        float64
}

// Profit computes the campaign's net value: retained revenue minus offer
// and contact costs. Only group-B targets incur offer costs; both groups
// incur nothing for control (group A receives no contact).
func (e Economics) Profit(res *CampaignResult) ProfitReport {
	rep := ProfitReport{Month: res.Month}
	for _, t := range res.Targets {
		rep.Targeted++
		if t.Group != 'B' {
			continue
		}
		rep.OffersSent++
		rep.ContactCost += e.ContactCost
		if t.Accepted {
			rep.Accepted++
			rep.RetainedValue += e.MonthlyARPU * float64(e.RetainedMonths)
			rep.OfferCost += e.OfferCost[t.Offer]
		}
	}
	rep.Profit = rep.RetainedValue - rep.OfferCost - rep.ContactCost
	return rep
}

// Render prints the report.
func (r ProfitReport) Render(w io.Writer) {
	fmt.Fprintf(w, "month %d campaign economics: targeted=%d offers=%d accepted=%d\n",
		r.Month, r.Targeted, r.OffersSent, r.Accepted)
	fmt.Fprintf(w, "  retained value %.0f - offer cost %.0f - contact cost %.1f = profit %.1f\n",
		r.RetainedValue, r.OfferCost, r.ContactCost, r.Profit)
}

// ProfitLift returns second-campaign profit over first-campaign profit
// (the paper: "around 50% more profit"). Returns 0 when the first campaign
// made nothing.
func ProfitLift(first, second ProfitReport) float64 {
	if first.Profit <= 0 {
		return 0
	}
	return second.Profit/first.Profit - 1
}

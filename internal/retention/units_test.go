package retention

import (
	"math/rand"
	"testing"

	"telcochurn/internal/eval"
	"telcochurn/internal/synth"
)

func TestAcceptProb(t *testing.T) {
	if got := acceptProb(synth.OfferNone, synth.OfferFlux500MB, 0.9); got != 0 {
		t.Errorf("no-offer accept prob = %g", got)
	}
	matched := acceptProb(synth.OfferFlux500MB, synth.OfferFlux500MB, 0.8)
	other := acceptProb(synth.OfferCashback50, synth.OfferFlux500MB, 0.8)
	if matched <= other {
		t.Errorf("matched %g should exceed mismatched %g", matched, other)
	}
	if matched != 0.8*matchedOfferMult {
		t.Errorf("matched = %g", matched)
	}
	if got := acceptProb(synth.OfferVoice200Min, synth.OfferVoice200Min, 0); got != 0 {
		t.Errorf("zero retainability accept prob = %g", got)
	}
}

func TestSelectTargetsTiersAndGroups(t *testing.T) {
	var preds []eval.Prediction
	for i := 0; i < 100; i++ {
		preds = append(preds, eval.Prediction{ID: int64(i), Score: float64(100 - i)})
	}
	rng := rand.New(rand.NewSource(1))
	targets := selectTargets(preds, Config{TopTier: 20, SecondTier: 50}, rng)
	if len(targets) != 50 {
		t.Fatalf("targets = %d, want 50", len(targets))
	}
	for i, tg := range targets {
		wantTier := 1
		if i >= 20 {
			wantTier = 2
		}
		if tg.Tier != wantTier {
			t.Errorf("target %d tier = %d, want %d", i, tg.Tier, wantTier)
		}
		if tg.ID != int64(i) {
			t.Errorf("target %d is customer %d; ranking broken", i, tg.ID)
		}
	}
	a, b := 0, 0
	for _, tg := range targets {
		if tg.Group == 'A' {
			a++
		} else {
			b++
		}
	}
	if a == 0 || b == 0 {
		t.Errorf("degenerate A/B split %d/%d", a, b)
	}
}

func TestStatsOf(t *testing.T) {
	targets := []Target{
		{Tier: 1, Group: 'A', Recharged: false},
		{Tier: 1, Group: 'B', Recharged: true},
		{Tier: 1, Group: 'B', Recharged: false},
		{Tier: 2, Group: 'A', Recharged: true},
	}
	res := statsOf(8, targets)
	if res.Month != 8 || len(res.Stats) != 4 {
		t.Fatalf("res = %+v", res)
	}
	byKey := map[[2]any]TierStats{}
	for _, s := range res.Stats {
		byKey[[2]any{s.Tier, s.Group}] = s
	}
	if s := byKey[[2]any{1, byte('B')}]; s.Total != 2 || s.Recharged != 1 || s.Rate() != 0.5 {
		t.Errorf("tier1/B = %+v", s)
	}
	if s := byKey[[2]any{2, byte('B')}]; s.Total != 0 || s.Rate() != 0 {
		t.Errorf("empty cell = %+v", s)
	}
}

func TestSimulateOutcomesFalsePositives(t *testing.T) {
	truth := map[int64]truthInfo{
		1: {decided: false, inRecharge: true, daysToRech: 5},  // recharges
		2: {decided: false, inRecharge: true, daysToRech: 20}, // too late
		3: {decided: false, inRecharge: false, daysToRech: 0}, // never entered
		4: {decided: true, bestOffer: 1, retainBase: 1.0},     // churner, offered matched
		5: {decided: true, bestOffer: 1, retainBase: 0},       // churner, unretainable
	}
	targets := []Target{
		{ID: 1, Tier: 1, Group: 'A'},
		{ID: 2, Tier: 1, Group: 'A'},
		{ID: 3, Tier: 1, Group: 'A'},
		{ID: 4, Tier: 1, Group: 'B', Offer: 1},
		{ID: 5, Tier: 1, Group: 'B', Offer: 1},
		{ID: 9, Tier: 1, Group: 'A'}, // absent from truth
	}
	// With retainBase 1 and matched mult 0.62 acceptance is random; force
	// many draws to check the deterministic cases only.
	rng := rand.New(rand.NewSource(2))
	simulateOutcomes(targets, truth, rng)
	if !targets[0].Recharged {
		t.Error("in-recharge day-5 FP should recharge")
	}
	if targets[1].Recharged || targets[2].Recharged {
		t.Error("late/absent FP should not recharge")
	}
	if targets[4].Recharged {
		t.Error("unretainable churner should not recharge")
	}
	if targets[5].Recharged {
		t.Error("missing customer should not recharge")
	}
}

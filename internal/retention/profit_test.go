package retention

import (
	"math"
	"strings"
	"testing"

	"telcochurn/internal/synth"
)

func TestProfitAccounting(t *testing.T) {
	eco := Economics{
		MonthlyARPU:    40,
		RetainedMonths: 5,
		OfferCost:      map[int]float64{synth.OfferCashback50: 50},
		ContactCost:    1,
	}
	res := &CampaignResult{Month: 8, Targets: []Target{
		{Group: 'A'}, // control: no cost, no value
		{Group: 'B', Offer: synth.OfferCashback50, Accepted: true, Recharged: true},
		{Group: 'B', Offer: synth.OfferCashback50}, // declined: contact cost only
	}}
	rep := eco.Profit(res)
	if rep.Targeted != 3 || rep.OffersSent != 2 || rep.Accepted != 1 {
		t.Fatalf("counts = %+v", rep)
	}
	if rep.RetainedValue != 200 {
		t.Errorf("retained value = %g, want 200", rep.RetainedValue)
	}
	if rep.OfferCost != 50 || rep.ContactCost != 2 {
		t.Errorf("costs = %g/%g", rep.OfferCost, rep.ContactCost)
	}
	if want := 200.0 - 50 - 2; rep.Profit != want {
		t.Errorf("profit = %g, want %g", rep.Profit, want)
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "profit 148.0") {
		t.Errorf("render = %q", sb.String())
	}
}

func TestProfitLift(t *testing.T) {
	a := ProfitReport{Profit: 100}
	b := ProfitReport{Profit: 150}
	if got := ProfitLift(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("lift = %g, want 0.5", got)
	}
	if got := ProfitLift(ProfitReport{Profit: 0}, b); got != 0 {
		t.Errorf("zero-base lift = %g", got)
	}
}

// TestMatchedCampaignProfitBeatsRandom reproduces the paper's business
// claim: matching offers with churners yields substantially more profit
// than random assignment (paper: ~50% more).
func TestMatchedCampaignProfitBeatsRandom(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 2500
	cfg.Months = 9
	pair := runBothCampaigns(t, cfg)
	eco := DefaultEconomics()
	first := eco.Profit(pair.first)
	second := eco.Profit(pair.second)
	t.Logf("month 8 profit %.0f, month 9 profit %.0f, lift %.0f%%",
		first.Profit, second.Profit, 100*ProfitLift(first, second))
	if second.Profit <= first.Profit {
		t.Errorf("matched-offer profit %.0f not above random-offer profit %.0f",
			second.Profit, first.Profit)
	}
}

package store_test

import (
	"testing"

	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// TestDailyFlowMatchesDirectWrite: splitting a simulated month's CDRs by
// day, staging each day, and compacting must reproduce the direct monthly
// write row-for-row (modulo day ordering).
func TestDailyFlowMatchesDirectWrite(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 400
	cfg.Months = 1
	md := synth.Simulate(cfg)[0]

	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Direct write.
	if err := wh.WritePartition("calls_direct", 1, md.Calls); err != nil {
		t.Fatal(err)
	}
	// Daily flow: split by the day column.
	dayCol := md.Calls.MustCol("day").Ints
	for day := 1; day <= cfg.DaysPerMonth; day++ {
		d := int64(day)
		slice := md.Calls.Filter(func(i int) bool { return dayCol[i] == d })
		if slice.NumRows() == 0 {
			continue
		}
		if err := wh.StageDay("calls", 1, day, slice); err != nil {
			t.Fatal(err)
		}
	}
	if err := wh.CompactMonth("calls", 1); err != nil {
		t.Fatal(err)
	}
	direct, _ := wh.ReadPartition("calls_direct", 1)
	daily, _ := wh.ReadPartition("calls", 1)
	if direct.NumRows() != daily.NumRows() {
		t.Fatalf("daily flow rows %d != direct %d", daily.NumRows(), direct.NumRows())
	}
	// Aggregate equality: total duration per customer must match.
	sum := func(tb *table.Table) map[int64]float64 {
		m := map[int64]float64{}
		ids := tb.MustCol("imsi").Ints
		durs := tb.MustCol("dur").Floats
		for i := range ids {
			m[ids[i]] += durs[i]
		}
		return m
	}
	sd, sy := sum(direct), sum(daily)
	if len(sd) != len(sy) {
		t.Fatalf("customer counts differ: %d vs %d", len(sd), len(sy))
	}
	for id, v := range sd {
		if diff := sy[id] - v; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("duration mismatch for %d", id)
		}
	}
}

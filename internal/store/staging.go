package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"telcochurn/internal/table"
)

// Daily staging: the paper's platform lands ~2.3 TB of new BSS/OSS records
// per day and summarizes them monthly ("some big tables for feature
// engineering are summarized automatically by BSS monthly", Section 5.4).
// The warehouse mirrors that flow: days are staged as they arrive under
//
//	<root>/<table>/staging/month=<m>/day=<d>.tct
//
// and CompactMonth folds a completed month's days into the canonical
// month=<m>.tct partition the feature layer reads.

func (w *Warehouse) stagingDir(name string, month int) string {
	return filepath.Join(w.root, name, "staging", fmt.Sprintf("month=%d", month))
}

func (w *Warehouse) stagedDayPath(name string, month, day int) string {
	return filepath.Join(w.stagingDir(name, month), fmt.Sprintf("day=%d.tct", day))
}

// StageDay lands one day of records for a table. Re-staging a day replaces
// it atomically. The schema must match any already-staged day of the month.
func (w *Warehouse) StageDay(name string, month, day int, t *table.Table) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("store: refusing to stage invalid table: %w", err)
	}
	days, err := w.StagedDays(name, month)
	if err != nil {
		return err
	}
	for _, d := range days {
		if d == day {
			continue
		}
		existing, err := w.readStagedDay(name, month, d)
		if err != nil {
			return err
		}
		if !existing.Schema.Equal(t.Schema) {
			return fmt.Errorf("store: staged schema mismatch for %q month=%d: day=%d has %s, new day has %s",
				name, month, d, existing.Schema, t.Schema)
		}
		break // one probe suffices; staged days are mutually consistent
	}
	if err := w.runHook(OpStageDay, name, month); err != nil {
		var cr *Crash
		if errors.As(err, &cr) {
			return w.crashingWrite(cr, w.stagingDir(name, month), w.stagedDayPath(name, month, day), t)
		}
		return err
	}
	return w.atomicWrite(w.stagingDir(name, month), w.stagedDayPath(name, month, day), t)
}

// StagedDays lists the staged days of a month, ascending.
func (w *Warehouse) StagedDays(name string, month int) ([]int, error) {
	entries, err := os.ReadDir(w.stagingDir(name, month))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var days []int
	for _, e := range entries {
		base := e.Name()
		if !strings.HasPrefix(base, "day=") || !strings.HasSuffix(base, ".tct") {
			continue
		}
		d, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "day="), ".tct"))
		if err != nil {
			continue
		}
		days = append(days, d)
	}
	sort.Ints(days)
	return days, nil
}

func (w *Warehouse) readStagedDay(name string, month, day int) (*table.Table, error) {
	if err := w.runHook(OpReadStagedDay, name, month); err != nil {
		return nil, err
	}
	f, err := os.Open(w.stagedDayPath(name, month, day))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := readTable(f)
	if err != nil {
		return nil, fmt.Errorf("store: read staged %s month=%d day=%d: %w", name, month, day, err)
	}
	return t, nil
}

// CompactMonth concatenates a month's staged days in day order into the
// canonical month partition and removes the staging directory. It fails if
// nothing is staged; the month partition is written atomically, so a crash
// mid-compaction leaves either the old state or the new partition plus
// stale staging (re-running CompactMonth is idempotent).
func (w *Warehouse) CompactMonth(name string, month int) error {
	days, err := w.StagedDays(name, month)
	if err != nil {
		return err
	}
	if len(days) == 0 {
		return fmt.Errorf("store: no staged days for %q month=%d", name, month)
	}
	var out *table.Table
	for _, d := range days {
		t, err := w.readStagedDay(name, month, d)
		if err != nil {
			return err
		}
		if out == nil {
			out = t
			continue
		}
		if err := out.AppendTable(t); err != nil {
			return fmt.Errorf("store: compact %q month=%d day=%d: %w", name, month, d, err)
		}
	}
	if err := w.WritePartition(name, month, out); err != nil {
		return err
	}
	if err := os.RemoveAll(w.stagingDir(name, month)); err != nil {
		return err
	}
	// Drop the parent staging/ directory once the last month is compacted
	// (fails when other months are still staged; that is fine).
	os.Remove(filepath.Join(w.root, name, "staging"))
	return nil
}

package store

import (
	"testing"

	"telcochurn/internal/table"
)

func dayRow(t *testing.T, tb *table.Table, imsi int64, day int, dur float64) {
	t.Helper()
	if err := tb.AppendRow(imsi, int64(1), int64(day), dur); err != nil {
		t.Fatal(err)
	}
}

func daySchema() *table.Schema {
	return table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "month", Type: table.Int64},
		table.Field{Name: "day", Type: table.Int64},
		table.Field{Name: "dur", Type: table.Float64},
	)
}

func TestStageAndCompact(t *testing.T) {
	wh := openTemp(t)
	for day := 1; day <= 3; day++ {
		tb := table.NewTable(daySchema())
		dayRow(t, tb, int64(100+day), day, float64(day)*10)
		if err := wh.StageDay("calls", 1, day, tb); err != nil {
			t.Fatalf("stage day %d: %v", day, err)
		}
	}
	days, err := wh.StagedDays("calls", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 || days[0] != 1 || days[2] != 3 {
		t.Fatalf("staged days = %v", days)
	}
	if err := wh.CompactMonth("calls", 1); err != nil {
		t.Fatalf("compact: %v", err)
	}
	got, err := wh.ReadPartition("calls", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("compacted rows = %d", got.NumRows())
	}
	// Day order preserved.
	daysCol := got.MustCol("day").Ints
	for i := 1; i < len(daysCol); i++ {
		if daysCol[i] < daysCol[i-1] {
			t.Fatalf("compaction reordered days: %v", daysCol)
		}
	}
	// Staging cleaned up.
	if days, _ := wh.StagedDays("calls", 1); days != nil {
		t.Errorf("staging not cleaned: %v", days)
	}
}

func TestStageDayReplaces(t *testing.T) {
	wh := openTemp(t)
	a := table.NewTable(daySchema())
	dayRow(t, a, 1, 1, 10)
	if err := wh.StageDay("calls", 1, 1, a); err != nil {
		t.Fatal(err)
	}
	b := table.NewTable(daySchema())
	dayRow(t, b, 2, 1, 20)
	dayRow(t, b, 3, 1, 30)
	if err := wh.StageDay("calls", 1, 1, b); err != nil {
		t.Fatal(err)
	}
	if err := wh.CompactMonth("calls", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := wh.ReadPartition("calls", 1)
	if got.NumRows() != 2 {
		t.Errorf("re-staged day rows = %d, want 2 (replacement)", got.NumRows())
	}
}

func TestStageSchemaMismatchRejected(t *testing.T) {
	wh := openTemp(t)
	a := table.NewTable(daySchema())
	dayRow(t, a, 1, 1, 10)
	if err := wh.StageDay("calls", 1, 1, a); err != nil {
		t.Fatal(err)
	}
	other := table.NewTable(table.MustSchema(table.Field{Name: "x", Type: table.Int64}))
	other.AppendRow(int64(1))
	if err := wh.StageDay("calls", 1, 2, other); err == nil {
		t.Error("want error staging mismatched schema")
	}
}

func TestCompactEmptyMonthFails(t *testing.T) {
	wh := openTemp(t)
	if err := wh.CompactMonth("calls", 1); err == nil {
		t.Error("want error compacting an empty month")
	}
}

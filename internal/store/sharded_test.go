package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"telcochurn/internal/table"
)

// wideTable builds a table with n customer-keyed rows, ids starting at base.
func wideTable(t *testing.T, base int64, n int) *table.Table {
	t.Helper()
	tb := table.NewTable(table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "dur", Type: table.Float64},
	))
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(base+int64(i), float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// rowSet canonicalizes a table into id->values rows for order-free equality.
func rowSet(t *testing.T, tb *table.Table) map[int64]float64 {
	t.Helper()
	out := make(map[int64]float64, tb.NumRows())
	ids := tb.MustCol("imsi").Ints
	durs := tb.MustCol("dur").Floats
	for i, id := range ids {
		out[id] = durs[i]
	}
	if len(out) != tb.NumRows() {
		t.Fatal("duplicate ids in fixture")
	}
	return out
}

func TestShardOfRangeAndStability(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		counts := make([]int, shards)
		for id := int64(0); id < 4000; id++ {
			s := table.ShardOf(id, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, shards, s)
			}
			if s != table.ShardOf(id, shards) {
				t.Fatalf("ShardOf not deterministic for id=%d", id)
			}
			counts[s]++
		}
		for s, c := range counts {
			if shards > 1 && (c < 4000/shards/2 || c > 4000/shards*2) {
				t.Fatalf("shards=%d: shard %d got %d of 4000 ids — badly skewed", shards, s, c)
			}
		}
	}
}

func TestShardedWriteReadRoundTrip(t *testing.T) {
	wh := openTemp(t)
	sw, err := wh.Sharded(4)
	if err != nil {
		t.Fatal(err)
	}
	want := wideTable(t, 100, 57)
	if err := sw.WritePartition("calls", 2, want); err != nil {
		t.Fatal(err)
	}

	// The whole month reads back as the same row set via the plain API.
	got, err := wh.ReadPartition("calls", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowSet(t, got), rowSet(t, want)) {
		t.Fatal("sharded month does not read back to the written rows")
	}

	// Shards are disjoint, hash-correct, and union to the whole.
	total := 0
	for s := 0; s < 4; s++ {
		part, err := sw.ReadShard("calls", 2, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range part.MustCol("imsi").Ints {
			if table.ShardOf(id, 4) != s {
				t.Fatalf("id %d in shard %d, want shard %d", id, s, table.ShardOf(id, 4))
			}
		}
		total += part.NumRows()
	}
	if total != want.NumRows() {
		t.Fatalf("shards union to %d rows, want %d", total, want.NumRows())
	}

	if months, _ := wh.Months("calls"); !reflect.DeepEqual(months, []int{2}) {
		t.Fatalf("Months = %v, want [2]", months)
	}
	if !wh.HasPartition("calls", 2) || wh.HasPartition("calls", 3) {
		t.Fatal("HasPartition misreports sharded layout")
	}
	if n, _ := wh.DetectShards("calls"); n != 4 {
		t.Fatalf("DetectShards = %d, want 4", n)
	}
}

func TestShardedEmptyShardAndMoreShardsThanCustomers(t *testing.T) {
	wh := openTemp(t)
	sw, err := wh.Sharded(8)
	if err != nil {
		t.Fatal(err)
	}
	// 3 customers over 8 shards: most shards are empty, and empty must be
	// readable (not missing — empty != absent distinguishes a committed
	// no-rows shard from an uncommitted partition).
	want := wideTable(t, 7, 3)
	if err := sw.WritePartition("calls", 1, want); err != nil {
		t.Fatal(err)
	}
	nonEmpty, total := 0, 0
	for s := 0; s < 8; s++ {
		part, err := sw.ReadShard("calls", 1, s)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if part.NumRows() > 0 {
			nonEmpty++
		}
		total += part.NumRows()
	}
	if total != 3 || nonEmpty > 3 {
		t.Fatalf("read back %d rows in %d shards, want 3 rows in <=3 shards", total, nonEmpty)
	}
}

func TestShardedAllInOneShard(t *testing.T) {
	wh := openTemp(t)
	sw, err := wh.Sharded(4)
	if err != nil {
		t.Fatal(err)
	}
	// Collect ids that all hash to one shard.
	target := table.ShardOf(1, 4)
	tb := table.NewTable(table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "dur", Type: table.Float64},
	))
	n := 0
	for id := int64(1); n < 20; id++ {
		if table.ShardOf(id, 4) == target {
			if err := tb.AppendRow(id, float64(id)); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if err := sw.WritePartition("calls", 1, tb); err != nil {
		t.Fatal(err)
	}
	full, err := sw.ReadShard("calls", 1, target)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRows() != 20 {
		t.Fatalf("loaded shard has %d rows, want 20", full.NumRows())
	}
	for s := 0; s < 4; s++ {
		if s == target {
			continue
		}
		empty, err := sw.ReadShard("calls", 1, s)
		if err != nil || empty.NumRows() != 0 {
			t.Fatalf("shard %d: rows=%v err=%v, want empty", s, empty.NumRows(), err)
		}
	}
}

func TestShardReadsLegacyPlainLayout(t *testing.T) {
	wh := openTemp(t)
	want := wideTable(t, 1000, 33)
	if err := wh.WritePartition("calls", 5, want); err != nil {
		t.Fatal(err)
	}
	// A sharded view over a TCPA-era plain warehouse filters by hash.
	sw, err := wh.Sharded(4)
	if err != nil {
		t.Fatal(err)
	}
	merged := map[int64]float64{}
	for s := 0; s < 4; s++ {
		part, err := sw.ReadShard("calls", 5, s)
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range rowSet(t, part) {
			merged[id] = v
		}
	}
	if !reflect.DeepEqual(merged, rowSet(t, want)) {
		t.Fatal("sharded view of plain layout loses rows")
	}
	if n, _ := wh.DetectShards("calls"); n != 1 {
		t.Fatalf("DetectShards on plain layout = %d, want 1", n)
	}
}

func TestReshardReplacesLayout(t *testing.T) {
	wh := openTemp(t)
	want := wideTable(t, 500, 41)
	sw4, _ := wh.Sharded(4)
	if err := sw4.WritePartition("calls", 1, want); err != nil {
		t.Fatal(err)
	}
	sw8, _ := wh.Sharded(8)
	if err := sw8.WritePartition("calls", 1, want); err != nil {
		t.Fatal(err)
	}
	if n, _ := wh.DetectShards("calls"); n != 8 {
		t.Fatalf("DetectShards after re-shard = %d, want 8", n)
	}
	entries, err := os.ReadDir(filepath.Join(wh.Root(), "calls"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("re-shard left %d files, want 8", len(entries))
	}
	got, err := wh.ReadPartition("calls", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowSet(t, got), rowSet(t, want)) {
		t.Fatal("re-sharded month does not read back")
	}
	// Writing plain over a sharded month supersedes the set too.
	if err := wh.WritePartition("calls", 1, want); err != nil {
		t.Fatal(err)
	}
	if n, _ := wh.DetectShards("calls"); n != 1 {
		t.Fatalf("DetectShards after plain rewrite = %d, want 1", n)
	}
}

func TestIncompleteShardSetReadsAsAbsent(t *testing.T) {
	wh := openTemp(t)
	sw, _ := wh.Sharded(4)
	want := wideTable(t, 100, 30)
	if err := sw.WritePartition("calls", 1, want); err != nil {
		t.Fatal(err)
	}
	// Delete one shard file: the set is no longer committed.
	if err := os.Remove(filepath.Join(wh.Root(), "calls", "month=1.shard=2of4.tct")); err != nil {
		t.Fatal(err)
	}
	if _, err := wh.ReadPartition("calls", 1); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadPartition on incomplete set: %v, want fs.ErrNotExist", err)
	}
	if wh.HasPartition("calls", 1) {
		t.Fatal("HasPartition reports an incomplete shard set")
	}
	if months, _ := wh.Months("calls"); len(months) != 0 {
		t.Fatalf("Months lists incomplete set: %v", months)
	}
}

func TestShardedSchemaMismatchRejected(t *testing.T) {
	wh := openTemp(t)
	sw, _ := wh.Sharded(4)
	if err := sw.WritePartition("calls", 1, wideTable(t, 100, 10)); err != nil {
		t.Fatal(err)
	}
	other := table.NewTable(table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "other", Type: table.Float64},
	))
	if err := other.AppendRow(int64(1), 1.0); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePartition("calls", 2, other); err == nil {
		t.Fatal("sharded write with mismatched schema accepted")
	}
	if err := wh.WritePartition("calls", 2, other); err == nil {
		t.Fatal("plain write with mismatched schema accepted over sharded layout")
	}
}

func TestBlockReaderStreamsAllLayouts(t *testing.T) {
	wh := openTemp(t)
	if err := wh.WritePartition("calls", 1, wideTable(t, 100, 11)); err != nil {
		t.Fatal(err)
	}
	sw, _ := wh.Sharded(3)
	if err := sw.WritePartition("calls", 2, wideTable(t, 200, 13)); err != nil {
		t.Fatal(err)
	}
	br, err := wh.OpenBlocks("calls", nil)
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	rows := 0
	for {
		b, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, fmt.Sprintf("m%d.s%dof%d", b.Month, b.Shard, b.Shards))
		rows += b.Table.NumRows()
	}
	wantOrder := []string{"m1.s0of1", "m2.s0of3", "m2.s1of3", "m2.s2of3"}
	if !reflect.DeepEqual(seen, wantOrder) {
		t.Fatalf("block order = %v, want %v", seen, wantOrder)
	}
	if rows != 24 {
		t.Fatalf("streamed %d rows, want 24", rows)
	}
}

func TestShardReaderConcatenatesMonths(t *testing.T) {
	wh := openTemp(t)
	sw, _ := wh.Sharded(2)
	if err := sw.WritePartition("calls", 1, wideTable(t, 100, 10)); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePartition("calls", 2, wideTable(t, 200, 10)); err != nil {
		t.Fatal(err)
	}
	var total int
	for s := 0; s < 2; s++ {
		got, err := sw.ShardReader(s).ReadMonths("calls", []int{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got.MustCol("imsi").Ints {
			if table.ShardOf(id, 2) != s {
				t.Fatalf("id %d leaked into shard %d", id, s)
			}
		}
		total += got.NumRows()
	}
	if total != 20 {
		t.Fatalf("shard readers return %d rows, want 20", total)
	}
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"telcochurn/internal/table"
)

// tablesEqual compares two tables cell for cell (floats by bits via the
// encoded representation being exact; here direct equality suffices since
// values round-trip bit-exactly).
func tablesEqual(t *testing.T, a, b *table.Table) bool {
	t.Helper()
	if !a.Schema.Equal(b.Schema) || a.NumRows() != b.NumRows() {
		return false
	}
	for ci, col := range a.Cols {
		other := b.Cols[ci]
		for i := 0; i < a.NumRows(); i++ {
			switch col.Type {
			case table.Int64:
				if col.Ints[i] != other.Ints[i] {
					return false
				}
			case table.Float64:
				if col.Floats[i] != other.Floats[i] {
					return false
				}
			case table.String:
				if col.Strings[i] != other.Strings[i] {
					return false
				}
			}
		}
	}
	return true
}

// crashOnce returns a hook that simulates one crash at the given point on
// the next matching write, then passes everything through.
func crashOnce(op Op, point CrashPoint) Hook {
	fired := false
	return func(o Op, name string, month int) error {
		if o == op && !fired {
			fired = true
			return &Crash{Point: point}
		}
		return nil
	}
}

// TestCrashNeverTearsPartition is the write-atomicity contract: whatever
// point a WritePartition crashes at, a reader sees either the complete old
// partition, the complete new partition, or no partition — never torn bytes.
func TestCrashNeverTearsPartition(t *testing.T) {
	old := sampleTable(t)
	neu := sampleTable(t)
	neu.MustCol("imsi").Ints[0] = 777

	for _, point := range []CrashPoint{CrashMidWrite, CrashBeforeRename, CrashAfterRename} {
		for _, preexisting := range []bool{false, true} {
			wh := openTemp(t)
			if preexisting {
				if err := wh.WritePartition("calls", 1, old); err != nil {
					t.Fatal(err)
				}
			}
			wh.SetHook(crashOnce(OpWritePartition, point))
			err := wh.WritePartition("calls", 1, neu)
			var cr *Crash
			if !errors.As(err, &cr) || cr.Point != point {
				t.Fatalf("point=%d: write returned %v, want simulated crash", point, err)
			}
			wh.SetHook(nil)

			got, err := wh.ReadPartition("calls", 1)
			switch {
			case err == nil:
				// Whatever is visible must be one of the two complete tables.
				wantNew := point == CrashAfterRename
				if wantNew && !tablesEqual(t, got, neu) {
					t.Errorf("point=%d pre=%v: after-rename crash shows neither complete new table", point, preexisting)
				}
				if !wantNew && (!preexisting || !tablesEqual(t, got, old)) {
					t.Errorf("point=%d pre=%v: readable partition is not the complete old table", point, preexisting)
				}
			case os.IsNotExist(err):
				if preexisting || point == CrashAfterRename {
					t.Errorf("point=%d pre=%v: partition vanished", point, preexisting)
				}
			default:
				t.Errorf("point=%d pre=%v: read failed with %v (torn partition visible?)", point, preexisting, err)
			}

			// Partition listings must never surface crash debris.
			months, err := wh.Months("calls")
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range months {
				if _, err := wh.ReadPartition("calls", m); err != nil {
					t.Errorf("point=%d: listed partition month=%d unreadable: %v", point, m, err)
				}
			}

			// Recovery: a clean rewrite must fully succeed over any debris.
			if err := wh.WritePartition("calls", 1, neu); err != nil {
				t.Fatalf("point=%d: recovery write: %v", point, err)
			}
			got, err = wh.ReadPartition("calls", 1)
			if err != nil || !tablesEqual(t, got, neu) {
				t.Fatalf("point=%d: recovery read: %v", point, err)
			}
		}
	}
}

// TestCrashNeverTearsStagedDay is the same contract for the daily staging
// flow, plus CompactMonth idempotence over crash debris.
func TestCrashNeverTearsStagedDay(t *testing.T) {
	day1 := sampleTable(t)
	day2 := sampleTable(t)
	day2.MustCol("imsi").Ints[0] = 888

	for _, point := range []CrashPoint{CrashMidWrite, CrashBeforeRename, CrashAfterRename} {
		wh := openTemp(t)
		if err := wh.StageDay("calls", 1, 1, day1); err != nil {
			t.Fatal(err)
		}
		wh.SetHook(crashOnce(OpStageDay, point))
		err := wh.StageDay("calls", 1, 2, day2)
		var cr *Crash
		if !errors.As(err, &cr) {
			t.Fatalf("point=%d: stage returned %v, want simulated crash", point, err)
		}
		wh.SetHook(nil)

		// Every staged day the listing reports must read back complete.
		days, err := wh.StagedDays("calls", 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range days {
			if _, err := wh.readStagedDay("calls", 1, d); err != nil {
				t.Errorf("point=%d: staged day=%d unreadable: %v", point, d, err)
			}
		}

		// Re-staging the day and compacting works over the debris.
		if err := wh.StageDay("calls", 1, 2, day2); err != nil {
			t.Fatalf("point=%d: recovery stage: %v", point, err)
		}
		if err := wh.CompactMonth("calls", 1); err != nil {
			t.Fatalf("point=%d: compact: %v", point, err)
		}
		got, err := wh.ReadPartition("calls", 1)
		if err != nil {
			t.Fatalf("point=%d: compacted read: %v", point, err)
		}
		if got.NumRows() != day1.NumRows()+day2.NumRows() {
			t.Errorf("point=%d: compacted rows = %d, want %d", point, got.NumRows(), day1.NumRows()+day2.NumRows())
		}
	}
}

// TestHookErrorsPropagate checks that non-crash hook errors surface as I/O
// failures on both read and write paths without touching disk state.
func TestHookErrorsPropagate(t *testing.T) {
	wh := openTemp(t)
	tb := sampleTable(t)
	if err := wh.WritePartition("calls", 1, tb); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected I/O failure")
	wh.SetHook(func(op Op, name string, month int) error { return boom })

	if _, err := wh.ReadPartition("calls", 1); !errors.Is(err, boom) {
		t.Errorf("read: got %v, want injected error", err)
	}
	if err := wh.WritePartition("calls", 2, tb); !errors.Is(err, boom) {
		t.Errorf("write: got %v, want injected error", err)
	}
	wh.SetHook(nil)
	if _, err := wh.ReadPartition("calls", 1); err != nil {
		t.Errorf("after hook removal: %v", err)
	}
	if wh.HasPartition("calls", 2) {
		t.Error("failed write left a partition behind")
	}
}

// TestCrashDebrisInvisibleToListings asserts the month listing never
// reports temp-file debris as a partition.
func TestCrashDebrisInvisibleToListings(t *testing.T) {
	wh := openTemp(t)
	tb := sampleTable(t)
	wh.SetHook(crashOnce(OpWritePartition, CrashBeforeRename))
	if err := wh.WritePartition("calls", 3, tb); err == nil {
		t.Fatal("expected simulated crash")
	}
	wh.SetHook(nil)

	// Debris exists on disk...
	entries, err := os.ReadDir(filepath.Join(wh.Root(), "calls"))
	if err != nil {
		t.Fatal(err)
	}
	debris := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			debris++
		}
	}
	if debris == 0 {
		t.Fatal("expected temp-file debris after before-rename crash")
	}
	// ...but no partition is listed.
	months, err := wh.Months("calls")
	if err != nil {
		t.Fatal(err)
	}
	if len(months) != 0 {
		t.Errorf("months = %v, want none", months)
	}
}

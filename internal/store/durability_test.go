package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"telcochurn/internal/table"
)

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		bad  bool
	}{
		{in: "always", want: SyncPolicy{Mode: SyncAlways}},
		{in: "", want: SyncPolicy{Mode: SyncAlways}},
		{in: "off", want: SyncPolicy{Mode: SyncOff}},
		{in: "never", want: SyncPolicy{Mode: SyncOff}},
		{in: "500ms", want: SyncPolicy{Mode: SyncInterval, Interval: 500 * time.Millisecond}},
		{in: " 2s ", want: SyncPolicy{Mode: SyncInterval, Interval: 2 * time.Second}},
		{in: "0s", bad: true},
		{in: "-1s", bad: true},
		{in: "sometimes", bad: true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = (%+v, %v), want %+v", c.in, got, err, c.want)
		}
	}
}

// TestSyncModesRoundTrip: the commit protocol stays correct under every
// durability mode — a written partition reads back identical.
func TestSyncModesRoundTrip(t *testing.T) {
	for _, p := range []SyncPolicy{
		{Mode: SyncAlways},
		{Mode: SyncInterval, Interval: time.Hour},
		{Mode: SyncOff},
	} {
		wh := openTemp(t)
		wh.SetSync(p)
		want := sampleTable(t)
		if err := wh.WritePartition("calls", 1, want); err != nil {
			t.Fatalf("%s: write: %v", p, err)
		}
		got, err := wh.ReadPartition("calls", 1)
		if err != nil {
			t.Fatalf("%s: read: %v", p, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("%s: rows = %d, want %d", p, got.NumRows(), want.NumRows())
		}
	}
}

// TestSyncIntervalBatchesFlushes: interval mode queues commits and drains
// the whole queue on SyncNow; a commit older than the interval triggers a
// flush on its own.
func TestSyncIntervalBatchesFlushes(t *testing.T) {
	wh := openTemp(t)
	wh.SetSync(SyncPolicy{Mode: SyncInterval, Interval: time.Hour})
	for m := 1; m <= 3; m++ {
		if err := wh.WritePartition("calls", m, sampleTable(t)); err != nil {
			t.Fatal(err)
		}
	}
	wh.pend.mu.Lock()
	nf, nd := len(wh.pend.files), len(wh.pend.dirs)
	wh.pend.mu.Unlock()
	if nf != 3 || nd != 1 {
		t.Fatalf("pending = %d files / %d dirs, want 3 / 1", nf, nd)
	}
	if err := wh.SyncNow(); err != nil {
		t.Fatalf("SyncNow: %v", err)
	}
	wh.pend.mu.Lock()
	nf = len(wh.pend.files)
	wh.pend.mu.Unlock()
	if nf != 0 {
		t.Fatalf("pending after SyncNow = %d files, want 0", nf)
	}
	// Idempotent with nothing queued.
	if err := wh.SyncNow(); err != nil {
		t.Fatalf("empty SyncNow: %v", err)
	}

	// A zero-length interval makes every commit immediately due.
	wh.SetSync(SyncPolicy{Mode: SyncInterval, Interval: time.Nanosecond})
	if err := wh.WritePartition("calls", 9, sampleTable(t)); err != nil {
		t.Fatal(err)
	}
	wh.pend.mu.Lock()
	nf = len(wh.pend.files)
	wh.pend.mu.Unlock()
	if nf != 0 {
		t.Fatalf("due commit left %d files pending, want 0", nf)
	}
}

// TestSyncNowSurvivesVanishedFiles: queued commits that were superseded or
// deleted before the flush (shard cleanup, truncated segments) are skipped,
// not errors.
func TestSyncNowSurvivesVanishedFiles(t *testing.T) {
	wh := openTemp(t)
	wh.SetSync(SyncPolicy{Mode: SyncInterval, Interval: time.Hour})
	if err := wh.WritePartition("calls", 1, sampleTable(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(wh.Root(), "calls", "month=1.tct")); err != nil {
		t.Fatal(err)
	}
	if err := wh.SyncNow(); err != nil {
		t.Fatalf("SyncNow over removed file: %v", err)
	}
}

// corruptTail flips the final byte (part of the CRC) of the segment file.
func corruptTail(t *testing.T, log *EventLog, seq uint64) {
	t.Helper()
	path := filepath.Join(log.Dir(), segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEventLogQuarantinesCorruptTail: a CRC-bad tail segment is moved to a
// .quarantine sidecar, every earlier batch still replays, and the log keeps
// accepting appends with no sequence reuse.
func TestEventLogQuarantinesCorruptTail(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := log.Append(map[string]*table.Table{
			"recharges": eventTable(t, [3]int64{int64(10 + i), 1, 30}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	corruptTail(t, log, n)

	// A "restart": reopen the log and replay, as churnd's boot does.
	reopened, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := reopened.Replay(0, func(seq uint64, name string, tb *table.Table) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatalf("replay over corrupt tail: %v", err)
	}
	if len(seqs) != n-1 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("replayed seqs %v, want [1 2]", seqs)
	}

	q := reopened.Quarantines()
	if len(q) != 1 || q[0].Seq != n {
		t.Fatalf("Quarantines() = %+v, want one record for seq %d", q, n)
	}
	if !strings.Contains(q[0].Err, "checksum") {
		t.Errorf("quarantine cause %q does not mention the checksum", q[0].Err)
	}
	if _, err := os.Stat(q[0].Path); err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if !strings.HasSuffix(q[0].Path, segName(n)+".quarantine") {
		t.Errorf("sidecar path = %q", q[0].Path)
	}
	if _, err := os.Stat(filepath.Join(reopened.Dir(), segName(n))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("condemned segment still present: %v", err)
	}

	// A second replay is clean (the sidecar is invisible), and numbering
	// never hands out the condemned sequence again.
	seqs = nil
	if err := reopened.Replay(0, func(seq uint64, name string, tb *table.Table) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if len(seqs) != n-1 {
		t.Fatalf("second replay saw %v", seqs)
	}
	seq, err := reopened.Append(map[string]*table.Table{
		"recharges": eventTable(t, [3]int64{99, 1, 30}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != n+1 {
		t.Fatalf("post-quarantine append got seq %d, want %d", seq, n+1)
	}
}

// TestEventLogQuarantinesTornTail: a truncated (torn) tail frame counts as
// corruption and quarantines the same way.
func TestEventLogQuarantinesTornTail(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := log.Append(map[string]*table.Table{
			"recharges": eventTable(t, [3]int64{int64(10 + i), 1, 30}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(log.Dir(), segName(2))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	reopened, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	if err := reopened.Replay(0, func(seq uint64, name string, tb *table.Table) error {
		rows += tb.NumRows()
		return nil
	}); err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	if rows != 1 {
		t.Fatalf("replayed %d rows, want 1", rows)
	}
	if q := reopened.Quarantines(); len(q) != 1 || q[0].Seq != 2 {
		t.Fatalf("Quarantines() = %+v", q)
	}
}

// TestEventLogCorruptMiddleStaysFatal: corruption before the tail means
// later segments depend on lost events — replay must fail hard, and
// nothing is quarantined.
func TestEventLogCorruptMiddleStaysFatal(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(map[string]*table.Table{
			"recharges": eventTable(t, [3]int64{int64(10 + i), 1, 30}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	corruptTail(t, log, 2)

	reopened, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	err = reopened.Replay(0, func(seq uint64, name string, tb *table.Table) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over corrupt middle = %v, want ErrCorrupt", err)
	}
	if q := reopened.Quarantines(); len(q) != 0 {
		t.Fatalf("middle corruption quarantined: %+v", q)
	}
	if _, err := os.Stat(filepath.Join(reopened.Dir(), segName(2))); err != nil {
		t.Fatalf("corrupt middle segment moved: %v", err)
	}
}

// TestEventLogQuarantineInsideMergeInto: MergeInto's internal replay holds
// the append mutex; quarantining the tail from inside it must not deadlock,
// and the merge applies the surviving prefix.
func TestEventLogQuarantineInsideMergeInto(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(map[string]*table.Table{
			"recharges": eventTable(t, [3]int64{int64(10 + i), 1, 30}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	corruptTail(t, log, 3)

	done := make(chan struct{})
	var n int
	var mergeErr error
	go func() {
		defer close(done)
		n, mergeErr = log.MergeInto()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("MergeInto deadlocked on quarantine")
	}
	if mergeErr != nil {
		t.Fatalf("merge over corrupt tail: %v", mergeErr)
	}
	if n != 2 {
		t.Fatalf("merged %d rows, want 2", n)
	}
	part, err := wh.ReadPartition("recharges", 1)
	if err != nil || part.NumRows() != 2 {
		t.Fatalf("merged partition: rows=%v err=%v", part, err)
	}
}

// BenchmarkWritePartition quantifies the fsync-mode tradeoff documented in
// DESIGN.md §15 (always pays ~2 fsyncs per commit; off pays none).
func BenchmarkWritePartition(b *testing.B) {
	tb := table.NewTable(table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "month", Type: table.Int64},
		table.Field{Name: "amount", Type: table.Float64},
	))
	for i := 0; i < 1000; i++ {
		if err := tb.AppendRow(int64(i), int64(1), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range []SyncPolicy{{Mode: SyncAlways}, {Mode: SyncInterval, Interval: 100 * time.Millisecond}, {Mode: SyncOff}} {
		b.Run("fsync="+p.String(), func(b *testing.B) {
			wh, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			wh.SetSync(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := wh.WritePartition("calls", 1, tb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

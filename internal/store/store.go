// Package store persists table.Table values as partitioned binary columnar
// files on local disk. It is the repository's stand-in for the paper's HDFS
// layer (Figure 2): raw BSS/OSS tables land here partitioned by month, the
// ETL layer reads them back for feature engineering, and intermediate
// results (the paper's reusable Hive tables) can be cached between runs.
//
// Layout:
//
//	<root>/<tableName>/month=<n>.tct                  (plain, single shard)
//	<root>/<tableName>/month=<n>.shard=<s>of<N>.tct   (hash-sharded, see sharded.go)
//
// Each .tct (telco columnar table) file is:
//
//	magic "TCT1" | schema block | row count | per-column data blocks
//
// Integers use varint encoding; floats are fixed 8-byte little endian;
// strings are length-prefixed. A CRC32 of everything after the magic is
// appended so corrupt files are detected on read.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"telcochurn/internal/table"
)

const magic = "TCT1"

// ErrCorrupt is returned when a file fails checksum or structural checks.
var ErrCorrupt = errors.New("store: corrupt table file")

// Op identifies a warehouse I/O operation for fault hooks.
type Op string

// Warehouse I/O operations observable through a Hook.
const (
	OpReadPartition  Op = "read-partition"
	OpWritePartition Op = "write-partition"
	OpStageDay       Op = "stage-day"
	OpReadStagedDay  Op = "read-staged-day"
	// Event-log operations (see eventlog.go). The hook's name argument is
	// the pseudo-table "events" and month carries the segment sequence
	// number, so injectors address segments the way they address partitions.
	OpAppendEvents Op = "append-events"
	OpReplayEvents Op = "replay-events"
)

// Hook intercepts warehouse I/O before it touches disk. A nil return lets
// the operation proceed; an error fails it as if the disk had failed. A
// returned *Crash makes write operations simulate a process death at the
// crash point instead: the write is abandoned exactly as an OS crash would
// leave it (possibly a stray temp file) and the *Crash is returned. The
// atomicity contract — a partition is either the complete old table, the
// complete new table, or absent, never a torn mix — must hold at every
// crash point; internal/faults drives this hook to prove it.
type Hook func(op Op, name string, month int) error

// Crash is a simulated process death inside a warehouse write, for crash
// injection (returned by a Hook). It is an error so injectors can thread it
// through the regular hook signature.
type Crash struct {
	// Point selects where in the write the process "dies".
	Point CrashPoint
}

// CrashPoint enumerates the places a warehouse write can die.
type CrashPoint int

const (
	// CrashMidWrite dies with the temp file half-written (torn bytes that
	// must never become a readable partition).
	CrashMidWrite CrashPoint = iota
	// CrashBeforeRename dies with the temp file complete but not committed.
	CrashBeforeRename
	// CrashAfterRename dies just after the atomic commit: the new partition
	// is visible and must be complete and readable.
	CrashAfterRename
)

func (c *Crash) Error() string {
	switch c.Point {
	case CrashMidWrite:
		return "store: simulated crash mid-write"
	case CrashBeforeRename:
		return "store: simulated crash before rename"
	default:
		return "store: simulated crash after rename"
	}
}

// Warehouse is a directory of partitioned tables.
type Warehouse struct {
	root string
	hook Hook
	sync SyncPolicy
	pend syncState
}

// SetHook installs a fault-injection hook on every partition and staging
// read/write. Install it before concurrent use (it is read without locking
// on the I/O paths); passing nil removes it.
func (w *Warehouse) SetHook(h Hook) { w.hook = h }

// runHook invokes the hook, if any, for an operation about to run.
func (w *Warehouse) runHook(op Op, name string, month int) error {
	if w.hook == nil {
		return nil
	}
	return w.hook(op, name, month)
}

// Open returns a warehouse rooted at dir, creating it if needed.
func Open(dir string) (*Warehouse, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open warehouse: %w", err)
	}
	return &Warehouse{root: dir}, nil
}

// Root returns the warehouse directory.
func (w *Warehouse) Root() string { return w.root }

func (w *Warehouse) partitionPath(name string, month int) string {
	return filepath.Join(w.root, name, fmt.Sprintf("month=%d.tct", month))
}

// WritePartition stores t as partition month of the named table, replacing
// any existing partition atomically (write temp + rename). All partitions
// of a table must share a schema: a write whose schema differs from an
// existing partition's is rejected, so a warehouse can never hold a table
// that ReadMonths cannot concatenate.
func (w *Warehouse) WritePartition(name string, month int, t *table.Table) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("store: refusing to write invalid table: %w", err)
	}
	if err := w.checkPartitionSchema(name, month, t); err != nil {
		return err
	}
	if err := w.runHook(OpWritePartition, name, month); err != nil {
		var cr *Crash
		if errors.As(err, &cr) {
			return w.crashingWrite(cr, filepath.Join(w.root, name), w.partitionPath(name, month), t)
		}
		return err
	}
	if err := w.atomicWrite(filepath.Join(w.root, name), w.partitionPath(name, month), t); err != nil {
		return err
	}
	// The plain file now wins every read; drop shard sets it supersedes.
	w.removeShardFiles(name, month, 0)
	return nil
}

// atomicWrite is the warehouse commit protocol for tables: write a temp
// file in the destination directory, then rename over the target.
func (w *Warehouse) atomicWrite(dir, dst string, t *table.Table) error {
	return w.atomicWriteFile(dir, dst, func(f *os.File) error { return writeTable(f, t) })
}

// atomicWriteFile is the generic commit protocol: write a temp file in the
// destination directory via the callback, then rename over the target. A
// reader can therefore only ever observe the complete old file, the
// complete new file, or no file — never a torn mix (rename within one
// directory is atomic on POSIX filesystems). The warehouse SyncPolicy
// decides whether the commit also survives power loss: in always mode the
// temp file is fsynced before the rename and the directory after it; in
// interval mode the pair is queued for the next SyncNow flush.
func (w *Warehouse) atomicWriteFile(dir, dst string, write func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if w.sync.Mode == SyncAlways {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return err
	}
	return w.commitSync(dir, dst)
}

// crashingWrite simulates a process dying at cr.Point during atomicWrite,
// leaving the filesystem exactly as a real crash would: a torn or complete
// temp file that no reader ever opens, or (after-rename) the committed new
// partition. It always returns cr so callers observe the "crash".
func (w *Warehouse) crashingWrite(cr *Crash, dir, dst string, t *table.Table) error {
	return crashingWriteFile(cr, dir, dst, func(f *os.File) error { return writeTable(f, t) })
}

// crashingWriteFile is crashingWrite for arbitrary file contents (partition
// tables and event-log segments share it).
func crashingWriteFile(cr *Crash, dir, dst string, write func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		return cr
	}
	if cr.Point == CrashMidWrite {
		// Tear the temp file in half, as a crash between write syscalls
		// would. It must stay invisible to every read path.
		if info, err := tmp.Stat(); err == nil {
			tmp.Truncate(info.Size() / 2)
		}
		tmp.Close()
		return cr
	}
	tmp.Close()
	if cr.Point == CrashAfterRename {
		os.Rename(tmp.Name(), dst)
	}
	return cr
}

// ReadPartition loads partition month of the named table, whatever its
// on-disk layout: the plain single file, or a committed shard set
// concatenated in ascending shard order (see sharded.go for the resolution
// rule).
func (w *Warehouse) ReadPartition(name string, month int) (*table.Table, error) {
	if err := w.runHook(OpReadPartition, name, month); err != nil {
		return nil, err
	}
	t, err := w.readMonth(name, month)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("store: read %s month=%d: %w", name, month, err)
	}
	return t, nil
}

// HasPartition reports whether the partition has a committed layout — a
// plain file or a complete shard set.
func (w *Warehouse) HasPartition(name string, month int) bool {
	lay, err := w.layoutOf(name, month)
	return err == nil && lay.committed()
}

// Months lists the committed partition months for the named table,
// ascending. A month counts whether it is stored plain or as a complete
// shard set; an incomplete shard set is an uncommitted write and is skipped.
func (w *Warehouse) Months(name string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(w.root, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	plain := map[int]bool{}
	sets := map[int]map[int]int{} // month -> shard count -> files present
	for _, e := range entries {
		p, ok := parsePartName(e.Name())
		if !ok {
			continue
		}
		if p.of == 1 {
			plain[p.month] = true
		} else {
			if sets[p.month] == nil {
				sets[p.month] = map[int]int{}
			}
			sets[p.month][p.of]++
		}
	}
	var months []int
	for m := range plain {
		months = append(months, m)
	}
	for m, byOf := range sets {
		if plain[m] {
			continue
		}
		for of, n := range byOf {
			if n == of {
				months = append(months, m)
				break
			}
		}
	}
	sort.Ints(months)
	return months, nil
}

// Tables lists table names present in the warehouse. Dot-prefixed
// directories are warehouse internals (the event log lives in ".events")
// and are not tables.
func (w *Warehouse) Tables() ([]string, error) {
	entries, err := os.ReadDir(w.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadMonths reads and concatenates the given partitions of a table, in the
// given order. All partitions must share a schema.
func (w *Warehouse) ReadMonths(name string, months []int) (*table.Table, error) {
	var out *table.Table
	for _, m := range months {
		t, err := w.ReadPartition(name, m)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = t
			continue
		}
		if err := out.AppendTable(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- binary encoding ----

type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p)
	return cw.w.Write(p)
}

func writeTable(f *os.File, t *table.Table) error {
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	writeTableBody(cw, t)

	// Trailing CRC of everything after the magic.
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], cw.crc.Sum32())
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// writeTableBody encodes the schema block, row count and column blocks —
// the framing-free middle of a .tct file. Partition files wrap one body in
// magic + CRC; event-log segments pack several bodies into one frame.
func writeTableBody(w io.Writer, t *table.Table) {
	writeUvarint(w, uint64(t.Schema.Len()))
	for _, field := range t.Schema.Fields {
		writeString(w, field.Name)
		writeUvarint(w, uint64(field.Type))
	}
	writeUvarint(w, uint64(t.NumRows()))

	var scratch [8]byte
	for _, col := range t.Cols {
		switch col.Type {
		case table.Int64:
			for _, v := range col.Ints {
				writeVarint(w, v)
			}
		case table.Float64:
			for _, v := range col.Floats {
				binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
				w.Write(scratch[:])
			}
		case table.String:
			for _, v := range col.Strings {
				writeString(w, v)
			}
		}
	}
}

func readTable(f *os.File) (*table.Table, error) {
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, ErrCorrupt
	}
	body := data[len(magic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	r := &sliceReader{b: body}
	t, err := readTableBody(r)
	if err != nil {
		return nil, err
	}
	if r.pos != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b)-r.pos)
	}
	return t, nil
}

// readTableBody decodes one schema + rows + columns body from the reader's
// current position, the inverse of writeTableBody.
func readTableBody(r *sliceReader) (*table.Table, error) {
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	fields := make([]table.Field, ncols)
	for i := range fields {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		typ, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if typ > uint64(table.String) {
			return nil, fmt.Errorf("%w: bad column type %d", ErrCorrupt, typ)
		}
		fields[i] = table.Field{Name: name, Type: table.ColType(typ)}
	}
	schema, err := table.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	nrows64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nrows := int(nrows64)

	t := table.NewTable(schema)
	for _, col := range t.Cols {
		switch col.Type {
		case table.Int64:
			col.Ints = make([]int64, nrows)
			for i := 0; i < nrows; i++ {
				v, err := r.varint()
				if err != nil {
					return nil, err
				}
				col.Ints[i] = v
			}
		case table.Float64:
			col.Floats = make([]float64, nrows)
			for i := 0; i < nrows; i++ {
				raw, err := r.bytes(8)
				if err != nil {
					return nil, err
				}
				col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw))
			}
		case table.String:
			col.Strings = make([]string, nrows)
			for i := 0; i < nrows; i++ {
				s, err := r.str()
				if err != nil {
					return nil, err
				}
				col.Strings[i] = s
			}
		}
	}
	return t, nil
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w io.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	r.pos += n
	return v, nil
}

func (r *sliceReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	r.pos += n
	return v, nil
}

func (r *sliceReader) bytes(n int) ([]byte, error) {
	if r.pos+n > len(r.b) {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	b := r.b[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *sliceReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

package store

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Durability policy. The temp-then-rename commit protocol guarantees a
// reader never observes a torn file, but rename alone does not survive a
// pulled plug: on many filesystems neither the renamed file's bytes nor
// the directory entry are on stable storage until fsynced, so a "committed"
// partition can come back empty or absent after a power loss. SyncPolicy
// decides when commits reach the platter: fsync the temp file before its
// rename and the parent directory after (always), batch those flushes on a
// timer (interval), or skip them (off — rebuildable scratch and tests).

// SyncMode selects when warehouse commits are flushed to stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs the temp file before its rename and the parent
	// directory after it, on every commit: a returned write survives an
	// immediate power loss. The default.
	SyncAlways SyncMode = iota
	// SyncInterval tracks committed paths and flushes them together at
	// most every Interval (or on SyncNow): one fsync burst amortizes many
	// commits, bounding the power-loss window to roughly one interval.
	SyncInterval
	// SyncOff never fsyncs. Crash atomicity (no torn files) still holds
	// through rename ordering, but a power loss can lose recently
	// "committed" files entirely.
	SyncOff
)

// SyncPolicy is a warehouse's durability configuration.
type SyncPolicy struct {
	Mode SyncMode
	// Interval is the maximum age of an unflushed commit in SyncInterval
	// mode.
	Interval time.Duration
}

// String renders the policy in the flag syntax ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncInterval:
		return p.Interval.String()
	case SyncOff:
		return "off"
	default:
		return "always"
	}
}

// ParseSyncPolicy reads the -fsync flag syntax shared by churnctl and
// churnd: "always", "off", or a positive duration like "500ms" selecting
// interval mode with that flush interval.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "off", "never":
		return SyncPolicy{Mode: SyncOff}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("store: bad fsync policy %q (want always, off, or a positive interval like 500ms)", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// syncState tracks the unflushed commits of one warehouse in interval mode.
type syncState struct {
	mu       sync.Mutex
	files    map[string]struct{}
	dirs     map[string]struct{}
	lastSync time.Time
}

// SetSync installs the durability policy for every subsequent commit
// (partitions, staged days, event-log segments). Install it before
// concurrent use, like SetHook; the zero-value warehouse syncs always.
func (w *Warehouse) SetSync(p SyncPolicy) { w.sync = p }

// Sync returns the warehouse's durability policy.
func (w *Warehouse) Sync() SyncPolicy { return w.sync }

// commitSync runs the policy's post-rename work for one committed file:
// fsync the parent directory (always), or remember the pair for the next
// flush (interval). The file itself was already fsynced before its rename
// in always mode.
func (w *Warehouse) commitSync(dir, dst string) error {
	switch w.sync.Mode {
	case SyncAlways:
		return fsyncDir(dir)
	case SyncInterval:
		w.pend.mu.Lock()
		if w.pend.files == nil {
			w.pend.files = map[string]struct{}{}
			w.pend.dirs = map[string]struct{}{}
			w.pend.lastSync = time.Now()
		}
		w.pend.files[dst] = struct{}{}
		w.pend.dirs[dir] = struct{}{}
		due := time.Since(w.pend.lastSync) >= w.sync.Interval
		w.pend.mu.Unlock()
		if due {
			return w.SyncNow()
		}
	}
	return nil
}

// SyncNow flushes every commit the interval policy is still holding:
// files first, then their directories. A no-op in always/off modes (always
// has nothing pending; off promises nothing). Callers that need a durable
// cut — a draining daemon, a finished merge — call it before exiting.
func (w *Warehouse) SyncNow() error {
	w.pend.mu.Lock()
	files, dirs := w.pend.files, w.pend.dirs
	w.pend.files, w.pend.dirs = nil, nil
	w.pend.lastSync = time.Now()
	w.pend.mu.Unlock()
	var firstErr error
	for f := range files {
		if err := fsyncFile(f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for d := range dirs {
		if err := fsyncDir(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fsyncFile flushes one committed file; a file already superseded or
// removed (shard cleanup, truncated segments) has nothing left to sync.
func fsyncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	defer f.Close()
	return f.Sync()
}

// fsyncDir flushes a directory so a just-renamed entry survives power
// loss. Filesystems that reject directory fsync (EINVAL/ENOTSUP) get the
// rename ordering they already provide — not an error.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"telcochurn/internal/table"
)

// eventTable builds a small event batch table keyed by imsi/month.
func eventTable(t *testing.T, rows ...[3]int64) *table.Table {
	t.Helper()
	tb := table.NewTable(table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "month", Type: table.Int64},
		table.Field{Name: "amount", Type: table.Float64},
	))
	for _, r := range rows {
		if err := tb.AppendRow(r[0], r[1], float64(r[2])); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestEventLogAppendReplay(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	if log.LastSeq() != 0 {
		t.Fatalf("fresh log LastSeq = %d, want 0", log.LastSeq())
	}

	seq1, err := log.Append(map[string]*table.Table{"recharges": eventTable(t, [3]int64{10, 1, 30})})
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := log.Append(map[string]*table.Table{
		"recharges": eventTable(t, [3]int64{11, 1, 40}),
		"calls":     eventTable(t, [3]int64{10, 1, 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != 1 || seq2 != 2 || log.LastSeq() != 2 {
		t.Fatalf("seqs = %d,%d last=%d, want 1,2,2", seq1, seq2, log.LastSeq())
	}

	// Replay order: ascending segments, tables in sorted order per segment.
	type rec struct {
		seq  uint64
		name string
		rows int
	}
	var got []rec
	if err := log.Replay(0, func(seq uint64, name string, tb *table.Table) error {
		got = append(got, rec{seq, name, tb.NumRows()})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []rec{{1, "recharges", 1}, {2, "calls", 1}, {2, "recharges", 1}}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}

	// Replay(after) skips merged prefixes.
	got = nil
	if err := log.Replay(1, func(seq uint64, name string, tb *table.Table) error {
		got = append(got, rec{seq, name, tb.NumRows()})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].seq != 2 {
		t.Fatalf("Replay(1) = %v, want only seq 2", got)
	}

	// A reopened log resumes numbering.
	log2, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	if log2.LastSeq() != 2 {
		t.Fatalf("reopened LastSeq = %d, want 2", log2.LastSeq())
	}
}

func TestEventLogRejectsBadBatches(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := log.Append(map[string]*table.Table{"recharges": eventTable(t)}); err == nil {
		t.Error("zero-row batch accepted")
	}
	noMonth := table.NewTable(table.MustSchema(table.Field{Name: "imsi", Type: table.Int64}))
	if err := noMonth.AppendRow(int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(map[string]*table.Table{"recharges": noMonth}); err == nil {
		t.Error("batch without month column accepted")
	}
}

// TestEventLogHiddenFromTables: the log directory is warehouse-internal.
func TestEventLogHiddenFromTables(t *testing.T) {
	wh := openTemp(t)
	if err := wh.WritePartition("calls", 1, sampleTable(t)); err != nil {
		t.Fatal(err)
	}
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(map[string]*table.Table{"recharges": eventTable(t, [3]int64{10, 1, 30})}); err != nil {
		t.Fatal(err)
	}
	names, err := wh.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "calls" {
		t.Fatalf("Tables() = %v, want [calls]", names)
	}
}

// TestEventLogCrashNeverTearsSegment: the append-atomicity contract at
// every crash point — a segment is fully visible or absent, never torn.
func TestEventLogCrashNeverTearsSegment(t *testing.T) {
	for _, point := range []CrashPoint{CrashMidWrite, CrashBeforeRename, CrashAfterRename} {
		wh := openTemp(t)
		log, err := wh.EventLog()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.Append(map[string]*table.Table{"recharges": eventTable(t, [3]int64{10, 1, 30})}); err != nil {
			t.Fatal(err)
		}
		wh.SetHook(crashOnce(OpAppendEvents, point))
		_, err = log.Append(map[string]*table.Table{"recharges": eventTable(t, [3]int64{11, 1, 40})})
		var cr *Crash
		if !errors.As(err, &cr) || cr.Point != point {
			t.Fatalf("point=%d: append returned %v, want simulated crash", point, err)
		}
		wh.SetHook(nil)

		// Whatever survived must replay cleanly, and the second segment is
		// all-or-nothing.
		reopened, err := wh.EventLog()
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		if err := reopened.Replay(0, func(seq uint64, name string, tb *table.Table) error {
			rows += tb.NumRows()
			return nil
		}); err != nil {
			t.Fatalf("point=%d: replay over crash debris: %v", point, err)
		}
		wantRows := 1
		if point == CrashAfterRename {
			wantRows = 2
		}
		if rows != wantRows {
			t.Errorf("point=%d: replayed %d rows, want %d", point, rows, wantRows)
		}

		// Recovery: the next append lands after whatever committed.
		if _, err := reopened.Append(map[string]*table.Table{"recharges": eventTable(t, [3]int64{12, 1, 50})}); err != nil {
			t.Fatalf("point=%d: recovery append: %v", point, err)
		}
	}
}

func TestEventLogMergeInto(t *testing.T) {
	wh := openTemp(t)
	base := eventTable(t, [3]int64{10, 1, 100}, [3]int64{11, 1, 200})
	if err := wh.WritePartition("recharges", 1, base); err != nil {
		t.Fatal(err)
	}
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	// Two batches, spanning an existing month, a new month, and a new table.
	if _, err := log.Append(map[string]*table.Table{
		"recharges": eventTable(t, [3]int64{10, 1, 30}, [3]int64{10, 2, 40}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(map[string]*table.Table{
		"recharges": eventTable(t, [3]int64{11, 1, 50}),
		"calls":     eventTable(t, [3]int64{10, 1, 7}),
	}); err != nil {
		t.Fatal(err)
	}

	n, err := log.MergeInto()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("merged %d rows, want 4", n)
	}

	// Month 1 of recharges: base rows in order, then events in log order.
	got, err := wh.ReadPartition("recharges", 1)
	if err != nil {
		t.Fatal(err)
	}
	wantIMSI := []int64{10, 11, 10, 11}
	wantAmt := []float64{100, 200, 30, 50}
	if got.NumRows() != len(wantIMSI) {
		t.Fatalf("month 1 rows = %d, want %d", got.NumRows(), len(wantIMSI))
	}
	for i := range wantIMSI {
		if got.MustCol("imsi").Ints[i] != wantIMSI[i] || got.MustCol("amount").Floats[i] != wantAmt[i] {
			t.Fatalf("month 1 row %d = (%d,%g), want (%d,%g)", i,
				got.MustCol("imsi").Ints[i], got.MustCol("amount").Floats[i], wantIMSI[i], wantAmt[i])
		}
	}
	// New month and new table materialized from events alone.
	if got, err = wh.ReadPartition("recharges", 2); err != nil || got.NumRows() != 1 {
		t.Fatalf("month 2: %v rows=%v", err, got)
	}
	if got, err = wh.ReadPartition("calls", 1); err != nil || got.NumRows() != 1 {
		t.Fatalf("calls month 1: %v", err)
	}

	// The epoch ended: log is empty, numbering restarts, second merge no-ops.
	if segs, _ := log.segments(); len(segs) != 0 {
		t.Fatalf("segments after merge: %v", segs)
	}
	if n, err := log.MergeInto(); err != nil || n != 0 {
		t.Fatalf("second merge = (%d, %v), want (0, nil)", n, err)
	}
}

// TestEventLogMergeIntoSharded: merging respects a sharded layout and
// preserves per-shard row order (base rows then events, within each shard).
func TestEventLogMergeIntoSharded(t *testing.T) {
	wh := openTemp(t)
	sw, err := wh.Sharded(4)
	if err != nil {
		t.Fatal(err)
	}
	base := eventTable(t,
		[3]int64{10, 1, 100}, [3]int64{11, 1, 200}, [3]int64{12, 1, 300}, [3]int64{13, 1, 400})
	if err := sw.WritePartition("recharges", 1, base); err != nil {
		t.Fatal(err)
	}
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(map[string]*table.Table{
		"recharges": eventTable(t, [3]int64{12, 1, 5}, [3]int64{10, 1, 6}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := log.MergeInto(); err != nil {
		t.Fatal(err)
	}

	// Layout stayed sharded.
	if n, err := wh.DetectShards("recharges"); err != nil || n != 4 {
		t.Fatalf("shards after merge = %d (%v), want 4", n, err)
	}
	// Each customer's rows, in order, are base then event.
	for s := 0; s < 4; s++ {
		part, err := sw.ReadShard("recharges", 1, s)
		if err != nil {
			t.Fatal(err)
		}
		imsi := part.MustCol("imsi").Ints
		for _, id := range imsi {
			if table.ShardOf(id, 4) != s {
				t.Fatalf("shard %d holds imsi %d", s, id)
			}
		}
	}
	whole, err := wh.ReadPartition("recharges", 1)
	if err != nil {
		t.Fatal(err)
	}
	if whole.NumRows() != 6 {
		t.Fatalf("merged rows = %d, want 6", whole.NumRows())
	}
	// Per-customer order: base amount before event amount.
	seen := map[int64][]float64{}
	for i, id := range whole.MustCol("imsi").Ints {
		seen[id] = append(seen[id], whole.MustCol("amount").Floats[i])
	}
	if v := seen[10]; len(v) != 2 || v[0] != 100 || v[1] != 6 {
		t.Fatalf("imsi 10 amounts = %v, want [100 6]", v)
	}
	if v := seen[12]; len(v) != 2 || v[0] != 300 || v[1] != 5 {
		t.Fatalf("imsi 12 amounts = %v, want [300 5]", v)
	}
}

// TestEventLogMergeMarker: an interrupted merge is detected, not repeated.
func TestEventLogMergeMarker(t *testing.T) {
	wh := openTemp(t)
	log, err := wh.EventLog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(map[string]*table.Table{"recharges": eventTable(t, [3]int64{10, 1, 30})}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(log.Dir(), mergeMarker), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := log.MergeInto(); !errors.Is(err, ErrMergeInterrupted) {
		t.Fatalf("merge over marker = %v, want ErrMergeInterrupted", err)
	}
	if err := os.Remove(filepath.Join(log.Dir(), mergeMarker)); err != nil {
		t.Fatal(err)
	}
	if _, err := log.MergeInto(); err != nil {
		t.Fatalf("merge after marker removal: %v", err)
	}
}

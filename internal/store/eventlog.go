package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"telcochurn/internal/table"
)

// Event log: the warehouse's append-only side channel for streaming ingest.
//
// Partitions are immutable monthly batch artifacts; events arrive one at a
// time between rebuilds. The log bridges the two: every accepted ingest
// batch becomes one immutable segment file under <root>/.events/, committed
// with the same temp-then-rename protocol as a partition, so a torn append
// can never become visible. Replaying the segments in ascending sequence
// order reproduces the exact arrival order of every event row — the
// property the incremental feature maintainer's bit-identity argument
// rests on (append-at-end of the serving month's rows, see
// features/incremental.go).
//
// Layout:
//
//	<root>/.events/seq=00000001.tev
//	<root>/.events/seq=00000002.tev
//	...
//
// Each .tev (telco event segment) file is:
//
//	magic "TEV1" | uvarint seq | uvarint ntables |
//	  ntables × (table name | table body) | CRC32
//
// where "table body" is the same schema+rows+columns encoding a .tct
// partition uses (writeTableBody). Sequence numbers are dense within one
// log epoch; MergeInto ends an epoch by folding every segment into its
// month partitions and deleting them, after which numbering restarts at 1.

const (
	eventMagic    = "TEV1"
	eventsDirName = ".events"
	// eventsHookName is the pseudo-table name event-log operations report
	// to fault hooks (the month argument carries the segment sequence).
	eventsHookName = "events"
	mergeMarker    = "merge-inprogress"
)

// ErrMergeInterrupted reports a previous MergeInto that died between its
// first partition commit and its log truncation. Re-running the merge could
// apply already-merged segments twice, so the log refuses until an operator
// restores or rebuilds the affected months and removes the marker.
var ErrMergeInterrupted = errors.New("store: previous event merge was interrupted; affected month partitions may already contain the logged events — rebuild them (or restore the warehouse) and remove .events/" + mergeMarker)

// EventLog is an append-only record of ingested raw events, attached to a
// warehouse. Appends are serialized by an internal mutex; replays are
// lock-free over the immutable committed segments.
type EventLog struct {
	w   *Warehouse
	dir string

	mu   sync.Mutex
	last uint64

	// qmu guards the quarantine records (separate from mu so a Replay
	// running inside MergeInto — which holds mu — can still quarantine).
	qmu         sync.Mutex
	quarantined []QuarantineRecord
}

// QuarantineRecord describes one corrupt tail segment that Replay set
// aside instead of failing the boot.
type QuarantineRecord struct {
	// Seq is the sequence number the quarantined file carried.
	Seq uint64
	// Path is the .quarantine sidecar the segment was renamed to.
	Path string
	// Err is the corruption that condemned it.
	Err string
}

// Quarantines returns every segment this log has quarantined since it was
// opened, in quarantine order. Callers surface these as metrics/log lines;
// the records persist only as the on-disk .quarantine sidecars.
func (l *EventLog) Quarantines() []QuarantineRecord {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	out := make([]QuarantineRecord, len(l.quarantined))
	copy(out, l.quarantined)
	return out
}

// quarantine moves a corrupt tail segment to its .quarantine sidecar. The
// sidecar keeps the bytes for postmortem inspection but no longer matches
// the seq=*.tev pattern, so segments(), Replay and Truncate never see it
// again; the in-memory sequence counter is NOT rewound, so the next Append
// cannot reuse the condemned number.
func (l *EventLog) quarantine(seq uint64, cause error) error {
	src := filepath.Join(l.dir, segName(seq))
	dst := src + ".quarantine"
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("store: quarantine segment %d: %w", seq, err)
	}
	l.qmu.Lock()
	l.quarantined = append(l.quarantined, QuarantineRecord{Seq: seq, Path: dst, Err: cause.Error()})
	l.qmu.Unlock()
	return nil
}

// EventLog opens (creating if needed) the warehouse's event log.
func (w *Warehouse) EventLog() (*EventLog, error) {
	dir := filepath.Join(w.root, eventsDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open event log: %w", err)
	}
	l := &EventLog{w: w, dir: dir}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		l.last = segs[len(segs)-1]
	}
	return l, nil
}

// Dir returns the log directory.
func (l *EventLog) Dir() string { return l.dir }

// LastSeq returns the sequence number of the newest committed segment in
// the current epoch (0 = empty log).
func (l *EventLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

func segName(seq uint64) string { return fmt.Sprintf("seq=%08d.tev", seq) }

// segments lists the committed segment sequence numbers, ascending.
func (l *EventLog) segments() ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seq=") || !strings.HasSuffix(name, ".tev") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seq="), ".tev"), 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		segs = append(segs, seq)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Append commits one ingest batch — a set of per-table event rows — as a
// new segment. Every table must be valid, non-empty in aggregate, and carry
// BIGINT imsi and month columns (the keys replay, sharding and merging all
// route by). The whole batch commits atomically: after a crash at any point
// the segment is either fully visible or absent.
func (l *EventLog) Append(batch map[string]*table.Table) (uint64, error) {
	names := make([]string, 0, len(batch))
	rows := 0
	for name, t := range batch {
		if t == nil || t.NumRows() == 0 {
			continue
		}
		if err := t.Validate(); err != nil {
			return 0, fmt.Errorf("store: refusing to append invalid events for %q: %w", name, err)
		}
		for _, key := range []string{"imsi", "month"} {
			c := t.Col(key)
			if c == nil || c.Type != table.Int64 {
				return 0, fmt.Errorf("store: event rows for %q need a BIGINT %q column", name, key)
			}
		}
		names = append(names, name)
		rows += t.NumRows()
	}
	if rows == 0 {
		return 0, errors.New("store: empty event batch")
	}
	sort.Strings(names)

	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.last + 1
	write := func(f *os.File) error { return writeSegment(f, seq, names, batch) }
	dst := filepath.Join(l.dir, segName(seq))
	if err := l.w.runHook(OpAppendEvents, eventsHookName, int(seq)); err != nil {
		var cr *Crash
		if errors.As(err, &cr) {
			return 0, crashingWriteFile(cr, l.dir, dst, write)
		}
		return 0, err
	}
	if err := l.w.atomicWriteFile(l.dir, dst, write); err != nil {
		return 0, err
	}
	l.last = seq
	return seq, nil
}

func writeSegment(f *os.File, seq uint64, names []string, batch map[string]*table.Table) error {
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(eventMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	writeUvarint(cw, seq)
	writeUvarint(cw, uint64(len(names)))
	for _, name := range names {
		writeString(cw, name)
		writeTableBody(cw, batch[name])
	}
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], cw.crc.Sum32())
	if _, err := bw.Write(scratch[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// readSegment decodes one committed segment.
func (l *EventLog) readSegment(seq uint64) ([]string, []*table.Table, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, segName(seq)))
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(eventMagic)+4 || string(data[:len(eventMagic)]) != eventMagic {
		return nil, nil, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	body := data[len(eventMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, nil, fmt.Errorf("%w: segment checksum mismatch", ErrCorrupt)
	}
	r := &sliceReader{b: body}
	gotSeq, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if gotSeq != seq {
		return nil, nil, fmt.Errorf("%w: segment %d claims seq %d", ErrCorrupt, seq, gotSeq)
	}
	ntables, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, ntables)
	tables := make([]*table.Table, 0, ntables)
	for i := uint64(0); i < ntables; i++ {
		name, err := r.str()
		if err != nil {
			return nil, nil, err
		}
		t, err := readTableBody(r)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		tables = append(tables, t)
	}
	if r.pos != len(r.b) {
		return nil, nil, fmt.Errorf("%w: %d trailing segment bytes", ErrCorrupt, len(r.b)-r.pos)
	}
	return names, tables, nil
}

// Replay streams every committed segment with sequence > after, ascending,
// invoking fn once per (segment, table) pair in the segment's stored order.
// Each segment read runs the OpReplayEvents hook, like a partition read.
//
// A corrupt TAIL segment — torn bytes or a CRC mismatch in the
// newest-numbered file, the only place a crashed append could leave one —
// is quarantined: renamed to a .quarantine sidecar and recorded (see
// Quarantines), and the replay succeeds with every earlier segment
// applied. Corruption anywhere before the tail means later events already
// depend on lost ones; that stays a hard error, as does any
// non-corruption read failure.
func (l *EventLog) Replay(after uint64, fn func(seq uint64, name string, t *table.Table) error) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i, seq := range segs {
		if seq <= after {
			continue
		}
		if err := l.w.runHook(OpReplayEvents, eventsHookName, int(seq)); err != nil {
			return err
		}
		names, tables, err := l.readSegment(seq)
		if err != nil {
			if errors.Is(err, ErrCorrupt) && i == len(segs)-1 {
				return l.quarantine(seq, err)
			}
			return fmt.Errorf("store: replay segment %d: %w", seq, err)
		}
		for i, name := range names {
			if err := fn(seq, name, tables[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync flushes any warehouse commits the durability policy is still
// holding (a no-op outside interval mode). A draining daemon calls it so
// its final appended segments survive power loss.
func (l *EventLog) Sync() error { return l.w.SyncNow() }

// Truncate deletes every segment with sequence <= through. In-memory
// numbering continues from the highest sequence ever issued, so replays
// within one process never see a sequence reused.
func (l *EventLog) Truncate(through uint64) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if seq > through {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segName(seq))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}

// MergeInto folds every logged event row into its (table, month) partition
// — appended after the partition's existing rows, in log order, honoring
// each table's committed shard layout — then truncates the merged segments,
// ending the log epoch. A from-scratch build over the merged warehouse is
// then bit-identical to the incremental maintainer's view of the same
// events (same rows, same order, see features/incremental.go).
//
// Each partition commits atomically, but the merge as a whole is not
// atomic: a crash between the first partition commit and the truncation
// leaves a marker file, and subsequent merges fail with
// ErrMergeInterrupted rather than risk double-applying segments. Run
// merges against quiesced warehouses (stop churnd or drain ingest first).
func (l *EventLog) MergeInto() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	marker := filepath.Join(l.dir, mergeMarker)
	if _, err := os.Stat(marker); err == nil {
		return 0, ErrMergeInterrupted
	}

	// Collect every logged row grouped by (table, month), preserving log
	// order within each group.
	grouped := map[string]map[int]*table.Table{}
	total := 0
	err := l.Replay(0, func(seq uint64, name string, t *table.Table) error {
		months := t.MustCol("month").Ints
		byMonth := grouped[name]
		if byMonth == nil {
			byMonth = map[int]*table.Table{}
			grouped[name] = byMonth
		}
		seen := map[int]bool{}
		for _, m := range months {
			mi := int(m)
			if seen[mi] {
				continue
			}
			seen[mi] = true
			part := t.Filter(func(i int) bool { return int(months[i]) == mi })
			if cur := byMonth[mi]; cur != nil {
				if err := cur.AppendTable(part); err != nil {
					return fmt.Errorf("store: merge events for %q month=%d: %w", name, mi, err)
				}
			} else {
				byMonth[mi] = part
			}
		}
		total += t.NumRows()
		return nil
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, nil
	}
	high := l.last

	// Commit point: from here until truncation, a crash leaves the marker.
	if err := os.WriteFile(marker, []byte("merge started; see ErrMergeInterrupted\n"), 0o644); err != nil {
		return 0, err
	}
	names := make([]string, 0, len(grouped))
	for name := range grouped {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		shards, err := l.w.DetectShards(name)
		if err != nil {
			return 0, err
		}
		sw, err := l.w.Sharded(shards)
		if err != nil {
			return 0, err
		}
		months := make([]int, 0, len(grouped[name]))
		for m := range grouped[name] {
			months = append(months, m)
		}
		sort.Ints(months)
		for _, m := range months {
			events := grouped[name][m]
			merged, err := l.w.ReadPartition(name, m)
			switch {
			case err == nil:
				if err := merged.AppendTable(events); err != nil {
					return 0, fmt.Errorf("store: merge events for %q month=%d: %w", name, m, err)
				}
			case errors.Is(err, fs.ErrNotExist):
				merged = events
			default:
				return 0, err
			}
			if err := sw.WritePartition(name, m, merged); err != nil {
				return 0, err
			}
		}
	}
	if err := l.Truncate(high); err != nil {
		return 0, err
	}
	if err := os.Remove(marker); err != nil {
		return 0, err
	}
	return total, nil
}

package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"telcochurn/internal/table"
)

func sampleTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.NewTable(table.MustSchema(
		table.Field{Name: "imsi", Type: table.Int64},
		table.Field{Name: "dur", Type: table.Float64},
		table.Field{Name: "text", Type: table.String},
	))
	rows := []struct {
		id   int64
		dur  float64
		text string
	}{
		{1, 1.5, "hello"}, {-42, 0, ""}, {1 << 40, -3.25, "unicode ✓ 中文"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r.id, r.dur, r.text); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func openTemp(t *testing.T) *Warehouse {
	t.Helper()
	wh, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return wh
}

func TestRoundTrip(t *testing.T) {
	wh := openTemp(t)
	want := sampleTable(t)
	if err := wh.WritePartition("calls", 3, want); err != nil {
		t.Fatal(err)
	}
	got, err := wh.ReadPartition("calls", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("schema mismatch: %s vs %s", got.Schema, want.Schema)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for c := range want.Cols {
		for i := 0; i < want.NumRows(); i++ {
			w := want.Row(i)[c]
			g := got.Row(i)[c]
			if w != g {
				t.Errorf("cell (%d,%d): %v != %v", i, c, g, w)
			}
		}
	}
}

func TestPartitionListing(t *testing.T) {
	wh := openTemp(t)
	tb := sampleTable(t)
	for _, m := range []int{3, 1, 7} {
		if err := wh.WritePartition("calls", m, tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := wh.WritePartition("billing", 1, tb); err != nil {
		t.Fatal(err)
	}
	months, err := wh.Months("calls")
	if err != nil {
		t.Fatal(err)
	}
	if len(months) != 3 || months[0] != 1 || months[2] != 7 {
		t.Errorf("Months = %v, want [1 3 7]", months)
	}
	if m, _ := wh.Months("nope"); m != nil {
		t.Errorf("Months(nope) = %v, want nil", m)
	}
	tables, err := wh.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0] != "billing" || tables[1] != "calls" {
		t.Errorf("Tables = %v", tables)
	}
	if !wh.HasPartition("calls", 3) || wh.HasPartition("calls", 2) {
		t.Error("HasPartition misreports")
	}
}

func TestReadMonthsConcatenates(t *testing.T) {
	wh := openTemp(t)
	tb := sampleTable(t)
	wh.WritePartition("calls", 1, tb)
	wh.WritePartition("calls", 2, tb)
	got, err := wh.ReadMonths("calls", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2*tb.NumRows() {
		t.Errorf("concat rows = %d, want %d", got.NumRows(), 2*tb.NumRows())
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	wh := openTemp(t)
	tb := sampleTable(t)
	wh.WritePartition("calls", 1, tb)
	smaller := table.NewTable(tb.Schema)
	smaller.AppendRow(int64(5), 9.0, "only")
	if err := wh.WritePartition("calls", 1, smaller); err != nil {
		t.Fatal(err)
	}
	got, err := wh.ReadPartition("calls", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Errorf("rows after replace = %d, want 1", got.NumRows())
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(filepath.Join(wh.Root(), "calls"))
	for _, e := range entries {
		if e.Name() != "month=1.tct" {
			t.Errorf("unexpected leftover file %q", e.Name())
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	wh := openTemp(t)
	tb := sampleTable(t)
	wh.WritePartition("calls", 1, tb)
	path := filepath.Join(wh.Root(), "calls", "month=1.tct")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the body.
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = wh.ReadPartition("calls", 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted read error = %v, want ErrCorrupt", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	wh := openTemp(t)
	wh.WritePartition("calls", 1, sampleTable(t))
	path := filepath.Join(wh.Root(), "calls", "month=1.tct")
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	if _, err := wh.ReadPartition("calls", 1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated read error = %v, want ErrCorrupt", err)
	}
}

func TestSchemaConsistencyEnforced(t *testing.T) {
	wh := openTemp(t)
	if err := wh.WritePartition("calls", 1, sampleTable(t)); err != nil {
		t.Fatal(err)
	}
	other := table.NewTable(table.MustSchema(table.Field{Name: "x", Type: table.Int64}))
	other.AppendRow(int64(1))
	if err := wh.WritePartition("calls", 2, other); err == nil {
		t.Error("want error writing a mismatched schema into an existing table")
	}
	// Replacing the only partition with a new schema is allowed (the table
	// is effectively being redefined).
	if err := wh.WritePartition("calls", 1, other); err != nil {
		t.Errorf("same-partition replace rejected: %v", err)
	}
}

func TestMissingPartition(t *testing.T) {
	wh := openTemp(t)
	if _, err := wh.ReadPartition("calls", 1); err == nil {
		t.Error("want error for missing partition")
	}
}

// TestRoundTripProperty: random tables of random shape survive the binary
// encoding bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	wh := openTemp(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := table.NewTable(table.MustSchema(
			table.Field{Name: "a", Type: table.Int64},
			table.Field{Name: "b", Type: table.Float64},
			table.Field{Name: "c", Type: table.String},
		))
		n := rng.Intn(100)
		letters := []string{"", "x", "yy", "long string value", "中"}
		for i := 0; i < n; i++ {
			tb.AppendRow(rng.Int63()-rng.Int63(), rng.NormFloat64()*1e6, letters[rng.Intn(len(letters))])
		}
		if err := wh.WritePartition("prop", int(seed%97), tb); err != nil {
			return false
		}
		got, err := wh.ReadPartition("prop", int(seed%97))
		if err != nil {
			return false
		}
		if got.NumRows() != tb.NumRows() {
			return false
		}
		for i := 0; i < n; i++ {
			for c := range tb.Cols {
				if got.Row(i)[c] != tb.Row(i)[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

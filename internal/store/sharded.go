package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"telcochurn/internal/table"
)

// Sharded warehouse layout. A partition month is stored either as the plain
// single file ("month=3.tct", the TCPA-era layout every existing warehouse
// uses) or as a complete set of per-shard files split by
// table.ShardOf(imsi, N):
//
//	month=3.shard=0of4.tct ... month=3.shard=3of4.tct
//
// Read resolution, everywhere, is: plain file wins; otherwise the largest
// COMPLETE shard set wins; an incomplete set is an uncommitted write and
// reads as absent. Writers exploit that order for crash safety — a sharded
// rewrite removes the plain file only after its whole set is committed, so
// at every crash point readers see either the complete old partition or the
// complete new set, never a mix of layouts and never a torn file.

// shardKey is the column every raw table is hash-partitioned on — the
// paper's universal subscriber key.
const shardKey = "imsi"

// partName formats a partition file name: plain layout when of <= 1, shard
// layout otherwise.
func partName(month, shard, of int) string {
	if of <= 1 {
		return fmt.Sprintf("month=%d.tct", month)
	}
	return fmt.Sprintf("month=%d.shard=%dof%d.tct", month, shard, of)
}

// partInfo is a parsed partition file name. Plain files parse as shard 0 of 1.
type partInfo struct {
	month int
	shard int
	of    int
}

// parsePartName parses "month=M.tct" and "month=M.shard=SofN.tct".
func parsePartName(base string) (partInfo, bool) {
	if !strings.HasPrefix(base, "month=") || !strings.HasSuffix(base, ".tct") {
		return partInfo{}, false
	}
	stem := strings.TrimSuffix(strings.TrimPrefix(base, "month="), ".tct")
	monthStr, shardStr, sharded := strings.Cut(stem, ".shard=")
	m, err := strconv.Atoi(monthStr)
	if err != nil {
		return partInfo{}, false
	}
	if !sharded {
		return partInfo{month: m, shard: 0, of: 1}, true
	}
	sStr, ofStr, ok := strings.Cut(shardStr, "of")
	if !ok {
		return partInfo{}, false
	}
	s, err1 := strconv.Atoi(sStr)
	of, err2 := strconv.Atoi(ofStr)
	if err1 != nil || err2 != nil || of < 2 || s < 0 || s >= of {
		return partInfo{}, false
	}
	return partInfo{month: m, shard: s, of: of}, true
}

// monthLayout is the committed on-disk layout of one partition month.
type monthLayout struct {
	plain bool // the plain single file exists
	of    int  // shard count of the largest complete shard set; 0 if none
}

func (l monthLayout) committed() bool { return l.plain || l.of > 0 }

// layoutOf scans the table directory and resolves one month's committed
// layout per the plain-wins / complete-set-wins rule above.
func (w *Warehouse) layoutOf(name string, month int) (monthLayout, error) {
	entries, err := os.ReadDir(filepath.Join(w.root, name))
	if err != nil {
		if os.IsNotExist(err) {
			return monthLayout{}, nil
		}
		return monthLayout{}, err
	}
	var lay monthLayout
	seen := map[int]int{}
	for _, e := range entries {
		p, ok := parsePartName(e.Name())
		if !ok || p.month != month {
			continue
		}
		if p.of == 1 {
			lay.plain = true
		} else if seen[p.of]++; seen[p.of] == p.of && p.of > lay.of {
			lay.of = p.of
		}
	}
	return lay, nil
}

// readMonth loads one committed month whatever its layout: the plain file,
// or the winning shard set concatenated ascending (the partition's row order
// is then shard-major, row order preserved within each shard). Unhooked;
// ReadPartition adds the fault hook and error context.
func (w *Warehouse) readMonth(name string, month int) (*table.Table, error) {
	t, err := readTableFile(filepath.Join(w.root, name, partName(month, 0, 1)))
	if err == nil || !errors.Is(err, fs.ErrNotExist) {
		return t, err
	}
	lay, lerr := w.layoutOf(name, month)
	if lerr != nil {
		return nil, lerr
	}
	if lay.of == 0 {
		return nil, err // the plain path's fs.ErrNotExist
	}
	var out *table.Table
	for s := 0; s < lay.of; s++ {
		st, err := readTableFile(filepath.Join(w.root, name, partName(month, s, lay.of)))
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = st
			continue
		}
		if err := out.AppendTable(st); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readTableFile opens and decodes one partition file. Errors pass through
// unwrapped so callers can test fs.ErrNotExist and add their own context.
func readTableFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readTable(f)
}

// partitionSchema reads just the schema block from the head of one committed
// partition — a bounded read, not the whole table — so the write path's
// schema probe stays cheap at out-of-core scale. The checksum is not
// verified; corruption is still caught by real reads.
func (w *Warehouse) partitionSchema(name string, month int) (*table.Schema, error) {
	lay, err := w.layoutOf(name, month)
	if err != nil {
		return nil, err
	}
	var base string
	switch {
	case lay.plain:
		base = partName(month, 0, 1)
	case lay.of > 0:
		base = partName(month, 0, lay.of)
	default:
		return nil, fs.ErrNotExist
	}
	f, err := os.Open(filepath.Join(w.root, name, base))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, 1<<16)
	n, err := io.ReadFull(f, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return nil, err
	}
	head = head[:n]
	if len(head) < len(magic) || string(head[:len(magic)]) != magic {
		return nil, ErrCorrupt
	}
	r := &sliceReader{b: head[len(magic):]}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	fields := make([]table.Field, ncols)
	for i := range fields {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		typ, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if typ > uint64(table.String) {
			return nil, fmt.Errorf("%w: bad column type %d", ErrCorrupt, typ)
		}
		fields[i] = table.Field{Name: name, Type: table.ColType(typ)}
	}
	return table.NewSchema(fields...)
}

// checkPartitionSchema rejects a write whose schema differs from an existing
// partition's, so a warehouse never holds a table that ReadMonths cannot
// concatenate.
func (w *Warehouse) checkPartitionSchema(name string, month int, t *table.Table) error {
	months, err := w.Months(name)
	if err != nil || len(months) == 0 {
		return nil
	}
	probe := months[0]
	if probe == month && len(months) > 1 {
		probe = months[1]
	}
	if probe == month {
		return nil
	}
	existing, err := w.partitionSchema(name, probe)
	if err == nil && !existing.Equal(t.Schema) {
		return fmt.Errorf("store: schema mismatch for table %q: partition month=%d has %s, new partition has %s",
			name, probe, existing, t.Schema)
	}
	return nil
}

// removeShardFiles deletes month's shard-layout files except a kept set of
// keepOf shards (0 keeps none). Called after a layout-changing rewrite so
// the superseded layout stops shadowing per-shard reads; removal failures
// are ignored — a leftover file loses to the plain-wins resolution rule.
func (w *Warehouse) removeShardFiles(name string, month, keepOf int) {
	entries, err := os.ReadDir(filepath.Join(w.root, name))
	if err != nil {
		return
	}
	for _, e := range entries {
		p, ok := parsePartName(e.Name())
		if ok && p.month == month && p.of > 1 && p.of != keepOf {
			os.Remove(filepath.Join(w.root, name, e.Name()))
		}
	}
}

// DetectShards reports the shard count of the named table's newest committed
// month — 1 for the plain layout or an empty table — so tools can open a
// warehouse at the shard count it was written with.
func (w *Warehouse) DetectShards(name string) (int, error) {
	months, err := w.Months(name)
	if err != nil || len(months) == 0 {
		return 1, err
	}
	lay, err := w.layoutOf(name, months[len(months)-1])
	if err != nil {
		return 1, err
	}
	if !lay.plain && lay.of > 1 {
		return lay.of, nil
	}
	return 1, nil
}

// ShardedWarehouse is a fixed-shard-count view of a warehouse: writes split
// every table by hash of the imsi column into per-shard partition files, and
// ReadShard serves one slice of a month whatever layout is on disk. A
// 1-shard view writes the plain layout, bit-identical to a legacy warehouse.
type ShardedWarehouse struct {
	w      *Warehouse
	shards int
}

// Sharded returns a view of the warehouse at the given shard count.
func (w *Warehouse) Sharded(shards int) (*ShardedWarehouse, error) {
	if shards < 1 {
		return nil, fmt.Errorf("store: shard count %d must be >= 1", shards)
	}
	return &ShardedWarehouse{w: w, shards: shards}, nil
}

// Warehouse returns the underlying warehouse.
func (sw *ShardedWarehouse) Warehouse() *Warehouse { return sw.w }

// Shards returns the view's shard count.
func (sw *ShardedWarehouse) Shards() int { return sw.shards }

// WritePartition stores t as partition month of the named table, split into
// per-shard files by hash of the imsi column. Each shard file commits
// atomically (temp + rename) through the same fault-hook seam as a plain
// write; superseded layouts are removed only after the full set is
// committed. Rewriting an existing month at the same shard count is atomic
// per shard file, not across the set — run re-shards against quiesced
// months.
func (sw *ShardedWarehouse) WritePartition(name string, month int, t *table.Table) error {
	if sw.shards == 1 {
		return sw.w.WritePartition(name, month, t)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("store: refusing to write invalid table: %w", err)
	}
	ki := t.Schema.Index(shardKey)
	if ki < 0 || t.Schema.Fields[ki].Type != table.Int64 {
		return fmt.Errorf("store: sharded write of %q needs a BIGINT %q column", name, shardKey)
	}
	if err := sw.w.checkPartitionSchema(name, month, t); err != nil {
		return err
	}
	keys := t.Cols[ki].Ints
	idx := make([][]int, sw.shards)
	for i, k := range keys {
		s := table.ShardOf(k, sw.shards)
		idx[s] = append(idx[s], i)
	}
	dir := filepath.Join(sw.w.root, name)
	for s := 0; s < sw.shards; s++ {
		// One shard slice is materialized at a time, so the write path's
		// peak memory is the input table plus 1/N of it.
		part := t.Take(idx[s])
		dst := filepath.Join(dir, partName(month, s, sw.shards))
		if err := sw.w.runHook(OpWritePartition, name, month); err != nil {
			var cr *Crash
			if errors.As(err, &cr) {
				return sw.w.crashingWrite(cr, dir, dst, part)
			}
			return err
		}
		if err := sw.w.atomicWrite(dir, dst, part); err != nil {
			return err
		}
	}
	// Commit point for layout changes: drop the plain file and any
	// different-count shard sets now that the new set is complete.
	os.Remove(filepath.Join(dir, partName(month, 0, 1)))
	sw.w.removeShardFiles(name, month, sw.shards)
	return nil
}

// ReadShard loads shard's slice of one month. A committed shard set at the
// view's own count is read directly — one file, the out-of-core fast path.
// Plain or different-count layouts are read whole and filtered by hash,
// which keeps legacy warehouses and mid-re-shard months readable shard by
// shard at the cost of a full partition scan.
func (sw *ShardedWarehouse) ReadShard(name string, month, shard int) (*table.Table, error) {
	if shard < 0 || shard >= sw.shards {
		return nil, fmt.Errorf("store: shard %d out of range [0,%d)", shard, sw.shards)
	}
	if err := sw.w.runHook(OpReadPartition, name, month); err != nil {
		return nil, err
	}
	t, err := sw.readShard(name, month, shard)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("store: read %s month=%d shard=%d/%d: %w", name, month, shard, sw.shards, err)
	}
	return t, nil
}

func (sw *ShardedWarehouse) readShard(name string, month, shard int) (*table.Table, error) {
	lay, err := sw.w.layoutOf(name, month)
	if err != nil {
		return nil, err
	}
	if !lay.plain && lay.of == sw.shards && sw.shards > 1 {
		return readTableFile(filepath.Join(sw.w.root, name, partName(month, shard, sw.shards)))
	}
	whole, err := sw.w.readMonth(name, month)
	if err != nil {
		return nil, err
	}
	if sw.shards == 1 {
		return whole, nil
	}
	col := whole.Col(shardKey)
	if col == nil || col.Type != table.Int64 {
		return nil, fmt.Errorf("store: table %q has no BIGINT %q column to shard by", name, shardKey)
	}
	keys := col.Ints
	return whole.Filter(func(i int) bool { return table.ShardOf(keys[i], sw.shards) == shard }), nil
}

// ShardReader is a features.TableReader view of a single shard: ReadMonths
// returns only that shard's rows of each table. core.RetrySource, fault
// injection and degraded-mode loading compose over it exactly as over a
// whole warehouse.
type ShardReader struct {
	sw    *ShardedWarehouse
	shard int
}

// ShardReader returns the reader for one shard of the view.
func (sw *ShardedWarehouse) ShardReader(shard int) *ShardReader {
	return &ShardReader{sw: sw, shard: shard}
}

// Shard reports which slice this reader serves.
func (r *ShardReader) Shard() int { return r.shard }

// ReadMonths reads the shard's slice of the given partitions, concatenated
// in month order.
func (r *ShardReader) ReadMonths(name string, months []int) (*table.Table, error) {
	var out *table.Table
	for _, m := range months {
		t, err := r.sw.ReadShard(name, m, r.shard)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = t
			continue
		}
		if err := out.AppendTable(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Block is one stored chunk of a table: the rows of a single partition file,
// with its position in the (month, shard) grid. Shards is the shard count of
// the block's month (1 = plain layout).
type Block struct {
	Month  int
	Shard  int
	Shards int
	Table  *table.Table
}

// BlockReader streams a table's committed partitions one file at a time in
// (month ascending, shard ascending) order, so consumers can scan
// arbitrarily large tables without materializing any whole month. The layout
// of every requested month is resolved at open time.
type BlockReader struct {
	w    *Warehouse
	name string
	refs []partInfo
	next int
}

// OpenBlocks opens a block stream over the given months of a table (nil
// months = every committed month, ascending). A requested month with no
// committed layout fails with fs.ErrNotExist.
func (w *Warehouse) OpenBlocks(name string, months []int) (*BlockReader, error) {
	if months == nil {
		var err error
		months, err = w.Months(name)
		if err != nil {
			return nil, err
		}
	}
	br := &BlockReader{w: w, name: name}
	for _, m := range months {
		lay, err := w.layoutOf(name, m)
		if err != nil {
			return nil, err
		}
		switch {
		case lay.plain:
			br.refs = append(br.refs, partInfo{month: m, shard: 0, of: 1})
		case lay.of > 0:
			for s := 0; s < lay.of; s++ {
				br.refs = append(br.refs, partInfo{month: m, shard: s, of: lay.of})
			}
		default:
			return nil, fmt.Errorf("store: open blocks %s month=%d: %w", name, m, fs.ErrNotExist)
		}
	}
	return br, nil
}

// Next returns the next block, or (nil, io.EOF) when the stream is drained.
// Each block read runs the partition read hook, like ReadPartition.
func (br *BlockReader) Next() (*Block, error) {
	if br.next >= len(br.refs) {
		return nil, io.EOF
	}
	ref := br.refs[br.next]
	br.next++
	if err := br.w.runHook(OpReadPartition, br.name, ref.month); err != nil {
		return nil, err
	}
	t, err := readTableFile(filepath.Join(br.w.root, br.name, partName(ref.month, ref.shard, ref.of)))
	if err != nil {
		return nil, fmt.Errorf("store: read %s month=%d shard=%d/%d: %w", br.name, ref.month, ref.shard, ref.of, err)
	}
	return &Block{Month: ref.month, Shard: ref.shard, Shards: ref.of, Table: t}, nil
}

// Package tree implements the paper's tree learners from scratch: CART
// decision trees with Gini impurity and weighted instances (Eqs. 5-6),
// random forests with bagging, √N feature subspaces and Gini feature
// importance (Section 4.2, Eqs. 4 and 7), and gradient boosted decision
// trees (GBDT) with binomial deviance for the Figure 9 comparison.
package tree

import (
	"errors"
	"fmt"
	"math"

	"telcochurn/internal/dataset"
)

// Config holds the tree-growth hyperparameters shared by single trees,
// forests and GBDT base learners.
type Config struct {
	// MinLeafSamples is the paper's stopping rule: splitting stops when a
	// node holds fewer than this many instances (paper: 100, "to avoid
	// over-fitting"). Counted unweighted.
	MinLeafSamples int
	// MaxDepth bounds tree depth; 0 means unlimited (the paper relies on
	// MinLeafSamples alone).
	MaxDepth int
	// FeaturesPerSplit is the number of features sampled at each node; 0
	// means all features (single CART), -1 means √N (random forest default).
	FeaturesPerSplit int
	// Seed drives the feature subsampling and bootstrap RNG.
	Seed int64
	// MaxBins switches split search to histogram mode: each feature is
	// quantile-binned into at most MaxBins buckets once per training matrix
	// and nodes scan bin boundaries instead of every distinct value. 0 (the
	// default) keeps exact splits, which are bit-identical to the legacy
	// row-major scan; values above 255 are clamped (bin ids are bytes).
	MaxBins int
}

func (c Config) withDefaults() Config {
	if c.MinLeafSamples == 0 {
		c.MinLeafSamples = 100
	}
	if c.MaxBins > maxBinsLimit {
		c.MaxBins = maxBinsLimit
	}
	if c.MaxBins < 0 {
		c.MaxBins = 0
	}
	return c
}

// node is one tree node; leaves have nil children and a class distribution
// (classification) or value (regression).
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	probs     []float64 // leaf class distribution, classification trees
	value     float64   // leaf value, regression trees
	n         int       // training instances that reached this node
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// Tree is a trained CART classification tree.
type Tree struct {
	root       *node
	numClasses int
	numFeat    int
	importance []float64
}

// Gini computes the Gini index of Eq. (6), 1 - sum_c p_c^2, from weighted
// class masses.
func Gini(classMass []float64) float64 {
	total := 0.0
	for _, m := range classMass {
		total += m
	}
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, m := range classMass {
		p := m / total
		g -= p * p
	}
	return g
}

// FitTree trains a single CART classification tree on the dataset with the
// paper's Gini splitting (Eqs. 5-6), honoring per-instance weights. Split
// search runs on the columnar backend (see columnar.go): exact presorted
// scans by default, histogram scans when cfg.MaxBins > 0.
func FitTree(d *dataset.Dataset, cfg Config) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.NumInstances() == 0 {
		return nil, errors.New("tree: empty dataset")
	}
	if d.NumInstances() > math.MaxInt32 {
		return nil, errors.New("tree: dataset exceeds 2^31 rows")
	}
	numClasses := d.NumClasses()
	if numClasses < 2 {
		numClasses = 2
	}
	return fitTreeWithClasses(d, cfg, numClasses), nil
}

// fitTreeWithClasses is FitTree with an externally fixed class count, so a
// sample that misses a rare class still yields aligned probability vectors.
func fitTreeWithClasses(d *dataset.Dataset, cfg Config, numClasses int) *Tree {
	cfg = cfg.withDefaults()
	cd := newColData(d.X, d.NumFeatures(), cfg.MaxBins)
	g := newColGrower(newLayout(cd), d.Y, weightsOf(d), numClasses, d.NumFeatures(), cfg)
	root := g.grow(0, d.NumInstances(), 0)
	return &Tree{root: root, numClasses: numClasses, numFeat: d.NumFeatures(), importance: g.importance}
}

func weightsOf(d *dataset.Dataset) []float64 {
	if d.W != nil {
		return d.W
	}
	w := make([]float64, d.NumInstances())
	for i := range w {
		w[i] = 1
	}
	return w
}

// PredictProba returns the class-probability vector for one instance.
func (t *Tree) PredictProba(x []float64) []float64 {
	nd := t.root
	for !nd.isLeaf() {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.probs
}

// Predict returns the most probable class for one instance.
func (t *Tree) Predict(x []float64) int {
	probs := t.PredictProba(x)
	best, bestP := 0, probs[0]
	for c, p := range probs {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// NumClasses returns the number of classes the tree was trained with.
func (t *Tree) NumClasses() int { return t.numClasses }

// Importance returns the tree's raw (unnormalized) Gini importance per
// feature: the sum over split nodes of weighted impurity decrease (Eq. 7).
func (t *Tree) Importance() []float64 {
	return append([]float64(nil), t.importance...)
}

// NumLeaves counts the tree's leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.root) }

func countLeaves(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.isLeaf() {
		return 1
	}
	return countLeaves(nd.left) + countLeaves(nd.right)
}

// MinLeafSize returns the smallest training-population of any leaf, for
// invariant testing against Config.MinLeafSamples.
func (t *Tree) MinLeafSize() int {
	minSize := math.MaxInt
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.isLeaf() {
			if nd.n < minSize {
				minSize = nd.n
			}
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return minSize
}

// split is one candidate cut: send x[feature] <= threshold left.
type split struct {
	feature     int
	threshold   float64
	improvement float64
}

// giniComplement computes Gini of (parent - left) without allocating.
func giniComplement(parent, left []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for c := range parent {
		p := (parent[c] - left[c]) / total
		g -= p * p
	}
	return g
}

func normalize(mass []float64) []float64 {
	total := 0.0
	for _, m := range mass {
		total += m
	}
	probs := make([]float64, len(mass))
	if total == 0 {
		for c := range probs {
			probs[c] = 1 / float64(len(mass))
		}
		return probs
	}
	for c, m := range mass {
		probs[c] = m / total
	}
	return probs
}

func isPure(mass []float64) bool {
	nonZero := 0
	for _, m := range mass {
		if m > 0 {
			nonZero++
		}
	}
	return nonZero <= 1
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("Tree(classes=%d leaves=%d)", t.numClasses, t.NumLeaves())
}

// Package tree implements the paper's tree learners from scratch: CART
// decision trees with Gini impurity and weighted instances (Eqs. 5-6),
// random forests with bagging, √N feature subspaces and Gini feature
// importance (Section 4.2, Eqs. 4 and 7), and gradient boosted decision
// trees (GBDT) with binomial deviance for the Figure 9 comparison.
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"telcochurn/internal/dataset"
)

// Config holds the tree-growth hyperparameters shared by single trees,
// forests and GBDT base learners.
type Config struct {
	// MinLeafSamples is the paper's stopping rule: splitting stops when a
	// node holds fewer than this many instances (paper: 100, "to avoid
	// over-fitting"). Counted unweighted.
	MinLeafSamples int
	// MaxDepth bounds tree depth; 0 means unlimited (the paper relies on
	// MinLeafSamples alone).
	MaxDepth int
	// FeaturesPerSplit is the number of features sampled at each node; 0
	// means all features (single CART), -1 means √N (random forest default).
	FeaturesPerSplit int
	// Seed drives the feature subsampling and bootstrap RNG.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MinLeafSamples == 0 {
		c.MinLeafSamples = 100
	}
	return c
}

// node is one tree node; leaves have nil children and a class distribution
// (classification) or value (regression).
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	probs     []float64 // leaf class distribution, classification trees
	value     float64   // leaf value, regression trees
	n         int       // training instances that reached this node
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// Tree is a trained CART classification tree.
type Tree struct {
	root       *node
	numClasses int
	numFeat    int
	importance []float64
}

// Gini computes the Gini index of Eq. (6), 1 - sum_c p_c^2, from weighted
// class masses.
func Gini(classMass []float64) float64 {
	total := 0.0
	for _, m := range classMass {
		total += m
	}
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, m := range classMass {
		p := m / total
		g -= p * p
	}
	return g
}

// FitTree trains a single CART classification tree on the dataset with the
// paper's Gini splitting (Eqs. 5-6), honoring per-instance weights.
func FitTree(d *dataset.Dataset, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.NumInstances() == 0 {
		return nil, errors.New("tree: empty dataset")
	}
	numClasses := d.NumClasses()
	if numClasses < 2 {
		numClasses = 2
	}
	g := &grower{
		x:          d.X,
		y:          d.Y,
		w:          weightsOf(d),
		numClasses: numClasses,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		importance: make([]float64, d.NumFeatures()),
	}
	idx := make([]int, d.NumInstances())
	for i := range idx {
		idx[i] = i
	}
	root := g.grow(idx, 0)
	return &Tree{root: root, numClasses: numClasses, numFeat: d.NumFeatures(), importance: g.importance}, nil
}

func weightsOf(d *dataset.Dataset) []float64 {
	if d.W != nil {
		return d.W
	}
	w := make([]float64, d.NumInstances())
	for i := range w {
		w[i] = 1
	}
	return w
}

// PredictProba returns the class-probability vector for one instance.
func (t *Tree) PredictProba(x []float64) []float64 {
	nd := t.root
	for !nd.isLeaf() {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.probs
}

// Predict returns the most probable class for one instance.
func (t *Tree) Predict(x []float64) int {
	probs := t.PredictProba(x)
	best, bestP := 0, probs[0]
	for c, p := range probs {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// NumClasses returns the number of classes the tree was trained with.
func (t *Tree) NumClasses() int { return t.numClasses }

// Importance returns the tree's raw (unnormalized) Gini importance per
// feature: the sum over split nodes of weighted impurity decrease (Eq. 7).
func (t *Tree) Importance() []float64 {
	return append([]float64(nil), t.importance...)
}

// NumLeaves counts the tree's leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.root) }

func countLeaves(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.isLeaf() {
		return 1
	}
	return countLeaves(nd.left) + countLeaves(nd.right)
}

// MinLeafSize returns the smallest training-population of any leaf, for
// invariant testing against Config.MinLeafSamples.
func (t *Tree) MinLeafSize() int {
	minSize := math.MaxInt
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.isLeaf() {
			if nd.n < minSize {
				minSize = nd.n
			}
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return minSize
}

// grower holds the shared state of one tree-growing run.
type grower struct {
	x          [][]float64
	y          []int
	w          []float64
	numClasses int
	cfg        Config
	rng        *rand.Rand
	importance []float64
}

func (g *grower) grow(idx []int, depth int) *node {
	mass := make([]float64, g.numClasses)
	for _, i := range idx {
		mass[g.y[i]] += g.w[i]
	}
	leaf := func() *node {
		return &node{probs: normalize(mass), n: len(idx)}
	}
	if len(idx) < 2*g.cfg.MinLeafSamples || depth == g.cfg.MaxDepth && g.cfg.MaxDepth > 0 {
		return leaf()
	}
	if isPure(mass) {
		return leaf()
	}

	best := g.bestSplit(idx, mass)
	if best.feature < 0 {
		return leaf()
	}
	leftIdx, rightIdx := partition(g.x, idx, best.feature, best.threshold)
	if len(leftIdx) < g.cfg.MinLeafSamples || len(rightIdx) < g.cfg.MinLeafSamples {
		return leaf()
	}
	g.importance[best.feature] += best.improvement
	return &node{
		feature:   best.feature,
		threshold: best.threshold,
		left:      g.grow(leftIdx, depth+1),
		right:     g.grow(rightIdx, depth+1),
		n:         len(idx),
		// Internal nodes keep their class distribution too, so decision-path
		// attribution (Contributions) can credit each split's probability
		// shift to the feature it tested.
		probs: normalize(mass),
	}
}

type split struct {
	feature     int
	threshold   float64
	improvement float64
}

// bestSplit searches the sampled feature subset for the split with the
// maximum weighted Gini improvement (Eq. 5).
func (g *grower) bestSplit(idx []int, parentMass []float64) split {
	numFeat := len(g.x[0])
	features := g.sampleFeatures(numFeat)
	parentGini := Gini(parentMass)
	parentTotal := 0.0
	for _, m := range parentMass {
		parentTotal += m
	}

	best := split{feature: -1}
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	leftMass := make([]float64, g.numClasses)

	for _, f := range features {
		for j, i := range idx {
			vals[j] = g.x[i][f]
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		for c := range leftMass {
			leftMass[c] = 0
		}
		leftTotal := 0.0
		// Scan split points between distinct adjacent values; enforce the
		// min-leaf rule on unweighted counts.
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			leftMass[g.y[i]] += g.w[i]
			leftTotal += g.w[i]
			cur, next := vals[order[pos]], vals[order[pos+1]]
			if cur == next {
				continue
			}
			nLeft := pos + 1
			nRight := len(order) - nLeft
			if nLeft < g.cfg.MinLeafSamples || nRight < g.cfg.MinLeafSamples {
				continue
			}
			q := leftTotal / parentTotal
			rightGini := giniComplement(parentMass, leftMass, parentTotal-leftTotal)
			improvement := parentGini - q*Gini(leftMass) - (1-q)*rightGini
			if improvement > best.improvement {
				best = split{feature: f, threshold: (cur + next) / 2, improvement: improvement}
			}
		}
	}
	return best
}

// giniComplement computes Gini of (parent - left) without allocating.
func giniComplement(parent, left []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for c := range parent {
		p := (parent[c] - left[c]) / total
		g -= p * p
	}
	return g
}

func (g *grower) sampleFeatures(numFeat int) []int {
	k := g.cfg.FeaturesPerSplit
	switch {
	case k == 0 || k >= numFeat:
		all := make([]int, numFeat)
		for i := range all {
			all[i] = i
		}
		return all
	case k == -1:
		k = int(math.Sqrt(float64(numFeat)))
		if k < 1 {
			k = 1
		}
	}
	perm := g.rng.Perm(numFeat)
	return perm[:k]
}

func partition(x [][]float64, idx []int, feature int, threshold float64) (left, right []int) {
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}

func normalize(mass []float64) []float64 {
	total := 0.0
	for _, m := range mass {
		total += m
	}
	probs := make([]float64, len(mass))
	if total == 0 {
		for c := range probs {
			probs[c] = 1 / float64(len(mass))
		}
		return probs
	}
	for c, m := range mass {
		probs[c] = m / total
	}
	return probs
}

func isPure(mass []float64) bool {
	nonZero := 0
	for _, m := range mass {
		if m > 0 {
			nonZero++
		}
	}
	return nonZero <= 1
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("Tree(classes=%d leaves=%d)", t.numClasses, t.NumLeaves())
}

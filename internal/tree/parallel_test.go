package tree

import (
	"math/rand"
	"testing"

	"telcochurn/internal/dataset"
)

// synthDataset builds a small labeled dataset with a learnable signal.
func synthDataset(n, feats int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(make([]string, feats))
	for j := range d.FeatureNames {
		d.FeatureNames[j] = "f" + string(rune('a'+j%26))
	}
	for i := 0; i < n; i++ {
		row := make([]float64, feats)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y := 0
		if row[0]-row[1] > 0.3 {
			y = 1
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	return d
}

// TestFitForestDeterministicAcrossWorkers is the model half of the pipeline
// determinism guarantee: identical seeds must yield bit-identical forests
// for any Workers setting.
func TestFitForestDeterministicAcrossWorkers(t *testing.T) {
	d := synthDataset(600, 8, 7)
	cfg := ForestConfig{NumTrees: 40, MinLeafSamples: 10, Seed: 5}

	cfg.Workers = 1
	f1, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	f8, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s1 := f1.ScoreAll(d.X)
	s8 := f8.ScoreAll(d.X)
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("score %d differs across worker counts: %v vs %v", i, s1[i], s8[i])
		}
	}
	i1, i8 := f1.Importance(), f8.Importance()
	for j := range i1 {
		if i1[j] != i8[j] {
			t.Fatalf("importance %d differs across worker counts: %v vs %v", j, i1[j], i8[j])
		}
	}
}

// TestFitForestHistogramDeterministicAcrossWorkers extends the guarantee to
// histogram mode: binned split search must stay bit-identical for any
// Workers setting too (bins are computed once per forest, before the
// parallel tree loop).
func TestFitForestHistogramDeterministicAcrossWorkers(t *testing.T) {
	d := synthDataset(600, 8, 7)
	cfg := ForestConfig{NumTrees: 40, MinLeafSamples: 10, Seed: 5, MaxBins: 32}

	cfg.Workers = 1
	f1, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	f8, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s1 := f1.ScoreAll(d.X)
	s8 := f8.ScoreAll(d.X)
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("hist score %d differs across worker counts: %v vs %v", i, s1[i], s8[i])
		}
	}
	i1, i8 := f1.Importance(), f8.Importance()
	for j := range i1 {
		if i1[j] != i8[j] {
			t.Fatalf("hist importance %d differs across worker counts: %v vs %v", j, i1[j], i8[j])
		}
	}
}

func TestScoreAllEmptyAndSingle(t *testing.T) {
	d := synthDataset(300, 5, 3)
	f, err := FitForest(d, ForestConfig{NumTrees: 15, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ScoreAll(nil); len(got) != 0 {
		t.Errorf("ScoreAll(nil) = %v, want empty", got)
	}
	one := f.ScoreAll(d.X[:1])
	if len(one) != 1 || one[0] != f.Score(d.X[0]) {
		t.Errorf("single-row ScoreAll = %v, want [%v]", one, f.Score(d.X[0]))
	}
}

func TestScoreAllLargeBatchMatchesScore(t *testing.T) {
	d := synthDataset(900, 6, 11)
	f, err := FitForest(d, ForestConfig{NumTrees: 25, MinLeafSamples: 10, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := f.ScoreAll(d.X)
	for i, s := range batch {
		if s != f.Score(d.X[i]) {
			t.Fatalf("row %d: batch score %v != single score %v", i, s, f.Score(d.X[i]))
		}
	}
	preds := f.PredictAll(d.X)
	for i, p := range preds {
		if p != f.Predict(d.X[i]) {
			t.Fatalf("row %d: batch predict %d != single predict %d", i, p, f.Predict(d.X[i]))
		}
	}
}

package tree

// Columnar training backend. The legacy grower re-sorted every sampled
// feature at every node (O(depth · √F · n log n) interface-based sorts over
// the row-major matrix); this backend sorts each feature once per training
// matrix, keeps the data feature-major, and maintains the sorted orders
// across splits by stable in-place partitioning, so a node's split scan is a
// single pass over contiguous memory and allocates nothing.
//
// Three layers:
//
//   - colData: the immutable per-matrix view — feature-major value columns
//     plus, per feature, either a presorted row order (exact mode) or
//     quantile bin assignments (histogram mode, Config.MaxBins > 0). A
//     forest builds it once and shares it across all trees; GBDT builds it
//     once and shares it across all boosting rounds.
//   - colLayout: the mutable per-tree state — the node row list and (exact
//     mode) per-feature order arrays, each partitioned in place at every
//     split, plus the membership marker and scratch buffer that make the
//     partition allocation-free. Forest trees derive their bootstrap layout
//     from the shared colData by a counting remap instead of re-sorting.
//   - colGrower / colRegGrower (regression.go): the recursive CART growth,
//     operating on [start, end) segments of the layout's arrays.
//
// Invariants maintained by the layout:
//
//  1. Every tree node owns a contiguous segment [start, end) of rows and of
//     each order array; children own [start, start+nLeft) and
//     [start+nLeft, end).
//  2. rows[start:end] preserves the relative order of the original rows
//     (stable partition), so per-node reductions visit rows in exactly the
//     order the legacy partition-based grower did.
//  3. orders[f][start:end] lists the node's rows ascending by feature f —
//     the presort invariant the split scan relies on.
//
// With unit instance weights (every forest tree: the bootstrap encodes
// weights in the draw) the exact path is bit-identical to the legacy scan:
// all class-mass partial sums are integer-valued, so the order in which
// tied rows are accumulated cannot change them, and thresholds/improvements
// are computed with the exact same arithmetic. With arbitrary non-dyadic
// weights, tied feature values may be accumulated in a different order than
// the legacy unstable sort visited them, which can move improvements by
// ulps; everything stays deterministic for any worker count either way.

import (
	"math"
	"math/rand"
	"sort"
)

// maxBinsLimit caps MaxBins so histogram bin indices fit in a byte.
const maxBinsLimit = 255

// colData is the immutable columnar view of one training matrix, shared by
// every tree grown on it.
type colData struct {
	numRows int
	cols    [][]float64 // cols[f][row] = x[row][f]
	// Exact mode: rows sorted ascending by cols[f].
	orders [][]int32
	// Histogram mode: binUpper[f][b] is the split threshold after bin b
	// (len bins(f)-1, ascending); binIdx[f][row] is the row's bin, defined
	// as the smallest b with value <= binUpper[f][b] (last bin otherwise) —
	// so "bins 0..b go left under threshold binUpper[f][b]" matches the
	// predictor's `x <= threshold` routing exactly.
	binUpper [][]float64
	binIdx   [][]uint8
}

// newColData transposes x to feature-major and presorts (maxBins == 0) or
// quantile-bins (maxBins > 0) every feature. O(F·n log n) once, against the
// legacy backend's per-node sorts.
func newColData(x [][]float64, numFeat, maxBins int) *colData {
	n := len(x)
	cd := &colData{numRows: n, cols: make([][]float64, numFeat)}
	flat := make([]float64, numFeat*n)
	for f := range cd.cols {
		cd.cols[f] = flat[f*n : (f+1)*n : (f+1)*n]
	}
	for i, row := range x {
		for f, v := range row {
			cd.cols[f][i] = v
		}
	}
	if maxBins > 0 {
		cd.bin(maxBins)
	} else {
		cd.presort()
	}
	return cd
}

func (cd *colData) presort() {
	n := cd.numRows
	cd.orders = make([][]int32, len(cd.cols))
	flat := make([]int32, len(cd.cols)*n)
	for f, col := range cd.cols {
		ord := flat[f*n : (f+1)*n : (f+1)*n]
		for i := range ord {
			ord[i] = int32(i)
		}
		sort.Slice(ord, func(a, b int) bool { return col[ord[a]] < col[ord[b]] })
		cd.orders[f] = ord
	}
}

func (cd *colData) bin(maxBins int) {
	if maxBins > maxBinsLimit {
		maxBins = maxBinsLimit
	}
	n := cd.numRows
	cd.binUpper = make([][]float64, len(cd.cols))
	cd.binIdx = make([][]uint8, len(cd.cols))
	sorted := make([]float64, n)
	flat := make([]uint8, len(cd.cols)*n)
	for f, col := range cd.cols {
		copy(sorted, col)
		sort.Float64s(sorted)
		upper := binEdges(sorted, maxBins)
		cd.binUpper[f] = upper
		idx := flat[f*n : (f+1)*n : (f+1)*n]
		if len(upper) > 0 {
			for i, v := range col {
				idx[i] = uint8(sort.SearchFloat64s(upper, v))
			}
		}
		cd.binIdx[f] = idx
	}
}

// binEdges picks quantile cut points over the sorted values: a cut is
// placed after every ~n/maxBins values, only between distinct neighbors, so
// equal values always share a bin and at most maxBins bins result. The edge
// is the midpoint of the straddled values, mirroring the exact scan's
// thresholds.
func binEdges(sorted []float64, maxBins int) []float64 {
	n := len(sorted)
	if n < 2 || maxBins < 2 {
		return nil
	}
	per := (n + maxBins - 1) / maxBins
	edges := make([]float64, 0, maxBins-1)
	count := 0
	for i := 0; i < n-1; i++ {
		count++
		if count >= per && sorted[i] != sorted[i+1] {
			edges = append(edges, (sorted[i]+sorted[i+1])/2)
			count = 0
		}
	}
	return edges
}

// colLayout is one tree's mutable training state over a colData.
type colLayout struct {
	cols     [][]float64
	binUpper [][]float64
	binIdx   [][]uint8
	rows     []int32   // node row lists, stable-partitioned per split
	orders   [][]int32 // exact mode: per-feature row orders, ditto
	goesLeft []uint8   // node-membership marker (0/1) for the chosen split
	scratch  []int32   // stable-partition spill buffer
}

// newLayout builds the identity layout (tree trained on cd's rows
// directly). Order arrays are copied because splits partition them in
// place; value columns and bin assignments are shared read-only.
func newLayout(cd *colData) *colLayout {
	n := cd.numRows
	l := &colLayout{
		cols:     cd.cols,
		binUpper: cd.binUpper,
		binIdx:   cd.binIdx,
		rows:     make([]int32, n),
		goesLeft: make([]uint8, n),
		scratch:  make([]int32, n),
	}
	for i := range l.rows {
		l.rows[i] = int32(i)
	}
	if cd.orders != nil {
		l.orders = make([][]int32, len(cd.orders))
		flat := make([]int32, len(cd.orders)*n)
		for f, ord := range cd.orders {
			dst := flat[f*n : (f+1)*n : (f+1)*n]
			copy(dst, ord)
			l.orders[f] = dst
		}
	}
	return l
}

// bootBuffers is the reusable per-tree arena for forest training: the
// layout's arrays plus the counting-sort scratch of the bootstrap remap and
// the gathered label vector. FitForest keeps them in a sync.Pool so a
// 500-tree fit allocates the big F·n buffers only ~once per worker.
type bootBuffers struct {
	lay      colLayout
	y        []int
	colsFlat []float64
	ordFlat  []int32
	binFlat  []uint8
	count    []int32 // bootstrap multiplicity per source row
	begin    []int32 // prefix sums of count
	cursor   []int32
	posByRow []int32
}

// newBootstrapLayout derives the layout for the resample x'[j] = x[idx[j]]
// without re-sorting: bootstrap positions are grouped by source row with
// one counting pass, then each feature's presorted order is rewritten by
// walking the source order and emitting every position that drew the row —
// O(F·n) per tree in place of O(F·n log n). Values are gathered from the
// row-major matrix x (sequential reads per row) rather than from cd's
// columns (random reads per feature). All buffers come from b.
func newBootstrapLayout(cd *colData, x [][]float64, idx []int, b *bootBuffers) *colLayout {
	n := len(idx)
	numFeat := len(cd.cols)
	l := &b.lay
	l.rows = growInt32(l.rows, n)
	l.scratch = growInt32(l.scratch, n)
	if cap(l.goesLeft) < n {
		l.goesLeft = make([]uint8, n)
	}
	l.goesLeft = l.goesLeft[:n]
	for i := range l.rows {
		l.rows[i] = int32(i)
	}

	if cap(b.colsFlat) < numFeat*n || len(l.cols) != numFeat {
		b.colsFlat = make([]float64, numFeat*n)
		l.cols = make([][]float64, numFeat)
	}
	for f := range l.cols {
		l.cols[f] = b.colsFlat[f*n : (f+1)*n : (f+1)*n]
	}
	for j, r := range idx {
		row := x[r]
		for f, v := range row {
			l.cols[f][j] = v
		}
	}

	if cd.binIdx == nil {
		l.binUpper, l.binIdx = nil, nil
	} else {
		l.binUpper = cd.binUpper // bin edges come from the full matrix
		if cap(b.binFlat) < numFeat*n || len(l.binIdx) != numFeat {
			b.binFlat = make([]uint8, numFeat*n)
			l.binIdx = make([][]uint8, numFeat)
		}
		for f, src := range cd.binIdx {
			dst := b.binFlat[f*n : (f+1)*n : (f+1)*n]
			for j, r := range idx {
				dst[j] = src[r]
			}
			l.binIdx[f] = dst
		}
	}

	if cd.orders == nil {
		l.orders = nil
	} else {
		// posByRow[begin[r]:begin[r]+count[r]] lists the bootstrap positions
		// that drew source row r, ascending.
		m := cd.numRows
		b.count = growInt32(b.count, m)
		b.begin = growInt32(b.begin, m)
		b.cursor = growInt32(b.cursor, m)
		b.posByRow = growInt32(b.posByRow, n)
		count, begin, cursor, posByRow := b.count, b.begin, b.cursor, b.posByRow
		for r := range count {
			count[r] = 0
		}
		for _, r := range idx {
			count[r]++
		}
		sum := int32(0)
		for r := range begin {
			begin[r] = sum
			sum += count[r]
		}
		copy(cursor, begin)
		for j, r := range idx {
			posByRow[cursor[r]] = int32(j)
			cursor[r]++
		}
		if cap(b.ordFlat) < numFeat*n || len(l.orders) != numFeat {
			b.ordFlat = make([]int32, numFeat*n)
			l.orders = make([][]int32, numFeat)
		}
		for f, src := range cd.orders {
			dst := b.ordFlat[f*n : (f+1)*n : (f+1)*n]
			k := 0
			for _, r := range src {
				c := int(count[r])
				if c == 0 {
					continue
				}
				bg := begin[r]
				copy(dst[k:k+c], posByRow[bg:bg+int32(c)])
				k += c
			}
			l.orders[f] = dst
		}
	}
	return l
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// markSplit records which of the node's rows go left under the split and
// returns their count, without moving anything — the caller checks the
// min-leaf rule first so a rejected split leaves the layout untouched
// (leaf reductions must still see the original row order). The marker is
// computed branch-free: split outcomes are ~50/50, the worst case for
// branch prediction.
func (l *colLayout) markSplit(start, end, feature int, threshold float64) int {
	col := l.cols[feature]
	goesLeft := l.goesLeft
	nLeft := 0
	for _, i := range l.rows[start:end] {
		b := uint8(0)
		if col[i] <= threshold {
			b = 1
		}
		goesLeft[i] = b
		nLeft += int(b)
	}
	return nLeft
}

// commitSplit partitions the node's segment of the row list and of every
// order array against the goesLeft marker. The partition is stable, which
// preserves both layout invariants (2) and (3).
func (l *colLayout) commitSplit(start, end int) {
	stablePartition(l.rows[start:end], l.goesLeft, l.scratch)
	for _, ord := range l.orders {
		stablePartition(ord[start:end], l.goesLeft, l.scratch)
	}
}

// stablePartition moves marked rows to the front of seg, preserving
// relative order on both sides, spilling the right side through scratch.
// Writes trail reads (left count <= scan position), so compaction is safe
// in place. Both targets are written unconditionally and the cursors
// advance by the 0/1 marker — branch-free, since the 50/50 left/right
// pattern defeats branch prediction and this loop runs for every feature at
// every split.
func stablePartition(seg []int32, goesLeft []uint8, scratch []int32) {
	nl, nr := 0, 0
	for _, i := range seg {
		b := int(goesLeft[i])
		seg[nl] = i
		scratch[nr] = i
		nl += b
		nr += 1 - b
	}
	copy(seg[nl:], scratch[:nr])
}

// idxSlice materializes a node's rows as []int, in original relative order,
// for leaf callbacks (leaves only — off the hot path).
func (l *colLayout) idxSlice(start, end int) []int {
	idx := make([]int, end-start)
	for j, i := range l.rows[start:end] {
		idx[j] = int(i)
	}
	return idx
}

// sampleSplitFeatures draws the per-node feature subset: k == 0 means all
// features, -1 means √F (the forest default), k > 0 exactly k. The RNG is
// consumed identically to the legacy growers (one Perm per sampling node).
func sampleSplitFeatures(rng *rand.Rand, numFeat, k int) []int {
	if numFeat == 0 {
		return nil
	}
	switch {
	case k == 0 || k >= numFeat:
		all := make([]int, numFeat)
		for i := range all {
			all[i] = i
		}
		return all
	case k == -1:
		k = int(math.Sqrt(float64(numFeat)))
		if k < 1 {
			k = 1
		}
	}
	return rng.Perm(numFeat)[:k]
}

// colGrower grows one CART classification tree over a colLayout. Node
// splitting allocates nothing beyond the emitted nodes: class masses,
// histogram accumulators and partition scratch live in per-grower buffers
// sized once up front.
type colGrower struct {
	lay        *colLayout
	y          []int
	w          []float64
	numClasses int
	cfg        Config
	rng        *rand.Rand
	importance []float64
	// unitW marks an all-ones weight vector (every forest tree: the
	// bootstrap encodes weights in the draw). Mass sums then count in whole
	// units — bit-identical to accumulating 1.0s, since integer-valued
	// float64 sums are exact — so the scans skip the weight loads.
	unitW bool

	mass     []float64 // node class-mass accumulator
	leftMass []float64 // split-scan left-side accumulator
	histMass []float64 // histogram mode: bins × classes masses
	histCnt  []int     // histogram mode: unweighted counts per bin
}

func newColGrower(lay *colLayout, y []int, w []float64, numClasses, numFeat int, cfg Config) *colGrower {
	g := &colGrower{
		lay:        lay,
		y:          y,
		w:          w,
		numClasses: numClasses,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		importance: make([]float64, numFeat),
		mass:       make([]float64, numClasses),
		leftMass:   make([]float64, numClasses),
	}
	if lay.binUpper != nil {
		g.histMass = make([]float64, cfg.MaxBins*numClasses)
		g.histCnt = make([]int, cfg.MaxBins)
	}
	g.unitW = true
	for _, v := range w {
		if v != 1 {
			g.unitW = false
			break
		}
	}
	return g
}

func (g *colGrower) grow(start, end, depth int) *node {
	mass := g.mass
	for c := range mass {
		mass[c] = 0
	}
	if g.unitW {
		for _, i := range g.lay.rows[start:end] {
			mass[g.y[i]]++
		}
	} else {
		for _, i := range g.lay.rows[start:end] {
			mass[g.y[i]] += g.w[i]
		}
	}
	n := end - start
	leaf := func() *node {
		return &node{probs: normalize(mass), n: n}
	}
	if n < 2*g.cfg.MinLeafSamples || depth == g.cfg.MaxDepth && g.cfg.MaxDepth > 0 {
		return leaf()
	}
	if isPure(mass) {
		return leaf()
	}

	best := g.bestSplit(start, end, mass)
	if best.feature < 0 {
		return leaf()
	}
	nLeft := g.lay.markSplit(start, end, best.feature, best.threshold)
	if nLeft < g.cfg.MinLeafSamples || n-nLeft < g.cfg.MinLeafSamples {
		return leaf()
	}
	g.lay.commitSplit(start, end)
	g.importance[best.feature] += best.improvement
	nd := &node{
		feature:   best.feature,
		threshold: best.threshold,
		n:         n,
		// Internal nodes keep their class distribution too, so decision-path
		// attribution (Contributions) can credit each split's probability
		// shift to the feature it tested. Normalized before recursion
		// clobbers the shared mass buffer.
		probs: normalize(mass),
	}
	nd.left = g.grow(start, start+nLeft, depth+1)
	nd.right = g.grow(start+nLeft, end, depth+1)
	return nd
}

// bestSplit searches the sampled feature subset for the split with the
// maximum weighted Gini improvement (Eq. 5).
func (g *colGrower) bestSplit(start, end int, parentMass []float64) split {
	features := sampleSplitFeatures(g.rng, len(g.lay.cols), g.cfg.FeaturesPerSplit)
	parentGini := Gini(parentMass)
	parentTotal := 0.0
	for _, m := range parentMass {
		parentTotal += m
	}
	best := split{feature: -1}
	for _, f := range features {
		if g.lay.orders != nil {
			g.scanExact(f, start, end, parentMass, parentGini, parentTotal, &best)
		} else {
			g.scanHist(f, start, end, parentMass, parentGini, parentTotal, &best)
		}
	}
	return best
}

// scanExact walks the node's presorted order for feature f, evaluating a
// cut between every pair of distinct adjacent values; the min-leaf rule is
// enforced on unweighted counts.
func (g *colGrower) scanExact(f, start, end int, parentMass []float64, parentGini, parentTotal float64, best *split) {
	ord := g.lay.orders[f][start:end]
	col := g.lay.cols[f]
	leftMass := g.leftMass
	for c := range leftMass {
		leftMass[c] = 0
	}
	minLeaf := g.cfg.MinLeafSamples
	if g.unitW {
		for pos := 0; pos < len(ord)-1; pos++ {
			i := ord[pos]
			leftMass[g.y[i]]++
			cur, next := col[i], col[ord[pos+1]]
			if cur == next {
				continue
			}
			nLeft := pos + 1
			nRight := len(ord) - nLeft
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			leftTotal := float64(nLeft)
			q := leftTotal / parentTotal
			rightGini := giniComplement(parentMass, leftMass, parentTotal-leftTotal)
			improvement := parentGini - q*Gini(leftMass) - (1-q)*rightGini
			if improvement > best.improvement {
				*best = split{feature: f, threshold: (cur + next) / 2, improvement: improvement}
			}
		}
		return
	}
	leftTotal := 0.0
	for pos := 0; pos < len(ord)-1; pos++ {
		i := ord[pos]
		leftMass[g.y[i]] += g.w[i]
		leftTotal += g.w[i]
		cur, next := col[i], col[ord[pos+1]]
		if cur == next {
			continue
		}
		nLeft := pos + 1
		nRight := len(ord) - nLeft
		if nLeft < minLeaf || nRight < minLeaf {
			continue
		}
		q := leftTotal / parentTotal
		rightGini := giniComplement(parentMass, leftMass, parentTotal-leftTotal)
		improvement := parentGini - q*Gini(leftMass) - (1-q)*rightGini
		if improvement > best.improvement {
			*best = split{feature: f, threshold: (cur + next) / 2, improvement: improvement}
		}
	}
}

// scanHist accumulates the node's class masses into feature f's quantile
// bins in one unordered pass over the rows, then evaluates a cut at every
// non-empty bin boundary. An empty bin's boundary would duplicate the
// previous cut at a higher threshold, so it is skipped.
func (g *colGrower) scanHist(f, start, end int, parentMass []float64, parentGini, parentTotal float64, best *split) {
	upper := g.lay.binUpper[f]
	if len(upper) == 0 {
		return // constant feature: nothing to cut
	}
	nb := len(upper) + 1
	C := g.numClasses
	hm := g.histMass[:nb*C]
	hc := g.histCnt[:nb]
	for j := range hm {
		hm[j] = 0
	}
	for j := range hc {
		hc[j] = 0
	}
	bins := g.lay.binIdx[f]
	if g.unitW {
		for _, i := range g.lay.rows[start:end] {
			b := int(bins[i])
			hm[b*C+g.y[i]]++
			hc[b]++
		}
	} else {
		for _, i := range g.lay.rows[start:end] {
			b := int(bins[i])
			hm[b*C+g.y[i]] += g.w[i]
			hc[b]++
		}
	}
	leftMass := g.leftMass
	for c := range leftMass {
		leftMass[c] = 0
	}
	leftTotal := 0.0
	nLeft := 0
	total := end - start
	minLeaf := g.cfg.MinLeafSamples
	for b := 0; b < nb-1; b++ {
		for c := 0; c < C; c++ {
			m := hm[b*C+c]
			leftMass[c] += m
			leftTotal += m
		}
		nLeft += hc[b]
		if hc[b] == 0 {
			continue
		}
		nRight := total - nLeft
		if nLeft < minLeaf || nRight < minLeaf {
			continue
		}
		q := leftTotal / parentTotal
		rightGini := giniComplement(parentMass, leftMass, parentTotal-leftTotal)
		improvement := parentGini - q*Gini(leftMass) - (1-q)*rightGini
		if improvement > best.improvement {
			*best = split{feature: f, threshold: upper[b], improvement: improvement}
		}
	}
}

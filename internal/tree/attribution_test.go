package tree

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"
)

func TestContributionsDecomposeScore(t *testing.T) {
	d := separable(500, 21)
	f, err := FitForest(d, ForestConfig{NumTrees: 25, MinLeafSamples: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := []float64{rng.Float64(), rng.NormFloat64()}
		bias, contrib := f.Contributions(x)
		sum := bias
		for _, c := range contrib {
			sum += c
		}
		return math.Abs(sum-f.Score(x)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestContributionsCreditInformativeFeature(t *testing.T) {
	d := separable(600, 22)
	f, err := FitForest(d, ForestConfig{NumTrees: 30, MinLeafSamples: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A clear positive instance: feature 0 carries all the signal, so its
	// attribution should dominate the noise feature's.
	_, contrib := f.Contributions([]float64{0.95, 0})
	if contrib[0] <= math.Abs(contrib[1]) {
		t.Errorf("contrib = %v; informative feature not dominant", contrib)
	}
	if contrib[0] <= 0 {
		t.Errorf("positive instance got non-positive attribution %g", contrib[0])
	}
	// And a clear negative instance gets a negative attribution on x0.
	_, contrib = f.Contributions([]float64{0.05, 0})
	if contrib[0] >= 0 {
		t.Errorf("negative instance got non-negative attribution %g", contrib[0])
	}
}

func TestTopContributionsOrderAndNames(t *testing.T) {
	d := separable(400, 23)
	d.FeatureNames = []string{"signal", "noise"}
	f, err := FitForest(d, ForestConfig{NumTrees: 15, MinLeafSamples: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	top := f.TopContributions([]float64{0.9, 0.1}, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Feature != "signal" {
		t.Errorf("top contribution = %q, want signal", top[0].Feature)
	}
	if math.Abs(top[0].Score) < math.Abs(top[1].Score) {
		t.Error("top contributions not sorted by |score|")
	}
	if top[0].Value != 0.9 {
		t.Errorf("top value = %g", top[0].Value)
	}
}

func TestContributionsEmptyForest(t *testing.T) {
	f := &Forest{}
	bias, contrib := f.Contributions([]float64{1})
	if bias != 0 || contrib != nil {
		t.Errorf("empty forest: bias=%g contrib=%v", bias, contrib)
	}
}

package tree

// Exactness regression tests: the columnar exact path must reproduce the
// legacy row-major growers (legacy_test.go) node for node — same features,
// same thresholds, same Gini improvements, same leaf distributions.
//
// Bit-identity holds whenever split-scan partial sums are exactly
// representable regardless of accumulation order: unit weights (integer
// sums) and power-of-two weights (dyadic sums) for classification, and
// tie-free features for regression (the accumulation order inside a tie
// group is then unique, so even arbitrary weights match).

import (
	"math"
	"math/rand"
	"testing"

	"telcochurn/internal/dataset"
)

// tiedDataset draws features from a small discrete grid so every column is
// full of tied values — the case where the legacy unstable sort and the
// columnar presort may visit rows in different orders inside a tie group.
func tiedDataset(n, numFeat int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, numFeat)
	for f := range names {
		names[f] = "f"
	}
	d := dataset.New(names)
	for i := 0; i < n; i++ {
		row := make([]float64, numFeat)
		for f := range row {
			row[f] = float64(rng.Intn(7)) / 7
		}
		y := 0
		if row[0]+0.1*rng.NormFloat64() > 0.5 {
			y = 1
		}
		d.Add(row, y)
	}
	return d
}

// sameNode fails the test unless the two subtrees are identical: structure,
// split feature/threshold, per-node population, and exact (==) leaf values
// and probability vectors.
func sameNode(t *testing.T, got, want *node, path string) {
	t.Helper()
	if got == nil || want == nil {
		if got != want {
			t.Fatalf("%s: one side nil", path)
		}
		return
	}
	if got.isLeaf() != want.isLeaf() {
		t.Fatalf("%s: leaf mismatch (got leaf=%v)", path, got.isLeaf())
	}
	if got.n != want.n {
		t.Fatalf("%s: n = %d, want %d", path, got.n, want.n)
	}
	if got.value != want.value {
		t.Fatalf("%s: value = %v, want %v", path, got.value, want.value)
	}
	if len(got.probs) != len(want.probs) {
		t.Fatalf("%s: probs len %d, want %d", path, len(got.probs), len(want.probs))
	}
	for c := range got.probs {
		if got.probs[c] != want.probs[c] {
			t.Fatalf("%s: probs[%d] = %v, want %v", path, c, got.probs[c], want.probs[c])
		}
	}
	if got.isLeaf() {
		return
	}
	if got.feature != want.feature || got.threshold != want.threshold {
		t.Fatalf("%s: split (f=%d, thr=%v), want (f=%d, thr=%v)",
			path, got.feature, got.threshold, want.feature, want.threshold)
	}
	sameNode(t, got.left, want.left, path+"L")
	sameNode(t, got.right, want.right, path+"R")
}

func sameImportance(t *testing.T, got, want []float64) {
	t.Helper()
	for f := range want {
		if got[f] != want[f] {
			t.Fatalf("importance[%d] = %v, want %v (Gini improvements must match exactly)", f, got[f], want[f])
		}
	}
}

func TestColumnarExactMatchesLegacyUnitWeights(t *testing.T) {
	d := tiedDataset(800, 6, 21)
	for _, cfg := range []Config{
		{MinLeafSamples: 10},
		{MinLeafSamples: 25, FeaturesPerSplit: -1, Seed: 3},
		{MinLeafSamples: 10, FeaturesPerSplit: 2, MaxDepth: 5, Seed: 11},
	} {
		got, err := FitTree(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := legacyFitTree(d, cfg, got.numClasses)
		sameNode(t, got.root, want.root, "root:")
		sameImportance(t, got.importance, want.importance)
	}
}

func TestColumnarExactMatchesLegacyDyadicWeights(t *testing.T) {
	// Power-of-two weights: every partial sum is a dyadic rational, exactly
	// representable, so accumulation order inside tie groups cannot matter.
	d := tiedDataset(600, 5, 22)
	rng := rand.New(rand.NewSource(23))
	pow2 := []float64{0.5, 1, 2, 4}
	d.W = make([]float64, d.NumInstances())
	for i := range d.W {
		d.W[i] = pow2[rng.Intn(len(pow2))]
	}
	cfg := Config{MinLeafSamples: 15, FeaturesPerSplit: 2, Seed: 7}
	got, err := FitTree(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := legacyFitTree(d, cfg, got.numClasses)
	sameNode(t, got.root, want.root, "root:")
	sameImportance(t, got.importance, want.importance)
}

func TestColumnarRegressionMatchesLegacy(t *testing.T) {
	// Tie-free features (continuous draws): both scans then accumulate in
	// the same unique sorted order, so even arbitrary weights match exactly.
	rng := rand.New(rand.NewSource(31))
	n := 700
	x := make([][]float64, n)
	targets := make([]float64, n)
	weights := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.Float64()}
		targets[i] = math.Sin(x[i][0]) + 0.3*rng.NormFloat64()
		weights[i] = 0.5 + rng.Float64()
	}
	for _, w := range [][]float64{nil, weights} {
		for _, cfg := range []RegressionConfig{
			{MinLeafSamples: 10},
			{MinLeafSamples: 20, MaxDepth: 4, FeaturesPerSplit: -1, Seed: 5},
		} {
			got, err := FitRegressionTree(x, targets, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := legacyFitRegressionTree(x, targets, w, cfg)
			sameNode(t, got.root, want.root, "root:")
		}
	}
}

// TestColumnarForestMatchesLegacyPerTreeFits replays FitForest's per-tree
// seed derivation through the legacy grower: each forest tree must equal a
// legacy fit of the same bootstrap (weighted draw included — the resample
// then trains with unit weights, where bit-identity is guaranteed).
func TestColumnarForestMatchesLegacyPerTreeFits(t *testing.T) {
	d := tiedDataset(500, 4, 41)
	d.W = make([]float64, d.NumInstances())
	for i, y := range d.Y {
		if y == 1 {
			d.W[i] = 2.5
		} else {
			d.W[i] = 1
		}
	}
	cfg := ForestConfig{NumTrees: 8, MinLeafSamples: 20, FeaturesPerSplit: -1, Seed: 17}
	f, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < cfg.NumTrees; tr++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(tr)*1_000_003))
		boot := d.Subset(bootstrapIdx(d, rng))
		boot.W = nil // the draw already encoded the weights
		want := legacyFitTree(boot, Config{
			MinLeafSamples:   cfg.MinLeafSamples,
			FeaturesPerSplit: cfg.FeaturesPerSplit,
			Seed:             cfg.Seed + int64(tr)*7_000_003,
		}, f.numClasses)
		sameNode(t, f.trees[tr].root, want.root, "root:")
		sameImportance(t, f.trees[tr].importance, want.importance)
	}
}

package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"telcochurn/internal/dataset"
)

func TestGiniValues(t *testing.T) {
	cases := []struct {
		mass []float64
		want float64
	}{
		{[]float64{10, 0}, 0},
		{[]float64{5, 5}, 0.5},
		{[]float64{0, 0}, 0},
		{[]float64{1, 1, 1, 1}, 0.75},
	}
	for _, c := range cases {
		if got := Gini(c.mass); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gini(%v) = %g, want %g", c.mass, got, c.want)
		}
	}
}

// separable builds a dataset where x0 > 0.5 implies class 1.
func separable(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"x0", "noise"})
	for i := 0; i < n; i++ {
		x := rng.Float64()
		y := 0
		if x > 0.5 {
			y = 1
		}
		d.Add([]float64{x, rng.NormFloat64()}, y)
	}
	return d
}

func TestTreeLearnsSeparableData(t *testing.T) {
	d := separable(500, 1)
	tr, err := FitTree(d, Config{MinLeafSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	test := separable(200, 2)
	for i, x := range test.X {
		if tr.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("tree accuracy %.2f on separable data, want >= 0.95", acc)
	}
}

func TestTreeMinLeafInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(400)
		d := dataset.New([]string{"a", "b", "c"})
		for i := 0; i < n; i++ {
			d.Add([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.Float64()}, rng.Intn(2))
		}
		minLeaf := 5 + rng.Intn(30)
		tr, err := FitTree(d, Config{MinLeafSamples: minLeaf, Seed: seed})
		if err != nil {
			return false
		}
		return tr.MinLeafSize() >= minLeaf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTreeMaxDepth(t *testing.T) {
	d := separable(400, 3)
	tr, err := FitTree(d, Config{MinLeafSamples: 2, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() > 2 {
		t.Errorf("depth-1 tree has %d leaves", tr.NumLeaves())
	}
}

func TestTreePureNodeStops(t *testing.T) {
	d := dataset.New([]string{"x"})
	for i := 0; i < 50; i++ {
		d.Add([]float64{float64(i)}, 0)
	}
	tr, err := FitTree(d, Config{MinLeafSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("pure data grew %d leaves", tr.NumLeaves())
	}
	if p := tr.PredictProba([]float64{10}); p[0] != 1 {
		t.Errorf("pure-class proba = %v", p)
	}
}

func TestTreeEmptyDataset(t *testing.T) {
	if _, err := FitTree(dataset.New([]string{"x"}), Config{}); err == nil {
		t.Error("want error for empty dataset")
	}
}

func TestWeightedInstancesShiftLeafProbs(t *testing.T) {
	// Same feature value, mixed labels: leaf probability follows weights.
	d := dataset.New([]string{"x"})
	for i := 0; i < 10; i++ {
		d.Add([]float64{1}, i%2)
	}
	d.W = make([]float64, 10)
	for i := range d.W {
		if d.Y[i] == 1 {
			d.W[i] = 3
		} else {
			d.W[i] = 1
		}
	}
	tr, err := FitTree(d, Config{MinLeafSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.PredictProba([]float64{1})
	if math.Abs(p[1]-0.75) > 1e-12 {
		t.Errorf("weighted leaf prob = %g, want 0.75", p[1])
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	d := separable(300, 4)
	cfg := ForestConfig{NumTrees: 20, MinLeafSamples: 10, Seed: 9}
	f1, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FitForest(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 20, 0}
		if f1.Score(x) != f2.Score(x) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestBeatsGuessing(t *testing.T) {
	d := separable(600, 5)
	f, err := FitForest(d, ForestConfig{NumTrees: 30, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test := separable(300, 6)
	correct := 0
	for i, x := range test.X {
		if f.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 300; acc < 0.93 {
		t.Errorf("forest accuracy %.2f, want >= 0.93", acc)
	}
}

func TestForestImportanceNormalizedAndFocused(t *testing.T) {
	d := separable(600, 7)
	f, err := FitForest(d, ForestConfig{NumTrees: 30, MinLeafSamples: 10, Seed: 2, FeaturesPerSplit: 1})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sum = %g, want 1", sum)
	}
	if imp[0] <= imp[1] {
		t.Errorf("informative feature importance %g <= noise %g", imp[0], imp[1])
	}
}

func TestForestMultiClass(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := dataset.New([]string{"x"})
	for i := 0; i < 600; i++ {
		x := rng.Float64() * 3
		d.Add([]float64{x}, int(x))
	}
	f, err := FitForest(d, ForestConfig{NumTrees: 25, MinLeafSamples: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", f.NumClasses())
	}
	for _, c := range []struct {
		x    float64
		want int
	}{{0.3, 0}, {1.5, 1}, {2.7, 2}} {
		if got := f.Predict([]float64{c.x}); got != c.want {
			t.Errorf("Predict(%g) = %d, want %d", c.x, got, c.want)
		}
	}
	probs := f.PredictProba([]float64{1.5})
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("proba sum = %g", sum)
	}
}

func TestForestScoreAllMatchesScore(t *testing.T) {
	d := separable(300, 9)
	f, err := FitForest(d, ForestConfig{NumTrees: 10, MinLeafSamples: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := f.ScoreAll(d.X[:50])
	for i := 0; i < 50; i++ {
		if batch[i] != f.Score(d.X[i]) {
			t.Fatal("ScoreAll disagrees with Score")
		}
	}
}

// TestWeightedBootstrapOversamplesMinority: with class-balancing weights,
// each tree's bootstrap should hold far more minority mass than a uniform
// draw would.
func TestWeightedBootstrapOversamplesMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := separable(0, 14) // empty; fill manually with 10% positives
	for i := 0; i < 1000; i++ {
		y := 0
		if i%10 == 0 {
			y = 1
		}
		d.Add([]float64{rng.Float64(), rng.NormFloat64()}, y)
	}
	d.W = make([]float64, d.NumInstances())
	for i, y := range d.Y {
		if y == 1 {
			d.W[i] = 5 // class-balancing weight
		} else {
			d.W[i] = 0.555
		}
	}
	idx := bootstrapIdx(d, rand.New(rand.NewSource(3)))
	pos := 0
	for _, i := range idx {
		if d.Y[i] == 1 {
			pos++
		}
	}
	frac := float64(pos) / float64(len(idx))
	// Weighted draw targets ~50% positives; uniform would give ~10%.
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("weighted bootstrap positive fraction %.3f, want ~0.5", frac)
	}
}

func TestHistogramTreeLearnsSeparableData(t *testing.T) {
	d := separable(500, 1)
	tr, err := FitTree(d, Config{MinLeafSamples: 10, MaxBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	test := separable(200, 2)
	for i, x := range test.X {
		if tr.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("histogram tree accuracy %.2f on separable data, want >= 0.95", acc)
	}
}

func TestHistogramForestLearnsAndClampsBins(t *testing.T) {
	d := separable(600, 15)
	// MaxBins above the uint8 limit must clamp, not break.
	f, err := FitForest(d, ForestConfig{NumTrees: 30, MinLeafSamples: 10, Seed: 1, MaxBins: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	test := separable(300, 16)
	correct := 0
	for i, x := range test.X {
		if f.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 300; acc < 0.93 {
		t.Errorf("histogram forest accuracy %.2f, want >= 0.93", acc)
	}
}

func TestHistogramBinEdges(t *testing.T) {
	// Tied values must share a bin: only 3 distinct values means at most 2
	// cut points no matter how many bins were requested.
	sorted := []float64{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	edges := binEdges(sorted, 8)
	if len(edges) > 2 {
		t.Fatalf("binEdges produced %d edges for 3 distinct values", len(edges))
	}
	for _, e := range edges {
		if e != 1.5 && e != 2.5 {
			t.Errorf("edge %v is not a midpoint between distinct values", e)
		}
	}
	if got := binEdges([]float64{5, 5, 5, 5}, 4); len(got) != 0 {
		t.Errorf("constant feature produced edges %v", got)
	}
}

func TestGBDTHistogramMode(t *testing.T) {
	d := separable(600, 17)
	g, err := FitGBDT(d, GBDTConfig{NumTrees: 40, MinLeafSamples: 20, Seed: 1, MaxBins: 32})
	if err != nil {
		t.Fatal(err)
	}
	test := separable(300, 18)
	correct := 0
	for i, x := range test.X {
		pred := 0
		if g.Score(x) > 0.5 {
			pred = 1
		}
		if pred == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 300; acc < 0.93 {
		t.Errorf("histogram GBDT accuracy %.2f, want >= 0.93", acc)
	}
}

func TestRegressionTreeFitsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 500
	x := make([][]float64, n)
	targets := make([]float64, n)
	for i := range x {
		v := rng.Float64()
		x[i] = []float64{v}
		if v > 0.5 {
			targets[i] = 10
		} else {
			targets[i] = -10
		}
	}
	tr, err := FitRegressionTree(x, targets, nil, RegressionConfig{MinLeafSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.9}); math.Abs(got-10) > 0.5 {
		t.Errorf("Predict(0.9) = %g, want ~10", got)
	}
	if got := tr.Predict([]float64{0.1}); math.Abs(got+10) > 0.5 {
		t.Errorf("Predict(0.1) = %g, want ~-10", got)
	}
}

func TestRegressionTreeErrors(t *testing.T) {
	if _, err := FitRegressionTree(nil, nil, nil, RegressionConfig{}); err == nil {
		t.Error("want error for empty data")
	}
	if _, err := FitRegressionTree([][]float64{{1}}, []float64{1, 2}, nil, RegressionConfig{}); err == nil {
		t.Error("want error for length mismatch")
	}
}

func TestGBDTLearnsAndImprovesWithRounds(t *testing.T) {
	d := separable(600, 11)
	short, err := FitGBDT(d, GBDTConfig{NumTrees: 3, MinLeafSamples: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	long, err := FitGBDT(d, GBDTConfig{NumTrees: 60, MinLeafSamples: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test := separable(300, 12)
	acc := func(g *GBDT) float64 {
		ok := 0
		for i, x := range test.X {
			pred := 0
			if g.Score(x) > 0.5 {
				pred = 1
			}
			if pred == test.Y[i] {
				ok++
			}
		}
		return float64(ok) / float64(len(test.X))
	}
	aShort, aLong := acc(short), acc(long)
	if aLong < aShort {
		t.Errorf("more boosting rounds hurt: %.3f -> %.3f", aShort, aLong)
	}
	if aLong < 0.95 {
		t.Errorf("GBDT accuracy %.3f, want >= 0.95", aLong)
	}
}

func TestGBDTScoresAreProbabilities(t *testing.T) {
	d := separable(300, 13)
	g, err := FitGBDT(d, GBDTConfig{NumTrees: 20, MinLeafSamples: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.ScoreAll(d.X[:100]) {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %g out of [0,1]", s)
		}
	}
}

func TestGBDTRejectsNonBinary(t *testing.T) {
	d := dataset.New([]string{"x"})
	d.Add([]float64{1}, 2)
	if _, err := FitGBDT(d, GBDTConfig{}); err == nil {
		t.Error("want error for non-binary labels")
	}
}

package tree

import (
	"errors"
	"math"
	"math/rand"
)

// RegressionTree is a CART regression tree with variance-reduction splits.
// It is the base learner for GBDT; leaf values are set by the boosting loss
// via a LeafValue callback.
type RegressionTree struct {
	root *node
}

// RegressionConfig configures regression-tree growth.
type RegressionConfig struct {
	// MinLeafSamples is the minimum instances per leaf.
	MinLeafSamples int
	// MaxDepth bounds depth (0 = unlimited); GBDT uses shallow trees.
	MaxDepth int
	// FeaturesPerSplit as in Config: 0 all, -1 √N, k>0 exactly k.
	FeaturesPerSplit int
	// Seed drives feature subsampling.
	Seed int64
	// MaxBins enables histogram split search as in Config.MaxBins (0 =
	// exact; clamped to 255).
	MaxBins int
	// LeafValue computes a leaf's output from the indices it holds; nil
	// means the mean of targets.
	LeafValue func(idx []int) float64
}

func (c RegressionConfig) withDefaults(targets, weights []float64) RegressionConfig {
	if c.MinLeafSamples == 0 {
		c.MinLeafSamples = 20
	}
	if c.MaxBins > maxBinsLimit {
		c.MaxBins = maxBinsLimit
	}
	if c.MaxBins < 0 {
		c.MaxBins = 0
	}
	if c.LeafValue == nil {
		c.LeafValue = func(idx []int) float64 {
			s, ws := 0.0, 0.0
			for _, i := range idx {
				s += targets[i] * weights[i]
				ws += weights[i]
			}
			if ws == 0 {
				return 0
			}
			return s / ws
		}
	}
	return c
}

// FitRegressionTree fits targets (one per row of x) with weighted
// squared-error splits on the columnar backend.
func FitRegressionTree(x [][]float64, targets, weights []float64, cfg RegressionConfig) (*RegressionTree, error) {
	if len(x) == 0 {
		return nil, errors.New("tree: empty regression dataset")
	}
	if len(targets) != len(x) {
		return nil, errors.New("tree: targets length mismatch")
	}
	if len(x) > math.MaxInt32 {
		return nil, errors.New("tree: dataset exceeds 2^31 rows")
	}
	if weights == nil {
		weights = unitWeights(len(x))
	}
	cfg = cfg.withDefaults(targets, weights)
	cd := newColData(x, len(x[0]), cfg.MaxBins)
	return fitRegressionTreeOnData(cd, targets, weights, cfg), nil
}

// fitRegressionTreeOnData grows one regression tree over a prebuilt
// columnar view; cfg must already have defaults applied. GBDT calls this
// once per boosting round, reusing the presort/bins across all rounds.
func fitRegressionTreeOnData(cd *colData, targets, weights []float64, cfg RegressionConfig) *RegressionTree {
	g := &colRegGrower{
		lay: newLayout(cd),
		t:   targets,
		w:   weights,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cd.binUpper != nil {
		g.histSum = make([]float64, cfg.MaxBins)
		g.histW = make([]float64, cfg.MaxBins)
		g.histCnt = make([]int, cfg.MaxBins)
	}
	return &RegressionTree{root: g.grow(0, cd.numRows, 0)}
}

func unitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Predict returns the tree's value for one instance.
func (t *RegressionTree) Predict(x []float64) float64 {
	nd := t.root
	for !nd.isLeaf() {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.value
}

// colRegGrower grows one regression tree over a colLayout; like colGrower,
// node splitting works on [start, end) segments and reuses the grower's
// histogram buffers, so it allocates only at leaves (the LeafValue callback
// receives a materialized index slice).
type colRegGrower struct {
	lay *colLayout
	t   []float64
	w   []float64
	cfg RegressionConfig
	rng *rand.Rand

	histSum []float64 // histogram mode: per-bin sum of w·t
	histW   []float64 // histogram mode: per-bin sum of w
	histCnt []int     // histogram mode: per-bin unweighted count
}

func (g *colRegGrower) grow(start, end, depth int) *node {
	n := end - start
	leaf := func() *node {
		return &node{value: g.cfg.LeafValue(g.lay.idxSlice(start, end)), n: n}
	}
	if n < 2*g.cfg.MinLeafSamples || (g.cfg.MaxDepth > 0 && depth == g.cfg.MaxDepth) {
		return leaf()
	}
	best := g.bestSplit(start, end)
	if best.feature < 0 {
		return leaf()
	}
	nLeft := g.lay.markSplit(start, end, best.feature, best.threshold)
	if nLeft < g.cfg.MinLeafSamples || n-nLeft < g.cfg.MinLeafSamples {
		return leaf()
	}
	g.lay.commitSplit(start, end)
	nd := &node{
		feature:   best.feature,
		threshold: best.threshold,
		n:         n,
	}
	nd.left = g.grow(start, start+nLeft, depth+1)
	nd.right = g.grow(start+nLeft, end, depth+1)
	return nd
}

// bestSplit maximizes weighted SSE reduction, which for fixed parent SSE is
// equivalent to maximizing sumL²/wL + sumR²/wR.
func (g *colRegGrower) bestSplit(start, end int) split {
	features := sampleSplitFeatures(g.rng, len(g.lay.cols), g.cfg.FeaturesPerSplit)

	totalSum, totalW := 0.0, 0.0
	for _, i := range g.lay.rows[start:end] {
		totalSum += g.t[i] * g.w[i]
		totalW += g.w[i]
	}
	baseScore := 0.0
	if totalW > 0 {
		baseScore = totalSum * totalSum / totalW
	}

	best := split{feature: -1}
	for _, f := range features {
		if g.lay.orders != nil {
			g.scanExact(f, start, end, totalSum, totalW, baseScore, &best)
		} else {
			g.scanHist(f, start, end, totalSum, totalW, baseScore, &best)
		}
	}
	return best
}

func (g *colRegGrower) scanExact(f, start, end int, totalSum, totalW, baseScore float64, best *split) {
	ord := g.lay.orders[f][start:end]
	col := g.lay.cols[f]
	minLeaf := g.cfg.MinLeafSamples
	leftSum, leftW := 0.0, 0.0
	for pos := 0; pos < len(ord)-1; pos++ {
		i := ord[pos]
		leftSum += g.t[i] * g.w[i]
		leftW += g.w[i]
		cur, next := col[i], col[ord[pos+1]]
		if cur == next {
			continue
		}
		nLeft := pos + 1
		nRight := len(ord) - nLeft
		if nLeft < minLeaf || nRight < minLeaf {
			continue
		}
		rightSum, rightW := totalSum-leftSum, totalW-leftW
		if leftW <= 0 || rightW <= 0 {
			continue
		}
		gain := leftSum*leftSum/leftW + rightSum*rightSum/rightW - baseScore
		if gain > best.improvement {
			*best = split{feature: f, threshold: (cur + next) / 2, improvement: gain}
		}
	}
}

func (g *colRegGrower) scanHist(f, start, end int, totalSum, totalW, baseScore float64, best *split) {
	upper := g.lay.binUpper[f]
	if len(upper) == 0 {
		return
	}
	nb := len(upper) + 1
	hs := g.histSum[:nb]
	hw := g.histW[:nb]
	hc := g.histCnt[:nb]
	for b := 0; b < nb; b++ {
		hs[b], hw[b], hc[b] = 0, 0, 0
	}
	bins := g.lay.binIdx[f]
	for _, i := range g.lay.rows[start:end] {
		b := int(bins[i])
		hs[b] += g.t[i] * g.w[i]
		hw[b] += g.w[i]
		hc[b]++
	}
	minLeaf := g.cfg.MinLeafSamples
	total := end - start
	leftSum, leftW := 0.0, 0.0
	nLeft := 0
	for b := 0; b < nb-1; b++ {
		leftSum += hs[b]
		leftW += hw[b]
		nLeft += hc[b]
		if hc[b] == 0 {
			continue
		}
		nRight := total - nLeft
		if nLeft < minLeaf || nRight < minLeaf {
			continue
		}
		rightSum, rightW := totalSum-leftSum, totalW-leftW
		if leftW <= 0 || rightW <= 0 {
			continue
		}
		gain := leftSum*leftSum/leftW + rightSum*rightSum/rightW - baseScore
		if gain > best.improvement {
			*best = split{feature: f, threshold: upper[b], improvement: gain}
		}
	}
}

package tree

import (
	"errors"
	"math/rand"
	"sort"
)

// RegressionTree is a CART regression tree with variance-reduction splits.
// It is the base learner for GBDT; leaf values are set by the boosting loss
// via a LeafValue callback.
type RegressionTree struct {
	root *node
}

// RegressionConfig configures regression-tree growth.
type RegressionConfig struct {
	// MinLeafSamples is the minimum instances per leaf.
	MinLeafSamples int
	// MaxDepth bounds depth (0 = unlimited); GBDT uses shallow trees.
	MaxDepth int
	// FeaturesPerSplit as in Config: 0 all, -1 √N, k>0 exactly k.
	FeaturesPerSplit int
	// Seed drives feature subsampling.
	Seed int64
	// LeafValue computes a leaf's output from the indices it holds; nil
	// means the mean of targets.
	LeafValue func(idx []int) float64
}

// FitRegressionTree fits targets (one per row of x) with weighted
// squared-error splits.
func FitRegressionTree(x [][]float64, targets, weights []float64, cfg RegressionConfig) (*RegressionTree, error) {
	if len(x) == 0 {
		return nil, errors.New("tree: empty regression dataset")
	}
	if len(targets) != len(x) {
		return nil, errors.New("tree: targets length mismatch")
	}
	if cfg.MinLeafSamples == 0 {
		cfg.MinLeafSamples = 20
	}
	if weights == nil {
		weights = make([]float64, len(x))
		for i := range weights {
			weights[i] = 1
		}
	}
	if cfg.LeafValue == nil {
		cfg.LeafValue = func(idx []int) float64 {
			s, ws := 0.0, 0.0
			for _, i := range idx {
				s += targets[i] * weights[i]
				ws += weights[i]
			}
			if ws == 0 {
				return 0
			}
			return s / ws
		}
	}
	g := &regGrower{
		x:   x,
		t:   targets,
		w:   weights,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	return &RegressionTree{root: g.grow(idx, 0)}, nil
}

// Predict returns the tree's value for one instance.
func (t *RegressionTree) Predict(x []float64) float64 {
	nd := t.root
	for !nd.isLeaf() {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.value
}

type regGrower struct {
	x   [][]float64
	t   []float64
	w   []float64
	cfg RegressionConfig
	rng *rand.Rand
}

func (g *regGrower) grow(idx []int, depth int) *node {
	leaf := func() *node {
		return &node{value: g.cfg.LeafValue(idx), n: len(idx)}
	}
	if len(idx) < 2*g.cfg.MinLeafSamples || (g.cfg.MaxDepth > 0 && depth == g.cfg.MaxDepth) {
		return leaf()
	}
	best := g.bestSplit(idx)
	if best.feature < 0 {
		return leaf()
	}
	leftIdx, rightIdx := partition(g.x, idx, best.feature, best.threshold)
	if len(leftIdx) < g.cfg.MinLeafSamples || len(rightIdx) < g.cfg.MinLeafSamples {
		return leaf()
	}
	return &node{
		feature:   best.feature,
		threshold: best.threshold,
		left:      g.grow(leftIdx, depth+1),
		right:     g.grow(rightIdx, depth+1),
		n:         len(idx),
	}
}

// bestSplit maximizes weighted SSE reduction, which for fixed parent SSE is
// equivalent to maximizing sumL²/wL + sumR²/wR.
func (g *regGrower) bestSplit(idx []int) split {
	numFeat := len(g.x[0])
	features := sampleFeaturesReg(g.rng, numFeat, g.cfg.FeaturesPerSplit)

	totalSum, totalW := 0.0, 0.0
	for _, i := range idx {
		totalSum += g.t[i] * g.w[i]
		totalW += g.w[i]
	}
	baseScore := 0.0
	if totalW > 0 {
		baseScore = totalSum * totalSum / totalW
	}

	best := split{feature: -1}
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, f := range features {
		for j, i := range idx {
			vals[j] = g.x[i][f]
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		leftSum, leftW := 0.0, 0.0
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			leftSum += g.t[i] * g.w[i]
			leftW += g.w[i]
			cur, next := vals[order[pos]], vals[order[pos+1]]
			if cur == next {
				continue
			}
			nLeft := pos + 1
			nRight := len(order) - nLeft
			if nLeft < g.cfg.MinLeafSamples || nRight < g.cfg.MinLeafSamples {
				continue
			}
			rightSum, rightW := totalSum-leftSum, totalW-leftW
			if leftW <= 0 || rightW <= 0 {
				continue
			}
			gain := leftSum*leftSum/leftW + rightSum*rightSum/rightW - baseScore
			if gain > best.improvement {
				best = split{feature: f, threshold: (cur + next) / 2, improvement: gain}
			}
		}
	}
	return best
}

func sampleFeaturesReg(rng *rand.Rand, numFeat, k int) []int {
	switch {
	case k == 0 || k >= numFeat:
		all := make([]int, numFeat)
		for i := range all {
			all[i] = i
		}
		return all
	case k == -1:
		k = intSqrt(numFeat)
	}
	return rng.Perm(numFeat)[:k]
}

func intSqrt(n int) int {
	k := 1
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}

package tree

import (
	"errors"
	"math"

	"telcochurn/internal/dataset"
	"telcochurn/internal/parallel"
)

// GBDTConfig configures gradient boosted decision trees for binary
// classification with binomial deviance. Defaults follow the paper's
// Figure 9 setup: learning rate 0.1, 500 trees (reduce for quick runs).
type GBDTConfig struct {
	// NumTrees is the number of boosting rounds. Default 500.
	NumTrees int
	// LearningRate is the paper's fixed 0.1.
	LearningRate float64
	// MaxDepth of each base tree. Default 4 (shallow learners).
	MaxDepth int
	// MinLeafSamples per base-tree leaf. Default 50.
	MinLeafSamples int
	// Seed for feature subsampling in base trees.
	Seed int64
	// Subsample is the stochastic-gradient-boosting row fraction; 1 (or 0)
	// disables subsampling.
	Subsample float64
	// MaxBins enables histogram split search in the base trees (see
	// Config.MaxBins); 0 keeps exact splits. Bins are computed once and
	// shared by all boosting rounds.
	MaxBins int
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.NumTrees == 0 {
		c.NumTrees = 500
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MinLeafSamples == 0 {
		c.MinLeafSamples = 50
	}
	if c.Subsample == 0 {
		c.Subsample = 1
	}
	return c
}

// GBDT is a trained boosted-trees binary classifier producing churn
// likelihoods via the logistic link.
type GBDT struct {
	bias  float64
	trees []*RegressionTree
	lr    float64
}

// FitGBDT trains gradient boosted trees minimizing binomial deviance.
// Labels must be 0/1. Instance weights scale both gradients and hessians,
// so the Weighted Instance imbalance method applies to GBDT too.
func FitGBDT(d *dataset.Dataset, cfg GBDTConfig) (*GBDT, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumInstances()
	if n == 0 {
		return nil, errors.New("tree: empty dataset")
	}
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			return nil, errors.New("tree: GBDT requires binary 0/1 labels")
		}
	}
	w := weightsOf(d)

	// Initialize F0 with the weighted log-odds prior.
	posW, totW := 0.0, 0.0
	for i, y := range d.Y {
		if y == 1 {
			posW += w[i]
		}
		totW += w[i]
	}
	p0 := clampProb(posW / totW)
	bias := math.Log(p0 / (1 - p0))

	if n > math.MaxInt32 {
		return nil, errors.New("tree: dataset exceeds 2^31 rows")
	}

	f := make([]float64, n)
	for i := range f {
		f[i] = bias
	}
	residual := make([]float64, n)
	model := &GBDT{bias: bias, lr: cfg.LearningRate}

	// One columnar view (transpose + presort or bins) serves every boosting
	// round: only the targets change between rounds, never the feature
	// geometry, so each round pays a copy of the order arrays instead of a
	// per-node sort.
	baseCfg := RegressionConfig{
		MinLeafSamples: cfg.MinLeafSamples,
		MaxDepth:       cfg.MaxDepth,
		MaxBins:        cfg.MaxBins,
	}
	if baseCfg.MaxBins > maxBinsLimit {
		baseCfg.MaxBins = maxBinsLimit
	}
	if baseCfg.MaxBins < 0 {
		baseCfg.MaxBins = 0
	}
	cd := newColData(d.X, d.NumFeatures(), baseCfg.MaxBins)

	for t := 0; t < cfg.NumTrees; t++ {
		// Negative gradient of binomial deviance: y - p.
		for i := range residual {
			p := sigmoid(f[i])
			residual[i] = float64(d.Y[i]) - p
		}
		leafValue := func(idx []int) float64 {
			// Newton step: sum w(y-p) / sum w·p(1-p).
			num, den := 0.0, 0.0
			for _, i := range idx {
				p := sigmoid(f[i])
				num += w[i] * residual[i]
				den += w[i] * p * (1 - p)
			}
			if den < 1e-12 {
				return 0
			}
			v := num / den
			// Clip extreme steps for numerical stability.
			if v > 4 {
				v = 4
			} else if v < -4 {
				v = -4
			}
			return v
		}
		rc := baseCfg
		rc.Seed = cfg.Seed + int64(t)*2_000_003
		rc.LeafValue = leafValue
		tr := fitRegressionTreeOnData(cd, residual, w, rc)
		model.trees = append(model.trees, tr)
		for i := range f {
			f[i] += cfg.LearningRate * tr.Predict(d.X[i])
		}
	}
	return model, nil
}

// Score returns the churn likelihood (probability of class 1).
func (g *GBDT) Score(x []float64) float64 {
	f := g.bias
	for _, tr := range g.trees {
		f += g.lr * tr.Predict(x)
	}
	return sigmoid(f)
}

// ScoreAll scores many instances in parallel.
func (g *GBDT) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	parallel.For(0, len(x), func(i int) {
		out[i] = g.Score(x[i])
	})
	return out
}

// NumTrees returns the number of boosting rounds fit.
func (g *GBDT) NumTrees() int { return len(g.trees) }

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func clampProb(p float64) float64 {
	if p < 1e-6 {
		return 1e-6
	}
	if p > 1-1e-6 {
		return 1 - 1e-6
	}
	return p
}

package tree

// Compiled ensembles: the serving-side representation of trained forests.
//
// The pointer-based Tree/Forest nodes are what training naturally produces,
// but walking them on the scoring hot path chases a heap pointer per level —
// every step is a dependent load into an unpredictable cache line. Compiling
// flattens each ensemble once (at fit or artifact load) into contiguous
// structure-of-arrays node storage:
//
//	feats[i]  split feature index, or -1 marking a leaf
//	thrs[i]   split threshold (regression leaves store their value here)
//	kids[i]   index of the left child; the right child is always kids[i]+1
//	          (classification leaves store their payload offset here)
//
// Children are allocated adjacently, so one branch direction is an add —
// traversal is `c := kids[i]; if !(x[f] <= thrs[i]) { c++ }; i = c`, which
// the compiler lowers to a conditional move rather than a branch — and the
// whole ensemble sits in a handful of slabs that prefetch well.
//
// Compiled scoring is bit-identical to the pointer walkers: node order,
// comparison polarity (NaN fails `x <= t` and goes right, exactly like
// Tree.PredictProba) and float accumulation order are all preserved, so
// CompiledForest.PredictProba == Forest.PredictProba bit for bit (property
// tests in compiled_test.go keep this honest). Nothing on the scoring paths
// allocates.

import "telcochurn/internal/parallel"

// CompiledForest is a Forest flattened for cache-friendly scoring.
type CompiledForest struct {
	feats []int32   // per node: split feature, or -1 for a leaf
	thrs  []float64 // per node: split threshold
	kids  []int32   // split: left-child index (right = +1); leaf: probs offset
	roots []int32   // per tree: root node index
	probs []float64 // leaf class distributions, numClasses stride

	numClasses int
	features   []string
	workers    int
}

// Compile flattens the forest into contiguous node arrays. The result scores
// bit-identically to the receiver and shares no mutable state with it.
func (f *Forest) Compile() *CompiledForest {
	cf := &CompiledForest{
		numClasses: f.numClasses,
		features:   f.features,
		workers:    f.workers,
		roots:      make([]int32, len(f.trees)),
	}
	nodes, leaves := 0, 0
	for _, tr := range f.trees {
		n, l := countNodesLeaves(tr.root)
		nodes += n
		leaves += l
	}
	cf.feats = make([]int32, 0, nodes)
	cf.thrs = make([]float64, 0, nodes)
	cf.kids = make([]int32, 0, nodes)
	cf.probs = make([]float64, 0, leaves*f.numClasses)
	for t, tr := range f.trees {
		cf.roots[t] = cf.alloc(1)
		cf.fillClass(cf.roots[t], tr.root)
	}
	return cf
}

func countNodesLeaves(nd *node) (nodes, leaves int) {
	if nd == nil {
		return 0, 0
	}
	if nd.isLeaf() {
		return 1, 1
	}
	ln, ll := countNodesLeaves(nd.left)
	rn, rl := countNodesLeaves(nd.right)
	return 1 + ln + rn, ll + rl
}

// alloc reserves n consecutive node slots and returns the first index.
func (cf *CompiledForest) alloc(n int) int32 {
	i := int32(len(cf.feats))
	for k := 0; k < n; k++ {
		cf.feats = append(cf.feats, 0)
		cf.thrs = append(cf.thrs, 0)
		cf.kids = append(cf.kids, 0)
	}
	return i
}

// fillClass writes nd into slot i, reserving adjacent slots for its children.
func (cf *CompiledForest) fillClass(i int32, nd *node) {
	if nd.isLeaf() {
		cf.feats[i] = -1
		cf.kids[i] = int32(len(cf.probs))
		cf.probs = append(cf.probs, nd.probs...)
		return
	}
	c := cf.alloc(2)
	cf.feats[i] = int32(nd.feature)
	cf.thrs[i] = nd.threshold
	cf.kids[i] = c
	cf.fillClass(c, nd.left)
	cf.fillClass(c+1, nd.right)
}

// leafOf walks one tree to its leaf and returns the leaf's probs offset.
func (cf *CompiledForest) leafOf(root int32, x []float64) int32 {
	i := root
	f := cf.feats[i]
	for f >= 0 {
		c := cf.kids[i]
		// !(x <= t) matches the pointer walker exactly, including NaN
		// (which fails the comparison and goes right); the compiler turns
		// this select into a conditional move, keeping the loop branchless.
		if !(x[f] <= cf.thrs[i]) {
			c++
		}
		i = c
		f = cf.feats[i]
	}
	return cf.kids[i]
}

// PredictProba returns the ensemble-average class distribution, bit-identical
// to Forest.PredictProba.
func (cf *CompiledForest) PredictProba(x []float64) []float64 {
	out := make([]float64, cf.numClasses)
	cf.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto is PredictProba into a caller-owned buffer (len must be
// NumClasses), allocating nothing.
func (cf *CompiledForest) PredictProbaInto(x []float64, out []float64) {
	for c := range out {
		out[c] = 0
	}
	for _, r := range cf.roots {
		off := int(cf.leafOf(r, x))
		for c := range out {
			out[c] += cf.probs[off+c]
		}
	}
	for c := range out {
		out[c] /= float64(len(cf.roots))
	}
}

// Score returns the class-1 (churner) likelihood without allocating. It
// accumulates only the class-1 column, which is the same float sequence as
// PredictProba(x)[1], so it is bit-identical to Forest.Score.
func (cf *CompiledForest) Score(x []float64) float64 {
	acc := 0.0
	for _, r := range cf.roots {
		acc += cf.probs[int(cf.leafOf(r, x))+1]
	}
	return acc / float64(len(cf.roots))
}

// Predict returns the most probable class, bit-identical to Forest.Predict.
func (cf *CompiledForest) Predict(x []float64) int {
	probs := cf.PredictProba(x)
	best, bestP := 0, probs[0]
	for c, p := range probs {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// ScoreAll scores many instances in parallel, like Forest.ScoreAll.
func (cf *CompiledForest) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	parallel.For(cf.workers, len(x), func(i int) {
		out[i] = cf.Score(x[i])
	})
	return out
}

// NumTrees returns the ensemble size.
func (cf *CompiledForest) NumTrees() int { return len(cf.roots) }

// NumClasses returns the class count.
func (cf *CompiledForest) NumClasses() int { return cf.numClasses }

// NumNodes returns the total flattened node count (introspection/tests).
func (cf *CompiledForest) NumNodes() int { return len(cf.feats) }

// FeatureNames returns the training feature names.
func (cf *CompiledForest) FeatureNames() []string { return cf.features }

// CompiledGBDT is a GBDT flattened for cache-friendly scoring. Regression
// leaves keep their value in the threshold slot, so the ensemble needs no
// separate payload array.
type CompiledGBDT struct {
	feats []int32
	thrs  []float64
	kids  []int32
	roots []int32
	bias  float64
	lr    float64
}

// Compile flattens the boosted ensemble; scores are bit-identical to the
// pointer-based GBDT.Score.
func (g *GBDT) Compile() *CompiledGBDT {
	cg := &CompiledGBDT{bias: g.bias, lr: g.lr, roots: make([]int32, len(g.trees))}
	nodes := 0
	for _, tr := range g.trees {
		n, _ := countNodesLeaves(tr.root)
		nodes += n
	}
	cg.feats = make([]int32, 0, nodes)
	cg.thrs = make([]float64, 0, nodes)
	cg.kids = make([]int32, 0, nodes)
	for t, tr := range g.trees {
		cg.roots[t] = cg.alloc(1)
		cg.fillReg(cg.roots[t], tr.root)
	}
	return cg
}

func (cg *CompiledGBDT) alloc(n int) int32 {
	i := int32(len(cg.feats))
	for k := 0; k < n; k++ {
		cg.feats = append(cg.feats, 0)
		cg.thrs = append(cg.thrs, 0)
		cg.kids = append(cg.kids, 0)
	}
	return i
}

func (cg *CompiledGBDT) fillReg(i int32, nd *node) {
	if nd.isLeaf() {
		cg.feats[i] = -1
		cg.thrs[i] = nd.value
		return
	}
	c := cg.alloc(2)
	cg.feats[i] = int32(nd.feature)
	cg.thrs[i] = nd.threshold
	cg.kids[i] = c
	cg.fillReg(c, nd.left)
	cg.fillReg(c+1, nd.right)
}

// Score returns the churn likelihood without allocating, bit-identical to
// GBDT.Score (same per-tree accumulation order, same sigmoid link).
func (cg *CompiledGBDT) Score(x []float64) float64 {
	f := cg.bias
	for _, r := range cg.roots {
		i := r
		ft := cg.feats[i]
		for ft >= 0 {
			c := cg.kids[i]
			if !(x[ft] <= cg.thrs[i]) {
				c++
			}
			i = c
			ft = cg.feats[i]
		}
		f += cg.lr * cg.thrs[i]
	}
	return sigmoid(f)
}

// ScoreAll scores many instances in parallel, like GBDT.ScoreAll.
func (cg *CompiledGBDT) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	parallel.For(0, len(x), func(i int) {
		out[i] = cg.Score(x[i])
	})
	return out
}

// NumTrees returns the number of boosting rounds.
func (cg *CompiledGBDT) NumTrees() int { return len(cg.roots) }

// NumNodes returns the total flattened node count.
func (cg *CompiledGBDT) NumNodes() int { return len(cg.feats) }

package tree

import (
	"errors"
	"math/rand"
	"sort"

	"telcochurn/internal/dataset"
)

// Out-of-bag evaluation: each bootstrap leaves out ~36.8% of the training
// rows; scoring every row only with the trees that never saw it gives an
// unbiased accuracy estimate without a holdout set. Deployed monthly
// retraining uses this as the pre-release sanity check (no labeled "next
// month" exists yet at training time).

// OOBScores returns, for each training instance, the class-1 probability
// averaged over the trees whose bootstrap excluded it, plus a coverage mask
// (false where every tree saw the row — possible for tiny ensembles).
//
// d and cfg must be exactly the dataset and configuration used for
// FitForest: the per-tree bootstraps are regenerated from cfg.Seed.
func OOBScores(d *dataset.Dataset, cfg ForestConfig, f *Forest) ([]float64, []bool, error) {
	cfg = cfg.withDefaults()
	if f.NumTrees() != cfg.NumTrees {
		return nil, nil, errors.New("tree: forest does not match config (tree count)")
	}
	n := d.NumInstances()
	sum := make([]float64, n)
	count := make([]int, n)

	inBag := make([]bool, n)
	for t := 0; t < cfg.NumTrees; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*1_000_003))
		for i := range inBag {
			inBag[i] = false
		}
		markBootstrap(d, rng, inBag)
		tr := f.trees[t]
		for i := 0; i < n; i++ {
			if inBag[i] {
				continue
			}
			sum[i] += tr.PredictProba(d.X[i])[1]
			count[i]++
		}
	}
	scores := make([]float64, n)
	covered := make([]bool, n)
	for i := 0; i < n; i++ {
		if count[i] > 0 {
			scores[i] = sum[i] / float64(count[i])
			covered[i] = true
		}
	}
	return scores, covered, nil
}

// markBootstrap replays the bootstrap draw of bootstrap() to flag in-bag
// rows, consuming the RNG identically.
func markBootstrap(d *dataset.Dataset, rng *rand.Rand, inBag []bool) {
	n := d.NumInstances()
	if d.W == nil {
		for i := 0; i < n; i++ {
			inBag[rng.Intn(n)] = true
		}
		return
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += d.W[i]
		cum[i] = total
	}
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, r)
		if idx >= n {
			idx = n - 1
		}
		inBag[idx] = true
	}
}

package tree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestForestRoundTrip(t *testing.T) {
	d := separable(400, 31)
	d.FeatureNames = []string{"signal", "noise"}
	f, err := FitForest(d, ForestConfig{NumTrees: 12, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrees() != f.NumTrees() || got.NumClasses() != f.NumClasses() {
		t.Fatalf("shape mismatch: %d/%d trees, %d/%d classes",
			got.NumTrees(), f.NumTrees(), got.NumClasses(), f.NumClasses())
	}
	// Identical predictions and attributions everywhere we probe.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.NormFloat64()}
		if got.Score(x) != f.Score(x) {
			t.Fatalf("score mismatch at %v", x)
		}
		b1, c1 := f.Contributions(x)
		b2, c2 := got.Contributions(x)
		if b1 != b2 {
			t.Fatal("bias mismatch after round trip")
		}
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatal("contribution mismatch after round trip")
			}
		}
	}
	// Metadata preserved.
	if got.FeatureNames()[0] != "signal" {
		t.Errorf("feature names = %v", got.FeatureNames())
	}
	gi, fi := got.Importance(), f.Importance()
	for j := range fi {
		if gi[j] != fi[j] {
			t.Fatal("importance mismatch after round trip")
		}
	}
}

func TestForestRoundTripMultiClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := separable(300, 32)
	for i := range d.Y {
		if rng.Float64() < 0.2 {
			d.Y[i] = 2
		}
	}
	f, err := FitForest(d, ForestConfig{NumTrees: 8, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.7, 0.1}
	p1, p2 := f.PredictProba(x), got.PredictProba(x)
	for c := range p1 {
		if p1[c] != p2[c] {
			t.Fatal("multi-class proba mismatch")
		}
	}
}

func TestReadForestRejectsCorruption(t *testing.T) {
	d := separable(300, 33)
	f, err := FitForest(d, ForestConfig{NumTrees: 5, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x55
	if _, err := ReadForest(bytes.NewReader(data)); !errors.Is(err, ErrBadModel) {
		t.Errorf("corrupted model error = %v, want ErrBadModel", err)
	}
	// Truncation.
	if _, err := ReadForest(bytes.NewReader(data[:10])); !errors.Is(err, ErrBadModel) {
		t.Errorf("truncated model error = %v, want ErrBadModel", err)
	}
	// Wrong magic.
	if _, err := ReadForest(bytes.NewReader([]byte("NOPE12345678"))); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad magic error = %v, want ErrBadModel", err)
	}
}

func TestGBDTRoundTrip(t *testing.T) {
	d := separable(400, 34)
	g, err := FitGBDT(d, GBDTConfig{NumTrees: 25, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadGBDT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrees() != g.NumTrees() {
		t.Fatalf("tree count %d, want %d", got.NumTrees(), g.NumTrees())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.NormFloat64()}
		if got.Score(x) != g.Score(x) {
			t.Fatalf("score mismatch at %v", x)
		}
	}
}

func TestReadGBDTRejectsCorruption(t *testing.T) {
	d := separable(300, 35)
	g, err := FitGBDT(d, GBDTConfig{NumTrees: 5, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x55
	if _, err := ReadGBDT(bytes.NewReader(data)); !errors.Is(err, ErrBadModel) {
		t.Errorf("corrupted model error = %v, want ErrBadModel", err)
	}
	// A forest file is not a GBDT file.
	f, err := FitForest(d, ForestConfig{NumTrees: 3, MinLeafSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	if _, err := f.WriteTo(&fbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGBDT(&fbuf); !errors.Is(err, ErrBadModel) {
		t.Errorf("cross-format error = %v, want ErrBadModel", err)
	}
}

package tree

// The pre-columnar growers, kept verbatim (modulo legacy* renames) as test
// helpers: exact_test.go asserts that the columnar exact path reproduces
// their trees node for node. They re-sort every sampled feature at every
// node over the row-major matrix — the O(depth · √F · n log n) behavior the
// columnar backend replaced.

import (
	"math"
	"math/rand"
	"sort"

	"telcochurn/internal/dataset"
)

type legacyGrower struct {
	x          [][]float64
	y          []int
	w          []float64
	numClasses int
	cfg        Config
	rng        *rand.Rand
	importance []float64
}

// legacyFitTree mirrors the old fitTreeWithClasses: caller-fixed class
// count, defaults applied here.
func legacyFitTree(d *dataset.Dataset, cfg Config, numClasses int) *Tree {
	cfg = cfg.withDefaults()
	g := &legacyGrower{
		x:          d.X,
		y:          d.Y,
		w:          weightsOf(d),
		numClasses: numClasses,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		importance: make([]float64, d.NumFeatures()),
	}
	idx := make([]int, d.NumInstances())
	for i := range idx {
		idx[i] = i
	}
	root := g.grow(idx, 0)
	return &Tree{root: root, numClasses: numClasses, numFeat: d.NumFeatures(), importance: g.importance}
}

func (g *legacyGrower) grow(idx []int, depth int) *node {
	mass := make([]float64, g.numClasses)
	for _, i := range idx {
		mass[g.y[i]] += g.w[i]
	}
	leaf := func() *node {
		return &node{probs: normalize(mass), n: len(idx)}
	}
	if len(idx) < 2*g.cfg.MinLeafSamples || depth == g.cfg.MaxDepth && g.cfg.MaxDepth > 0 {
		return leaf()
	}
	if isPure(mass) {
		return leaf()
	}

	best := g.bestSplit(idx, mass)
	if best.feature < 0 {
		return leaf()
	}
	leftIdx, rightIdx := legacyPartition(g.x, idx, best.feature, best.threshold)
	if len(leftIdx) < g.cfg.MinLeafSamples || len(rightIdx) < g.cfg.MinLeafSamples {
		return leaf()
	}
	g.importance[best.feature] += best.improvement
	return &node{
		feature:   best.feature,
		threshold: best.threshold,
		left:      g.grow(leftIdx, depth+1),
		right:     g.grow(rightIdx, depth+1),
		n:         len(idx),
		probs:     normalize(mass),
	}
}

func (g *legacyGrower) bestSplit(idx []int, parentMass []float64) split {
	numFeat := len(g.x[0])
	features := g.sampleFeatures(numFeat)
	parentGini := Gini(parentMass)
	parentTotal := 0.0
	for _, m := range parentMass {
		parentTotal += m
	}

	best := split{feature: -1}
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	leftMass := make([]float64, g.numClasses)

	for _, f := range features {
		for j, i := range idx {
			vals[j] = g.x[i][f]
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		for c := range leftMass {
			leftMass[c] = 0
		}
		leftTotal := 0.0
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			leftMass[g.y[i]] += g.w[i]
			leftTotal += g.w[i]
			cur, next := vals[order[pos]], vals[order[pos+1]]
			if cur == next {
				continue
			}
			nLeft := pos + 1
			nRight := len(order) - nLeft
			if nLeft < g.cfg.MinLeafSamples || nRight < g.cfg.MinLeafSamples {
				continue
			}
			q := leftTotal / parentTotal
			rightGini := giniComplement(parentMass, leftMass, parentTotal-leftTotal)
			improvement := parentGini - q*Gini(leftMass) - (1-q)*rightGini
			if improvement > best.improvement {
				best = split{feature: f, threshold: (cur + next) / 2, improvement: improvement}
			}
		}
	}
	return best
}

func (g *legacyGrower) sampleFeatures(numFeat int) []int {
	k := g.cfg.FeaturesPerSplit
	switch {
	case k == 0 || k >= numFeat:
		all := make([]int, numFeat)
		for i := range all {
			all[i] = i
		}
		return all
	case k == -1:
		k = int(math.Sqrt(float64(numFeat)))
		if k < 1 {
			k = 1
		}
	}
	perm := g.rng.Perm(numFeat)
	return perm[:k]
}

func legacyPartition(x [][]float64, idx []int, feature int, threshold float64) (left, right []int) {
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}

type legacyRegGrower struct {
	x   [][]float64
	t   []float64
	w   []float64
	cfg RegressionConfig
	rng *rand.Rand
}

func legacyFitRegressionTree(x [][]float64, targets, weights []float64, cfg RegressionConfig) *RegressionTree {
	if cfg.MinLeafSamples == 0 {
		cfg.MinLeafSamples = 20
	}
	if weights == nil {
		weights = unitWeights(len(x))
	}
	if cfg.LeafValue == nil {
		cfg.LeafValue = func(idx []int) float64 {
			s, ws := 0.0, 0.0
			for _, i := range idx {
				s += targets[i] * weights[i]
				ws += weights[i]
			}
			if ws == 0 {
				return 0
			}
			return s / ws
		}
	}
	g := &legacyRegGrower{
		x:   x,
		t:   targets,
		w:   weights,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	return &RegressionTree{root: g.grow(idx, 0)}
}

func (g *legacyRegGrower) grow(idx []int, depth int) *node {
	leaf := func() *node {
		return &node{value: g.cfg.LeafValue(idx), n: len(idx)}
	}
	if len(idx) < 2*g.cfg.MinLeafSamples || (g.cfg.MaxDepth > 0 && depth == g.cfg.MaxDepth) {
		return leaf()
	}
	best := g.bestSplit(idx)
	if best.feature < 0 {
		return leaf()
	}
	leftIdx, rightIdx := legacyPartition(g.x, idx, best.feature, best.threshold)
	if len(leftIdx) < g.cfg.MinLeafSamples || len(rightIdx) < g.cfg.MinLeafSamples {
		return leaf()
	}
	return &node{
		feature:   best.feature,
		threshold: best.threshold,
		left:      g.grow(leftIdx, depth+1),
		right:     g.grow(rightIdx, depth+1),
		n:         len(idx),
	}
}

func (g *legacyRegGrower) bestSplit(idx []int) split {
	numFeat := len(g.x[0])
	features := sampleSplitFeatures(g.rng, numFeat, g.cfg.FeaturesPerSplit)

	totalSum, totalW := 0.0, 0.0
	for _, i := range idx {
		totalSum += g.t[i] * g.w[i]
		totalW += g.w[i]
	}
	baseScore := 0.0
	if totalW > 0 {
		baseScore = totalSum * totalSum / totalW
	}

	best := split{feature: -1}
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, f := range features {
		for j, i := range idx {
			vals[j] = g.x[i][f]
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		leftSum, leftW := 0.0, 0.0
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			leftSum += g.t[i] * g.w[i]
			leftW += g.w[i]
			cur, next := vals[order[pos]], vals[order[pos+1]]
			if cur == next {
				continue
			}
			nLeft := pos + 1
			nRight := len(order) - nLeft
			if nLeft < g.cfg.MinLeafSamples || nRight < g.cfg.MinLeafSamples {
				continue
			}
			rightSum, rightW := totalSum-leftSum, totalW-leftW
			if leftW <= 0 || rightW <= 0 {
				continue
			}
			gain := leftSum*leftSum/leftW + rightSum*rightSum/rightW - baseScore
			if gain > best.improvement {
				best = split{feature: f, threshold: (cur + next) / 2, improvement: gain}
			}
		}
	}
	return best
}

package tree

// Binary model persistence: a deployed churn system retrains monthly but
// scores continuously, so fitted ensembles must survive process restarts.
// Both formats use the shared codec framing (ASCII magic, varint-coded tree
// structures, exact float64 bits, trailing CRC32): "TCRF" for random
// forests, "TCGB" for boosted trees. The core package nests these whole
// files inside its pipeline artifact.

import (
	"errors"
	"fmt"
	"io"

	"telcochurn/internal/codec"
)

const (
	forestMagic = "TCRF"
	gbdtMagic   = "TCGB"
)

// ErrBadModel is returned when a model file fails structural or checksum
// validation.
var ErrBadModel = errors.New("tree: corrupt model data")

// WriteTo serializes the forest. It returns the number of bytes written.
func (f *Forest) WriteTo(w io.Writer) (int64, error) {
	cw := codec.NewWriter(w, forestMagic)
	cw.Uvarint(uint64(f.numClasses))
	cw.Strs(f.features)
	cw.Floats(f.importance)
	cw.Uvarint(uint64(len(f.trees)))
	for _, tr := range f.trees {
		cw.Floats(tr.importance)
		if err := writeClassNode(cw, tr.root); err != nil {
			return 0, err
		}
	}
	return cw.Close()
}

// writeClassNode serializes a classification node pre-order: tag (0 leaf,
// 1 split), then payload.
func writeClassNode(cw *codec.Writer, nd *node) error {
	if nd == nil {
		return errors.New("tree: nil node during serialization")
	}
	if nd.isLeaf() {
		cw.Uvarint(0)
		cw.Uvarint(uint64(nd.n))
		for _, p := range nd.probs {
			cw.Float(p)
		}
		return nil
	}
	cw.Uvarint(1)
	cw.Uvarint(uint64(nd.feature))
	cw.Float(nd.threshold)
	cw.Uvarint(uint64(nd.n))
	// Internal nodes carry their class distribution for attribution.
	for _, p := range nd.probs {
		cw.Float(p)
	}
	if err := writeClassNode(cw, nd.left); err != nil {
		return err
	}
	return writeClassNode(cw, nd.right)
}

// ReadForest deserializes a forest written by WriteTo.
func ReadForest(r io.Reader) (*Forest, error) {
	rd, err := codec.NewReader(r, forestMagic)
	if err != nil {
		return nil, badModel(err)
	}
	f := &Forest{}
	f.numClasses = int(rd.Uvarint())
	if f.numClasses < 2 || f.numClasses > 1<<16 {
		return nil, fmt.Errorf("%w: class count %d", ErrBadModel, f.numClasses)
	}
	f.features = rd.Strs()
	f.importance = rd.Floats()
	nTrees := int(rd.Uvarint())
	if nTrees > 1<<20 {
		return nil, fmt.Errorf("%w: tree count %d", ErrBadModel, nTrees)
	}
	f.trees = make([]*Tree, nTrees)
	for t := range f.trees {
		tr := &Tree{numClasses: f.numClasses, numFeat: len(f.features)}
		tr.importance = rd.Floats()
		tr.root = readClassNode(rd, f.numClasses, 0)
		f.trees[t] = tr
	}
	if err := rd.Close(); err != nil {
		return nil, badModel(err)
	}
	return f, nil
}

const maxTreeDepth = 64

func readClassNode(rd *codec.Reader, numClasses, depth int) *node {
	if rd.Err() != nil || depth > maxTreeDepth {
		rd.Fail("tree too deep or truncated")
		return &node{probs: make([]float64, numClasses)}
	}
	tag := rd.Uvarint()
	switch tag {
	case 0:
		nd := &node{n: int(rd.Uvarint()), probs: make([]float64, numClasses)}
		for i := range nd.probs {
			nd.probs[i] = rd.Float()
		}
		return nd
	case 1:
		nd := &node{
			feature:   int(rd.Uvarint()),
			threshold: rd.Float(),
			probs:     make([]float64, numClasses),
		}
		nd.n = int(rd.Uvarint())
		for i := range nd.probs {
			nd.probs[i] = rd.Float()
		}
		nd.left = readClassNode(rd, numClasses, depth+1)
		nd.right = readClassNode(rd, numClasses, depth+1)
		return nd
	default:
		rd.Fail(fmt.Sprintf("bad node tag %d", tag))
		return &node{probs: make([]float64, numClasses)}
	}
}

// WriteTo serializes the boosted ensemble: bias, learning rate, then each
// round's regression tree. It returns the number of bytes written.
func (g *GBDT) WriteTo(w io.Writer) (int64, error) {
	cw := codec.NewWriter(w, gbdtMagic)
	cw.Float(g.bias)
	cw.Float(g.lr)
	cw.Uvarint(uint64(len(g.trees)))
	for _, tr := range g.trees {
		if err := writeRegNode(cw, tr.root); err != nil {
			return 0, err
		}
	}
	return cw.Close()
}

// writeRegNode serializes a regression node pre-order: tag (0 leaf with its
// value, 1 split), mirroring writeClassNode without class distributions.
func writeRegNode(cw *codec.Writer, nd *node) error {
	if nd == nil {
		return errors.New("tree: nil node during serialization")
	}
	if nd.isLeaf() {
		cw.Uvarint(0)
		cw.Uvarint(uint64(nd.n))
		cw.Float(nd.value)
		return nil
	}
	cw.Uvarint(1)
	cw.Uvarint(uint64(nd.feature))
	cw.Float(nd.threshold)
	cw.Uvarint(uint64(nd.n))
	if err := writeRegNode(cw, nd.left); err != nil {
		return err
	}
	return writeRegNode(cw, nd.right)
}

// ReadGBDT deserializes a boosted ensemble written by (*GBDT).WriteTo.
func ReadGBDT(r io.Reader) (*GBDT, error) {
	rd, err := codec.NewReader(r, gbdtMagic)
	if err != nil {
		return nil, badModel(err)
	}
	g := &GBDT{bias: rd.Float(), lr: rd.Float()}
	nTrees := int(rd.Uvarint())
	if nTrees > 1<<20 {
		return nil, fmt.Errorf("%w: tree count %d", ErrBadModel, nTrees)
	}
	g.trees = make([]*RegressionTree, nTrees)
	for t := range g.trees {
		g.trees[t] = &RegressionTree{root: readRegNode(rd, 0)}
	}
	if err := rd.Close(); err != nil {
		return nil, badModel(err)
	}
	return g, nil
}

func readRegNode(rd *codec.Reader, depth int) *node {
	if rd.Err() != nil || depth > maxTreeDepth {
		rd.Fail("tree too deep or truncated")
		return &node{}
	}
	tag := rd.Uvarint()
	switch tag {
	case 0:
		return &node{n: int(rd.Uvarint()), value: rd.Float()}
	case 1:
		nd := &node{feature: int(rd.Uvarint()), threshold: rd.Float()}
		nd.n = int(rd.Uvarint())
		nd.left = readRegNode(rd, depth+1)
		nd.right = readRegNode(rd, depth+1)
		return nd
	default:
		rd.Fail(fmt.Sprintf("bad node tag %d", tag))
		return &node{}
	}
}

// badModel maps a codec framing error onto the package's sentinel.
func badModel(err error) error {
	if errors.Is(err, codec.ErrCorrupt) {
		return fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return err
}

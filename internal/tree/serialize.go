package tree

// Binary model persistence: a deployed churn system retrains monthly but
// scores continuously, so the fitted forest must survive process restarts.
// The format mirrors the store package's: magic, varint-coded tree
// structures, float64 leaf distributions, trailing CRC32.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const forestMagic = "TCRF"

// ErrBadModel is returned when a model file fails structural or checksum
// validation.
var ErrBadModel = errors.New("tree: corrupt model data")

// WriteTo serializes the forest. It returns the number of bytes written.
func (f *Forest) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16), crc: crc32.NewIEEE()}
	// The magic precedes the checksummed body (the CRC covers everything
	// between magic and trailer, matching ReadForest).
	if _, err := cw.w.WriteString(forestMagic); err != nil {
		return cw.n, err
	}
	cw.n += int64(len(forestMagic))
	cw.uvarint(uint64(f.numClasses))
	cw.uvarint(uint64(len(f.features)))
	for _, name := range f.features {
		cw.str(name)
	}
	cw.uvarint(uint64(len(f.importance)))
	for _, v := range f.importance {
		cw.float(v)
	}
	cw.uvarint(uint64(len(f.trees)))
	for _, tr := range f.trees {
		cw.uvarint(uint64(len(tr.importance)))
		for _, v := range tr.importance {
			cw.float(v)
		}
		if err := writeNode(cw, tr.root, f.numClasses); err != nil {
			return cw.n, err
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], cw.crc.Sum32())
	if _, err := cw.w.Write(sum[:]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	return cw.n, cw.w.Flush()
}

// writeNode serializes a node pre-order: tag (0 leaf, 1 split), then payload.
func writeNode(cw *countingWriter, nd *node, numClasses int) error {
	if nd == nil {
		return errors.New("tree: nil node during serialization")
	}
	if nd.isLeaf() {
		cw.uvarint(0)
		cw.uvarint(uint64(nd.n))
		for _, p := range nd.probs {
			cw.float(p)
		}
		return cw.err
	}
	cw.uvarint(1)
	cw.uvarint(uint64(nd.feature))
	cw.float(nd.threshold)
	cw.uvarint(uint64(nd.n))
	// Internal nodes carry their class distribution for attribution.
	for _, p := range nd.probs {
		cw.float(p)
	}
	if err := writeNode(cw, nd.left, numClasses); err != nil {
		return err
	}
	return writeNode(cw, nd.right, numClasses)
}

// ReadForest deserializes a forest written by WriteTo.
func ReadForest(r io.Reader) (*Forest, error) {
	data, err := io.ReadAll(bufio.NewReaderSize(r, 1<<16))
	if err != nil {
		return nil, err
	}
	if len(data) < len(forestMagic)+4 || string(data[:len(forestMagic)]) != forestMagic {
		return nil, ErrBadModel
	}
	body := data[len(forestMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadModel)
	}
	rd := &byteReader{b: body}

	f := &Forest{}
	f.numClasses = int(rd.uvarint())
	if f.numClasses < 2 || f.numClasses > 1<<16 {
		return nil, fmt.Errorf("%w: class count %d", ErrBadModel, f.numClasses)
	}
	nNames := int(rd.uvarint())
	f.features = make([]string, nNames)
	for i := range f.features {
		f.features[i] = rd.str()
	}
	nImp := int(rd.uvarint())
	f.importance = make([]float64, nImp)
	for i := range f.importance {
		f.importance[i] = rd.float()
	}
	nTrees := int(rd.uvarint())
	if nTrees > 1<<20 {
		return nil, fmt.Errorf("%w: tree count %d", ErrBadModel, nTrees)
	}
	f.trees = make([]*Tree, nTrees)
	for t := range f.trees {
		nti := int(rd.uvarint())
		tr := &Tree{numClasses: f.numClasses, numFeat: nNames, importance: make([]float64, nti)}
		for i := range tr.importance {
			tr.importance[i] = rd.float()
		}
		tr.root = readNode(rd, f.numClasses, 0)
		f.trees[t] = tr
	}
	if rd.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, rd.err)
	}
	if rd.pos != len(rd.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadModel, len(rd.b)-rd.pos)
	}
	return f, nil
}

const maxTreeDepth = 64

func readNode(rd *byteReader, numClasses, depth int) *node {
	if rd.err != nil || depth > maxTreeDepth {
		rd.fail("tree too deep or truncated")
		return &node{probs: make([]float64, numClasses)}
	}
	tag := rd.uvarint()
	switch tag {
	case 0:
		nd := &node{n: int(rd.uvarint()), probs: make([]float64, numClasses)}
		for i := range nd.probs {
			nd.probs[i] = rd.float()
		}
		return nd
	case 1:
		nd := &node{
			feature:   int(rd.uvarint()),
			threshold: rd.float(),
			n:         0,
			probs:     make([]float64, numClasses),
		}
		nd.n = int(rd.uvarint())
		for i := range nd.probs {
			nd.probs[i] = rd.float()
		}
		nd.left = readNode(rd, numClasses, depth+1)
		nd.right = readNode(rd, numClasses, depth+1)
		return nd
	default:
		rd.fail(fmt.Sprintf("bad node tag %d", tag))
		return &node{probs: make([]float64, numClasses)}
	}
}

// ---- tiny binary helpers ----

type countingWriter struct {
	w   *bufio.Writer
	crc interface {
		Write([]byte) (int, error)
		Sum32() uint32
	}
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p)
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	if err != nil && cw.err == nil {
		cw.err = err
	}
	return n, err
}

func (cw *countingWriter) WriteString(s string) (int, error) { return cw.Write([]byte(s)) }

func (cw *countingWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	cw.Write(buf[:n])
}

func (cw *countingWriter) float(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	cw.Write(buf[:])
}

func (cw *countingWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	cw.Write([]byte(s))
}

type byteReader struct {
	b   []byte
	pos int
	err error
}

func (rd *byteReader) fail(msg string) {
	if rd.err == nil {
		rd.err = errors.New(msg)
	}
}

func (rd *byteReader) uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Uvarint(rd.b[rd.pos:])
	if n <= 0 {
		rd.fail("bad uvarint")
		return 0
	}
	rd.pos += n
	return v
}

func (rd *byteReader) float() float64 {
	if rd.err != nil {
		return 0
	}
	if rd.pos+8 > len(rd.b) {
		rd.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(rd.b[rd.pos:]))
	rd.pos += 8
	return v
}

func (rd *byteReader) str() string {
	n := int(rd.uvarint())
	if rd.err != nil {
		return ""
	}
	if rd.pos+n > len(rd.b) {
		rd.fail("truncated string")
		return ""
	}
	s := string(rd.b[rd.pos : rd.pos+n])
	rd.pos += n
	return s
}

package tree

// Decision-path attribution (the Saabas method): walking an instance down a
// tree, every split shifts the expected class-1 probability from the parent
// node's distribution to the chosen child's; that shift is credited to the
// feature the split tested. Summed over the ensemble, the attributions
// decompose the forest's churn score exactly:
//
//	Score(x) = bias + Σ_f Contribution_f(x)
//
// where bias is the average root-node probability. This implements the
// paper's stated extension — "inferring root causes of churners for
// actionable and suitable retention strategies" — on top of the deployed RF.

// Contributions returns the per-feature decision-path attributions of the
// class-1 (churn) score for one instance, plus the ensemble bias. The
// returned slice is aligned with the training feature order; the identity
// bias + sum(contrib) == Score(x) holds to floating-point accuracy.
func (f *Forest) Contributions(x []float64) (bias float64, contrib []float64) {
	if len(f.trees) == 0 {
		return 0, nil
	}
	contrib = make([]float64, len(f.trees[0].importance))
	for _, tr := range f.trees {
		nd := tr.root
		bias += nd.probs[1]
		for !nd.isLeaf() {
			var next *node
			if x[nd.feature] <= nd.threshold {
				next = nd.left
			} else {
				next = nd.right
			}
			contrib[nd.feature] += next.probs[1] - nd.probs[1]
			nd = next
		}
	}
	n := float64(len(f.trees))
	bias /= n
	for i := range contrib {
		contrib[i] /= n
	}
	return bias, contrib
}

// Contribution pairs a feature with its attribution for one instance.
type Contribution struct {
	Feature string
	Value   float64 // the instance's feature value
	Score   float64 // signed contribution to the churn likelihood
}

// TopContributions returns the k largest-|score| attributions for one
// instance, most influential first.
func (f *Forest) TopContributions(x []float64, k int) []Contribution {
	_, contrib := f.Contributions(x)
	out := make([]Contribution, 0, len(contrib))
	for i, c := range contrib {
		name := ""
		if i < len(f.features) {
			name = f.features[i]
		}
		out = append(out, Contribution{Feature: name, Value: x[i], Score: c})
	}
	// Partial selection sort: k is small.
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if abs(out[j].Score) > abs(out[best].Score) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out[:k]
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

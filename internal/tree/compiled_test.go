package tree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"telcochurn/internal/dataset"
)

// noisyDataset builds a random classification dataset with feats features,
// classes classes, and occasional NaN cells so fitted trees route missing
// values too.
func noisyDataset(rng *rand.Rand, n, feats, classes int) *dataset.Dataset {
	names := make([]string, feats)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	d := dataset.New(names)
	for i := 0; i < n; i++ {
		x := make([]float64, feats)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := 0
		if x[0]+0.3*x[feats-1] > 0 {
			y = 1
		}
		if classes > 2 && rng.Float64() < 0.25 {
			y = rng.Intn(classes)
		}
		d.Add(x, y)
	}
	return d
}

// probe draws a random instance, occasionally poisoning cells with NaN or
// ±Inf, so traversal identity is checked on missing values as well.
func probe(rng *rand.Rand, feats int) []float64 {
	x := make([]float64, feats)
	for j := range x {
		switch rng.Intn(10) {
		case 0:
			x[j] = math.NaN()
		case 1:
			x[j] = math.Inf(1 - 2*rng.Intn(2))
		default:
			x[j] = rng.NormFloat64() * 3
		}
	}
	return x
}

// TestCompiledForestBitIdentical is the tentpole property: across random
// forests (size, depth, bins, class count) and random probes (including NaN
// and ±Inf cells), the compiled walker returns bit-for-bit the same
// PredictProba, Score and Predict as the pointer walker.
func TestCompiledForestBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		feats := 2 + rng.Intn(5)
		classes := 2 + rng.Intn(2)
		d := noisyDataset(rng, 80+rng.Intn(300), feats, classes)
		cfg := ForestConfig{
			NumTrees:       1 + rng.Intn(12),
			MaxDepth:       1 + rng.Intn(8),
			MinLeafSamples: 1 + rng.Intn(20),
			Seed:           seed,
		}
		if rng.Intn(2) == 1 {
			cfg.MaxBins = 8 + rng.Intn(56)
		}
		forest, err := FitForest(d, cfg)
		if err != nil {
			t.Logf("seed %d: fit: %v", seed, err)
			return false
		}
		cf := forest.Compile()
		if cf.NumTrees() != forest.NumTrees() || cf.NumClasses() != forest.NumClasses() {
			t.Logf("seed %d: shape mismatch", seed)
			return false
		}
		buf := make([]float64, cf.NumClasses())
		for i := 0; i < 50; i++ {
			x := probe(rng, feats)
			want := forest.PredictProba(x)
			got := cf.PredictProba(x)
			for c := range want {
				if math.Float64bits(want[c]) != math.Float64bits(got[c]) {
					t.Logf("seed %d: proba[%d] %v != %v at %v", seed, c, got[c], want[c], x)
					return false
				}
			}
			cf.PredictProbaInto(x, buf)
			for c := range want {
				if math.Float64bits(buf[c]) != math.Float64bits(want[c]) {
					t.Logf("seed %d: probaInto mismatch", seed)
					return false
				}
			}
			if math.Float64bits(cf.Score(x)) != math.Float64bits(forest.Score(x)) {
				t.Logf("seed %d: score mismatch at %v", seed, x)
				return false
			}
			if cf.Predict(x) != forest.Predict(x) {
				t.Logf("seed %d: predict mismatch at %v", seed, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCompiledGBDTBitIdentical: same property for the boosted ensemble.
func TestCompiledGBDTBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		feats := 2 + rng.Intn(5)
		d := noisyDataset(rng, 120+rng.Intn(300), feats, 2)
		cfg := GBDTConfig{
			NumTrees:       1 + rng.Intn(20),
			MaxDepth:       1 + rng.Intn(5),
			MinLeafSamples: 1 + rng.Intn(25),
			Seed:           seed,
		}
		if rng.Intn(2) == 1 {
			cfg.MaxBins = 8 + rng.Intn(56)
		}
		if rng.Intn(2) == 1 {
			cfg.Subsample = 0.5 + rng.Float64()/2
		}
		model, err := FitGBDT(d, cfg)
		if err != nil {
			t.Logf("seed %d: fit: %v", seed, err)
			return false
		}
		cg := model.Compile()
		if cg.NumTrees() != model.NumTrees() {
			t.Logf("seed %d: tree count mismatch", seed)
			return false
		}
		for i := 0; i < 50; i++ {
			x := probe(rng, feats)
			if math.Float64bits(cg.Score(x)) != math.Float64bits(model.Score(x)) {
				t.Logf("seed %d: score mismatch at %v", seed, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCompiledRoundTripPreservesScores: serialize → deserialize → compile
// must score bit-identically to compiling the original — i.e. the artifact
// path cannot perturb compiled scoring.
func TestCompiledRoundTripPreservesScores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		feats := 2 + rng.Intn(4)
		d := noisyDataset(rng, 100+rng.Intn(200), feats, 2)
		forest, err := FitForest(d, ForestConfig{
			NumTrees: 1 + rng.Intn(8), MaxDepth: 1 + rng.Intn(6),
			MinLeafSamples: 2 + rng.Intn(15), Seed: seed,
		})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := forest.WriteTo(&buf); err != nil {
			return false
		}
		loaded, err := ReadForest(&buf)
		if err != nil {
			return false
		}
		cf, lf := forest.Compile(), loaded.Compile()

		model, err := FitGBDT(d, GBDTConfig{
			NumTrees: 1 + rng.Intn(10), MaxDepth: 1 + rng.Intn(4),
			MinLeafSamples: 2 + rng.Intn(15), Seed: seed,
		})
		if err != nil {
			return false
		}
		var gbuf bytes.Buffer
		if _, err := model.WriteTo(&gbuf); err != nil {
			return false
		}
		gloaded, err := ReadGBDT(&gbuf)
		if err != nil {
			return false
		}
		cg, lg := model.Compile(), gloaded.Compile()

		for i := 0; i < 40; i++ {
			x := probe(rng, feats)
			if math.Float64bits(cf.Score(x)) != math.Float64bits(lf.Score(x)) {
				t.Logf("seed %d: forest round-trip score drift at %v", seed, x)
				return false
			}
			if math.Float64bits(cg.Score(x)) != math.Float64bits(lg.Score(x)) {
				t.Logf("seed %d: gbdt round-trip score drift at %v", seed, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestCompiledScoreAllMatchesForest pins the batch paths too.
func TestCompiledScoreAllMatchesForest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := noisyDataset(rng, 400, 4, 2)
	forest, err := FitForest(d, ForestConfig{NumTrees: 10, MinLeafSamples: 5, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cf := forest.Compile()
	xs := make([][]float64, 200)
	for i := range xs {
		xs[i] = probe(rng, 4)
	}
	want, got := forest.ScoreAll(xs), cf.ScoreAll(xs)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("ScoreAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	model, err := FitGBDT(d, GBDTConfig{NumTrees: 12, MinLeafSamples: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cg := model.Compile()
	gwant, ggot := model.ScoreAll(xs), cg.ScoreAll(xs)
	for i := range gwant {
		if math.Float64bits(gwant[i]) != math.Float64bits(ggot[i]) {
			t.Fatalf("GBDT ScoreAll[%d] = %v, want %v", i, ggot[i], gwant[i])
		}
	}
}

// TestCompiledScoreAllocFree guards the zero-allocation contract of the
// single-instance scoring paths.
func TestCompiledScoreAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := noisyDataset(rng, 300, 4, 2)
	forest, err := FitForest(d, ForestConfig{NumTrees: 8, MinLeafSamples: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cf := forest.Compile()
	x := probe(rng, 4)
	out := make([]float64, cf.NumClasses())
	if n := testing.AllocsPerRun(200, func() { cf.Score(x) }); n != 0 {
		t.Errorf("CompiledForest.Score allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { cf.PredictProbaInto(x, out) }); n != 0 {
		t.Errorf("PredictProbaInto allocates %.1f/op, want 0", n)
	}
	model, err := FitGBDT(d, GBDTConfig{NumTrees: 10, MinLeafSamples: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cg := model.Compile()
	if n := testing.AllocsPerRun(200, func() { cg.Score(x) }); n != 0 {
		t.Errorf("CompiledGBDT.Score allocates %.1f/op, want 0", n)
	}
}

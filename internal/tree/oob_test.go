package tree

import (
	"testing"

	"telcochurn/internal/eval"
)

func TestOOBScoresEstimateHoldoutPerformance(t *testing.T) {
	train := separable(800, 41)
	cfg := ForestConfig{NumTrees: 40, MinLeafSamples: 15, Seed: 6}
	f, err := FitForest(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores, covered, err := OOBScores(train, cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	var oob []eval.Prediction
	for i := range scores {
		if !covered[i] {
			continue
		}
		oob = append(oob, eval.Prediction{ID: int64(i), Score: scores[i], Label: train.Y[i]})
	}
	if len(oob) < 700 {
		t.Fatalf("only %d/800 rows covered out-of-bag", len(oob))
	}
	oobAUC := eval.AUC(oob)

	// Holdout AUC for comparison.
	test := separable(400, 42)
	var hold []eval.Prediction
	for i, x := range test.X {
		hold = append(hold, eval.Prediction{ID: int64(i), Score: f.Score(x), Label: test.Y[i]})
	}
	holdAUC := eval.AUC(hold)
	t.Logf("OOB AUC %.3f vs holdout AUC %.3f", oobAUC, holdAUC)
	if diff := oobAUC - holdAUC; diff > 0.05 || diff < -0.05 {
		t.Errorf("OOB AUC %.3f far from holdout %.3f", oobAUC, holdAUC)
	}
}

func TestOOBScoresRejectsMismatchedForest(t *testing.T) {
	train := separable(200, 43)
	cfg := ForestConfig{NumTrees: 10, MinLeafSamples: 15, Seed: 6}
	f, err := FitForest(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.NumTrees = 20
	if _, _, err := OOBScores(train, bad, f); err == nil {
		t.Error("want error for mismatched tree count")
	}
}

func TestOOBWithWeightedBootstrap(t *testing.T) {
	train := separable(400, 44)
	train.W = make([]float64, train.NumInstances())
	for i, y := range train.Y {
		if y == 1 {
			train.W[i] = 2
		} else {
			train.W[i] = 1
		}
	}
	cfg := ForestConfig{NumTrees: 30, MinLeafSamples: 15, Seed: 8}
	f, err := FitForest(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores, covered, err := OOBScores(train, cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := range scores {
		if covered[i] {
			n++
			if scores[i] < 0 || scores[i] > 1 {
				t.Fatalf("score %g out of range", scores[i])
			}
		}
	}
	if n == 0 {
		t.Fatal("no coverage under weighted bootstrap")
	}
}

package tree

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"telcochurn/internal/dataset"
	"telcochurn/internal/parallel"
)

// ForestConfig configures a random forest. The defaults follow Section 4.2:
// 500 trees, √N features per split, minimum 100 samples per leaf.
type ForestConfig struct {
	// NumTrees is the ensemble size T of Eq. (4). Default 500.
	NumTrees int
	// MinLeafSamples defaults to the paper's 100.
	MinLeafSamples int
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int
	// FeaturesPerSplit defaults to √N (-1). 0 means all features.
	FeaturesPerSplit int
	// Seed makes training deterministic (bootstraps and feature sampling
	// derive per-tree seeds from it).
	Seed int64
	// Workers caps training parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxBins enables histogram split search in every tree (see
	// Config.MaxBins). Bin edges are computed once per forest from the full
	// training matrix, as LightGBM does; 0 keeps exact splits.
	MaxBins int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees == 0 {
		c.NumTrees = 500
	}
	if c.MinLeafSamples == 0 {
		c.MinLeafSamples = 100
	}
	if c.FeaturesPerSplit == 0 {
		c.FeaturesPerSplit = -1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Forest is a trained random forest.
type Forest struct {
	trees      []*Tree
	numClasses int
	importance []float64 // normalized Gini importance per feature
	features   []string
	workers    int // scoring parallelism carried over from ForestConfig
}

// FitForest trains a random forest with bootstrap aggregating over CART
// trees. Instance weights (dataset.W) flow into both the Gini computation
// and the leaf distributions, implementing the paper's Weighted Instance
// imbalance method inside the ensemble.
func FitForest(d *dataset.Dataset, cfg ForestConfig) (*Forest, error) {
	cfg = cfg.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.NumInstances()
	if n == 0 {
		return nil, errors.New("tree: empty dataset")
	}
	numClasses := d.NumClasses()
	if numClasses < 2 {
		numClasses = 2
	}

	if n > math.MaxInt32 {
		return nil, errors.New("tree: dataset exceeds 2^31 rows")
	}

	// Transpose + presort (or bin) the training matrix once; every tree
	// derives its bootstrap's feature orders from this shared view with a
	// counting remap instead of re-sorting (see newBootstrapLayout).
	treeCfg := Config{
		MinLeafSamples:   cfg.MinLeafSamples,
		MaxDepth:         cfg.MaxDepth,
		FeaturesPerSplit: cfg.FeaturesPerSplit,
		MaxBins:          cfg.MaxBins,
	}.withDefaults()
	cd := newColData(d.X, d.NumFeatures(), treeCfg.MaxBins)
	// Bootstrap rows carry unit weight: weighted datasets encode their
	// weights in the draw itself (see bootstrapIdx), so all trees share one
	// read-only weight vector.
	unitW := make([]float64, n)
	for i := range unitW {
		unitW[i] = 1
	}

	// Each tree draws from its own RNG stream keyed by tree index, so the
	// ensemble is bit-identical for any worker count. The big per-tree
	// buffers (gathered columns, remapped orders, partition scratch) cycle
	// through a pool, so steady state allocates them once per worker rather
	// than once per tree.
	trees := make([]*Tree, cfg.NumTrees)
	pool := sync.Pool{New: func() any { return new(bootBuffers) }}
	parallel.ForGrain(cfg.Workers, cfg.NumTrees, 1, func(t int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*1_000_003))
		idx := bootstrapIdx(d, rng)
		tc := treeCfg
		tc.Seed = cfg.Seed + int64(t)*7_000_003
		b := pool.Get().(*bootBuffers)
		trees[t] = fitTreeBoot(cd, d, idx, unitW, tc, numClasses, b)
		pool.Put(b)
	})

	imp := make([]float64, d.NumFeatures())
	for _, tr := range trees {
		for f, v := range tr.importance {
			imp[f] += v
		}
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for f := range imp {
			imp[f] /= total
		}
	}
	return &Forest{trees: trees, numClasses: numClasses, importance: imp, features: d.FeatureNames, workers: cfg.Workers}, nil
}

// fitTreeBoot fits one forest tree on the bootstrap draw idx over the
// shared columnar view, gathering labels and deriving presorted orders/bins
// for the resample without touching the row-major matrix again.
func fitTreeBoot(cd *colData, d *dataset.Dataset, idx []int, unitW []float64, cfg Config, numClasses int, b *bootBuffers) *Tree {
	if cap(b.y) < len(idx) {
		b.y = make([]int, len(idx))
	}
	y := b.y[:len(idx)]
	for j, r := range idx {
		y[j] = d.Y[r]
	}
	g := newColGrower(newBootstrapLayout(cd, d.X, idx, b), y, unitW, numClasses, d.NumFeatures(), cfg)
	root := g.grow(0, len(idx), 0)
	return &Tree{root: root, numClasses: numClasses, numFeat: d.NumFeatures(), importance: g.importance}
}

// bootstrapIdx draws the per-tree sample's row indices. With instance
// weights present, rows are drawn proportionally to weight (weighted
// bootstrap): plain class weights only rescale leaf probabilities — a
// monotone recalibration that leaves rankings untouched — whereas
// reweighted resampling changes which splits the trees learn, which is what
// gives the Weighted Instance method its Table 7 ranking gains. The fit
// itself then uses unit weights: the draw already encodes them, and
// carrying them into the Gini computation would square their influence.
// OOBScores.markBootstrap replays this draw; keep them in sync.
func bootstrapIdx(d *dataset.Dataset, rng *rand.Rand) []int {
	n := d.NumInstances()
	idx := make([]int, n)
	if d.W == nil {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		return idx
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += d.W[i]
		cum[i] = total
	}
	for i := range idx {
		r := rng.Float64() * total
		idx[i] = sort.SearchFloat64s(cum, r)
		if idx[i] >= n {
			idx[i] = n - 1
		}
	}
	return idx
}

// PredictProba returns the ensemble-average class distribution (Eq. 4) for
// one instance.
func (f *Forest) PredictProba(x []float64) []float64 {
	probs := make([]float64, f.numClasses)
	for _, tr := range f.trees {
		p := tr.PredictProba(x)
		for c := range probs {
			probs[c] += p[c]
		}
	}
	for c := range probs {
		probs[c] /= float64(len(f.trees))
	}
	return probs
}

// Score returns the likelihood of class 1 (churner) for one instance —
// Eq. (4)'s y.
func (f *Forest) Score(x []float64) float64 {
	return f.PredictProba(x)[1]
}

// Predict returns the most probable class.
func (f *Forest) Predict(x []float64) int {
	probs := f.PredictProba(x)
	best, bestP := 0, probs[0]
	for c, p := range probs {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// ScoreAll scores many instances in parallel, returning class-1 likelihoods.
func (f *Forest) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	parallel.For(f.workers, len(x), func(i int) {
		out[i] = f.Score(x[i])
	})
	return out
}

// PredictAll predicts classes for many instances in parallel.
func (f *Forest) PredictAll(x [][]float64) []int {
	out := make([]int, len(x))
	parallel.For(f.workers, len(x), func(i int) {
		out[i] = f.Predict(x[i])
	})
	return out
}

// Importance returns the normalized Gini feature importance (Eq. 7),
// aligned with the training feature names.
func (f *Forest) Importance() []float64 {
	return append([]float64(nil), f.importance...)
}

// FeatureNames returns the training feature names.
func (f *Forest) FeatureNames() []string { return f.features }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumClasses returns the class count.
func (f *Forest) NumClasses() int { return f.numClasses }

package sampling

import (
	"math"
	"math/rand"
	"testing"

	"telcochurn/internal/dataset"
)

func imbalanced(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New([]string{"x"})
	for i := 0; i < 90; i++ {
		d.Add([]float64{float64(i)}, 0)
	}
	for i := 0; i < 10; i++ {
		d.Add([]float64{float64(1000 + i)}, 1)
	}
	return d
}

func classCounts(d *dataset.Dataset) (pos, neg int) {
	for _, y := range d.Y {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	return
}

func TestNotBalancedIsIdentity(t *testing.T) {
	d := imbalanced(t)
	out, err := Apply(d, NotBalanced, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out != d {
		t.Error("NotBalanced should return the input unchanged")
	}
}

func TestUpSamplingBalances(t *testing.T) {
	d := imbalanced(t)
	out, err := Apply(d, UpSampling, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := classCounts(out)
	if pos != neg {
		t.Errorf("upsampled classes %d/%d, want equal", pos, neg)
	}
	if neg != 90 {
		t.Errorf("upsampling changed the majority count to %d", neg)
	}
	// Duplicated rows come from the original positives.
	for i, y := range out.Y {
		if y == 1 && out.X[i][0] < 1000 {
			t.Fatal("upsampled positive has a negative's feature value")
		}
	}
}

func TestDownSamplingBalances(t *testing.T) {
	d := imbalanced(t)
	out, err := Apply(d, DownSampling, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := classCounts(out)
	if pos != 10 || neg != 10 {
		t.Errorf("downsampled classes %d/%d, want 10/10", pos, neg)
	}
}

func TestWeightedInstanceBalancesMass(t *testing.T) {
	d := imbalanced(t)
	out, err := Apply(d, WeightedInstance, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumInstances() != d.NumInstances() {
		t.Error("weighting should not resample")
	}
	var posMass, negMass, total float64
	for i, y := range out.Y {
		w := out.W[i]
		total += w
		if y == 1 {
			posMass += w
		} else {
			negMass += w
		}
	}
	if math.Abs(posMass-negMass) > 1e-9 {
		t.Errorf("class masses %g vs %g, want equal", posMass, negMass)
	}
	if math.Abs(total-float64(d.NumInstances())) > 1e-9 {
		t.Errorf("total weight %g, want n=%d", total, d.NumInstances())
	}
	if d.W != nil {
		t.Error("WeightedInstance mutated the source dataset's weights")
	}
}

func TestApplySingleClassError(t *testing.T) {
	d := dataset.New([]string{"x"})
	d.Add([]float64{1}, 0)
	for _, m := range Methods() {
		if _, err := Apply(d, m, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%v: want error for single-class data", m)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	want := []string{"Not Balanced", "Up Sampling", "Down Sampling", "Weighted Instance"}
	for i, m := range Methods() {
		if m.String() != want[i] {
			t.Errorf("Methods()[%d] = %q, want %q", i, m.String(), want[i])
		}
	}
}

func TestApplyUnknownMethod(t *testing.T) {
	if _, err := Apply(imbalanced(t), Method(99), rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for unknown method")
	}
}

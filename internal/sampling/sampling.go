// Package sampling implements the four class-imbalance treatments compared
// in Table 7: Not Balanced, Up Sampling, Down Sampling and Weighted
// Instance. All operate on binary-labeled datasets where class 1 (churner)
// is the minority.
package sampling

import (
	"errors"
	"fmt"
	"math/rand"

	"telcochurn/internal/dataset"
)

// Method enumerates the imbalance treatments.
type Method int

const (
	// methodUnset is the zero value, distinct from every real method so a
	// zero core.Config field means "use the default" rather than
	// NotBalanced.
	methodUnset Method = iota
	// NotBalanced trains on the data as-is.
	NotBalanced
	// UpSampling randomly duplicates minority instances until the classes
	// are balanced.
	UpSampling
	// DownSampling randomly drops majority instances until the classes are
	// balanced.
	DownSampling
	// WeightedInstance assigns each instance a weight inversely proportional
	// to its class frequency (the paper's winner).
	WeightedInstance
)

// String returns the paper's row label for the method.
func (m Method) String() string {
	switch m {
	case NotBalanced:
		return "Not Balanced"
	case UpSampling:
		return "Up Sampling"
	case DownSampling:
		return "Down Sampling"
	case WeightedInstance:
		return "Weighted Instance"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all four in the paper's Table 7 order.
func Methods() []Method {
	return []Method{NotBalanced, UpSampling, DownSampling, WeightedInstance}
}

// Apply returns a dataset prepared with the given method. NotBalanced and
// WeightedInstance share rows with d (WeightedInstance sets d's weight
// vector on a shallow copy); the samplers return resampled datasets.
func Apply(d *dataset.Dataset, m Method, rng *rand.Rand) (*dataset.Dataset, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	pos, neg := classIndices(d)
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("sampling: need both classes present")
	}
	switch m {
	case NotBalanced:
		return d, nil
	case UpSampling:
		idx := append(append([]int(nil), pos...), neg...)
		for len(idx) < 2*len(neg) {
			idx = append(idx, pos[rng.Intn(len(pos))])
		}
		return d.Subset(idx), nil
	case DownSampling:
		perm := rng.Perm(len(neg))
		idx := append([]int(nil), pos...)
		for i := 0; i < len(pos) && i < len(neg); i++ {
			idx = append(idx, neg[perm[i]])
		}
		return d.Subset(idx), nil
	case WeightedInstance:
		out := &dataset.Dataset{
			FeatureNames: d.FeatureNames,
			X:            d.X,
			Y:            d.Y,
			W:            make([]float64, d.NumInstances()),
		}
		// Class weight = n / (2 * n_class): weights average 1 and the two
		// classes contribute equal total mass.
		n := float64(d.NumInstances())
		wPos := n / (2 * float64(len(pos)))
		wNeg := n / (2 * float64(len(neg)))
		for i, y := range d.Y {
			if y == 1 {
				out.W[i] = wPos
			} else {
				out.W[i] = wNeg
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sampling: unknown method %v", m)
	}
}

func classIndices(d *dataset.Dataset) (pos, neg []int) {
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	return pos, neg
}

// Vectorized execution machinery shared by the engine's operators.
//
// The two building blocks are the group index — a dense, ascending-key
// group-id assignment that replaces per-group row-slice buckets — and typed
// bulk gathers that replace per-cell appends. Both are deterministic by
// construction: the group index depends only on the input rows (never on
// scheduling), every float aggregate is accumulated per group in row order by
// exactly one task, and gathers are pure scatters by precomputed index. The
// operators built on top are therefore bit-identical for any Exec.Workers
// setting (DESIGN §6, §9).
package table

import (
	"math"
	"sort"

	"telcochurn/internal/parallel"
)

// Exec carries execution options for the vectorized operators (GroupByExec,
// GroupByWhereExec, HashJoinExec). Workers caps the goroutines one operator
// call may use; 0 means GOMAXPROCS. The plain wrappers (GroupBy, HashJoin,
// ...) run with Workers=1 because the feature pipeline already fans out
// across whole operator calls (DESIGN §6) — results are identical either
// way, only scheduling changes.
type Exec struct {
	Workers int
}

// groupGrain is how many groups one parallel task claims during an
// aggregation pass: large enough to amortize scheduling, small enough to
// balance skewed group sizes. Grain never affects results.
const groupGrain = 128

// groupIndex is the dense group assignment computed once per GroupBy call
// and shared by every aggregation pass: the distinct keys in ascending
// order, plus the kept row indices regrouped key by key with the original
// row order preserved inside each group. Per-group row order matching the
// input is what keeps float sums bit-identical to a row-at-a-time
// aggregation (see DESIGN §9).
type groupIndex struct {
	keys  []int64 // distinct key values, ascending
	start []int32 // group g owns rows perm[start[g]:start[g+1]]; len(keys)+1 entries
	perm  []int32 // kept row indices grouped by key; nil = identity (sorted, unfiltered input)
}

func (gi *groupIndex) groups() int { return len(gi.keys) }

// row resolves position j of the grouped order to a source row index.
func (gi *groupIndex) row(j int32) int32 {
	if gi.perm == nil {
		return j
	}
	return gi.perm[j]
}

// buildGroupIndex assigns dense group ids over the key column, optionally
// fused with a row predicate (pred == nil keeps every row). The predicate is
// evaluated exactly once per row. Already-sorted keys — the common case for
// monthly per-IMSI tables — skip the hash map entirely and, when unfiltered,
// skip the permutation array too.
func buildGroupIndex(keys []int64, pred func(int) bool) groupIndex {
	var kept []int32
	keptKeys := keys
	if pred != nil {
		kept = make([]int32, 0, len(keys))
		for i := range keys {
			if pred(i) {
				kept = append(kept, int32(i))
			}
		}
		keptKeys = make([]int64, len(kept))
		for j, r := range kept {
			keptKeys[j] = keys[r]
		}
	}
	if int64sSorted(keptKeys) {
		return runsIndex(keptKeys, kept)
	}
	return hashIndex(keptKeys, kept)
}

func int64sSorted(keys []int64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// runsIndex is the sorted fast path: group boundaries are the key-change
// positions, first-occurrence order is already ascending, and the kept rows
// are already grouped, so the permutation is the kept list itself (nil =
// identity when nothing was filtered).
func runsIndex(keptKeys []int64, kept []int32) groupIndex {
	gi := groupIndex{perm: kept}
	for j, k := range keptKeys {
		if j == 0 || k != keptKeys[j-1] {
			gi.keys = append(gi.keys, k)
			gi.start = append(gi.start, int32(j))
		}
	}
	gi.start = append(gi.start, int32(len(keptKeys)))
	return gi
}

// hashIndex is the general path: first-occurrence dense ids via one hash
// pass, an ascending-key remap over the (few) distinct keys, then a counting
// scatter that regroups the kept rows — no per-group slices, no resizing.
func hashIndex(keptKeys []int64, kept []int32) groupIndex {
	ids := make(map[int64]int32, 64)
	gid := make([]int32, len(keptKeys))
	var first []int64 // key per first-occurrence id
	for j, k := range keptKeys {
		id, ok := ids[k]
		if !ok {
			id = int32(len(first))
			ids[k] = id
			first = append(first, k)
		}
		gid[j] = id
	}
	ng := len(first)

	// Remap first-occurrence ids to ascending-key order.
	byKey := make([]int32, ng)
	for i := range byKey {
		byKey[i] = int32(i)
	}
	sort.Slice(byKey, func(a, b int) bool { return first[byKey[a]] < first[byKey[b]] })
	remap := make([]int32, ng)
	keysAsc := make([]int64, ng)
	for newID, oldID := range byKey {
		remap[oldID] = int32(newID)
		keysAsc[newID] = first[oldID]
	}

	// Count group sizes, prefix-sum into offsets, then scatter the kept rows
	// stably (input order within each group is preserved).
	start := make([]int32, ng+1)
	for _, id := range gid {
		start[remap[id]+1]++
	}
	for g := 0; g < ng; g++ {
		start[g+1] += start[g]
	}
	cursor := append([]int32(nil), start[:ng]...)
	perm := make([]int32, len(keptKeys))
	for j, id := range gid {
		g := remap[id]
		row := int32(j)
		if kept != nil {
			row = kept[j]
		}
		perm[cursor[g]] = row
		cursor[g]++
	}
	return groupIndex{keys: keysAsc, start: start, perm: perm}
}

// forGroups runs fn over every group's [lo, hi) position range, parallel
// across groups. Each group is handled by exactly one invocation, so
// order-sensitive per-group reductions stay deterministic for any worker
// count.
func forGroups(workers int, gi *groupIndex, fn func(g int, lo, hi int32)) {
	parallel.ForGrain(workers, gi.groups(), groupGrain, func(g int) {
		fn(g, gi.start[g], gi.start[g+1])
	})
}

// sumRange accumulates vals over one group's position range in row order —
// the same addition order as a row-at-a-time scan of the group.
func sumRange(vals []float64, gi *groupIndex, lo, hi int32) float64 {
	s := 0.0
	if gi.perm == nil {
		for r := lo; r < hi; r++ {
			s += vals[r]
		}
		return s
	}
	for _, r := range gi.perm[lo:hi] {
		s += vals[r]
	}
	return s
}

// sumRangeInt is sumRange over an Int64 column with the engine's float
// coercion (each value converted, then added, matching Column.Float).
func sumRangeInt(vals []int64, gi *groupIndex, lo, hi int32) float64 {
	s := 0.0
	if gi.perm == nil {
		for r := lo; r < hi; r++ {
			s += float64(vals[r])
		}
		return s
	}
	for _, r := range gi.perm[lo:hi] {
		s += float64(vals[r])
	}
	return s
}

// minMaxRange folds one group's range with the engine's min/max semantics
// (strict < / > against an infinity seed, so NaNs never win).
func minMaxRange(vals []float64, gi *groupIndex, lo, hi int32, max bool) float64 {
	m := math.Inf(1)
	if max {
		m = math.Inf(-1)
	}
	step := func(v float64) {
		if max {
			if v > m {
				m = v
			}
		} else if v < m {
			m = v
		}
	}
	if gi.perm == nil {
		for r := lo; r < hi; r++ {
			step(vals[r])
		}
	} else {
		for _, r := range gi.perm[lo:hi] {
			step(vals[r])
		}
	}
	return m
}

func minMaxRangeInt(vals []int64, gi *groupIndex, lo, hi int32, max bool) float64 {
	m := math.Inf(1)
	if max {
		m = math.Inf(-1)
	}
	step := func(v float64) {
		if max {
			if v > m {
				m = v
			}
		} else if v < m {
			m = v
		}
	}
	if gi.perm == nil {
		for r := lo; r < hi; r++ {
			step(float64(vals[r]))
		}
	} else {
		for _, r := range gi.perm[lo:hi] {
			step(float64(vals[r]))
		}
	}
	return m
}

// rowIndex is the index element type accepted by the gather kernels.
type rowIndex interface{ ~int | ~int32 }

// gatherSlice bulk-copies src values at the given row indices into a fresh
// exactly-sized slice.
func gatherSlice[T any, I rowIndex](src []T, idx []I) []T {
	out := make([]T, len(idx))
	for j, r := range idx {
		out[j] = src[r]
	}
	return out
}

// gatherSliceZero is gatherSlice where a negative row index yields T's zero
// value — the engine's NULL substitute for a LeftJoin's unmatched rows.
func gatherSliceZero[T any, I rowIndex](src []T, idx []I) []T {
	out := make([]T, len(idx))
	for j, r := range idx {
		if r >= 0 {
			out[j] = src[r]
		}
	}
	return out
}

// gatherInto fills dst (same type as src) with one typed bulk gather.
// zeroNeg enables the negative-index zero fill.
func gatherInto[I rowIndex](dst, src *Column, idx []I, zeroNeg bool) {
	switch src.Type {
	case Int64:
		if zeroNeg {
			dst.Ints = gatherSliceZero(src.Ints, idx)
		} else {
			dst.Ints = gatherSlice(src.Ints, idx)
		}
	case Float64:
		if zeroNeg {
			dst.Floats = gatherSliceZero(src.Floats, idx)
		} else {
			dst.Floats = gatherSlice(src.Floats, idx)
		}
	default:
		if zeroNeg {
			dst.Strings = gatherSliceZero(src.Strings, idx)
		} else {
			dst.Strings = gatherSlice(src.Strings, idx)
		}
	}
}

package table

// The pre-vectorization row-at-a-time operators, retained verbatim as test
// reference implementations (the internal/tree legacy_test.go pattern):
// equality and property tests assert the vectorized engine matches them cell
// for cell on arbitrary tables.

import (
	"fmt"
	"math"
	"sort"
)

// appendFrom appends value at row i of src (same type) onto c.
func (c *Column) appendFrom(src *Column, i int) {
	switch c.Type {
	case Int64:
		c.Ints = append(c.Ints, src.Ints[i])
	case Float64:
		c.Floats = append(c.Floats, src.Floats[i])
	default:
		c.Strings = append(c.Strings, src.Strings[i])
	}
}

// appendRowFrom appends row i of src (same schema) to t.
func (t *Table) appendRowFrom(src *Table, i int) {
	for c := range t.Cols {
		t.Cols[c].appendFrom(src.Cols[c], i)
	}
}

// legacyFloat is the old Column.Float, with the silent NaN for strings.
func legacyFloat(c *Column, i int) float64 {
	switch c.Type {
	case Int64:
		return float64(c.Ints[i])
	case Float64:
		return c.Floats[i]
	default:
		return math.NaN()
	}
}

// legacyFilter is the old row-at-a-time Table.Filter.
func legacyFilter(t *Table, keep func(row int) bool) *Table {
	out := NewTable(t.Schema)
	n := t.NumRows()
	for i := 0; i < n; i++ {
		if keep(i) {
			out.appendRowFrom(t, i)
		}
	}
	return out
}

// legacyTake is the old row-at-a-time Table.Take.
func legacyTake(t *Table, indices []int) *Table {
	out := NewTable(t.Schema)
	for _, i := range indices {
		out.appendRowFrom(t, i)
	}
	return out
}

// legacyGroupBy is the old bucket-map group-by: row indices bucketed into
// map[int64][]int, keys sorted, then per-group per-value aggregation.
func legacyGroupBy(t *Table, key string, aggs ...Agg) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: group-by unknown key %q", key)
	}
	if t.Schema.Fields[ki].Type != Int64 {
		return nil, fmt.Errorf("table: group-by key %q must be BIGINT", key)
	}

	refs := make([]*Column, len(aggs))
	fields := []Field{{Name: key, Type: Int64}}
	for i, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("table: aggregation %d has empty output name", i)
		}
		outType := Float64
		if a.Func != Count {
			ci := t.Schema.Index(a.Col)
			if ci < 0 {
				return nil, fmt.Errorf("table: aggregation on unknown column %q", a.Col)
			}
			c := t.Cols[ci]
			if a.Func == First && c.Type == String {
				outType = String
			} else if a.Func == First && c.Type == Int64 {
				outType = Int64
			} else if c.Type == String && a.Func != CountDistinct {
				return nil, fmt.Errorf("table: %s on string column %q", a.Func, a.Col)
			}
			refs[i] = c
		}
		fields = append(fields, Field{Name: a.As, Type: outType})
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}

	keys := t.Cols[ki].Ints
	groups := make(map[int64][]int)
	order := make([]int64, 0)
	for i, k := range keys {
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	out := NewTable(schema)
	for _, k := range order {
		rows := groups[k]
		out.Cols[0].AppendInt(k)
		for ai, a := range aggs {
			dst := out.Cols[ai+1]
			src := refs[ai]
			switch a.Func {
			case Count:
				dst.AppendFloat(float64(len(rows)))
			case First:
				dst.appendFrom(src, rows[0])
			case CountDistinct:
				dst.AppendFloat(float64(legacyCountDistinct(src, rows)))
			case Sum:
				s := 0.0
				for _, r := range rows {
					s += legacyFloat(src, r)
				}
				dst.AppendFloat(s)
			case Mean:
				s := 0.0
				for _, r := range rows {
					s += legacyFloat(src, r)
				}
				dst.AppendFloat(s / float64(len(rows)))
			case Min:
				m := math.Inf(1)
				for _, r := range rows {
					if v := legacyFloat(src, r); v < m {
						m = v
					}
				}
				dst.AppendFloat(m)
			case Max:
				m := math.Inf(-1)
				for _, r := range rows {
					if v := legacyFloat(src, r); v > m {
						m = v
					}
				}
				dst.AppendFloat(m)
			default:
				return nil, fmt.Errorf("table: unsupported aggregation %v", a.Func)
			}
		}
	}
	return out, nil
}

func legacyCountDistinct(c *Column, rows []int) int {
	switch c.Type {
	case Int64:
		seen := make(map[int64]struct{}, len(rows))
		for _, r := range rows {
			seen[c.Ints[r]] = struct{}{}
		}
		return len(seen)
	case Float64:
		seen := make(map[float64]struct{}, len(rows))
		for _, r := range rows {
			seen[c.Floats[r]] = struct{}{}
		}
		return len(seen)
	default:
		seen := make(map[string]struct{}, len(rows))
		for _, r := range rows {
			seen[c.Strings[r]] = struct{}{}
		}
		return len(seen)
	}
}

// legacyHashJoin is the old per-cell append join.
func legacyHashJoin(left, right *Table, key string, kind JoinKind) (*Table, error) {
	lk := left.Schema.Index(key)
	rk := right.Schema.Index(key)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("table: join key %q missing (left=%v right=%v)", key, lk >= 0, rk >= 0)
	}
	if left.Schema.Fields[lk].Type != Int64 || right.Schema.Fields[rk].Type != Int64 {
		return nil, fmt.Errorf("table: join key %q must be BIGINT on both sides", key)
	}

	fields := append([]Field(nil), left.Schema.Fields...)
	rightOut := make([]int, 0, right.Schema.Len()-1)
	for i, f := range right.Schema.Fields {
		if i == rk {
			continue
		}
		name := f.Name
		if left.Schema.Has(name) {
			name += "_r"
		}
		fields = append(fields, Field{Name: name, Type: f.Type})
		rightOut = append(rightOut, i)
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := NewTable(schema)

	rightKeys := right.Cols[rk].Ints
	index := make(map[int64][]int, len(rightKeys))
	for i, k := range rightKeys {
		index[k] = append(index[k], i)
	}

	leftKeys := left.Cols[lk].Ints
	nl := left.Schema.Len()
	for i, k := range leftKeys {
		matches := index[k]
		if len(matches) == 0 {
			if kind == LeftJoin {
				for c := 0; c < nl; c++ {
					out.Cols[c].appendFrom(left.Cols[c], i)
				}
				for j, rc := range rightOut {
					legacyAppendZero(out.Cols[nl+j], right.Cols[rc].Type)
				}
			}
			continue
		}
		for _, m := range matches {
			for c := 0; c < nl; c++ {
				out.Cols[c].appendFrom(left.Cols[c], i)
			}
			for j, rc := range rightOut {
				out.Cols[nl+j].appendFrom(right.Cols[rc], m)
			}
		}
	}
	return out, nil
}

func legacyAppendZero(c *Column, t ColType) {
	switch t {
	case Int64:
		c.AppendInt(0)
	case Float64:
		c.AppendFloat(0)
	default:
		c.AppendString("")
	}
}

package table

// Property tests: the vectorized operators must equal the retained
// row-at-a-time references cell for cell — and for floats bit for bit — on
// random tables covering random key cardinality, duplicate keys, unmatched
// join keys, groups emptied by the fused predicate, and all three column
// types. Plus the determinism contract: Workers=1 and Workers=8 produce
// bit-identical output.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randTable builds a table with Int64 key/aux, Float64 and String columns.
// Key cardinality is drawn from [1, 12] so duplicates, singleton groups and
// (under a predicate) emptied groups all occur; n may be 0.
func randTable(rng *rand.Rand) *Table {
	tb := NewTable(MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "aux", Type: Int64},
		Field{Name: "dur", Type: Float64},
		Field{Name: "cell", Type: String},
	))
	n := rng.Intn(300)
	card := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		tb.AppendRow(
			int64(rng.Intn(card)),
			int64(rng.Intn(4)),
			rng.NormFloat64(),
			fmt.Sprintf("c%d", rng.Intn(5)),
		)
	}
	return tb
}

// tablesEqual reports whether two tables agree on schema and every cell.
// Floats compare by bit pattern, so it rejects -0 vs 0 and reordered
// accumulation, not just large drift.
func tablesEqual(a, b *Table) error {
	if !a.Schema.Equal(b.Schema) {
		return fmt.Errorf("schema %s vs %s", a.Schema, b.Schema)
	}
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	for c := range a.Cols {
		ca, cb := a.Cols[c], b.Cols[c]
		name := a.Schema.Fields[c].Name
		for i := 0; i < a.NumRows(); i++ {
			switch ca.Type {
			case Int64:
				if ca.Ints[i] != cb.Ints[i] {
					return fmt.Errorf("%s[%d]: %d vs %d", name, i, ca.Ints[i], cb.Ints[i])
				}
			case Float64:
				if math.Float64bits(ca.Floats[i]) != math.Float64bits(cb.Floats[i]) {
					return fmt.Errorf("%s[%d]: %v vs %v (bits differ)", name, i, ca.Floats[i], cb.Floats[i])
				}
			default:
				if ca.Strings[i] != cb.Strings[i] {
					return fmt.Errorf("%s[%d]: %q vs %q", name, i, ca.Strings[i], cb.Strings[i])
				}
			}
		}
	}
	return nil
}

// allAggs exercises every AggFunc, with typed sources for each.
func allAggs() []Agg {
	return []Agg{
		{Func: Count, As: "n"},
		{Col: "dur", Func: Sum, As: "dur_sum"},
		{Col: "dur", Func: Mean, As: "dur_mean"},
		{Col: "dur", Func: Min, As: "dur_min"},
		{Col: "dur", Func: Max, As: "dur_max"},
		{Col: "aux", Func: Sum, As: "aux_sum"},
		{Col: "aux", Func: Min, As: "aux_min"},
		{Col: "aux", Func: First, As: "aux_first"},
		{Col: "cell", Func: First, As: "cell_first"},
		{Col: "cell", Func: CountDistinct, As: "cells"},
		{Col: "aux", Func: CountDistinct, As: "auxes"},
		{Col: "dur", Func: CountDistinct, As: "durs"},
	}
}

func TestGroupByMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng)
		got, err := GroupBy(tb, "imsi", allAggs()...)
		if err != nil {
			t.Fatalf("GroupBy: %v", err)
		}
		want, err := legacyGroupBy(tb, "imsi", allAggs()...)
		if err != nil {
			t.Fatalf("legacyGroupBy: %v", err)
		}
		if err := tablesEqual(got, want); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGroupBySortedFastPathMatchesLegacy pins the presorted-key fast path
// (runsIndex) against the reference, since random tables rarely arrive sorted.
func TestGroupBySortedFastPathMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng)
		sorted, err := SortByInt(tb, "imsi")
		if err != nil {
			t.Fatal(err)
		}
		got, err := GroupBy(sorted, "imsi", allAggs()...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacyGroupBy(sorted, "imsi", allAggs()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := tablesEqual(got, want); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGroupByWhereMatchesFilterThenGroupBy: the fused operator must produce
// exactly what the unfused legacy pipeline produces, including dropping
// groups whose rows all fail the predicate.
func TestGroupByWhereMatchesFilterThenGroupBy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng)
		durs := tb.MustCol("dur").Floats
		cut := rng.NormFloat64()
		pred := func(i int) bool { return durs[i] < cut }
		got, err := GroupByWhere(tb, "imsi", pred, allAggs()...)
		if err != nil {
			t.Fatalf("GroupByWhere: %v", err)
		}
		want, err := legacyGroupBy(legacyFilter(tb, pred), "imsi", allAggs()...)
		if err != nil {
			t.Fatalf("legacyGroupBy: %v", err)
		}
		if err := tablesEqual(got, want); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHashJoinMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left := randTable(rng)
		// Right side: overlapping but not identical key range, so matched,
		// unmatched and duplicate right keys all occur. Shares the "dur" and
		// "cell" names to exercise the "_r" collision suffix.
		right := NewTable(MustSchema(
			Field{Name: "imsi", Type: Int64},
			Field{Name: "dur", Type: Float64},
			Field{Name: "cell", Type: String},
			Field{Name: "plan", Type: Int64},
		))
		nr := rng.Intn(60)
		for i := 0; i < nr; i++ {
			right.AppendRow(
				int64(rng.Intn(16)-2), // keys in [-2, 13]: some never match
				rng.NormFloat64(),
				fmt.Sprintf("r%d", rng.Intn(3)),
				int64(rng.Intn(5)),
			)
		}
		for _, kind := range []JoinKind{InnerJoin, LeftJoin} {
			got, err := HashJoin(left, right, "imsi", kind)
			if err != nil {
				t.Fatalf("HashJoin: %v", err)
			}
			want, err := legacyHashJoin(left, right, "imsi", kind)
			if err != nil {
				t.Fatalf("legacyHashJoin: %v", err)
			}
			if err := tablesEqual(got, want); err != nil {
				t.Logf("seed %d kind %v: %v", seed, kind, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFilterTakeMatchLegacy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng)
		durs := tb.MustCol("dur").Floats
		pred := func(i int) bool { return durs[i] >= 0 }
		if err := tablesEqual(tb.Filter(pred), legacyFilter(tb, pred)); err != nil {
			t.Logf("seed %d Filter: %v", seed, err)
			return false
		}
		var idx []int
		for i := tb.NumRows() - 1; i >= 0; i -= 2 { // out of order, with gaps
			idx = append(idx, i)
		}
		if err := tablesEqual(tb.Take(idx), legacyTake(tb, idx)); err != nil {
			t.Logf("seed %d Take: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGroupByWorkerCountBitIdentity: GroupBy/GroupByWhere output is
// bit-identical for Workers=1 vs Workers=8 (DESIGN §6: worker count tunes
// speed, never results). Each group's floats are accumulated in row order by
// exactly one task, so parallelism across groups cannot reassociate sums.
func TestGroupByWorkerCountBitIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng)
		durs := tb.MustCol("dur").Floats
		pred := func(i int) bool { return durs[i] < 0.3 }

		g1, err := GroupByExec(tb, "imsi", Exec{Workers: 1}, allAggs()...)
		if err != nil {
			t.Fatal(err)
		}
		g8, err := GroupByExec(tb, "imsi", Exec{Workers: 8}, allAggs()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := tablesEqual(g1, g8); err != nil {
			t.Logf("seed %d GroupByExec 1 vs 8: %v", seed, err)
			return false
		}

		w1, err := GroupByWhereExec(tb, "imsi", pred, Exec{Workers: 1}, allAggs()...)
		if err != nil {
			t.Fatal(err)
		}
		w8, err := GroupByWhereExec(tb, "imsi", pred, Exec{Workers: 8}, allAggs()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := tablesEqual(w1, w8); err != nil {
			t.Logf("seed %d GroupByWhereExec 1 vs 8: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHashJoinWorkerCountBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	left := randTable(rng)
	right := randTable(rng)
	for _, kind := range []JoinKind{InnerJoin, LeftJoin} {
		j1, err := HashJoinExec(left, right, "imsi", kind, Exec{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		j8, err := HashJoinExec(left, right, "imsi", kind, Exec{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := tablesEqual(j1, j8); err != nil {
			t.Errorf("kind %v: %v", kind, err)
		}
	}
}

// TestGroupByErrorsMatchLegacy pins the validation behavior to the legacy
// messages so callers' error handling is unaffected by the rewrite.
func TestGroupByErrorsMatchLegacy(t *testing.T) {
	tb := randTable(rand.New(rand.NewSource(1)))
	cases := []struct {
		key  string
		aggs []Agg
	}{
		{"nope", []Agg{{Func: Count, As: "n"}}},
		{"dur", []Agg{{Func: Count, As: "n"}}},
		{"imsi", []Agg{{Func: Count, As: ""}}},
		{"imsi", []Agg{{Col: "nope", Func: Sum, As: "s"}}},
		{"imsi", []Agg{{Col: "cell", Func: Sum, As: "s"}}},
	}
	for _, c := range cases {
		_, gotErr := GroupBy(tb, c.key, c.aggs...)
		_, wantErr := legacyGroupBy(tb, c.key, c.aggs...)
		if gotErr == nil || wantErr == nil {
			t.Fatalf("case %v: expected errors, got %v / %v", c, gotErr, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("case %v: error %q, legacy %q", c, gotErr, wantErr)
		}
	}
}

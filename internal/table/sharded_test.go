package table

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomEvents builds an event table with repeated customer keys, the shape
// of every per-customer aggregation in the wide-table build.
func randomEvents(seed int64, rows, customers int) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := NewTable(MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "dur", Type: Float64},
		Field{Name: "cell", Type: Int64},
	))
	for i := 0; i < rows; i++ {
		t.Cols[0].AppendInt(int64(rng.Intn(customers)) + 1000)
		t.Cols[1].AppendFloat(rng.Float64() * 100)
		t.Cols[2].AppendInt(int64(rng.Intn(7)))
	}
	return t
}

func concat(t *testing.T, parts []*Table) *Table {
	t.Helper()
	out := NewTable(parts[0].Schema)
	for _, p := range parts {
		if err := out.AppendTable(p); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func tablesBitIdentical(t *testing.T, a, b *Table) {
	t.Helper()
	if !a.Schema.Equal(b.Schema) {
		t.Fatalf("schema %s vs %s", a.Schema, b.Schema)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	for c := range a.Cols {
		ca, cb := a.Cols[c], b.Cols[c]
		switch ca.Type {
		case Int64:
			if !reflect.DeepEqual(ca.Ints, cb.Ints) {
				t.Fatalf("column %q differs", a.Schema.Fields[c].Name)
			}
		case Float64:
			for i := range ca.Floats {
				if math.Float64bits(ca.Floats[i]) != math.Float64bits(cb.Floats[i]) {
					t.Fatalf("column %q row %d: %v vs %v (not bit-identical)",
						a.Schema.Fields[c].Name, i, ca.Floats[i], cb.Floats[i])
				}
			}
		default:
			if !reflect.DeepEqual(ca.Strings, cb.Strings) {
				t.Fatalf("column %q differs", a.Schema.Fields[c].Name)
			}
		}
	}
}

func TestPartitionByHashPreservesRowsAndOrder(t *testing.T) {
	src := randomEvents(1, 500, 40)
	for _, shards := range []int{1, 3, 8} {
		parts, err := PartitionByHash(src, "imsi", shards)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for s, p := range parts {
			keys := p.MustCol("imsi").Ints
			for _, k := range keys {
				if ShardOf(k, shards) != s {
					t.Fatalf("key %d in part %d of %d", k, s, shards)
				}
			}
			total += p.NumRows()
		}
		if total != src.NumRows() {
			t.Fatalf("parts hold %d rows, want %d", total, src.NumRows())
		}
		// Row order within each part must match source order: per-key
		// subsequences are what keeps shard-local float sums bit-identical.
		for _, p := range parts {
			pos := -1
			ids := p.MustCol("imsi").Ints
			durs := p.MustCol("dur").Floats
			srcIDs := src.MustCol("imsi").Ints
			srcDurs := src.MustCol("dur").Floats
			for i := range ids {
				found := false
				for j := pos + 1; j < len(srcIDs); j++ {
					if srcIDs[j] == ids[i] && math.Float64bits(srcDurs[j]) == math.Float64bits(durs[i]) {
						pos = j
						found = true
						break
					}
				}
				if !found {
					t.Fatal("part rows are not an ordered subsequence of the source")
				}
			}
		}
	}
}

func TestGroupByShardsMatchesGroupByBitwise(t *testing.T) {
	src := randomEvents(2, 2000, 64)
	aggs := []Agg{
		{Col: "dur", Func: Sum, As: "dur_sum"},
		{Col: "dur", Func: Count, As: "n"},
		{Col: "dur", Func: Mean, As: "dur_avg"},
		{Col: "dur", Func: Min, As: "dur_min"},
		{Col: "dur", Func: Max, As: "dur_max"},
		{Col: "cell", Func: First, As: "first_cell"},
		{Col: "cell", Func: CountDistinct, As: "cells"},
	}
	want, err := GroupBy(src, "imsi", aggs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 16} {
		parts, err := PartitionByHash(src, "imsi", shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			got, err := GroupByShards(parts, "imsi", Exec{Workers: workers}, aggs...)
			if err != nil {
				t.Fatal(err)
			}
			tablesBitIdentical(t, want, got)
		}
	}
}

func TestGroupByShardsCountDistinctRejectsOverlap(t *testing.T) {
	a := randomEvents(3, 100, 10)
	b := randomEvents(4, 100, 10) // same key space: overlapping keys
	_, err := GroupByShards([]*Table{a, b}, "imsi", Exec{Workers: 1},
		Agg{Col: "cell", Func: CountDistinct, As: "cells"})
	if err == nil {
		t.Fatal("COUNT_DISTINCT over overlapping shards accepted")
	}
	// Mergeable aggregates still work over overlapping parts.
	got, err := GroupByShards([]*Table{a, b}, "imsi", Exec{Workers: 1},
		Agg{Col: "dur", Func: Sum, As: "dur_sum"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := GroupBy(concat(t, []*Table{a, b}), "imsi", Agg{Col: "dur", Func: Sum, As: "dur_sum"})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("merged groups %d, want %d", got.NumRows(), want.NumRows())
	}
	// Overlapping parts merge partial sums, so equality is numeric, not
	// bitwise — the bit-identity contract only covers key-disjoint parts
	// (TestGroupByShardsMatchesGroupByBitwise).
	for i := range want.Cols[1].Floats {
		if math.Abs(want.Cols[1].Floats[i]-got.Cols[1].Floats[i]) > 1e-9 {
			t.Fatalf("row %d: merged sum %v, want %v", i, got.Cols[1].Floats[i], want.Cols[1].Floats[i])
		}
	}
}

func TestHashJoinShardsMatchesHashJoin(t *testing.T) {
	left := randomEvents(5, 800, 50)
	right, err := GroupBy(randomEvents(6, 400, 60), "imsi",
		Agg{Col: "dur", Func: Sum, As: "r_sum"})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []JoinKind{InnerJoin, LeftJoin} {
		want, err := HashJoin(left, right, "imsi", kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4} {
			lp, err := PartitionByHash(left, "imsi", shards)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := PartitionByHash(right, "imsi", shards)
			if err != nil {
				t.Fatal(err)
			}
			got, err := HashJoinShards(lp, rp, "imsi", kind, Exec{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Same rows, shard-major order: compare sorted by (imsi, dur).
			sg, err := SortByInt(got, "imsi")
			if err != nil {
				t.Fatal(err)
			}
			sw, err := SortByInt(want, "imsi")
			if err != nil {
				t.Fatal(err)
			}
			if sg.NumRows() != sw.NumRows() {
				t.Fatalf("join rows %d, want %d", sg.NumRows(), sw.NumRows())
			}
			sumCol := func(tb *Table, name string) float64 {
				var s float64
				for _, v := range tb.MustCol(name).Floats {
					s += v
				}
				return s
			}
			for _, col := range []string{"dur", "r_sum"} {
				if math.Abs(sumCol(sg, col)-sumCol(sw, col)) > 1e-6 {
					t.Fatalf("join column %q content differs", col)
				}
			}
		}
	}
}

package table

import (
	"fmt"
)

// JoinKind selects the join semantics.
type JoinKind int

const (
	// InnerJoin keeps only rows with a match on both sides.
	InnerJoin JoinKind = iota
	// LeftJoin keeps every left row; unmatched right columns get zero values
	// (0, 0.0, "") — the engine has no NULL, matching how the paper's wide
	// table treats absent activity as zero usage.
	LeftJoin
)

// HashJoin joins left and right on equality of the named Int64 key column,
// which must exist on both sides (e.g. IMSI, the paper's universal join
// key). The result schema is left's fields followed by right's fields minus
// the key. Right-side columns whose names collide with left-side names are
// suffixed "_r".
//
// The right side is hashed; rows stream from the left, so put the smaller
// table on the right. Right-side duplicates multiply, as in SQL.
func HashJoin(left, right *Table, key string, kind JoinKind) (*Table, error) {
	lk := left.Schema.Index(key)
	rk := right.Schema.Index(key)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("table: join key %q missing (left=%v right=%v)", key, lk >= 0, rk >= 0)
	}
	if left.Schema.Fields[lk].Type != Int64 || right.Schema.Fields[rk].Type != Int64 {
		return nil, fmt.Errorf("table: join key %q must be BIGINT on both sides", key)
	}

	// Output schema: all left fields, then right fields except the key.
	fields := append([]Field(nil), left.Schema.Fields...)
	rightOut := make([]int, 0, right.Schema.Len()-1) // right column indices emitted
	for i, f := range right.Schema.Fields {
		if i == rk {
			continue
		}
		name := f.Name
		if left.Schema.Has(name) {
			name += "_r"
		}
		fields = append(fields, Field{Name: name, Type: f.Type})
		rightOut = append(rightOut, i)
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := NewTable(schema)

	// Build hash table over right keys.
	rightKeys := right.Cols[rk].Ints
	index := make(map[int64][]int, len(rightKeys))
	for i, k := range rightKeys {
		index[k] = append(index[k], i)
	}

	leftKeys := left.Cols[lk].Ints

	// Pre-count the output cardinality (sum of match multiplicities, plus
	// unmatched left rows for LeftJoin) so every column allocates once.
	nOut := 0
	for _, k := range leftKeys {
		if n := len(index[k]); n > 0 {
			nOut += n
		} else if kind == LeftJoin {
			nOut++
		}
	}
	out.Grow(nOut)

	nl := left.Schema.Len()
	for i, k := range leftKeys {
		matches := index[k]
		if len(matches) == 0 {
			if kind == LeftJoin {
				for c := 0; c < nl; c++ {
					out.Cols[c].appendFrom(left.Cols[c], i)
				}
				for j, rc := range rightOut {
					appendZero(out.Cols[nl+j], right.Cols[rc].Type)
				}
			}
			continue
		}
		for _, m := range matches {
			for c := 0; c < nl; c++ {
				out.Cols[c].appendFrom(left.Cols[c], i)
			}
			for j, rc := range rightOut {
				out.Cols[nl+j].appendFrom(right.Cols[rc], m)
			}
		}
	}
	return out, nil
}

func appendZero(c *Column, t ColType) {
	switch t {
	case Int64:
		c.AppendInt(0)
	case Float64:
		c.AppendFloat(0)
	default:
		c.AppendString("")
	}
}

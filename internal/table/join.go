package table

import (
	"fmt"

	"telcochurn/internal/parallel"
)

// JoinKind selects the join semantics.
type JoinKind int

const (
	// InnerJoin keeps only rows with a match on both sides.
	InnerJoin JoinKind = iota
	// LeftJoin keeps every left row; unmatched right columns get zero values
	// (0, 0.0, "") — the engine has no NULL, matching how the paper's wide
	// table treats absent activity as zero usage.
	LeftJoin
)

// HashJoin joins left and right on equality of the named Int64 key column,
// which must exist on both sides (e.g. IMSI, the paper's universal join
// key). The result schema is left's fields followed by right's fields minus
// the key. Right-side columns whose names collide with left-side names are
// suffixed "_r".
//
// The right side is hashed; rows stream from the left, so put the smaller
// table on the right. Right-side duplicates multiply, as in SQL.
//
// Execution is vectorized: one pass over the left keys builds leftRow/
// rightRow gather-index arrays, then every output column is emitted with a
// single typed bulk gather into an exactly-sized array — no per-cell
// appends.
func HashJoin(left, right *Table, key string, kind JoinKind) (*Table, error) {
	return HashJoinExec(left, right, key, kind, Exec{Workers: 1})
}

// HashJoinExec is HashJoin with execution options; output columns gather in
// parallel. Gathers are pure scatters by precomputed index, so the result is
// bit-identical for any Exec.Workers value.
func HashJoinExec(left, right *Table, key string, kind JoinKind, ex Exec) (*Table, error) {
	lk := left.Schema.Index(key)
	rk := right.Schema.Index(key)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("table: join key %q missing (left=%v right=%v)", key, lk >= 0, rk >= 0)
	}
	if left.Schema.Fields[lk].Type != Int64 || right.Schema.Fields[rk].Type != Int64 {
		return nil, fmt.Errorf("table: join key %q must be BIGINT on both sides", key)
	}

	// Output schema: all left fields, then right fields except the key.
	fields := append([]Field(nil), left.Schema.Fields...)
	rightOut := make([]int, 0, right.Schema.Len()-1) // right column indices emitted
	for i, f := range right.Schema.Fields {
		if i == rk {
			continue
		}
		name := f.Name
		if left.Schema.Has(name) {
			name += "_r"
		}
		fields = append(fields, Field{Name: name, Type: f.Type})
		rightOut = append(rightOut, i)
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := NewTable(schema)

	// Index the right side as dense groups: key → group id, plus a stable
	// counting-sort scatter so group g's rows are perm[start[g]:start[g+1]]
	// in original row order. Two flat arrays and one int32-valued map — no
	// per-key match slices growing inside the hash table.
	rightKeys := right.Cols[rk].Ints
	ids := make(map[int64]int32, len(rightKeys))
	gid := make([]int32, len(rightKeys))
	ng := int32(0)
	for i, k := range rightKeys {
		g, ok := ids[k]
		if !ok {
			g = ng
			ids[k] = g
			ng++
		}
		gid[i] = g
	}
	start := make([]int32, ng+1)
	for _, g := range gid {
		start[g+1]++
	}
	for g := int32(0); g < ng; g++ {
		start[g+1] += start[g]
	}
	perm := make([]int32, len(rightKeys))
	cursor := append([]int32(nil), start[:ng]...)
	for i, g := range gid {
		perm[cursor[g]] = int32(i)
		cursor[g]++
	}

	leftKeys := left.Cols[lk].Ints

	// Pre-count the output cardinality (sum of match multiplicities, plus
	// unmatched left rows for LeftJoin) so the gather indices and every
	// output column allocate exactly once. Each left key is probed exactly
	// once; the resolved group id (-1 = miss) is cached for the build pass.
	lg := make([]int32, len(leftKeys))
	nOut := 0
	for i, k := range leftKeys {
		if g, ok := ids[k]; ok {
			lg[i] = g
			nOut += int(start[g+1] - start[g])
		} else {
			lg[i] = -1
			if kind == LeftJoin {
				nOut++
			}
		}
	}

	// Gather-index build: for each output row, its source row on both sides
	// (-1 right row = zero-filled LeftJoin miss).
	leftRow := make([]int32, 0, nOut)
	rightRow := make([]int32, 0, nOut)
	for i, g := range lg {
		if g < 0 {
			if kind == LeftJoin {
				leftRow = append(leftRow, int32(i))
				rightRow = append(rightRow, -1)
			}
			continue
		}
		for _, m := range perm[start[g]:start[g+1]] {
			leftRow = append(leftRow, int32(i))
			rightRow = append(rightRow, m)
		}
	}

	// Emit each output column with one typed bulk gather, parallel per column.
	nl := left.Schema.Len()
	parallel.ForGrain(ex.Workers, nl+len(rightOut), 1, func(c int) {
		if c < nl {
			gatherInto(out.Cols[c], left.Cols[c], leftRow, false)
		} else {
			gatherInto(out.Cols[c], right.Cols[rightOut[c-nl]], rightRow, true)
		}
	})
	return out, nil
}

package table

import (
	"fmt"
	"sort"
)

// Shard-aware execution: hash partitioning plus shard-local operators whose
// merged output matches the single-table operators. This is the engine-level
// half of the out-of-core story — the warehouse partitions rows by the same
// hash (store.ShardedWarehouse), so per-customer aggregations and customer-
// keyed joins never cross shards and the wide-table build can stream one
// shard at a time with bounded memory.

// ShardOf maps an Int64 key to a shard in [0, shards) with the splitmix64
// finalizer, so shard assignment is uniform, stable across processes and
// platforms, and independent of insertion order. shards < 2 always yields
// shard 0.
func ShardOf(key int64, shards int) int {
	if shards < 2 {
		return 0
	}
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// PartitionByHash splits t into shards parts by ShardOf over the named Int64
// key column, preserving row order within each part. Concatenating the parts
// in shard order yields a row permutation of t; rows of any single key value
// land in exactly one part.
func PartitionByHash(t *Table, key string, shards int) ([]*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: partition by unknown column %q", key)
	}
	if t.Schema.Fields[ki].Type != Int64 {
		return nil, fmt.Errorf("table: partition key %q must be BIGINT", key)
	}
	if shards < 1 {
		return nil, fmt.Errorf("table: partition into %d shards", shards)
	}
	if shards == 1 {
		return []*Table{t}, nil
	}
	keys := t.Cols[ki].Ints
	idx := make([][]int32, shards)
	for i, k := range keys {
		s := ShardOf(k, shards)
		idx[s] = append(idx[s], int32(i))
	}
	out := make([]*Table, shards)
	for s := range out {
		out[s] = takeRows(t, idx[s])
	}
	return out, nil
}

// GroupByShards aggregates key-partitioned table parts shard-locally and
// merges the partials, without ever materializing the concatenated table.
// Sum, Count, Min, Max and First are merged directly; Mean is decomposed
// into sum and count partials and divided once at the end; CountDistinct
// requires the parts to be key-disjoint (true for hash-partitioned data).
//
// When the parts partition rows by the key — every key value confined to one
// part, row order preserved within it — the result is cell-for-cell
// identical to GroupByExec over the concatenation: per-key float
// accumulation touches the same values in the same order, and output rows
// are ordered by ascending key either way.
func GroupByShards(parts []*Table, key string, ex Exec, aggs ...Agg) (*Table, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("table: group-by over zero shards")
	}
	if len(parts) == 1 {
		return GroupByExec(parts[0], key, ex, aggs...)
	}
	for _, p := range parts[1:] {
		if !p.Schema.Equal(parts[0].Schema) {
			return nil, fmt.Errorf("table: group-by shards schema mismatch: %s vs %s", parts[0].Schema, p.Schema)
		}
	}

	// Rewrite the aggregate list into mergeable partials: Mean becomes a
	// sum/count pair, everything else passes through. plan[i] records where
	// agg i's partial columns land in the per-shard output (offset by one for
	// the key column).
	var partials []Agg
	plan := make([]int, len(aggs))
	for i, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("table: aggregation %d has empty output name", i)
		}
		plan[i] = len(partials) + 1
		if a.Func == Mean {
			partials = append(partials,
				Agg{Col: a.Col, Func: Sum, As: fmt.Sprintf("__shard_sum_%d", i)},
				Agg{Col: a.Col, Func: Count, As: fmt.Sprintf("__shard_cnt_%d", i)})
		} else {
			partials = append(partials, Agg{Col: a.Col, Func: a.Func, As: a.As})
		}
	}

	shardOut := make([]*Table, len(parts))
	for s, p := range parts {
		o, err := GroupByExec(p, key, ex, partials...)
		if err != nil {
			return nil, err
		}
		shardOut[s] = o
	}

	// Merged key order: ascending union of the per-shard key sets, matching
	// what a single GroupBy over all rows would emit.
	var allKeys []int64
	for _, o := range shardOut {
		allKeys = append(allKeys, o.Cols[0].Ints...)
	}
	sort.Slice(allKeys, func(a, b int) bool { return allKeys[a] < allKeys[b] })
	outKeys := allKeys[:0]
	for i, k := range allKeys {
		if i == 0 || k != allKeys[i-1] {
			outKeys = append(outKeys, k)
		}
	}
	rowOf := make(map[int64]int, len(outKeys))
	for i, k := range outKeys {
		rowOf[k] = i
	}

	// Per-key contributor counts, to police the merges that need exclusivity.
	contrib := make([]int, len(outKeys))
	for _, o := range shardOut {
		for _, k := range o.Cols[0].Ints {
			contrib[rowOf[k]]++
		}
	}
	overlapping := false
	for _, c := range contrib {
		if c > 1 {
			overlapping = true
			break
		}
	}

	// Output schema mirrors GroupBy's: key first, then one column per agg.
	fields := []Field{{Name: key, Type: Int64}}
	for i, a := range aggs {
		f := Field{Name: a.As, Type: Float64}
		if a.Func == First {
			f.Type = shardOut[0].Schema.Fields[plan[i]].Type
		}
		fields = append(fields, f)
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := NewTable(schema)
	out.Cols[0].Ints = outKeys

	n := len(outKeys)
	for i, a := range aggs {
		dst := out.Cols[i+1]
		switch a.Func {
		case Sum, Count:
			// Fold in shard order: for any one key the additions happen in
			// the same order its rows would appear in the concatenation.
			vals := make([]float64, n)
			for _, o := range shardOut {
				keys, src := o.Cols[0].Ints, o.Cols[plan[i]].Floats
				for g, k := range keys {
					vals[rowOf[k]] += src[g]
				}
			}
			dst.Floats = vals
		case Mean:
			sums := make([]float64, n)
			cnts := make([]float64, n)
			for _, o := range shardOut {
				keys := o.Cols[0].Ints
				ps, pc := o.Cols[plan[i]].Floats, o.Cols[plan[i]+1].Floats
				for g, k := range keys {
					r := rowOf[k]
					sums[r] += ps[g]
					cnts[r] += pc[g]
				}
			}
			for r := range sums {
				sums[r] /= cnts[r]
			}
			dst.Floats = sums
		case Min, Max:
			vals := make([]float64, n)
			seen := make([]bool, n)
			for _, o := range shardOut {
				keys, src := o.Cols[0].Ints, o.Cols[plan[i]].Floats
				for g, k := range keys {
					r := rowOf[k]
					if !seen[r] || (a.Func == Max && src[g] > vals[r]) || (a.Func == Min && src[g] < vals[r]) {
						vals[r] = src[g]
						seen[r] = true
					}
				}
			}
			dst.Floats = vals
		case First:
			// First contributing shard wins — the same row the concatenated
			// table's first-in-row-order pass would pick.
			taken := make([]bool, n)
			switch dst.Type {
			case Int64:
				dst.Ints = make([]int64, n)
			case Float64:
				dst.Floats = make([]float64, n)
			default:
				dst.Strings = make([]string, n)
			}
			for _, o := range shardOut {
				keys, src := o.Cols[0].Ints, o.Cols[plan[i]]
				for g, k := range keys {
					r := rowOf[k]
					if taken[r] {
						continue
					}
					taken[r] = true
					switch dst.Type {
					case Int64:
						dst.Ints[r] = src.Ints[g]
					case Float64:
						dst.Floats[r] = src.Floats[g]
					default:
						dst.Strings[r] = src.Strings[g]
					}
				}
			}
		case CountDistinct:
			// Distinct counts only merge by addition when no key spans
			// shards; hash-partitioned inputs guarantee that.
			if overlapping {
				return nil, fmt.Errorf("table: COUNT_DISTINCT merge needs key-disjoint shards")
			}
			vals := make([]float64, n)
			for _, o := range shardOut {
				keys, src := o.Cols[0].Ints, o.Cols[plan[i]].Floats
				for g, k := range keys {
					vals[rowOf[k]] = src[g]
				}
			}
			dst.Floats = vals
		default:
			return nil, fmt.Errorf("table: unsupported aggregation %v", a.Func)
		}
	}
	return out, nil
}

// HashJoinShards joins aligned shard pairs independently and concatenates
// the results in shard order. When both sides are partitioned by the same
// hash of the join key (PartitionByHash, or the warehouse's shard layout),
// equal keys always share a shard index, so no match is lost and the output
// is exactly HashJoin of the concatenations up to the shard-major row
// order. Peak memory is one shard pair plus its output, not the whole join.
func HashJoinShards(left, right []*Table, key string, kind JoinKind, ex Exec) (*Table, error) {
	if len(left) == 0 || len(left) != len(right) {
		return nil, fmt.Errorf("table: join over %d left and %d right shards", len(left), len(right))
	}
	var out *Table
	for s := range left {
		j, err := HashJoinExec(left[s], right[s], key, kind, ex)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = j
			continue
		}
		if err := out.AppendTable(j); err != nil {
			return nil, err
		}
	}
	return out, nil
}

package table

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func leftTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "dur", Type: Float64},
	))
	for _, r := range []struct {
		id  int64
		dur float64
	}{{1, 10}, {2, 20}, {3, 30}, {2, 25}} {
		if err := tb.AppendRow(r.id, r.dur); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func rightTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "age", Type: Int64},
		Field{Name: "dur", Type: Float64}, // name collision with left
	))
	for _, r := range []struct {
		id, age int64
		dur     float64
	}{{1, 30, 1}, {2, 40, 2}, {9, 50, 9}} {
		if err := tb.AppendRow(r.id, r.age, r.dur); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestHashJoinInner(t *testing.T) {
	out, err := HashJoin(leftTable(t), rightTable(t), "imsi", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	// imsi 1 matches once, imsi 2 twice (two left rows), imsi 3 none.
	if out.NumRows() != 3 {
		t.Fatalf("inner join rows = %d, want 3", out.NumRows())
	}
	if !out.Schema.Has("dur_r") {
		t.Errorf("collision column not suffixed: %v", out.Schema.Names())
	}
	ages := out.MustCol("age").Ints
	for _, a := range ages {
		if a != 30 && a != 40 {
			t.Errorf("unexpected age %d in inner join", a)
		}
	}
}

func TestHashJoinLeft(t *testing.T) {
	out, err := HashJoin(leftTable(t), rightTable(t), "imsi", LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Fatalf("left join rows = %d, want 4", out.NumRows())
	}
	// The imsi=3 row gets zero-valued right columns.
	ids := out.MustCol("imsi").Ints
	ages := out.MustCol("age").Ints
	found := false
	for i, id := range ids {
		if id == 3 {
			found = true
			if ages[i] != 0 {
				t.Errorf("unmatched left row age = %d, want 0", ages[i])
			}
		}
	}
	if !found {
		t.Error("left join dropped unmatched row")
	}
}

func TestHashJoinErrors(t *testing.T) {
	l := leftTable(t)
	if _, err := HashJoin(l, l, "nope", InnerJoin); err == nil {
		t.Error("want error for missing key")
	}
	f := NewTable(MustSchema(Field{Name: "imsi", Type: Float64}))
	if _, err := HashJoin(f, l, "imsi", InnerJoin); err == nil {
		t.Error("want error for non-int key")
	}
}

// TestHashJoinCountProperty: inner-join row count equals the sum over keys
// of left-multiplicity x right-multiplicity.
func TestHashJoinCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(col string) *Table {
			tb := NewTable(MustSchema(
				Field{Name: "imsi", Type: Int64},
				Field{Name: col, Type: Float64},
			))
			n := rng.Intn(60)
			for i := 0; i < n; i++ {
				tb.AppendRow(int64(rng.Intn(8)), rng.Float64())
			}
			return tb
		}
		l, r := mk("a"), mk("b")
		out, err := HashJoin(l, r, "imsi", InnerJoin)
		if err != nil {
			return false
		}
		countOf := func(tb *Table) map[int64]int {
			m := map[int64]int{}
			for _, k := range tb.MustCol("imsi").Ints {
				m[k]++
			}
			return m
		}
		lc, rc := countOf(l), countOf(r)
		want := 0
		for k, n := range lc {
			want += n * rc[k]
		}
		return out.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func groupInput(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "dur", Type: Float64},
		Field{Name: "kind", Type: Int64},
		Field{Name: "tag", Type: String},
	))
	rows := []struct {
		id   int64
		dur  float64
		kind int64
		tag  string
	}{
		{2, 5, 1, "x"}, {1, 10, 0, "a"}, {1, 20, 1, "a"}, {2, 7, 1, "y"}, {1, 30, 0, "b"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r.id, r.dur, r.kind, r.tag); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestGroupByAggregations(t *testing.T) {
	out, err := GroupBy(groupInput(t), "imsi",
		Agg{Col: "dur", Func: Sum, As: "sum"},
		Agg{Func: Count, As: "cnt"},
		Agg{Col: "dur", Func: Mean, As: "mean"},
		Agg{Col: "dur", Func: Min, As: "min"},
		Agg{Col: "dur", Func: Max, As: "max"},
		Agg{Col: "tag", Func: First, As: "first"},
		Agg{Col: "tag", Func: CountDistinct, As: "dtag"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", out.NumRows())
	}
	// Sorted by key: row 0 is imsi 1.
	if got := out.MustCol("imsi").Ints[0]; got != 1 {
		t.Fatalf("first group key = %d, want 1 (sorted)", got)
	}
	checks := []struct {
		col  string
		want float64
	}{
		{"sum", 60}, {"cnt", 3}, {"mean", 20}, {"min", 10}, {"max", 30}, {"dtag", 2},
	}
	for _, c := range checks {
		if got := out.MustCol(c.col).Floats[0]; got != c.want {
			t.Errorf("%s(imsi=1) = %g, want %g", c.col, got, c.want)
		}
	}
	if got := out.MustCol("first").Strings[0]; got != "a" {
		t.Errorf("first tag = %q, want a", got)
	}
	if got := out.MustCol("dtag").Floats[1]; got != 2 {
		t.Errorf("distinct tags(imsi=2) = %g, want 2", got)
	}
}

func TestGroupByErrors(t *testing.T) {
	in := groupInput(t)
	if _, err := GroupBy(in, "nope", Agg{Func: Count, As: "c"}); err == nil {
		t.Error("want error for unknown key")
	}
	if _, err := GroupBy(in, "dur", Agg{Func: Count, As: "c"}); err == nil {
		t.Error("want error for non-int key")
	}
	if _, err := GroupBy(in, "imsi", Agg{Col: "tag", Func: Sum, As: "s"}); err == nil {
		t.Error("want error for Sum on string")
	}
	if _, err := GroupBy(in, "imsi", Agg{Col: "dur", Func: Sum}); err == nil {
		t.Error("want error for empty output name")
	}
	if _, err := GroupBy(in, "imsi", Agg{Col: "nope", Func: Sum, As: "s"}); err == nil {
		t.Error("want error for unknown aggregation column")
	}
}

// TestGroupBySumProperty: engine sums match a hand-rolled map aggregation.
func TestGroupBySumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(MustSchema(
			Field{Name: "imsi", Type: Int64},
			Field{Name: "v", Type: Float64},
		))
		manual := map[int64]float64{}
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(12))
			v := rng.NormFloat64()
			tb.AppendRow(k, v)
			manual[k] += v
		}
		out, err := GroupBy(tb, "imsi", Agg{Col: "v", Func: Sum, As: "s"})
		if err != nil {
			return false
		}
		if out.NumRows() != len(manual) {
			return false
		}
		keys := out.MustCol("imsi").Ints
		sums := out.MustCol("s").Floats
		for i, k := range keys {
			if math.Abs(sums[i]-manual[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortByInt(t *testing.T) {
	tb := groupInput(t)
	sorted, err := SortByInt(tb, "imsi")
	if err != nil {
		t.Fatal(err)
	}
	ids := sorted.MustCol("imsi").Ints
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
	// Stability: within imsi=1 the original order 10,20,30 is preserved.
	durs := sorted.MustCol("dur").Floats
	if durs[0] != 10 || durs[1] != 20 || durs[2] != 30 {
		t.Errorf("sort not stable: %v", durs[:3])
	}
	if _, err := SortByInt(tb, "dur"); err == nil {
		t.Error("want error sorting by non-int column")
	}
}

func TestSortByFloatDesc(t *testing.T) {
	tb := groupInput(t)
	sorted, err := SortByFloatDesc(tb, "dur")
	if err != nil {
		t.Fatal(err)
	}
	durs := sorted.MustCol("dur").Floats
	for i := 1; i < len(durs); i++ {
		if durs[i] > durs[i-1] {
			t.Fatalf("not descending: %v", durs)
		}
	}
	if _, err := SortByFloatDesc(tb, "imsi"); err == nil {
		t.Error("want error sorting by non-float column")
	}
}

package table

import (
	"fmt"
	"slices"
)

// Column is a typed dense column vector. Exactly one of the three slices is
// non-nil, matching the column's declared type. Name is the schema field
// name the column was created under (diagnostics only; the schema stays the
// source of truth for lookups).
type Column struct {
	Name    string
	Type    ColType
	Ints    []int64
	Floats  []float64
	Strings []string
}

// NewColumn returns an empty column of the given type.
func NewColumn(t ColType) *Column { return &Column{Type: t} }

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	default:
		return len(c.Strings)
	}
}

// AppendInt appends an int64 value; the column must be Int64.
func (c *Column) AppendInt(v int64) { c.Ints = append(c.Ints, v) }

// AppendFloat appends a float64 value; the column must be Float64.
func (c *Column) AppendFloat(v float64) { c.Floats = append(c.Floats, v) }

// AppendString appends a string value; the column must be String.
func (c *Column) AppendString(v string) { c.Strings = append(c.Strings, v) }

// Grow reserves capacity for at least n more values, so operators that know
// their output cardinality up front (GroupBy, HashJoin) append without
// repeated reallocation.
func (c *Column) Grow(n int) {
	switch c.Type {
	case Int64:
		c.Ints = slices.Grow(c.Ints, n)
	case Float64:
		c.Floats = slices.Grow(c.Floats, n)
	default:
		c.Strings = slices.Grow(c.Strings, n)
	}
}

// Float returns row i of the column coerced to float64 (Int64 columns are
// converted). Calling it on a String column is a programming error — it used
// to return a silent NaN that poisoned downstream aggregates — so it panics,
// naming the column.
func (c *Column) Float(i int) float64 {
	switch c.Type {
	case Int64:
		return float64(c.Ints[i])
	case Float64:
		return c.Floats[i]
	default:
		panic(fmt.Sprintf("table: Float on STRING column %q", c.Name))
	}
}

// Table is a columnar table: a schema plus one column vector per field, all
// of equal length.
type Table struct {
	Schema *Schema
	Cols   []*Column
}

// NewTable returns an empty table with the given schema.
func NewTable(s *Schema) *Table {
	t := &Table{Schema: s, Cols: make([]*Column, s.Len())}
	for i, f := range s.Fields {
		t.Cols[i] = &Column{Name: f.Name, Type: f.Type}
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Grow reserves capacity for at least n more rows in every column.
func (t *Table) Grow(n int) {
	for _, c := range t.Cols {
		c.Grow(n)
	}
}

// Col returns the named column, or nil if absent.
func (t *Table) Col(name string) *Column {
	i := t.Schema.Index(name)
	if i < 0 {
		return nil
	}
	return t.Cols[i]
}

// MustCol returns the named column, panicking if absent. Use for statically
// known pipeline columns where absence is a programming error.
func (t *Table) MustCol(name string) *Column {
	c := t.Col(name)
	if c == nil {
		panic(fmt.Sprintf("table: no column %q in schema %s", name, t.Schema))
	}
	return c
}

// AppendRow appends one row given values in schema order. Each value must be
// int64, float64 or string matching the column type; int values are accepted
// for Int64 columns and converted.
func (t *Table) AppendRow(values ...any) error {
	if len(values) != t.Schema.Len() {
		return fmt.Errorf("table: AppendRow got %d values, schema has %d columns", len(values), t.Schema.Len())
	}
	for i, v := range values {
		col := t.Cols[i]
		switch col.Type {
		case Int64:
			switch x := v.(type) {
			case int64:
				col.AppendInt(x)
			case int:
				col.AppendInt(int64(x))
			default:
				return fmt.Errorf("table: column %q wants int64, got %T", t.Schema.Fields[i].Name, v)
			}
		case Float64:
			switch x := v.(type) {
			case float64:
				col.AppendFloat(x)
			case int:
				col.AppendFloat(float64(x))
			case int64:
				col.AppendFloat(float64(x))
			default:
				return fmt.Errorf("table: column %q wants float64, got %T", t.Schema.Fields[i].Name, v)
			}
		case String:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("table: column %q wants string, got %T", t.Schema.Fields[i].Name, v)
			}
			col.AppendString(x)
		}
	}
	return nil
}

// Validate checks that all columns have equal length and types matching the
// schema.
func (t *Table) Validate() error {
	n := t.NumRows()
	for i, c := range t.Cols {
		if c.Type != t.Schema.Fields[i].Type {
			return fmt.Errorf("table: column %q type %v does not match schema %v",
				t.Schema.Fields[i].Name, c.Type, t.Schema.Fields[i].Type)
		}
		if c.Len() != n {
			return fmt.Errorf("table: column %q has %d rows, want %d", t.Schema.Fields[i].Name, c.Len(), n)
		}
	}
	return nil
}

// Row materializes row i as a slice of any (for debugging and tests; the
// pipeline itself works columnar).
func (t *Table) Row(i int) []any {
	row := make([]any, len(t.Cols))
	for c, col := range t.Cols {
		switch col.Type {
		case Int64:
			row[c] = col.Ints[i]
		case Float64:
			row[c] = col.Floats[i]
		default:
			row[c] = col.Strings[i]
		}
	}
	return row
}

// Select returns a new table with only the named columns, in the given
// order. Column data is shared, not copied.
func (t *Table) Select(names ...string) (*Table, error) {
	fields := make([]Field, len(names))
	cols := make([]*Column, len(names))
	for i, name := range names {
		idx := t.Schema.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("table: select unknown column %q", name)
		}
		fields[i] = t.Schema.Fields[idx]
		cols[i] = t.Cols[idx]
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	return &Table{Schema: schema, Cols: cols}, nil
}

// Filter returns a new table containing the rows for which keep returns
// true. keep receives the row index, is evaluated exactly once per row, and
// reads values through the table's columns. The kept row indices are
// collected first, then every column is produced by one typed bulk gather
// into an exactly-sized array.
func (t *Table) Filter(keep func(row int) bool) *Table {
	n := t.NumRows()
	var idx []int32
	for i := 0; i < n; i++ {
		if keep(i) {
			idx = append(idx, int32(i))
		}
	}
	return takeRows(t, idx)
}

// Take returns a new table with the rows at the given indices, in order,
// copying each column with one typed bulk gather.
func (t *Table) Take(indices []int) *Table {
	return takeRows(t, indices)
}

// takeRows gathers the given rows of every column into a fresh table.
func takeRows[I rowIndex](t *Table, idx []I) *Table {
	out := NewTable(t.Schema)
	for c, col := range t.Cols {
		gatherInto(out.Cols[c], col, idx, false)
	}
	return out
}

// AppendTable appends all rows of src, whose schema must equal t's, with one
// typed bulk copy per column.
func (t *Table) AppendTable(src *Table) error {
	if !t.Schema.Equal(src.Schema) {
		return fmt.Errorf("table: append schema mismatch: %s vs %s", t.Schema, src.Schema)
	}
	for c, dst := range t.Cols {
		s := src.Cols[c]
		switch dst.Type {
		case Int64:
			dst.Ints = append(dst.Ints, s.Ints...)
		case Float64:
			dst.Floats = append(dst.Floats, s.Floats...)
		default:
			dst.Strings = append(dst.Strings, s.Strings...)
		}
	}
	return nil
}

// RenameColumn returns a table with one column renamed (data shared).
func (t *Table) RenameColumn(old, new string) (*Table, error) {
	idx := t.Schema.Index(old)
	if idx < 0 {
		return nil, fmt.Errorf("table: rename unknown column %q", old)
	}
	fields := append([]Field(nil), t.Schema.Fields...)
	fields[idx].Name = new
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	return &Table{Schema: schema, Cols: t.Cols}, nil
}

// WithColumn returns a table extended by one computed Float64 column whose
// value for each row is produced by fn. Existing column data is shared.
func (t *Table) WithColumn(name string, fn func(row int) float64) (*Table, error) {
	fields := append(append([]Field(nil), t.Schema.Fields...), Field{Name: name, Type: Float64})
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	col := &Column{Name: name, Type: Float64}
	n := t.NumRows()
	col.Floats = make([]float64, n)
	for i := 0; i < n; i++ {
		col.Floats[i] = fn(i)
	}
	return &Table{Schema: schema, Cols: append(append([]*Column(nil), t.Cols...), col)}, nil
}

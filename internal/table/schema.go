// Package table implements the in-memory columnar relational engine that
// stands in for Hive/Spark SQL in the paper's feature-engineering layer
// (Section 4.1). The feature pipeline expresses the same logical operations
// the paper describes — joining the local-call and roam-call tables,
// aggregating daily call tables into monthly summaries, producing the
// unified wide table — as scans, hash joins, group-by aggregations,
// projections and sorts over typed columns.
//
// Tables are columnar: each column is a dense typed vector, which keeps
// aggregation cache-friendly and makes the store package's binary layout a
// straight memcpy of column data.
package table

import (
	"fmt"
	"strings"
)

// ColType enumerates the supported column types.
type ColType int

const (
	// Int64 is a 64-bit signed integer column (IDs, counts, flags).
	Int64 ColType = iota
	// Float64 is a 64-bit float column (durations, rates, amounts).
	Float64
	// String is a UTF-8 string column (text, categorical codes).
	String
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Field describes one column: a name and a type.
type Field struct {
	Name string
	Type ColType
}

// Schema is an ordered list of fields.
type Schema struct {
	Fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields, validating that names are unique
// and non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{Fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("table: schema field %d has empty name", i)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Fields) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Equal reports whether two schemas have identical fields in order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
	}
	b.WriteByte(')')
	return b.String()
}

package table

import (
	"fmt"
	"sort"

	"telcochurn/internal/parallel"
)

// AggFunc enumerates the aggregation functions supported by GroupBy. These
// cover the monthly summarizations the paper's feature engineering performs
// (total call duration, call counts, average throughput, max balance, ...).
type AggFunc int

const (
	// Sum totals the column (Int64 or Float64).
	Sum AggFunc = iota
	// Count counts rows in the group; the source column is ignored.
	Count
	// Mean averages the column.
	Mean
	// Min takes the minimum.
	Min
	// Max takes the maximum.
	Max
	// First takes the group's first value in row order (for columns that are
	// constant within a group, e.g. demographics keyed by customer).
	First
	// CountDistinct counts distinct values in the column.
	CountDistinct
)

func (a AggFunc) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Mean:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case First:
		return "FIRST"
	case CountDistinct:
		return "COUNT_DISTINCT"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Agg is one aggregation: apply Func to column Col, emit it as column As.
type Agg struct {
	Col  string
	Func AggFunc
	As   string
}

// GroupBy groups t by the Int64 key column and computes the aggregations.
// The result has the key column first, then one Float64 column per Agg
// (First on an Int64/String column keeps the source type), ordered by
// ascending key for determinism.
//
// Execution is vectorized: one dense group-id pass over the key column
// (already-sorted keys skip the hash map entirely), then one typed columnar
// accumulation pass per aggregate into exactly-sized output arrays. Floats
// accumulate per group in row order, so the result is cell-for-cell
// identical to a row-at-a-time aggregation of the same rows.
func GroupBy(t *Table, key string, aggs ...Agg) (*Table, error) {
	return GroupByWhereExec(t, key, nil, Exec{Workers: 1}, aggs...)
}

// GroupByExec is GroupBy with execution options; aggregation passes run
// parallel across aggregates and across groups within a pass. The output is
// bit-identical for any Exec.Workers value.
func GroupByExec(t *Table, key string, ex Exec, aggs ...Agg) (*Table, error) {
	return GroupByWhereExec(t, key, nil, ex, aggs...)
}

// GroupByWhere is GroupBy with the row predicate fused into the aggregation
// pass: it produces exactly the table GroupBy would produce on
// t.Filter(pred) — same groups, same values, cell for cell — without
// materializing the filtered copy. pred is evaluated once per row; nil keeps
// every row. This is the engine's filter→group-by fusion, the shape of
// nearly every per-customer aggregation in the wide-table build.
func GroupByWhere(t *Table, key string, pred func(row int) bool, aggs ...Agg) (*Table, error) {
	return GroupByWhereExec(t, key, pred, Exec{Workers: 1}, aggs...)
}

// GroupByWhereExec is GroupByWhere with execution options.
func GroupByWhereExec(t *Table, key string, pred func(row int) bool, ex Exec, aggs ...Agg) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: group-by unknown key %q", key)
	}
	if t.Schema.Fields[ki].Type != Int64 {
		return nil, fmt.Errorf("table: group-by key %q must be BIGINT", key)
	}

	srcs := make([]*Column, len(aggs)) // nil for Count
	fields := []Field{{Name: key, Type: Int64}}
	for i, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("table: aggregation %d has empty output name", i)
		}
		outType := Float64
		if a.Func != Count {
			ci := t.Schema.Index(a.Col)
			if ci < 0 {
				return nil, fmt.Errorf("table: aggregation on unknown column %q", a.Col)
			}
			c := t.Cols[ci]
			if a.Func == First && c.Type == String {
				outType = String
			} else if a.Func == First && c.Type == Int64 {
				outType = Int64
			} else if c.Type == String && a.Func != CountDistinct {
				return nil, fmt.Errorf("table: %s on string column %q", a.Func, a.Col)
			}
			srcs[i] = c
		}
		fields = append(fields, Field{Name: a.As, Type: outType})
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}

	gi := buildGroupIndex(t.Cols[ki].Ints, pred)
	out := NewTable(schema)
	out.Cols[0].Ints = gi.keys

	// One typed columnar pass per aggregate, parallel across aggregates; each
	// pass parallelizes across groups (forGroups). Passes only write their own
	// preallocated output array, so the fan-out is race-free and ordering-free.
	errs := make([]error, len(aggs))
	parallelAggs(ex.Workers, len(aggs), func(ai int) {
		errs[ai] = aggPass(out.Cols[ai+1], srcs[ai], aggs[ai].Func, &gi, ex.Workers)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parallelAggs fans fn across aggregate indices (grain 1: passes are big).
func parallelAggs(workers, n int, fn func(ai int)) {
	if n == 1 { // common case: skip pool setup
		fn(0)
		return
	}
	parallel.ForGrain(workers, n, 1, fn)
}

// aggPass computes one aggregate over every group into dst's preallocated
// backing array. src is nil for Count. The kernel is selected once per pass
// — no per-value type switches inside the loops.
func aggPass(dst, src *Column, fn AggFunc, gi *groupIndex, workers int) error {
	ng := gi.groups()
	switch fn {
	case Count:
		vals := make([]float64, ng)
		for g := range vals {
			vals[g] = float64(gi.start[g+1] - gi.start[g])
		}
		dst.Floats = vals
		return nil

	case First:
		firstRows := make([]int32, ng)
		for g := range firstRows {
			firstRows[g] = gi.row(gi.start[g])
		}
		gatherInto(dst, src, firstRows, false)
		return nil

	case Sum, Mean:
		vals := make([]float64, ng)
		if src.Type == Int64 {
			ints := src.Ints
			forGroups(workers, gi, func(g int, lo, hi int32) {
				vals[g] = sumRangeInt(ints, gi, lo, hi)
			})
		} else {
			floats := src.Floats
			forGroups(workers, gi, func(g int, lo, hi int32) {
				vals[g] = sumRange(floats, gi, lo, hi)
			})
		}
		if fn == Mean {
			for g := range vals {
				vals[g] /= float64(gi.start[g+1] - gi.start[g])
			}
		}
		dst.Floats = vals
		return nil

	case Min, Max:
		vals := make([]float64, ng)
		if src.Type == Int64 {
			ints := src.Ints
			forGroups(workers, gi, func(g int, lo, hi int32) {
				vals[g] = minMaxRangeInt(ints, gi, lo, hi, fn == Max)
			})
		} else {
			floats := src.Floats
			forGroups(workers, gi, func(g int, lo, hi int32) {
				vals[g] = minMaxRange(floats, gi, lo, hi, fn == Max)
			})
		}
		dst.Floats = vals
		return nil

	case CountDistinct:
		vals := make([]float64, ng)
		switch src.Type {
		case Int64:
			ints := src.Ints
			forGroups(workers, gi, func(g int, lo, hi int32) {
				seen := make(map[int64]struct{}, hi-lo)
				if gi.perm == nil {
					for r := lo; r < hi; r++ {
						seen[ints[r]] = struct{}{}
					}
				} else {
					for _, r := range gi.perm[lo:hi] {
						seen[ints[r]] = struct{}{}
					}
				}
				vals[g] = float64(len(seen))
			})
		case Float64:
			floats := src.Floats
			forGroups(workers, gi, func(g int, lo, hi int32) {
				seen := make(map[float64]struct{}, hi-lo)
				if gi.perm == nil {
					for r := lo; r < hi; r++ {
						seen[floats[r]] = struct{}{}
					}
				} else {
					for _, r := range gi.perm[lo:hi] {
						seen[floats[r]] = struct{}{}
					}
				}
				vals[g] = float64(len(seen))
			})
		default:
			strs := src.Strings
			forGroups(workers, gi, func(g int, lo, hi int32) {
				seen := make(map[string]struct{}, hi-lo)
				if gi.perm == nil {
					for r := lo; r < hi; r++ {
						seen[strs[r]] = struct{}{}
					}
				} else {
					for _, r := range gi.perm[lo:hi] {
						seen[strs[r]] = struct{}{}
					}
				}
				vals[g] = float64(len(seen))
			})
		}
		dst.Floats = vals
		return nil

	default:
		return fmt.Errorf("table: unsupported aggregation %v", fn)
	}
}

// SortByInt returns a new table sorted ascending by the named Int64 column
// (stable, so prior order breaks ties deterministically).
func SortByInt(t *Table, key string) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: sort by unknown column %q", key)
	}
	if t.Schema.Fields[ki].Type != Int64 {
		return nil, fmt.Errorf("table: sort key %q must be BIGINT", key)
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	keys := t.Cols[ki].Ints
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	return t.Take(idx), nil
}

// SortByFloatDesc returns a new table sorted descending by the named Float64
// column (stable). Used to rank customers by churn likelihood.
func SortByFloatDesc(t *Table, key string) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: sort by unknown column %q", key)
	}
	if t.Schema.Fields[ki].Type != Float64 {
		return nil, fmt.Errorf("table: sort key %q must be DOUBLE", key)
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	keys := t.Cols[ki].Floats
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] > keys[idx[b]] })
	return t.Take(idx), nil
}

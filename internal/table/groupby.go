package table

import (
	"fmt"
	"math"
	"sort"
)

// AggFunc enumerates the aggregation functions supported by GroupBy. These
// cover the monthly summarizations the paper's feature engineering performs
// (total call duration, call counts, average throughput, max balance, ...).
type AggFunc int

const (
	// Sum totals the column (Int64 or Float64).
	Sum AggFunc = iota
	// Count counts rows in the group; the source column is ignored.
	Count
	// Mean averages the column.
	Mean
	// Min takes the minimum.
	Min
	// Max takes the maximum.
	Max
	// First takes the group's first value in row order (for columns that are
	// constant within a group, e.g. demographics keyed by customer).
	First
	// CountDistinct counts distinct values in the column.
	CountDistinct
)

func (a AggFunc) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Mean:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case First:
		return "FIRST"
	case CountDistinct:
		return "COUNT_DISTINCT"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Agg is one aggregation: apply Func to column Col, emit it as column As.
type Agg struct {
	Col  string
	Func AggFunc
	As   string
}

// GroupBy groups t by the Int64 key column and computes the aggregations.
// The result has the key column first, then one Float64 column per Agg
// (First on a String column yields a String column), ordered by ascending
// key for determinism.
func GroupBy(t *Table, key string, aggs ...Agg) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: group-by unknown key %q", key)
	}
	if t.Schema.Fields[ki].Type != Int64 {
		return nil, fmt.Errorf("table: group-by key %q must be BIGINT", key)
	}

	type colRef struct {
		col *Column
	}
	refs := make([]colRef, len(aggs))
	fields := []Field{{Name: key, Type: Int64}}
	for i, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("table: aggregation %d has empty output name", i)
		}
		outType := Float64
		if a.Func == Count {
			refs[i] = colRef{nil}
		} else {
			ci := t.Schema.Index(a.Col)
			if ci < 0 {
				return nil, fmt.Errorf("table: aggregation on unknown column %q", a.Col)
			}
			c := t.Cols[ci]
			if a.Func == First && c.Type == String {
				outType = String
			} else if a.Func == First && c.Type == Int64 {
				outType = Int64
			} else if c.Type == String && a.Func != CountDistinct {
				return nil, fmt.Errorf("table: %s on string column %q", a.Func, a.Col)
			}
			refs[i] = colRef{c}
		}
		fields = append(fields, Field{Name: a.As, Type: outType})
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}

	// Bucket row indices by key.
	keys := t.Cols[ki].Ints
	groups := make(map[int64][]int)
	order := make([]int64, 0)
	for i, k := range keys {
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	out := NewTable(schema)
	out.Grow(len(order)) // one output row per distinct key
	for _, k := range order {
		rows := groups[k]
		out.Cols[0].AppendInt(k)
		for ai, a := range aggs {
			dst := out.Cols[ai+1]
			src := refs[ai].col
			switch a.Func {
			case Count:
				dst.AppendFloat(float64(len(rows)))
			case First:
				dst.appendFrom(src, rows[0])
			case CountDistinct:
				dst.AppendFloat(float64(countDistinct(src, rows)))
			case Sum:
				s := 0.0
				for _, r := range rows {
					s += src.Float(r)
				}
				dst.AppendFloat(s)
			case Mean:
				s := 0.0
				for _, r := range rows {
					s += src.Float(r)
				}
				dst.AppendFloat(s / float64(len(rows)))
			case Min:
				m := math.Inf(1)
				for _, r := range rows {
					if v := src.Float(r); v < m {
						m = v
					}
				}
				dst.AppendFloat(m)
			case Max:
				m := math.Inf(-1)
				for _, r := range rows {
					if v := src.Float(r); v > m {
						m = v
					}
				}
				dst.AppendFloat(m)
			default:
				return nil, fmt.Errorf("table: unsupported aggregation %v", a.Func)
			}
		}
	}
	return out, nil
}

func countDistinct(c *Column, rows []int) int {
	switch c.Type {
	case Int64:
		seen := make(map[int64]struct{}, len(rows))
		for _, r := range rows {
			seen[c.Ints[r]] = struct{}{}
		}
		return len(seen)
	case Float64:
		seen := make(map[float64]struct{}, len(rows))
		for _, r := range rows {
			seen[c.Floats[r]] = struct{}{}
		}
		return len(seen)
	default:
		seen := make(map[string]struct{}, len(rows))
		for _, r := range rows {
			seen[c.Strings[r]] = struct{}{}
		}
		return len(seen)
	}
}

// SortByInt returns a new table sorted ascending by the named Int64 column
// (stable, so prior order breaks ties deterministically).
func SortByInt(t *Table, key string) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: sort by unknown column %q", key)
	}
	if t.Schema.Fields[ki].Type != Int64 {
		return nil, fmt.Errorf("table: sort key %q must be BIGINT", key)
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	keys := t.Cols[ki].Ints
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	return t.Take(idx), nil
}

// SortByFloatDesc returns a new table sorted descending by the named Float64
// column (stable). Used to rank customers by churn likelihood.
func SortByFloatDesc(t *Table, key string) (*Table, error) {
	ki := t.Schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("table: sort by unknown column %q", key)
	}
	if t.Schema.Fields[ki].Type != Float64 {
		return nil, fmt.Errorf("table: sort key %q must be DOUBLE", key)
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	keys := t.Cols[ki].Floats
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] > keys[idx[b]] })
	return t.Take(idx), nil
}

package table

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "dur", Type: Float64},
		Field{Name: "text", Type: String},
	)
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "a", Type: Float64})
	if err == nil {
		t.Fatal("want error for duplicate column name")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	_, err := NewSchema(Field{Name: "", Type: Int64})
	if err == nil {
		t.Fatal("want error for empty column name")
	}
}

func TestSchemaIndexAndNames(t *testing.T) {
	s := testSchema(t)
	if got := s.Index("dur"); got != 1 {
		t.Errorf("Index(dur) = %d, want 1", got)
	}
	if got := s.Index("nope"); got != -1 {
		t.Errorf("Index(nope) = %d, want -1", got)
	}
	if !s.Has("imsi") || s.Has("nope") {
		t.Error("Has misreports membership")
	}
	want := []string{"imsi", "dur", "text"}
	for i, n := range s.Names() {
		if n != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, n, want[i])
		}
	}
}

func TestSchemaEqualAndString(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := MustSchema(Field{Name: "imsi", Type: Int64})
	if a.Equal(c) {
		t.Error("different schemas reported Equal")
	}
	if !strings.Contains(a.String(), "dur DOUBLE") {
		t.Errorf("String() = %q missing dur DOUBLE", a.String())
	}
}

func TestAppendRowAndAccessors(t *testing.T) {
	tb := NewTable(testSchema(t))
	if err := tb.AppendRow(int64(7), 1.5, "hi"); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if err := tb.AppendRow(8, 2, "yo"); err != nil { // int and int->float coercion
		t.Fatalf("AppendRow with coercion: %v", err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	if got := tb.MustCol("imsi").Ints[1]; got != 8 {
		t.Errorf("imsi[1] = %d, want 8", got)
	}
	if got := tb.MustCol("dur").Floats[1]; got != 2 {
		t.Errorf("dur[1] = %g, want 2", got)
	}
	if got := tb.MustCol("text").Strings[0]; got != "hi" {
		t.Errorf("text[0] = %q", got)
	}
	if err := tb.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	row := tb.Row(0)
	if row[0].(int64) != 7 || row[1].(float64) != 1.5 || row[2].(string) != "hi" {
		t.Errorf("Row(0) = %v", row)
	}
}

func TestAppendRowTypeErrors(t *testing.T) {
	tb := NewTable(testSchema(t))
	if err := tb.AppendRow("bad", 1.0, "x"); err == nil {
		t.Error("want error for string into Int64 column")
	}
	if err := tb.AppendRow(int64(1), "bad", "x"); err == nil {
		t.Error("want error for string into Float64 column")
	}
	if err := tb.AppendRow(int64(1), 1.0, 5); err == nil {
		t.Error("want error for int into String column")
	}
	if err := tb.AppendRow(int64(1)); err == nil {
		t.Error("want error for arity mismatch")
	}
}

func TestColumnFloatCoercion(t *testing.T) {
	c := NewColumn(Int64)
	c.AppendInt(42)
	if got := c.Float(0); got != 42 {
		t.Errorf("Float on Int64 = %g", got)
	}
}

// Float on a String column used to return a silent NaN that poisoned every
// downstream aggregate; misuse must be loud and name the column.
func TestColumnFloatOnStringPanics(t *testing.T) {
	tb := NewTable(MustSchema(Field{Name: "text", Type: String}))
	tb.AppendRow("x")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Float on String column did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, `"text"`) {
			t.Errorf("panic message %q does not name the column", msg)
		}
	}()
	tb.MustCol("text").Float(0)
}

func fillCalls(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(testSchema(t))
	rows := []struct {
		id   int64
		dur  float64
		text string
	}{
		{1, 10, "a"}, {2, 20, "b"}, {1, 30, "c"}, {3, 40, "d"}, {2, 50, "e"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r.id, r.dur, r.text); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestFilterAndTake(t *testing.T) {
	tb := fillCalls(t)
	ids := tb.MustCol("imsi").Ints
	got := tb.Filter(func(i int) bool { return ids[i] == 1 })
	if got.NumRows() != 2 {
		t.Fatalf("Filter rows = %d, want 2", got.NumRows())
	}
	if got.MustCol("dur").Floats[1] != 30 {
		t.Errorf("filtered dur[1] = %g, want 30", got.MustCol("dur").Floats[1])
	}
	taken := tb.Take([]int{4, 0})
	if taken.NumRows() != 2 || taken.MustCol("dur").Floats[0] != 50 {
		t.Errorf("Take order wrong: %v", taken.MustCol("dur").Floats)
	}
}

func TestSelectSharesData(t *testing.T) {
	tb := fillCalls(t)
	sel, err := tb.Select("dur", "imsi")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schema.Names()[0] != "dur" {
		t.Errorf("Select order not preserved: %v", sel.Schema.Names())
	}
	// Shared columns: mutating source shows in selection.
	tb.MustCol("dur").Floats[0] = 99
	if sel.MustCol("dur").Floats[0] != 99 {
		t.Error("Select copied data instead of sharing")
	}
	if _, err := tb.Select("nope"); err == nil {
		t.Error("want error selecting unknown column")
	}
}

func TestRenameColumn(t *testing.T) {
	tb := fillCalls(t)
	rn, err := tb.RenameColumn("dur", "seconds")
	if err != nil {
		t.Fatal(err)
	}
	if !rn.Schema.Has("seconds") || rn.Schema.Has("dur") {
		t.Error("rename did not apply")
	}
	if !tb.Schema.Has("dur") {
		t.Error("rename mutated the source schema")
	}
	if _, err := tb.RenameColumn("nope", "x"); err == nil {
		t.Error("want error renaming unknown column")
	}
}

func TestWithColumn(t *testing.T) {
	tb := fillCalls(t)
	durs := tb.MustCol("dur").Floats
	ext, err := tb.WithColumn("dur2", func(i int) float64 { return durs[i] * 2 })
	if err != nil {
		t.Fatal(err)
	}
	if got := ext.MustCol("dur2").Floats[2]; got != 60 {
		t.Errorf("dur2[2] = %g, want 60", got)
	}
	if _, err := tb.WithColumn("dur", func(int) float64 { return 0 }); err == nil {
		t.Error("want error adding duplicate column")
	}
}

func TestAppendTableSchemaMismatch(t *testing.T) {
	a := fillCalls(t)
	b := NewTable(MustSchema(Field{Name: "x", Type: Int64}))
	if err := a.AppendTable(b); err == nil {
		t.Error("want error appending mismatched schema")
	}
	c := fillCalls(t)
	if err := a.AppendTable(c); err != nil {
		t.Fatalf("AppendTable: %v", err)
	}
	if a.NumRows() != 10 {
		t.Errorf("rows after append = %d, want 10", a.NumRows())
	}
}

// TestFilterPartitionProperty: filter(p) rows + filter(!p) rows == all rows,
// preserving per-key multiplicity.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(MustSchema(Field{Name: "imsi", Type: Int64}, Field{Name: "v", Type: Float64}))
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			tb.AppendRow(int64(rng.Intn(10)), rng.Float64())
		}
		vals := tb.MustCol("v").Floats
		pred := func(i int) bool { return vals[i] < 0.5 }
		yes := tb.Filter(pred)
		no := tb.Filter(func(i int) bool { return !pred(i) })
		return yes.NumRows()+no.NumRows() == tb.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGrowReservesCapacityWithoutChangingRows(t *testing.T) {
	tb := NewTable(MustSchema(
		Field{Name: "imsi", Type: Int64},
		Field{Name: "v", Type: Float64},
		Field{Name: "s", Type: String},
	))
	tb.AppendRow(int64(1), 1.5, "a")
	tb.Grow(100)
	if tb.NumRows() != 1 {
		t.Fatalf("Grow changed row count to %d", tb.NumRows())
	}
	ints := tb.MustCol("imsi").Ints
	if cap(ints)-len(ints) < 100 {
		t.Errorf("Grow(100) left spare capacity %d", cap(ints)-len(ints))
	}
	// Appends after Grow must not reallocate.
	before := &tb.MustCol("v").Floats[0]
	for i := 0; i < 100; i++ {
		tb.AppendRow(int64(i), float64(i), "x")
	}
	if before != &tb.MustCol("v").Floats[0] {
		t.Error("append within reserved capacity reallocated the column")
	}
}

package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/table"
	"telcochurn/internal/tree"
)

// AblationResult is a generic one-axis ablation table.
type AblationResult struct {
	Id      string
	Title   string
	Axis    string
	Labels  []string
	Reports []eval.Report
	U       int
}

// ID implements Result.
func (r *AblationResult) ID() string { return r.Id }

// Render implements Result.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (U=%d)\n", r.Title, r.U)
	rows := make([][]string, 0, len(r.Labels))
	for i, l := range r.Labels {
		rep := r.Reports[i]
		rows = append(rows, []string{l, f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU)})
	}
	renderRows(w, []string{r.Axis, "AUC", "PR-AUC", "R@U", "P@U"}, rows)
}

// AblTrees sweeps the random-forest ensemble size, supporting the choice of
// a few hundred trees at experiment scale against the paper's 500: the
// curves saturate well before 500.
func AblTrees(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	if opts.Months < 5 {
		opts.Months = 5
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)
	res := &AblationResult{
		Id:    "abl-trees",
		Title: "Ablation: RF ensemble size (paper fixes 500; gains saturate far earlier)",
		Axis:  "Trees",
		U:     u,
	}
	for _, trees := range []int{10, 25, 50, 100, 200, 400} {
		_, report, _, err := env.run(runSpec{
			train: []core.WindowSpec{core.MonthSpec(3, days)},
			test:  core.MonthSpec(4, days),
			u:     u,
			classifier: &core.RFClassifier{Config: tree.ForestConfig{
				NumTrees: trees, MinLeafSamples: opts.MinLeaf, Seed: opts.Seed + int64(trees),
			}},
			seedShift: int64(trees),
		})
		if err != nil {
			return nil, fmt.Errorf("abl-trees %d: %w", trees, err)
		}
		res.Labels = append(res.Labels, fmt.Sprintf("%d", trees))
		res.Reports = append(res.Reports, report)
	}
	return res, nil
}

// AblMinLeaf sweeps the minimum-leaf stopping rule — the paper's
// over-fitting guard (100 at 2M rows; proportionally smaller here).
func AblMinLeaf(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	if opts.Months < 5 {
		opts.Months = 5
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)
	res := &AblationResult{
		Id:    "abl-minleaf",
		Title: "Ablation: minimum samples per leaf (the paper's over-fitting guard)",
		Axis:  "MinLeaf",
		U:     u,
	}
	for _, leaf := range []int{2, 5, 15, 40, 100, 250} {
		_, report, _, err := env.run(runSpec{
			train: []core.WindowSpec{core.MonthSpec(3, days)},
			test:  core.MonthSpec(4, days),
			u:     u,
			classifier: &core.RFClassifier{Config: tree.ForestConfig{
				NumTrees: opts.Trees, MinLeafSamples: leaf, Seed: opts.Seed + int64(leaf),
			}},
			seedShift: int64(leaf * 13),
		})
		if err != nil {
			return nil, fmt.Errorf("abl-minleaf %d: %w", leaf, err)
		}
		res.Labels = append(res.Labels, fmt.Sprintf("%d", leaf))
		res.Reports = append(res.Reports, report)
	}
	return res, nil
}

// AblGraphWindow compares building the F4/F6 graphs over the feature month
// alone versus the feature month plus the preceding month — the design
// choice discussed in core.Pipeline.BuildFrame: a churner's final-month CDRs
// are too sparse to anchor label propagation.
func AblGraphWindow(opts Options) (*AblationResult, error) {
	opts = opts.withDefaults()
	if opts.Months < 6 {
		opts.Months = 6
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)
	res := &AblationResult{
		Id:    "abl-graphwin",
		Title: "Ablation: graph construction window for F4/F6 label propagation",
		Axis:  "Window",
		U:     u,
	}
	groups := []features.Group{features.F1Baseline, features.F4CallGraph, features.F6CooccurrenceGraph}

	// Feature-month window: the pipeline default.
	_, oneMonth, _, err := env.run(runSpec{
		groups:    groups,
		train:     []core.WindowSpec{core.MonthSpec(4, days)},
		test:      core.MonthSpec(5, days),
		u:         u,
		seedShift: 71,
	})
	if err != nil {
		return nil, err
	}

	// Extended window: graphs accumulate the previous month's edges too and
	// seed from two months of churners. Sounds richer, measurably dilutes
	// propagation — which is why the pipeline does not do it.
	twoMonth, err := env.runExtendedGraphArm(4, 5, u)
	if err != nil {
		return nil, err
	}
	res.Labels = append(res.Labels, "feature month only (default)", "feature month + previous")
	res.Reports = append(res.Reports, oneMonth, twoMonth)
	return res, nil
}

// runExtendedGraphArm trains/evaluates with graph features built over the
// feature month plus the preceding month, seeding label propagation from
// both months' churners (the abl-graphwin alternative arm).
func (e *Env) runExtendedGraphArm(trainMonth, testMonth, u int) (eval.Report, error) {
	days := e.days
	build := func(featMonth int) (*features.Frame, error) {
		win := features.MonthWindow(featMonth, days)
		base, err := e.Src.Tables(win)
		if err != nil {
			return nil, err
		}
		frame, err := features.BaseFeatures(base, win, days)
		if err != nil {
			return nil, err
		}
		frame = frame.SelectGroups(features.F1Baseline)
		graphWin := features.Window{FromAbs: win.FromAbs - days, ToAbs: win.ToAbs}
		if graphWin.FromAbs < 1 {
			graphWin.FromAbs = 1
		}
		tbl, err := e.Src.Tables(graphWin)
		if err != nil {
			return nil, err
		}
		truth, err := e.Src.Truth(featMonth)
		if err != nil {
			return nil, err
		}
		in := features.GraphFeatureInput{
			PrevChurners: features.ChurnersOf(truth),
			StableSample: features.StableOf(truth, 10),
		}
		if before, err := e.Src.Truth(featMonth - 1); err == nil {
			for id := range features.ChurnersOf(before) {
				in.PrevChurners[id] = true
			}
		}
		features.AddGraphFeatures(frame, tbl, graphWin, days, in, e.Opts.Workers)
		return frame, nil
	}

	trainFrame, err := build(trainMonth)
	if err != nil {
		return eval.Report{}, err
	}
	trainTruth, err := e.Src.Truth(trainMonth + 1)
	if err != nil {
		return eval.Report{}, err
	}
	d := trainFrame.ToDataset(core.LabelsOf(trainTruth), -1)
	var keep []int
	for i, y := range d.Y {
		if y >= 0 {
			keep = append(keep, i)
		}
	}
	d = d.Subset(keep)
	forest, err := tree.FitForest(d, tree.ForestConfig{
		NumTrees: e.Opts.Trees, MinLeafSamples: e.Opts.MinLeaf, Seed: e.Opts.Seed + 73,
	})
	if err != nil {
		return eval.Report{}, err
	}

	testFrame, err := build(testMonth)
	if err != nil {
		return eval.Report{}, err
	}
	curChurn := features.ChurnersOf(mustTruth(e, testMonth))
	labels := core.LabelsOf(mustTruth(e, testMonth+1))
	var preds []eval.Prediction
	for _, id := range testFrame.IDs() {
		if curChurn[id] {
			continue
		}
		y, ok := labels[id]
		if !ok {
			continue
		}
		row, _ := testFrame.Row(id)
		preds = append(preds, eval.Prediction{ID: id, Score: forest.Score(row), Label: y})
	}
	return eval.Evaluate(preds, u), nil
}

func mustTruth(e *Env, month int) *table.Table {
	t, err := e.Src.Truth(month)
	if err != nil {
		panic(err)
	}
	return t
}

package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
)

// Tab2Result reproduces Table 2: each OSS/graph/topic/second-order feature
// group added separately to the F1 baseline, with the PR-AUC lift.
type Tab2Result struct {
	Labels  []string
	Reports []eval.Report
	U       int
}

// ID implements Result.
func (r *Tab2Result) ID() string { return "tab2" }

// Render implements Result.
func (r *Tab2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: variety — feature groups added to the F1 baseline (U=%d)\n", r.U)
	base := r.Reports[0].PRAUC
	rows := make([][]string, 0, len(r.Labels))
	for i, label := range r.Labels {
		rep := r.Reports[i]
		rows = append(rows, []string{
			label, f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU),
			fmt.Sprintf("%.3f%%", 100*(rep.PRAUC-base)/base),
		})
	}
	renderRows(w, []string{"Features", "AUC", "PR-AUC", "R@U", "P@U", "dPR-AUC"}, rows)
}

// Tab2Variety runs the Variety experiment: F1 alone, then F1 plus each of
// F2..F9 separately, averaged over sliding-window anchors (one month of
// training features, next month's labels — Figure 6 with 1-month volume).
func Tab2Variety(opts Options) (*Tab2Result, error) {
	opts = opts.withDefaults()
	// Anchor A: test features A-1 labels A; train features A-2 labels A-1;
	// graph features of month A-2 need truth A-3 => A >= 5.
	if opts.Months < 5+opts.Repeats-1 {
		opts.Months = 5 + opts.Repeats - 1
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)

	variants := []struct {
		label string
		extra []features.Group
	}{
		{"F1 (baseline BSS)", nil},
		{"F2 (+CS)", []features.Group{features.F2CS}},
		{"F3 (+PS)", []features.Group{features.F3PS}},
		{"F4 (+call graph)", []features.Group{features.F4CallGraph}},
		{"F5 (+message graph)", []features.Group{features.F5MessageGraph}},
		{"F6 (+co-occurrence graph)", []features.Group{features.F6CooccurrenceGraph}},
		{"F7 (+complaint topics)", []features.Group{features.F7ComplaintTopics}},
		{"F8 (+search topics)", []features.Group{features.F8SearchTopics}},
		{"F9 (+second-order)", []features.Group{features.F9SecondOrder}},
	}

	res := &Tab2Result{U: u}
	for vi, variant := range variants {
		groups := append([]features.Group{features.F1Baseline}, variant.extra...)
		var reports []eval.Report
		for a := 0; a < opts.Repeats; a++ {
			anchor := 5 + a
			_, report, _, err := env.run(runSpec{
				groups:    groups,
				train:     []core.WindowSpec{core.MonthSpec(anchor-2, days)},
				test:      core.MonthSpec(anchor-1, days),
				u:         u,
				seedShift: int64(vi*1000 + a),
			})
			if err != nil {
				return nil, fmt.Errorf("tab2 %s anchor %d: %w", variant.label, anchor, err)
			}
			reports = append(reports, report)
		}
		res.Labels = append(res.Labels, variant.label)
		res.Reports = append(res.Reports, eval.MeanReport(reports))
	}
	return res, nil
}

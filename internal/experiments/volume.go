package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
)

// Fig7Result reproduces Figure 7: predictive performance as the training
// volume grows from 1 to MaxVolume months of labeled instances, at three
// top-U cutoffs.
type Fig7Result struct {
	Volumes []int
	// Reports[v][k] is the averaged report for volume Volumes[v] at cutoff
	// Us[k].
	Us      []int
	PaperUs []int
	Reports [][]eval.Report
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: more training months -> better prediction, with diminishing returns")
	for k, u := range r.Us {
		fmt.Fprintf(w, "\nU = %d (paper U = %d):\n", u, r.PaperUs[k])
		rows := make([][]string, 0, len(r.Volumes))
		for v := range r.Volumes {
			rep := r.Reports[v][k]
			rows = append(rows, []string{
				fmt.Sprintf("%d", r.Volumes[v]),
				f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU),
			})
		}
		renderRows(w, []string{"Months", "AUC", "PR-AUC", "R@U", "P@U"}, rows)
	}
}

// Fig7Volume runs the Volume experiment with baseline (F1) features on a
// dedicated world long enough for MaxVolume training months before each
// anchor. Anchors are the last Repeats months; the reported numbers are
// anchor averages, as in the paper.
func Fig7Volume(opts Options) (*Fig7Result, error) {
	opts = opts.withDefaults()
	const maxVolume = 6
	// Anchor A needs feature months A-1-maxVolume..A-2 >= 1, so A >= 8 + 1.
	opts.Months = 8 + opts.Repeats
	env := NewEnv(opts)
	days := env.Days()

	res := &Fig7Result{
		PaperUs: []int{50000, 100000, 200000},
	}
	for _, pu := range res.PaperUs {
		res.Us = append(res.Us, opts.scaleU(pu))
	}

	// The volume × anchor grid is an independent fan-out: every cell has its
	// own seed shift, so the runs execute concurrently (bounded by Workers)
	// and are collected in grid order — identical output to a sequential run.
	var specs []runSpec
	for v := 1; v <= maxVolume; v++ {
		for a := 0; a < opts.Repeats; a++ {
			anchor := 9 + a // predict churners of this month
			specs = append(specs, runSpec{
				train:     monthTrain(anchor-2, v, days),
				test:      core.MonthSpec(anchor-1, days),
				u:         res.Us[0],
				seedShift: int64(v*100 + a),
			})
		}
	}
	outcomes := env.runAll(specs)

	for v := 1; v <= maxVolume; v++ {
		perU := make([][]eval.Report, len(res.Us))
		for a := 0; a < opts.Repeats; a++ {
			out := outcomes[(v-1)*opts.Repeats+a]
			if out.err != nil {
				return nil, fmt.Errorf("fig7 volume %d anchor %d: %w", v, 9+a, out.err)
			}
			for k, u := range res.Us {
				perU[k] = append(perU[k], eval.Evaluate(out.preds, u))
			}
		}
		res.Volumes = append(res.Volumes, v)
		row := make([]eval.Report, len(res.Us))
		for k := range res.Us {
			row[k] = eval.MeanReport(perU[k])
		}
		res.Reports = append(res.Reports, row)
	}
	return res, nil
}

package experiments

import (
	"strings"
	"testing"
)

func tinyOpts() Options {
	return Options{Customers: 1200, Seed: 2, Trees: 40, MinLeaf: 15, Repeats: 1}
}

func TestRegistryIDs(t *testing.T) {
	want := []string{"abl-graphwin", "abl-minleaf", "abl-trees",
		"fig1", "fig5", "fig7", "fig8", "fig9",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := Run("nope", tinyOpts()); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestFig1(t *testing.T) {
	res := Fig1ChurnRates(tinyOpts())
	if len(res.Points) != 12 {
		t.Fatalf("points = %d", len(res.Points))
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Prepaid") {
		t.Error("render missing header")
	}
	if res.ID() != "fig1" {
		t.Errorf("ID = %q", res.ID())
	}
}

func TestTab1AndFig5ShareEnv(t *testing.T) {
	opts := tinyOpts()
	opts.Months = 4
	env := NewEnv(opts)
	tab1 := Tab1DatasetStats(env)
	if len(tab1.MonthsN) != 4 {
		t.Fatalf("tab1 months = %d", len(tab1.MonthsN))
	}
	for i := range tab1.MonthsN {
		total := tab1.Churner[i] + tab1.NonChurner[i]
		if total != opts.Customers {
			t.Errorf("month %d total = %d", i+1, total)
		}
	}
	fig5 := Fig5RechargeDistribution(env)
	if len(fig5.Counts) == 0 {
		t.Fatal("fig5 empty")
	}
	var sb strings.Builder
	tab1.Render(&sb)
	fig5.Render(&sb)
	if !strings.Contains(sb.String(), "recharge") {
		t.Error("fig5 render missing content")
	}
}

func TestTab7SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("model-training experiment")
	}
	res, err := Tab7Imbalance(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	for i, rep := range res.Reports {
		if rep.AUC < 0.5 {
			t.Errorf("%v AUC = %.3f", res.Methods[i], rep.AUC)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Weighted Instance") {
		t.Error("render missing method row")
	}
}

func TestFig8SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("model-training experiment")
	}
	res, err := Fig8EarlySignals(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Horizons) != 4 {
		t.Fatalf("horizons = %v", res.Horizons)
	}
	// The headline claim: horizon-1 beats horizon-3+ (early signals decay).
	if res.Reports[0].PRAUC <= res.Reports[2].PRAUC {
		t.Errorf("PR-AUC did not decay with horizon: h1=%.3f h3=%.3f",
			res.Reports[0].PRAUC, res.Reports[2].PRAUC)
	}
}

func TestGroupOfFeature(t *testing.T) {
	cases := map[string]string{
		"balance":                       "F1",
		"voice_quality":                 "F2",
		"page_download_throughput":      "F3",
		"loc_top1_lat":                  "F3",
		"pagerank_voice":                "F4",
		"labelpropagation_message":      "F5",
		"labelpropagation_cooccurrence": "F6",
		"complaint_topic_3":             "F7",
		"search_topic_0":                "F8",
		"innet_dura_x_total_charge":     "F9",
	}
	for name, want := range cases {
		if got := groupOfFeature(name); got != want {
			t.Errorf("groupOfFeature(%q) = %q, want %q", name, got, want)
		}
	}
}

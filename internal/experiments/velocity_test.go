package experiments

import (
	"strings"
	"testing"
)

func TestTab5VelocityStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("model-training experiment")
	}
	res, err := Tab5Velocity(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CadenceDays) != 4 || res.CadenceDays[0] != 30 || res.CadenceDays[3] != 5 {
		t.Fatalf("cadences = %v", res.CadenceDays)
	}
	for i, rep := range res.Reports {
		if rep.AUC < 0.5 || rep.AUC > 1 {
			t.Errorf("cadence %d AUC = %.3f", res.CadenceDays[i], rep.AUC)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "30 days") || !strings.Contains(sb.String(), "5 days") {
		t.Error("render missing cadence rows")
	}
}

func TestFig7VolumeStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("model-training experiment")
	}
	opts := tinyOpts()
	res, err := Fig7Volume(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Volumes) != 6 {
		t.Fatalf("volumes = %v", res.Volumes)
	}
	if len(res.Us) != 3 {
		t.Fatalf("us = %v", res.Us)
	}
	// The headline claim, loosely: max-volume PR-AUC should not be
	// dramatically below single-month (noise allows small dips, but a big
	// regression means accumulation is broken).
	first := res.Reports[0][0].PRAUC
	last := res.Reports[5][0].PRAUC
	if last < first*0.85 {
		t.Errorf("6-month volume PR-AUC %.3f far below 1-month %.3f", last, first)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "paper U = 50000") {
		t.Error("render missing scaled-U header")
	}
}

func TestAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("model-training experiment")
	}
	opts := tinyOpts()
	trees, err := AblTrees(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees.Labels) != 6 {
		t.Fatalf("abl-trees rows = %d", len(trees.Labels))
	}
	// Larger ensembles should not be dramatically worse than tiny ones.
	if trees.Reports[5].AUC < trees.Reports[0].AUC-0.05 {
		t.Errorf("400 trees AUC %.3f far below 10 trees %.3f",
			trees.Reports[5].AUC, trees.Reports[0].AUC)
	}

	gw, err := AblGraphWindow(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gw.Reports) != 2 {
		t.Fatalf("abl-graphwin rows = %d", len(gw.Reports))
	}
	var sb strings.Builder
	trees.Render(&sb)
	gw.Render(&sb)
	if !strings.Contains(sb.String(), "feature month + previous") {
		t.Error("graph-window render missing default row")
	}
}

package experiments

import (
	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
	"telcochurn/internal/parallel"
	"telcochurn/internal/sampling"
)

// runSpec is one pipeline train/evaluate execution.
type runSpec struct {
	groups     []features.Group
	train      []core.WindowSpec
	test       core.WindowSpec
	u          int
	imbalance  sampling.Method
	classifier core.Classifier
	seedShift  int64
}

// run fits a pipeline on the spec and evaluates it, returning the labeled
// test predictions (for extra cutoffs), the metric report at spec.u, and
// the fitted pipeline (for importance inspection).
func (e *Env) run(spec runSpec) ([]eval.Prediction, eval.Report, *core.Pipeline, error) {
	cfg := e.Opts.CoreConfig()
	cfg.Groups = spec.groups
	cfg.Imbalance = spec.imbalance
	cfg.Classifier = spec.classifier
	cfg.Seed += spec.seedShift
	p, err := core.Fit(e.Src, spec.train, cfg)
	if err != nil {
		return nil, eval.Report{}, nil, err
	}
	preds, report, err := p.Evaluate(e.Src, spec.test, spec.u)
	return preds, report, p, err
}

// runOutcome pairs one spec's outputs for ordered collection.
type runOutcome struct {
	preds  []eval.Prediction
	report eval.Report
	pipe   *core.Pipeline
	err    error
}

// runAll executes the given specs concurrently — the experiment-level
// repeat/window fan-out — bounded by the Workers option, and returns the
// outcomes in spec order. Each spec carries its own seed shift, so results
// are identical to a sequential run for any worker count.
func (e *Env) runAll(specs []runSpec) []runOutcome {
	out := make([]runOutcome, len(specs))
	parallel.ForGrain(e.Opts.Workers, len(specs), 1, func(i int) {
		preds, report, pipe, err := e.run(specs[i])
		out[i] = runOutcome{preds: preds, report: report, pipe: pipe, err: err}
	})
	return out
}

// monthWin abbreviates features.MonthWindow for experiment code.
func monthWin(m, days int) features.Window { return features.MonthWindow(m, days) }

// monthTrain builds v consecutive one-month training specs whose newest
// feature month is newestFeatureMonth (labels one month later each).
func monthTrain(newestFeatureMonth, v, days int) []core.WindowSpec {
	specs := make([]core.WindowSpec, 0, v)
	for m := newestFeatureMonth - v + 1; m <= newestFeatureMonth; m++ {
		specs = append(specs, core.MonthSpec(m, days))
	}
	return specs
}

package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/synth"
)

// Fig1Result reproduces Figure 1: monthly churn rates for prepaid vs
// postpaid customers over 12 months.
type Fig1Result struct {
	Points []synth.ChurnRatePoint
}

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: churn rates over 12 months (paper: prepaid avg 9.4%, postpaid avg 5.2%)")
	rows := make([][]string, 0, len(r.Points))
	var pre, post float64
	for _, p := range r.Points {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Month), pct(p.Prepaid), pct(p.Postpaid)})
		pre += p.Prepaid
		post += p.Postpaid
	}
	n := float64(len(r.Points))
	rows = append(rows, []string{"avg", pct(pre / n), pct(post / n)})
	renderRows(w, []string{"Month", "Prepaid", "Postpaid"}, rows)
}

// Fig1ChurnRates runs the Figure 1 experiment on a fresh 12-month world.
func Fig1ChurnRates(opts Options) *Fig1Result {
	opts = opts.withDefaults()
	cfg := synth.DefaultConfig()
	cfg.Customers = opts.Customers
	cfg.Seed = opts.Seed
	return &Fig1Result{Points: synth.ChurnRateSeries(cfg, 12)}
}

// Tab1Result reproduces Table 1: per-month churner / non-churner counts.
type Tab1Result struct {
	MonthsN    []int
	Churner    []int
	NonChurner []int
}

// ID implements Result.
func (r *Tab1Result) ID() string { return "tab1" }

// Render implements Result.
func (r *Tab1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: dataset statistics (paper: ~9.2% churners, stable population)")
	rows := make([][]string, 0, len(r.MonthsN))
	for i := range r.MonthsN {
		total := r.Churner[i] + r.NonChurner[i]
		rows = append(rows, []string{
			fmt.Sprintf("Month %d", r.MonthsN[i]),
			fmt.Sprintf("%d", r.Churner[i]),
			fmt.Sprintf("%d", r.NonChurner[i]),
			fmt.Sprintf("%d", total),
			pct(float64(r.Churner[i]) / float64(total)),
		})
	}
	renderRows(w, []string{"", "Churner", "No-Churner", "Total", "Rate"}, rows)
}

// Tab1DatasetStats runs the Table 1 experiment.
func Tab1DatasetStats(env *Env) *Tab1Result {
	r := &Tab1Result{}
	for _, md := range env.Months {
		churn := md.Truth.MustCol("churn").Ints
		c := 0
		for _, v := range churn {
			if v == 1 {
				c++
			}
		}
		r.MonthsN = append(r.MonthsN, md.Month)
		r.Churner = append(r.Churner, c)
		r.NonChurner = append(r.NonChurner, len(churn)-c)
	}
	return r
}

// Fig5Result reproduces Figure 5: the distribution of days-until-recharge
// among customers observed in the recharge period.
type Fig5Result struct {
	// Counts[d] = customers who recharged after d days (d=0: never).
	Counts []int
}

// ID implements Result.
func (r *Fig5Result) ID() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: recharge-period day distribution (paper: <5% of rechargers beyond 15 days)")
	recharged, late := 0, 0
	rows := make([][]string, 0, len(r.Counts))
	for d, c := range r.Counts {
		label := fmt.Sprintf("%d", d)
		if d == 0 {
			label = "never"
		} else {
			recharged += c
			if d > 15 {
				late += c
			}
		}
		rows = append(rows, []string{label, fmt.Sprintf("%d", c)})
	}
	renderRows(w, []string{"Days", "Customers"}, rows)
	if recharged > 0 {
		fmt.Fprintf(w, "rechargers beyond 15 days: %d/%d = %s (labeled churners by the 15-day rule)\n",
			late, recharged, pct(float64(late)/float64(recharged)))
	}
}

// Fig5RechargeDistribution runs the Figure 5 experiment.
func Fig5RechargeDistribution(env *Env) *Fig5Result {
	return &Fig5Result{Counts: synth.RechargeDayCounts(env.Months)}
}

package experiments

import (
	"fmt"
	"sort"
)

// runner executes one experiment id.
type runner func(Options) (Result, error)

var registry = map[string]runner{
	"fig1": func(o Options) (Result, error) { return Fig1ChurnRates(o), nil },
	"tab1": func(o Options) (Result, error) { return Tab1DatasetStats(NewEnv(o)), nil },
	"fig5": func(o Options) (Result, error) { return Fig5RechargeDistribution(NewEnv(o)), nil },
	"fig7": func(o Options) (Result, error) { return Fig7Volume(o) },
	"tab2": func(o Options) (Result, error) { return Tab2Variety(o) },
	"tab3": func(o Options) (Result, error) { return Tab3Overall(o) },
	"tab4": func(o Options) (Result, error) {
		res, err := Tab3Overall(o)
		if err != nil {
			return nil, err
		}
		return res.Importance, nil
	},
	"tab5": func(o Options) (Result, error) { return Tab5Velocity(o) },
	"tab6": func(o Options) (Result, error) { return Tab6Value(o) },
	"tab7": func(o Options) (Result, error) { return Tab7Imbalance(o) },
	"fig8": func(o Options) (Result, error) { return Fig8EarlySignals(o) },
	"fig9": func(o Options) (Result, error) { return Fig9Classifiers(o) },

	// Ablations of this reproduction's own design choices (not paper
	// artifacts; see DESIGN.md §6).
	"abl-trees":    func(o Options) (Result, error) { return AblTrees(o) },
	"abl-minleaf":  func(o Options) (Result, error) { return AblMinLeaf(o) },
	"abl-graphwin": func(o Options) (Result, error) { return AblGraphWindow(o) },
}

// IDs lists the experiment identifiers in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, opts Options) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(opts)
}

package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/fm"
	"telcochurn/internal/linear"
	"telcochurn/internal/tree"
)

// Fig9Result reproduces Figure 9: RF vs GBDT vs LIBFM vs LIBLINEAR on the
// same baseline features.
type Fig9Result struct {
	Names   []string
	Reports []eval.Report
	U       int
}

// ID implements Result.
func (r *Fig9Result) ID() string { return "fig9" }

// Render implements Result.
func (r *Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 9: classifier comparison (U=%d; paper: RF best by <3%%, features matter more)\n", r.U)
	rows := make([][]string, 0, len(r.Names))
	for i, name := range r.Names {
		rep := r.Reports[i]
		rows = append(rows, []string{name, f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU)})
	}
	renderRows(w, []string{"Classifier", "AUC", "PR-AUC", "R@U", "P@U"}, rows)
}

// Fig9Classifiers runs the comparison. All classifiers see identical
// training data (baseline features, weighted instances) per Section 5.8;
// LIBFM and LIBLINEAR binarize features into quantile indicators as the
// paper describes.
func Fig9Classifiers(opts Options) (*Fig9Result, error) {
	opts = opts.withDefaults()
	if opts.Months < 4+opts.Repeats-1 {
		opts.Months = 4 + opts.Repeats - 1
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)

	makers := []struct {
		name string
		mk   func(seed int64) core.Classifier
	}{
		{"RF", func(seed int64) core.Classifier {
			return &core.RFClassifier{Config: tree.ForestConfig{
				NumTrees: opts.Trees, MinLeafSamples: opts.MinLeaf, Seed: seed,
			}}
		}},
		{"GBDT", func(seed int64) core.Classifier {
			return &core.GBDTClassifier{Config: tree.GBDTConfig{
				NumTrees: opts.Trees, LearningRate: 0.1, MaxDepth: 4,
				MinLeafSamples: opts.MinLeaf, Seed: seed,
			}}
		}},
		{"LIBFM", func(seed int64) core.Classifier {
			return &core.FMClassifier{Config: fm.Config{LearningRate: 0.1, Seed: seed}}
		}},
		{"LIBLINEAR", func(seed int64) core.Classifier {
			return &core.LinearClassifier{Config: linear.Config{LearningRate: 0.1, Seed: seed}}
		}},
	}

	res := &Fig9Result{U: u}
	for mi, m := range makers {
		var reports []eval.Report
		for a := 0; a < opts.Repeats; a++ {
			anchor := 4 + a
			_, report, _, err := env.run(runSpec{
				train:      []core.WindowSpec{core.MonthSpec(anchor-2, days)},
				test:       core.MonthSpec(anchor-1, days),
				u:          u,
				classifier: m.mk(opts.Seed + int64(mi*111+a)),
				seedShift:  int64(mi*900 + a),
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %s: %w", m.name, err)
			}
			reports = append(reports, report)
		}
		res.Names = append(res.Names, m.name)
		res.Reports = append(res.Reports, eval.MeanReport(reports))
	}
	return res, nil
}

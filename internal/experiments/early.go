package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
)

// Fig8Result reproduces Figure 8: predictive performance when features are
// taken h months before the predicted month (early signals decay fast).
type Fig8Result struct {
	Horizons []int
	Reports  []eval.Report
	U        int
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "fig8" }

// Render implements Result.
func (r *Fig8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: earlier features -> worse prediction (U=%d; paper: ~20%% PR-AUC drop per month)\n", r.U)
	rows := make([][]string, 0, len(r.Horizons))
	for i, h := range r.Horizons {
		rep := r.Reports[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d month(s)", h),
			f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU),
		})
	}
	renderRows(w, []string{"Horizon", "AUC", "PR-AUC", "R@U", "P@U"}, rows)
}

// Fig8EarlySignals runs the early-signal experiment with baseline features:
// for horizon h, the classifier is trained on features of month T labeled by
// month T+h, and tested on features of month T+1 labeled by month T+1+h
// (the paper's shifted sliding window).
func Fig8EarlySignals(opts Options) (*Fig8Result, error) {
	opts = opts.withDefaults()
	const maxHorizon = 4
	// Need T >= 1 and T+1+maxHorizon + (Repeats-1) <= Months.
	if opts.Months < 6+maxHorizon {
		opts.Months = 6 + maxHorizon
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)

	res := &Fig8Result{U: u}
	for h := 1; h <= maxHorizon; h++ {
		var reports []eval.Report
		for a := 0; a < opts.Repeats; a++ {
			trainFeat := opts.Months - h - 1 - a
			testFeat := trainFeat + 1
			_, report, _, err := env.run(runSpec{
				train: []core.WindowSpec{{
					Features:   monthWin(trainFeat, days),
					LabelMonth: trainFeat + h,
				}},
				test: core.WindowSpec{
					Features:   monthWin(testFeat, days),
					LabelMonth: testFeat + h,
				},
				u:         u,
				seedShift: int64(h*300 + a),
			})
			if err != nil {
				return nil, fmt.Errorf("fig8 horizon %d: %w", h, err)
			}
			reports = append(reports, report)
		}
		res.Horizons = append(res.Horizons, h)
		res.Reports = append(res.Reports, eval.MeanReport(reports))
	}
	return res, nil
}

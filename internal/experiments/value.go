package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/retention"
)

// Tab6Result reproduces Table 6: A/B recharge rates for the two campaign
// months — random (domain-knowledge) offers first, classifier-matched offers
// second — plus the campaign economics behind the paper's "around 50% more
// profit" claim.
type Tab6Result struct {
	First, Second *retention.CampaignResult
	FirstProfit   retention.ProfitReport
	SecondProfit  retention.ProfitReport
}

// ID implements Result.
func (r *Tab6Result) ID() string { return "tab6" }

// Render implements Result.
func (r *Tab6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 6: business value — A/B recharge rates")
	fmt.Fprintln(w, "(paper month 8: A 1.7%/10.1%, B 18.5%/28.4%; month 9: A 1.0%/9.9%, B 30.8%/39.7%)")
	for _, res := range []*retention.CampaignResult{r.First, r.Second} {
		kind := "random offers"
		if res == r.Second {
			kind = "matched offers"
		}
		fmt.Fprintf(w, "\nCampaign month %d (%s):\n", res.Month, kind)
		rows := make([][]string, 0, len(res.Stats))
		for _, s := range res.Stats {
			tier := "top 50k-scaled"
			if s.Tier == 2 {
				tier = "50k-100k-scaled"
			}
			rows = append(rows, []string{
				tier, string(s.Group), fmt.Sprintf("%d", s.Total),
				fmt.Sprintf("%d", s.Recharged), pct(s.Rate()),
			})
		}
		renderRows(w, []string{"Tier", "Group", "Total", "Recharge", "Rate"}, rows)
	}
	fmt.Fprintln(w)
	r.FirstProfit.Render(w)
	r.SecondProfit.Render(w)
	fmt.Fprintf(w, "profit lift from matching: %s (paper: ~50%%)\n",
		pct(retention.ProfitLift(r.FirstProfit, r.SecondProfit)))
}

// Tab6Value runs the two-campaign closed loop: churn pipeline trained
// through month 6, campaigns in months 8 and 9.
func Tab6Value(opts Options) (*Tab6Result, error) {
	opts = opts.withDefaults()
	if opts.Months < 9 {
		opts.Months = 9
	}
	// The paper's campaign cells hold ~8 000 customers each; with a scaled
	// top-100k list only ~4.7% of the population is targeted, so small
	// worlds leave a handful of acceptances per cell and the A/B contrast
	// drowns in binomial noise. Keep the campaign world large enough for
	// the Table 6 shape to be visible.
	if opts.Customers < 10000 {
		opts.Customers = 10000
	}
	env := NewEnv(opts)
	days := env.Days()

	cfg := opts.CoreConfig()
	cfg.Seed += 41
	pipe, err := core.Fit(env.Src, []core.WindowSpec{core.MonthSpec(6, days)}, cfg)
	if err != nil {
		return nil, fmt.Errorf("tab6 churn pipeline: %w", err)
	}
	runner := retention.NewRunner(env.Src, pipe, retention.Config{
		TopTier:    opts.scaleU(50000),
		SecondTier: opts.scaleU(100000),
		Seed:       opts.Seed + 43,
		NumTrees:   opts.Trees,
	})
	// Pilot campaigns with random (domain-knowledge) offers in months 7 and
	// 8; the accumulated feedback trains the offer classifier that matches
	// offers in month 9 — the paper's closed loop.
	pilot, err := runner.RunPilotCampaign(7)
	if err != nil {
		return nil, fmt.Errorf("tab6 pilot campaign: %w", err)
	}
	first, err := runner.RunFirstCampaign(8)
	if err != nil {
		return nil, fmt.Errorf("tab6 first campaign: %w", err)
	}
	clf, err := runner.FitOfferClassifier(pilot, first)
	if err != nil {
		return nil, fmt.Errorf("tab6 offer classifier: %w", err)
	}
	second, err := runner.RunMatchedCampaign(9, clf)
	if err != nil {
		return nil, fmt.Errorf("tab6 matched campaign: %w", err)
	}
	eco := retention.DefaultEconomics()
	return &Tab6Result{
		First: first, Second: second,
		FirstProfit:  eco.Profit(first),
		SecondProfit: eco.Profit(second),
	}, nil
}

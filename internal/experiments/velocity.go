package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
)

// Tab5Result reproduces Table 5: faster feature/classifier update cadence
// gives a small but steady accuracy gain.
type Tab5Result struct {
	CadenceDays []int
	Reports     []eval.Report
	U           int
}

// ID implements Result.
func (r *Tab5Result) ID() string { return "tab5" }

// Render implements Result.
func (r *Tab5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 5: velocity — update cadence vs accuracy (U=%d; paper: <0.7%% PR-AUC spread)\n", r.U)
	base := r.Reports[0].PRAUC
	rows := make([][]string, 0, len(r.CadenceDays))
	for i, c := range r.CadenceDays {
		rep := r.Reports[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d days", c),
			f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU),
			fmt.Sprintf("%.3f%%", 100*(rep.PRAUC-base)/base),
		})
	}
	renderRows(w, []string{"Velocity", "AUC", "PR-AUC", "R@U", "P@U", "dPR-AUC"}, rows)
}

// Tab5Velocity runs the Velocity experiment with baseline features. A
// system refreshed every c days has, at the moment the prediction list is
// cut, folded in a fraction (1 - c/60) of the freshest labeled month (its
// labels resolve continuously through the month; a slower cadence misses
// more of them). We therefore train on the month before last in full plus a
// cadence-dependent sample of the last labeled month, keeping every feature
// window month-aligned. The paper observes <0.7% PR-AUC between 30-day and
// 5-day cadences; this construction is small and monotone in expectation by
// the Figure 7 volume curve. (Shifting the feature windows by the raw
// staleness difference instead lets them swallow up to half the churn month
// and inflates the effect ~100x; see EXPERIMENTS.md.)
func Tab5Velocity(opts Options) (*Tab5Result, error) {
	opts = opts.withDefaults()
	if opts.Months < 5+opts.Repeats-1 {
		opts.Months = 5 + opts.Repeats - 1
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)

	res := &Tab5Result{CadenceDays: []int{30, 20, 10, 5}, U: u}
	// Cadence × anchor cells are independent (per-cell seed shifts); fan them
	// out concurrently and average in grid order.
	var specs []runSpec
	for ci, cadence := range res.CadenceDays {
		frac := 1 - float64(cadence)/60
		for a := 0; a < opts.Repeats; a++ {
			anchor := 5 + a // predict churners of this month
			newest := core.MonthSpec(anchor-2, days)
			newest.SampleFrac = frac
			specs = append(specs, runSpec{
				train: []core.WindowSpec{
					core.MonthSpec(anchor-3, days), // fully labeled by any cadence
					newest,                         // partially folded in
				},
				test:      core.MonthSpec(anchor-1, days),
				u:         u,
				seedShift: int64(ci*500 + a),
			})
		}
	}
	outcomes := env.runAll(specs)
	for ci, cadence := range res.CadenceDays {
		var reports []eval.Report
		for a := 0; a < opts.Repeats; a++ {
			out := outcomes[ci*opts.Repeats+a]
			if out.err != nil {
				return nil, fmt.Errorf("tab5 cadence %d anchor %d: %w", cadence, 5+a, out.err)
			}
			reports = append(reports, out.report)
		}
		res.Reports = append(res.Reports, eval.MeanReport(reports))
	}
	return res, nil
}

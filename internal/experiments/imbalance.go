package experiments

import (
	"fmt"
	"io"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/sampling"
)

// Tab7Result reproduces Table 7: the four class-imbalance treatments under
// the baseline configuration.
type Tab7Result struct {
	Methods []sampling.Method
	Reports []eval.Report
	U       int
}

// ID implements Result.
func (r *Tab7Result) ID() string { return "tab7" }

// Render implements Result.
func (r *Tab7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 7: class-imbalance methods (U=%d; paper: Weighted Instance wins by ~10%% PR-AUC)\n", r.U)
	rows := make([][]string, 0, len(r.Methods))
	for i, m := range r.Methods {
		rep := r.Reports[i]
		rows = append(rows, []string{
			m.String(), f5(rep.AUC), f5(rep.PRAUC), f5(rep.RAtU), f5(rep.PAtU),
		})
	}
	renderRows(w, []string{"Method", "AUC", "PR-AUC", "R@U", "P@U"}, rows)
}

// Tab7Imbalance runs the imbalance comparison with baseline features.
func Tab7Imbalance(opts Options) (*Tab7Result, error) {
	opts = opts.withDefaults()
	if opts.Months < 4+opts.Repeats-1 {
		opts.Months = 4 + opts.Repeats - 1
	}
	env := NewEnv(opts)
	days := env.Days()
	u := opts.scaleU(200000)

	res := &Tab7Result{Methods: sampling.Methods(), U: u}
	for mi, method := range res.Methods {
		var reports []eval.Report
		for a := 0; a < opts.Repeats; a++ {
			anchor := 4 + a
			_, report, _, err := env.run(runSpec{
				train:     []core.WindowSpec{core.MonthSpec(anchor-2, days)},
				test:      core.MonthSpec(anchor-1, days),
				u:         u,
				imbalance: method,
				seedShift: int64(mi*700 + a),
			})
			if err != nil {
				return nil, fmt.Errorf("tab7 %s: %w", method, err)
			}
			reports = append(reports, report)
		}
		res.Reports = append(res.Reports, eval.MeanReport(reports))
	}
	return res, nil
}

package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"telcochurn/internal/core"
	"telcochurn/internal/eval"
	"telcochurn/internal/features"
)

// Tab3Result reproduces Table 3: the deployed configuration (all 150
// features, 4 months of training volume) reported at eight top-U cutoffs.
type Tab3Result struct {
	PaperUs []int
	Us      []int
	Recall  []float64
	Prec    []float64
	AUC     float64
	PRAUC   float64
	// Importance carries Table 4 alongside (same fitted model).
	Importance *Tab4Result
}

// ID implements Result.
func (r *Tab3Result) ID() string { return "tab3" }

// Render implements Result.
func (r *Tab3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3: overall performance, all 150 features, 4-month volume")
	rows := make([][]string, 0, len(r.Us))
	for i := range r.Us {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Us[i]),
			fmt.Sprintf("(%d)", r.PaperUs[i]),
			f5(r.Recall[i]),
			f5(r.Prec[i]),
		})
	}
	renderRows(w, []string{"Top U", "(paper U)", "Recall", "Precision"}, rows)
	fmt.Fprintf(w, "AUC = %s   PR-AUC = %s\n", f5(r.AUC), f5(r.PRAUC))
}

// Tab4Result reproduces Table 4: the RF Gini importance ranking with each
// feature's group.
type Tab4Result struct {
	Names      []string
	Groups     []string
	Importance []float64 // normalized, descending
	TopN       int
}

// ID implements Result.
func (r *Tab4Result) ID() string { return "tab4" }

// Render implements Result.
func (r *Tab4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 4: feature importance ranking (paper: balance #1, page_download_throughput #2)")
	n := r.TopN
	if n == 0 || n > len(r.Names) {
		n = len(r.Names)
	}
	rows := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), r.Names[i], r.Groups[i], fmt.Sprintf("%.6f", r.Importance[i]),
		})
	}
	renderRows(w, []string{"Rank", "Feature", "Category", "Importance"}, rows)
}

// Rank returns the 1-based rank of the named feature (0 if absent).
func (r *Tab4Result) Rank(name string) int {
	for i, n := range r.Names {
		if n == name {
			return i + 1
		}
	}
	return 0
}

// Tab3Overall runs the deployed configuration: all feature groups, 4 months
// of training data, predicting the last simulated month. Returns Table 3's
// cutoff sweep and Table 4's importance ranking from the same fitted forest.
func Tab3Overall(opts Options) (*Tab3Result, error) {
	opts = opts.withDefaults()
	const volume = 4
	// Anchor = last month; feature months anchor-1-volume..anchor-2 need
	// truth back to anchor-2-volume for graph seeds.
	if opts.Months < 9 {
		opts.Months = 9
	}
	env := NewEnv(opts)
	days := env.Days()
	anchor := opts.Months

	paperUs := []int{50000, 100000, 150000, 200000, 250000, 300000, 350000, 400000}
	res := &Tab3Result{PaperUs: paperUs}

	preds, _, pipe, err := env.run(runSpec{
		groups:    features.AllGroups(),
		train:     monthTrain(anchor-2, volume, days),
		test:      core.MonthSpec(anchor-1, days),
		u:         opts.scaleU(200000),
		seedShift: 31,
	})
	if err != nil {
		return nil, fmt.Errorf("tab3: %w", err)
	}
	for _, pu := range paperUs {
		u := opts.scaleU(pu)
		rep := eval.Evaluate(preds, u)
		res.Us = append(res.Us, u)
		res.Recall = append(res.Recall, rep.RAtU)
		res.Prec = append(res.Prec, rep.PAtU)
		if pu == 200000 {
			res.AUC = rep.AUC
			res.PRAUC = rep.PRAUC
		}
	}

	rf, ok := pipe.Classifier().(*core.RFClassifier)
	if !ok {
		return res, nil
	}
	res.Importance = importanceTable(rf, pipe.FeatureNames())
	return res, nil
}

// importanceTable ranks features by forest importance and tags groups.
func importanceTable(rf *core.RFClassifier, names []string) *Tab4Result {
	imp := rf.Forest().Importance()
	type fi struct {
		name string
		v    float64
	}
	ranked := make([]fi, len(names))
	for i, n := range names {
		ranked[i] = fi{n, imp[i]}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].v != ranked[b].v {
			return ranked[a].v > ranked[b].v
		}
		return ranked[a].name < ranked[b].name
	})
	out := &Tab4Result{TopN: 20}
	for _, r := range ranked {
		out.Names = append(out.Names, r.name)
		out.Groups = append(out.Groups, groupOfFeature(r.name))
		out.Importance = append(out.Importance, r.v)
	}
	return out
}

// groupOfFeature labels a wide-table column with its paper group, from the
// naming conventions of the features package.
func groupOfFeature(name string) string {
	switch {
	// Second-order products first: their names embed source-feature names.
	case strings.Contains(name, "_x_"):
		return "F9"
	case strings.HasPrefix(name, "pagerank_voice"), strings.HasPrefix(name, "labelpropagation_voice"):
		return "F4"
	case strings.HasPrefix(name, "pagerank_message"), strings.HasPrefix(name, "labelpropagation_message"):
		return "F5"
	case strings.HasPrefix(name, "pagerank_cooccurrence"), strings.HasPrefix(name, "labelpropagation_cooccurrence"):
		return "F6"
	case strings.HasPrefix(name, "complaint_topic_"):
		return "F7"
	case strings.HasPrefix(name, "search_topic_"):
		return "F8"
	case strings.HasPrefix(name, "page_"), strings.HasPrefix(name, "ps_"), strings.HasPrefix(name, "loc_"),
		strings.HasPrefix(name, "tcp_"), strings.HasPrefix(name, "streaming_"), strings.HasPrefix(name, "email_"),
		strings.HasPrefix(name, "upload_"):
		return "F3"
	case strings.HasPrefix(name, "call_success_rate"), strings.HasPrefix(name, "e2e_"), strings.HasPrefix(name, "call_drop_rate"),
		strings.HasPrefix(name, "uplink_mos"), strings.HasPrefix(name, "voice_quality"), strings.HasPrefix(name, "ip_mos"),
		strings.HasPrefix(name, "oneway_"), strings.HasPrefix(name, "noise_"), strings.HasPrefix(name, "echo_"):
		return "F2"
	default:
		return "F1"
	}
}

// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 5), each printing the same rows/series the
// paper reports, at a population scale chosen by Options. DESIGN.md §4 maps
// every experiment id to its modules; EXPERIMENTS.md records paper-vs-
// measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"telcochurn/internal/core"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// Options scales and seeds an experiment run.
type Options struct {
	// Customers is the per-month population (the paper's 2.1M scaled down;
	// top-U cutoffs scale with it). Default 4000.
	Customers int
	// Months simulated. Default 9 (Table 1); Fig7 extends internally.
	Months int
	// Seed drives the generator and all models.
	Seed int64
	// Trees is the RF/GBDT ensemble size (paper: 500; default 150 keeps
	// laptop runs quick — the curves saturate well below 500 at this scale).
	Trees int
	// MinLeaf is the minimum leaf population (paper: 100 at 2M rows;
	// default 25 at experiment scale).
	MinLeaf int
	// Repeats is how many sliding-window anchors to average (the paper uses
	// 3-7). Default 2.
	Repeats int
	// Workers caps parallelism across the whole run — experiment fan-out,
	// wide-table build, graph algorithms and forest training (0 =
	// GOMAXPROCS). Results are bit-identical for any value.
	Workers int
	// Bins enables histogram split search in the forests (ForestConfig
	// MaxBins); 0 keeps exact splits.
	Bins int
}

func (o Options) withDefaults() Options {
	if o.Customers == 0 {
		o.Customers = 4000
	}
	if o.Months == 0 {
		o.Months = 9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trees == 0 {
		o.Trees = 150
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 25
	}
	if o.Repeats == 0 {
		o.Repeats = 2
	}
	return o
}

func (o Options) forest() tree.ForestConfig {
	return tree.ForestConfig{NumTrees: o.Trees, MinLeafSamples: o.MinLeaf, Seed: o.Seed + 11, Workers: o.Workers, MaxBins: o.Bins}
}

// CoreConfig converts the knob surface into a core.Config — the single
// place the Options-to-pipeline mapping is declared, shared by every
// experiment runner and by churnctl train. Callers layer run-specific
// fields (Groups, Imbalance, Classifier, seed shifts) on top.
func (o Options) CoreConfig() core.Config {
	o = o.withDefaults()
	return core.Config{
		Forest:  o.forest(),
		Seed:    o.Seed,
		Workers: o.Workers,
	}
}

// scaleU maps a paper top-U cutoff onto this run's population.
func (o Options) scaleU(paperU int) int { return synth.ScaleU(paperU, o.Customers) }

// Env is a simulated world shared across experiments.
type Env struct {
	Opts   Options
	Months []*synth.MonthData
	Src    *core.MemorySource
	days   int
}

// NewEnv simulates Opts.Months months once.
func NewEnv(opts Options) *Env {
	opts = opts.withDefaults()
	cfg := synth.DefaultConfig()
	cfg.Customers = opts.Customers
	cfg.Months = opts.Months
	cfg.Seed = opts.Seed
	months := synth.Simulate(cfg)
	return &Env{
		Opts:   opts,
		Months: months,
		Src:    core.NewMemorySource(months, cfg.DaysPerMonth),
		days:   cfg.DaysPerMonth,
	}
}

// Days returns the days-per-month granularity.
func (e *Env) Days() int { return e.days }

// Result is the common interface of experiment outputs: a table renderable
// to text in the paper's layout.
type Result interface {
	// ID is the experiment identifier (fig1, tab2, ...).
	ID() string
	// Render writes the paper-style table.
	Render(w io.Writer)
}

// renderRows prints an aligned text table.
func renderRows(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f5(v float64) string  { return fmt.Sprintf("%.5f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

package synth

import (
	"math/rand"

	"telcochurn/internal/table"
)

// Event-stream generator: the velocity-axis counterpart of the monthly
// world simulator. Where Generate emits complete month partitions, this
// emits a plausible trickle of individual raw BSS/OSS records — the rows a
// streaming ingest path (churnd POST /v1/events, churnctl ingest) would
// receive between batch loads. It is deliberately independent of the world
// model: stream rows are extra activity layered on top of whatever the
// warehouse already holds, which is exactly the situation incremental
// feature maintenance has to handle.

// eventMix weights how generated events distribute across the streamable
// tables, loosely following the relative row volumes of the simulator.
var eventMix = []struct {
	name   string
	weight int
}{
	{TableCalls, 35},
	{TableMessages, 20},
	{TableRecharges, 15},
	{TableWeb, 12},
	{TableLocations, 10},
	{TableComplaints, 4},
	{TableSearch, 4},
}

// GenerateEvents deterministically produces n raw event rows for the given
// customers in the given month, spread across the streamable event tables,
// keyed by table name (empty tables are omitted). The same (ids, month,
// daysPerMonth, n, seed) always yields the same batch.
func GenerateEvents(ids []int64, month, daysPerMonth, n int, seed int64) map[string]*table.Table {
	rng := rand.New(rand.NewSource(seed))
	out := map[string]*table.Table{}
	if len(ids) == 0 || n <= 0 {
		return out
	}
	totalWeight := 0
	for _, m := range eventMix {
		totalWeight += m.weight
	}
	tableFor := func() string {
		w := rng.Intn(totalWeight)
		for _, m := range eventMix {
			if w < m.weight {
				return m.name
			}
			w -= m.weight
		}
		return eventMix[0].name
	}
	get := func(name string, schema *table.Schema) *table.Table {
		t := out[name]
		if t == nil {
			t = table.NewTable(schema)
			out[name] = t
		}
		return t
	}
	complaintTexts := []string{
		"network signal weak at home cannot make calls",
		"billing error charged twice for data package",
		"internet speed very slow video keeps buffering",
		"service hotline long wait no resolution",
	}
	searchTexts := []string{
		"mobile plan price comparison",
		"how to check remaining data balance",
		"china mobile number portability",
		"best family bundle offers",
	}
	for i := 0; i < n; i++ {
		imsi := ids[rng.Intn(len(ids))]
		m := int64(month)
		day := int64(1 + rng.Intn(daysPerMonth))
		switch name := tableFor(); name {
		case TableCalls:
			dur := 0.0
			success := int64(1)
			if rng.Float64() < 0.9 {
				dur = 10 + rng.ExpFloat64()*120
			} else {
				success = 0
			}
			get(name, CallsSchema).AppendRow(
				imsi, int64(1_000_000+rng.Intn(4_000_000)), m, day,
				dur, int64(rng.Intn(4)), int64(rng.Intn(2)), int64(rng.Intn(3)),
				success, int64(0), 0.5+rng.Float64()*2,
				3+rng.Float64()*1.5, 3+rng.Float64()*1.5, 3+rng.Float64()*1.5,
				int64(0), int64(0), int64(0), int64(rng.Intn(2)),
				int64(0), int64(rng.Intn(2)), int64(0), int64(0), int64(0),
			)
		case TableMessages:
			get(name, MessagesSchema).AppendRow(
				imsi, int64(1_000_000+rng.Intn(4_000_000)), m, day,
				int64(rng.Intn(4)), int64(rng.Intn(2)), int64(0), int64(rng.Intn(3)),
				int64(0), int64(0),
			)
		case TableRecharges:
			amounts := []float64{10, 30, 50, 100}
			get(name, RechargesSchema).AppendRow(imsi, m, day, amounts[rng.Intn(len(amounts))])
		case TableWeb:
			req := int64(1 + rng.Intn(40))
			succ := req - int64(rng.Intn(3))
			if succ < 0 {
				succ = 0
			}
			get(name, WebSchema).AppendRow(
				imsi, m, day, req, succ, 0.5+rng.Float64()*3, succ, 1+rng.Float64()*4,
				200+rng.Float64()*1800, 50+rng.Float64()*400, rng.Float64()*80,
				40+rng.Float64()*160, int64(5+rng.Intn(40)), int64(6+rng.Intn(42)),
				rng.Float64()*10, rng.Float64()*1000, int64(rng.Intn(5)), int64(rng.Intn(5)),
				20+rng.Float64()*200,
			)
		case TableLocations:
			get(name, LocationsSchema).AppendRow(
				imsi, m, day, int64(rng.Intn(3)), int64(rng.Intn(400)), int64(rng.Intn(20)),
				31+rng.Float64(), 121+rng.Float64(),
			)
		case TableComplaints:
			get(name, ComplaintsSchema).AppendRow(imsi, m, day, complaintTexts[rng.Intn(len(complaintTexts))])
		case TableSearch:
			get(name, SearchSchema).AppendRow(imsi, m, day, searchTexts[rng.Intn(len(searchTexts))])
		}
	}
	return out
}

package synth

import (
	"math"
	"math/rand"
	"sort"

	"telcochurn/internal/table"
)

// SimulateMonth advances the world one month and returns every raw table for
// that month. See DESIGN.md §5 for the generative model.
func (w *World) SimulateMonth() *MonthData {
	month := w.month
	md := &MonthData{
		Month:      month,
		Calls:      table.NewTable(CallsSchema),
		Messages:   table.NewTable(MessagesSchema),
		Recharges:  table.NewTable(RechargesSchema),
		Billing:    table.NewTable(BillingSchema),
		Customers:  table.NewTable(CustomersSchema),
		Complaints: table.NewTable(ComplaintsSchema),
		Web:        table.NewTable(WebSchema),
		Search:     table.NewTable(SearchSchema),
		Locations:  table.NewTable(LocationsSchema),
		Truth:      table.NewTable(TruthSchema),
	}

	w.rollCellShocks()
	w.rollCommunityShocks()

	// Deterministic iteration over customers.
	ids := make([]int64, 0, len(w.customers))
	for id := range w.customers {
		ids = append(ids, id)
	}
	sortInt64s(ids)

	churnedThisMonth := make(map[int64]bool)
	var removed []int64

	for _, id := range ids {
		c := w.customers[id]
		// Capture the phase at month start: simulateCustomerMonth advances
		// signal-phase customers to phaseChurn for next month, and only
		// customers who lived their churn month leave the population.
		wasChurnMonth := c.phase == phaseChurn
		w.simulateCustomerMonth(md, c)
		if c.churnedNow {
			churnedThisMonth[id] = true
		}
		if wasChurnMonth {
			removed = append(removed, id)
		}
	}

	// End-of-month churn decisions for surviving actives, using this month's
	// labeled churners for social contagion.
	for _, id := range ids {
		c := w.customers[id]
		if c.phase != phaseActive {
			continue
		}
		w.decideChurn(c, churnedThisMonth)
	}

	// Remove completed churners, replace with new entrants.
	for _, id := range removed {
		delete(w.customers, id)
	}
	for i := 0; i < len(removed); i++ {
		nc := w.newCustomer(w.rng.Intn(w.numCommunities))
		w.customers[nc.id] = nc
		w.assignNeighborsForEntrant(nc)
	}
	w.pruneDeadNeighbors(removed)

	w.churnedLast = churnedThisMonth
	w.month++
	return md
}

// Simulate runs the whole configured horizon and returns one MonthData per
// month.
func Simulate(cfg Config) []*MonthData {
	w := NewWorld(cfg)
	months := make([]*MonthData, 0, w.cfg.Months)
	for i := 0; i < w.cfg.Months; i++ {
		months = append(months, w.SimulateMonth())
	}
	return months
}

func (w *World) rollCellShocks() {
	for _, cl := range w.cells {
		// AR(1): shocks persist ~2-3 months; occasionally a cell degrades hard.
		cl.shock = clamp(0.6*cl.shock+0.25*w.rng.ExpFloat64()*cl.baseQuality, 0, 1)
		if w.rng.Float64() < 0.02 {
			cl.shock = clamp(cl.shock+0.5+0.3*w.rng.Float64(), 0, 1)
		}
	}
}

func (w *World) rollCommunityShocks() {
	// A community shock models e.g. a competitor promotion hitting one
	// campus: members search competitor terms this month and churn together
	// over the next months. This is what makes co-occurrence-graph label
	// propagation (F6) informative.
	for k := range w.communityShock {
		w.communityShock[k] *= 0.5
		if w.communityShock[k] < 0.05 {
			delete(w.communityShock, k)
		}
	}
	for com := 0; com < w.numCommunities; com++ {
		if w.rng.Float64() < 0.02 {
			w.communityShock[com] = 1.0
		}
	}
}

// activityDay samples the day-of-month for one usage event. Active
// customers are uniform; scripted churners shift toward the start of the
// month, producing the within-month usage decline that is the classic
// baseline churn signal (and that makes the F1 decline features work).
func (w *World) activityDay(c *customer) int {
	dpm := float64(w.cfg.DaysPerMonth)
	var d int
	switch c.phase {
	case phaseSignal:
		d = 1 + int(dpm*w.rng.Float64()*w.rng.Float64())
	case phaseChurn:
		r := w.rng.Float64()
		d = 1 + int(dpm*r*r*r)
	default:
		d = 1 + w.rng.Intn(w.cfg.DaysPerMonth)
	}
	if d > w.cfg.DaysPerMonth {
		d = w.cfg.DaysPerMonth
	}
	return d
}

// activityFactor returns the usage multiplier for the customer's phase.
func (w *World) activityFactor(c *customer) float64 {
	switch c.phase {
	case phaseEarly:
		return 0.65 + 0.08*w.rng.NormFloat64()
	case phaseSignal:
		return 0.45 + 0.1*w.rng.NormFloat64()
	case phaseChurn:
		return 0.12 + 0.05*w.rng.NormFloat64()
	default:
		return clamp(1+0.15*w.rng.NormFloat64(), 0.3, 2.0)
	}
}

func (w *World) simulateCustomerMonth(md *MonthData, c *customer) {
	activity := clamp(w.activityFactor(c), 0.02, 3)
	cellQ := w.experiencedCell(c)

	voiceCharge, voiceStats := w.emitCalls(md, c, activity, cellQ)
	smsCharge, giftSMS := w.emitMessages(md, c, activity)
	dataCharge, flux := w.emitWeb(md, c, activity, cellQ)
	w.emitSearch(md, c, activity)
	w.emitComplaints(md, c)
	w.emitLocations(md, c, activity)

	totalCharge := voiceCharge + smsCharge + dataCharge
	c.prevCharge = totalCharge

	// Balance and recharge mechanics (the labeling rule's substrate).
	rechargeValue, inRecharge, daysToRecharge, labeledChurn := w.settleBalance(md, c, totalCharge)
	c.churnedNow = labeledChurn

	// Monthly snapshots.
	giftFlux := 0.0
	if c.productKind == 2 {
		giftFlux = 200
	}
	md.Billing.AppendRow(
		c.id, md.Month, c.balance, totalCharge, rechargeValue,
		safeDiv(rechargeValue, c.balance+1), flux, dataCharge, smsCharge,
		giftFlux, voiceStats.giftDur, int64(giftSMS),
	)
	md.Customers.AppendRow(
		c.id, md.Month, int64(c.age), int64(c.gender), int64(c.psptType),
		int64(c.isShanghai), int64(c.townID), int64(c.saleID),
		int64(c.productID), c.productPrice, int64(c.productKind),
		c.creditValue, int64(c.innetMonths),
	)
	md.Truth.AppendRow(
		c.id, md.Month, boolToInt64(labeledChurn), boolToInt64(inRecharge),
		int64(daysToRecharge), boolToInt64(c.phase == phaseChurn),
		int64(c.bestOffer), c.retainBase,
	)

	// Latent dissatisfaction follows experienced quality with persistence.
	c.dissat = clamp(0.6*c.dissat+0.65*cellQ.shock+0.1*w.communityShock[c.community]+0.05*(w.rng.Float64()-0.4), 0, 1.5)
	c.innetMonths++

	// Phase transitions for scripted churners.
	switch c.phase {
	case phaseEarly:
		if w.rng.Float64() < 0.04 {
			c.phase = phaseActive // recovered before committing
		} else {
			c.phase = phaseSignal
		}
	case phaseSignal:
		if w.rng.Float64() < 0.05 {
			c.phase = phaseActive // changed their mind: a high-scoring false positive
		} else {
			c.phase = phaseChurn
		}
	}
}

type experienced struct {
	shock    float64
	baseTP   float64
	baseMOS  float64
	baseDrop float64
	delay    float64
}

func (w *World) experiencedCell(c *customer) experienced {
	cl := w.cells[c.homeCell]
	alt := w.cells[c.altCells[0]]
	// Mostly home cell, partly an alternate.
	mix := func(a, b float64) float64 { return 0.8*a + 0.2*b }
	return experienced{
		shock:    clamp(mix(cl.shock, alt.shock)+c.qualityBias+0.05*w.rng.NormFloat64(), 0, 1),
		baseTP:   mix(cl.baseTP, alt.baseTP),
		baseMOS:  mix(cl.baseMOS, alt.baseMOS),
		baseDrop: mix(cl.baseDrop, alt.baseDrop),
		delay:    mix(cl.baseDelay, alt.baseDelay),
	}
}

type voiceEmission struct {
	giftDur float64
}

var festivalDays = map[int]bool{1: true, 15: true, 30: true}

func (w *World) emitCalls(md *MonthData, c *customer, activity float64, q experienced) (charge float64, stats voiceEmission) {
	n := w.poisson(w.cfg.CallsPerMonth * c.voiceAppetite * activity)
	for i := 0; i < n; i++ {
		day := w.activityDay(c)
		peer, peerOp := w.pickCallPeer(c)
		kind := w.pickCallKind()
		mo := boolToInt(w.rng.Float64() < 0.55)
		success := 1
		if w.rng.Float64() < 0.02+0.15*q.shock {
			success = 0
		}
		dur, dropped := 0.0, 0
		connDelay := q.delay * (0.8 + 0.4*w.rng.Float64()) * (1 + 2.5*q.shock)
		mosDL := clamp(q.baseMOS-1.6*q.shock+0.2*w.rng.NormFloat64(), 1, 5)
		mosUL := clamp(mosDL-0.1+0.2*w.rng.NormFloat64(), 1, 5)
		mosIP := clamp(mosDL-0.2+0.25*w.rng.NormFloat64(), 1, 5)
		oneway := boolToInt(w.rng.Float64() < 0.002+0.03*q.shock)
		noise := boolToInt(w.rng.Float64() < 0.005+0.05*q.shock)
		echo := boolToInt(w.rng.Float64() < 0.003+0.02*q.shock)
		if success == 1 {
			dur = w.rng.ExpFloat64() * 110 * (0.5 + activity/2)
			if w.rng.Float64() < q.baseDrop*(1+4*q.shock) {
				dropped = 1
				dur *= w.rng.Float64()
			}
		}
		free := boolToInt(w.rng.Float64() < 0.25)
		gift := boolToInt(free == 0 && w.rng.Float64() < 0.08)
		if gift == 1 {
			stats.giftDur += dur
		}
		busy := boolToInt(w.rng.Float64() < 0.3)
		fest := boolToInt(festivalDays[day])
		if success == 1 && free == 0 && gift == 0 && mo == 1 {
			rate := 0.15 // yuan per minute
			if kind == CallLongDist {
				rate = 0.3
			} else if kind == CallRoam {
				rate = 0.6
			}
			charge += dur / 60 * rate
		}
		md.Calls.AppendRow(
			c.id, peer, md.Month, int64(day), dur, int64(kind), int64(mo),
			int64(peerOp), int64(success), int64(dropped), connDelay,
			mosUL, mosDL, mosIP, int64(oneway), int64(noise), int64(echo),
			int64(busy), int64(fest), int64(free), int64(gift), int64(0), int64(0),
		)
	}
	// Service-line calls: rise with dissatisfaction, but noisy and rare
	// (the paper: most churners do not complain before churning).
	svcCalls := w.poisson(0.1 + 0.8*c.dissat*c.complaintProp)
	for i := 0; i < svcCalls; i++ {
		day := 1 + w.rng.Intn(w.cfg.DaysPerMonth)
		manual := boolToInt(w.rng.Float64() < 0.5)
		md.Calls.AppendRow(
			c.id, int64(10010), md.Month, int64(day), 60+w.rng.ExpFloat64()*120,
			int64(CallLocalInner), int64(1), int64(OpSelf), int64(1), int64(0),
			1.0, 4.0, 4.0, 4.0, int64(0), int64(0), int64(0),
			int64(0), int64(0), int64(1), int64(0), int64(1), int64(manual),
		)
	}
	return charge, stats
}

func (w *World) pickCallPeer(c *customer) (int64, int) {
	r := w.rng.Float64()
	switch {
	case r < 0.8 && len(c.neighbors) > 0:
		return c.neighbors[w.rng.Intn(len(c.neighbors))], OpSelf
	case r < 0.9:
		// Off-net peer: synthetic number spaces per operator.
		if w.rng.Float64() < 0.6 {
			return 5_000_000 + int64(w.rng.Intn(1_000_000)), OpChinaMobile
		}
		return 6_000_000 + int64(w.rng.Intn(1_000_000)), OpChinaTelecom
	default:
		// Random on-net stranger.
		return 1_000_000 + int64(w.rng.Intn(len(w.customers))), OpSelf
	}
}

func (w *World) pickCallKind() int {
	r := w.rng.Float64()
	switch {
	case r < 0.55:
		return CallLocalInner
	case r < 0.78:
		return CallLocalOuter
	case r < 0.93:
		return CallLongDist
	default:
		return CallRoam
	}
}

func (w *World) emitMessages(md *MonthData, c *customer, activity float64) (charge float64, giftCnt int) {
	n := w.poisson(w.cfg.MessagesPerMonth * c.smsAppetite * activity)
	for i := 0; i < n; i++ {
		day := w.activityDay(c)
		var peer int64
		peerOp := OpSelf
		if len(c.msgPeers) > 0 && w.rng.Float64() < 0.7 {
			peer = c.msgPeers[w.rng.Intn(len(c.msgPeers))]
		} else {
			peer, peerOp = w.pickCallPeer(c)
		}
		mo := boolToInt(w.rng.Float64() < 0.5)
		mms := boolToInt(w.rng.Float64() < 0.15)
		roamInt := boolToInt(w.rng.Float64() < 0.01)
		gift := boolToInt(w.rng.Float64() < 0.1)
		if gift == 1 {
			giftCnt++
		}
		if mo == 1 && gift == 0 {
			charge += 0.1
		}
		md.Messages.AppendRow(
			c.id, peer, md.Month, int64(day), int64(MsgP2P), int64(mo),
			int64(mms), int64(peerOp), int64(roamInt), int64(gift),
		)
	}
	// Non-social messages: info-on-demand, billing notices, service SMS.
	for i, kind := range []int{MsgInfo, MsgBilling, MsgService} {
		rate := []float64{0.5, 2.0, 1.0}[i]
		for j := 0; j < w.poisson(rate); j++ {
			day := 1 + w.rng.Intn(w.cfg.DaysPerMonth)
			md.Messages.AppendRow(
				c.id, int64(10000+kind), md.Month, int64(day), int64(kind),
				int64(0), int64(0), int64(OpSelf), int64(0), int64(0),
			)
		}
	}
	return charge, giftCnt
}

func (w *World) emitWeb(md *MonthData, c *customer, activity float64, q experienced) (charge, flux float64) {
	meanDays := w.cfg.DataDaysPerMonth * math.Min(c.dataAppetite, 1.4) * activity
	days := w.poisson(meanDays)
	if days > w.cfg.DaysPerMonth {
		days = w.cfg.DaysPerMonth
	}
	// Distinct active days, phase-aware: churning customers' data days
	// cluster early in the month like their other activity. Sorted so RNG
	// consumption stays deterministic.
	seen := make(map[int]bool, days)
	for len(seen) < days {
		seen[w.activityDay(c)] = true
	}
	activeDays := make([]int, 0, len(seen))
	for day := range seen {
		activeDays = append(activeDays, day)
	}
	sort.Ints(activeDays)
	for _, day := range activeDays {
		pages := 1 + w.poisson(28*c.dataAppetite*activity)
		succRate := clamp(0.97-0.25*q.shock-0.02*w.rng.Float64(), 0.3, 1)
		succ := binomialApprox(w, pages, succRate)
		respDelay := q.delay * (1 + 2.2*q.shock) * (0.7 + 0.6*w.rng.Float64())
		browseSucc := binomialApprox(w, succ, clamp(0.98-0.15*q.shock, 0.4, 1))
		browseDelay := respDelay * (1.5 + 0.5*w.rng.Float64())
		// Throughput shrinks with cell degradation AND with the customer's
		// own disengagement — the paper's #2 feature.
		dlTP := q.baseTP * (1 - 0.45*q.shock) * (0.45 + 0.55*clamp(activity, 0, 1.3)) * (0.85 + 0.3*w.rng.Float64())
		ulTP := dlTP * (0.18 + 0.1*w.rng.Float64())
		pageSize := 180 + 240*w.rng.Float64() // KB
		dayFlux := float64(pages)*pageSize/1024 + w.rng.ExpFloat64()*12*c.dataAppetite*activity
		tcpAtt := pages + w.poisson(8)
		tcpOK := binomialApprox(w, tcpAtt, clamp(0.99-0.2*q.shock, 0.5, 1))
		rtt := (40 + 160*q.shock) * (0.8 + 0.4*w.rng.Float64())
		streamSize := w.rng.ExpFloat64() * 35 * c.dataAppetite * activity
		streamPkts := streamSize * 700
		emailCnt := w.poisson(1.2)
		emailOK := binomialApprox(w, emailCnt, 0.97)
		md.Web.AppendRow(
			c.id, md.Month, int64(day), int64(pages), int64(succ), respDelay,
			int64(browseSucc), browseDelay, dlTP, ulTP, dayFlux, rtt,
			int64(tcpOK), int64(tcpAtt), streamSize, streamPkts,
			int64(emailCnt), int64(emailOK), pageSize,
		)
		flux += dayFlux
	}
	rate := 0.29
	if c.productKind >= 1 {
		rate = 0.1 // data-bundle products
	}
	charge = flux * rate * 0.1
	return charge, flux
}

func (w *World) emitSearch(md *MonthData, c *customer, activity float64) {
	n := w.poisson(w.cfg.SearchesPerMonth * math.Min(c.dataAppetite, 1.5) * clamp(activity, 0.3, 1.5))
	if n == 0 {
		return
	}
	// Competitor-topic weight: the paper's key F8 signal. It rises with
	// latent dissatisfaction (weak early signal), community competitor
	// promotions, and spikes in the signal month.
	competitor := 0.04 + 1.1*c.dissat + 0.8*w.communityShock[c.community]
	if c.phase == phaseEarly {
		competitor += 0.4
	}
	if c.phase == phaseSignal {
		competitor += 0.9
	}
	if c.phase == phaseChurn {
		competitor += 0.8
	}
	mix := []float64{competitor, 0.7, 1.0, 1.0, 0.9, 0.8}
	for i := 0; i < n; i++ {
		day := w.activityDay(c)
		words := 2 + w.rng.Intn(4)
		md.Search.AppendRow(c.id, md.Month, int64(day), w.sampleText(searchTopics, mix, words))
	}
}

func (w *World) emitComplaints(md *MonthData, c *customer) {
	// Complaints are rare and only loosely tied to churn: a majority of
	// churners never complain (paper Section 5.3's F7 result).
	n := w.poisson(c.complaintProp * (0.2 + 1.5*c.dissat))
	for i := 0; i < n; i++ {
		day := 1 + w.rng.Intn(w.cfg.DaysPerMonth)
		mix := []float64{0.4 + 1.5*c.dissat, 0.8, 0.6, 0.5}
		words := 4 + w.rng.Intn(6)
		md.Complaints.AppendRow(c.id, md.Month, int64(day), w.sampleText(complaintTopics, mix, words))
	}
}

func (w *World) emitLocations(md *MonthData, c *customer, activity float64) {
	fixes := w.poisson(w.cfg.LocationFixesPerDay * float64(w.cfg.DaysPerMonth) * clamp(activity, 0.2, 1.2))
	for i := 0; i < fixes; i++ {
		day := w.activityDay(c)
		slot := w.rng.Intn(3)
		cellIdx := c.homeCell
		r := w.rng.Float64()
		if r > 0.9 {
			cellIdx = w.rng.Intn(len(w.cells))
		} else if r > 0.6 {
			cellIdx = c.altCells[w.rng.Intn(len(c.altCells))]
		}
		cl := w.cells[cellIdx]
		md.Locations.AppendRow(
			c.id, md.Month, int64(day), int64(slot), int64(cl.id), int64(cl.lac),
			cl.lat, cl.lon,
		)
	}
}

// settleBalance applies charges, decides recharge-period entry, recharges,
// and produces the churn label per the paper's 15-day rule.
func (w *World) settleBalance(md *MonthData, c *customer, charge float64) (rechargeValue float64, inRecharge bool, daysToRecharge int, labeledChurn bool) {
	const lowWater = 10.0
	c.balance -= charge
	switch c.phase {
	case phaseChurn:
		// Depleted; enters recharge period and never recharges.
		if c.balance > lowWater {
			c.balance = lowWater * w.rng.Float64()
		}
		c.balance = clamp(c.balance, 0, lowWater)
		return 0, true, 0, true
	case phaseSignal:
		// Stops topping up; balance drains but we keep them just above the
		// recharge threshold so the labeled churn lands next month.
		if c.balance < lowWater+2 {
			c.balance = lowWater + 2 + 3*w.rng.Float64()
		}
		return 0, false, 0, false
	}
	if c.balance >= lowWater {
		return 0, false, 0, false
	}
	// Active customer in recharge period: recharges after a small number of
	// days; ~2.4% exceed the 15-day rule and get (noisily) labeled churners
	// even though they stay (Figure 5's tail).
	inRecharge = true
	daysToRecharge = 1 + int(w.rng.ExpFloat64()*4)
	if daysToRecharge > w.cfg.DaysPerMonth {
		daysToRecharge = w.cfg.DaysPerMonth
	}
	labeledChurn = daysToRecharge > 15
	amount := c.productPrice
	for c.balance < lowWater {
		c.balance += amount
		rechargeValue += amount
		day := clamp(float64(daysToRecharge), 1, float64(w.cfg.DaysPerMonth))
		md.Recharges.AppendRow(c.id, md.Month, int64(day), amount)
	}
	return rechargeValue, inRecharge, daysToRecharge, labeledChurn
}

// personalQualityBias samples the persistent per-customer coverage handicap:
// most customers experience their cell's quality as-is, a minority suffer a
// lasting penalty (poor home coverage, an old handset). This is the stable
// quality signal the CS/PS KPI features pick up month after month.
func personalQualityBias(r *rand.Rand) float64 {
	if r.Float64() < 0.7 {
		return 0
	}
	return clamp(0.35*r.ExpFloat64(), 0, 0.9)
}

// decideChurn draws the churn decision for an active customer at month end.
func (w *World) decideChurn(c *customer, churned map[int64]bool) {
	neighborChurn := 0.0
	if len(c.neighbors) > 0 {
		n := 0
		for _, id := range c.neighbors {
			if churned[id] {
				n++
			}
		}
		neighborChurn = float64(n) / float64(len(c.neighbors))
	}
	lowBalance := clamp(1-c.balance/50, 0, 1)
	// Herd effect: losing several call partners in one month is a much
	// stronger push than losing one — this is what call-graph label
	// propagation (F4) detects.
	herd := 0.0
	if neighborChurn > 0.2 {
		herd = 1.4
	}
	shortTenureLowSpend := 0.0
	if c.innetMonths < 6 && c.prevCharge < 15 {
		// The interaction the paper's F9 finds: short tenure alone or low
		// spend alone are weak; the product is a real signal.
		shortTenureLowSpend = 1.0
	}
	z := w.cfg.BaseChurnHazard +
		1.4*c.dissat +
		1.0*lowBalance +
		0.9*(1-c.loyalty) +
		0.7*c.priceSens +
		2.0*neighborChurn +
		herd +
		0.7*w.communityShock[c.community] +
		1.2*shortTenureLowSpend -
		0.35*math.Min(c.sociality, 2) +
		0.5*w.rng.NormFloat64()
	pMain := sigmoid(z)
	// Dedicated quality-victim pathway: churn probability rises steeply
	// with sustained bad experience, concentrating this churn mode among
	// the customers whose CS/PS KPIs look worst — the headroom the paper's
	// F2/F3 groups exploit (Table 2's 12-15% PR-AUC lifts).
	pQuality := sigmoid(-6.5 + 7.5*c.dissat)
	p := 1 - (1-pMain)*(1-pQuality)
	if w.rng.Float64() < p {
		qualityDriven := w.rng.Float64() < pQuality/p
		// Abrupt churners skip the behavioral signal month, so baseline BSS
		// features cannot see them coming. Quality-, contagion- and
		// community-driven churn is disproportionately abrupt (a quality
		// victim or a customer whose neighbor ported out leaves within
		// weeks), which is what gives the OSS groups F2-F8 their headroom.
		abrupt := 0.08 + 1.6*neighborChurn + 0.35*w.communityShock[c.community]
		if qualityDriven {
			abrupt += 0.6
		}
		switch {
		case w.rng.Float64() < clamp(abrupt, 0, 0.8):
			c.phase = phaseChurn
			c.abruptChurn = true
		case w.rng.Float64() < 0.55:
			// Slow goodbye: a mild precursor month before the signal month.
			c.phase = phaseEarly
		default:
			c.phase = phaseSignal
		}
	}
}

func (w *World) assignNeighborsForEntrant(nc *customer) {
	var community, all []int64
	for id, c := range w.customers {
		if id == nc.id {
			continue
		}
		all = append(all, id)
		if c.community == nc.community {
			community = append(community, id)
		}
	}
	sortInt64s(all)
	sortInt64s(community)
	w.assignNeighbors(nc, community, all)
}

// pruneDeadNeighbors replaces departed customers in neighbor lists with
// random same-community actives, keeping call volumes stable.
func (w *World) pruneDeadNeighbors(removed []int64) {
	if len(removed) == 0 {
		return
	}
	dead := make(map[int64]bool, len(removed))
	for _, id := range removed {
		dead[id] = true
	}
	byCommunity := make(map[int][]int64)
	ids := make([]int64, 0, len(w.customers))
	for id := range w.customers {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	for _, id := range ids {
		byCommunity[w.customers[id].community] = append(byCommunity[w.customers[id].community], id)
	}
	for _, id := range ids {
		c := w.customers[id]
		for i, n := range c.neighbors {
			if !dead[n] {
				continue
			}
			pool := byCommunity[c.community]
			if len(pool) > 1 {
				c.neighbors[i] = pool[w.rng.Intn(len(pool))]
			}
		}
	}
}

// ---- small numeric helpers ----

func (w *World) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation for large rates keeps generation fast.
		v := lambda + math.Sqrt(lambda)*w.rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= w.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func binomialApprox(w *World, n int, p float64) int {
	if n <= 0 {
		return 0
	}
	p = clamp(p, 0, 1)
	if n < 16 {
		k := 0
		for i := 0; i < n; i++ {
			if w.rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := int(mean + sd*w.rng.NormFloat64() + 0.5)
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

package synth

import "telcochurn/internal/table"

// Raw table names as stored in the warehouse. These correspond to the BSS
// and OSS source tables of the paper's Figure 2 data layer.
const (
	TableCalls      = "calls"      // BSS voice CDR (per call, incl. failed attempts)
	TableMessages   = "messages"   // BSS SMS/MMS CDR (per message)
	TableRecharges  = "recharges"  // BSS recharge history (per recharge)
	TableBilling    = "billing"    // BSS monthly account snapshot
	TableCustomers  = "customers"  // BSS monthly demographic snapshot
	TableComplaints = "complaints" // BSS complaint log (text)
	TableWeb        = "web"        // OSS PS xDR: per customer per active day
	TableSearch     = "search"     // OSS PS DPI: mobile search queries (text)
	TableLocations  = "locations"  // OSS MR: measurement-report fixes
	TableTruth      = "truth"      // hidden ground truth (labels + retention latents)
)

// Call kinds for the calls table "kind" column.
const (
	CallLocalInner = iota // local, peer on the same operator
	CallLocalOuter        // local, peer on another operator
	CallLongDist          // long-distance
	CallRoam              // roaming
)

// Peer operators for the "peer_op" column.
const (
	OpSelf = iota // same operator ("inner-net")
	OpChinaMobile
	OpChinaTelecom
)

// Message kinds for the messages table "kind" column.
const (
	MsgP2P = iota
	MsgInfo
	MsgBilling
	MsgService
)

// Offer identifiers for the retention system (Section 5.5's four offers).
// OfferNone is the multi-class label for "accepts nothing".
const (
	OfferNone         = 0
	OfferCashback100  = 1 // 100 cashback on recharge of 100
	OfferCashback50   = 2 // 50 cashback on recharge of 100
	OfferFlux500MB    = 3 // 500 MB flux on recharge of 50
	OfferVoice200Min  = 4 // 200-minute voice on recharge of 50
	NumOffers         = 4 // real offers, excluding OfferNone
	NumRetentionClass = 5 // classes 0..4 incl. OfferNone
)

// IsCustomerID reports whether an ID in a peer column refers to an on-net
// customer (as opposed to an off-net synthetic number space or a service
// short code). Customer IMSIs are assigned from 1 000 000 upward; off-net
// China Mobile / China Telecom numbers live at 5 000 000 / 6 000 000.
func IsCustomerID(id int64) bool { return id >= 1_000_000 && id < 5_000_000 }

// CallsSchema describes the per-call CDR table.
var CallsSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "peer", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "dur", Type: table.Float64}, // seconds, 0 for failed attempts
	table.Field{Name: "kind", Type: table.Int64},  // CallLocalInner..CallRoam
	table.Field{Name: "mo", Type: table.Int64},    // 1 = mobile-originated (caller)
	table.Field{Name: "peer_op", Type: table.Int64},
	table.Field{Name: "success", Type: table.Int64}, // alerting reached
	table.Field{Name: "dropped", Type: table.Int64}, // dropped after answer
	table.Field{Name: "conn_delay", Type: table.Float64},
	table.Field{Name: "mos_ul", Type: table.Float64}, // uplink voice MOS
	table.Field{Name: "mos_dl", Type: table.Float64}, // downlink voice MOS
	table.Field{Name: "mos_ip", Type: table.Float64}, // IP MOS
	table.Field{Name: "oneway", Type: table.Int64},   // one-way-audio event
	table.Field{Name: "noise", Type: table.Int64},    // noise event
	table.Field{Name: "echo", Type: table.Int64},     // echo event
	table.Field{Name: "busy", Type: table.Int64},     // placed in busy hours
	table.Field{Name: "fest", Type: table.Int64},     // placed on festival days
	table.Field{Name: "free", Type: table.Int64},     // free (in-package) call
	table.Field{Name: "gift", Type: table.Int64},     // gift-quota call
	table.Field{Name: "svc", Type: table.Int64},      // call to 10010 service line
	table.Field{Name: "manual", Type: table.Int64},
)

// MessagesSchema describes the per-message table.
var MessagesSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "peer", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "kind", Type: table.Int64}, // MsgP2P..MsgService
	table.Field{Name: "mo", Type: table.Int64},
	table.Field{Name: "mms", Type: table.Int64},
	table.Field{Name: "peer_op", Type: table.Int64},
	table.Field{Name: "roam_int", Type: table.Int64},
	table.Field{Name: "gift", Type: table.Int64},
)

// RechargesSchema describes the recharge-event table.
var RechargesSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "amount", Type: table.Float64},
)

// BillingSchema describes the monthly account snapshot.
var BillingSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "balance", Type: table.Float64},
	table.Field{Name: "total_charge", Type: table.Float64},
	table.Field{Name: "recharge_value", Type: table.Float64},
	table.Field{Name: "balance_rate", Type: table.Float64}, // recharge / balance
	table.Field{Name: "gprs_flux", Type: table.Float64},
	table.Field{Name: "gprs_charge", Type: table.Float64},
	table.Field{Name: "sms_charge", Type: table.Float64},
	table.Field{Name: "gift_flux", Type: table.Float64},
	table.Field{Name: "gift_voice_dur", Type: table.Float64},
	table.Field{Name: "gift_sms_cnt", Type: table.Int64},
)

// CustomersSchema describes the monthly demographic snapshot.
var CustomersSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "age", Type: table.Int64},
	table.Field{Name: "gender", Type: table.Int64},
	table.Field{Name: "pspt_type", Type: table.Int64},
	table.Field{Name: "is_shanghai", Type: table.Int64},
	table.Field{Name: "town_id", Type: table.Int64},
	table.Field{Name: "sale_id", Type: table.Int64},
	table.Field{Name: "product_id", Type: table.Int64},
	table.Field{Name: "product_price", Type: table.Float64},
	table.Field{Name: "product_knd", Type: table.Int64},
	table.Field{Name: "credit_value", Type: table.Float64},
	table.Field{Name: "innet_dura", Type: table.Int64}, // months in net
)

// ComplaintsSchema describes the complaint log.
var ComplaintsSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "text", Type: table.String},
)

// WebSchema describes the OSS packet-switch per-customer-per-day record
// (UFDR/TDR-style aggregates with PS KPI/KQI counters).
var WebSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "page_req", Type: table.Int64},     // first GET requests
	table.Field{Name: "page_succ", Type: table.Int64},    // first GET successes
	table.Field{Name: "resp_delay", Type: table.Float64}, // page response delay, s
	table.Field{Name: "browse_succ", Type: table.Int64},  // page browsing successes
	table.Field{Name: "browse_delay", Type: table.Float64},
	table.Field{Name: "dl_tp", Type: table.Float64}, // download throughput, kbps
	table.Field{Name: "ul_tp", Type: table.Float64},
	table.Field{Name: "flux", Type: table.Float64},    // MB
	table.Field{Name: "tcp_rtt", Type: table.Float64}, // ms
	table.Field{Name: "tcp_ok", Type: table.Int64},
	table.Field{Name: "tcp_att", Type: table.Int64},
	table.Field{Name: "stream_size", Type: table.Float64},
	table.Field{Name: "stream_pkts", Type: table.Float64},
	table.Field{Name: "email_cnt", Type: table.Int64},
	table.Field{Name: "email_ok", Type: table.Int64},
	table.Field{Name: "page_size", Type: table.Float64},
)

// SearchSchema describes the search-query log (from DPI probes).
var SearchSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "text", Type: table.String},
)

// LocationsSchema describes measurement-report location fixes. lat/lon are
// the cell-site coordinates; slot is a coarse time-of-day bucket (0..2) used
// to define the spatiotemporal co-occurrence cube.
var LocationsSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "day", Type: table.Int64},
	table.Field{Name: "slot", Type: table.Int64},
	table.Field{Name: "cell", Type: table.Int64},
	table.Field{Name: "lac", Type: table.Int64},
	table.Field{Name: "lat", Type: table.Float64},
	table.Field{Name: "lon", Type: table.Float64},
)

// TruthSchema is the hidden ground-truth table. Only the labeling layer
// (churn column, Section 5's 15-day rule already applied) and the retention
// simulator read it; features never do.
var TruthSchema = table.MustSchema(
	table.Field{Name: "imsi", Type: table.Int64},
	table.Field{Name: "month", Type: table.Int64},
	table.Field{Name: "churn", Type: table.Int64},            // labeled churner this month
	table.Field{Name: "in_recharge", Type: table.Int64},      // entered recharge period
	table.Field{Name: "days_to_recharge", Type: table.Int64}, // 0 if never recharged
	table.Field{Name: "decided", Type: table.Int64},          // true behavioral churn
	table.Field{Name: "best_offer", Type: table.Int64},       // latent best retention offer
	table.Field{Name: "retain_base", Type: table.Float64},    // latent retainability in [0,1]
)

package synth

import (
	"math/rand"

	"telcochurn/internal/table"
)

// phase is the customer lifecycle state machine. The two-step churn script
// (signal month, then churn month) is what gives the paper's timeline its
// shape: features observed in month N-1 strongly predict the churn event in
// month N (Figure 6), while features from earlier months carry only the weak
// latent signals (Figure 8).
type phase int

const (
	phaseActive phase = iota
	// phaseEarly: a slow-goodbye precursor some churners go through two
	// months before the churn event — usage dips mildly and competitor
	// searches tick up while top-ups continue. This is what keeps
	// earlier-horizon prediction (Figure 8) above chance without making it
	// easy.
	phaseEarly
	// phaseSignal: the customer has decided to churn. Usage halves, top-ups
	// stop, competitor searches spike. This is the month whose features the
	// classifier sees for a churner labeled next month.
	phaseSignal
	// phaseChurn: usage collapses, the customer enters the recharge period
	// and never recharges, so the 15-day rule labels them a churner. They
	// leave the population at month end.
	phaseChurn
)

type cell struct {
	id, lac  int
	lat, lon float64
	// Static quality level of the cell (0 good .. 1 bad).
	baseQuality float64
	// shock is the current month's quality degradation in [0,1]; follows an
	// AR(1) process so degradations persist for a few months, creating the
	// weak early-warning signal in CS/PS KPIs.
	shock                                float64
	baseTP, baseMOS, baseDrop, baseDelay float64
}

type customer struct {
	id        int64
	community int
	homeCell  int
	altCells  []int
	neighbors []int64 // call partners; mostly within community
	msgPeers  []int64 // message partners; sparse subset of neighbors

	// Static demographics.
	age, gender, psptType, isShanghai, townID, saleID int
	productID, productKind                            int
	productPrice, creditValue                         float64
	innetMonths                                       int

	// Latent behavioral traits (never observable directly).
	loyalty       float64
	priceSens     float64
	voiceAppetite float64
	dataAppetite  float64
	smsAppetite   float64
	complaintProp float64
	sociality     float64 // scales degree; high-degree customers churn less
	qualityBias   float64 // persistent personal coverage handicap (handset, home)

	// Evolving state.
	dissat      float64
	balance     float64
	phase       phase
	churnedNow  bool // labeled churner this month (incl. late-recharge noise)
	bestOffer   int
	retainBase  float64
	prevCharge  float64
	abruptChurn bool // skipped the signal month (no early signal)
}

// World is the running simulation.
type World struct {
	cfg   Config
	rng   *rand.Rand
	cells []*cell

	customers map[int64]*customer
	nextID    int64
	month     int // next month to simulate (1-based)

	communityShock map[int]float64 // per-community churn shock this month
	numCommunities int

	churnedLast map[int64]bool // customers labeled churners in prior month
}

// MonthData bundles everything the simulator emits for one month.
type MonthData struct {
	Month      int
	Calls      *table.Table
	Messages   *table.Table
	Recharges  *table.Table
	Billing    *table.Table
	Customers  *table.Table
	Complaints *table.Table
	Web        *table.Table
	Search     *table.Table
	Locations  *table.Table
	Truth      *table.Table
}

// NewWorld creates a world with the given configuration (zero fields take
// defaults).
func NewWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		customers:      make(map[int64]*customer, cfg.Customers),
		nextID:         1000000,
		month:          1,
		communityShock: make(map[int]float64),
		churnedLast:    make(map[int64]bool),
	}
	w.buildCells()
	w.numCommunities = cfg.Customers/cfg.CommunitySize + 1
	for i := 0; i < cfg.Customers; i++ {
		c := w.newCustomer(w.rng.Intn(w.numCommunities))
		// Seasoned population: tenure spread out, skewed long for loyal
		// customers (the survivorship the steady state converges to).
		c.innetMonths = w.rng.Intn(24) + int(36*c.loyalty*w.rng.Float64())
		w.customers[c.id] = c
	}
	w.wireNeighbors()
	// Burn in so the first reported month is already in the stationary
	// regime (steady churn rate, warmed-up dissatisfaction and shocks).
	for i := 0; i < cfg.BurnInMonths; i++ {
		w.SimulateMonth()
	}
	w.month = 1
	return w
}

func (w *World) buildCells() {
	w.cells = make([]*cell, w.cfg.Cells)
	for i := range w.cells {
		quality := w.rng.Float64() * 0.35 // most cells decent, some poor
		w.cells[i] = &cell{
			id:          i,
			lac:         i / 8,
			lat:         31.0 + w.rng.Float64()*0.8,
			lon:         121.0 + w.rng.Float64()*0.9,
			baseQuality: quality,
			baseTP:      2200 + w.rng.Float64()*2600, // kbps
			baseMOS:     3.6 + w.rng.Float64()*0.9,
			baseDrop:    0.004 + 0.02*quality,
			baseDelay:   0.9 + 1.4*quality,
		}
	}
}

func (w *World) newCustomer(community int) *customer {
	r := w.rng
	home := (community * 3) % len(w.cells) // community members share a home cell
	alt := []int{r.Intn(len(w.cells)), r.Intn(len(w.cells))}
	dataApp := clamp(0.15+r.ExpFloat64()*0.6, 0.05, 3.0)
	voiceApp := clamp(0.2+r.ExpFloat64()*0.55, 0.05, 3.0)
	loyalty := clamp(r.NormFloat64()*0.2+0.55, 0, 1)
	priceSens := clamp(r.NormFloat64()*0.22+0.5, 0, 1)
	// Price-sensitive customers pick cheaper products, making the latent
	// trait partially observable through product_price — one of the
	// persistent baseline signals that keeps earlier-horizon prediction
	// (Figure 8) above chance.
	prices := []float64{30, 50, 100}
	priceIdx := r.Intn(3)
	if priceSens > 0.65 {
		priceIdx = 0
	} else if priceSens < 0.35 && r.Float64() < 0.6 {
		priceIdx = 2
	}
	c := &customer{
		id:            w.nextID,
		community:     community,
		homeCell:      home,
		altCells:      alt,
		age:           16 + r.Intn(60),
		gender:        r.Intn(2),
		psptType:      r.Intn(3),
		isShanghai:    boolToInt(r.Float64() < 0.7),
		townID:        r.Intn(20),
		saleID:        r.Intn(8),
		productID:     r.Intn(12),
		productKind:   r.Intn(3),
		productPrice:  prices[priceIdx],
		creditValue:   40 + r.Float64()*60,
		innetMonths:   0,
		loyalty:       loyalty,
		priceSens:     priceSens,
		voiceAppetite: voiceApp,
		dataAppetite:  dataApp,
		smsAppetite:   clamp(0.1+r.ExpFloat64()*0.5, 0.02, 3.0),
		complaintProp: clamp(0.15+r.ExpFloat64()*0.3, 0, 1.2),
		sociality:     clamp(0.3+r.ExpFloat64()*0.45, 0.1, 3.0),
		qualityBias:   personalQualityBias(r),
		dissat:        clamp(r.Float64()*0.15, 0, 1),
		balance:       20 + r.Float64()*60,
		phase:         phaseActive,
	}
	w.nextID++
	c.bestOffer = w.deriveBestOffer(c)
	c.retainBase = clamp(0.95-0.6*c.dissat-0.35*(1-c.loyalty)+0.25*(r.Float64()-0.5), 0.05, 0.95)
	return c
}

// deriveBestOffer maps latent appetites to the offer the customer would
// accept most readily. Because appetites drive observable usage, a
// multi-class classifier over usage features can learn this mapping — the
// paper's Section 4.3 retention matching.
func (w *World) deriveBestOffer(c *customer) int {
	type cand struct {
		offer int
		score float64
	}
	cands := []cand{
		{OfferFlux500MB, c.dataAppetite*1.1 + 0.1*w.rng.NormFloat64()},
		{OfferVoice200Min, c.voiceAppetite*1.0 + 0.1*w.rng.NormFloat64()},
		{OfferCashback100, c.priceSens*1.3 + 0.15*w.rng.NormFloat64()},
		{OfferCashback50, 0.75 + 0.15*w.rng.NormFloat64()},
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		if cd.score > best.score {
			best = cd
		}
	}
	return best.offer
}

// wireNeighbors builds the social graph: call partners concentrated within
// communities, degree scaled by sociality (hubs exist).
func (w *World) wireNeighbors() {
	byCommunity := make(map[int][]int64)
	var all []int64
	for id, c := range w.customers {
		byCommunity[c.community] = append(byCommunity[c.community], id)
		all = append(all, id)
	}
	// Map iteration order is random; sort for determinism.
	sortInt64s(all)
	for _, ids := range byCommunity {
		sortInt64s(ids)
	}
	for _, id := range all {
		c := w.customers[id]
		if len(c.neighbors) > 0 {
			continue
		}
		w.assignNeighbors(c, byCommunity[c.community], all)
	}
}

func (w *World) assignNeighbors(c *customer, community, all []int64) {
	want := 2 + w.poisson(float64(w.cfg.NeighborsPerCustomer)*c.sociality)
	seen := map[int64]bool{c.id: true}
	for len(c.neighbors) < want {
		var pick int64
		if w.rng.Float64() < 0.8 && len(community) > 1 {
			pick = community[w.rng.Intn(len(community))]
		} else {
			pick = all[w.rng.Intn(len(all))]
		}
		if seen[pick] {
			if len(community) <= len(seen) {
				break
			}
			continue
		}
		seen[pick] = true
		c.neighbors = append(c.neighbors, pick)
	}
	// Message partners: a sparse subset (SMS is moribund; see Config docs).
	for _, n := range c.neighbors {
		if w.rng.Float64() < 0.3 {
			c.msgPeers = append(c.msgPeers, n)
		}
	}
}

// Month returns the next month number that SimulateMonth will produce.
func (w *World) Month() int { return w.month }

// ActiveCustomers returns the number of live customers.
func (w *World) ActiveCustomers() int { return len(w.customers) }

// Config returns the effective (defaulted) configuration.
func (w *World) Config() Config { return w.cfg }

package synth

import (
	"fmt"
	"math/rand"

	"telcochurn/internal/store"
	"telcochurn/internal/table"
)

// Tables returns the month's raw tables keyed by warehouse table name.
func (md *MonthData) Tables() map[string]*table.Table {
	return map[string]*table.Table{
		TableCalls:      md.Calls,
		TableMessages:   md.Messages,
		TableRecharges:  md.Recharges,
		TableBilling:    md.Billing,
		TableCustomers:  md.Customers,
		TableComplaints: md.Complaints,
		TableWeb:        md.Web,
		TableSearch:     md.Search,
		TableLocations:  md.Locations,
		TableTruth:      md.Truth,
	}
}

// partitionWriter is the landing surface the generator writes through — the
// plain warehouse or a sharded view of one.
type partitionWriter interface {
	WritePartition(name string, month int, t *table.Table) error
}

// GenerateToWarehouse simulates cfg.Months months and writes every raw table
// as month partitions into the warehouse — the equivalent of the paper's
// daily ETL landing BSS/OSS tables in HDFS.
func GenerateToWarehouse(cfg Config, wh *store.Warehouse) error {
	return generateTo(cfg, wh)
}

// GenerateToShardedWarehouse is GenerateToWarehouse landing each month as
// hash-sharded partitions, for out-of-core builds. The simulation itself is
// identical: the same config and seed produce the same rows whatever the
// shard count.
func GenerateToShardedWarehouse(cfg Config, sw *store.ShardedWarehouse) error {
	return generateTo(cfg, sw)
}

func generateTo(cfg Config, dst partitionWriter) error {
	w := NewWorld(cfg)
	for i := 0; i < w.cfg.Months; i++ {
		md := w.SimulateMonth()
		for name, t := range md.Tables() {
			if err := dst.WritePartition(name, md.Month, t); err != nil {
				return fmt.Errorf("synth: write %s month %d: %w", name, md.Month, err)
			}
		}
	}
	return nil
}

// ChurnRatePoint is one month of Figure 1: the churn rate for prepaid and
// postpaid customers.
type ChurnRatePoint struct {
	Month    int
	Prepaid  float64
	Postpaid float64
}

// ChurnRateSeries reproduces Figure 1's series. The prepaid rate comes from
// the simulated prepaid population (the labeling rule over the truth table);
// the postpaid series is drawn around the paper's reported 5.2% average —
// postpaid customers are contract-bound and out of the system's scope, so
// they are summarized, not simulated per-record.
func ChurnRateSeries(cfg Config, months int) []ChurnRatePoint {
	cfg = cfg.withDefaults()
	cfg.Months = months
	w := NewWorld(cfg)
	post := rand.New(rand.NewSource(cfg.Seed + 7))
	points := make([]ChurnRatePoint, 0, months)
	for i := 0; i < months; i++ {
		md := w.SimulateMonth()
		churn := md.Truth.MustCol("churn").Ints
		n := len(churn)
		c := 0
		for _, v := range churn {
			if v == 1 {
				c++
			}
		}
		rate := 0.0
		if n > 0 {
			rate = float64(c) / float64(n)
		}
		points = append(points, ChurnRatePoint{
			Month:    md.Month,
			Prepaid:  rate,
			Postpaid: clamp(0.052+0.008*post.NormFloat64(), 0.03, 0.08),
		})
	}
	return points
}

// RechargeDayCounts reproduces Figure 5's histogram: for every customer
// observed in a recharge period across the given months, the number of days
// until they recharged (bucket 0 = never recharged within the month, i.e.
// the hard churners). Index i holds the count of customers who recharged
// after i days.
func RechargeDayCounts(months []*MonthData) []int {
	if len(months) == 0 {
		return nil
	}
	maxDay := 0
	type obs struct{ inRecharge, day int64 }
	var all []obs
	for _, md := range months {
		inR := md.Truth.MustCol("in_recharge").Ints
		dtr := md.Truth.MustCol("days_to_recharge").Ints
		for i := range inR {
			if inR[i] == 1 {
				all = append(all, obs{inR[i], dtr[i]})
				if int(dtr[i]) > maxDay {
					maxDay = int(dtr[i])
				}
			}
		}
	}
	counts := make([]int, maxDay+1)
	for _, o := range all {
		counts[o.day]++
	}
	return counts
}

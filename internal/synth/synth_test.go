package synth

import (
	"testing"

	"telcochurn/internal/store"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Customers = 800
	cfg.Months = 4
	cfg.BurnInMonths = 4
	return cfg
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(smallConfig())
	b := Simulate(smallConfig())
	for m := range a {
		for name, ta := range a[m].Tables() {
			tb := b[m].Tables()[name]
			if ta.NumRows() != tb.NumRows() {
				t.Fatalf("month %d table %s rows differ: %d vs %d", m+1, name, ta.NumRows(), tb.NumRows())
			}
		}
		// Spot-check full equality on the truth table.
		ta, tb := a[m].Truth, b[m].Truth
		for i := 0; i < ta.NumRows(); i++ {
			for c := range ta.Cols {
				if ta.Row(i)[c] != tb.Row(i)[c] {
					t.Fatalf("truth month %d cell (%d,%d) differs", m+1, i, c)
				}
			}
		}
	}
}

func TestSimulateDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a := Simulate(cfg)
	cfg.Seed = 99
	b := Simulate(cfg)
	if a[0].Calls.NumRows() == b[0].Calls.NumRows() &&
		a[1].Calls.NumRows() == b[1].Calls.NumRows() &&
		a[2].Calls.NumRows() == b[2].Calls.NumRows() {
		t.Error("different seeds produced identical call volumes across months")
	}
}

func TestAllTablesValid(t *testing.T) {
	for _, md := range Simulate(smallConfig()) {
		for name, tb := range md.Tables() {
			if err := tb.Validate(); err != nil {
				t.Errorf("month %d table %s invalid: %v", md.Month, name, err)
			}
			if tb.NumRows() == 0 && name != TableComplaints {
				t.Errorf("month %d table %s unexpectedly empty", md.Month, name)
			}
		}
	}
}

func TestChurnRateInPaperBand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Customers = 2000
	cfg.Months = 6
	months := Simulate(cfg)
	total, churn := 0, 0
	for _, md := range months {
		col := md.Truth.MustCol("churn").Ints
		total += len(col)
		for _, v := range col {
			if v == 1 {
				churn++
			}
		}
	}
	rate := float64(churn) / float64(total)
	// Paper Table 1: ~9.2% average; allow a generous band for small worlds.
	if rate < 0.06 || rate > 0.13 {
		t.Errorf("average churn rate %.3f outside [0.06, 0.13]", rate)
	}
}

func TestPopulationStable(t *testing.T) {
	cfg := smallConfig()
	for _, md := range Simulate(cfg) {
		if got := md.Truth.NumRows(); got != cfg.Customers {
			t.Errorf("month %d population %d, want %d", md.Month, got, cfg.Customers)
		}
	}
}

func TestChurnersLeavePopulation(t *testing.T) {
	months := Simulate(smallConfig())
	// Hard churners (decided=1) of month m must not appear in month m+1.
	for m := 0; m+1 < len(months); m++ {
		decided := map[int64]bool{}
		tr := months[m].Truth
		ids := tr.MustCol("imsi").Ints
		dec := tr.MustCol("decided").Ints
		for i, id := range ids {
			if dec[i] == 1 {
				decided[id] = true
			}
		}
		next := months[m+1].Truth.MustCol("imsi").Ints
		for _, id := range next {
			if decided[id] {
				t.Fatalf("decided churner %d of month %d still present in month %d", id, m+1, m+2)
			}
		}
	}
}

func TestLabelRule15Days(t *testing.T) {
	for _, md := range Simulate(smallConfig()) {
		tr := md.Truth
		churn := tr.MustCol("churn").Ints
		inR := tr.MustCol("in_recharge").Ints
		days := tr.MustCol("days_to_recharge").Ints
		for i := range churn {
			labeled := churn[i] == 1
			ruled := inR[i] == 1 && (days[i] == 0 || days[i] > 15)
			if labeled != ruled {
				t.Fatalf("row %d: label %v but rule says %v (in_recharge=%d days=%d)",
					i, labeled, ruled, inR[i], days[i])
			}
		}
	}
}

func TestRechargeDayCounts(t *testing.T) {
	months := Simulate(smallConfig())
	counts := RechargeDayCounts(months)
	if len(counts) == 0 {
		t.Fatal("no recharge-period observations")
	}
	recharged, late := 0, 0
	for d, c := range counts {
		if d == 0 {
			continue
		}
		recharged += c
		if d > 15 {
			late += c
		}
	}
	if recharged == 0 {
		t.Fatal("nobody recharged")
	}
	frac := float64(late) / float64(recharged)
	// Figure 5: less than 5% of rechargers go beyond 15 days.
	if frac > 0.08 {
		t.Errorf("late-recharge fraction %.3f, want < 0.08", frac)
	}
}

func TestChurnRateSeries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Customers = 800
	points := ChurnRateSeries(cfg, 12)
	if len(points) != 12 {
		t.Fatalf("points = %d", len(points))
	}
	var pre, post float64
	for _, p := range points {
		pre += p.Prepaid
		post += p.Postpaid
	}
	pre /= 12
	post /= 12
	// Figure 1: prepaid ~9.4% clearly above postpaid ~5.2%.
	if pre <= post {
		t.Errorf("prepaid %.3f not above postpaid %.3f", pre, post)
	}
	if post < 0.03 || post > 0.08 {
		t.Errorf("postpaid average %.3f outside band", post)
	}
}

func TestGenerateToWarehouse(t *testing.T) {
	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Months = 2
	if err := GenerateToWarehouse(cfg, wh); err != nil {
		t.Fatal(err)
	}
	tables, err := wh.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Errorf("warehouse has %d tables, want 10", len(tables))
	}
	months, err := wh.Months(TableCalls)
	if err != nil {
		t.Fatal(err)
	}
	if len(months) != 2 {
		t.Errorf("calls partitions = %v", months)
	}
	calls, err := wh.ReadPartition(TableCalls, 1)
	if err != nil {
		t.Fatal(err)
	}
	if calls.NumRows() == 0 {
		t.Error("persisted calls partition empty")
	}
}

func TestIsCustomerID(t *testing.T) {
	if !IsCustomerID(1_000_000) || !IsCustomerID(3_500_000) {
		t.Error("customer range misclassified")
	}
	if IsCustomerID(10010) || IsCustomerID(5_200_000) || IsCustomerID(6_100_000) {
		t.Error("service/off-net numbers classified as customers")
	}
}

func TestVocabulariesDisjointFromTopicsStructure(t *testing.T) {
	cv := ComplaintVocabulary()
	sv := SearchVocabulary()
	if len(cv) < 50 || len(sv) < 80 {
		t.Errorf("vocab sizes %d/%d too small", len(cv), len(sv))
	}
	seen := map[string]bool{}
	for _, w := range cv {
		if seen[w] {
			t.Fatalf("duplicate complaint word %q", w)
		}
		seen[w] = true
	}
}

func TestScaleU(t *testing.T) {
	if got := ScaleU(50000, PaperPopulation); got != 50000 {
		t.Errorf("identity scale = %d", got)
	}
	if got := ScaleU(50000, 2100); got != 50 {
		t.Errorf("ScaleU = %d, want 50", got)
	}
	if got := ScaleU(1, 10); got != 1 {
		t.Errorf("ScaleU floor = %d, want 1", got)
	}
}

func TestTruthColumnsInRange(t *testing.T) {
	for _, md := range Simulate(smallConfig()) {
		tr := md.Truth
		best := tr.MustCol("best_offer").Ints
		base := tr.MustCol("retain_base").Floats
		for i := range best {
			if best[i] < 1 || best[i] > NumOffers {
				t.Fatalf("best_offer %d out of range", best[i])
			}
			if base[i] < 0 || base[i] > 1 {
				t.Fatalf("retain_base %g out of range", base[i])
			}
		}
	}
}

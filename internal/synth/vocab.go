package synth

// Text generation for complaint and search-query logs (Section 4.1.3 of the
// paper). Each text source has a small set of latent topics; a customer's
// monthly text is a bag of words drawn from a mixture over topics. Churn
// intent shifts search text toward the competitor topic (the paper: "search
// other operators' hotline, search new handset"), and dissatisfaction shifts
// complaints toward the network-quality topic — but complaint volume stays
// low and noisy, reproducing the paper's finding that F7 adds only ~2%.

// topic is a named word list; words are drawn uniformly within a topic,
// which is enough structure for LDA to recover topic proportions.
type topic struct {
	name  string
	words []string
}

var complaintTopics = []topic{
	{name: "network", words: []string{
		"signal", "weak", "drop", "dropped", "call_fail", "no_service", "dead_zone",
		"slow", "internet", "buffering", "timeout", "coverage", "disconnect",
		"latency", "4g", "3g", "unstable", "outage", "reconnect", "interference",
	}},
	{name: "billing", words: []string{
		"charge", "overcharge", "bill", "fee", "deduction", "balance", "refund",
		"wrong_amount", "hidden_fee", "package", "tariff", "invoice", "dispute",
		"double_billed", "credit", "payment", "price", "expensive", "rate", "plan",
	}},
	{name: "service", words: []string{
		"hotline", "agent", "rude", "wait", "queue", "unresolved", "callback",
		"store", "sim", "replacement", "activation", "transfer", "slow_response",
		"complaint", "escalate", "manager", "apology", "ticket", "follow_up", "closed",
	}},
	{name: "handset", words: []string{
		"phone", "handset", "battery", "screen", "upgrade", "warranty", "repair",
		"broken", "settings", "apn", "configuration", "volte", "compatibility",
		"firmware", "hotspot", "bluetooth", "contacts", "storage", "camera", "reset",
	}},
}

var searchTopics = []topic{
	{name: "competitor", words: []string{
		"china_mobile", "china_telecom", "cmcc", "ct_plan", "port_number",
		"switch_operator", "mnp", "competitor_offer", "new_sim", "operator_compare",
		"telecom_hotline", "mobile_hotline", "cheap_plan", "transfer_number",
		"cancel_service", "contract_free", "better_signal", "operator_review",
		"unsubscribe", "number_portability",
	}},
	{name: "handset", words: []string{
		"new_phone", "smartphone", "iphone", "android", "phone_review",
		"phone_price", "dual_sim", "phone_deal", "flagship", "budget_phone",
		"screen_size", "battery_life", "camera_test", "phone_shop", "trade_in",
		"unlock_phone", "phone_compare", "5g_phone", "accessories", "phone_case",
	}},
	{name: "news", words: []string{
		"news", "weather", "sports", "football", "stocks", "finance", "politics",
		"headline", "breaking", "local_news", "world", "economy", "celebrity",
		"traffic", "air_quality", "holiday", "festival", "lottery", "horoscope", "tv",
	}},
	{name: "shopping", words: []string{
		"taobao", "discount", "coupon", "delivery", "online_shop", "groceries",
		"clothes", "shoes", "electronics", "flash_sale", "cashback", "review",
		"price_check", "order_status", "refund_policy", "gift", "brand", "mall",
		"payment_app", "wallet",
	}},
	{name: "video", words: []string{
		"video", "streaming", "movie", "series", "episode", "download", "music",
		"mv", "live_stream", "short_video", "trailer", "anime", "drama", "comedy",
		"variety_show", "documentary", "playlist", "karaoke", "concert", "game_stream",
	}},
	{name: "life", words: []string{
		"recipe", "restaurant", "map", "bus_route", "train_ticket", "flight",
		"hotel", "job", "resume", "apartment", "rent", "hospital", "clinic",
		"school", "exam", "translation", "dictionary", "bank", "insurance", "tax",
	}},
}

// ComplaintVocabulary returns the full complaint vocabulary (all topic words,
// deduplicated, sorted by topic then position). The paper's complaint
// vocabulary has 2 408 words; ours is proportionally small but has the same
// mixture structure.
func ComplaintVocabulary() []string { return vocabOf(complaintTopics) }

// SearchVocabulary returns the full search-query vocabulary. The paper's has
// 15 974 words.
func SearchVocabulary() []string { return vocabOf(searchTopics) }

func vocabOf(topics []topic) []string {
	seen := make(map[string]struct{})
	var words []string
	for _, t := range topics {
		for _, w := range t.words {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			words = append(words, w)
		}
	}
	return words
}

// sampleText draws n words from a mixture over topics, where mix[i] is the
// unnormalized weight of topics[i], and joins them with spaces.
func (w *World) sampleText(topics []topic, mix []float64, n int) string {
	total := 0.0
	for _, m := range mix {
		total += m
	}
	buf := make([]byte, 0, n*10)
	for i := 0; i < n; i++ {
		r := w.rng.Float64() * total
		t := 0
		for t < len(mix)-1 && r > mix[t] {
			r -= mix[t]
			t++
		}
		words := topics[t].words
		word := words[w.rng.Intn(len(words))]
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, word...)
	}
	return string(buf)
}

// Package synth generates the synthetic telco world that substitutes for the
// paper's proprietary 9-month operator dataset (see DESIGN.md §2 and §5).
//
// Each month the simulator emits raw BSS records (per-call CDRs, per-message
// records, recharges, monthly billing and demographic snapshots, complaint
// texts) and raw OSS records (per-day packet-switch web/quality records,
// search-query texts, measurement-report location fixes), plus a hidden
// ground-truth table used only for labeling and retention simulation.
//
// The churn process is driven by the same signal families the paper reports
// as informative — low balance, usage decline, poor network quality (CS and
// PS KPIs), social contagion over call and co-occurrence graphs, competitor
// search intensity — with lead-lag structure chosen so the paper's
// qualitative results (Figures 7-9, Tables 2-7) reproduce in shape.
package synth

// Config parameterizes the synthetic world.
type Config struct {
	// Seed makes the whole simulation deterministic.
	Seed int64
	// Customers is the target number of active prepaid customers per month.
	// Churners are replaced by new entrants, keeping the population in the
	// "dynamic balance" of Table 1.
	Customers int
	// Months is how many months to simulate.
	Months int

	// CommunitySize is the mean size of social communities. Call-graph edges
	// and location co-occurrence concentrate within communities, which is
	// what makes the graph features (F4, F6) informative.
	CommunitySize int
	// NeighborsPerCustomer is the mean number of distinct call partners.
	NeighborsPerCustomer int

	// CallsPerMonth is the mean number of calls for an average customer.
	CallsPerMonth float64
	// MessagesPerMonth is the mean number of SMS/MMS for an average
	// customer. The paper notes SMS is moribund (OTT apps), so the message
	// graph (F5) carries little churn signal; keep this small.
	MessagesPerMonth float64
	// DataDaysPerMonth is the mean number of days with mobile-data activity.
	DataDaysPerMonth float64
	// SearchesPerMonth is the mean number of mobile search queries.
	SearchesPerMonth float64
	// LocationFixesPerDay is the mean number of measurement-report fixes.
	LocationFixesPerDay float64

	// BaseChurnHazard shifts the monthly churn hazard; calibrated so the
	// average churn rate lands near the paper's 9.2-9.4% for prepaid.
	BaseChurnHazard float64

	// Cells is the number of radio cells. Cell-level quality shocks are the
	// root cause of quality-driven churn.
	Cells int

	// DaysPerMonth fixes the simulated month length.
	DaysPerMonth int

	// BurnInMonths is how many months to simulate and discard before month 1
	// so latent state (dissatisfaction, cell shocks, phase mix, tenure
	// distribution) reaches its stationary regime — Table 1's steady ~9%
	// churn rate from the first reported month.
	BurnInMonths int
}

// DefaultConfig returns the configuration used by tests and examples: a
// small world (2 000 customers) that preserves the paper's rates and
// signal structure. Experiments scale Customers up via the Scale helpers.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Customers:            2000,
		Months:               9,
		CommunitySize:        16,
		NeighborsPerCustomer: 9,
		CallsPerMonth:        22,
		MessagesPerMonth:     6,
		DataDaysPerMonth:     18,
		SearchesPerMonth:     9,
		LocationFixesPerDay:  2,
		BaseChurnHazard:      -4.78,
		Cells:                64,
		DaysPerMonth:         30,
		BurnInMonths:         8,
	}
}

// withDefaults fills zero fields from DefaultConfig so callers can set only
// what they care about.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Customers == 0 {
		c.Customers = d.Customers
	}
	if c.Months == 0 {
		c.Months = d.Months
	}
	if c.CommunitySize == 0 {
		c.CommunitySize = d.CommunitySize
	}
	if c.NeighborsPerCustomer == 0 {
		c.NeighborsPerCustomer = d.NeighborsPerCustomer
	}
	if c.CallsPerMonth == 0 {
		c.CallsPerMonth = d.CallsPerMonth
	}
	if c.MessagesPerMonth == 0 {
		c.MessagesPerMonth = d.MessagesPerMonth
	}
	if c.DataDaysPerMonth == 0 {
		c.DataDaysPerMonth = d.DataDaysPerMonth
	}
	if c.SearchesPerMonth == 0 {
		c.SearchesPerMonth = d.SearchesPerMonth
	}
	if c.LocationFixesPerDay == 0 {
		c.LocationFixesPerDay = d.LocationFixesPerDay
	}
	if c.BaseChurnHazard == 0 {
		c.BaseChurnHazard = d.BaseChurnHazard
	}
	if c.Cells == 0 {
		c.Cells = d.Cells
	}
	if c.DaysPerMonth == 0 {
		c.DaysPerMonth = d.DaysPerMonth
	}
	if c.BurnInMonths == 0 {
		c.BurnInMonths = d.BurnInMonths
	}
	return c
}

// PaperPopulation is the approximate per-month prepaid population in the
// paper's dataset (Table 1), used to scale top-U cutoffs.
const PaperPopulation = 2_100_000

// ScaleU converts one of the paper's top-U cutoffs (e.g. 50 000) to the
// equivalent cutoff for a simulated population of size customers, keeping
// U / population fixed.
func ScaleU(paperU, customers int) int {
	u := paperU * customers / PaperPopulation
	if u < 1 {
		u = 1
	}
	return u
}

// Package parallel is the shared worker-pool substrate of the pipeline —
// the single place deciding how the wide-table build, the graph algorithms,
// forest training and the experiment fan-out spread across cores (the role
// Spark's scheduler plays for the paper's platform).
//
// Every primitive is deterministic by construction: work is identified by
// item index (never by worker identity), chunk boundaries depend only on the
// problem size (never on the worker count), and chunked reductions merge in
// chunk order. Code built on this package therefore produces bit-identical
// results for any Workers setting, provided randomness is drawn from
// per-item streams via Seed rather than from a shared RNG.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values < 1 mean GOMAXPROCS.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// DefaultGrain is the chunk size used by For and the recommended grain for
// MapChunks when per-item work is small: large enough to amortize scheduling,
// small enough to balance skewed loads.
const DefaultGrain = 256

// For runs fn(i) for every i in [0, n) across at most `workers` goroutines
// (0 = GOMAXPROCS). Items are handed out as contiguous chunks through an
// atomic cursor, so heterogeneous item costs balance automatically; fn must
// only write to item-indexed state for results to be deterministic. A panic
// in any fn is captured and re-raised in the caller's goroutine.
func For(workers, n int, fn func(i int)) {
	ForGrain(workers, n, DefaultGrain, fn)
}

// ForGrain is For with an explicit chunk size (items claimed per cursor
// bump). Grain only affects scheduling, never results.
func ForGrain(workers, n, grain int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers(workers)
	if w > (n+grain-1)/grain {
		w = (n + grain - 1) / grain
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		cursor int64
		wg     sync.WaitGroup
		pc     panicCatcher
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pc.recover()
			for {
				lo := int(atomic.AddInt64(&cursor, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	pc.repanic()
}

// MapChunks partitions [0, n) into fixed-size chunks of `grain` items —
// boundaries depend only on n and grain, never on the worker count — maps
// each chunk with fn, and returns the per-chunk results indexed by chunk.
// Reducing the returned slice left-to-right is therefore a deterministic
// merge for any Workers setting; this is the package's sharded map-reduce.
func MapChunks[T any](workers, n, grain int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	out := make([]T, chunks)
	For(workers, chunks, func(c int) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		out[c] = fn(lo, hi)
	})
	return out
}

// SumChunks runs a chunked float64 reduction over [0, n): fn sums its chunk,
// and the partials are folded in chunk order. The result is bit-identical
// for any worker count, unlike a naive atomic or per-worker accumulation.
func SumChunks(workers, n, grain int, fn func(lo, hi int) float64) float64 {
	total := 0.0
	for _, part := range MapChunks(workers, n, grain, fn) {
		total += part
	}
	return total
}

// Do runs the given independent tasks concurrently on at most `workers`
// goroutines and waits for all of them, re-raising the first panic.
func Do(workers int, tasks ...func()) {
	For(workers, len(tasks), func(i int) { tasks[i]() })
}

// Seed derives a decorrelated deterministic RNG seed for one logical stream
// (a tree index, a shard, an experiment repeat) from a base seed, using a
// splitmix64 finalization. Stream identity must be the item's index — never
// the worker's — so results do not depend on scheduling.
func Seed(base, stream int64) int64 {
	z := uint64(base)*0x9E3779B97F4A7C15 + uint64(stream) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// panicCatcher captures the first panic among a group of goroutines so the
// pool can re-raise it on the caller's side instead of crashing the process
// from a worker.
type panicCatcher struct {
	once sync.Once
	val  any
	set  bool
}

func (p *panicCatcher) recover() {
	if r := recover(); r != nil {
		p.once.Do(func() {
			p.val = r
			p.set = true
		})
	}
}

func (p *panicCatcher) repanic() {
	if p.set {
		panic(fmt.Sprintf("parallel: worker panic: %v", p.val))
	}
}

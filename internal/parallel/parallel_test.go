package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForZeroItems(t *testing.T) {
	called := false
	For(4, 0, func(i int) { called = true })
	For(4, -3, func(i int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestForOneWorkerRunsSequentially(t *testing.T) {
	var order []int
	For(1, 100, func(i int) { order = append(order, i) })
	if len(order) != 100 {
		t.Fatalf("ran %d items, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("one-worker execution out of order at %d: %d", i, v)
		}
	}
}

func TestForCoversEveryItemExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{1, 2, 255, 256, 257, 1000} {
			counts := make([]int64, n)
			For(workers, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForGrainSmallGrain(t *testing.T) {
	counts := make([]int64, 100)
	ForGrain(8, 100, 1, func(i int) { atomic.AddInt64(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForWorkerCountBounded(t *testing.T) {
	var peak, cur int64
	ForGrain(3, 1000, 1, func(i int) {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt64(&cur, -1)
	})
	if peak > 3 {
		t.Errorf("observed %d concurrent workers, cap is 3", peak)
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if !strings.Contains(r.(string), "boom-42") {
			t.Fatalf("panic value %v does not carry the original payload", r)
		}
	}()
	For(4, 100, func(i int) {
		if i == 42 {
			panic("boom-42")
		}
	})
}

func TestMapChunksDeterministicOrder(t *testing.T) {
	// Chunk results must land at chunk index regardless of worker count.
	want := MapChunks(1, 1000, 64, func(lo, hi int) int { return lo })
	for _, workers := range []int{2, 4, 16} {
		got := MapChunks(workers, 1000, 64, func(lo, hi int) int { return lo })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), len(want))
		}
		for c := range got {
			if got[c] != want[c] {
				t.Fatalf("workers=%d chunk %d starts at %d, want %d", workers, c, got[c], want[c])
			}
		}
	}
}

func TestMapChunksCoversRangeExactly(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		spans := MapChunks(4, n, 64, func(lo, hi int) [2]int { return [2]int{lo, hi} })
		next := 0
		for _, s := range spans {
			if s[0] != next || s[1] <= s[0] {
				t.Fatalf("n=%d: bad chunk %v after %d", n, s, next)
			}
			next = s[1]
		}
		if next != n && n > 0 {
			t.Fatalf("n=%d: chunks cover up to %d", n, next)
		}
		if n <= 0 && spans != nil {
			t.Fatalf("n=%d: want nil chunk list", n)
		}
	}
}

func TestSumChunksMatchesSequentialSum(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		// Spread magnitudes so float addition order matters.
		vals[i] = float64(i%97) * 1e-3 * float64(1+i%13)
	}
	ref := SumChunks(1, len(vals), 128, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	})
	for _, workers := range []int{2, 4, 8} {
		got := SumChunks(workers, len(vals), 128, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		})
		if got != ref {
			t.Fatalf("workers=%d: sum %v != sequential %v (not bit-identical)", workers, got, ref)
		}
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var ran [3]int64
	Do(2,
		func() { atomic.AddInt64(&ran[0], 1) },
		func() { atomic.AddInt64(&ran[1], 1) },
		func() { atomic.AddInt64(&ran[2], 1) },
	)
	for i, c := range ran {
		if c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
	Do(4) // zero tasks is a no-op
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive should resolve to GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Error("positive count should pass through")
	}
}

func TestSeedStreamsDiffer(t *testing.T) {
	seen := make(map[int64]bool)
	for stream := int64(0); stream < 1000; stream++ {
		s := Seed(1, stream)
		if seen[s] {
			t.Fatalf("seed collision at stream %d", stream)
		}
		seen[s] = true
	}
	if Seed(1, 5) != Seed(1, 5) {
		t.Error("Seed is not deterministic")
	}
	if Seed(1, 5) == Seed(2, 5) {
		t.Error("different bases should give different streams")
	}
}

package graph

import "telcochurn/internal/parallel"

// vertexGrain is the chunk size for per-vertex parallel sweeps. Chunk
// boundaries depend only on the vertex count, so chunked reductions (dangling
// mass, convergence delta) merge in the same order for any worker count.
const vertexGrain = 512

// PageRankOptions configures the weighted PageRank iteration of Eq. (1).
type PageRankOptions struct {
	// Damping is the paper's d (default 0.85).
	Damping float64
	// MaxIters bounds the number of sweeps (default 50).
	MaxIters int
	// Tolerance stops iteration when the L1 change per vertex falls below it
	// (default 1e-9).
	Tolerance float64
	// Workers caps sweep parallelism; 0 means GOMAXPROCS. The result is
	// bit-identical for any value.
	Workers int
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIters == 0 {
		o.MaxIters = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// PageRank computes the weighted PageRank of Eq. (1):
//
//	x_m = (1-d)/N + d * sum_{n in N(m)} x_n * w_{m,n} / deg(n)
//
// on the undirected graph, where deg(n) is n's weighted degree. The initial
// value is 1/N for every vertex (the paper initializes to 1; the fixed point
// is identical up to normalization, and we keep sum(x) = 1 so ranks are
// comparable across graphs of different sizes). Isolated vertices receive
// the teleport mass (1-d)/N plus their share of dangling redistribution.
//
// Each sweep is a gather: vertex m reads the previous iteration's scores of
// its neighbors from the front buffer and writes only next[m] in the back
// buffer, so vertices parallelize freely, and each vertex sums its adjacency
// list in a fixed order — the scores are bit-identical for any Workers.
//
// Returns a map from vertex ID to rank.
func (g *Graph) PageRank(opts PageRankOptions) map[int64]float64 {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return map[int64]float64{}
	}
	d := opts.Damping
	inv := 1.0 / float64(n)
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = inv
	}
	base := (1 - d) * inv
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Mass from dangling (isolated) vertices is redistributed uniformly,
		// preserving sum(x)=1.
		dangling := parallel.SumChunks(opts.Workers, n, vertexGrain, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				if g.degree[i] == 0 {
					s += x[i]
				}
			}
			return s
		})
		spread := d * dangling * inv
		delta := parallel.SumChunks(opts.Workers, n, vertexGrain, func(lo, hi int) float64 {
			dl := 0.0
			for i := lo; i < hi; i++ {
				sum := 0.0
				for _, e := range g.adj[i] {
					sum += x[e.to] / g.degree[e.to] * e.weight
				}
				v := base + spread + d*sum
				next[i] = v
				diff := v - x[i]
				if diff < 0 {
					diff = -diff
				}
				dl += diff
			}
			return dl
		})
		x, next = next, x
		if delta < opts.Tolerance*float64(n) {
			break
		}
	}
	out := make(map[int64]float64, n)
	for i, id := range g.ids {
		out[id] = x[i]
	}
	return out
}

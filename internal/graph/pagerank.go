package graph

// PageRankOptions configures the weighted PageRank iteration of Eq. (1).
type PageRankOptions struct {
	// Damping is the paper's d (default 0.85).
	Damping float64
	// MaxIters bounds the number of sweeps (default 50).
	MaxIters int
	// Tolerance stops iteration when the L1 change per vertex falls below it
	// (default 1e-9).
	Tolerance float64
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIters == 0 {
		o.MaxIters = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// PageRank computes the weighted PageRank of Eq. (1):
//
//	x_m = (1-d)/N + d * sum_{n in N(m)} x_n * w_{m,n} / deg(n)
//
// on the undirected graph, where deg(n) is n's weighted degree. The initial
// value is 1/N for every vertex (the paper initializes to 1; the fixed point
// is identical up to normalization, and we keep sum(x) = 1 so ranks are
// comparable across graphs of different sizes). Isolated vertices receive
// the teleport mass (1-d)/N plus their share of dangling redistribution.
//
// Returns a map from vertex ID to rank.
func (g *Graph) PageRank(opts PageRankOptions) map[int64]float64 {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return map[int64]float64{}
	}
	d := opts.Damping
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = 1.0 / float64(n)
	}
	base := (1 - d) / float64(n)
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Mass from dangling (isolated) vertices is redistributed uniformly,
		// preserving sum(x)=1.
		dangling := 0.0
		for i := range next {
			next[i] = 0
			if g.degree[i] == 0 {
				dangling += x[i]
			}
		}
		spread := d * dangling / float64(n)
		for i, edges := range g.adj {
			if g.degree[i] == 0 {
				continue
			}
			share := d * x[i] / g.degree[i]
			for _, e := range edges {
				next[e.to] += share * e.weight
			}
		}
		delta := 0.0
		for i := range next {
			next[i] += base + spread
			diff := next[i] - x[i]
			if diff < 0 {
				diff = -diff
			}
			delta += diff
		}
		x, next = next, x
		if delta < opts.Tolerance*float64(n) {
			break
		}
	}
	out := make(map[int64]float64, n)
	for i, id := range g.ids {
		out[id] = x[i]
	}
	return out
}

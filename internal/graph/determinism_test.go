package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a reproducible scale-ish-free test graph.
func randomGraph(n, edges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(int64(i))
	}
	for e := 0; e < edges; e++ {
		a := int64(rng.Intn(n))
		b := int64(rng.Intn(n))
		g.AddEdge(a, b, 0.1+rng.Float64()*10)
	}
	return g
}

// TestPageRankDeterministicAcrossWorkers asserts the hard guarantee the
// parallel refactor promises: the same graph yields bit-identical ranks for
// any worker count (gather sweeps + chunk-ordered delta reduction).
func TestPageRankDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(2000, 6000, 3)
	ref := g.PageRank(PageRankOptions{Workers: 1})
	for _, w := range []int{2, 4, 8} {
		got := g.PageRank(PageRankOptions{Workers: w})
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d ranks, want %d", w, len(got), len(ref))
		}
		for id, v := range ref {
			if got[id] != v {
				t.Fatalf("workers=%d: rank of %d = %v, want exactly %v", w, id, got[id], v)
			}
		}
	}
}

func TestLabelPropagationDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(1500, 5000, 9)
	seeds := map[int64]int{}
	for i := 0; i < 1500; i += 7 {
		seeds[int64(i)] = i % 3
	}
	ref := g.LabelPropagation(seeds, 3, LabelPropOptions{Workers: 1})
	for _, w := range []int{2, 8} {
		got := g.LabelPropagation(seeds, 3, LabelPropOptions{Workers: w})
		for id, probs := range ref {
			for c := range probs {
				if got[id][c] != probs[c] {
					t.Fatalf("workers=%d: vertex %d class %d = %v, want exactly %v",
						w, id, c, got[id][c], probs[c])
				}
			}
		}
	}
}

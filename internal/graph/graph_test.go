package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeAccumulatesAndSymmetric(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 1, 2) // same undirected edge, reversed
	if got := g.EdgeWeight(1, 2); got != 5 {
		t.Errorf("EdgeWeight = %g, want 5", got)
	}
	if got := g.EdgeWeight(2, 1); got != 5 {
		t.Errorf("reverse EdgeWeight = %g, want 5", got)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddEdgeIgnoresSelfLoopsAndNonPositive(t *testing.T) {
	g := New()
	g.AddEdge(1, 1, 5)
	g.AddEdge(1, 2, 0)
	g.AddEdge(1, 2, -3)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New()
	g.AddEdge(1, 3, 2)
	g.AddEdge(1, 2, 1)
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 2 || nb[1] != 3 {
		t.Errorf("Neighbors = %v", nb)
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %g, want 3", g.Degree(1))
	}
	if g.Degree(99) != 0 || g.Neighbors(99) != nil {
		t.Error("missing vertex should report zero degree, nil neighbors")
	}
	if !g.Has(1) || g.Has(99) {
		t.Error("Has misreports")
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			g.AddVertex(int64(i))
		}
		edges := rng.Intn(150)
		for i := 0; i < edges; i++ {
			g.AddEdge(int64(rng.Intn(n)), int64(rng.Intn(n)), 1+rng.Float64()*10)
		}
		pr := g.PageRank(PageRankOptions{})
		sum := 0.0
		for _, v := range pr {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPageRankUniformOnRing(t *testing.T) {
	g := New()
	const n = 10
	for i := 0; i < n; i++ {
		g.AddEdge(int64(i), int64((i+1)%n), 1)
	}
	pr := g.PageRank(PageRankOptions{})
	for id, v := range pr {
		if math.Abs(v-1.0/n) > 1e-9 {
			t.Errorf("ring vertex %d rank %g, want %g", id, v, 1.0/n)
		}
	}
}

func TestPageRankHubOutranksLeaves(t *testing.T) {
	g := New()
	for i := int64(1); i <= 8; i++ {
		g.AddEdge(0, i, 1)
	}
	pr := g.PageRank(PageRankOptions{})
	for i := int64(1); i <= 8; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub rank %g not above leaf %g", pr[0], pr[i])
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if got := New().PageRank(PageRankOptions{}); len(got) != 0 {
		t.Errorf("empty-graph PageRank = %v", got)
	}
}

func TestLabelPropagationSeedsFixed(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	seeds := map[int64]int{1: 1, 3: 0}
	out := g.LabelPropagation(seeds, 2, LabelPropOptions{})
	if out[1][1] != 1 || out[3][0] != 1 {
		t.Errorf("seed rows changed: %v %v", out[1], out[3])
	}
	// Vertex 2 sits between a churner and a non-churner: close to 0.5.
	if math.Abs(out[2][1]-0.5) > 1e-6 {
		t.Errorf("middle vertex churn prob = %g, want 0.5", out[2][1])
	}
}

func TestLabelPropagationTwoClusters(t *testing.T) {
	g := New()
	// Cluster A: 0-4 with seed churner 0; cluster B: 10-14 with seed stable 10.
	for i := int64(0); i < 4; i++ {
		g.AddEdge(i, i+1, 5)
	}
	for i := int64(10); i < 14; i++ {
		g.AddEdge(i, i+1, 5)
	}
	g.AddEdge(4, 10, 0.01) // weak bridge
	out := g.LabelPropagation(map[int64]int{0: 1, 14: 0}, 2, LabelPropOptions{})
	if out[2][1] < 0.8 {
		t.Errorf("cluster-A member churn prob %g, want high", out[2][1])
	}
	if out[12][1] > 0.2 {
		t.Errorf("cluster-B member churn prob %g, want low", out[12][1])
	}
}

func TestLabelPropagationSimplexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 3 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.AddVertex(int64(i))
		}
		for e := 0; e < n*2; e++ {
			g.AddEdge(int64(rng.Intn(n)), int64(rng.Intn(n)), rng.Float64()*4+0.1)
		}
		seeds := map[int64]int{0: 1}
		if n > 1 {
			seeds[1] = 0
		}
		k := 2 + rng.Intn(3)
		out := g.LabelPropagation(seeds, k, LabelPropOptions{})
		for _, probs := range out {
			sum := 0.0
			for _, p := range probs {
				if p < -1e-9 || p > 1+1e-9 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLabelPropagationIsolatedUniform(t *testing.T) {
	g := New()
	g.AddVertex(5)
	g.AddEdge(1, 2, 1)
	out := g.LabelPropagation(map[int64]int{1: 1}, 2, LabelPropOptions{})
	if math.Abs(out[5][0]-0.5) > 1e-9 {
		t.Errorf("isolated vertex probs = %v, want uniform", out[5])
	}
}

func TestValidateDetectsBrokenInvariant(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	// Break symmetry by hand.
	g.adj[0][0].weight = 99
	if err := g.Validate(); err == nil {
		t.Error("Validate should catch asymmetric edge")
	}
}

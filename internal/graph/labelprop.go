package graph

import "telcochurn/internal/parallel"

// LabelPropOptions configures label propagation.
type LabelPropOptions struct {
	// MaxIters bounds the number of sweeps (default 30).
	MaxIters int
	// Tolerance stops iteration when per-vertex L1 change falls below it
	// (default 1e-6).
	Tolerance float64
	// Workers caps sweep parallelism; 0 means GOMAXPROCS. The result is
	// bit-identical for any value.
	Workers int
}

func (o LabelPropOptions) withDefaults() LabelPropOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 30
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// LabelPropagation runs the paper's 3-step iteration (Section 4.1.2):
//
//  1. Y <- W Y
//  2. row-normalize Y
//  3. clamp the seed rows, repeat until convergence
//
// generalized to C classes. seeds maps vertex ID to class (0..C-1); those
// rows are fixed to one-hot throughout. Unlabeled vertices start uniform.
// The result maps every vertex ID to its class-probability vector.
//
// For churn features C=2 with seeds = last month's churners (class 1) plus a
// sample of stable customers (class 0); for retention features C is the
// number of campaign outcomes.
func (g *Graph) LabelPropagation(seeds map[int64]int, numClasses int, opts LabelPropOptions) map[int64][]float64 {
	opts = opts.withDefaults()
	n := g.NumVertices()
	out := make(map[int64][]float64, n)
	if n == 0 || numClasses == 0 {
		return out
	}

	y := make([][]float64, n)
	fixed := make([]int, n) // class+1 for seed rows, 0 otherwise
	for i, id := range g.ids {
		y[i] = make([]float64, numClasses)
		if cls, ok := seeds[id]; ok && cls >= 0 && cls < numClasses {
			y[i][cls] = 1
			fixed[i] = cls + 1
		} else {
			for c := range y[i] {
				y[i][c] = 1.0 / float64(numClasses)
			}
		}
	}

	next := make([][]float64, n)
	for i := range next {
		next[i] = make([]float64, numClasses)
	}

	// The sweep is already a gather (row i reads y, writes only next[i]), so
	// rows parallelize freely across the double buffers; per-chunk deltas
	// merge in chunk order, keeping the result bit-identical for any Workers.
	for iter := 0; iter < opts.MaxIters; iter++ {
		delta := parallel.SumChunks(opts.Workers, n, vertexGrain, func(lo, hi int) float64 {
			dl := 0.0
			for i := lo; i < hi; i++ {
				edges := g.adj[i]
				if fixed[i] != 0 {
					copy(next[i], y[i])
					continue
				}
				row := next[i]
				for c := range row {
					row[c] = 0
				}
				if len(edges) == 0 {
					// Isolated unlabeled vertex: stays uniform.
					for c := range row {
						row[c] = 1.0 / float64(numClasses)
					}
					continue
				}
				// Step 1: Y <- W Y restricted to row i.
				for _, e := range edges {
					src := y[e.to]
					for c := range row {
						row[c] += e.weight * src[c]
					}
				}
				// Step 2: row-normalize.
				sum := 0.0
				for _, v := range row {
					sum += v
				}
				if sum > 0 {
					for c := range row {
						row[c] /= sum
					}
				} else {
					for c := range row {
						row[c] = 1.0 / float64(numClasses)
					}
				}
				for c := range row {
					diff := row[c] - y[i][c]
					if diff < 0 {
						diff = -diff
					}
					dl += diff
				}
			}
			return dl
		})
		y, next = next, y
		if delta < opts.Tolerance*float64(n) {
			break
		}
	}

	for i, id := range g.ids {
		probs := make([]float64, numClasses)
		copy(probs, y[i])
		out[id] = probs
	}
	return out
}

// Package graph implements the sparse weighted undirected graphs of Section
// 4.1.2 — call graph, message graph and co-occurrence graph — together with
// the two algorithms the paper runs on them: weighted PageRank (Eq. 1) and
// label propagation (the 3-step iteration of Zhu & Ghahramani).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a sparse weighted undirected graph over int64 vertex IDs
// (customers keyed by IMSI). Internally vertices are densely indexed;
// adjacency is stored as index-sorted edge lists.
type Graph struct {
	ids    []int64       // dense index -> vertex ID
	index  map[int64]int // vertex ID -> dense index
	adj    [][]halfEdge  // adjacency lists
	degree []float64     // weighted degree (sum of incident edge weights)
}

type halfEdge struct {
	to     int
	weight float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[int64]int)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n / 2
}

// IDs returns the vertex IDs in insertion order. The slice is shared; do not
// modify.
func (g *Graph) IDs() []int64 { return g.ids }

// ensure returns the dense index for id, adding the vertex if new.
func (g *Graph) ensure(id int64) int {
	if i, ok := g.index[id]; ok {
		return i
	}
	i := len(g.ids)
	g.index[id] = i
	g.ids = append(g.ids, id)
	g.adj = append(g.adj, nil)
	g.degree = append(g.degree, 0)
	return i
}

// AddVertex adds an isolated vertex (no-op if present).
func (g *Graph) AddVertex(id int64) { g.ensure(id) }

// AddEdge adds weight w to the undirected edge {a, b}. Adding the same pair
// again accumulates weight (the paper's edge weights are accumulated call
// seconds / message counts / co-occurrence counts). Self-loops are ignored.
func (g *Graph) AddEdge(a, b int64, w float64) {
	if a == b || w <= 0 {
		return
	}
	ai, bi := g.ensure(a), g.ensure(b)
	g.addHalf(ai, bi, w)
	g.addHalf(bi, ai, w)
}

func (g *Graph) addHalf(from, to int, w float64) {
	for i := range g.adj[from] {
		if g.adj[from][i].to == to {
			g.adj[from][i].weight += w
			g.degree[from] += w
			return
		}
	}
	g.adj[from] = append(g.adj[from], halfEdge{to: to, weight: w})
	g.degree[from] += w
}

// EdgeWeight returns the weight of edge {a, b} (0 if absent).
func (g *Graph) EdgeWeight(a, b int64) float64 {
	ai, ok := g.index[a]
	if !ok {
		return 0
	}
	bi, ok := g.index[b]
	if !ok {
		return 0
	}
	for _, e := range g.adj[ai] {
		if e.to == bi {
			return e.weight
		}
	}
	return 0
}

// Degree returns the weighted degree of vertex id (0 if absent).
func (g *Graph) Degree(id int64) float64 {
	i, ok := g.index[id]
	if !ok {
		return 0
	}
	return g.degree[i]
}

// Neighbors returns the neighbor IDs of id, sorted ascending.
func (g *Graph) Neighbors(id int64) []int64 {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	out := make([]int64, len(g.adj[i]))
	for j, e := range g.adj[i] {
		out[j] = g.ids[e.to]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Has reports whether vertex id exists.
func (g *Graph) Has(id int64) bool {
	_, ok := g.index[id]
	return ok
}

// Validate checks structural invariants: symmetric adjacency, positive
// weights, consistent degrees.
func (g *Graph) Validate() error {
	for i, edges := range g.adj {
		deg := 0.0
		for _, e := range edges {
			if e.weight <= 0 {
				return fmt.Errorf("graph: non-positive weight on edge %d-%d", i, e.to)
			}
			if e.to == i {
				return fmt.Errorf("graph: self-loop at %d", i)
			}
			deg += e.weight
			// Symmetry.
			found := false
			for _, back := range g.adj[e.to] {
				if back.to == i && back.weight == e.weight {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: asymmetric edge %d-%d", i, e.to)
			}
		}
		if diff := deg - g.degree[i]; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("graph: degree mismatch at %d: %g vs %g", i, deg, g.degree[i])
		}
	}
	return nil
}

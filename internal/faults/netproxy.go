package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a deterministic, seeded TCP fault proxy: a listener that
// forwards every accepted connection to one upstream address while
// injecting connection resets, accept/read/write latency, mid-stream
// stalls, partial writes, and bandwidth caps. It extends the Injector's
// reproducibility contract to the network: every decision is a pure
// function of (seed, site, connection index, attempt), so the same seed in
// front of the same client behavior kills the same connections at the same
// byte offsets — network chaos tests are property tests, not flake
// generators.
//
// Connections are numbered in accept order. Faults whose firing point must
// not depend on how the kernel happens to chunk reads (reset, stall) are
// keyed purely by connection index and triggered at a deterministic byte
// offset of total forwarded traffic, which depends only on what the
// endpoints send — never on segmentation. Per-chunk faults (latency,
// partial writes) shape timing, not outcomes.

// NetConfig configures a Proxy. Rates are in [0, 1]; the zero value
// forwards cleanly.
type NetConfig struct {
	// Seed keys every decision, like Config.Seed.
	Seed int64
	// Site names this proxy in the decision key, so two proxies with one
	// seed (e.g. in front of different daemons) draw distinct schedules.
	Site string
	// Reset is the per-connection probability that the connection is
	// condemned: once total forwarded bytes cross a seeded threshold (up to
	// ResetWindow), both sides are torn down with an RST to the client.
	Reset float64
	// ResetWindow bounds the condemned connection's byte threshold
	// (default 8 KiB): a condemned connection dies within its first
	// ResetWindow forwarded bytes.
	ResetWindow int
	// Stall is the per-connection probability of one mid-stream stall of
	// StallDuration at a seeded byte offset (up to ResetWindow).
	Stall float64
	// StallDuration is how long a firing stall blocks forwarding.
	StallDuration time.Duration
	// AcceptLatency is the maximum delay inserted between accepting a
	// client and dialing upstream; each connection gets a seeded fraction.
	AcceptLatency time.Duration
	// ReadLatency is the maximum per-chunk delay on the client→upstream
	// direction; each chunk gets a seeded fraction. WriteLatency is the
	// same for upstream→client.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// PartialWrite is the per-chunk probability that a forwarded chunk is
	// written in two halves with a StallDuration/10 pause between them —
	// exercising short-read handling in the endpoint.
	PartialWrite float64
	// Bandwidth caps each direction's throughput in bytes/sec by pacing
	// forwarded chunks with sleeps. Zero means unlimited.
	Bandwidth int
	// Sleep is the latency clock (default time.Sleep; tests inject a fake).
	Sleep func(time.Duration)
}

// NetCounts reports what the proxy has done and fired.
type NetCounts struct {
	Conns    uint64 // connections accepted
	Resets   uint64 // connections torn down by the reset fault
	Stalls   uint64 // mid-stream stalls fired
	Partials uint64 // chunks split by the partial-write fault
	Delays   uint64 // accept/read/write latency sleeps injected
	BytesIn  uint64 // bytes forwarded client→upstream
	BytesOut uint64 // bytes forwarded upstream→client
}

// Proxy forwards one listener to one upstream address under NetConfig.
type Proxy struct {
	cfg      NetConfig
	upstream string
	ln       net.Listener

	connSeq atomic.Uint64
	counts  struct {
		resets, stalls, partials, delays atomic.Uint64
		bytesIn, bytesOut                atomic.Uint64
	}

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewProxy listens on listen (e.g. "127.0.0.1:0") and forwards every
// connection to upstream under cfg. Close releases the listener and tears
// down live connections.
func NewProxy(listen, upstream string, cfg NetConfig) (*Proxy, error) {
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.ResetWindow <= 0 {
		cfg.ResetWindow = 8 << 10
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("faults: proxy listen: %w", err)
	}
	p := &Proxy{cfg: cfg, upstream: upstream, ln: ln, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of upstream).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Counts returns a snapshot of the proxy's counters.
func (p *Proxy) Counts() NetCounts {
	return NetCounts{
		Conns:    p.connSeq.Load(),
		Resets:   p.counts.resets.Load(),
		Stalls:   p.counts.stalls.Load(),
		Partials: p.counts.partials.Load(),
		Delays:   p.counts.delays.Load(),
		BytesIn:  p.counts.bytesIn.Load(),
		BytesOut: p.counts.bytesOut.Load(),
	}
}

// Close stops accepting, tears down live connections, and waits for the
// forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// roll returns a deterministic uniform value in [0, 1) for the decision
// keyed by (seed, kind, site, connection, attempt) — the Injector's roll
// with the connection index in the site position.
func (p *Proxy) roll(kind string, conn uint64, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|net|%s|%s|%d|%d", p.cfg.Seed, kind, p.cfg.Site, conn, attempt)
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// track registers a live connection for teardown on Close; it reports
// false (and closes c) if the proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.connSeq.Add(1)
		p.wg.Add(1)
		go p.serve(client, idx)
	}
}

// connState is the per-connection fault schedule, fixed at accept time:
// the byte offsets (over total forwarded traffic, both directions) at
// which the reset and stall faults fire. -1 disables a fault.
type connState struct {
	idx      uint64
	total    atomic.Int64
	resetAt  int64
	stallAt  int64
	stalled  atomic.Bool
	resetter sync.Once
	client   net.Conn
	server   net.Conn
}

// serve forwards one accepted connection through the fault schedule.
func (p *Proxy) serve(client net.Conn, idx uint64) {
	defer p.wg.Done()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	defer client.Close()

	if p.cfg.AcceptLatency > 0 {
		d := time.Duration(p.roll("accept-latency", idx, 0) * float64(p.cfg.AcceptLatency))
		if d > 0 {
			p.counts.delays.Add(1)
			p.cfg.Sleep(d)
		}
	}
	server, err := net.DialTimeout("tcp", p.upstream, 10*time.Second)
	if err != nil {
		return // upstream down: client sees an immediate close
	}
	if !p.track(server) {
		return
	}
	defer p.untrack(server)
	defer server.Close()

	st := &connState{idx: idx, resetAt: -1, stallAt: -1, client: client, server: server}
	if p.roll("reset", idx, 0) < p.cfg.Reset {
		st.resetAt = int64(p.roll("reset-at", idx, 0) * float64(p.cfg.ResetWindow))
	}
	if p.roll("stall", idx, 0) < p.cfg.Stall {
		st.stallAt = int64(p.roll("stall-at", idx, 0) * float64(p.cfg.ResetWindow))
	}

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(st, "c2s", client, server, p.cfg.ReadLatency, &p.counts.bytesIn)
	}()
	go func() {
		defer pumps.Done()
		p.pump(st, "s2c", server, client, p.cfg.WriteLatency, &p.counts.bytesOut)
	}()
	pumps.Wait()
}

// abort tears the connection down hard: linger 0 on the client side so the
// kernel emits an RST instead of a graceful FIN.
func (st *connState) abort(p *Proxy) {
	st.resetter.Do(func() {
		if tc, ok := st.client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		st.client.Close()
		st.server.Close()
		p.counts.resets.Add(1)
	})
}

// pump forwards one direction chunk by chunk, applying the fault schedule.
// dir keys per-chunk latency decisions so the two directions draw
// independent delays.
func (p *Proxy) pump(st *connState, dir string, src, dst net.Conn, latency time.Duration, fwd *atomic.Uint64) {
	buf := make([]byte, 32<<10)
	chunk := 0
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk++
			total := st.total.Add(int64(n))
			// Stall: one pause per connection, fired by the first chunk
			// that crosses the scheduled byte offset.
			if st.stallAt >= 0 && total-int64(n) <= st.stallAt && total > st.stallAt &&
				st.stalled.CompareAndSwap(false, true) {
				p.counts.stalls.Add(1)
				p.cfg.Sleep(p.cfg.StallDuration)
			}
			// Reset: condemned connections die once total forwarded bytes
			// cross the scheduled offset, whatever direction got there.
			if st.resetAt >= 0 && total > st.resetAt {
				st.abort(p)
				return
			}
			if latency > 0 {
				d := time.Duration(p.roll("latency-"+dir, st.idx, chunk) * float64(latency))
				if d > 0 {
					p.counts.delays.Add(1)
					p.cfg.Sleep(d)
				}
			}
			if p.cfg.Bandwidth > 0 {
				p.cfg.Sleep(time.Duration(float64(n) / float64(p.cfg.Bandwidth) * float64(time.Second)))
			}
			if p.cfg.PartialWrite > 0 && n > 1 &&
				p.roll("partial-"+dir, st.idx, chunk) < p.cfg.PartialWrite {
				p.counts.partials.Add(1)
				if _, werr := dst.Write(buf[:n/2]); werr != nil {
					st.closeBoth()
					return
				}
				p.cfg.Sleep(p.cfg.StallDuration / 10)
				if _, werr := dst.Write(buf[n/2 : n]); werr != nil {
					st.closeBoth()
					return
				}
			} else if _, werr := dst.Write(buf[:n]); werr != nil {
				st.closeBoth()
				return
			}
			fwd.Add(uint64(n))
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Half-close: propagate the FIN, let the other direction
				// finish draining.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			} else {
				st.closeBoth()
			}
			return
		}
	}
}

// closeBoth ends the connection gracefully (no RST) after a hard pump
// error, so the peer observes a close rather than a hang.
func (st *connState) closeBoth() {
	st.client.Close()
	st.server.Close()
}
